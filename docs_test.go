package repro_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestEveryPackageHasDocComment is the documentation gate the README's
// package inventory leans on: every package in the module (internal/,
// cmd/, examples/, and the root) must carry a package comment. CI runs
// this alongside a grep-based belt-and-braces check.
func TestEveryPackageHasDocComment(t *testing.T) {
	var dirs []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && name != "." || name == "testdata" {
				return filepath.SkipDir
			}
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			var files []string
			for fname, f := range pkg.Files {
				files = append(files, fname)
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package doc comment in any of %v",
					name, dir, files)
			}
		}
	}
}

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// TestMarkdownLinksResolve walks the repository's markdown documents and
// checks that every relative link target exists, so README/DESIGN/
// EXPERIMENTS cross-references cannot silently rot. External URLs and
// pure anchors are out of scope (offline test).
func TestMarkdownLinksResolve(t *testing.T) {
	var docs []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && name != "." || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			docs = append(docs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("no markdown documents found")
	}
	checked := 0
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				switch {
				case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
					continue // external; offline test
				case strings.HasPrefix(target, "#"):
					continue // intra-document anchor
				}
				target = strings.Split(target, "#")[0]
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(doc), target)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s:%d: broken link %q (%v)", doc, lineNo+1, m[1], err)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Error("no relative links checked; is the link regexp broken?")
	}
}

// TestREADMEInventoryComplete keeps the README package table honest:
// every internal/ package must appear in it, and it must not name
// packages that no longer exist.
func TestREADMEInventoryComplete(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !strings.Contains(string(readme), fmt.Sprintf("`internal/%s`", e.Name())) {
			t.Errorf("README package inventory is missing internal/%s", e.Name())
		}
	}
	for _, m := range regexp.MustCompile("`internal/([a-z]+)`").FindAllStringSubmatch(string(readme), -1) {
		if _, err := os.Stat(filepath.Join("internal", m[1])); err != nil {
			t.Errorf("README names internal/%s which does not exist", m[1])
		}
	}
}

// TestAPIFieldsDocumented gates the public wire surface: every exported
// field of every exported struct in the root api package must carry a
// doc comment. Clients read these types instead of protocol docs, so a
// bare field is an undocumented protocol extension.
func TestAPIFieldsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, "api", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							if !name.IsExported() {
								continue
							}
							checked++
							if field.Doc == nil || strings.TrimSpace(field.Doc.Text()) == "" {
								pos := fset.Position(name.Pos())
								t.Errorf("%s: api.%s.%s has no doc comment",
									pos, ts.Name.Name, name.Name)
							}
						}
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no api struct fields found; did the package move?")
	}
}

// TestREADMEListsEveryCommand does the same for the CLI table.
func TestREADMEListsEveryCommand(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir("cmd")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !strings.Contains(string(readme), "cmd/"+e.Name()) {
			t.Errorf("README does not mention cmd/%s", e.Name())
		}
	}
}
