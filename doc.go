// Package repro is a ground-up Go reproduction of "Unifying Primary
// Cache, Scratch, and Register File Memories in a Throughput Processor"
// (Gebhart, Keckler, Khailany, Krashinsky, Dally — MICRO 2012).
//
// The paper proposes a GPU streaming multiprocessor whose main register
// file, shared memory, and primary data cache share one pool of 32 SRAM
// banks, repartitioned per kernel. This module contains the cycle-level
// SM simulator, the unified/partitioned/Fermi-like memory designs, the 26
// synthetic Table-1 workloads, the Section 5.2 energy model, and a
// harness regenerating every table and figure of the evaluation — plus a
// multi-SM chip simulator, trace record/replay, and the design-choice
// ablations the paper argues in prose.
//
// Start with README.md, run experiments with:
//
//	go run ./cmd/paper
//
// and see DESIGN.md / EXPERIMENTS.md for the module map and the
// paper-vs-measured record. The benchmarks in bench_test.go regenerate
// one table or figure each.
package repro
