// The cycle loop's allocation contract: once a simulation's traces are
// memoized and its scratch structures sized, stepping the SM performs no
// heap allocation at all. CI gates on this test, so a regression that
// puts an allocation back on the hot path (a closure that escapes, a map
// on the issue path, a buffer rebuilt per access) fails loudly instead
// of showing up as a slow drift in BENCH_results.json.
package repro_test

import (
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/occupancy"
	"repro/internal/sm"
	"repro/internal/workloads"
)

// newSteadySM builds a baseline-configuration SM with the MSHR table
// bounded, so every memsys structure is pre-sized (the unbounded model
// may legitimately double its pending-fill table mid-run).
func newSteadySM(t *testing.T, name string) *sm.SM {
	t.Helper()
	k, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Baseline()
	occ := occupancy.Compute(k.Requirements(), cfg, 0)
	if occ.CTAs < 1 {
		t.Fatalf("%s does not fit the baseline configuration", name)
	}
	params := sm.DefaultParams()
	params.MaxMSHRs = 64
	machine, err := sm.NewSM(sm.Spec{
		Config:       cfg,
		Params:       params,
		Source:       &workloads.Source{K: k},
		ResidentCTAs: occ.CTAs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return machine
}

// TestCycleLoopSteadyStateAllocFree runs one full simulation to warm the
// trace cache and scratch high-water marks, then re-runs the same
// kernel and requires zero heap allocations across the entire second
// run's cycle loop.
func TestCycleLoopSteadyStateAllocFree(t *testing.T) {
	for _, name := range []string{"needle", "bfs"} {
		warm := newSteadySM(t, name)
		if _, err := warm.Run(); err != nil {
			t.Fatal(err)
		}

		machine := newSteadySM(t, name)
		machine.Start()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for !machine.Done() {
			if err := machine.Step(); err != nil {
				t.Fatal(err)
			}
		}
		runtime.ReadMemStats(&after)
		if d := after.Mallocs - before.Mallocs; d != 0 {
			t.Errorf("%s: %d heap allocations during a warmed cycle loop, want 0", name, d)
		}
	}
}
