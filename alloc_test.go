// The cycle loop's allocation contract: once a simulation's traces are
// memoized and its scratch structures sized, stepping the SM performs no
// heap allocation at all. CI gates on this test, so a regression that
// puts an allocation back on the hot path (a closure that escapes, a map
// on the issue path, a buffer rebuilt per access) fails loudly instead
// of showing up as a slow drift in BENCH_results.json.
package repro_test

import (
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/occupancy"
	"repro/internal/sm"
	"repro/internal/workloads"
)

// steadySpec builds a baseline-configuration spec with the MSHR table
// bounded, so every memsys structure is pre-sized (the unbounded model
// may legitimately double its pending-fill table mid-run).
func steadySpec(t *testing.T, name string) sm.Spec {
	t.Helper()
	k, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Baseline()
	occ := occupancy.Compute(k.Requirements(), cfg, 0)
	if occ.CTAs < 1 {
		t.Fatalf("%s does not fit the baseline configuration", name)
	}
	params := sm.DefaultParams()
	params.MaxMSHRs = 64
	return sm.Spec{
		Config:       cfg,
		Params:       params,
		Source:       &workloads.Source{K: k},
		ResidentCTAs: occ.CTAs,
	}
}

// newSteadySM builds a fresh SM from steadySpec.
func newSteadySM(t *testing.T, name string) *sm.SM {
	t.Helper()
	machine, err := sm.NewSM(steadySpec(t, name))
	if err != nil {
		t.Fatal(err)
	}
	return machine
}

// TestForkedCycleLoopAllocFree extends the contract across the
// snapshot boundary: capturing a snapshot may allocate (it builds the
// copy-on-write state), but a forked SM resumes with every scratch
// structure already at its high-water mark, so the post-restore cycle
// loop must heap-allocate exactly zero times.
func TestForkedCycleLoopAllocFree(t *testing.T) {
	for _, name := range []string{"needle", "bfs"} {
		warm := newSteadySM(t, name)
		if _, err := warm.Run(); err != nil {
			t.Fatal(err)
		}

		spec := steadySpec(t, name)
		parent, err := sm.NewSM(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := parent.RunTo(2000); err != nil {
			t.Fatal(err)
		}
		snap, err := parent.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		fork, err := sm.Fork(spec, snap)
		if err != nil {
			t.Fatal(err)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for !fork.Done() {
			if err := fork.Step(); err != nil {
				t.Fatal(err)
			}
		}
		runtime.ReadMemStats(&after)
		if d := after.Mallocs - before.Mallocs; d != 0 {
			t.Errorf("%s: %d heap allocations during a forked cycle loop, want 0", name, d)
		}
	}
}

// TestCycleLoopSteadyStateAllocFree runs one full simulation to warm the
// trace cache and scratch high-water marks, then re-runs the same
// kernel and requires zero heap allocations across the entire second
// run's cycle loop.
func TestCycleLoopSteadyStateAllocFree(t *testing.T) {
	for _, name := range []string{"needle", "bfs"} {
		warm := newSteadySM(t, name)
		if _, err := warm.Run(); err != nil {
			t.Fatal(err)
		}

		machine := newSteadySM(t, name)
		machine.Start()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for !machine.Done() {
			if err := machine.Step(); err != nil {
				t.Fatal(err)
			}
		}
		runtime.ReadMemStats(&after)
		if d := after.Mallocs - before.Mallocs; d != 0 {
			t.Errorf("%s: %d heap allocations during a warmed cycle loop, want 0", name, d)
		}
	}
}
