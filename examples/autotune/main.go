// Autotune: the paper notes (Section 4.5) that some applications run
// faster with fewer than the maximum resident threads, and that
// autotuning can pick the operating point. This example runs the
// internal/autotune search for a kernel under the 384 KB unified design,
// printing every candidate and the winner.
//
//	go run ./examples/autotune [kernel] [cycles|energy]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/autotune"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	name := "dgemm"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	obj := autotune.MinCycles
	if len(os.Args) > 2 && os.Args[2] == "energy" {
		obj = autotune.MinEnergy
	}
	kernel, err := workloads.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	runner := core.NewRunner()
	rep, err := autotune.Tune(runner, kernel, config.BaselineTotalBytes, obj)
	if err != nil {
		log.Fatal(err)
	}

	table := report.NewTable(
		fmt.Sprintf("autotuning %s for %s (384KB unified)", name, rep.Objective),
		"threads", "regs/thread", "spill insts", "cycles", "energy (J)", "")
	for _, c := range rep.Evaluated {
		marker := ""
		if c.Threads == rep.Best.Threads && c.Regs == rep.Best.Regs {
			marker = "<= best"
		}
		table.AddRow(fmt.Sprint(c.Threads), fmt.Sprint(c.Regs),
			fmt.Sprint(c.Result.Counters.SpillInsts),
			fmt.Sprint(c.Result.Counters.Cycles),
			fmt.Sprintf("%.3e", c.Result.Energy.Total()), marker)
	}
	fmt.Print(table)
	fmt.Printf("\nbest: %d threads at %d regs/thread (%v)\n",
		rep.Best.Threads, rep.Best.Regs, rep.Best.Config)
	if imp := rep.Improvement(); imp > 1.001 {
		fmt.Printf("tuning beats the naive maximal allocation by %.1f%%\n", 100*(imp-1))
	} else {
		fmt.Println("the naive maximal allocation was already optimal for this kernel")
	}
}
