// Blocking: the paper's Section 6.5 case study. The needle kernel's
// shared-memory footprint grows quadratically with its blocking factor
// while its thread count grows linearly, so the best blocking factor
// depends on how much scratchpad the machine can offer — a choice the
// unified design opens up. This example evaluates blocking factors 16, 32,
// and 64 across shared-memory capacities and prints which one wins where
// (Figure 11).
//
//	go run ./examples/blocking
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/occupancy"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	runner := core.NewRunner()
	table := report.NewTable("needle blocking-factor study (64KB cache, spill-free registers)",
		"BF", "threads", "shared need", "cycles", "IPC")

	type point struct {
		bf, threads int
		sharedKB    int
		cycles      int64
	}
	var best *point
	for _, bf := range []int{16, 32, 64} {
		kernel := workloads.NeedleKernel(bf)
		for threads := kernel.ThreadsPerCTA; threads <= config.MaxThreadsPerSM; threads *= 2 {
			ctas := threads / kernel.ThreadsPerCTA
			shared := ctas * kernel.SharedBytesPerCTA
			cfg := config.MemConfig{
				Design:      config.Partitioned,
				RFBytes:     occupancy.FullOccupancyRFBytes(kernel.RegsNeeded),
				SharedBytes: shared,
				CacheBytes:  64 << 10,
				MaxThreads:  threads,
			}
			res, err := runner.Run(core.RunSpec{Kernel: kernel, Config: cfg})
			if err != nil {
				log.Fatal(err)
			}
			table.AddRow(fmt.Sprint(bf), fmt.Sprint(res.Occupancy.Threads),
				fmt.Sprintf("%dK", shared>>10), fmt.Sprint(res.Counters.Cycles),
				fmt.Sprintf("%.3f", res.Counters.IPC()))
			p := point{bf, res.Occupancy.Threads, shared >> 10, res.Counters.Cycles}
			if best == nil || p.cycles < best.cycles {
				best = &p
			}
		}
	}
	fmt.Print(table)
	fmt.Printf("\nbest configuration: BF=%d with %d threads (%dKB of shared memory, %d cycles)\n",
		best.bf, best.threads, best.sharedKB, best.cycles)
	fmt.Println("\nWith 64KB of scratchpad only BF=16/32 at low thread counts fit;")
	fmt.Println("a unified memory lets the program scale its blocking factor with capacity.")
}
