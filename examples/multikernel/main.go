// Multikernel: the Section 4.4 scenario. Real applications run several
// kernels with different memory appetites; a hard-partitioned SM must
// serve all of them with one split, while the unified design repartitions
// before each kernel launch (cheaply: the write-through cache has no dirty
// data to move). This example runs a register-hungry kernel (dgemm), a
// scratchpad-hungry kernel (needle), and a cache-hungry kernel (bfs) back
// to back under both regimes.
//
//	go run ./examples/multikernel
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	var kernels []*workloads.Kernel
	for _, name := range []string{"dgemm", "needle", "bfs"} {
		k, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		kernels = append(kernels, k)
	}
	runner := core.NewRunner()

	flexible, err := runner.RunSequence(kernels, config.BaselineTotalBytes)
	if err != nil {
		log.Fatal(err)
	}
	fixed, err := runner.RunSequenceFixed(kernels, config.Baseline())
	if err != nil {
		log.Fatal(err)
	}

	table := report.NewTable("three-kernel application: per-kernel repartitioning vs fixed 256/64/64",
		"kernel", "unified split (rf/shm/$)", "unified cycles", "fixed cycles", "speedup")
	for i, step := range flexible.Steps {
		f := fixed.Steps[i]
		table.AddRow(step.Kernel,
			fmt.Sprintf("%s/%s/%s", report.KB(step.Config.RFBytes),
				report.KB(step.Config.SharedBytes), report.KB(step.Config.CacheBytes)),
			fmt.Sprint(step.Result.Counters.Cycles),
			fmt.Sprint(f.Result.Counters.Cycles),
			report.Ratio(float64(f.Result.Counters.Cycles)/float64(step.Result.Counters.Cycles)))
	}
	fmt.Print(table)
	fmt.Printf("\ntotal: %d cycles repartitioned vs %d fixed (%.2fx), energy %.3e vs %.3e J\n",
		flexible.Cycles, fixed.Cycles, float64(fixed.Cycles)/float64(flexible.Cycles),
		flexible.Energy, fixed.Energy)
	fmt.Println("\nRepartitioning between kernels costs only a tag invalidation:")
	fmt.Println("the cache is write-through, so no dirty state exists (paper §4.4).")
}
