// Quickstart: run one benchmark under the baseline partitioned design and
// under a unified memory partitioned by the paper's Section 4.5 algorithm,
// then compare performance, DRAM traffic, and energy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	// Pick a workload from the registry. needle is the paper's headline:
	// a shared-memory-hungry dynamic-programming kernel that a fixed
	// 64 KB scratchpad starves.
	kernel, err := workloads.ByName("needle")
	if err != nil {
		log.Fatal(err)
	}
	runner := core.NewRunner()

	// 1. The baseline SM: 256 KB register file, 64 KB shared, 64 KB cache.
	baseline, err := runner.Run(core.RunSpec{Kernel: kernel, Config: config.Baseline()})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The same 384 KB of SRAM as a unified memory, split per kernel:
	// the compiler reports registers/thread, the programmer shared
	// memory/CTA, the scheduler maximizes threads, and the rest is cache.
	unifiedCfg, err := config.Allocate(kernel.Requirements(), config.BaselineTotalBytes, 0)
	if err != nil {
		log.Fatal(err)
	}
	unified, err := runner.Run(core.RunSpec{Kernel: kernel, Config: unifiedCfg})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s — %s\n\n", kernel.Name, kernel.Description)
	show := func(name string, r *core.Result) {
		fmt.Printf("%-12s %v\n", name, r.Spec.Config)
		fmt.Printf("             threads=%d (limited by %v)  cycles=%d  IPC=%.3f\n",
			r.Occupancy.Threads, r.Occupancy.Limiter, r.Counters.Cycles, r.Counters.IPC())
		fmt.Printf("             dram=%d B  energy=%.3e J\n\n",
			r.Counters.DRAMBytes(), r.Energy.Total())
	}
	show("baseline", baseline)
	show("unified", unified)

	speedup := float64(baseline.Counters.Cycles) / float64(unified.Counters.Cycles)
	energy := unified.Energy.Total() / baseline.Energy.Total()
	fmt.Printf("unified vs baseline: %.2fx performance, %.2fx energy\n", speedup, energy)
}
