package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runTool executes one of the module's commands via `go run`.
func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

// TestCLISmoke exercises every command end to end. It compiles and runs
// each tool, so it is skipped in -short mode.
func TestCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	tmp := t.TempDir()

	t.Run("smsim-list", func(t *testing.T) {
		out := runTool(t, "./cmd/smsim", "-list")
		for _, want := range []string{"needle", "dgemm", "register limited"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in -list output", want)
			}
		}
	})

	t.Run("smsim-unified", func(t *testing.T) {
		out := runTool(t, "./cmd/smsim", "-kernel", "needle", "-design", "unified")
		if !strings.Contains(out, "threads=1024") || !strings.Contains(out, "Energy (J)") {
			t.Errorf("unexpected smsim output:\n%s", out)
		}
	})

	t.Run("smsim-machine-roundtrip", func(t *testing.T) {
		mf := filepath.Join(tmp, "machine.json")
		runTool(t, "./cmd/smsim", "-emit-machine", mf)
		if _, err := os.Stat(mf); err != nil {
			t.Fatal(err)
		}
		out := runTool(t, "./cmd/smsim", "-kernel", "pcr", "-machine", mf)
		if !strings.Contains(out, "partitioned rf=256K") {
			t.Errorf("machine file not applied:\n%s", out)
		}
	})

	t.Run("paper-figure8", func(t *testing.T) {
		out := runTool(t, "./cmd/paper", "figure8")
		if !strings.Contains(out, "228K") { // dgemm's register file
			t.Errorf("figure8 output missing the dgemm allocation:\n%s", out)
		}
	})

	t.Run("paper-csv", func(t *testing.T) {
		out := runTool(t, "./cmd/paper", "-csv", "table4")
		if !strings.HasPrefix(out, "structure,") || !strings.Contains(out, "12.1") {
			t.Errorf("CSV output wrong:\n%s", out)
		}
	})

	t.Run("sweep", func(t *testing.T) {
		out := runTool(t, "./cmd/sweep", "-kernel", "nn", "-resource", "cache", "-from", "32", "-to", "64")
		if !strings.Contains(out, "32K") || !strings.Contains(out, "64K") {
			t.Errorf("sweep output missing points:\n%s", out)
		}
	})

	t.Run("trace-workflow", func(t *testing.T) {
		tf := filepath.Join(tmp, "vec.trc")
		out := runTool(t, "./cmd/tracegen", "-kernel", "vectoradd", "-o", tf)
		if !strings.Contains(out, "instructions") {
			t.Errorf("tracegen output: %s", out)
		}
		out = runTool(t, "./cmd/tracestat", tf)
		if !strings.Contains(out, "Instruction mix") || !strings.Contains(out, "LDG") {
			t.Errorf("tracestat output:\n%s", out)
		}
		out = runTool(t, "./cmd/smsim", "-trace", tf, "-resident", "4")
		if !strings.Contains(out, "replayed") {
			t.Errorf("replay output:\n%s", out)
		}
	})

	t.Run("chipsim", func(t *testing.T) {
		out := runTool(t, "./cmd/chipsim", "-kernel", "vectoradd", "-sms", "2")
		if !strings.Contains(out, "single-SM model") || !strings.Contains(out, "sm1") {
			t.Errorf("chipsim output:\n%s", out)
		}
	})
}
