// Command tracestat profiles a warp instruction trace: instruction mix,
// register-hierarchy operand placement, memory footprint, coalescing
// quality, and the reuse-distance histogram that predicts cache-capacity
// sensitivity (the static half of the paper's Section 3 characterization).
//
// Examples:
//
//	tracestat needle.trc
//	tracestat -kernel bfs              # profile a registry benchmark directly
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	kernelName := flag.String("kernel", "", "profile a registry benchmark instead of a file")
	flag.Parse()

	var tr *trace.Trace
	var name string
	switch {
	case *kernelName != "":
		k, err := workloads.ByName(*kernelName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(2)
		}
		tr = trace.Record(&workloads.Source{K: k, Seed: 1})
		name = k.Name
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
		defer f.Close()
		tr, err = trace.Read(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
		name = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: tracestat <file.trc> | tracestat -kernel <name>")
		os.Exit(2)
	}

	p := trace.Analyze(tr)
	fmt.Printf("%s: %d CTAs x %d warps\n\n", name, tr.CTAs, tr.WarpsPerCTA)

	mix := report.NewTable("Instruction mix", "op", "count", "share")
	for _, op := range p.TopOps() {
		mix.AddRow(op.String(), fmt.Sprint(p.OpCounts[op]),
			report.Percent(float64(p.OpCounts[op])/float64(p.Instructions)))
	}
	fmt.Print(mix)
	fmt.Println()

	regs := report.NewTable("Registers and operands",
		"regs used", "spill insts", "MRF reads", "MRF writes", "ORF", "LRF", "MRF fraction")
	regs.AddRow(fmt.Sprint(p.RegistersUsed), fmt.Sprint(p.SpillInstructions),
		fmt.Sprint(p.MRFReads), fmt.Sprint(p.MRFWrites),
		fmt.Sprint(p.ORFReads+p.ORFWrites), fmt.Sprint(p.LRFReads+p.LRFWrites),
		report.Percent(p.MRFOperandFraction()))
	fmt.Print(regs)
	fmt.Println()

	mem := report.NewTable("Memory behaviour",
		"global footprint", "line accesses", "reuse factor", "lines/access", "shared footprint")
	mem.AddRow(fmt.Sprintf("%d lines (%d KB)", p.GlobalFootprintLines, p.GlobalFootprintLines*128>>10),
		fmt.Sprint(p.GlobalLineAccesses),
		fmt.Sprintf("%.2f", p.ReuseFactor()),
		fmt.Sprintf("%.2f", p.AvgLinesPerAccess),
		fmt.Sprintf("%d B/CTA", p.MaxSharedAddr))
	fmt.Print(mem)
	fmt.Println()

	reuse := report.NewTable("Reuse distances (predicts cache sensitivity)",
		"<=512 lines (64KB)", "<=2048 (256KB)", "<=4096 (512KB)", "beyond")
	total := int64(0)
	for _, v := range p.ReuseHistogram {
		total += v
	}
	if total == 0 {
		total = 1
	}
	reuse.AddRow(
		report.Percent(float64(p.ReuseHistogram[0])/float64(total)),
		report.Percent(float64(p.ReuseHistogram[1])/float64(total)),
		report.Percent(float64(p.ReuseHistogram[2])/float64(total)),
		report.Percent(float64(p.ReuseHistogram[3])/float64(total)))
	fmt.Print(reuse)
}
