// Command paper regenerates the tables and figures of "Unifying Primary
// Cache, Scratch, and Register File Memories in a Throughput Processor"
// (MICRO 2012) from the simulator, printing each as a text table.
//
// Independent (kernel, config) simulations inside each experiment fan out
// across -j worker goroutines (default: all CPUs); the output is
// byte-identical for every -j value, and -j 1 runs the exact serial path.
//
// Examples:
//
//	paper                       # regenerate everything, all CPUs
//	paper -j 1 figure9 table6   # selected experiments, serial
//	paper -csv figure2          # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/parallel"
	"repro/internal/profiling"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	chart := flag.Bool("chart", false, "render capacity sweeps as ASCII charts (figure2/3/4/11)")
	jobs := flag.Int("j", runtime.NumCPU(), "parallel simulation workers (1 = serial)")
	prof := profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	parallel.SetWorkers(*jobs)
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
	defer stopProf()

	names := flag.Args()
	if len(names) == 0 {
		names = harness.Experiments
	}
	r := core.NewRunner()
	total := time.Now()
	for _, name := range names {
		start := time.Now()
		if *chart {
			out, err := harness.Chart(r, name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paper: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Print(out)
			fmt.Fprintf(os.Stderr, "(%s charted in %v)\n", name, time.Since(start).Round(time.Millisecond))
			continue
		}
		t, err := harness.Run(r, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paper: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t)
		}
		// Timing goes to stderr so stdout stays byte-identical across
		// runs and -j values (and safe to redirect into golden files).
		fmt.Fprintf(os.Stderr, "(%s regenerated in %v)\n", name, time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "paper: %d experiment(s) in %v with %d worker(s)\n",
		len(names), time.Since(total).Round(time.Millisecond), parallel.Workers())
}
