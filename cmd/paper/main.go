// Command paper regenerates the tables and figures of "Unifying Primary
// Cache, Scratch, and Register File Memories in a Throughput Processor"
// (MICRO 2012) from the simulator, printing each as a text table.
//
// Examples:
//
//	paper                       # regenerate everything
//	paper figure9 table6        # selected experiments
//	paper -csv figure2          # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	chart := flag.Bool("chart", false, "render capacity sweeps as ASCII charts (figure2/3/4/11)")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = harness.Experiments
	}
	r := core.NewRunner()
	for _, name := range names {
		start := time.Now()
		if *chart {
			out, err := harness.Chart(r, name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paper: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Print(out)
			fmt.Printf("(%s charted in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
			continue
		}
		t, err := harness.Run(r, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paper: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t)
			fmt.Printf("(%s regenerated in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
}
