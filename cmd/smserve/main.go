// Command smserve runs the simulation service: a long-running HTTP/JSON
// server exposing single-kernel runs, multi-kernel batches, and the
// named paper experiments, with a canonical-config result cache,
// bounded admission (429 + Retry-After beyond the queue), and graceful
// drain on SIGTERM. See internal/serve for the API and README.md for
// curl examples.
//
// Usage:
//
//	smserve [-addr :8344] [-j N] [-inflight N] [-queue N]
//	        [-cache N] [-timeout 60s] [-drain 30s]
//
// -j sets the process simulation worker budget batch items fan out
// under (0 = GOMAXPROCS); -inflight bounds concurrently simulating
// requests; -queue bounds requests waiting behind them; -cache bounds
// the result LRU in entries; -timeout is the default per-request
// simulation deadline; -drain bounds how long shutdown waits for
// in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/parallel"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smserve: ")
	var (
		addr     = flag.String("addr", ":8344", "listen address")
		workers  = flag.Int("j", 0, "simulation worker budget (0 = GOMAXPROCS)")
		inflight = flag.Int("inflight", 2, "max concurrently simulating requests")
		queue    = flag.Int("queue", 64, "max requests waiting for admission (beyond: 429)")
		cache    = flag.Int("cache", 256, "result cache capacity in entries")
		timeout  = flag.Duration("timeout", 60*time.Second, "default per-request simulation deadline")
		drain    = flag.Duration("drain", 30*time.Second, "max wait for in-flight requests on shutdown")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: smserve [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	parallel.SetWorkers(*workers)

	// On the flag, 0 means "no queue"; serve.Options spells that -1
	// (its 0 is "use the default").
	q := *queue
	if q <= 0 {
		q = -1
	}
	svc := serve.New(serve.Options{
		InFlight:       *inflight,
		Queue:          q,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
	})
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	// Graceful drain: stop accepting, let in-flight requests complete.
	log.Printf("shutting down (drain %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("drain: %v", err)
	}
	log.Print("drained cleanly")
}
