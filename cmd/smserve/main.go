// Command smserve runs the simulation service: a long-running HTTP/JSON
// server exposing single-kernel runs, multi-kernel batches, the named
// paper experiments, and durable async jobs (sweeps and campaigns that
// survive restarts), with a canonical-config result cache, an optional
// persistent result store, bounded admission (429 + Retry-After beyond
// the queue), and graceful drain on SIGTERM. See internal/serve for the
// implementation, the api package for the request/response types, and
// README.md for curl examples.
//
// Usage:
//
//	smserve [-addr :8344] [-j N] [-inflight N] [-queue N]
//	        [-cache N] [-timeout 60s] [-drain 30s]
//	        [-data-dir DIR] [-job-slots N]
//
// -j sets the process simulation worker budget batch items fan out
// under (0 = GOMAXPROCS); -inflight bounds concurrently simulating
// requests; -queue bounds requests waiting behind them; -cache bounds
// the result LRU in entries; -timeout is the default per-request
// simulation deadline; -drain bounds how long shutdown waits for
// in-flight requests.
//
// -data-dir enables durability: completed result bodies persist under
// DIR/results (content-addressed by canonical config hash) and job
// records under DIR/jobs. A server restarted on the same -data-dir
// replays stored results byte-identically and resumes unfinished jobs,
// skipping every already-stored item. -job-slots bounds concurrently
// executing jobs (they admit separately from synchronous requests).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/parallel"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smserve: ")
	var (
		addr     = flag.String("addr", ":8344", "listen address")
		workers  = flag.Int("j", 0, "simulation worker budget (0 = GOMAXPROCS)")
		inflight = flag.Int("inflight", 2, "max concurrently simulating requests")
		queue    = flag.Int("queue", 64, "max requests waiting for admission (beyond: 429)")
		cache    = flag.Int("cache", 256, "result cache capacity in entries")
		timeout  = flag.Duration("timeout", 60*time.Second, "default per-request simulation deadline")
		drain    = flag.Duration("drain", 30*time.Second, "max wait for in-flight requests on shutdown")
		dataDir  = flag.String("data-dir", "", "persistence root: results + job records survive restarts (empty = in-memory only)")
		jobSlots = flag.Int("job-slots", 2, "max concurrently executing async jobs")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: smserve [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	parallel.SetWorkers(*workers)

	// On the flag, 0 means "no queue"; serve.Options spells that -1
	// (its 0 is "use the default").
	q := *queue
	if q <= 0 {
		q = -1
	}
	svc, err := serve.New(serve.Options{
		InFlight:       *inflight,
		Queue:          q,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		DataDir:        *dataDir,
		JobSlots:       *jobSlots,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	// Graceful drain: stop accepting, let in-flight requests complete.
	log.Printf("shutting down (drain %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("drain: %v", err)
	}
	// Abandon (without marking terminal) any still-running jobs so a
	// restart on the same -data-dir resumes them.
	svc.Close()
	log.Print("drained cleanly")
}
