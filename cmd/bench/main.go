// Command bench measures the simulator's tracked performance numbers —
// the cycle-loop microbenchmark (ns and allocs per sm.Step) and the
// end-to-end wall time of every paper experiment — and writes them to a
// JSON artifact (BENCH_results.json by convention; the committed copy at
// the repository root is the reference baseline CI compares against).
//
// Examples:
//
//	bench                               # full measurement, write BENCH_results.json
//	bench -o /tmp/now.json -j 4         # custom output path and worker count
//	bench -skip-suite                   # microbenchmark only (fast)
//	bench -baseline 37.486 figure2      # selected experiments, record speedup
//	bench -baseline BENCH_results.json  # baseline from a previous artifact
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/parallel"
	"repro/internal/perfbench"
)

func main() {
	var (
		out      = flag.String("o", "BENCH_results.json", "output JSON path (empty: stdout summary only)")
		jobs     = flag.Int("j", runtime.NumCPU(), "parallel simulation workers for the suite")
		baseline = flag.String("baseline", "", "pre-optimization suite seconds, or the path of a previous bench artifact, to compute the speedup against")
		skip     = flag.Bool("skip-suite", false, "measure only the cycle-loop microbenchmark")
	)
	flag.Parse()
	parallel.SetWorkers(*jobs)

	var baselineSecs float64
	if *baseline != "" {
		var err error
		if baselineSecs, err = perfbench.ReadBaseline(*baseline); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	var (
		res *perfbench.Results
		err error
	)
	if *skip {
		res = &perfbench.Results{CycleLoop: perfbench.MeasureCycleLoop()}
	} else {
		res, err = perfbench.Collect(flag.Args(), baselineSecs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("cycle loop: %.1f ns/op, %d allocs/op, %d B/op\n",
		res.CycleLoop.NsPerOp, res.CycleLoop.AllocsPerOp, res.CycleLoop.BytesPerOp)
	for _, e := range res.Experiments {
		fmt.Printf("%-12s %8.3fs\n", e.Name, e.Seconds)
	}
	if res.SuiteSeconds > 0 {
		fmt.Printf("suite total: %.3fs\n", res.SuiteSeconds)
	}
	if fs := res.ForkSweep; fs != nil {
		fmt.Printf("fork sweep (%s, %d points, warm@%d/%d): fork %.3fs vs exact %.3fs = %.2fx\n",
			fs.Kernel, fs.Points, fs.WarmCycle, fs.TotalCycles, fs.ForkSeconds, fs.ExactSeconds, fs.Speedup)
	}
	if sp := res.Sampled; sp != nil {
		fmt.Printf("sampled (%s, %d workloads): %.3fs vs exact %.3fs = %.2fx, IPC error mean %.1f%% max %.1f%%\n",
			sp.Spec, sp.Workloads, sp.SampledSeconds, sp.ExactSeconds, sp.Speedup,
			sp.MeanIPCError*100, sp.MaxIPCError*100)
	}
	if res.SuiteSpeedup > 0 {
		fmt.Printf("speedup over %.3fs baseline: %.2fx\n", res.BaselineSuiteSeconds, res.SuiteSpeedup)
	}

	if *out != "" {
		if err := res.Write(*out); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
}
