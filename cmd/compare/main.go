// Command compare executes a declarative compare campaign: a JSON file
// naming N machine configurations, a workload list, and the metrics to
// diff against a baseline machine (see examples/campaigns/). It prints
// one side-by-side diff table per metric — values, percent deltas, and
// "!" flags where a delta crosses the campaign's regression threshold —
// followed by any paper-style comparison tables the campaign requests.
//
// By default the campaign's cells simulate locally, fanned out across
// -j workers; the output is byte-identical for every -j value. With
// -submit URL the campaign runs remotely instead, as a durable
// "compare" job on an smserve instance — and because both paths reduce
// each cell to the same losslessly round-tripped scalars, the remote
// tables are byte-identical to the local ones.
//
// -strict exits nonzero when any regression threshold is crossed
// (regressions are always listed on stderr), which is what makes a
// committed campaign file a CI gate.
//
// Examples:
//
//	compare -campaign examples/campaigns/paper-designs.json
//	compare -campaign examples/campaigns/scheduler-duel.json -strict
//	compare -campaign c.json -submit http://127.0.0.1:8344
//	compare -campaign c.json -md
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/api"
	"repro/internal/campaign"
	"repro/internal/parallel"
)

func main() {
	var (
		path      = flag.String("campaign", "", "campaign JSON file (required)")
		jobs      = flag.Int("j", runtime.NumCPU(), "parallel simulation workers (1 = serial)")
		md        = flag.Bool("md", false, "emit markdown tables with headings")
		submitURL = flag.String("submit", "", "run the campaign as an async compare job on this smserve base URL instead of simulating locally")
		strict    = flag.Bool("strict", false, "exit nonzero if any regression threshold is crossed")
	)
	flag.Parse()
	parallel.SetWorkers(*jobs)
	if *path == "" {
		fmt.Fprintln(os.Stderr, "compare: -campaign is required")
		os.Exit(2)
	}
	c, err := campaign.Load(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(2)
	}

	start := time.Now()
	var res *campaign.Result
	if *submitURL != "" {
		res, err = submit(*submitURL, c)
	} else {
		res, err = c.Execute()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}

	for i, t := range res.Tables() {
		if *md {
			fmt.Printf("## %s\n\n%s\n", t.Title(), t.Markdown())
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(t)
	}
	fmt.Fprintf(os.Stderr, "compare: %s: %d cell(s) in %v\n",
		c.Spec.Name, len(c.Runs), time.Since(start).Round(time.Millisecond))

	regs := res.Regressions()
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "compare: regression:", r)
	}
	if *strict && len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "compare: %d regression(s) exceed thresholds\n", len(regs))
		os.Exit(1)
	}
}

// submit runs the campaign remotely as a durable compare job: submit,
// poll with progress lines on stderr, decode the final batch result.
func submit(baseURL string, c *campaign.Campaign) (*campaign.Result, error) {
	ctx := context.Background()
	cl := api.NewClient(baseURL)
	lastDone := -1
	br, err := cl.Compare(ctx, c.Spec, 300*time.Millisecond, func(j *api.Job) {
		if j.Progress.Done != lastDone {
			lastDone = j.Progress.Done
			fmt.Fprintf(os.Stderr, "compare: %s %d/%d cell(s) (cache %d, store %d)\n",
				j.State, j.Progress.Done, j.Progress.Total, j.Progress.CacheHits, j.Progress.StoreHits)
		}
	})
	if err != nil {
		return nil, err
	}
	return c.ResultFromBatch(br)
}
