// Command smsim runs one benchmark kernel on the SM simulator under a
// chosen local-memory configuration and prints a full report: timing,
// occupancy, cache and DRAM behaviour, bank conflicts, and the energy
// breakdown.
//
// Examples:
//
//	smsim -kernel needle                         # baseline partitioned run
//	smsim -kernel needle -design unified         # §4.5-allocated unified run
//	smsim -kernel dgemm -rf 128 -shm 64 -cache 64 -regs 24
//	smsim -kernel bfs -sched gto                 # greedy-then-oldest scheduler
//	smsim -streams needle+matrixmul              # two kernels co-resident (multi-tenant)
//	smsim -streams bfs+nn -design unified        # jointly allocated unified mix
//	smsim -list                                  # show all benchmarks
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sm"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// replayTrace runs a recorded trace file directly on the SM simulator.
func replayTrace(path string, cfg config.MemConfig, params sm.Params, residentCTAs int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smsim:", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smsim:", err)
		os.Exit(1)
	}
	simulator, err := sm.NewSM(sm.Spec{Config: cfg, Params: params, Source: tr, ResidentCTAs: residentCTAs})
	if err != nil {
		fmt.Fprintln(os.Stderr, "smsim:", err)
		os.Exit(1)
	}
	c, err := simulator.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "smsim:", err)
		os.Exit(1)
	}
	fmt.Printf("replayed %s: %d CTAs x %d warps under %v\n", path, tr.CTAs, tr.WarpsPerCTA, cfg)
	fmt.Printf("cycles=%d insts=%d IPC=%.3f cacheHit=%s dram=%dB\n",
		c.Cycles, c.WarpInsts, c.IPC(), report.Percent(c.CacheHitRate()), c.DRAMBytes())
}

func main() {
	var (
		kernelName  = flag.String("kernel", "", "benchmark name (see -list)")
		design      = flag.String("design", "partitioned", "partitioned | unified | fermi")
		rfKB        = flag.Int("rf", 256, "register file capacity in KB (partitioned design)")
		shmKB       = flag.Int("shm", 64, "shared memory capacity in KB (partitioned design)")
		cacheKB     = flag.Int("cache", 64, "cache capacity in KB (partitioned design)")
		totalKB     = flag.Int("total", 384, "total unified capacity in KB (unified/fermi designs)")
		threads     = flag.Int("threads", 0, "resident thread cap (0 = architectural limit)")
		regs        = flag.Int("regs", 0, "registers allocated per thread (0 = spill-free demand)")
		machineFile = flag.String("machine", "", "load a JSON machine description (overrides -rf/-shm/-cache and timing)")
		emitMachine = flag.String("emit-machine", "", "write the default machine description to a JSON file and exit")
		traceFile   = flag.String("trace", "", "replay a recorded trace file instead of a registry kernel")
		resident    = flag.Int("resident", 4, "resident CTAs when replaying a trace (-trace)")
		schedName   = flag.String("sched", "", "warp scheduler: twolevel (default) | gto")
		streams     = flag.String("streams", "", "run several kernels co-resident on one SM, \"+\"-joined (e.g. needle+matrixmul)")
		list        = flag.Bool("list", false, "list benchmarks and exit")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "smsim:", err)
		os.Exit(1)
	}
	defer stopProf()

	policy, err := sched.ParsePolicy(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smsim:", err)
		os.Exit(2)
	}

	if *emitMachine != "" {
		if err := machine.Save(*emitMachine, machine.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "smsim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote the paper's default machine to %s\n", *emitMachine)
		return
	}
	if *list {
		t := report.NewTable("Benchmarks", "name", "suite", "category", "regs", "shm B/thr", "CTA", "grid")
		for _, k := range workloads.All() {
			t.AddRow(k.Name, k.Suite, k.Category.String(), fmt.Sprint(k.RegsNeeded),
				fmt.Sprintf("%.1f", k.SharedBytesPerThread()), fmt.Sprint(k.ThreadsPerCTA),
				fmt.Sprint(k.GridCTAs))
		}
		fmt.Print(t)
		return
	}
	if *traceFile != "" {
		params := sm.DefaultParams()
		params.Scheduler = policy
		replayTrace(*traceFile, config.MemConfig{
			Design:      config.Partitioned,
			RFBytes:     *rfKB << 10,
			SharedBytes: *shmKB << 10,
			CacheBytes:  *cacheKB << 10,
			MaxThreads:  *threads,
		}, params, *resident)
		return
	}
	if *streams != "" {
		kernels, err := parseStreams(*streams)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smsim:", err)
			os.Exit(2)
		}
		reqs := make([]config.KernelRequirements, len(kernels))
		for i, k := range kernels {
			reqs[i] = k.Requirements()
		}
		r := core.NewRunner()
		r.Params.Scheduler = policy
		var cfg config.MemConfig
		if *machineFile != "" {
			mcfg, params, eparams, err := machine.Load(*machineFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "smsim:", err)
				os.Exit(1)
			}
			cfg = mcfg
			r.Params = params
			if *schedName != "" {
				r.Params.Scheduler = policy
			}
			r.Energy.P = eparams
		} else {
			switch *design {
			case "partitioned":
				cfg = config.MemConfig{
					Design:      config.Partitioned,
					RFBytes:     *rfKB << 10,
					SharedBytes: *shmKB << 10,
					CacheBytes:  *cacheKB << 10,
					MaxThreads:  *threads,
				}
			case "unified":
				cfg, err = config.AllocateMulti(reqs, *totalKB<<10, *threads)
				if err != nil {
					fmt.Fprintln(os.Stderr, "smsim:", err)
					os.Exit(1)
				}
			case "fermi":
				cfg = config.ChooseFermiMulti(reqs, *totalKB<<10-config.BaselineRFBytes, *threads)
			default:
				fmt.Fprintf(os.Stderr, "smsim: unknown design %q\n", *design)
				os.Exit(2)
			}
		}
		runStreamsAndReport(r, kernels, cfg)
		return
	}
	if *kernelName == "" {
		fmt.Fprintln(os.Stderr, "smsim: -kernel is required (try -list)")
		os.Exit(2)
	}
	k, err := workloads.ByName(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smsim:", err)
		os.Exit(2)
	}

	var cfg config.MemConfig
	if *machineFile != "" {
		mcfg, params, eparams, err := machine.Load(*machineFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smsim:", err)
			os.Exit(1)
		}
		r := core.NewRunner()
		r.Params = params
		if *schedName != "" {
			r.Params.Scheduler = policy // the flag overrides the machine file
		}
		r.Energy.P = eparams
		runAndReport(r, k, mcfg, *regs)
		return
	}
	switch *design {
	case "partitioned":
		cfg = config.MemConfig{
			Design:      config.Partitioned,
			RFBytes:     *rfKB << 10,
			SharedBytes: *shmKB << 10,
			CacheBytes:  *cacheKB << 10,
			MaxThreads:  *threads,
		}
	case "unified":
		cfg, err = config.Allocate(k.Requirements(), *totalKB<<10, *threads)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smsim:", err)
			os.Exit(1)
		}
	case "fermi":
		cfg = config.ChooseFermi(k.Requirements(), *totalKB<<10-config.BaselineRFBytes, *threads)
	default:
		fmt.Fprintf(os.Stderr, "smsim: unknown design %q\n", *design)
		os.Exit(2)
	}

	r := core.NewRunner()
	r.Params.Scheduler = policy
	runAndReport(r, k, cfg, *regs)
}

// parseStreams resolves a "+"-joined kernel list ("needle+matrixmul")
// against the registry. At least two names make a multi-tenant mix.
func parseStreams(spec string) ([]*workloads.Kernel, error) {
	names := strings.Split(spec, "+")
	if len(names) < 2 {
		return nil, fmt.Errorf("-streams wants at least two \"+\"-joined kernels, got %q", spec)
	}
	kernels := make([]*workloads.Kernel, len(names))
	for i, name := range names {
		k, err := workloads.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		kernels[i] = k
	}
	return kernels, nil
}

// runStreamsAndReport executes a multi-tenant mix and prints the joint
// report plus the per-stream attribution table.
func runStreamsAndReport(r *core.Runner, kernels []*workloads.Kernel, cfg config.MemConfig) {
	specs := make([]core.StreamSpec, len(kernels))
	for i, k := range kernels {
		specs[i] = core.StreamSpec{Kernel: k}
	}
	res, err := r.Run(core.RunSpec{Config: cfg, Streams: specs})
	var fit *core.FitError
	if errors.As(err, &fit) {
		fmt.Fprintf(os.Stderr, "smsim: %s cannot achieve co-residency of one CTA under %v: the binding resource is %v\n",
			fit.Kernel, fit.Config, fit.Limiter)
		fmt.Fprintln(os.Stderr, "smsim: raise that capacity (-rf/-shm/-cache/-total), raise -threads, or drop a stream")
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smsim:", err)
		os.Exit(1)
	}

	c := res.Counters
	fmt.Printf("%s (%d streams co-resident)\n", core.StreamNames(res.Spec.Streams), len(kernels))
	fmt.Printf("configuration: %v  threads=%d (%d CTAs jointly resident)\n",
		cfg, res.Occupancy.Threads, res.Occupancy.CTAs)
	fmt.Println()

	joint := report.NewTable("Joint execution",
		"cycles", "warp insts", "IPC", "cache hit", "dram read", "dram write")
	joint.AddRow(fmt.Sprint(c.Cycles), fmt.Sprint(c.WarpInsts),
		fmt.Sprintf("%.3f", c.IPC()), report.Percent(c.CacheHitRate()),
		fmt.Sprintf("%d B", c.DRAMReadBytes), fmt.Sprintf("%d B", c.DRAMWriteBytes))
	fmt.Print(joint)
	fmt.Println()

	per := report.NewTable("Per-stream attribution (counters sum exactly to the joint run)",
		"stream", "CTAs", "threads", "limiter", "cycles", "warp insts", "IPC", "cache hit", "dram bytes")
	for _, st := range res.Streams {
		sc := st.Counters
		per.AddRow(st.Kernel, fmt.Sprint(st.Occupancy.CTAs), fmt.Sprint(st.Occupancy.Threads),
			fmt.Sprint(st.Occupancy.Limiter), fmt.Sprint(sc.Cycles), fmt.Sprint(sc.WarpInsts),
			fmt.Sprintf("%.3f", sc.IPC()), report.Percent(sc.CacheHitRate()),
			fmt.Sprint(sc.DRAMBytes()))
	}
	fmt.Print(per)
	fmt.Println()

	e := res.Energy
	en := report.NewTable("Energy (J, joint run)",
		"MRF", "ORF+LRF", "shared", "cache+tags", "other dyn", "leakage", "DRAM", "total")
	en.AddRow(fmt.Sprintf("%.2e", e.MRF), fmt.Sprintf("%.2e", e.ORF+e.LRF),
		fmt.Sprintf("%.2e", e.Shared), fmt.Sprintf("%.2e", e.Cache+e.Tags),
		fmt.Sprintf("%.2e", e.Other), fmt.Sprintf("%.2e", e.Leak),
		fmt.Sprintf("%.2e", e.DRAM), fmt.Sprintf("%.2e", e.Total()))
	fmt.Print(en)
}

// runAndReport executes the kernel and prints the full report.
func runAndReport(r *core.Runner, k *workloads.Kernel, cfg config.MemConfig, regs int) {
	res, err := r.Run(core.RunSpec{Kernel: k, Config: cfg, RegsPerThread: regs})
	var fit *core.FitError
	if errors.As(err, &fit) {
		fmt.Fprintf(os.Stderr, "smsim: %s cannot achieve residency of one CTA under %v: the binding resource is %v\n",
			fit.Kernel, fit.Config, fit.Limiter)
		fmt.Fprintln(os.Stderr, "smsim: raise that capacity (-rf/-shm/-cache/-total) or lower -regs/-threads")
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smsim:", err)
		os.Exit(1)
	}

	c := res.Counters
	fmt.Printf("%s (%s, %s)\n", k.Name, k.Suite, k.Description)
	fmt.Printf("configuration: %v  threads=%d (limited by %v, %d CTAs)\n",
		cfg, res.Occupancy.Threads, res.Occupancy.Limiter, res.Occupancy.CTAs)
	fmt.Println()

	perf := report.NewTable("Execution",
		"cycles", "warp insts", "IPC", "spill insts", "CTAs", "threads run")
	perf.AddRow(fmt.Sprint(c.Cycles), fmt.Sprint(c.WarpInsts),
		fmt.Sprintf("%.3f", c.IPC()), fmt.Sprint(c.SpillInsts),
		fmt.Sprint(c.CTAsRetired), fmt.Sprint(c.ThreadsRun))
	fmt.Print(perf)
	fmt.Println()

	mem := report.NewTable("Memory system",
		"cache probes", "hit rate", "dram read", "dram write", "dram accesses")
	mem.AddRow(fmt.Sprint(c.CacheProbes), report.Percent(c.CacheHitRate()),
		fmt.Sprintf("%d B", c.DRAMReadBytes), fmt.Sprintf("%d B", c.DRAMWriteBytes),
		fmt.Sprint(c.DRAMAccesses()))
	fmt.Print(mem)
	fmt.Println()

	fr := c.ConflictFractions()
	confl := report.NewTable("Bank conflicts (max accesses to one bank per instruction)",
		"<=1", "2", "3", "4", ">4", "arbitration")
	confl.AddRow(report.Percent(fr[0]), report.Percent(fr[1]), report.Percent(fr[2]),
		report.Percent(fr[3]), report.Percent(fr[4]), fmt.Sprint(c.ArbitrationConflicts))
	fmt.Print(confl)
	fmt.Println()

	regtab := report.NewTable("Register hierarchy accesses",
		"MRF reads", "MRF writes", "ORF", "LRF", "MRF fraction")
	regtab.AddRow(fmt.Sprint(c.MRFReads), fmt.Sprint(c.MRFWrites),
		fmt.Sprint(c.ORFReads+c.ORFWrites), fmt.Sprint(c.LRFReads+c.LRFWrites),
		report.Percent(c.MRFAccessFraction()))
	fmt.Print(regtab)
	fmt.Println()

	e := res.Energy
	en := report.NewTable("Energy (J)",
		"MRF", "ORF+LRF", "shared", "cache+tags", "other dyn", "leakage", "DRAM", "total")
	en.AddRow(fmt.Sprintf("%.2e", e.MRF), fmt.Sprintf("%.2e", e.ORF+e.LRF),
		fmt.Sprintf("%.2e", e.Shared), fmt.Sprintf("%.2e", e.Cache+e.Tags),
		fmt.Sprintf("%.2e", e.Other), fmt.Sprintf("%.2e", e.Leak),
		fmt.Sprintf("%.2e", e.DRAM), fmt.Sprintf("%.2e", e.Total()))
	fmt.Print(en)
}
