// Command chipsim runs a benchmark across a multi-SM chip with a shared,
// channel-interleaved DRAM system — the full machine of the paper's
// Figure 1a — and compares per-SM behaviour against the single-SM
// methodology the paper uses (Section 5.1).
//
// Examples:
//
//	chipsim -kernel needle -sms 4
//	chipsim -kernel pcr -sms 8 -l2 768        # with a 768 KB chip L2
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/chip"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/occupancy"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sm"
	"repro/internal/workloads"
)

// replicated deals one grid per SM.
type replicated struct {
	src    sm.TraceSource
	ctas   int
	warps  int
	factor int
}

func (r *replicated) Grid() (int, int) { return r.ctas * r.factor, r.warps }
func (r *replicated) WarpTrace(cta, warp int) []isa.WarpInst {
	return r.src.WarpTrace(cta, warp)
}

func main() {
	var (
		kernelName = flag.String("kernel", "", "benchmark name (see smsim -list)")
		sms        = flag.Int("sms", 4, "number of streaming multiprocessors")
		l2KB       = flag.Int("l2", 0, "optional shared chip L2 capacity in KB (0 = none, as in the paper)")
		stagger    = flag.Int64("stagger", 0, "per-SM launch stagger in cycles")
		jobs       = flag.Int("j", runtime.NumCPU(), "parallel simulation workers (1 = serial)")
	)
	flag.Parse()
	parallel.SetWorkers(*jobs)
	if *kernelName == "" {
		fmt.Fprintln(os.Stderr, "chipsim: -kernel is required")
		os.Exit(2)
	}
	k, err := workloads.ByName(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chipsim:", err)
		os.Exit(2)
	}

	// The single-SM reference (the paper's methodology) and the multi-SM
	// chip simulation are independent; run them concurrently.
	runner := core.NewRunner()
	mem := dram.DefaultSystemConfig(*sms)
	mem.L2Bytes = *l2KB << 10
	var single *core.Result
	var res *chip.Result
	err = parallel.Do(
		func() error {
			var err error
			single, err = runner.Baseline(k)
			return err
		},
		func() error {
			occ := occupancy.Compute(k.Requirements(), config.Baseline(), 0)
			src := &workloads.Source{K: k, Seed: 1}
			_, warps := src.Grid()
			machine, err := chip.New(chip.Config{NumSMs: *sms, Mem: mem, LaunchStagger: *stagger},
				config.Baseline(), runner.Params, &replicated{src, k.GridCTAs, warps, *sms}, occ.CTAs)
			if err != nil {
				return err
			}
			res, err = machine.Run()
			return err
		},
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chipsim:", err)
		os.Exit(1)
	}

	fmt.Printf("%s on a %d-SM chip (%d DRAM channels", k.Name, *sms, mem.Channels)
	if *l2KB > 0 {
		fmt.Printf(", %dKB L2", *l2KB)
	}
	fmt.Print(")\n\n")

	t := report.NewTable("Per-SM runtimes vs the single-SM methodology",
		"sm", "cycles", "vs single-SM")
	t.AddRow("single-SM model", fmt.Sprint(single.Counters.Cycles), "1.00")
	for i, c := range res.PerSM {
		t.AddRow(fmt.Sprintf("sm%d", i), fmt.Sprint(c.Cycles),
			report.Ratio(float64(c.Cycles)/float64(single.Counters.Cycles)))
	}
	fmt.Print(t)
	fmt.Printf("\nchip runtime %d cycles; DRAM r=%dB w=%dB; out-of-order requests %d\n",
		res.Cycles, res.DRAMReadBytes, res.DRAMWriteBytes, res.OutOfOrder)
}
