// Command chipsim runs a benchmark across a multi-SM chip with a shared,
// channel-interleaved DRAM system — the full machine of the paper's
// Figure 1a — and compares per-SM behaviour against the single-SM
// methodology the paper uses (Section 5.1).
//
// Examples:
//
//	chipsim -kernel needle -sms 4
//	chipsim -kernel pcr -sms 8 -l2 768        # with a 768 KB chip L2
//	chipsim -streams needle+matrixmul -sms 4  # concurrent kernels, SMs partitioned
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/chip"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/occupancy"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sm"
	"repro/internal/workloads"
)

// replicated deals one grid per SM.
type replicated struct {
	src    sm.TraceSource
	ctas   int
	warps  int
	factor int
}

func (r *replicated) Grid() (int, int) { return r.ctas * r.factor, r.warps }
func (r *replicated) WarpTrace(cta, warp int) []isa.WarpInst {
	return r.src.WarpTrace(cta, warp)
}

// runMulti schedules several kernels concurrently across the chip's
// SMs (chip.NewMulti) and compares each SM against its kernel's
// single-SM methodology run.
func runMulti(spec string, sms, l2KB int, stagger int64) {
	names := strings.Split(spec, "+")
	if len(names) < 2 {
		fmt.Fprintf(os.Stderr, "chipsim: -streams wants at least two \"+\"-joined kernels, got %q\n", spec)
		os.Exit(2)
	}
	if sms < len(names) {
		fmt.Fprintf(os.Stderr, "chipsim: %d SMs cannot host %d concurrent kernels (raise -sms)\n", sms, len(names))
		os.Exit(2)
	}
	kernels := make([]*workloads.Kernel, len(names))
	for i, name := range names {
		k, err := workloads.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "chipsim:", err)
			os.Exit(2)
		}
		kernels[i] = k
	}
	mem := dram.DefaultSystemConfig(sms)
	mem.L2Bytes = l2KB << 10

	runner := core.NewRunner()
	multi := make([]chip.MultiKernel, len(kernels))
	for j, k := range kernels {
		// Kernel j owns ceil-or-floor(sms/K) SMs; deal it one grid per
		// owned SM, the same replication the single-kernel path uses.
		n := sms / len(kernels)
		if j < sms%len(kernels) {
			n++
		}
		occ := occupancy.Compute(k.Requirements(), config.Baseline(), 0)
		src := &workloads.Source{K: k, Seed: 1}
		_, warps := src.Grid()
		multi[j] = chip.MultiKernel{
			Name:         k.Name,
			Source:       &replicated{src, k.GridCTAs, warps, n},
			ResidentCTAs: occ.CTAs,
		}
	}

	// Per-kernel single-SM references and the chip run are independent.
	singles := make([]*core.Result, len(kernels))
	var work []func() error
	for j, k := range kernels {
		work = append(work, func() error {
			var err error
			singles[j], err = runner.Baseline(k)
			return err
		})
	}
	var res *chip.Result
	work = append(work, func() error {
		machine, err := chip.NewMulti(chip.Config{NumSMs: sms, Mem: mem, LaunchStagger: stagger},
			config.Baseline(), runner.Params, multi)
		if err != nil {
			return err
		}
		res, err = machine.Run()
		return err
	})
	if err := parallel.Do(work...); err != nil {
		fmt.Fprintln(os.Stderr, "chipsim:", err)
		os.Exit(1)
	}

	fmt.Printf("%s concurrent on a %d-SM chip (%d DRAM channels", spec, sms, mem.Channels)
	if l2KB > 0 {
		fmt.Printf(", %dKB L2", l2KB)
	}
	fmt.Print(")\n\n")

	singleOf := map[string]*core.Result{}
	for j, k := range kernels {
		singleOf[k.Name] = singles[j]
	}
	t := report.NewTable("Per-SM runtimes vs each kernel's single-SM methodology",
		"sm", "kernel", "cycles", "vs single-SM")
	for j, k := range kernels {
		t.AddRow("single-SM model", k.Name, fmt.Sprint(singles[j].Counters.Cycles), "1.00")
	}
	for i, c := range res.PerSM {
		name := res.PerSMKernel[i]
		t.AddRow(fmt.Sprintf("sm%d", i), name, fmt.Sprint(c.Cycles),
			report.Ratio(float64(c.Cycles)/float64(singleOf[name].Counters.Cycles)))
	}
	fmt.Print(t)
	fmt.Printf("\nchip runtime %d cycles; DRAM r=%dB w=%dB; out-of-order requests %d\n",
		res.Cycles, res.DRAMReadBytes, res.DRAMWriteBytes, res.OutOfOrder)
}

func main() {
	var (
		kernelName = flag.String("kernel", "", "benchmark name (see smsim -list)")
		streamSpec = flag.String("streams", "", "run several kernels concurrently, \"+\"-joined; the SMs are partitioned among them")
		sms        = flag.Int("sms", 4, "number of streaming multiprocessors")
		l2KB       = flag.Int("l2", 0, "optional shared chip L2 capacity in KB (0 = none, as in the paper)")
		stagger    = flag.Int64("stagger", 0, "per-SM launch stagger in cycles")
		jobs       = flag.Int("j", runtime.NumCPU(), "parallel simulation workers (1 = serial)")
	)
	flag.Parse()
	parallel.SetWorkers(*jobs)
	if *streamSpec != "" {
		runMulti(*streamSpec, *sms, *l2KB, *stagger)
		return
	}
	if *kernelName == "" {
		fmt.Fprintln(os.Stderr, "chipsim: -kernel is required")
		os.Exit(2)
	}
	k, err := workloads.ByName(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chipsim:", err)
		os.Exit(2)
	}

	// The single-SM reference (the paper's methodology) and the multi-SM
	// chip simulation are independent; run them concurrently.
	runner := core.NewRunner()
	mem := dram.DefaultSystemConfig(*sms)
	mem.L2Bytes = *l2KB << 10
	var single *core.Result
	var res *chip.Result
	err = parallel.Do(
		func() error {
			var err error
			single, err = runner.Baseline(k)
			return err
		},
		func() error {
			occ := occupancy.Compute(k.Requirements(), config.Baseline(), 0)
			src := &workloads.Source{K: k, Seed: 1}
			_, warps := src.Grid()
			machine, err := chip.New(chip.Config{NumSMs: *sms, Mem: mem, LaunchStagger: *stagger},
				config.Baseline(), runner.Params, &replicated{src, k.GridCTAs, warps, *sms}, occ.CTAs)
			if err != nil {
				return err
			}
			res, err = machine.Run()
			return err
		},
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chipsim:", err)
		os.Exit(1)
	}

	fmt.Printf("%s on a %d-SM chip (%d DRAM channels", k.Name, *sms, mem.Channels)
	if *l2KB > 0 {
		fmt.Printf(", %dKB L2", *l2KB)
	}
	fmt.Print(")\n\n")

	t := report.NewTable("Per-SM runtimes vs the single-SM methodology",
		"sm", "cycles", "vs single-SM")
	t.AddRow("single-SM model", fmt.Sprint(single.Counters.Cycles), "1.00")
	for i, c := range res.PerSM {
		t.AddRow(fmt.Sprintf("sm%d", i), fmt.Sprint(c.Cycles),
			report.Ratio(float64(c.Cycles)/float64(single.Counters.Cycles)))
	}
	fmt.Print(t)
	fmt.Printf("\nchip runtime %d cycles; DRAM r=%dB w=%dB; out-of-order requests %d\n",
		res.Cycles, res.DRAMReadBytes, res.DRAMWriteBytes, res.OutOfOrder)
}
