// Command smprof runs one benchmark kernel with the cycle-level probe
// attached and renders its execution profile: a stall-attribution table
// (where every lost issue slot went), a per-bank access/conflict
// heatmap, and interval sparklines showing how issue rate, cache hit
// rate, and DRAM traffic evolve over the run. It can also stream the
// raw NDJSON profile for external tooling.
//
// Examples:
//
//	smprof -kernel needle                        # baseline partitioned run
//	smprof -kernel bfs -design unified -total 384
//	smprof -streams needle+matrixmul             # multi-tenant mix with per-stream stalls
//	smprof -kernel dgemm -interval 2048          # finer phase sampling
//	smprof -kernel needle -ndjson needle.ndjson  # raw profile to a file
//	smprof -kernel needle -ndjson -              # raw profile to stdout
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	var (
		kernelName = flag.String("kernel", "", "benchmark name (see -list)")
		design     = flag.String("design", "partitioned", "partitioned | unified | fermi")
		rfKB       = flag.Int("rf", 256, "register file capacity in KB (partitioned design)")
		shmKB      = flag.Int("shm", 64, "shared memory capacity in KB (partitioned design)")
		cacheKB    = flag.Int("cache", 64, "cache capacity in KB (partitioned design)")
		totalKB    = flag.Int("total", 384, "total unified capacity in KB (unified/fermi designs)")
		threads    = flag.Int("threads", 0, "resident thread cap (0 = architectural limit)")
		regs       = flag.Int("regs", 0, "registers allocated per thread (0 = spill-free demand)")
		interval   = flag.Int64("interval", 0, "sampling interval in cycles (0 = default)")
		ndjson     = flag.String("ndjson", "", "stream the raw NDJSON profile to this file (\"-\" = stdout)")
		schedName  = flag.String("sched", "", "warp scheduler: twolevel (default) | gto")
		streamSpec = flag.String("streams", "", "profile several kernels co-resident on one SM, \"+\"-joined (e.g. needle+matrixmul)")
		list       = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	policy, err := sched.ParsePolicy(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smprof:", err)
		os.Exit(2)
	}

	if *list {
		t := report.NewTable("Benchmarks", "name", "suite", "category")
		for _, k := range workloads.All() {
			t.AddRow(k.Name, k.Suite, k.Category.String())
		}
		fmt.Print(t)
		return
	}
	var streamNames []string
	if *streamSpec != "" {
		if *kernelName != "" {
			fmt.Fprintln(os.Stderr, "smprof: -kernel and -streams are mutually exclusive")
			os.Exit(2)
		}
		streamNames = strings.Split(*streamSpec, "+")
		if len(streamNames) < 2 {
			fmt.Fprintf(os.Stderr, "smprof: -streams wants at least two \"+\"-joined kernels, got %q\n", *streamSpec)
			os.Exit(2)
		}
	} else if *kernelName == "" {
		fmt.Fprintln(os.Stderr, "smprof: -kernel is required (try -list)")
		os.Exit(2)
	}
	// One requirements slice covers both forms: the multi allocators
	// delegate to the single-kernel ones for a one-entry mix.
	names := streamNames
	if len(names) == 0 {
		names = []string{*kernelName}
	}
	reqs := make([]config.KernelRequirements, len(names))
	for i, name := range names {
		k, err := workloads.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "smprof:", err)
			os.Exit(2)
		}
		names[i] = k.Name
		reqs[i] = k.Requirements()
	}

	var cfg config.MemConfig
	switch *design {
	case "partitioned":
		cfg = config.MemConfig{
			Design:      config.Partitioned,
			RFBytes:     *rfKB << 10,
			SharedBytes: *shmKB << 10,
			CacheBytes:  *cacheKB << 10,
			MaxThreads:  *threads,
		}
	case "unified":
		cfg, err = config.AllocateMulti(reqs, *totalKB<<10, *threads)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smprof:", err)
			os.Exit(1)
		}
	case "fermi":
		cfg = config.ChooseFermiMulti(reqs, *totalKB<<10-config.BaselineRFBytes, *threads)
	default:
		fmt.Fprintf(os.Stderr, "smprof: unknown design %q\n", *design)
		os.Exit(2)
	}

	var out io.Writer
	switch *ndjson {
	case "":
	case "-":
		out = os.Stdout
	default:
		f, err := os.Create(*ndjson)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smprof:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	runner := core.NewRunner()
	runner.Params.Scheduler = policy
	pr, err := harness.Profile(runner, harness.ProfileSpec{
		Kernel:         *kernelName,
		Streams:        streamNames,
		Config:         cfg,
		RegsPerThread:  *regs,
		IntervalCycles: *interval,
		NDJSON:         out,
	})
	var fit *core.FitError
	if errors.As(err, &fit) {
		fmt.Fprintf(os.Stderr, "smprof: %s cannot achieve residency of one CTA under %v: the binding resource is %v\n",
			fit.Kernel, fit.Config, fit.Limiter)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smprof:", err)
		os.Exit(1)
	}

	// When NDJSON goes to stdout, keep the human report off it.
	if out == os.Stdout {
		return
	}
	fmt.Print(harness.FormatProfile(pr))
}
