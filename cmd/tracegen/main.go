// Command tracegen records a benchmark's warp instruction trace to a file
// (the interchange point equivalent to the paper's Ocelot trace files).
// Recorded traces can be profiled with tracestat or replayed on the
// simulator with smsim -trace.
//
// Examples:
//
//	tracegen -kernel needle -o needle.trc
//	tracegen -kernel dgemm -regs 24 -o dgemm-r24.trc   # with spill code
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		kernelName = flag.String("kernel", "", "benchmark name (see smsim -list)")
		out        = flag.String("o", "", "output file (default <kernel>.trc)")
		regs       = flag.Int("regs", 0, "registers allocated per thread (0 = spill-free demand)")
		seed       = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()
	if *kernelName == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -kernel is required")
		os.Exit(2)
	}
	k, err := workloads.ByName(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(2)
	}
	if *out == "" {
		*out = k.Name + ".trc"
	}
	regsAvail := 0
	if *regs > 0 && *regs < k.RegsNeeded {
		regsAvail = *regs
	}
	src := &workloads.Source{K: k, RegsAvail: regsAvail, Seed: *seed}
	t := trace.Record(src)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.Write(f, t); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	info, _ := os.Stat(*out)
	fmt.Printf("%s: %d CTAs x %d warps, %d instructions, %d bytes\n",
		*out, t.CTAs, t.WarpsPerCTA, t.Instructions(), info.Size())
}
