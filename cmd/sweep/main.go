// Command sweep runs custom capacity sweeps: it varies one local-memory
// resource for one benchmark across a range and reports performance,
// DRAM traffic, and energy at each point — the generalization of the
// paper's Figures 2-4 to arbitrary benchmarks and ranges. Sweep points
// run in parallel across -j workers; rows print in capacity order
// regardless of worker count.
//
// Examples:
//
//	sweep -kernel bfs -resource cache -from 32 -to 512 -step 2x
//	sweep -kernel dgemm -resource rf -from 64 -to 256 -step 64 -threads 1024
//	sweep -kernel needle -resource shared -from 16 -to 384 -step 2x -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/occupancy"
	"repro/internal/parallel"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workloads"
)

// parseStep turns a -step value into a capacity successor function:
// "2x" doubles, a positive integer adds that many KB. Anything else —
// including trailing garbage like "64abc", which fmt.Sscanf would
// silently accept — is rejected.
func parseStep(step string) (func(kb int) int, error) {
	if step == "2x" {
		return func(kb int) int { return kb * 2 }, nil
	}
	add, err := strconv.Atoi(step)
	if err != nil || add <= 0 {
		return nil, fmt.Errorf("bad -step %q (want a positive KB count or 2x)", step)
	}
	return func(kb int) int { return kb + add }, nil
}

func main() {
	var (
		kernelName = flag.String("kernel", "", "benchmark name")
		resource   = flag.String("resource", "cache", "rf | shared | cache")
		fromKB     = flag.Int("from", 32, "first capacity in KB")
		toKB       = flag.Int("to", 512, "last capacity in KB")
		step       = flag.String("step", "2x", "additive KB step (e.g. 64) or \"2x\" for doubling")
		threads    = flag.Int("threads", 0, "resident thread cap (0 = architectural limit)")
		jobs       = flag.Int("j", runtime.NumCPU(), "parallel simulation workers (1 = serial)")
		schedName  = flag.String("sched", "", "warp scheduler: twolevel (default) | gto")
		csv        = flag.Bool("csv", false, "emit CSV")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	parallel.SetWorkers(*jobs)
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	defer stopProf()
	policy, err := sched.ParsePolicy(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	if *kernelName == "" {
		fmt.Fprintln(os.Stderr, "sweep: -kernel is required")
		os.Exit(2)
	}
	k, err := workloads.ByName(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	next, err := parseStep(*step)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	switch *resource {
	case "rf", "shared", "cache":
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown resource %q\n", *resource)
		os.Exit(2)
	}

	var capacities []int
	for kb := *fromKB; kb <= *toKB; kb = next(kb) {
		capacities = append(capacities, kb)
	}

	r := core.NewRunner()
	r.Params.Scheduler = policy
	start := time.Now()
	rows, err := parallel.Map(len(capacities), func(i int) ([]string, error) {
		kb := capacities[i]
		cfg := config.MemConfig{
			Design:      config.Partitioned,
			RFBytes:     occupancy.FullOccupancyRFBytes(k.RegsNeeded),
			SharedBytes: core.UnboundedShared(k),
			CacheBytes:  config.BaselineCacheBytes,
			MaxThreads:  *threads,
		}
		switch *resource {
		case "rf":
			cfg.RFBytes = kb << 10
		case "shared":
			cfg.SharedBytes = kb << 10
		case "cache":
			cfg.CacheBytes = kb << 10
		}
		res, err := r.Run(core.RunSpec{Kernel: k, Config: cfg})
		if core.IsInfeasible(err) {
			return []string{fmt.Sprintf("%dK", kb), "-", "infeasible", "-", "-", "-"}, nil
		}
		if err != nil {
			return nil, err
		}
		return []string{fmt.Sprintf("%dK", kb), fmt.Sprint(res.Occupancy.Threads),
			fmt.Sprint(res.Counters.Cycles), fmt.Sprintf("%.3f", res.Counters.IPC()),
			fmt.Sprint(res.Counters.DRAMBytes()), fmt.Sprintf("%.3e", res.Energy.Total())}, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	t := report.NewTable(
		fmt.Sprintf("%s: performance vs %s capacity", k.Name, *resource),
		"capacity", "threads", "cycles", "IPC", "dram bytes", "energy (J)")
	for _, row := range rows {
		t.AddRow(row...)
	}
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d point(s) in %v with %d worker(s)\n",
		len(capacities), time.Since(start).Round(time.Millisecond), parallel.Workers())
}
