// Command sweep runs custom capacity sweeps: it varies one local-memory
// resource for one benchmark across a range and reports performance,
// DRAM traffic, and energy at each point — the generalization of the
// paper's Figures 2-4 to arbitrary benchmarks and ranges.
//
// Examples:
//
//	sweep -kernel bfs -resource cache -from 32 -to 512 -step 2x
//	sweep -kernel dgemm -resource rf -from 64 -to 256 -step 64 -threads 1024
//	sweep -kernel needle -resource shared -from 16 -to 384 -step 2x -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/occupancy"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	var (
		kernelName = flag.String("kernel", "", "benchmark name")
		resource   = flag.String("resource", "cache", "rf | shared | cache")
		fromKB     = flag.Int("from", 32, "first capacity in KB")
		toKB       = flag.Int("to", 512, "last capacity in KB")
		step       = flag.String("step", "2x", "additive KB step (e.g. 64) or \"2x\" for doubling")
		threads    = flag.Int("threads", 0, "resident thread cap (0 = architectural limit)")
		csv        = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()
	if *kernelName == "" {
		fmt.Fprintln(os.Stderr, "sweep: -kernel is required")
		os.Exit(2)
	}
	k, err := workloads.ByName(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}

	next := func(kb int) int { return kb * 2 }
	if *step != "2x" {
		var add int
		if _, err := fmt.Sscanf(*step, "%d", &add); err != nil || add <= 0 {
			fmt.Fprintln(os.Stderr, "sweep: bad -step (want a positive KB count or 2x)")
			os.Exit(2)
		}
		next = func(kb int) int { return kb + add }
	}

	r := core.NewRunner()
	t := report.NewTable(
		fmt.Sprintf("%s: performance vs %s capacity", k.Name, *resource),
		"capacity", "threads", "cycles", "IPC", "dram bytes", "energy (J)")
	for kb := *fromKB; kb <= *toKB; kb = next(kb) {
		cfg := config.MemConfig{
			Design:      config.Partitioned,
			RFBytes:     occupancy.FullOccupancyRFBytes(k.RegsNeeded),
			SharedBytes: core.UnboundedShared(k),
			CacheBytes:  config.BaselineCacheBytes,
			MaxThreads:  *threads,
		}
		switch *resource {
		case "rf":
			cfg.RFBytes = kb << 10
		case "shared":
			cfg.SharedBytes = kb << 10
		case "cache":
			cfg.CacheBytes = kb << 10
		default:
			fmt.Fprintf(os.Stderr, "sweep: unknown resource %q\n", *resource)
			os.Exit(2)
		}
		res, err := r.Run(core.RunSpec{Kernel: k, Config: cfg})
		if err != nil {
			t.AddRow(fmt.Sprintf("%dK", kb), "-", "infeasible", "-", "-", "-")
			continue
		}
		t.AddRow(fmt.Sprintf("%dK", kb), fmt.Sprint(res.Occupancy.Threads),
			fmt.Sprint(res.Counters.Cycles), fmt.Sprintf("%.3f", res.Counters.IPC()),
			fmt.Sprint(res.Counters.DRAMBytes()), fmt.Sprintf("%.3e", res.Energy.Total()))
	}
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t)
	}
}
