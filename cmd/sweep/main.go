// Command sweep runs custom sweeps for one benchmark and reports
// performance, DRAM traffic, and energy at each point.
//
// Capacity sweeps (-resource rf | shared | cache) vary one local-memory
// resource across a range — the generalization of the paper's Figures
// 2-4 to arbitrary benchmarks and ranges. Parameter sweeps (-resource
// mshr | dramlat | drambw) vary a timing parameter instead; because
// timing parameters do not alter the warm-up history, these sweeps warm
// one simulation prefix to the -warm cycle and fork it copy-on-write
// into every sweep point, paying the warm-up cost once (see
// internal/snapshot). Sweep points run in parallel across -j workers;
// rows print in order regardless of worker count.
//
// -sample detailed=W,skip=S switches capacity sweeps to sampled
// simulation (detailed windows alternating with functional
// fast-forwards): much faster on long grids, with approximate cycle
// counts — the paper driver's sampling table reports the measured error
// per workload.
//
// -submit URL runs the sweep remotely instead: it submits the sweep as
// a durable async job to an smserve instance (POST /v1/jobs), reports
// progress while polling, and renders the same table from the job's
// result. A server started with -data-dir persists every completed
// point, so an interrupted sweep resumes where it left off — even
// across server restarts.
//
// Examples:
//
//	sweep -kernel bfs -resource cache -from 32 -to 512 -step 2x
//	sweep -kernel dgemm -resource rf -from 64 -to 256 -step 64 -threads 1024
//	sweep -kernel needle -resource shared -from 16 -to 384 -step 2x -csv
//	sweep -kernel mummer -resource mshr -from 2 -to 32 -step 2x -warm 50000
//	sweep -kernel bfs -resource dramlat -from 200 -to 800 -step 100 -warm 20000
//	sweep -kernel dgemm -resource cache -from 32 -to 512 -step 2x -sample detailed=4096,skip=32768
//	sweep -kernel bfs -resource cache -from 32 -to 512 -step 2x -submit http://127.0.0.1:8344
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/api"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/occupancy"
	"repro/internal/parallel"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sm"
	"repro/internal/workloads"
)

// paramMutators maps the fork-compatible -resource names to their
// parameter mutation. Every axis here is divergable across a snapshot
// (sm.Fork); capacity resources are prefix-defining and sweep the slow
// way.
var paramMutators = map[string]func(*sm.Params, int){
	"mshr":    func(p *sm.Params, v int) { p.MaxMSHRs = v },
	"dramlat": func(p *sm.Params, v int) { p.DRAM.LatencyCycles = int64(v) },
	"drambw":  func(p *sm.Params, v int) { p.DRAM.BytesPerCycle = v },
}

func main() {
	var (
		kernelName = flag.String("kernel", "", "benchmark name")
		resource   = flag.String("resource", "cache", "rf | shared | cache (capacity, KB) or mshr | dramlat | drambw (timing parameter)")
		from       = flag.Int("from", 32, "first value (KB for capacity resources)")
		to         = flag.Int("to", 512, "last value")
		step       = flag.String("step", "2x", "additive step (e.g. 64) or \"2x\" for doubling")
		threads    = flag.Int("threads", 0, "resident thread cap (0 = architectural limit)")
		jobs       = flag.Int("j", runtime.NumCPU(), "parallel simulation workers (1 = serial)")
		schedName  = flag.String("sched", "", "warp scheduler: twolevel (default) | gto")
		warmCycles = flag.Int64("warm", 0, "warm-prefix cycle for parameter sweeps: fork every point from one run warmed to this cycle")
		sampleSpec = flag.String("sample", "", "sampled simulation for capacity sweeps: detailed=W,skip=S cycles")
		submitURL  = flag.String("submit", "", "submit the sweep as an async job to this smserve base URL instead of simulating locally")
		csv        = flag.Bool("csv", false, "emit CSV")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	parallel.SetWorkers(*jobs)
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	defer stopProf()
	policy, err := sched.ParsePolicy(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	if *kernelName == "" {
		fmt.Fprintln(os.Stderr, "sweep: -kernel is required")
		os.Exit(2)
	}
	k, err := workloads.ByName(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	next, err := api.ParseStep(*step)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	sample, err := sm.ParseSampleSpec(*sampleSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
	mutate, isParam := paramMutators[*resource]
	switch {
	case isParam:
		if sample.Enabled() {
			fmt.Fprintln(os.Stderr, "sweep: -sample applies to capacity sweeps (parameter sweeps fork a warm exact prefix instead)")
			os.Exit(2)
		}
	case *resource == "rf" || *resource == "shared" || *resource == "cache":
		if *warmCycles != 0 {
			fmt.Fprintln(os.Stderr, "sweep: -warm needs a parameter resource (mshr | dramlat | drambw); capacities define the warm-up history and cannot be forked")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown resource %q\n", *resource)
		os.Exit(2)
	}

	if *submitURL != "" {
		if sample.Enabled() {
			fmt.Fprintln(os.Stderr, "sweep: -sample is local-only (the job API runs exact simulations)")
			os.Exit(2)
		}
		req := api.SweepRequest{
			Kernel:     *kernelName,
			Resource:   *resource,
			From:       *from,
			To:         *to,
			Step:       *step,
			WarmCycles: *warmCycles,
		}
		req.Machine.MaxThreads = *threads
		req.Machine.Timing.Scheduler = string(policy)
		if err := submitSweep(*submitURL, req, isParam, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		return
	}

	var values []int
	for v := *from; v <= *to; v = next(v) {
		values = append(values, v)
	}

	r := core.NewRunner()
	r.Params.Scheduler = policy
	cfg := config.MemConfig{
		Design:      config.Partitioned,
		RFBytes:     occupancy.FullOccupancyRFBytes(k.RegsNeeded),
		SharedBytes: core.UnboundedShared(k),
		CacheBytes:  config.BaselineCacheBytes,
		MaxThreads:  *threads,
	}
	start := time.Now()

	var rows [][]string
	if isParam {
		rows, err = paramSweep(r, k, cfg, values, mutate, *warmCycles)
	} else {
		rows, err = capacitySweep(r, k, cfg, values, *resource, sample)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	title := fmt.Sprintf("%s: performance vs %s", k.Name, *resource)
	firstCol := "value"
	if !isParam {
		title += " capacity"
		firstCol = "capacity"
		if sample.Enabled() {
			title += fmt.Sprintf(" (sampled %s)", sample)
		}
	} else {
		title += fmt.Sprintf(" (forked at cycle %d)", *warmCycles)
	}
	t := report.NewRunTable(title, firstCol)
	for _, row := range rows {
		t.AddRow(row...)
	}
	if *csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d point(s) in %v with %d worker(s)\n",
		len(values), time.Since(start).Round(time.Millisecond), parallel.Workers())
}

// resultRow formats one sweep point's table row (warp IPC, as
// everywhere in the sweep tables).
func resultRow(label string, res *core.Result) []string {
	return report.RunRow(label, res.Occupancy.Threads, res.Counters.Cycles,
		res.Counters.IPC(), res.Counters.DRAMBytes(), res.Energy.Total())
}

// capacitySweep runs one independent simulation per capacity point,
// optionally in sampled mode.
func capacitySweep(r *core.Runner, k *workloads.Kernel, base config.MemConfig, capacities []int, resource string, sample sm.SampleSpec) ([][]string, error) {
	var opts []core.RunOption
	if sample.Enabled() {
		opts = append(opts, core.WithSample(sample))
	}
	return parallel.Map(len(capacities), func(i int) ([]string, error) {
		kb := capacities[i]
		cfg := base
		switch resource {
		case "rf":
			cfg.RFBytes = kb << 10
		case "shared":
			cfg.SharedBytes = kb << 10
		case "cache":
			cfg.CacheBytes = kb << 10
		}
		label := fmt.Sprintf("%dK", kb)
		res, err := r.Run(core.RunSpec{Kernel: k, Config: cfg}, opts...)
		if core.IsInfeasible(err) {
			return report.InfeasibleRunRow(label), nil
		}
		if err != nil {
			return nil, err
		}
		return resultRow(label, res), nil
	})
}

// paramSweep warms one prefix to warmCycles and forks it into every
// parameter point. A warm cycle of 0 forks at launch — still one shared
// prefix, just a trivial one.
func paramSweep(r *core.Runner, k *workloads.Kernel, cfg config.MemConfig, values []int, mutate func(*sm.Params, int), warmCycles int64) ([][]string, error) {
	warm, err := r.Warm(context.Background(), core.RunSpec{Kernel: k, Config: cfg}, warmCycles)
	if core.IsInfeasible(err) {
		rows := make([][]string, len(values))
		for i, v := range values {
			rows[i] = report.InfeasibleRunRow(fmt.Sprint(v))
		}
		return rows, nil
	}
	if err != nil {
		return nil, err
	}
	return parallel.Map(len(values), func(i int) ([]string, error) {
		params := warm.Params
		mutate(&params, values[i])
		res, err := warm.Resume(context.Background(), r, params)
		if err != nil {
			return nil, err
		}
		return resultRow(fmt.Sprint(values[i]), res), nil
	})
}

// submitSweep runs the sweep remotely as a durable async job on an
// smserve instance: submit, poll with progress lines on stderr, fetch
// the final result, and render the same table the local path prints.
func submitSweep(baseURL string, req api.SweepRequest, isParam, csv bool) error {
	values, err := req.Values()
	if err != nil {
		return err
	}
	ctx := context.Background()
	c := api.NewClient(baseURL)
	start := time.Now()
	job, err := c.SubmitJob(ctx, api.JobRequest{Sweep: &req})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: submitted job %s (%s) to %s\n", job.ID, job.Note, baseURL)
	lastDone := -1
	job, err = c.WaitJob(ctx, job.ID, 300*time.Millisecond, func(j *api.Job) {
		if j.Progress.Done != lastDone {
			lastDone = j.Progress.Done
			fmt.Fprintf(os.Stderr, "sweep: %s %d/%d point(s) (cache %d, store %d)\n",
				j.State, j.Progress.Done, j.Progress.Total, j.Progress.CacheHits, j.Progress.StoreHits)
		}
	})
	if err != nil {
		return err
	}
	if job.State != api.JobDone {
		return fmt.Errorf("job %s finished %s: %v", job.ID, job.State, job.Error)
	}
	raw, err := c.JobResult(ctx, job.ID)
	if err != nil {
		return err
	}
	var br api.BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		return fmt.Errorf("decoding job result: %w", err)
	}
	items, err := br.Items()
	if err != nil {
		return fmt.Errorf("decoding job result items: %w", err)
	}
	if len(items) != len(values) {
		return fmt.Errorf("job returned %d point(s), want %d", len(items), len(values))
	}

	title := fmt.Sprintf("%s: performance vs %s", req.Kernel, req.Resource)
	firstCol := "value"
	if !isParam {
		title += " capacity"
		firstCol = "capacity"
	} else {
		title += fmt.Sprintf(" (forked at cycle %d)", req.WarmCycles)
	}
	t := report.NewRunTable(title, firstCol)
	for i, it := range items {
		label := fmt.Sprint(values[i])
		if !isParam {
			label = fmt.Sprintf("%dK", values[i])
		}
		switch {
		case it.Error != nil && it.Error.Code == api.CodeInfeasible:
			t.AddRow(report.InfeasibleRunRow(label)...)
		case it.Error != nil:
			return fmt.Errorf("point %s failed: %v", label, it.Error)
		default:
			t.AddRow(responseRow(label, it.Result)...)
		}
	}
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Print(t)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d point(s) in %v via %s\n",
		len(values), time.Since(start).Round(time.Millisecond), baseURL)
	return nil
}

// responseRow is resultRow for a service response: same columns, same
// formatting, so remote and local tables agree.
func responseRow(label string, r *api.RunResponse) []string {
	return report.RunRow(label, r.Occupancy.Threads, r.Counters.Cycles,
		r.Counters.IPC(), r.Counters.DRAMBytes(), r.Energy.Total)
}
