package main

import "testing"

func TestParseStep(t *testing.T) {
	cases := []struct {
		step    string
		wantErr bool
		from    int
		next    int // expected successor of from, when valid
	}{
		{"2x", false, 32, 64},
		{"64", false, 32, 96},
		{"1", false, 10, 11},
		{"64abc", true, 0, 0}, // fmt.Sscanf used to accept this as 64
		{"abc", true, 0, 0},
		{"", true, 0, 0},
		{"0", true, 0, 0},
		{"-8", true, 0, 0},
		{"2x2", true, 0, 0},
		{" 64", true, 0, 0},
		{"6 4", true, 0, 0},
	}
	for _, c := range cases {
		next, err := parseStep(c.step)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseStep(%q): want error, got none", c.step)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseStep(%q): %v", c.step, err)
			continue
		}
		if got := next(c.from); got != c.next {
			t.Errorf("parseStep(%q)(%d) = %d, want %d", c.step, c.from, got, c.next)
		}
	}
}
