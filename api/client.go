package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is a thin HTTP client for the simulation service. The zero
// value is not usable; call NewClient. Methods return *Error (with
// HTTPStatus filled) for any non-2xx response, so callers branch on the
// envelope's code rather than parsing bodies.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTP is the underlying client; NewClient defaults it to
	// http.DefaultClient. Streaming (JobEvents) and long polls rely on
	// its timeout being unset or generous.
	HTTP *http.Client
}

// NewClient returns a Client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTP: http.DefaultClient}
}

// do issues one JSON request and decodes the response into out (nil to
// discard). Non-2xx responses decode into *Error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	body, err := c.doRaw(ctx, method, path, in)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("api: decoding %s %s: %w", method, path, err)
	}
	return nil
}

// doRaw issues one JSON request and returns the raw response body.
func (c *Client) doRaw(ctx context.Context, method, path string, in any) ([]byte, error) {
	var rd io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("api: encoding %s %s: %w", method, path, err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		e := decodeError(resp.StatusCode, body)
		if e.RetryAfterS == 0 {
			// Non-envelope 429s (proxies, load balancers) still carry the
			// standard header; surface it so WaitJob can back off.
			if n, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && n > 0 {
				e.RetryAfterS = n
			}
		}
		return nil, e
	}
	return body, nil
}

// decodeError turns a non-2xx body into *Error, synthesizing an
// envelope for responses that are not ours (e.g. the mux's 405).
func decodeError(status int, body []byte) *Error {
	var env ErrorBody
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.HTTPStatus = status
		return env.Error
	}
	return &Error{
		Code:       CodeInternal,
		Message:    strings.TrimSpace(string(body)),
		HTTPStatus: status,
	}
}

// Run executes one synchronous simulation.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	var out RunResponse
	if err := c.do(ctx, http.MethodPost, "/v1/run", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch executes one synchronous batch.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Experiment renders one named paper experiment synchronously.
func (c *Client) Experiment(ctx context.Context, req ExperimentRequest) (*ExperimentResponse, error) {
	var out ExperimentResponse
	if err := c.do(ctx, http.MethodPost, "/v1/experiment", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Kernels lists the benchmark registry.
func (c *Client) Kernels(ctx context.Context) ([]KernelInfo, error) {
	var out []KernelInfo
	if err := c.do(ctx, http.MethodGet, "/v1/kernels", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Metrics fetches the service's counters.
func (c *Client) Metrics(ctx context.Context) (*Snapshot, error) {
	var out Snapshot
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitJob submits an asynchronous job and returns its initial state.
func (c *Client) SubmitJob(ctx context.Context, req JobRequest) (*Job, error) {
	var out Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job polls one job's status and progress.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var out Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists every job the server knows about.
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var out []Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// CancelJob cancels a job (a no-op on terminal jobs) and returns its
// state after the request.
func (c *Client) CancelJob(ctx context.Context, id string) (*Job, error) {
	var out Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobResult fetches a terminal job's final result bytes — for a batch
// or sweep job, byte-identical to the synchronous /v1/batch response of
// the same body. A non-terminal job answers 409 (CodeNotReady).
func (c *Client) JobResult(ctx context.Context, id string) ([]byte, error) {
	return c.doRaw(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
}

// waitJobMaxBackoff caps how long WaitJob honors a server's Retry-After
// hint, so a misconfigured server cannot park a waiter for minutes.
const waitJobMaxBackoff = 30 * time.Second

// WaitJob polls the job until it reaches a terminal state (or ctx
// ends). onPoll, when non-nil, observes every successfully polled
// state. Polling honors server backoff: a 429 (over-capacity) poll does
// not fail the wait — the client sleeps for the server's Retry-After /
// retry_after_s hint (at least the poll interval, capped at
// waitJobMaxBackoff) and retries. Every sleep is context-aware, so
// cancellation is prompt even mid-backoff.
func (c *Client) WaitJob(ctx context.Context, id string, interval time.Duration, onPoll func(*Job)) (*Job, error) {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	sleep := func(d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			var ae *Error
			if errors.As(err, &ae) && ae.HTTPStatus == http.StatusTooManyRequests {
				d := interval
				if hinted := time.Duration(ae.RetryAfterS) * time.Second; hinted > d {
					d = hinted
				}
				if d > waitJobMaxBackoff {
					d = waitJobMaxBackoff
				}
				if err := sleep(d); err != nil {
					return nil, err
				}
				continue
			}
			return nil, err
		}
		if onPoll != nil {
			onPoll(j)
		}
		if j.Terminal() {
			return j, nil
		}
		if err := sleep(interval); err != nil {
			return j, err
		}
	}
}

// Compare runs a compare campaign remotely: it submits the campaign as
// an async job, waits for it (WaitJob semantics, including backoff),
// and returns the decoded batch — byte-for-byte the /v1/batch response
// of the campaign's compiled runs. onPoll, when non-nil, observes every
// poll.
func (c *Client) Compare(ctx context.Context, req CompareRequest, interval time.Duration, onPoll func(*Job)) (*BatchResponse, error) {
	job, err := c.SubmitJob(ctx, JobRequest{Compare: &req})
	if err != nil {
		return nil, err
	}
	job, err = c.WaitJob(ctx, job.ID, interval, onPoll)
	if err != nil {
		return nil, err
	}
	if job.State != JobDone {
		return nil, fmt.Errorf("api: compare job %s finished %s: %v", job.ID, job.State, job.Error)
	}
	raw, err := c.JobResult(ctx, job.ID)
	if err != nil {
		return nil, err
	}
	var br BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		return nil, fmt.Errorf("api: decoding compare job result: %w", err)
	}
	return &br, nil
}

// JobEvents streams a job's server-sent events, invoking fn for each
// decoded event — the replayed history first, then live events — until
// the server ends the stream (after the job's terminal EventDone), fn
// returns a non-nil error, or ctx ends. A nil return means the stream
// completed.
func (c *Client) JobEvents(ctx context.Context, id string, fn func(JobEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return decodeError(resp.StatusCode, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var evType string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if evType != "" || len(data) > 0 {
				ev, err := decodeEvent(evType, data)
				if err != nil {
					return err
				}
				if err := fn(ev); err != nil {
					return err
				}
			}
			evType, data = "", nil
		case strings.HasPrefix(line, "event:"):
			evType = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(line[len("data:"):], " ")...)
		}
	}
	return sc.Err()
}

// decodeEvent unmarshals one SSE frame into a JobEvent.
func decodeEvent(evType string, data []byte) (JobEvent, error) {
	ev := JobEvent{Type: evType, Data: data}
	switch evType {
	case EventState, EventDone:
		ev.Job = new(Job)
		if err := json.Unmarshal(data, ev.Job); err != nil {
			return ev, fmt.Errorf("api: %s event: %w", evType, err)
		}
	case EventItem:
		ev.Item = new(JobItemEvent)
		if err := json.Unmarshal(data, ev.Item); err != nil {
			return ev, fmt.Errorf("api: item event: %w", err)
		}
	}
	return ev, nil
}
