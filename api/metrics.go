package api

import (
	"repro/internal/store"
	"repro/internal/workloads"
)

// HistogramBucket is one bucket of the sim-seconds histogram; LE is the
// inclusive upper bound in seconds ("+Inf" is encoded on the last
// bucket's Infinite flag to stay valid JSON).
type HistogramBucket struct {
	// LE is the bucket's inclusive upper bound in seconds.
	LE float64 `json:"le,omitempty"`
	// Infinite marks the unbounded last bucket ("+Inf").
	Infinite bool `json:"infinite,omitempty"`
	// Count is the number of observations at or below LE.
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON form of the sim-seconds histogram.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// SumSecs is the sum of all observed durations in seconds.
	SumSecs float64 `json:"sum_seconds"`
	// Buckets are the cumulative histogram buckets, smallest bound first.
	Buckets []HistogramBucket `json:"buckets"`
}

// Snapshot is the GET /metrics response schema.
type Snapshot struct {
	// UptimeSeconds is the time since the server started.
	UptimeSeconds float64 `json:"uptime_seconds"`

	// RunRequests counts POST /v1/run requests.
	RunRequests int64 `json:"run_requests"`
	// BatchRequests counts POST /v1/batch requests.
	BatchRequests int64 `json:"batch_requests"`
	// ExperimentRequests counts POST /v1/experiment requests.
	ExperimentRequests int64 `json:"experiment_requests"`
	// JobRequests counts requests to the /v1/jobs endpoints.
	JobRequests int64 `json:"job_requests"`
	// Rejected is the 429 backpressure count.
	Rejected int64 `json:"rejected"`
	// ClientErrors counts 4xx responses.
	ClientErrors int64 `json:"client_errors"`
	// ServerErrors counts 5xx responses.
	ServerErrors int64 `json:"server_errors"`
	// Timeouts is the 504 deadline count.
	Timeouts int64 `json:"timeouts"`

	// CacheHits counts requests answered from the result cache.
	CacheHits int64 `json:"cache_hits"`
	// CacheMisses counts requests that had to simulate.
	CacheMisses int64 `json:"cache_misses"`
	// CacheHitRatio is hits / (hits + misses).
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// CacheEntries is the number of cached response bodies.
	CacheEntries int `json:"cache_entries"`
	// CacheBytes is the cache's total body size.
	CacheBytes int64 `json:"cache_bytes"`
	// Coalesced counts requests that waited on an identical in-flight
	// computation instead of simulating.
	Coalesced int64 `json:"coalesced"`

	// Store is the persistent result store underneath the in-memory
	// cache (zero-valued when the server runs without -data-dir).
	Store store.Stats `json:"store"`

	// Jobs is the async job engine's accounting.
	Jobs JobStats `json:"jobs"`

	// QueueDepth is the number of requests waiting on the admission gate.
	QueueDepth int `json:"queue_depth"`
	// InFlight is the number of requests currently holding the gate.
	InFlight int `json:"in_flight"`
	// Workers is the simulation worker-pool size.
	Workers int `json:"workers"`

	// SimRuns counts simulations actually executed (misses that ran).
	SimRuns int64 `json:"sim_runs"`
	// SimSeconds is the wall-time histogram of those runs.
	SimSeconds HistogramSnapshot `json:"sim_seconds"`

	// TraceCache is the process-wide trace cache underneath the result
	// cache (see internal/workloads).
	TraceCache workloads.TraceCacheStats `json:"trace_cache"`
	// TraceCacheHitRatio is the trace cache's hit ratio.
	TraceCacheHitRatio float64 `json:"trace_cache_hit_ratio"`
}
