package api

import (
	"repro/internal/store"
	"repro/internal/workloads"
)

// HistogramBucket is one bucket of the sim-seconds histogram; LE is the
// inclusive upper bound in seconds ("+Inf" is encoded on the last
// bucket's Infinite flag to stay valid JSON).
type HistogramBucket struct {
	LE       float64 `json:"le,omitempty"`
	Infinite bool    `json:"infinite,omitempty"`
	Count    int64   `json:"count"`
}

// HistogramSnapshot is the JSON form of the sim-seconds histogram.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumSecs float64           `json:"sum_seconds"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Snapshot is the GET /metrics response schema.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Request counts by endpoint, plus outcome counters. Rejected is
	// the 429 backpressure count; Timeouts the 504 deadline count.
	RunRequests        int64 `json:"run_requests"`
	BatchRequests      int64 `json:"batch_requests"`
	ExperimentRequests int64 `json:"experiment_requests"`
	JobRequests        int64 `json:"job_requests"`
	Rejected           int64 `json:"rejected"`
	ClientErrors       int64 `json:"client_errors"`
	ServerErrors       int64 `json:"server_errors"`
	Timeouts           int64 `json:"timeouts"`

	// Result-cache effectiveness. Coalesced counts requests that waited
	// on an identical in-flight computation instead of simulating.
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	CacheEntries  int     `json:"cache_entries"`
	CacheBytes    int64   `json:"cache_bytes"`
	Coalesced     int64   `json:"coalesced"`

	// Store is the persistent result store underneath the in-memory
	// cache (zero-valued when the server runs without -data-dir).
	Store store.Stats `json:"store"`

	// Jobs is the async job engine's accounting.
	Jobs JobStats `json:"jobs"`

	// Admission state: queue depth and in-flight holders of the gate.
	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
	Workers    int `json:"workers"`

	// SimRuns counts simulations actually executed (misses that ran);
	// SimSeconds is their wall-time histogram.
	SimRuns    int64             `json:"sim_runs"`
	SimSeconds HistogramSnapshot `json:"sim_seconds"`

	// TraceCache is the process-wide trace cache underneath the result
	// cache (see internal/workloads).
	TraceCache         workloads.TraceCacheStats `json:"trace_cache"`
	TraceCacheHitRatio float64                   `json:"trace_cache_hit_ratio"`
}
