// Package api is the simulation service's public surface: the
// request/response DTOs of every smserve endpoint, the unified error
// envelope with its machine-readable codes, the async job objects, and
// a thin HTTP client — so callers (cmd/sweep -submit, the httptest
// suites, external tooling) share one set of types instead of
// hand-rolling JSON.
//
// Endpoints (implemented by internal/serve, wired by cmd/smserve):
//
//	POST   /v1/run             one simulation               -> RunResponse
//	POST   /v1/batch           many simulations             -> BatchResponse
//	POST   /v1/experiment      a named paper experiment     -> ExperimentResponse
//	POST   /v1/jobs            submit an async job          -> Job (202)
//	GET    /v1/jobs            list jobs                    -> []Job
//	GET    /v1/jobs/{id}       poll status and progress     -> Job
//	GET    /v1/jobs/{id}/events  live progress stream          (SSE, JobEvent)
//	GET    /v1/jobs/{id}/result  final result bytes         -> RunResponse/BatchResponse/...
//	DELETE /v1/jobs/{id}       cancel                       -> Job
//	GET    /v1/kernels         the benchmark registry       -> []KernelInfo
//	GET    /healthz            liveness
//	GET    /metrics            counters and histograms      -> Snapshot
//
// Every non-2xx response from these handlers is an ErrorBody envelope;
// see Error for the code vocabulary. Response bodies are deterministic:
// identical requests produce byte-identical bytes, the property the
// service's caching, job resume, and the differential test suites all
// lean on.
package api

import (
	"encoding/json"

	"repro/internal/machine"
	"repro/internal/stats"
)

// RunRequest describes one kernel simulation. Exactly the smsim surface:
// a registry kernel, a machine description (zero-valued fields take the
// paper's defaults), and optional overrides.
type RunRequest struct {
	// Kernel is the benchmark name (GET /v1/kernels lists them).
	Kernel string `json:"kernel"`
	// BF selects a needle blocking-factor variant; 0 is the kernel's
	// default. Ignored by kernels without a blocking factor.
	BF int `json:"bf,omitempty"`
	// Machine is the machine description, as in a -machine JSON file.
	Machine machine.Description `json:"machine,omitempty"`
	// AllocTotalKB, when positive, replaces the machine's design and
	// capacities with the §4.5 automatic allocation of a unified memory
	// of this many KB (the machine's max_threads caps residency).
	AllocTotalKB int `json:"alloc_total_kb,omitempty"`
	// FermiTotalKB, when positive, replaces them with the Fermi-like
	// limited design of this many KB instead: a fixed 256 KB register
	// file plus the better of the two preset shared/cache splits for the
	// kernel. Mutually exclusive with AllocTotalKB.
	FermiTotalKB int `json:"fermi_total_kb,omitempty"`
	// RegsPerThread overrides the per-thread register allocation; 0 (or
	// anything at or above the kernel's demand) is the spill-free value.
	RegsPerThread int `json:"regs_per_thread,omitempty"`
	// Seed perturbs per-warp random streams; 0 means the default seed.
	Seed uint64 `json:"seed,omitempty"`
	// Probe attaches the cycle-level observability probe and returns
	// its byte-deterministic NDJSON profile in the response.
	Probe bool `json:"probe,omitempty"`
	// ProbeIntervalCycles is the probe sampling interval (0 = default).
	ProbeIntervalCycles int64 `json:"probe_interval_cycles,omitempty"`
	// TimeoutMS bounds the simulation's wall time (0 = server default).
	// Not part of the cache key: it bounds work, never results.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Streams runs several kernels co-resident on one SM (multi-tenant
	// concurrent-kernel execution) instead of a single kernel. Mutually
	// exclusive with Kernel/BF/RegsPerThread/Seed; a single-entry list
	// is canonically collapsed to the equivalent plain request, so both
	// spellings share one cache key. AllocTotalKB/FermiTotalKB then
	// partition jointly for the whole mix.
	Streams []StreamRequest `json:"streams,omitempty"`
}

// StreamRequest is one co-resident kernel (stream) of a multi-tenant
// RunRequest.
type StreamRequest struct {
	// Kernel is the stream's benchmark name (GET /v1/kernels lists them).
	Kernel string `json:"kernel"`
	// BF selects a needle blocking-factor variant for this stream; 0 is
	// the kernel's default. Ignored by kernels without a blocking factor.
	BF int `json:"bf,omitempty"`
	// RegsPerThread overrides the stream's per-thread register
	// allocation; 0 (or anything at or above the kernel's demand) is the
	// spill-free value.
	RegsPerThread int `json:"regs_per_thread,omitempty"`
	// Seed perturbs the stream's per-warp random streams; 0 means the
	// default seed.
	Seed uint64 `json:"seed,omitempty"`
}

// StreamResult is one stream's attributed share of a multi-tenant
// RunResponse.
type StreamResult struct {
	// Kernel names the stream's resolved workload.
	Kernel string `json:"kernel"`
	// BF echoes the stream's blocking-factor variant when it has one.
	BF int `json:"bf,omitempty"`
	// Occupancy is the stream's share of the joint residency admitted by
	// the round-robin CTA interleave.
	Occupancy OccupancyInfo `json:"occupancy"`
	// Counters are the stream's attributed event counts: every additive
	// category sums exactly to the aggregate Counters across streams,
	// and Cycles is the cycle the stream's last warp exited.
	Counters *stats.Counters `json:"counters"`
	// IPC is the stream's thread instructions per its own cycle count.
	IPC float64 `json:"ipc"`
	// WarpIPC is the warp-granular variant of IPC.
	WarpIPC float64 `json:"warp_ipc"`
}

// ConfigInfo is the resolved local-memory configuration of a response.
type ConfigInfo struct {
	// Design is the memory design ("partitioned", "unified", "fermi-like").
	Design string `json:"design"`
	// RFBytes is the register-file capacity in bytes.
	RFBytes int `json:"rf_bytes"`
	// SharedBytes is the shared-memory capacity in bytes.
	SharedBytes int `json:"shared_bytes"`
	// CacheBytes is the primary data cache capacity in bytes.
	CacheBytes int `json:"cache_bytes"`
	// MaxThreads is the resident thread cap (0 = architectural limit).
	MaxThreads int `json:"max_threads"`
}

// OccupancyInfo is the residency a configuration admitted.
type OccupancyInfo struct {
	// CTAs is the number of concurrently resident CTAs.
	CTAs int `json:"ctas"`
	// Threads is the resident thread count.
	Threads int `json:"threads"`
	// Warps is the resident warp count.
	Warps int `json:"warps"`
	// Limiter names the resource that bound residency.
	Limiter string `json:"limiter"`
}

// EnergyInfo is the Section 5.2 energy breakdown in joules.
type EnergyInfo struct {
	// MRF is main-register-file access energy.
	MRF float64 `json:"mrf"`
	// ORF is operand-register-file access energy.
	ORF float64 `json:"orf"`
	// LRF is last-result-file access energy.
	LRF float64 `json:"lrf"`
	// Shared is shared-memory access energy.
	Shared float64 `json:"shared"`
	// Cache is cache data-array access energy.
	Cache float64 `json:"cache"`
	// Tags is cache tag-lookup energy.
	Tags float64 `json:"tags"`
	// Other is the SM's remaining dynamic energy.
	Other float64 `json:"other"`
	// Leak is SRAM and SM leakage energy.
	Leak float64 `json:"leak"`
	// DRAM is off-chip traffic energy.
	DRAM float64 `json:"dram"`
	// Total sums every component.
	Total float64 `json:"total"`
}

// RunResponse is the structured result of one simulation — the same
// numbers cmd/smsim prints, as JSON. Bodies are deterministic: two
// identical requests yield byte-identical responses whether simulated,
// served from the in-memory cache, or replayed from the persistent
// store.
type RunResponse struct {
	// Key is the canonical cache key of the request — the SHA-256 that
	// also addresses the result in the persistent store.
	Key string `json:"key"`
	// Kernel echoes the resolved workload (for a multi-tenant run, the
	// "+"-joined stream label).
	Kernel string `json:"kernel"`
	// BF echoes the resolved blocking-factor variant when there is one.
	BF int `json:"bf,omitempty"`
	// Config is the resolved configuration the run executed under.
	Config ConfigInfo `json:"config"`
	// Occupancy is the admitted residency.
	Occupancy OccupancyInfo `json:"occupancy"`
	// Counters are the raw simulation event counts (stats.Counters).
	Counters *stats.Counters `json:"counters"`
	// IPC is thread instructions per cycle — an absolute metric (see
	// internal/core's package comment on absolute versus ratio-only
	// metrics).
	IPC float64 `json:"ipc"`
	// WarpIPC is the warp-granular variant of IPC.
	WarpIPC float64 `json:"warp_ipc"`
	// Energy is the energy breakdown in joules.
	Energy EnergyInfo `json:"energy"`
	// ProbeNDJSON is the probe profile when the request asked for one.
	ProbeNDJSON string `json:"probe_ndjson,omitempty"`
	// WarmCycles reports that the run was forked from a shared warm
	// prefix at this cycle (batch warm_cycles; see BatchRequest).
	WarmCycles int64 `json:"warm_cycles,omitempty"`
	// Streams holds the per-stream attribution of a multi-tenant run, in
	// request stream order; omitted for single-kernel runs. The
	// top-level Kernel is then the "+"-joined stream label.
	Streams []StreamResult `json:"streams,omitempty"`
}

// BatchRequest is a set of independent runs executed as one admitted
// request, fanned out through the parallel engine.
type BatchRequest struct {
	// Runs are the batch's items, executed independently in order.
	Runs []RunRequest `json:"runs"`
	// WarmCycles, when positive, switches the batch to warm-prefix
	// sharing: items whose canonical requests agree on every
	// prefix-defining field (kernel, configuration, registers, seed,
	// scheduler policy and active-set size, scatter variant) share ONE
	// simulation warmed to this cycle under the default divergable
	// timing, copy-on-write forked per item (internal/snapshot). The
	// semantics are "switch timing parameters at cycle WarmCycles", so
	// results differ from cycle-0 runs and are cached under keys that
	// include the warm cycle. Probed items always take the exact
	// cycle-0 path (probes observe from the first cycle).
	WarmCycles int64 `json:"warm_cycles,omitempty"`
}

// BatchItem is one batch entry's outcome: exactly one of Result or
// Error is set. Items keep request order.
type BatchItem struct {
	// Result is the item's RunResponse on success.
	Result *RunResponse `json:"result,omitempty"`
	// Error is the item's failure (e.g. an infeasible configuration).
	Error *Error `json:"error,omitempty"`
	// Status is the failure's HTTP-equivalent status code.
	Status int `json:"status,omitempty"`
}

// BatchResponse is the ordered outcomes of a batch.
type BatchResponse struct {
	// Results holds one raw BatchItem per request item, in order.
	Results []json.RawMessage `json:"results"`
}

// Items decodes the batch's raw entries.
func (b *BatchResponse) Items() ([]BatchItem, error) {
	items := make([]BatchItem, len(b.Results))
	for i, raw := range b.Results {
		if err := json.Unmarshal(raw, &items[i]); err != nil {
			return nil, err
		}
	}
	return items, nil
}

// ExperimentRequest names a paper experiment to regenerate (the
// cmd/paper surface).
type ExperimentRequest struct {
	// Name is the experiment ("table1" ... "figure11", "validation",
	// "ablation").
	Name string `json:"name"`
	// Scheduler optionally re-renders under a non-default warp
	// scheduler ("twolevel" or "gto").
	Scheduler string `json:"scheduler,omitempty"`
}

// ExperimentResponse carries one experiment's rendered table in the
// three formats the CLIs print.
type ExperimentResponse struct {
	// Name echoes the experiment name.
	Name string `json:"name"`
	// Scheduler is the warp-scheduling policy the tables ran under.
	Scheduler string `json:"scheduler"`
	// Text is the rendered plain-text table.
	Text string `json:"text"`
	// CSV is the same table as comma-separated values.
	CSV string `json:"csv"`
	// Markdown is the same table as a markdown table.
	Markdown string `json:"markdown"`
}

// KernelInfo is one registry benchmark.
type KernelInfo struct {
	// Name is the registry name (e.g. "needle").
	Name string `json:"name"`
	// Suite is the originating benchmark suite.
	Suite string `json:"suite"`
	// Category is the Table 1 resource category.
	Category string `json:"category"`
	// Description is the one-line workload summary.
	Description string `json:"description"`
	// RegsNeeded is the spill-free per-thread register demand.
	RegsNeeded int `json:"regs_needed"`
	// ThreadsPerCTA is the CTA geometry.
	ThreadsPerCTA int `json:"threads_per_cta"`
	// SharedBytesPerCTA is the per-CTA scratchpad footprint.
	SharedBytesPerCTA int `json:"shared_bytes_per_cta"`
	// GridCTAs is the kernel's grid size in CTAs.
	GridCTAs int `json:"grid_ctas"`
	// BF is the blocking-factor variant when there is one.
	BF int `json:"bf,omitempty"`
}
