package api

import "fmt"

// Error codes. Every non-2xx response from the service carries exactly
// one of these in its envelope; clients branch on the code, never on
// message text.
const (
	// CodeBadRequest (400): malformed JSON, unknown fields, unknown
	// kernels or experiments, invalid machine descriptions or job specs.
	CodeBadRequest = "bad_request"
	// CodeNotFound (404): no job with the requested id.
	CodeNotFound = "not_found"
	// CodeCancelled (408): the request's context ended before the
	// simulation finished — the client went away or a job was cancelled.
	CodeCancelled = "cancelled"
	// CodeNotReady (409): a job's result was requested before the job
	// reached a terminal state; poll GET /v1/jobs/{id} and retry.
	CodeNotReady = "not_ready"
	// CodeInfeasible (422): the kernel cannot achieve residency of even
	// one CTA under the requested configuration (core.FitError /
	// config.ErrDoesNotFit). Sweep over it, don't retry it.
	CodeInfeasible = "infeasible"
	// CodeOverCapacity (429): admission rejected the request — the
	// in-flight slots are busy and the wait queue is full. The response
	// always carries a Retry-After header and RetryAfterS field.
	CodeOverCapacity = "over_capacity"
	// CodeInternal (500): an unexpected simulation failure.
	CodeInternal = "internal"
	// CodeDeadline (504): the simulation exceeded its per-request
	// deadline (timeout_ms or the server default).
	CodeDeadline = "deadline"
)

// Error is the unified error payload of every non-2xx response,
// wrapped in ErrorBody on the wire:
//
//	{"error":{"code":"over_capacity","message":"...","retry_after_s":3}}
//
// It doubles as the Go error the Client returns, so callers can
// errors.As their way to the code and status.
type Error struct {
	// Code is one of the Code* constants — stable and machine-readable.
	Code string `json:"code"`
	// Message is a human-oriented description; its text is not part of
	// the API contract.
	Message string `json:"message"`
	// RetryAfterS, when positive, is the server's backoff hint in
	// seconds (mirrors the Retry-After header on 429 responses).
	RetryAfterS int `json:"retry_after_s,omitempty"`

	// HTTPStatus is the response's status code, filled in by the Client
	// on decode; it does not travel in the body.
	HTTPStatus int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.HTTPStatus != 0 {
		return fmt.Sprintf("api: %s (%d): %s", e.Code, e.HTTPStatus, e.Message)
	}
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// ErrorBody is the JSON envelope of every non-2xx response.
type ErrorBody struct {
	// Error is the failure being enveloped.
	Error *Error `json:"error"`
}
