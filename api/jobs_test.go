package api

import "testing"

func TestParseStep(t *testing.T) {
	cases := []struct {
		step    string
		wantErr bool
		from    int
		next    int // expected successor of from, when valid
	}{
		{"2x", false, 32, 64},
		{"64", false, 32, 96},
		{"1", false, 10, 11},
		{"64abc", true, 0, 0}, // fmt.Sscanf used to accept this as 64
		{"abc", true, 0, 0},
		{"", true, 0, 0},
		{"0", true, 0, 0},
		{"-8", true, 0, 0},
		{"2x2", true, 0, 0},
		{" 64", true, 0, 0},
		{"6 4", true, 0, 0},
	}
	for _, c := range cases {
		next, err := ParseStep(c.step)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseStep(%q): want error, got none", c.step)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseStep(%q): %v", c.step, err)
			continue
		}
		if got := next(c.from); got != c.next {
			t.Errorf("ParseStep(%q)(%d) = %d, want %d", c.step, c.from, got, c.next)
		}
	}
}

func TestSweepValues(t *testing.T) {
	s := SweepRequest{From: 32, To: 256, Step: "2x"}
	vals, err := s.Values()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{32, 64, 128, 256}
	if len(vals) != len(want) {
		t.Fatalf("values = %v, want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("values = %v, want %v", vals, want)
		}
	}
	for _, bad := range []SweepRequest{
		{From: 0, To: 256, Step: "2x"},
		{From: 256, To: 32, Step: "2x"},
		{From: 32, To: 256, Step: "nope"},
	} {
		if _, err := bad.Values(); err == nil {
			t.Errorf("Values(%+v): want error, got none", bad)
		}
	}
}

func TestJobTerminal(t *testing.T) {
	for state, want := range map[string]bool{
		JobQueued: false, JobRunning: false,
		JobDone: true, JobFailed: true, JobCancelled: true,
	} {
		j := Job{State: state}
		if j.Terminal() != want {
			t.Errorf("Terminal(%s) = %v, want %v", state, !want, want)
		}
	}
}
