package api

import (
	"fmt"
	"strconv"

	"repro/internal/machine"
)

// JobRequest submits an asynchronous job: exactly one of the fields
// must be set. POST /v1/jobs validates the spec synchronously (a bad
// spec is a 400, never a failed job), persists it when the server has a
// -data-dir, and answers 202 with the Job before any simulation runs.
type JobRequest struct {
	// Run executes one simulation.
	Run *RunRequest `json:"run,omitempty"`
	// Batch executes many simulations with the /v1/batch semantics
	// (ordering, warm-prefix sharing, per-item errors).
	Batch *BatchRequest `json:"batch,omitempty"`
	// Sweep expands a parameter/capacity sweep into a batch server-side
	// (the cmd/sweep surface as a job).
	Sweep *SweepRequest `json:"sweep,omitempty"`
	// Experiment renders one named paper experiment.
	Experiment *ExperimentRequest `json:"experiment,omitempty"`
	// Compare runs a declarative compare campaign, expanded server-side
	// into its machine-major batch (the cmd/compare surface as a job).
	Compare *CompareRequest `json:"compare,omitempty"`
}

// SweepRequest is a server-side sweep: one kernel, one base machine,
// one resource axis swept across a range. Capacity axes (rf, shared,
// cache — values in KB) run one independent simulation per point;
// parameter axes (mshr, dramlat, drambw) are divergable across a
// snapshot and share one copy-on-write warm prefix when WarmCycles is
// set (see BatchRequest.WarmCycles).
type SweepRequest struct {
	// Kernel names the benchmark, as in RunRequest.
	Kernel string `json:"kernel"`
	// BF selects a blocking-factor variant, as in RunRequest.
	BF int `json:"bf,omitempty"`
	// Machine is the base machine; the swept field is overwritten per
	// point. An entirely unspecified capacity split takes the sweep
	// default (full-occupancy RF, unbounded shared, baseline cache —
	// exactly cmd/sweep's local baseline), not the paper baseline.
	Machine machine.Description `json:"machine,omitempty"`
	// RegsPerThread passes through to every point's RunRequest.
	RegsPerThread int `json:"regs_per_thread,omitempty"`
	// Seed passes through to every point's RunRequest.
	Seed uint64 `json:"seed,omitempty"`
	// Resource is the swept axis: "rf" | "shared" | "cache" (capacity,
	// KB) or "mshr" | "dramlat" | "drambw" (timing parameter).
	Resource string `json:"resource"`
	// From is the range's first value (inclusive).
	From int `json:"from"`
	// To is the range's last value (inclusive).
	To int `json:"to"`
	// Step is a positive additive step (e.g. "64") or "2x" for doubling.
	Step string `json:"step"`
	// WarmCycles shares one warm prefix across parameter-axis points
	// (rejected for capacity axes, which define the warm-up history).
	WarmCycles int64 `json:"warm_cycles,omitempty"`
	// TimeoutMS bounds each point's wall time (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ParseStep turns a sweep step spec into a successor function: "2x"
// doubles, a positive integer adds. Anything else — including trailing
// garbage like "64abc", which fmt.Sscanf would silently accept — is
// rejected.
func ParseStep(step string) (func(v int) int, error) {
	if step == "2x" {
		return func(v int) int { return v * 2 }, nil
	}
	add, err := strconv.Atoi(step)
	if err != nil || add <= 0 {
		return nil, fmt.Errorf("bad step %q (want a positive step or 2x)", step)
	}
	return func(v int) int { return v + add }, nil
}

// Values expands the sweep's From/To/Step range into its point values.
func (s *SweepRequest) Values() ([]int, error) {
	next, err := ParseStep(s.Step)
	if err != nil {
		return nil, err
	}
	if s.From <= 0 || s.To < s.From {
		return nil, fmt.Errorf("bad sweep range [%d, %d] (want 0 < from <= to)", s.From, s.To)
	}
	var values []int
	for v := s.From; v <= s.To; v = next(v) {
		values = append(values, v)
	}
	return values, nil
}

// Job states. A job moves queued -> running -> one of the terminal
// states (done, failed, cancelled); a restarted server re-enters
// persisted queued/running jobs as queued.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// Job is a job's observable state: the POST /v1/jobs and GET
// /v1/jobs/{id} response.
type Job struct {
	// ID addresses the job ("j1", "j2", ...; unique per data directory).
	ID string `json:"id"`
	// Type is "run", "batch", "sweep", "experiment", or "compare".
	Type string `json:"type"`
	// State is one of the Job* state constants.
	State string `json:"state"`
	// Note is a short human description of the job ("sweep bfs cache
	// 32..512KB").
	Note string `json:"note,omitempty"`
	// Progress is the live item accounting.
	Progress JobProgress `json:"progress"`
	// Resumes counts server restarts that re-entered this job.
	Resumes int `json:"resumes,omitempty"`
	// CreatedUnix is the submission time as a Unix-second timestamp.
	CreatedUnix int64 `json:"created_unix,omitempty"`
	// StartedUnix is when the job left the queue (0 = not yet).
	StartedUnix int64 `json:"started_unix,omitempty"`
	// FinishedUnix is when the job reached a terminal state (0 = not yet).
	FinishedUnix int64 `json:"finished_unix,omitempty"`
	// Error is set when State is failed or cancelled.
	Error *Error `json:"error,omitempty"`
}

// Terminal reports whether the job has finished (successfully or not).
func (j *Job) Terminal() bool {
	return j.State == JobDone || j.State == JobFailed || j.State == JobCancelled
}

// JobProgress is a job's item accounting. Done counts every settled
// item; the cache fields split settled items by where their result came
// from, so Simulated = Done - CacheHits - StoreHits - Coalesced.
type JobProgress struct {
	// Done counts every settled item.
	Done int `json:"done"`
	// Total is the job's item count.
	Total int `json:"total"`
	// Errors counts items that settled with a per-item error (e.g.
	// infeasible sweep points).
	Errors int `json:"errors,omitempty"`
	// CacheHits counts items served from the in-memory result cache.
	CacheHits int `json:"cache_hits,omitempty"`
	// StoreHits counts items replayed from the persistent store (the
	// resume path).
	StoreHits int `json:"store_hits,omitempty"`
	// Coalesced counts items that waited on an identical in-flight
	// computation.
	Coalesced int `json:"coalesced,omitempty"`
	// Current describes what the job is doing right now — notably the
	// warm prefix being computed ("warm@20000 group ab12cd34"), the
	// checkpoint granularity a killed sweep re-pays on resume.
	Current string `json:"current,omitempty"`
}

// JobStats is the engine half of the /metrics snapshot.
type JobStats struct {
	// Submitted counts jobs accepted this process.
	Submitted int64 `json:"submitted"`
	// Resumed counts jobs re-entered from a previous process's data
	// directory.
	Resumed int64 `json:"resumed"`
	// Queued is the number of jobs currently waiting.
	Queued int `json:"queued"`
	// Active is the number of jobs currently executing.
	Active int `json:"active"`
	// Done counts successful terminal transitions this process.
	Done int64 `json:"done"`
	// Failed counts failed terminal transitions this process.
	Failed int64 `json:"failed"`
	// Cancelled counts cancelled terminal transitions this process.
	Cancelled int64 `json:"cancelled"`
}

// Job event types, in SSE "event:" fields and JobEvent.Type.
const (
	// EventState carries the full Job after a state transition.
	EventState = "state"
	// EventItem reports one settled item. Item events are emitted in
	// item-index order regardless of execution interleaving, so a
	// job's event stream is deterministic.
	EventItem = "item"
	// EventProbe carries one live probe NDJSON line from a probed item.
	EventProbe = "probe"
	// EventDone is the stream terminator: the final Job state, after
	// which the server closes the stream.
	EventDone = "done"
)

// JobEvent is one server-sent event from GET /v1/jobs/{id}/events. The
// wire form is standard SSE: "event:" carries Type, "data:" one JSON
// object (a Job for state/done events, a JobItemEvent for item events,
// a raw probe NDJSON record for probe events).
type JobEvent struct {
	// Type is the SSE event name (EventState, EventItem, EventProbe,
	// EventDone).
	Type string
	// Job is decoded for EventState/EventDone events.
	Job *Job
	// Item is decoded for EventItem events.
	Item *JobItemEvent
	// Data is the raw data payload of every event (the NDJSON line for
	// EventProbe).
	Data []byte
}

// JobItemEvent is the data payload of an EventItem event.
type JobItemEvent struct {
	// Index is the item's position in the job.
	Index int `json:"index"`
	// Key is the item's canonical result key in the store.
	Key string `json:"key"`
	// Status is the item's HTTP-equivalent status.
	Status int `json:"status"`
	// Cache says where the result came from ("miss", "hit", "stored",
	// "coalesced").
	Cache string `json:"cache"`
	// Done snapshots the job's settled-item count after this item.
	Done int `json:"done"`
	// Total is the job's item count.
	Total int `json:"total"`
}
