package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// jobPollServer answers GET /v1/jobs/{id} from a scripted sequence of
// responses, one per poll.
func jobPollServer(t *testing.T, responses []func(w http.ResponseWriter)) (*Client, *atomic.Int64) {
	t.Helper()
	var polls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(polls.Add(1)) - 1
		if n >= len(responses) {
			n = len(responses) - 1
		}
		responses[n](w)
	}))
	t.Cleanup(ts.Close)
	return NewClient(ts.URL), &polls
}

func writeJob(w http.ResponseWriter, j Job) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(j)
}

func write429(w http.ResponseWriter, retryAfterS int, inBody bool) {
	if retryAfterS > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterS))
	}
	w.WriteHeader(http.StatusTooManyRequests)
	e := &Error{Code: CodeOverCapacity, Message: "admission queue full"}
	if inBody {
		e.RetryAfterS = retryAfterS
	}
	_ = json.NewEncoder(w).Encode(ErrorBody{Error: e})
}

// TestWaitJobSurvivesBackoff is the regression test for fixed-rate
// polling: an over-capacity poll must not fail the wait — WaitJob backs
// off and retries until the job turns terminal.
func TestWaitJobSurvivesBackoff(t *testing.T) {
	c, polls := jobPollServer(t, []func(http.ResponseWriter){
		func(w http.ResponseWriter) { write429(w, 0, true) },
		func(w http.ResponseWriter) { writeJob(w, Job{ID: "j1", State: JobRunning}) },
		func(w http.ResponseWriter) { writeJob(w, Job{ID: "j1", State: JobDone}) },
	})
	var seen []string
	j, err := c.WaitJob(context.Background(), "j1", time.Millisecond, func(j *Job) {
		seen = append(seen, j.State)
	})
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if j.State != JobDone {
		t.Fatalf("final state = %q, want %q", j.State, JobDone)
	}
	if want := []string{JobRunning, JobDone}; len(seen) != 2 || seen[0] != want[0] || seen[1] != want[1] {
		t.Fatalf("onPoll saw %v, want %v (429 polls must not reach onPoll)", seen, want)
	}
	if got := polls.Load(); got != 3 {
		t.Fatalf("server saw %d polls, want 3", got)
	}
}

// TestWaitJobHonorsRetryAfter pins that the server's hint stretches the
// retry delay past the poll interval.
func TestWaitJobHonorsRetryAfter(t *testing.T) {
	const hintS = 1
	c, _ := jobPollServer(t, []func(http.ResponseWriter){
		func(w http.ResponseWriter) { write429(w, hintS, true) },
		func(w http.ResponseWriter) { writeJob(w, Job{ID: "j1", State: JobDone}) },
	})
	start := time.Now()
	if _, err := c.WaitJob(context.Background(), "j1", time.Millisecond, nil); err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if d := time.Since(start); d < hintS*time.Second {
		t.Fatalf("WaitJob returned after %v, want >= %ds (Retry-After hint ignored)", d, hintS)
	}
}

// TestWaitJobBackoffIsContextAware pins that cancellation interrupts a
// backoff sleep promptly, even under a long Retry-After hint.
func TestWaitJobBackoffIsContextAware(t *testing.T) {
	c, _ := jobPollServer(t, []func(http.ResponseWriter){
		func(w http.ResponseWriter) { write429(w, 20, true) },
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.WaitJob(ctx, "j1", time.Millisecond, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitJob error = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v; the backoff sleep is not context-aware", d)
	}
}

// TestWaitJobNon429StillFails pins that only over-capacity responses
// are retried; other poll errors surface immediately.
func TestWaitJobNon429StillFails(t *testing.T) {
	c, _ := jobPollServer(t, []func(http.ResponseWriter){
		func(w http.ResponseWriter) {
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(ErrorBody{Error: &Error{Code: CodeNotFound, Message: "no job"}})
		},
	})
	_, err := c.WaitJob(context.Background(), "j1", time.Millisecond, nil)
	var ae *Error
	if !errors.As(err, &ae) || ae.Code != CodeNotFound {
		t.Fatalf("WaitJob error = %v, want *Error with code %q", err, CodeNotFound)
	}
}

// TestRetryAfterHeaderFallback pins that a 429 whose body lacks
// retry_after_s still surfaces the standard Retry-After header.
func TestRetryAfterHeaderFallback(t *testing.T) {
	c, _ := jobPollServer(t, []func(http.ResponseWriter){
		func(w http.ResponseWriter) { write429(w, 7, false) },
	})
	_, err := c.Job(context.Background(), "j1")
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("Job error = %v, want *Error", err)
	}
	if ae.RetryAfterS != 7 {
		t.Fatalf("RetryAfterS = %d, want 7 (Retry-After header not decoded)", ae.RetryAfterS)
	}
}
