package api

import "repro/internal/machine"

// CompareRequest is a declarative compare campaign: N named machines
// evaluated over one workload list, diffed metric-by-metric against a
// designated baseline machine, with optional paper-style comparison
// tables and regression thresholds. It is both the schema of a campaign
// file (cmd/compare -campaign, examples/campaigns/) and the body of a
// "compare" job (POST /v1/jobs {"compare": ...}); internal/campaign
// validates, expands, and renders it. A campaign compiles to one
// machine-major batch of RunRequests, so a compare job's result bytes
// are byte-identical to POST /v1/batch of the compiled runs.
type CompareRequest struct {
	// Name identifies the campaign (job notes, default table titles).
	Name string `json:"name"`
	// Title optionally overrides Name in rendered table titles.
	Title string `json:"title,omitempty"`
	// Machines are the named configurations under comparison.
	Machines []CompareMachine `json:"machines"`
	// Baseline names the machine the diff columns normalize against;
	// empty means the first machine.
	Baseline string `json:"baseline,omitempty"`
	// Workloads lists registry kernels by name, "needle@BF" variants, or
	// the set aliases "all", "benefit", "no-benefit" (expanded in
	// registry order). Entries must be unique after expansion.
	Workloads []string `json:"workloads"`
	// Metrics selects the diff tables: "ipc", "cycles", "dram",
	// "energy", "conflict-cycles". Empty means ipc, energy, dram.
	Metrics []string `json:"metrics,omitempty"`
	// Thresholds maps a metric name to the regression tolerance in
	// percent: a non-baseline machine whose metric is worse than the
	// baseline by more than this is flagged ("!") and reported.
	Thresholds map[string]float64 `json:"thresholds,omitempty"`
	// Tables appends paper-style baseline-comparison tables (the
	// Figure 7/9/10 rendering) for chosen machines and workload subsets.
	Tables []CompareTable `json:"tables,omitempty"`
	// Seed perturbs every run's per-warp random streams (0 = default).
	Seed uint64 `json:"seed,omitempty"`
	// TimeoutMS bounds each run's wall time on a server (0 = default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// CompareMachine is one campaign machine: an arbitrary machine document
// (exactly the -machine file schema) or one of the per-kernel derived
// designs of the paper.
type CompareMachine struct {
	// Name labels the machine in every table; unique per campaign.
	Name string `json:"name"`
	// Machine is the machine description; zero-valued fields take the
	// paper's defaults, so {} is the partitioned baseline.
	Machine machine.Description `json:"machine,omitempty"`
	// AllocTotalKB, when positive, replaces the description's design and
	// capacities with the §4.5 per-kernel allocation of a unified memory
	// of this many KB (RunRequest.AllocTotalKB).
	AllocTotalKB int `json:"alloc_total_kb,omitempty"`
	// FermiTotalKB, when positive, selects the Fermi-like limited design
	// of this total capacity instead: a fixed 256 KB register file plus
	// the better preset shared/cache split per kernel
	// (RunRequest.FermiTotalKB). Mutually exclusive with AllocTotalKB.
	FermiTotalKB int `json:"fermi_total_kb,omitempty"`
}

// CompareTable requests one paper-style comparison table: the machine's
// perf/energy/DRAM ratios against the campaign baseline, one row per
// workload, rendered with the Figure 7/9/10 columns.
type CompareTable struct {
	// Title is the table heading; empty derives "<machine> vs
	// <baseline>".
	Title string `json:"title,omitempty"`
	// Machine names the campaign machine the table evaluates.
	Machine string `json:"machine"`
	// Workloads restricts the rows to a subset of the campaign's
	// workloads (same syntax); empty means all of them.
	Workloads []string `json:"workloads,omitempty"`
}
