// Package core ties the substrates together: it runs a workload kernel
// under a local-memory configuration on the SM timing simulator, attaches
// occupancy and energy analyses, and hosts the experiment drivers that
// regenerate every table and figure of the paper (experiments.go).
//
// This is the library's primary entry point:
//
//	r := core.NewRunner()
//	res, err := r.Run(core.RunSpec{Kernel: k, Config: config.Baseline()})
//	fmt.Println(res.Counters.Cycles, res.Energy.Total())
//
// Run accepts options; WithProbe attaches the internal/probe
// observability layer to a run:
//
//	p := probe.New(0, nil)
//	res, err := r.Run(spec, core.WithProbe(p))
//
// # Metrics: absolute versus ratio-only
//
// Absolute metrics are meaningful on their own for a single run:
// Result.IPC (thread instructions per cycle), Counters.Cycles,
// Counters.IPC (warp instructions per cycle), DRAM bytes, and every raw
// event count.
//
// Ratio-only metrics carry meaning only when divided by the same metric
// of another run: Result.Performance (reciprocal runtime — the paper
// normalizes every performance figure to the baseline partitioned
// configuration), and the Comparison fields PerfRatio, EnergyRatio, and
// DRAMRatio (already normalized to the kernel's baseline run).
//
// Runs that cannot achieve residency fail with a *FitError (and nil
// kernels with ErrKernelNil); use errors.As / errors.Is, or
// IsInfeasible for the common sweep-point check.
package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/occupancy"
	"repro/internal/probe"
	"repro/internal/sm"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// RunSpec describes one simulation run.
type RunSpec struct {
	// Kernel is the workload to execute.
	Kernel *workloads.Kernel
	// Config is the local-memory configuration.
	Config config.MemConfig
	// RegsPerThread overrides the per-thread register allocation; 0 uses
	// the kernel's spill-free demand. Smaller values trade spill code for
	// occupancy, as the Figure 2 sweeps do.
	RegsPerThread int
	// Seed perturbs per-warp random streams (divergent gathers).
	Seed uint64
	// Streams runs several kernels co-resident on one SM (multi-tenant
	// concurrent-kernel execution) with round-robin CTA-slot
	// interleaving and per-stream counter attribution. Mutually
	// exclusive with Kernel/RegsPerThread/Seed; see streams.go.
	Streams []StreamSpec
}

// Result is the outcome of one run.
type Result struct {
	// Spec echoes the run parameters.
	Spec RunSpec
	// Occupancy is the CTA residency the configuration admitted.
	Occupancy occupancy.Result
	// Counters are the raw simulation event counts.
	Counters *stats.Counters
	// Energy is the Section 5.2 energy breakdown.
	Energy energy.Breakdown
	// Streams holds per-stream results for multi-tenant runs
	// (RunSpec.Streams), in stream order; nil for single-kernel runs.
	Streams []StreamResult
}

// Performance returns the run's performance metric (reciprocal runtime;
// only ratios of this value are meaningful — see the package comment).
func (r *Result) Performance() float64 {
	if r.Counters.Cycles == 0 {
		return 0
	}
	return 1 / float64(r.Counters.Cycles)
}

// IPC returns thread instructions retired per cycle — an absolute
// throughput metric (peak is the SM's 32 lanes), unlike the ratio-only
// Performance. Counters.IPC is the warp-granular variant.
func (r *Result) IPC() float64 {
	return r.Counters.ThreadIPC()
}

// RunOption configures one Run call.
type RunOption func(*runOptions)

type runOptions struct {
	probe  *probe.Probe
	sample sm.SampleSpec
}

// WithProbe attaches a cycle-level observability probe to the run. The
// probe observes exactly one SM run; attach a fresh one per call when
// fanning runs out in parallel. Probes are passive: a probed run's
// Counters are identical to an unprobed one's.
func WithProbe(p *probe.Probe) RunOption {
	return func(o *runOptions) { o.probe = p }
}

// WithSample runs the simulation in sampled mode (sm.SampleSpec):
// detailed windows alternating with functional fast-forwards. Counters
// stay exactly attributed but cycle counts are approximate; the
// harness's sampling experiment reports the measured IPC error per
// workload. A zero spec keeps the exact path. Sampling and probes are
// mutually exclusive (the probe's stall attribution needs exact runs).
func WithSample(sp sm.SampleSpec) RunOption {
	return func(o *runOptions) { o.sample = sp }
}

// Runner executes runs and caches the per-benchmark baseline needed for
// energy calibration and for normalizing results the way the paper does.
//
// A Runner is safe for concurrent use: the experiment drivers fan their
// independent (kernel, config) runs out through internal/parallel, and the
// only shared mutable state — the baseline cache — is computed at most
// once per kernel regardless of how many goroutines ask for it. Params,
// Energy, and Seed must not be modified once runs are in flight.
type Runner struct {
	// Params are the SM timing parameters (Table 2).
	Params sm.Params
	// Energy is the energy model (Tables 3 and 4).
	Energy energy.Model
	// Seed is the default workload seed.
	Seed uint64

	mu        sync.Mutex
	baselines map[string]*baselineEntry
}

// baselineEntry computes one kernel's baseline run exactly once.
type baselineEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// NewRunner returns a Runner with the paper's default parameters.
func NewRunner() *Runner {
	return &Runner{
		Params:    sm.DefaultParams(),
		Energy:    energy.NewModel(),
		Seed:      1,
		baselines: make(map[string]*baselineEntry),
	}
}

// Run simulates one spec to completion. Options modify the single call:
// WithProbe attaches an observability probe. A kernel that cannot fit
// the configuration fails with a *FitError.
func (r *Runner) Run(spec RunSpec, opts ...RunOption) (*Result, error) {
	return r.RunCtx(context.Background(), spec, opts...)
}

// RunCtx is Run with a deadline: the simulation's cycle loop polls ctx
// and aborts with ctx.Err() when it is cancelled, which is how the
// simulation service bounds per-request work. Two caveats keep shared
// state deterministic: the energy-calibration baseline run a non-baseline
// spec triggers (Baseline) is computed without the context, because its
// result is cached process-wide and must never memoize a caller's
// cancellation; and a completed RunCtx returns counters identical to
// Run's — the context only decides whether the run finishes.
func (r *Runner) RunCtx(ctx context.Context, spec RunSpec, opts ...RunOption) (*Result, error) {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	if len(spec.Streams) > 0 {
		return r.runStreams(ctx, spec, &o)
	}
	spec, occ, src, err := r.prepare(spec)
	if err != nil {
		return nil, err
	}
	if o.probe != nil {
		o.probe.Annotate("kernel", spec.Kernel.Name)
		o.probe.Annotate("config", spec.Config.String())
		o.probe.Annotate("regs", fmt.Sprint(resolvedRegs(spec)))
		o.probe.Annotate("threads", fmt.Sprint(occ.Threads))
	}
	machine, err := sm.NewSM(sm.Spec{
		Config:       spec.Config,
		Params:       r.Params,
		Source:       src,
		ResidentCTAs: occ.CTAs,
		Probe:        o.probe,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %s under %v: %w", spec.Kernel.Name, spec.Config, err)
	}
	var counters *stats.Counters
	if o.sample.Enabled() {
		counters, err = machine.RunSampled(ctx, o.sample)
	} else {
		counters, err = machine.RunContext(ctx)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %s under %v: %w", spec.Kernel.Name, spec.Config, err)
	}
	return r.finishResult(spec, occ, counters)
}

// finishResult assembles a Result from completed-run counters,
// attaching the calibrated energy breakdown. The snapshot/fork Resume
// path shares it with RunCtx.
func (r *Runner) finishResult(spec RunSpec, occ occupancy.Result, counters *stats.Counters) (*Result, error) {
	res := &Result{Spec: spec, Occupancy: occ, Counters: counters}
	other, err := r.calibratedOther(spec.Kernel, spec.Config, counters)
	if err != nil {
		return nil, err
	}
	res.Energy = r.Energy.Evaluate(spec.Config, counters, other)
	return res, nil
}

// prepare resolves a RunSpec to its simulation inputs: defaulted seed,
// computed occupancy (failing with *FitError when the kernel cannot
// achieve residency), and the trace source with the resolved register
// budget. RunCtx and the snapshot/fork Warm path share it so a warmed
// prefix is built from exactly the state a direct run would use.
func (r *Runner) prepare(spec RunSpec) (RunSpec, occupancy.Result, *workloads.Source, error) {
	if spec.Kernel == nil {
		return spec, occupancy.Result{}, nil, ErrKernelNil
	}
	if spec.Seed == 0 {
		spec.Seed = r.Seed
	}
	regs := resolvedRegs(spec)
	occ := occupancy.Compute(spec.Kernel.Requirements(), spec.Config, regs)
	if occ.CTAs < 1 {
		return spec, occ, nil, &FitError{Kernel: spec.Kernel.Name, Config: spec.Config, Limiter: occ.Limiter}
	}
	regsAvail := 0
	if regs < spec.Kernel.RegsNeeded {
		regsAvail = regs
	}
	src := &workloads.Source{K: spec.Kernel, RegsAvail: regsAvail, Seed: spec.Seed}
	return spec, occ, src, nil
}

// resolvedRegs returns the effective per-thread register allocation.
func resolvedRegs(spec RunSpec) int {
	regs := spec.RegsPerThread
	if regs <= 0 || regs > spec.Kernel.RegsNeeded {
		regs = spec.Kernel.RegsNeeded
	}
	return regs
}

// Baseline returns (and caches) the kernel's run under the baseline
// partitioned 256/64/64 configuration — the normalization point for every
// comparative result in the paper. Concurrent callers share a single
// computation per kernel.
func (r *Runner) Baseline(k *workloads.Kernel) (*Result, error) {
	r.mu.Lock()
	e, ok := r.baselines[k.Name]
	if !ok {
		e = &baselineEntry{}
		r.baselines[k.Name] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		e.res, e.err = r.Run(RunSpec{Kernel: k, Config: config.Baseline()})
		if e.err != nil {
			e.err = fmt.Errorf("core: baseline for %s: %w", k.Name, e.err)
		}
	})
	return e.res, e.err
}

// calibratedOther returns the benchmark's constant non-bank SM dynamic
// power (watts), calibrated on the baseline run (Section 5.2). A run under
// the baseline configuration always self-calibrates on its own counters:
// the simulator is deterministic, so those counters equal the cached
// baseline's, and depending only on the spec (never on cache state) keeps
// results identical whatever order concurrent runs complete in. It also
// avoids re-entering Baseline from within the baseline run itself.
func (r *Runner) calibratedOther(k *workloads.Kernel, cfg config.MemConfig, c *stats.Counters) (float64, error) {
	if cfg == config.Baseline() {
		return r.Energy.CalibrateOther(cfg, c), nil
	}
	base, err := r.Baseline(k)
	if err != nil {
		return 0, err
	}
	return r.Energy.CalibrateOther(base.Spec.Config, base.Counters), nil
}

// UnboundedShared returns a shared-memory capacity large enough that the
// kernel's residency is never shared-memory limited, used by the Figure 2
// and Figure 4 isolation studies ("unbounded shared memory").
func UnboundedShared(k *workloads.Kernel) int {
	ctas := config.MaxThreadsPerSM / k.ThreadsPerCTA
	return ctas * k.SharedBytesPerCTA
}

// IsolationConfig builds the partitioned configuration the paper's
// Section 3.3 limit studies use: explicit RF and cache capacities, shared
// memory unbounded, and a resident-thread cap.
func IsolationConfig(k *workloads.Kernel, rfBytes, cacheBytes, threads int) config.MemConfig {
	return config.MemConfig{
		Design:      config.Partitioned,
		RFBytes:     rfBytes,
		SharedBytes: UnboundedShared(k),
		CacheBytes:  cacheBytes,
		MaxThreads:  threads,
	}
}
