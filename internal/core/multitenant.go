package core

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/parallel"
	"repro/internal/workloads"
)

// MultitenantRow is one kernel mix's outcome across the three memory
// designs under concurrent-kernel execution: every kernel of the mix is
// co-resident on one SM, CTA slots interleaved round-robin, and the
// designs are compared on the joint run (the partitioned baseline is
// the 1.00 reference).
type MultitenantRow struct {
	// Mix is the "+"-joined kernel names.
	Mix string
	// Ways is the co-tenancy degree (number of streams).
	Ways int
	// PartCycles is the joint runtime under the partitioned baseline.
	PartCycles int64
	// UnifiedPerf/FermiPerf are partitioned cycles over the design's
	// cycles (higher is better); UnifiedEnergy/FermiEnergy the design's
	// total energy over the baseline's.
	UnifiedPerf, UnifiedEnergy float64
	FermiPerf, FermiEnergy     float64
	// PartInfeasible/UnifiedInfeasible/FermiInfeasible mark mixes a
	// design cannot make co-resident (some stream gets zero CTAs).
	PartInfeasible, UnifiedInfeasible, FermiInfeasible bool
}

// MultitenantMixes builds the canonical co-tenancy mixes over a kernel
// list: every adjacent pair (2-way), then every adjacent quad (4-way),
// in registry order. Over the full 26-kernel registry that is 13 pairs
// and 6 quads.
func MultitenantMixes(ks []*workloads.Kernel) [][]*workloads.Kernel {
	var mixes [][]*workloads.Kernel
	for i := 0; i+1 < len(ks); i += 2 {
		mixes = append(mixes, ks[i:i+2])
	}
	for i := 0; i+3 < len(ks); i += 4 {
		mixes = append(mixes, ks[i:i+4])
	}
	return mixes
}

// mixLabel names a mix the way the run label does ("needle+matrixmul").
func mixLabel(ks []*workloads.Kernel) string {
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.Name
	}
	return strings.Join(names, "+")
}

// runMix executes one mix under cfg, returning (cycles, total energy,
// infeasible).
func (r *Runner) runMix(ks []*workloads.Kernel, cfg config.MemConfig) (int64, float64, bool, error) {
	streams := make([]StreamSpec, len(ks))
	for i, k := range ks {
		streams[i] = StreamSpec{Kernel: k}
	}
	res, err := r.Run(RunSpec{Config: cfg, Streams: streams})
	if IsInfeasible(err) {
		return 0, 0, true, nil
	}
	if err != nil {
		return 0, 0, false, err
	}
	return res.Counters.Cycles, res.Energy.Total(), false, nil
}

// Multitenant compares the partitioned baseline, the §4.5 unified
// allocation, and the Fermi-like limited design under multi-tenant
// co-tenancy, one row per mix. The unified and Fermi capacities are the
// baseline's 384 KB, partitioned jointly for the whole mix
// (config.AllocateMulti / config.ChooseFermiMulti).
func (r *Runner) Multitenant(mixes [][]*workloads.Kernel) ([]MultitenantRow, error) {
	return parallel.Map(len(mixes), func(i int) (MultitenantRow, error) {
		ks := mixes[i]
		row := MultitenantRow{Mix: mixLabel(ks), Ways: len(ks)}
		reqs := make([]config.KernelRequirements, len(ks))
		for j, k := range ks {
			reqs[j] = k.Requirements()
		}

		partCycles, partEnergy, partInf, err := r.runMix(ks, config.Baseline())
		if err != nil {
			return row, fmt.Errorf("%s partitioned: %w", row.Mix, err)
		}
		row.PartCycles, row.PartInfeasible = partCycles, partInf

		uniCfg, uniErr := config.AllocateMulti(reqs, config.BaselineTotalBytes, 0)
		if uniErr != nil {
			row.UnifiedInfeasible = true
		} else {
			cycles, energy, inf, err := r.runMix(ks, uniCfg)
			if err != nil {
				return row, fmt.Errorf("%s unified: %w", row.Mix, err)
			}
			row.UnifiedInfeasible = inf
			if !inf && !partInf {
				row.UnifiedPerf = float64(partCycles) / float64(cycles)
				row.UnifiedEnergy = energy / partEnergy
			}
		}

		fermiCfg := config.ChooseFermiMulti(reqs, config.BaselineTotalBytes-config.BaselineRFBytes, 0)
		cycles, energy, inf, err := r.runMix(ks, fermiCfg)
		if err != nil {
			return row, fmt.Errorf("%s fermi: %w", row.Mix, err)
		}
		row.FermiInfeasible = inf
		if !inf && !partInf {
			row.FermiPerf = float64(partCycles) / float64(cycles)
			row.FermiEnergy = energy / partEnergy
		}
		return row, nil
	})
}
