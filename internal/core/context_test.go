package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/workloads"
)

// TestRunCtxCancelledAborts pins the cancellation path: a context that
// is already cancelled stops the cycle loop at its first poll with the
// context's error, wrapped so errors.Is still sees it.
func TestRunCtxCancelledAborts(t *testing.T) {
	k, err := workloads.ByName("needle")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner()
	_, err = r.RunCtx(ctx, RunSpec{Kernel: k, Config: config.Baseline()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCtxCompletedMatchesRun pins the "context only decides whether
// the run finishes" contract: a run completed under a live context
// returns counters identical to the context-free path.
func TestRunCtxCompletedMatchesRun(t *testing.T) {
	k, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Kernel: k, Config: config.Baseline()}
	plain, err := NewRunner().Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx, err := NewRunner().RunCtx(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Counters, withCtx.Counters) {
		t.Error("RunCtx counters differ from Run counters")
	}
	if plain.Energy != withCtx.Energy {
		t.Error("RunCtx energy differs from Run energy")
	}
}

// TestRunCtxBaselineSurvivesCancellation pins the caveat in RunCtx's
// doc: the energy-calibration baseline a cancelled run may have started
// is computed context-free, so a later run on the same Runner still
// gets a valid baseline rather than a memoized cancellation.
func TestRunCtxBaselineSurvivesCancellation(t *testing.T) {
	k, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	cfg, err := config.Allocate(k.Requirements(), 384<<10, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunCtx(ctx, RunSpec{Kernel: k, Config: cfg}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}
	if _, err := r.Run(RunSpec{Kernel: k, Config: cfg}); err != nil {
		t.Fatalf("run after cancelled run on same Runner: %v", err)
	}
}
