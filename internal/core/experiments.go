package core

import (
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/occupancy"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// SpillBudgets are the register allocations of Table 1 columns 3-7.
var SpillBudgets = []int{18, 24, 32, 40, 64}

// Table1CacheSizes are the cache capacities of Table 1 columns 10-12.
var Table1CacheSizes = []int{0, 64 << 10, 256 << 10}

// Table1Row is one benchmark's characterization (Table 1).
type Table1Row struct {
	Name     string
	Category workloads.Category
	// RegsPerThread is the spill-free register demand (column 2).
	RegsPerThread int
	// DynInstRatio[i] is dynamic instructions with SpillBudgets[i]
	// registers, normalized to the spill-free count (columns 3-7).
	DynInstRatio [5]float64
	// RFFullOccupancyKB is column 8.
	RFFullOccupancyKB int
	// SharedBytesPerThread is column 9.
	SharedBytesPerThread float64
	// DRAMNorm[i] is DRAM traffic with Table1CacheSizes[i] of cache,
	// normalized to the 256 KB point (columns 10-12).
	DRAMNorm [3]float64
}

// Table1 regenerates the workload characterization for the given kernels,
// one kernel per parallel work item.
func (r *Runner) Table1(kernels []*workloads.Kernel) ([]Table1Row, error) {
	return parallel.Map(len(kernels), func(i int) (Table1Row, error) {
		k := kernels[i]
		row := Table1Row{
			Name:                 k.Name,
			Category:             k.Category,
			RegsPerThread:        k.RegsNeeded,
			RFFullOccupancyKB:    occupancy.FullOccupancyRFBytes(k.RegsNeeded) >> 10,
			SharedBytesPerThread: k.SharedBytesPerThread(),
		}
		// Dynamic-instruction ratios come from trace generation alone:
		// spills are inserted by the register allocator, not the timing
		// model. Sample a few CTAs; the ratio is CTA-invariant.
		base := r.dynInsts(k, 0)
		for j, budget := range SpillBudgets {
			row.DynInstRatio[j] = float64(r.dynInsts(k, budget)) / float64(base)
		}
		// DRAM traffic under the Section 3.3 isolation config (spill-free
		// registers, unbounded shared memory) at each cache size.
		var dram [3]int64
		for j, cb := range Table1CacheSizes {
			cfg := IsolationConfig(k, occupancy.FullOccupancyRFBytes(k.RegsNeeded), cb, 0)
			res, err := r.Run(RunSpec{Kernel: k, Config: cfg})
			if err != nil {
				return row, fmt.Errorf("table1 %s cache=%d: %w", k.Name, cb, err)
			}
			dram[j] = res.Counters.DRAMBytes()
		}
		for j := range dram {
			row.DRAMNorm[j] = float64(dram[j]) / float64(dram[2])
		}
		return row, nil
	})
}

// dynInsts counts warp instructions in a sample of the kernel's trace
// under a register budget (0 = spill free).
func (r *Runner) dynInsts(k *workloads.Kernel, budget int) int64 {
	if budget >= k.RegsNeeded {
		budget = 0
	}
	src := &workloads.Source{K: k, RegsAvail: budget, Seed: r.Seed}
	ctas := k.GridCTAs
	if ctas > 4 {
		ctas = 4
	}
	var n int64
	for cta := 0; cta < ctas; cta++ {
		for w := 0; w < k.WarpsPerCTA(); w++ {
			n += int64(len(src.WarpTrace(cta, w)))
		}
	}
	return n
}

// SweepPoint is one point of a Section 3.3 capacity sweep.
type SweepPoint struct {
	// Regs is the per-thread register allocation of this line.
	Regs int
	// Threads is the resident-thread cap of this point.
	Threads int
	// CapacityKB is the swept capacity (RF, shared, or cache).
	CapacityKB int
	// Perf is performance normalized to the sweep's reference point.
	Perf float64
	// Infeasible marks configurations that cannot run (e.g. one CTA does
	// not fit); Perf is 0 for these.
	Infeasible bool
}

// FigureSweep is one benchmark's set of sweep lines.
type FigureSweep struct {
	Benchmark string
	Points    []SweepPoint
}

// Figure2Benchmarks are the register-capacity case studies.
var Figure2Benchmarks = []string{"dgemm", "pcr", "needle", "bfs"}

// ThreadSweep is the 256..1024 resident-thread axis of Figures 2-4.
var ThreadSweep = []int{256, 512, 768, 1024}

// Figure2 reproduces the performance-versus-register-file-capacity study:
// lines are registers/thread from SpillBudgets, points are thread counts,
// cache is fixed at 64 KB and shared memory is unbounded. Performance is
// normalized to (64 regs, 1024 threads). All (benchmark, regs, threads)
// points run as one flat parallel batch.
func (r *Runner) Figure2() ([]FigureSweep, error) {
	kernels, err := kernelsByName(Figure2Benchmarks)
	if err != nil {
		return nil, err
	}
	perBench := len(SpillBudgets) * len(ThreadSweep)
	points, err := parallel.Map(len(kernels)*perBench, func(i int) (SweepPoint, error) {
		k := kernels[i/perBench]
		regs := SpillBudgets[i%perBench/len(ThreadSweep)]
		threads := ThreadSweep[i%len(ThreadSweep)]
		eff := regs
		if eff > k.RegsNeeded {
			eff = k.RegsNeeded
		}
		rf := eff * 4 * threads
		cfg := IsolationConfig(k, rf, 64<<10, threads)
		res, err := r.Run(RunSpec{Kernel: k, Config: cfg, RegsPerThread: eff})
		pt := SweepPoint{Regs: regs, Threads: threads, CapacityKB: rf >> 10}
		switch {
		case IsInfeasible(err):
			pt.Infeasible = true
		case err != nil:
			return pt, err
		default:
			pt.Perf = res.Performance()
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	return groupSweeps(kernels, points, perBench, func(p SweepPoint) bool {
		return p.Regs == 64 && p.Threads == 1024
	}), nil
}

// kernelsByName resolves a benchmark name list, failing on the first
// unknown name as the serial loops did.
func kernelsByName(names []string) ([]*workloads.Kernel, error) {
	out := make([]*workloads.Kernel, len(names))
	for i, name := range names {
		k, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		out[i] = k
	}
	return out, nil
}

// groupSweeps slices a flat per-benchmark-major point batch back into one
// FigureSweep per kernel, normalizing each to its reference point (the
// feasible point isRef selects).
func groupSweeps(kernels []*workloads.Kernel, points []SweepPoint, perBench int,
	isRef func(SweepPoint) bool) []FigureSweep {
	out := make([]FigureSweep, 0, len(kernels))
	for b, k := range kernels {
		sweep := FigureSweep{Benchmark: k.Name, Points: points[b*perBench : (b+1)*perBench]}
		ref := 0.0
		for _, p := range sweep.Points {
			if !p.Infeasible && isRef(p) {
				ref = p.Perf
			}
		}
		normalize(sweep.Points, ref)
		out = append(out, sweep)
	}
	return out
}

// Figure3Benchmarks are the shared-memory-capacity case studies.
var Figure3Benchmarks = []string{"needle", "pcr", "lu", "sto"}

// Figure3 reproduces performance versus shared-memory capacity: spill-free
// registers, 64 KB cache, shared memory sized exactly for each resident
// thread count. Normalized to 1024 threads.
func (r *Runner) Figure3() ([]FigureSweep, error) {
	kernels, err := kernelsByName(Figure3Benchmarks)
	if err != nil {
		return nil, err
	}
	perBench := len(ThreadSweep)
	points, err := parallel.Map(len(kernels)*perBench, func(i int) (SweepPoint, error) {
		k := kernels[i/perBench]
		threads := ThreadSweep[i%perBench]
		ctas := threads / k.ThreadsPerCTA
		if ctas < 1 {
			ctas = 1
		}
		shm := ctas * k.SharedBytesPerCTA
		cfg := config.MemConfig{
			Design:      config.Partitioned,
			RFBytes:     occupancy.FullOccupancyRFBytes(k.RegsNeeded),
			SharedBytes: shm,
			CacheBytes:  64 << 10,
			MaxThreads:  threads,
		}
		res, err := r.Run(RunSpec{Kernel: k, Config: cfg})
		pt := SweepPoint{Threads: threads, CapacityKB: shm >> 10}
		switch {
		case IsInfeasible(err):
			pt.Infeasible = true
		case err != nil:
			return pt, err
		default:
			pt.Perf = res.Performance()
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	return groupSweeps(kernels, points, perBench, func(p SweepPoint) bool {
		return p.Threads == 1024
	}), nil
}

// Figure4Benchmarks are the cache-capacity case studies.
var Figure4Benchmarks = []string{"bfs", "pcr", "mummer", "needle"}

// Figure4CacheSizes is the swept cache capacity axis.
var Figure4CacheSizes = []int{32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}

// Figure4 reproduces performance versus cache capacity: spill-free
// registers, unbounded shared memory, lines are thread counts. Normalized
// to (512 KB cache, 1024 threads).
func (r *Runner) Figure4() ([]FigureSweep, error) {
	kernels, err := kernelsByName(Figure4Benchmarks)
	if err != nil {
		return nil, err
	}
	perBench := len(ThreadSweep) * len(Figure4CacheSizes)
	points, err := parallel.Map(len(kernels)*perBench, func(i int) (SweepPoint, error) {
		k := kernels[i/perBench]
		threads := ThreadSweep[i%perBench/len(Figure4CacheSizes)]
		cb := Figure4CacheSizes[i%len(Figure4CacheSizes)]
		cfg := IsolationConfig(k, occupancy.FullOccupancyRFBytes(k.RegsNeeded), cb, threads)
		res, err := r.Run(RunSpec{Kernel: k, Config: cfg})
		pt := SweepPoint{Threads: threads, CapacityKB: cb >> 10}
		switch {
		case IsInfeasible(err):
			pt.Infeasible = true
		case err != nil:
			return pt, err
		default:
			pt.Perf = res.Performance()
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	return groupSweeps(kernels, points, perBench, func(p SweepPoint) bool {
		return p.Threads == 1024 && p.CapacityKB == 512
	}), nil
}

// normalize rescales sweep points by the reference performance.
func normalize(pts []SweepPoint, ref float64) {
	if ref == 0 {
		return
	}
	for i := range pts {
		pts[i].Perf /= ref
	}
}

// Comparison is one benchmark's unified-versus-partitioned outcome
// (Figures 7, 9, 10 and Table 6).
type Comparison struct {
	Benchmark string
	// Config is the flexible design's resolved configuration.
	Config config.MemConfig
	// Threads is the resident thread count under the flexible design.
	Threads int
	// PerfRatio is flexible performance / baseline performance
	// (higher is better).
	PerfRatio float64
	// EnergyRatio is flexible energy / baseline energy (lower is better).
	EnergyRatio float64
	// DRAMRatio is flexible DRAM traffic / baseline (lower is better).
	DRAMRatio float64
}

// NamedMachine pairs a display name with the rule deriving a kernel's
// memory configuration under that machine. The rule is per-kernel
// because the paper's flexible designs are: the §4.5 allocator and the
// Fermi-like preset chooser size RF/shared/cache from each kernel's
// requirements, while fixed machines ignore the kernel entirely.
type NamedMachine struct {
	Name      string
	Configure func(k *workloads.Kernel) (config.MemConfig, error)
}

// MachineSet is an ordered list of named machines — the generalization
// of the hardcoded partitioned/unified/fermi-like tuple that the
// experiment drivers and the campaign layer iterate over.
type MachineSet []NamedMachine

// FixedMachine is a machine with one configuration for every kernel.
func FixedMachine(name string, cfg config.MemConfig) NamedMachine {
	return NamedMachine{Name: name, Configure: func(*workloads.Kernel) (config.MemConfig, error) {
		return cfg, nil
	}}
}

// BaselineMachine is the paper's partitioned baseline (Table 2).
func BaselineMachine() NamedMachine {
	return FixedMachine(config.Partitioned.String(), config.Baseline())
}

// UnifiedMachine applies the §4.5 allocation of a unified memory of
// totalBytes per kernel.
func UnifiedMachine(name string, totalBytes int) NamedMachine {
	return NamedMachine{Name: name, Configure: func(k *workloads.Kernel) (config.MemConfig, error) {
		cfg, err := config.Allocate(k.Requirements(), totalBytes, 0)
		if err != nil {
			return config.MemConfig{}, fmt.Errorf("allocate %s: %w", k.Name, err)
		}
		return cfg, nil
	}}
}

// FermiMachine applies the Fermi-like limited design of totalBytes per
// kernel: a fixed 256 KB register file plus the better of the two
// preset shared/cache splits.
func FermiMachine(name string, totalBytes int) NamedMachine {
	return NamedMachine{Name: name, Configure: func(k *workloads.Kernel) (config.MemConfig, error) {
		return config.ChooseFermi(k.Requirements(), totalBytes-config.BaselineRFBytes, 0), nil
	}}
}

// CompareUnified runs a kernel under the Section 4.5 allocation of a
// unified memory of totalBytes and compares it with the kernel's baseline
// partitioned run.
func (r *Runner) CompareUnified(k *workloads.Kernel, totalBytes int) (Comparison, error) {
	cfg, err := UnifiedMachine(config.Unified.String(), totalBytes).Configure(k)
	if err != nil {
		return Comparison{}, err
	}
	return r.compare(k, cfg)
}

// CompareFermi runs a kernel under the Fermi-like limited design (fixed
// 256 KB register file, shared/cache split chosen per kernel from two
// presets) and compares with baseline.
func (r *Runner) CompareFermi(k *workloads.Kernel, totalBytes int) (Comparison, error) {
	cfg, err := FermiMachine(config.FermiLike.String(), totalBytes).Configure(k)
	if err != nil {
		return Comparison{}, err
	}
	return r.compare(k, cfg)
}

func (r *Runner) compare(k *workloads.Kernel, cfg config.MemConfig) (Comparison, error) {
	base, err := r.Baseline(k)
	if err != nil {
		return Comparison{}, err
	}
	res, err := r.Run(RunSpec{Kernel: k, Config: cfg})
	if err != nil {
		return Comparison{}, fmt.Errorf("%s under %v: %w", k.Name, cfg, err)
	}
	return Comparison{
		Benchmark:   k.Name,
		Config:      cfg,
		Threads:     res.Occupancy.Threads,
		PerfRatio:   float64(base.Counters.Cycles) / float64(res.Counters.Cycles),
		EnergyRatio: res.Energy.Total() / base.Energy.Total(),
		DRAMRatio:   float64(res.Counters.DRAMBytes()) / float64(base.Counters.DRAMBytes()),
	}, nil
}

// Figure7 compares the 384 KB unified design against the equal-capacity
// partitioned baseline for the no-benefit set; the paper's result is that
// every change stays within about 1%.
func (r *Runner) Figure7() ([]Comparison, error) {
	return r.CompareMachine(workloads.NoBenefitSet(),
		UnifiedMachine(config.Unified.String(), config.BaselineTotalBytes))
}

// Figure9 is the same comparison for the benefit set (gains of 4-71%).
func (r *Runner) Figure9() ([]Comparison, error) {
	return r.CompareMachine(workloads.BenefitSet(),
		UnifiedMachine(config.Unified.String(), config.BaselineTotalBytes))
}

// Figure10 compares the Fermi-like limited-flexibility design for the
// benefit set.
func (r *Runner) Figure10() ([]Comparison, error) {
	return r.CompareMachine(workloads.BenefitSet(),
		FermiMachine(config.FermiLike.String(), config.BaselineTotalBytes))
}

// CompareMachine compares every kernel against its partitioned baseline
// run under one named machine, fanned out across the parallel engine in
// kernel order.
func (r *Runner) CompareMachine(ks []*workloads.Kernel, m NamedMachine) ([]Comparison, error) {
	return parallel.Map(len(ks), func(i int) (Comparison, error) {
		cfg, err := m.Configure(ks[i])
		if err != nil {
			return Comparison{}, err
		}
		return r.compare(ks[i], cfg)
	})
}

// Figure8Row is one benchmark's chosen partitioning of the 384 KB unified
// memory (Figure 8).
type Figure8Row struct {
	Benchmark               string
	RFKB, SharedKB, CacheKB int
	Threads                 int
}

// Figure8 reports how the Section 4.5 algorithm divides 384 KB for the
// benefit set.
func (r *Runner) Figure8() ([]Figure8Row, error) {
	var out []Figure8Row
	for _, k := range workloads.BenefitSet() {
		cfg, err := config.Allocate(k.Requirements(), config.BaselineTotalBytes, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure8Row{
			Benchmark: k.Name,
			RFKB:      cfg.RFBytes >> 10,
			SharedKB:  cfg.SharedBytes >> 10,
			CacheKB:   cfg.CacheBytes >> 10,
			Threads:   cfg.MaxThreads,
		})
	}
	return out, nil
}

// ConflictRow is the bank-conflict breakdown of one named machine
// (Table 5).
type ConflictRow struct {
	Machine   string
	Fractions [stats.ConflictBuckets]float64
}

// Table5 aggregates the per-instruction maximum-bank-accesses histogram
// across the Figure 7 benchmarks for the partitioned and unified
// designs.
func (r *Runner) Table5() ([]ConflictRow, error) {
	set := MachineSet{
		BaselineMachine(),
		UnifiedMachine(config.Unified.String(), config.BaselineTotalBytes),
	}
	return r.ConflictBreakdown(set, workloads.NoBenefitSet())
}

// ConflictBreakdown aggregates the per-instruction maximum-bank-accesses
// histogram across the kernels for every machine of the set, weighting
// benchmarks equally as the paper averages. The (machine, kernel) runs
// form one flat parallel batch; aggregation stays in kernel order.
func (r *Runner) ConflictBreakdown(set MachineSet, kernels []*workloads.Kernel) ([]ConflictRow, error) {
	fracs, err := parallel.Map(len(set)*len(kernels),
		func(i int) ([stats.ConflictBuckets]float64, error) {
			m := set[i/len(kernels)]
			k := kernels[i%len(kernels)]
			cfg, err := m.Configure(k)
			if err != nil {
				return [stats.ConflictBuckets]float64{}, err
			}
			var res *Result
			if cfg == config.Baseline() {
				// The baseline run doubles as the energy calibration and
				// is cached on the Runner.
				res, err = r.Baseline(k)
			} else {
				res, err = r.Run(RunSpec{Kernel: k, Config: cfg})
			}
			if err != nil {
				return [stats.ConflictBuckets]float64{}, err
			}
			return res.Counters.ConflictFractions(), nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]ConflictRow, len(set))
	for i, m := range set {
		var agg stats.Counters
		for _, frac := range fracs[i*len(kernels) : (i+1)*len(kernels)] {
			for b := range frac {
				// Weight benchmarks equally, as the paper averages.
				agg.ConflictHist[b] += int64(frac[b] * 1e6)
			}
		}
		row := ConflictRow{Machine: m.Name}
		total := int64(0)
		for _, v := range agg.ConflictHist {
			total += v
		}
		for b, v := range agg.ConflictHist {
			row.Fractions[b] = float64(v) / float64(total)
		}
		out[i] = row
	}
	return out, nil
}

// Table6Capacities are the unified-memory capacities of Table 6.
var Table6Capacities = []int{128 << 10, 256 << 10, 384 << 10}

// Table6Row is one benchmark's capacity-sensitivity row.
type Table6Row struct {
	Benchmark string
	// Perf[i] and Energy[i] are normalized to the baseline partitioned
	// design, for Table6Capacities[i].
	Perf   [3]float64
	Energy [3]float64
	// Infeasible[i] marks capacities the kernel cannot fit.
	Infeasible [3]bool
}

// Table6 evaluates unified-memory capacity sensitivity for the benefit
// set plus an average row for the Figure 7 set. Rows are independent and
// run in parallel; within a row the geomean products keep kernel order so
// the floating-point result is identical to the serial loop's.
func (r *Runner) Table6() ([]Table6Row, error) {
	type rowSpec struct {
		label   string
		kernels []*workloads.Kernel
	}
	var specs []rowSpec
	for _, k := range workloads.BenefitSet() {
		specs = append(specs, rowSpec{k.Name, []*workloads.Kernel{k}})
	}
	specs = append(specs,
		rowSpec{"average (benefit)", workloads.BenefitSet()},
		rowSpec{"figure-7 set (average)", workloads.NoBenefitSet()})
	return parallel.Map(len(specs), func(s int) (Table6Row, error) {
		row := Table6Row{Benchmark: specs[s].label}
		for i, total := range Table6Capacities {
			perfProd, energyProd, n := 1.0, 1.0, 0
			for _, k := range specs[s].kernels {
				c, err := r.CompareUnified(k, total)
				if IsInfeasible(err) {
					row.Infeasible[i] = true
					continue
				}
				if err != nil {
					return row, err
				}
				perfProd *= c.PerfRatio
				energyProd *= c.EnergyRatio
				n++
			}
			if n > 0 {
				row.Perf[i] = geomean(perfProd, n)
				row.Energy[i] = geomean(energyProd, n)
			}
		}
		return row, nil
	})
}

func geomean(prod float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// Figure11Point is one (blocking factor, thread count) needle measurement.
type Figure11Point struct {
	BF         int
	Threads    int
	SharedKB   int
	Perf       float64
	Infeasible bool
}

// Figure11BlockingFactors are the needle variants of the tuning study.
var Figure11BlockingFactors = []int{16, 32, 64}

// Figure11 reproduces the needle blocking-factor study: for each BF, sweep
// resident threads and report performance against the shared-memory
// capacity each point requires. Performance is normalized to the best
// point observed (the paper normalizes to its largest configuration).
func (r *Runner) Figure11() ([]FigureSweep, error) {
	// The thread axis depends on each variant's CTA size, so enumerate the
	// (kernel, threads) jobs first, then run them as one parallel batch.
	type job struct {
		k       *workloads.Kernel
		sweep   int
		threads int
	}
	var jobs []job
	sweeps := make([]FigureSweep, len(Figure11BlockingFactors))
	for i, bf := range Figure11BlockingFactors {
		k := workloads.NeedleKernel(bf)
		sweeps[i].Benchmark = fmt.Sprintf("needle BF=%d", bf)
		for threads := k.ThreadsPerCTA; threads <= config.MaxThreadsPerSM; threads += 2 * k.ThreadsPerCTA {
			jobs = append(jobs, job{k: k, sweep: i, threads: threads})
		}
	}
	points, err := parallel.Map(len(jobs), func(i int) (SweepPoint, error) {
		j := jobs[i]
		ctas := j.threads / j.k.ThreadsPerCTA
		shm := ctas * j.k.SharedBytesPerCTA
		cfg := config.MemConfig{
			Design:      config.Partitioned,
			RFBytes:     occupancy.FullOccupancyRFBytes(j.k.RegsNeeded),
			SharedBytes: shm,
			CacheBytes:  64 << 10,
			MaxThreads:  j.threads,
		}
		res, err := r.Run(RunSpec{Kernel: j.k, Config: cfg})
		pt := SweepPoint{Regs: j.k.BF, Threads: j.threads, CapacityKB: shm >> 10}
		switch {
		case IsInfeasible(err):
			pt.Infeasible = true
		case err != nil:
			return pt, err
		default:
			pt.Perf = res.Performance()
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	best := 0.0
	for _, pt := range points {
		if !pt.Infeasible && pt.Perf > best {
			best = pt.Perf
		}
	}
	for i, pt := range points {
		sweeps[jobs[i].sweep].Points = append(sweeps[jobs[i].sweep].Points, pt)
	}
	for i := range sweeps {
		normalize(sweeps[i].Points, best)
	}
	return sweeps, nil
}

// Table4Row is one bank energy entry (Table 4).
type Table4Row struct {
	Structure string
	BankKB    int
	ReadPJ    float64
	WritePJ   float64
}

// Table4 reports the SRAM bank access energies of both designs.
func Table4() []Table4Row {
	entries := []struct {
		structure string
		bankBytes int
	}{
		{"256KB RF (partitioned)", 8 << 10},
		{"64KB shared (partitioned)", 2 << 10},
		{"64KB cache (partitioned)", 2 << 10},
		{"384KB unified", 12 << 10},
	}
	out := make([]Table4Row, 0, len(entries))
	for _, e := range entries {
		rd, wr := energy.BankEnergy(e.bankBytes)
		out = append(out, Table4Row{
			Structure: e.structure,
			BankKB:    e.bankBytes >> 10,
			ReadPJ:    rd,
			WritePJ:   wr,
		})
	}
	return out
}

// MRFFraction returns the fraction of register-operand accesses served by
// the MRF in a kernel's baseline run — the two-level hierarchy headline
// (~40%, i.e. a 60% reduction).
func (r *Runner) MRFFraction(k *workloads.Kernel) (float64, error) {
	res, err := r.Baseline(k)
	if err != nil {
		return 0, err
	}
	return res.Counters.MRFAccessFraction(), nil
}
