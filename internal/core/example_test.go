package core_test

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workloads"
)

// Example runs the paper's headline comparison for one kernel: needle
// under the baseline partitioned SM and under the unified design's §4.5
// allocation.
func Example() {
	kernel, err := workloads.ByName("needle")
	if err != nil {
		panic(err)
	}
	runner := core.NewRunner()

	baseline, err := runner.Run(core.RunSpec{Kernel: kernel, Config: config.Baseline()})
	if err != nil {
		panic(err)
	}
	unifiedCfg, err := config.Allocate(kernel.Requirements(), config.BaselineTotalBytes, 0)
	if err != nil {
		panic(err)
	}
	unified, err := runner.Run(core.RunSpec{Kernel: kernel, Config: unifiedCfg})
	if err != nil {
		panic(err)
	}

	fmt.Println("baseline threads:", baseline.Occupancy.Threads)
	fmt.Println("unified threads:", unified.Occupancy.Threads)
	fmt.Println("unified faster:", unified.Counters.Cycles < baseline.Counters.Cycles)
	// Output:
	// baseline threads: 224
	// unified threads: 1024
	// unified faster: true
}
