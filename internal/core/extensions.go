package core

import (
	"fmt"

	"repro/internal/banks"
	"repro/internal/chip"
	"repro/internal/config"
	"repro/internal/dispatch"
	"repro/internal/isa"
	"repro/internal/occupancy"
	"repro/internal/parallel"
	"repro/internal/sm"
	"repro/internal/workloads"
)

// This file implements the paper's documented design alternatives and
// extensions beyond the headline evaluation:
//
//   - Section 4.4: per-kernel repartitioning of the unified memory across
//     a multi-kernel application (RunSequence). The write-through cache
//     means repartitioning moves no data — only tags are invalidated.
//   - Section 4.2: the "more aggressive" scatter/gather design that lets
//     multiple banks in a cluster be accessed per cycle (AblateScatter);
//     the paper measured +0.5% average and kept the simple design.
//   - Section 8 (future work): power-gating unneeded capacity after
//     allocation (PowerGating) — "future systems could exploit this fact
//     by disabling unneeded memory".

// SequenceStep is one kernel's outcome within a multi-kernel run.
type SequenceStep struct {
	Kernel string
	Config config.MemConfig
	Result *Result
}

// SequenceResult aggregates a Section 4.4 multi-kernel run.
type SequenceResult struct {
	Steps []SequenceStep
	// Cycles and Energy are summed across the kernels.
	Cycles int64
	Energy float64
}

// RunSequence runs kernels back to back, repartitioning the unified memory
// of totalBytes before each launch with the Section 4.5 algorithm. Because
// the cache is write-through, repartitioning between kernels has no dirty
// data to move; the cache starts cold for each kernel either way (kernels
// do not share data here), so no extra reconfiguration penalty is charged.
func (r *Runner) RunSequence(kernels []*workloads.Kernel, totalBytes int) (*SequenceResult, error) {
	out := &SequenceResult{}
	for _, k := range kernels {
		cfg, err := config.Allocate(k.Requirements(), totalBytes, 0)
		if err != nil {
			return nil, fmt.Errorf("sequence: %s: %w", k.Name, err)
		}
		res, err := r.Run(RunSpec{Kernel: k, Config: cfg})
		if err != nil {
			return nil, err
		}
		out.Steps = append(out.Steps, SequenceStep{Kernel: k.Name, Config: cfg, Result: res})
		out.Cycles += res.Counters.Cycles
		out.Energy += res.Energy.Total()
	}
	return out, nil
}

// RunSequenceFixed runs the same kernels under one fixed configuration
// (the comparison point for RunSequence: a hard-partitioned machine must
// serve every kernel with the same split).
func (r *Runner) RunSequenceFixed(kernels []*workloads.Kernel, cfg config.MemConfig) (*SequenceResult, error) {
	out := &SequenceResult{}
	for _, k := range kernels {
		res, err := r.Run(RunSpec{Kernel: k, Config: cfg})
		if err != nil {
			return nil, fmt.Errorf("sequence: %s under %v: %w", k.Name, cfg, err)
		}
		out.Steps = append(out.Steps, SequenceStep{Kernel: k.Name, Config: cfg, Result: res})
		out.Cycles += res.Counters.Cycles
		out.Energy += res.Energy.Total()
	}
	return out, nil
}

// ScatterAblation is one benchmark's simple-vs-aggressive outcome.
type ScatterAblation struct {
	Benchmark string
	// Speedup is aggressive performance / simple performance.
	Speedup float64
	// ConflictCyclesSimple and ConflictCyclesAggressive are the
	// serialization cycles under each variant.
	ConflictCyclesSimple     int64
	ConflictCyclesAggressive int64
}

// AblateScatter compares the simple single-bank-per-cluster unified design
// against the Section 4.2 aggressive variant for the given kernels, each
// under its Section 4.5 allocation.
func (r *Runner) AblateScatter(kernels []*workloads.Kernel) ([]ScatterAblation, error) {
	return parallel.Map(len(kernels), func(i int) (ScatterAblation, error) {
		k := kernels[i]
		cfg, err := config.Allocate(k.Requirements(), config.BaselineTotalBytes, 0)
		if err != nil {
			return ScatterAblation{}, err
		}
		simple, err := r.Run(RunSpec{Kernel: k, Config: cfg})
		if err != nil {
			return ScatterAblation{}, err
		}
		agg := NewRunner()
		agg.Params.AggressiveScatter = true
		aggRes, err := agg.Run(RunSpec{Kernel: k, Config: cfg})
		if err != nil {
			return ScatterAblation{}, err
		}
		return ScatterAblation{
			Benchmark:                k.Name,
			Speedup:                  float64(simple.Counters.Cycles) / float64(aggRes.Counters.Cycles),
			ConflictCyclesSimple:     simple.Counters.ConflictCycles,
			ConflictCyclesAggressive: aggRes.Counters.ConflictCycles,
		}, nil
	})
}

// PowerGatingRow reports the Section 8 extension: after the §4.5
// allocation, any capacity not assigned to registers or shared memory and
// not needed by the cache could be power gated instead of spent on cache.
type PowerGatingRow struct {
	Benchmark string
	// FullPerf/FullEnergy: all remaining capacity used as cache (the
	// paper's default), normalized to the baseline partitioned design.
	FullPerf, FullEnergy float64
	// GatedPerf/GatedEnergy: cache capped at the baseline 64 KB and the
	// remainder power gated (no leakage).
	GatedPerf, GatedEnergy float64
}

// PowerGating evaluates gating the unused unified capacity for the given
// kernels. Gating trades the larger cache's performance for lower SRAM
// leakage — profitable exactly for the workloads whose working set the
// baseline cache already captures.
func (r *Runner) PowerGating(kernels []*workloads.Kernel) ([]PowerGatingRow, error) {
	return parallel.Map(len(kernels), func(i int) (PowerGatingRow, error) {
		k := kernels[i]
		base, err := r.Baseline(k)
		if err != nil {
			return PowerGatingRow{}, err
		}
		full, err := r.CompareUnified(k, config.BaselineTotalBytes)
		if err != nil {
			return PowerGatingRow{}, err
		}
		cfg, err := config.Allocate(k.Requirements(), config.BaselineTotalBytes, 0)
		if err != nil {
			return PowerGatingRow{}, err
		}
		if cfg.CacheBytes > config.BaselineCacheBytes {
			// Gate everything beyond a baseline-sized cache: the
			// configuration simply shrinks, and with it the leakage.
			cfg.CacheBytes = config.BaselineCacheBytes
		}
		gated, err := r.Run(RunSpec{Kernel: k, Config: cfg})
		if err != nil {
			return PowerGatingRow{}, err
		}
		return PowerGatingRow{
			Benchmark:   k.Name,
			FullPerf:    full.PerfRatio,
			FullEnergy:  full.EnergyRatio,
			GatedPerf:   float64(base.Counters.Cycles) / float64(gated.Counters.Cycles),
			GatedEnergy: gated.Energy.Total() / base.Energy.Total(),
		}, nil
	})
}

// MethodologyRow compares the paper's single-SM methodology against a
// full multi-SM chip simulation for one benchmark (Section 5.1: "modeling
// a single SM, rather than the full chip, simplifies simulation without
// sacrificing accuracy").
type MethodologyRow struct {
	Benchmark string
	// SingleSMCycles is the standard single-SM simulation.
	SingleSMCycles int64
	// ChipMeanCycles is the mean per-SM runtime on an N-SM chip running
	// N copies of the grid against a shared, channel-interleaved DRAM
	// system with the same per-SM bandwidth share.
	ChipMeanCycles float64
	// Deviation is |chip/single - 1|.
	Deviation float64
}

// replicatedSource runs factor copies of a kernel grid (one per SM).
type replicatedSource struct {
	src    sm.TraceSource
	ctas   int
	warps  int
	factor int
}

func (r *replicatedSource) Grid() (int, int) { return r.ctas * r.factor, r.warps }
func (r *replicatedSource) WarpTrace(cta, warp int) []isa.WarpInst {
	return r.src.WarpTrace(cta, warp)
}

// WarpOutcomes forwards to the wrapped source when it memoizes bank
// outcomes (see dispatch.OutcomeSource), so replicated chip runs replay
// them too.
func (r *replicatedSource) WarpOutcomes(cta, warp int, design config.Design, aggressive bool) []banks.Outcome {
	if src, ok := r.src.(dispatch.OutcomeSource); ok {
		return src.WarpOutcomes(cta, warp, design, aggressive)
	}
	return nil
}

// ValidateMethodology runs each kernel both ways and reports the per-SM
// runtime deviation of the full-chip simulation from the single-SM one.
// Each kernel's chip simulation is an independent parallel work item.
func (r *Runner) ValidateMethodology(kernels []*workloads.Kernel, nSMs int) ([]MethodologyRow, error) {
	return parallel.Map(len(kernels), func(i int) (MethodologyRow, error) {
		k := kernels[i]
		single, err := r.Baseline(k)
		if err != nil {
			return MethodologyRow{}, err
		}
		occ := occupancy.Compute(k.Requirements(), config.Baseline(), 0)
		src := &workloads.Source{K: k, Seed: r.Seed}
		_, warps := src.Grid()
		rep := &replicatedSource{src: src, ctas: k.GridCTAs, warps: warps, factor: nSMs}
		machine, err := chip.New(chip.Config{NumSMs: nSMs}, config.Baseline(), r.Params, rep, occ.CTAs)
		if err != nil {
			return MethodologyRow{}, fmt.Errorf("validate %s: %w", k.Name, err)
		}
		res, err := machine.Run()
		if err != nil {
			return MethodologyRow{}, fmt.Errorf("validate %s: %w", k.Name, err)
		}
		mean := 0.0
		for _, c := range res.PerSM {
			mean += float64(c.Cycles)
		}
		mean /= float64(len(res.PerSM))
		row := MethodologyRow{
			Benchmark:      k.Name,
			SingleSMCycles: single.Counters.Cycles,
			ChipMeanCycles: mean,
		}
		row.Deviation = mean/float64(single.Counters.Cycles) - 1
		if row.Deviation < 0 {
			row.Deviation = -row.Deviation
		}
		return row, nil
	})
}

// WritePolicyRow compares the paper's write-through no-write-allocate
// cache against a write-back write-allocate variant for one benchmark
// under the baseline configuration (the Section 4.3/4.4 design-choice
// ablation).
type WritePolicyRow struct {
	Benchmark string
	// PerfRatio is write-back performance / write-through performance.
	PerfRatio float64
	// DRAMRatio is write-back DRAM traffic / write-through traffic.
	DRAMRatio float64
	// DirtyFlushLines is the modified-line count a write-back design
	// would have to flush when the unified memory is repartitioned
	// (write-through always owes zero).
	DirtyFlushLines int
}

// AblateWritePolicy runs each kernel under both write policies. The
// write-back Runner is shared across the parallel items; its baseline
// cache serializes internally.
func (r *Runner) AblateWritePolicy(kernels []*workloads.Kernel) ([]WritePolicyRow, error) {
	wb := NewRunner()
	wb.Params.WriteBackCache = true
	return parallel.Map(len(kernels), func(i int) (WritePolicyRow, error) {
		k := kernels[i]
		wt, err := r.Baseline(k)
		if err != nil {
			return WritePolicyRow{}, err
		}
		wbRes, err := wb.Baseline(k)
		if err != nil {
			return WritePolicyRow{}, err
		}
		return WritePolicyRow{
			Benchmark:       k.Name,
			PerfRatio:       float64(wt.Counters.Cycles) / float64(wbRes.Counters.Cycles),
			DRAMRatio:       float64(wbRes.Counters.DRAMBytes()) / float64(wt.Counters.DRAMBytes()),
			DirtyFlushLines: wbRes.Counters.DirtyLinesEnd,
		}, nil
	})
}

// SchedulerAblation reports performance across active-set sizes of the
// two-level warp scheduler (Gebhart et al. MICRO 2011 use 8 active warps;
// a size of 32 degenerates to a flat single-level scheduler). The paper's
// unified design inherits the two-level scheduler, so this quantifies how
// much the active-set choice matters on these workloads.
type SchedulerAblation struct {
	Benchmark string
	// CyclesByActive maps active-set size to runtime.
	CyclesByActive map[int]int64
}

// SchedulerActiveSizes are the swept active-set sizes.
var SchedulerActiveSizes = []int{4, 8, 16, 32}

// AblateScheduler sweeps the active-set size under the baseline design,
// running every (kernel, active-set size) cell as one parallel work item.
func (r *Runner) AblateScheduler(kernels []*workloads.Kernel) ([]SchedulerAblation, error) {
	cells, err := parallel.Map(len(kernels)*len(SchedulerActiveSizes), func(i int) (int64, error) {
		k := kernels[i/len(SchedulerActiveSizes)]
		rr := NewRunner()
		rr.Params.ActiveWarps = SchedulerActiveSizes[i%len(SchedulerActiveSizes)]
		res, err := rr.Run(RunSpec{Kernel: k, Config: config.Baseline()})
		if err != nil {
			return 0, err
		}
		return res.Counters.Cycles, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]SchedulerAblation, 0, len(kernels))
	for i, k := range kernels {
		row := SchedulerAblation{Benchmark: k.Name, CyclesByActive: make(map[int]int64)}
		for j, n := range SchedulerActiveSizes {
			row.CyclesByActive[n] = cells[i*len(SchedulerActiveSizes)+j]
		}
		out = append(out, row)
	}
	return out, nil
}
