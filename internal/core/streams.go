package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/occupancy"
	"repro/internal/sm"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// StreamSpec describes one co-resident kernel (stream) of a
// multi-tenant run.
type StreamSpec struct {
	// Kernel is the stream's workload.
	Kernel *workloads.Kernel
	// RegsPerThread overrides the stream's per-thread register
	// allocation; 0 uses the kernel's spill-free demand.
	RegsPerThread int
	// Seed perturbs the stream's per-warp random streams; 0 uses the
	// runner default (co-tenant copies of one kernel then replay
	// identical traces, which is the deterministic intent).
	Seed uint64
}

// StreamResult is one stream's share of a multi-tenant run.
type StreamResult struct {
	// Kernel names the stream's workload.
	Kernel string
	// Occupancy is the stream's share of the SM residency under the
	// round-robin joint admission (occupancy.ComputeShared).
	Occupancy occupancy.Result
	// Counters are the stream's attributed event counts: additive
	// categories sum exactly to the run's aggregate Counters across
	// streams, and Cycles is the cycle the stream's last warp exited.
	Counters stats.Counters
}

// StreamNames joins the streams' kernel names with "+", the run's
// display label (e.g. "fft+matmul").
func StreamNames(streams []StreamSpec) string {
	names := make([]string, len(streams))
	for i, st := range streams {
		names[i] = st.Kernel.Name
	}
	return strings.Join(names, "+")
}

// runStreams executes a multi-tenant RunSpec: residency is admitted
// jointly (occupancy.ComputeShared, mirroring the dispatcher's
// round-robin CTA-slot interleave), every stream must fit, and the SM
// runs all streams concurrently with per-stream attribution.
//
// Energy always self-calibrates on the run's own counters: a kernel mix
// has no single-kernel baseline run to calibrate against, and the
// baseline-config convention (calibratedOther) degenerates to exactly
// this for the self-calibrating case. Sampling is refused (per-stream
// attribution needs exact runs); snapshot/fork refuses streams in Warm.
func (r *Runner) runStreams(ctx context.Context, spec RunSpec, o *runOptions) (*Result, error) {
	if spec.Kernel != nil {
		return nil, fmt.Errorf("core: RunSpec.Kernel and RunSpec.Streams are mutually exclusive")
	}
	if o.sample.Enabled() {
		return nil, fmt.Errorf("core: sampled mode does not support multi-tenant streams")
	}
	reqs := make([]config.KernelRequirements, len(spec.Streams))
	regsAlloc := make([]int, len(spec.Streams))
	for i, st := range spec.Streams {
		if st.Kernel == nil {
			return nil, fmt.Errorf("core: stream %d: %w", i, ErrKernelNil)
		}
		reqs[i] = st.Kernel.Requirements()
		regs := st.RegsPerThread
		if regs <= 0 || regs > st.Kernel.RegsNeeded {
			regs = st.Kernel.RegsNeeded
		}
		regsAlloc[i] = regs
	}
	occs := occupancy.ComputeShared(reqs, spec.Config, regsAlloc)
	smStreams := make([]sm.StreamSpec, len(spec.Streams))
	for i, st := range spec.Streams {
		if occs[i].CTAs < 1 {
			return nil, &FitError{Kernel: st.Kernel.Name, Config: spec.Config, Limiter: occs[i].Limiter}
		}
		seed := st.Seed
		if seed == 0 {
			seed = r.Seed
		}
		regsAvail := 0
		if regsAlloc[i] < st.Kernel.RegsNeeded {
			regsAvail = regsAlloc[i]
		}
		smStreams[i] = sm.StreamSpec{
			Name:         st.Kernel.Name,
			Source:       &workloads.Source{K: st.Kernel, RegsAvail: regsAvail, Seed: seed},
			ResidentCTAs: occs[i].CTAs,
		}
	}
	label := StreamNames(spec.Streams)
	if o.probe != nil {
		o.probe.Annotate("kernel", label)
		o.probe.Annotate("config", spec.Config.String())
		o.probe.Annotate("streams", fmt.Sprint(len(spec.Streams)))
	}
	machine, err := sm.NewSM(sm.Spec{
		Config:  spec.Config,
		Params:  r.Params,
		Streams: smStreams,
		Probe:   o.probe,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %s under %v: %w", label, spec.Config, err)
	}
	counters, err := machine.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: %s under %v: %w", label, spec.Config, err)
	}
	res := &Result{Spec: spec, Occupancy: jointOccupancy(occs), Counters: counters}
	scs := machine.StreamCounters()
	res.Streams = make([]StreamResult, len(spec.Streams))
	for i, st := range spec.Streams {
		res.Streams[i] = StreamResult{Kernel: st.Kernel.Name, Occupancy: occs[i], Counters: scs[i]}
	}
	other := r.Energy.CalibrateOther(spec.Config, counters)
	res.Energy = r.Energy.Evaluate(spec.Config, counters, other)
	return res, nil
}

// jointOccupancy sums the numeric residency of every stream; the
// Limiter reported is the first stream's (per-stream limiters live on
// the StreamResults).
func jointOccupancy(occs []occupancy.Result) occupancy.Result {
	var out occupancy.Result
	for i, o := range occs {
		if i == 0 {
			out.Limiter = o.Limiter
		}
		out.CTAs += o.CTAs
		out.Threads += o.Threads
		out.Warps += o.Warps
		out.RFBytesUsed += o.RFBytesUsed
		out.SharedBytesUsed += o.SharedBytesUsed
	}
	return out
}
