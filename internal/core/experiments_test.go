package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workloads"
)

// comparisonsByName indexes a comparison list.
func comparisonsByName(comps []Comparison) map[string]Comparison {
	m := make(map[string]Comparison, len(comps))
	for _, c := range comps {
		m[c.Benchmark] = c
	}
	return m
}

// TestFigure9Shape checks the paper's headline result: the benefit set
// gains 4-71% under the 384 KB unified design, needle is the largest
// winner, energy drops, and dgemm alone sees no DRAM reduction.
func TestFigure9Shape(t *testing.T) {
	r := NewRunner()
	comps, err := r.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 8 {
		t.Fatalf("benefit set has %d benchmarks, want 8", len(comps))
	}
	byName := comparisonsByName(comps)
	best := ""
	bestPerf := 0.0
	for _, c := range comps {
		t.Logf("%-8s perf=%.3f energy=%.3f dram=%.3f", c.Benchmark, c.PerfRatio, c.EnergyRatio, c.DRAMRatio)
		if c.PerfRatio < 0.97 {
			t.Errorf("%s: unified slower than baseline (%.3f)", c.Benchmark, c.PerfRatio)
		}
		if c.PerfRatio > 2.2 {
			t.Errorf("%s: implausible speedup %.3f (paper max 1.71)", c.Benchmark, c.PerfRatio)
		}
		if c.EnergyRatio > 1.05 {
			t.Errorf("%s: unified raises energy by %.1f%%", c.Benchmark, 100*(c.EnergyRatio-1))
		}
		if c.PerfRatio > bestPerf {
			best, bestPerf = c.Benchmark, c.PerfRatio
		}
	}
	if best != "needle" {
		t.Errorf("largest winner is %s (%.2fx), want needle", best, bestPerf)
	}
	if bestPerf < 1.4 || bestPerf > 2.0 {
		t.Errorf("needle speedup %.2fx outside the paper's ballpark (1.71x)", bestPerf)
	}
	// dgemm gains from threads, not cache: its DRAM traffic must not drop
	// meaningfully (the paper singles it out).
	if dg := byName["dgemm"]; dg.DRAMRatio < 0.97 || dg.DRAMRatio > 1.05 {
		t.Errorf("dgemm DRAM ratio = %.3f, want ~1.0 (no reduction)", dg.DRAMRatio)
	}
	// Everyone else sees some DRAM reduction (1-32% in the paper).
	for _, c := range comps {
		if c.Benchmark == "dgemm" || c.Benchmark == "needle" {
			continue
		}
		if c.DRAMRatio > 1.01 {
			t.Errorf("%s: DRAM traffic grew under unified (%.3f)", c.Benchmark, c.DRAMRatio)
		}
	}
}

// TestFigure7Shape checks that the no-benefit set is essentially unchanged
// under the unified design (the paper: within ~1%; we allow a few percent).
func TestFigure7Shape(t *testing.T) {
	r := NewRunner()
	comps, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 18 {
		t.Fatalf("no-benefit set has %d benchmarks, want 18", len(comps))
	}
	for _, c := range comps {
		t.Logf("%-18s perf=%.3f energy=%.3f", c.Benchmark, c.PerfRatio, c.EnergyRatio)
		if c.PerfRatio < 0.93 || c.PerfRatio > 1.10 {
			t.Errorf("%s: |perf change| too large for the no-benefit set: %.3f", c.Benchmark, c.PerfRatio)
		}
		if c.EnergyRatio < 0.90 || c.EnergyRatio > 1.07 {
			t.Errorf("%s: |energy change| too large for the no-benefit set: %.3f", c.Benchmark, c.EnergyRatio)
		}
	}
}

// TestTable1Shape checks the characterization invariants: spill overhead
// shrinks monotonically with the register budget and vanishes at 64
// registers; DRAM traffic shrinks monotonically with cache capacity; the
// register-limited group actually spills at 18 registers.
func TestTable1Shape(t *testing.T) {
	r := NewRunner()
	rows, err := r.Table1(workloads.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 26 {
		t.Fatalf("Table 1 has %d rows, want 26", len(rows))
	}
	for _, row := range rows {
		for i := 1; i < len(row.DynInstRatio); i++ {
			if row.DynInstRatio[i] > row.DynInstRatio[i-1]+1e-9 {
				t.Errorf("%s: spill ratio grew with budget: %v", row.Name, row.DynInstRatio)
				break
			}
		}
		if row.DynInstRatio[4] != 1 {
			t.Errorf("%s: spills remain at 64 registers (%.3f)", row.Name, row.DynInstRatio[4])
		}
		if row.DRAMNorm[0] < row.DRAMNorm[1]-1e-9 && row.Name != "needle" && row.Name != "ray" {
			t.Errorf("%s: uncached DRAM below 64KB-cached (%v); only scatter-heavy kernels may invert",
				row.Name, row.DRAMNorm)
		}
		if row.DRAMNorm[1] < row.DRAMNorm[2]-1e-9 {
			t.Errorf("%s: DRAM grew from 64KB to 256KB cache: %v", row.Name, row.DRAMNorm)
		}
	}
	byName := make(map[string]Table1Row, len(rows))
	for _, row := range rows {
		byName[row.Name] = row
	}
	for _, name := range []string{"dgemm", "pcr", "bicubic", "ray"} {
		if byName[name].DynInstRatio[0] < 1.1 {
			t.Errorf("%s is register limited but shows no spills at 18 regs (%.3f)",
				name, byName[name].DynInstRatio[0])
		}
	}
	for _, name := range []string{"needle", "bfs", "vectoradd", "sgemv"} {
		if byName[name].DynInstRatio[0] > 1.02 {
			t.Errorf("%s needs <=18 regs but spills at 18 (%.3f)", name, byName[name].DynInstRatio[0])
		}
	}
	// Full-occupancy register file sizes, Table 1 column 8.
	if byName["dgemm"].RFFullOccupancyKB != 228 || byName["bfs"].RFFullOccupancyKB != 36 {
		t.Errorf("RF full-occupancy sizes wrong: dgemm=%dK bfs=%dK",
			byName["dgemm"].RFFullOccupancyKB, byName["bfs"].RFFullOccupancyKB)
	}
	// Cache-sensitive workloads keep improving beyond 64 KB. (lu is
	// exempt: its reproduction trades the depth of this column for its
	// calibrated Figure 9 speedup — see EXPERIMENTS.md.)
	for _, name := range []string{"bfs", "pcr"} {
		if byName[name].DRAMNorm[1] < 1.05 {
			t.Errorf("%s: expected >5%% extra DRAM at 64KB vs 256KB, got %.3f",
				name, byName[name].DRAMNorm[1])
		}
	}
	// Streaming workloads blow up without a cache (coalescing loss).
	if byName["vectoradd"].DRAMNorm[0] < 2 {
		t.Errorf("vectoradd uncached DRAM = %.2f, want ~4x (paper 3.88)", byName["vectoradd"].DRAMNorm[0])
	}
}

// TestFigure2Shape checks the register-capacity study: dgemm needs both
// many registers and many threads; needle is insensitive to both.
func TestFigure2Shape(t *testing.T) {
	r := NewRunner()
	sweeps, err := r.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	find := func(bench string, regs, threads int) SweepPoint {
		for _, sw := range sweeps {
			if sw.Benchmark != bench {
				continue
			}
			for _, p := range sw.Points {
				if p.Regs == regs && p.Threads == threads {
					return p
				}
			}
		}
		t.Fatalf("missing point %s regs=%d threads=%d", bench, regs, threads)
		return SweepPoint{}
	}
	// dgemm: spills at 18 registers must hurt at full thread count.
	if p18, p64 := find("dgemm", 18, 1024), find("dgemm", 64, 1024); p18.Perf > 0.9*p64.Perf {
		t.Errorf("dgemm at 18 regs (%.3f) should lose >10%% vs 64 regs (%.3f)", p18.Perf, p64.Perf)
	}
	// dgemm: fewer threads at full registers must hurt.
	if p256 := find("dgemm", 64, 256); p256.Perf > 0.9 {
		t.Errorf("dgemm at 256 threads = %.3f, want visible latency penalty", p256.Perf)
	}
	// needle: 18 registers suffice (no spill penalty).
	if p18, p64 := find("needle", 18, 512), find("needle", 64, 512); p18.Perf < 0.97*p64.Perf {
		t.Errorf("needle at 18 regs (%.3f) should match 64 regs (%.3f)", p18.Perf, p64.Perf)
	}
}

// TestFigure3Shape checks the shared-memory study: needle and lu gain from
// threads (hence capacity), sto much less.
func TestFigure3Shape(t *testing.T) {
	r := NewRunner()
	sweeps, err := r.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	perfAt := func(bench string, threads int) float64 {
		for _, sw := range sweeps {
			if sw.Benchmark != bench {
				continue
			}
			for _, p := range sw.Points {
				if p.Threads == threads && !p.Infeasible {
					return p.Perf
				}
			}
		}
		t.Fatalf("missing point %s threads=%d", bench, threads)
		return 0
	}
	if gain := 1 / perfAt("needle", 256); gain < 1.3 {
		t.Errorf("needle 256->1024 threads gain = %.2fx, want strong scaling", gain)
	}
	if gain := 1 / perfAt("sto", 256); gain > 1.35 {
		t.Errorf("sto 256->1024 threads gain = %.2fx; sto should run well at low occupancy", gain)
	}
}

// TestFigure4Shape checks the cache study: bfs and pcr keep improving with
// cache capacity; needle is nearly flat.
func TestFigure4Shape(t *testing.T) {
	r := NewRunner()
	sweeps, err := r.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	perfAt := func(bench string, threads, capacityKB int) float64 {
		for _, sw := range sweeps {
			if sw.Benchmark != bench {
				continue
			}
			for _, p := range sw.Points {
				if p.Threads == threads && p.CapacityKB == capacityKB && !p.Infeasible {
					return p.Perf
				}
			}
		}
		t.Fatalf("missing point %s threads=%d cap=%d", bench, threads, capacityKB)
		return 0
	}
	for _, bench := range []string{"bfs", "pcr"} {
		small, large := perfAt(bench, 1024, 32), perfAt(bench, 1024, 512)
		if large < 1.05*small {
			t.Errorf("%s: 512KB cache (%.3f) should clearly beat 32KB (%.3f)", bench, large, small)
		}
	}
	small, large := perfAt("needle", 1024, 32), perfAt("needle", 1024, 512)
	if large > 1.15*small {
		t.Errorf("needle should be cache-insensitive: 32KB=%.3f 512KB=%.3f", small, large)
	}
}

// TestTable5Shape checks the conflict breakdown: both designs are
// dominated by conflict-free instructions, and the unified design shows a
// small increase in multi-access instructions (the paper: +0.6pp).
func TestTable5Shape(t *testing.T) {
	r := NewRunner()
	rows, err := r.Table5()
	if err != nil {
		t.Fatal(err)
	}
	part, uni := rows[0], rows[1]
	t.Logf("partitioned: %v", part.Fractions)
	t.Logf("unified:     %v", uni.Fractions)
	if part.Machine != config.Partitioned.String() || uni.Machine != config.Unified.String() {
		t.Fatal("rows out of order")
	}
	if part.Fractions[0] < 0.90 || uni.Fractions[0] < 0.90 {
		t.Errorf("conflict-free fraction too low: part=%.3f uni=%.3f",
			part.Fractions[0], uni.Fractions[0])
	}
	if uni.Fractions[0] > part.Fractions[0] {
		t.Errorf("unified should have no fewer conflicts than partitioned (%.4f vs %.4f)",
			uni.Fractions[0], part.Fractions[0])
	}
	if delta := part.Fractions[0] - uni.Fractions[0]; delta > 0.05 {
		t.Errorf("unified conflict increase = %.1fpp, paper reports under 1pp", 100*delta)
	}
}

// TestTable6Shape checks capacity sensitivity: performance is generally
// maximized at 384 KB, and small capacities hurt register- and
// shared-hungry workloads.
func TestTable6Shape(t *testing.T) {
	r := NewRunner()
	rows, err := r.Table6()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Table6Row, len(rows))
	for _, row := range rows {
		byName[row.Benchmark] = row
		t.Logf("%-22s perf %.2f/%.2f/%.2f energy %.2f/%.2f/%.2f",
			row.Benchmark, row.Perf[0], row.Perf[1], row.Perf[2],
			row.Energy[0], row.Energy[1], row.Energy[2])
	}
	for _, name := range []string{"dgemm", "pcr", "ray"} {
		row := byName[name]
		if !row.Infeasible[0] && row.Perf[0] > row.Perf[2] {
			t.Errorf("%s: 128KB (%v) should not beat 384KB (%v)", name, row.Perf[0], row.Perf[2])
		}
	}
	avg := byName["average (benefit)"]
	if avg.Perf[2] < 1.05 || avg.Perf[2] > 1.35 {
		t.Errorf("benefit-set average at 384KB = %.3f, paper reports 1.16", avg.Perf[2])
	}
	if avg.Perf[1] < avg.Perf[0] {
		t.Errorf("benefit-set average should improve 128->256KB: %v", avg.Perf)
	}
	fig7 := byName["figure-7 set (average)"]
	if fig7.Perf[2] < 0.97 || fig7.Perf[2] > 1.05 {
		t.Errorf("figure-7 average at 384KB = %.3f, want ~1.0", fig7.Perf[2])
	}
	// The no-benefit set sees its lowest energy at the smallest capacity
	// (less SRAM leakage), one of the paper's Table 6 observations.
	if fig7.Energy[0] > fig7.Energy[2] {
		t.Errorf("figure-7 energy should be lowest at 128KB: %v", fig7.Energy)
	}
}

// TestFigure10Shape checks the Fermi-like limited design: it helps, but
// strictly less than full unification on shared-hungry and
// register-hungry workloads.
func TestFigure10Shape(t *testing.T) {
	r := NewRunner()
	fermi, err := r.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	unified, err := r.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	uniBy := comparisonsByName(unified)
	for _, f := range fermi {
		t.Logf("%-8s fermi=%.3f unified=%.3f", f.Benchmark, f.PerfRatio, uniBy[f.Benchmark].PerfRatio)
		if f.PerfRatio < 0.9 {
			t.Errorf("%s: Fermi-like design should not badly hurt (%.3f)", f.Benchmark, f.PerfRatio)
		}
		if f.Config.RFBytes != config.BaselineRFBytes {
			t.Errorf("%s: Fermi-like design must keep the 256KB register file", f.Benchmark)
		}
	}
	// needle and dgemm depend on resources Fermi-like flexibility cannot
	// provide enough of; full unification must win clearly.
	for _, name := range []string{"needle", "dgemm"} {
		var f Comparison
		for _, c := range fermi {
			if c.Benchmark == name {
				f = c
			}
		}
		if f.PerfRatio > uniBy[name].PerfRatio+0.02 {
			t.Errorf("%s: Fermi-like (%.3f) should not beat unified (%.3f)",
				name, f.PerfRatio, uniBy[name].PerfRatio)
		}
	}
}

// TestFigure8Shape checks the Section 4.5 allocations.
func TestFigure8Shape(t *testing.T) {
	r := NewRunner()
	rows, err := r.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Figure8Row, len(rows))
	for _, row := range rows {
		byName[row.Benchmark] = row
		if total := row.RFKB + row.SharedKB + row.CacheKB; total > 384 {
			t.Errorf("%s: allocation %dK exceeds 384K", row.Benchmark, total)
		}
	}
	if byName["dgemm"].RFKB != 228 {
		t.Errorf("dgemm RF = %dK, want 228K (57 regs x 1024 threads)", byName["dgemm"].RFKB)
	}
	if byName["bfs"].RFKB != 36 {
		t.Errorf("bfs RF = %dK, want 36K", byName["bfs"].RFKB)
	}
	if byName["needle"].SharedKB < 200 {
		t.Errorf("needle shared = %dK, want the bulk of the 384K (paper: 264K)", byName["needle"].SharedKB)
	}
	if byName["bfs"].CacheKB < 300 {
		t.Errorf("bfs cache = %dK, want nearly everything (paper: 348K)", byName["bfs"].CacheKB)
	}
}

// TestFigure11Shape checks the blocking-factor study: BF=32 wins at small
// scratchpads, BF=64 wins once several hundred KB are available.
func TestFigure11Shape(t *testing.T) {
	r := NewRunner()
	sweeps, err := r.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	bestAtMost := func(capKB int) (string, float64) {
		name, best := "", 0.0
		for _, sw := range sweeps {
			for _, p := range sw.Points {
				if !p.Infeasible && p.CapacityKB <= capKB && p.Perf > best {
					name, best = sw.Benchmark, p.Perf
				}
			}
		}
		return name, best
	}
	smallName, smallPerf := bestAtMost(64)
	bigName, bigPerf := bestAtMost(1 << 20)
	t.Logf("best <=64KB: %s (%.3f); best overall: %s (%.3f)", smallName, smallPerf, bigName, bigPerf)
	if smallName == "needle BF=64" {
		t.Error("BF=64 cannot be the best choice within a 64KB scratchpad")
	}
	if bigPerf < 1.3*smallPerf {
		t.Errorf("large scratchpad should clearly beat 64KB operating points (%.3f vs %.3f)",
			bigPerf, smallPerf)
	}
	// At large capacity BF=64 must at least tie BF=32 (the paper reports
	// "slightly better"); we accept a tie within a few percent.
	bf64Best := 0.0
	for _, sw := range sweeps {
		if sw.Benchmark != "needle BF=64" {
			continue
		}
		for _, p := range sw.Points {
			if !p.Infeasible && p.Perf > bf64Best {
				bf64Best = p.Perf
			}
		}
	}
	if bf64Best < 0.93*bigPerf {
		t.Errorf("BF=64 best (%.3f) should be within a few %% of the global best (%s %.3f)",
			bf64Best, bigName, bigPerf)
	}
}

// TestMRFReduction checks the register-hierarchy enabler: the LRF/ORF
// absorb a large share of register-operand accesses. The paper reports a
// 60% MRF-access reduction on real compiled traces; our synthetic kernels
// carry fewer single-use dataflow temporaries than real code, so we check
// for a substantial (>25%) average reduction and no pathological kernel
// (see EXPERIMENTS.md for the recorded deviation).
func TestMRFReduction(t *testing.T) {
	r := NewRunner()
	sum, n := 0.0, 0
	for _, k := range workloads.All() {
		frac, err := r.MRFFraction(k)
		if err != nil {
			t.Fatal(err)
		}
		sum += frac
		n++
		if frac > 0.85 {
			t.Errorf("%s: MRF operand fraction %.2f, hierarchy should absorb more", k.Name, frac)
		}
	}
	if avg := sum / float64(n); avg > 0.75 {
		t.Errorf("average MRF operand fraction %.2f, want a substantial reduction", avg)
	}
}

// TestRunnerBasics exercises the runner's error paths and caching.
func TestRunnerBasics(t *testing.T) {
	r := NewRunner()
	if _, err := r.Run(RunSpec{}); err == nil {
		t.Error("Run with nil kernel should fail")
	}
	k, _ := workloads.ByName("vectoradd")
	tiny := config.MemConfig{Design: config.Partitioned, RFBytes: 1024}
	if _, err := r.Run(RunSpec{Kernel: k, Config: tiny}); err == nil {
		t.Error("Run with a config that fits no CTA should fail")
	}
	a, err := r.Baseline(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Baseline(k)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Baseline should cache and return the same result")
	}
}

// TestDeterminism checks that two runners produce identical cycle counts.
func TestDeterminism(t *testing.T) {
	k, _ := workloads.ByName("bfs")
	a, err := NewRunner().Baseline(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner().Baseline(k)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters.Cycles != b.Counters.Cycles || a.Counters.DRAMBytes() != b.Counters.DRAMBytes() {
		t.Errorf("runs not deterministic: %d/%d vs %d/%d cycles/bytes",
			a.Counters.Cycles, a.Counters.DRAMBytes(), b.Counters.Cycles, b.Counters.DRAMBytes())
	}
}

// TestTable4Published checks the published bank energies appear verbatim.
func TestTable4Published(t *testing.T) {
	rows := Table4()
	if len(rows) != 4 {
		t.Fatalf("Table 4 has %d rows, want 4", len(rows))
	}
	if rows[0].ReadPJ != 9.8 || rows[0].WritePJ != 11.8 {
		t.Errorf("partitioned MRF bank = %.1f/%.1f, want 9.8/11.8", rows[0].ReadPJ, rows[0].WritePJ)
	}
	if rows[3].ReadPJ != 12.1 || rows[3].WritePJ != 14.9 {
		t.Errorf("unified bank = %.1f/%.1f, want 12.1/14.9", rows[3].ReadPJ, rows[3].WritePJ)
	}
}

// TestAllKernelsRunBaseline smoke-tests every benchmark end to end.
func TestAllKernelsRunBaseline(t *testing.T) {
	r := NewRunner()
	for _, k := range workloads.All() {
		res, err := r.Baseline(k)
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		c := res.Counters
		t.Logf("%-18s cycles=%8d insts=%7d ipc=%.3f thr=%4d hit=%.3f dram=%8d",
			k.Name, c.Cycles, c.WarpInsts, c.IPC(), res.Occupancy.Threads,
			c.CacheHitRate(), c.DRAMBytes())
		if c.Cycles <= 0 || c.WarpInsts <= 0 {
			t.Errorf("%s: empty run", k.Name)
		}
		if c.CTAsRetired != int64(k.GridCTAs) {
			t.Errorf("%s: retired %d CTAs, grid has %d", k.Name, c.CTAsRetired, k.GridCTAs)
		}
		if want := int64(k.GridCTAs * k.ThreadsPerCTA); c.ThreadsRun != want {
			t.Errorf("%s: ran %d threads, want %d", k.Name, c.ThreadsRun, want)
		}
	}
}

// TestIsolationConfigUnbounded checks the Section 3.3 isolation helper.
func TestIsolationConfigUnbounded(t *testing.T) {
	k, _ := workloads.ByName("needle")
	cfg := IsolationConfig(k, 256<<10, 64<<10, 0)
	occCTAs := cfg.SharedBytes / k.SharedBytesPerCTA
	if occCTAs < config.MaxThreadsPerSM/k.ThreadsPerCTA {
		t.Errorf("unbounded shared memory still limits needle: %d CTAs", occCTAs)
	}
}

// TestSeedRobustness checks that the headline conclusion does not depend
// on the random streams driving the divergent gathers: needle's speedup is
// seed-independent (it has no randomness) and the gather-driven winners
// stay winners within a band.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	speedup := func(seed uint64, name string) float64 {
		r := NewRunner()
		r.Seed = seed
		k, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := r.CompareUnified(k, config.BaselineTotalBytes)
		if err != nil {
			t.Fatal(err)
		}
		return c.PerfRatio
	}
	for _, name := range []string{"needle", "bfs", "ray"} {
		a, b, c := speedup(1, name), speedup(7, name), speedup(1234567, name)
		t.Logf("%-8s speedups across seeds: %.3f %.3f %.3f", name, a, b, c)
		lo, hi := a, a
		for _, v := range []float64{b, c} {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > 0.12 {
			t.Errorf("%s: speedup varies %.3f..%.3f across seeds; conclusion unstable", name, lo, hi)
		}
		if lo < 1.0 {
			t.Errorf("%s: a seed flipped the conclusion (%.3f)", name, lo)
		}
	}
}
