package core

import (
	"context"
	"fmt"

	"repro/internal/occupancy"
	"repro/internal/sm"
	"repro/internal/snapshot"
	"repro/internal/workloads"
)

// Warm is a reusable warmed simulation prefix: one spec run to (at
// least) a target cycle under the warming Runner's parameters, frozen
// as a copy-on-write snapshot. A sweep builds one Warm and resumes it
// once per divergent parameter point, paying the warm-up cost once.
//
// A Warm is immutable after construction and safe for concurrent
// Resume calls — forks copy out of the snapshot, never into it.
type Warm struct {
	// Spec is the resolved run the prefix executed (seed defaulted).
	Spec RunSpec
	// Occupancy is the CTA residency the configuration admitted.
	Occupancy occupancy.Result
	// Params are the timing parameters the prefix ran under.
	Params sm.Params
	// Cycle is the snapshot's capture cycle (>= the requested warm
	// cycle unless the grid completed first).
	Cycle int64

	src  *workloads.Source
	snap *snapshot.State
	// done records that the grid completed before the warm target: the
	// prefix consumed the whole run, so there is nothing left for a
	// param switch to affect.
	done bool
}

// Warm runs spec to the target cycle under r.Params and captures the
// state. A warmCycles at or past the grid's completion is not an error:
// the snapshot then holds a finished grid and every Resume returns the
// completed run. Infeasible configurations fail with *FitError, like
// Run.
func (r *Runner) Warm(ctx context.Context, spec RunSpec, warmCycles int64) (*Warm, error) {
	if len(spec.Streams) > 0 {
		return nil, fmt.Errorf("core: multi-tenant streams do not support snapshot/fork (streams are prefix-defining)")
	}
	spec, occ, src, err := r.prepare(spec)
	if err != nil {
		return nil, err
	}
	machine, err := sm.NewSM(sm.Spec{
		Config:       spec.Config,
		Params:       r.Params,
		Source:       src,
		ResidentCTAs: occ.CTAs,
	})
	if err != nil {
		return nil, fmt.Errorf("core: warm %s under %v: %w", spec.Kernel.Name, spec.Config, err)
	}
	if err := machine.RunToContext(ctx, warmCycles); err != nil {
		return nil, fmt.Errorf("core: warm %s under %v: %w", spec.Kernel.Name, spec.Config, err)
	}
	snap, err := machine.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("core: warm %s: %w", spec.Kernel.Name, err)
	}
	return &Warm{
		Spec:      spec,
		Occupancy: occ,
		Params:    r.Params,
		Cycle:     machine.Cycle(),
		src:       src,
		snap:      snap,
		done:      machine.Done(),
	}, nil
}

// Resume forks the warmed state under params — which may diverge from
// the warm prefix's on any non-prefix-defining field (op latencies,
// DeschedulePast, MaxMSHRs, DRAM configuration, write policy; see
// sm.Fork) — and runs it to completion. dst supplies the energy
// calibration for the Result (its Params are not consulted for timing),
// so sweep points can share one Runner and its cached baselines.
//
// The semantics are "switch parameters at the warm cycle": Resume with
// divergent params is bit-identical to ResumeExact with the same
// params, which internal/simtest pins.
func (w *Warm) Resume(ctx context.Context, dst *Runner, params sm.Params) (*Result, error) {
	machine, err := sm.Fork(sm.Spec{
		Config:       w.Spec.Config,
		Params:       params,
		Source:       w.src,
		ResidentCTAs: w.Occupancy.CTAs,
	}, w.snap)
	if err != nil {
		return nil, fmt.Errorf("core: resume %s: %w", w.Spec.Kernel.Name, err)
	}
	counters, err := machine.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: resume %s under %v: %w", w.Spec.Kernel.Name, w.Spec.Config, err)
	}
	return dst.finishResult(w.Spec, w.Occupancy, counters)
}

// ResumeExact is the fresh-run comparator for Resume: a new SM runs the
// prefix from cycle 0 under the warm parameters, switches to params in
// place at the warm cycle (sm.SetParams), and continues to completion —
// no snapshot or fork involved. The differential-equivalence harness
// asserts Resume ≡ ResumeExact; benchmarks use the pair to measure the
// fork speedup on identical work.
func (w *Warm) ResumeExact(ctx context.Context, dst *Runner, params sm.Params) (*Result, error) {
	machine, err := sm.NewSM(sm.Spec{
		Config:       w.Spec.Config,
		Params:       w.Params,
		Source:       w.src,
		ResidentCTAs: w.Occupancy.CTAs,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %s under %v: %w", w.Spec.Kernel.Name, w.Spec.Config, err)
	}
	if err := machine.RunToContext(ctx, w.Cycle); err != nil {
		return nil, fmt.Errorf("core: %s under %v: %w", w.Spec.Kernel.Name, w.Spec.Config, err)
	}
	// A prefix that consumed the whole run leaves nothing for the param
	// switch to affect; skipping it avoids a switch point that the
	// cycle-targeted replay cannot pin to the same step.
	if !w.done {
		if err := machine.SetParams(params); err != nil {
			return nil, fmt.Errorf("core: %s: %w", w.Spec.Kernel.Name, err)
		}
	}
	counters, err := machine.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: %s under %v: %w", w.Spec.Kernel.Name, w.Spec.Config, err)
	}
	return dst.finishResult(w.Spec, w.Occupancy, counters)
}

// Snapshot exposes the frozen state for callers that fork at the sm
// layer (tests, the simulation service). Treat it as read-only.
func (w *Warm) Snapshot() *snapshot.State { return w.snap }

// Source exposes the trace source the prefix ran from, for sm-layer
// forks.
func (w *Warm) Source() *workloads.Source { return w.src }
