package core

import (
	"errors"
	"fmt"

	"repro/internal/config"
	"repro/internal/occupancy"
)

// ErrKernelNil reports a RunSpec with no kernel. Test with errors.Is.
var ErrKernelNil = errors.New("core: RunSpec.Kernel is nil")

// FitError reports that a kernel cannot achieve residency of even one
// CTA under a configuration. Retrieve it with errors.As to read which
// resource was the limiter; IsInfeasible covers the common
// "skip this point" check.
type FitError struct {
	// Kernel is the workload's name.
	Kernel string
	// Config is the configuration the kernel did not fit.
	Config config.MemConfig
	// Limiter names the resource that bounded residency below one CTA.
	Limiter occupancy.Limiter
}

// Error describes the failure.
func (e *FitError) Error() string {
	return fmt.Sprintf("core: %s does not fit %v (limiter %v)", e.Kernel, e.Config, e.Limiter)
}

// Is makes errors.Is(err, config.ErrDoesNotFit) match run-level fit
// failures too, so callers need one check for both allocation-time
// (config.Allocate) and run-time (core.Run) infeasibility.
func (e *FitError) Is(target error) bool { return target == config.ErrDoesNotFit }

// IsInfeasible reports whether err means a kernel/configuration pair
// cannot run at all — a core.FitError from Run or a does-not-fit
// failure from config.Allocate — as opposed to a simulation failure.
// Sweep drivers skip infeasible points and propagate everything else.
func IsInfeasible(err error) bool {
	return errors.Is(err, config.ErrDoesNotFit)
}
