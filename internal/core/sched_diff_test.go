package core

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/workloads"
)

// TestSchedulerDifferential runs every registry workload under both
// scheduling policies and checks the policy swap is behavior-preserving
// where it must be and performance-ordered where the paper's design
// argument predicts:
//
//   - Both policies execute exactly the same work (instruction, thread,
//     and CTA counts are policy-invariant — only issue order may move).
//   - On the register-limited group, greedy-then-oldest never has lower
//     IPC than two-level round-robin. Those kernels are dominated by
//     long per-warp dependence chains; GTO's greedy pass drains a
//     chain's short (below the descheduling threshold) waits back to
//     back instead of paying a round-robin lap between links, which is
//     the classic GTO-beats-RR result from the scheduling literature.
//     The runs are deterministic, so this ordering is a stable pin, not
//     a flaky benchmark race.
func TestSchedulerDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full two-policy sweep skipped in -short mode")
	}
	twoLevel := NewRunner()
	gto := NewRunner()
	gto.Params.Scheduler = sched.GTO

	for _, k := range workloads.All() {
		resT, err := twoLevel.Baseline(k)
		if err != nil {
			t.Errorf("%s (twolevel): %v", k.Name, err)
			continue
		}
		resG, err := gto.Baseline(k)
		if err != nil {
			t.Errorf("%s (gto): %v", k.Name, err)
			continue
		}
		cT, cG := resT.Counters, resG.Counters
		t.Logf("%-18s %-16s twolevel ipc=%.4f gto ipc=%.4f (cycles %d vs %d)",
			k.Name, k.Category, cT.IPC(), cG.IPC(), cT.Cycles, cG.Cycles)

		if cT.WarpInsts != cG.WarpInsts || cT.ThreadsRun != cG.ThreadsRun ||
			cT.CTAsRetired != cG.CTAsRetired {
			t.Errorf("%s: schedulers did different work: insts %d vs %d, threads %d vs %d, CTAs %d vs %d",
				k.Name, cT.WarpInsts, cG.WarpInsts, cT.ThreadsRun, cG.ThreadsRun,
				cT.CTAsRetired, cG.CTAsRetired)
		}
		if k.Category == workloads.RegisterLimited && cG.IPC() < cT.IPC() {
			t.Errorf("%s: GTO IPC %.4f below two-level %.4f on a register-limited kernel",
				k.Name, cG.IPC(), cT.IPC())
		}
	}
}
