package core

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/probe"
	"repro/internal/stats"
)

// additiveCounters lists every additive stats.Counters field: the
// categories whose per-stream values must sum exactly to the joint
// run's aggregate. Cycles and the residency high-water marks are
// deliberately absent (a stream's Cycles is its own finish time, and
// residency is shared).
var additiveCounters = []struct {
	name string
	get  func(*stats.Counters) int64
}{
	{"WarpInsts", func(c *stats.Counters) int64 { return c.WarpInsts }},
	{"SpillInsts", func(c *stats.Counters) int64 { return c.SpillInsts }},
	{"ThreadInsts", func(c *stats.Counters) int64 { return c.ThreadInsts }},
	{"ConflictCycles", func(c *stats.Counters) int64 { return c.ConflictCycles }},
	{"ArbitrationConflicts", func(c *stats.Counters) int64 { return c.ArbitrationConflicts }},
	{"MRFReads", func(c *stats.Counters) int64 { return c.MRFReads }},
	{"MRFWrites", func(c *stats.Counters) int64 { return c.MRFWrites }},
	{"ORFReads", func(c *stats.Counters) int64 { return c.ORFReads }},
	{"ORFWrites", func(c *stats.Counters) int64 { return c.ORFWrites }},
	{"LRFReads", func(c *stats.Counters) int64 { return c.LRFReads }},
	{"LRFWrites", func(c *stats.Counters) int64 { return c.LRFWrites }},
	{"SharedReads", func(c *stats.Counters) int64 { return c.SharedReads }},
	{"SharedWrites", func(c *stats.Counters) int64 { return c.SharedWrites }},
	{"CacheProbes", func(c *stats.Counters) int64 { return c.CacheProbes }},
	{"CacheHits", func(c *stats.Counters) int64 { return c.CacheHits }},
	{"CacheMisses", func(c *stats.Counters) int64 { return c.CacheMisses }},
	{"CacheDataReads", func(c *stats.Counters) int64 { return c.CacheDataReads }},
	{"CacheDataWrites", func(c *stats.Counters) int64 { return c.CacheDataWrites }},
	{"DRAMReadBytes", func(c *stats.Counters) int64 { return c.DRAMReadBytes }},
	{"DRAMWriteBytes", func(c *stats.Counters) int64 { return c.DRAMWriteBytes }},
	{"CTAsRetired", func(c *stats.Counters) int64 { return c.CTAsRetired }},
	{"ThreadsRun", func(c *stats.Counters) int64 { return c.ThreadsRun }},
}

// TestStreamCounterConservation pins the attribution invariant of the
// multi-tenant model: for every additive counter category and every
// conflict-histogram bucket, the per-stream values sum exactly to the
// aggregate — no event is dropped or double-counted — and the slowest
// stream's finish time is the run's cycle count.
func TestStreamCounterConservation(t *testing.T) {
	r := NewRunner()
	res, err := r.Run(RunSpec{
		Config: config.Baseline(),
		Streams: []StreamSpec{
			{Kernel: mustKernel(t, "needle")},
			{Kernel: mustKernel(t, "matrixmul")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) != 2 {
		t.Fatalf("got %d stream results, want 2", len(res.Streams))
	}
	for _, f := range additiveCounters {
		var sum int64
		for _, st := range res.Streams {
			c := st.Counters
			sum += f.get(&c)
		}
		if want := f.get(res.Counters); sum != want {
			t.Errorf("%s: per-stream sum %d != aggregate %d", f.name, sum, want)
		}
	}
	for b := 0; b < stats.ConflictBuckets; b++ {
		var sum int64
		for _, st := range res.Streams {
			sum += st.Counters.ConflictHist[b]
		}
		if want := res.Counters.ConflictHist[b]; sum != want {
			t.Errorf("ConflictHist[%d]: per-stream sum %d != aggregate %d", b, sum, want)
		}
	}
	var slowest int64
	for i, st := range res.Streams {
		if st.Counters.Cycles <= 0 || st.Counters.Cycles > res.Counters.Cycles {
			t.Errorf("stream %d cycles %d outside (0, %d]", i, st.Counters.Cycles, res.Counters.Cycles)
		}
		if st.Counters.Cycles > slowest {
			slowest = st.Counters.Cycles
		}
	}
	if slowest != res.Counters.Cycles {
		t.Errorf("slowest stream finished at %d, aggregate cycles %d", slowest, res.Counters.Cycles)
	}
}

// TestStreamStallConservation runs a mix with the probe attached and
// checks the issue-slot ledger per stream: every issued slot and every
// stall category sums across streams to the aggregate tallies, so the
// per-stream stall table partitions the same 100% the single-kernel
// table does.
func TestStreamStallConservation(t *testing.T) {
	r := NewRunner()
	p := probe.New(0, nil)
	res, err := r.Run(RunSpec{
		Config: config.Baseline(),
		Streams: []StreamSpec{
			{Kernel: mustKernel(t, "vectoradd")},
			{Kernel: mustKernel(t, "dwthaar1d")},
		},
	}, WithProbe(p))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Cycles == 0 {
		t.Fatal("empty run")
	}
	if got := p.NumStreams(); got != 2 {
		t.Fatalf("probe saw %d streams, want 2", got)
	}
	var issued int64
	var stalls [probe.NumStallReasons]int64
	for i := 0; i < p.NumStreams(); i++ {
		issued += p.StreamIssued(i)
		ss := p.StreamStalls(i)
		for c := range ss {
			stalls[c] += ss[c]
		}
	}
	if issued != p.Issued() {
		t.Errorf("per-stream issued sum %d != aggregate %d", issued, p.Issued())
	}
	agg := p.StallSlots()
	for c := range agg {
		if stalls[c] != agg[c] {
			t.Errorf("stall %v: per-stream sum %d != aggregate %d",
				probe.StallReason(c), stalls[c], agg[c])
		}
	}
}

// TestSingleStreamMatchesLegacy pins that a one-entry streams list is
// the legacy single-kernel run: identical counters, occupancy, and
// energy, cycle for cycle — the property that lets every existing
// golden stay byte-identical under the multi-tenant machinery.
func TestSingleStreamMatchesLegacy(t *testing.T) {
	r := NewRunner()
	k := mustKernel(t, "sto")
	legacy, err := r.Run(RunSpec{Config: config.Baseline(), Kernel: k})
	if err != nil {
		t.Fatal(err)
	}
	asStream, err := r.Run(RunSpec{Config: config.Baseline(), Streams: []StreamSpec{{Kernel: k}}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Counters, asStream.Counters) {
		t.Errorf("counters diverge:\nlegacy   %+v\nstreamed %+v", legacy.Counters, asStream.Counters)
	}
	if !reflect.DeepEqual(legacy.Occupancy, asStream.Occupancy) {
		t.Errorf("occupancy diverges: legacy %+v streamed %+v", legacy.Occupancy, asStream.Occupancy)
	}
	if len(asStream.Streams) != 1 || asStream.Streams[0].Kernel != k.Name {
		t.Fatalf("streamed run carries %d stream results", len(asStream.Streams))
	}
	if !reflect.DeepEqual(legacy.Counters, &asStream.Streams[0].Counters) {
		t.Errorf("the single stream's attributed counters differ from the aggregate")
	}
}
