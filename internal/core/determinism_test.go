package core

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/workloads"
)

// TestRunTwiceIdenticalCounters is the determinism property the parallel
// experiment engine rests on: simulating the same (kernel, config) twice
// from fresh state must produce bit-identical counters, occupancy, and
// energy. Any hidden global state in trace generation, the SM model, or
// the memory system would show up here before it can become a race.
func TestRunTwiceIdenticalCounters(t *testing.T) {
	// A spread of memory behaviours: streaming, divergent gather,
	// shared-memory wavefront, and a spilling configuration.
	specs := []RunSpec{
		{Kernel: mustKernel(t, "vectoradd"), Config: config.Baseline()},
		{Kernel: mustKernel(t, "bfs"), Config: config.Baseline()},
		{Kernel: mustKernel(t, "needle"), Config: config.Baseline()},
		{Kernel: mustKernel(t, "pcr"), Config: config.Baseline(), RegsPerThread: 18},
	}
	for _, spec := range specs {
		fresh := func() *Result {
			res, err := NewRunner().Run(spec)
			if err != nil {
				t.Fatalf("%s: %v", spec.Kernel.Name, err)
			}
			return res
		}
		a, b := fresh(), fresh()
		if !reflect.DeepEqual(a.Counters, b.Counters) {
			t.Errorf("%s: counters differ across fresh runs:\nfirst:  %+v\nsecond: %+v",
				spec.Kernel.Name, a.Counters, b.Counters)
		}
		if a.Occupancy != b.Occupancy {
			t.Errorf("%s: occupancy differs across fresh runs: %+v vs %+v",
				spec.Kernel.Name, a.Occupancy, b.Occupancy)
		}
		if a.Energy != b.Energy {
			t.Errorf("%s: energy differs across fresh runs: %+v vs %+v",
				spec.Kernel.Name, a.Energy, b.Energy)
		}
	}
}

func mustKernel(t *testing.T, name string) *workloads.Kernel {
	t.Helper()
	k, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return k
}
