package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workloads"
)

// TestRunSequenceRepartitions checks the Section 4.4 extension: a
// multi-kernel application in which each kernel gets its own partitioning
// beats any single fixed partitioning of the same capacity.
func TestRunSequenceRepartitions(t *testing.T) {
	// A register-hungry kernel followed by a shared-hungry one followed
	// by a cache-hungry one: no fixed split suits all three.
	var kernels []*workloads.Kernel
	for _, name := range []string{"dgemm", "needle", "bfs"} {
		k, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		kernels = append(kernels, k)
	}
	r := NewRunner()
	flexible, err := r.RunSequence(kernels, config.BaselineTotalBytes)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := r.RunSequenceFixed(kernels, config.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if len(flexible.Steps) != 3 || len(fixed.Steps) != 3 {
		t.Fatalf("steps: %d vs %d", len(flexible.Steps), len(fixed.Steps))
	}
	t.Logf("repartitioned: %d cycles %.3e J; fixed: %d cycles %.3e J",
		flexible.Cycles, flexible.Energy, fixed.Cycles, fixed.Energy)
	if flexible.Cycles >= fixed.Cycles {
		t.Errorf("per-kernel repartitioning (%d cycles) should beat the fixed split (%d)",
			flexible.Cycles, fixed.Cycles)
	}
	// Each step must use a different partitioning (that is the point).
	a, b := flexible.Steps[0].Config, flexible.Steps[1].Config
	if a.RFBytes == b.RFBytes && a.SharedBytes == b.SharedBytes {
		t.Error("dgemm and needle received identical partitionings")
	}
}

// TestAblateScatter checks the Section 4.2 ablation: the aggressive
// multi-bank-per-cluster design never loses, strictly reduces conflict
// serialization for scatter-heavy kernels, and the average gain is small
// (the paper: 0.5%), which justified shipping the simple design.
func TestAblateScatter(t *testing.T) {
	var kernels []*workloads.Kernel
	for _, name := range []string{"needle", "aes", "pcr", "vectoradd"} {
		k, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		kernels = append(kernels, k)
	}
	r := NewRunner()
	rows, err := r.AblateScatter(kernels)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, row := range rows {
		t.Logf("%-10s speedup=%.4f conflicts %d -> %d",
			row.Benchmark, row.Speedup, row.ConflictCyclesSimple, row.ConflictCyclesAggressive)
		if row.Speedup < 0.999 {
			t.Errorf("%s: aggressive design lost performance (%.4f)", row.Benchmark, row.Speedup)
		}
		if row.ConflictCyclesAggressive > row.ConflictCyclesSimple {
			t.Errorf("%s: aggressive design increased conflicts", row.Benchmark)
		}
		sum += row.Speedup
	}
	if avg := sum / float64(len(rows)); avg > 1.10 {
		t.Errorf("average aggressive-scatter gain %.3f is implausibly large (paper: 1.005)", avg)
	}
	// needle's diagonal scatter is the pattern the aggressive design
	// helps: its conflicts must drop.
	if rows[0].ConflictCyclesAggressive >= rows[0].ConflictCyclesSimple {
		t.Error("needle: aggressive design should reduce its diagonal-scatter conflicts")
	}
}

// TestPowerGating checks the Section 8 extension: for workloads whose
// working sets the baseline cache already captures, gating the surplus
// lowers energy without hurting performance; for cache-hungry workloads
// it costs performance.
func TestPowerGating(t *testing.T) {
	var kernels []*workloads.Kernel
	for _, name := range []string{"vectoradd", "nbody", "bfs"} {
		k, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		kernels = append(kernels, k)
	}
	r := NewRunner()
	rows, err := r.PowerGating(kernels)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]PowerGatingRow, len(rows))
	for _, row := range rows {
		byName[row.Benchmark] = row
		t.Logf("%-10s full perf/energy %.3f/%.3f gated %.3f/%.3f",
			row.Benchmark, row.FullPerf, row.FullEnergy, row.GatedPerf, row.GatedEnergy)
	}
	for _, name := range []string{"vectoradd", "nbody"} {
		row := byName[name]
		if row.GatedEnergy >= row.FullEnergy {
			t.Errorf("%s: gating surplus capacity should save energy (%.3f vs %.3f)",
				name, row.GatedEnergy, row.FullEnergy)
		}
		if row.GatedPerf < 0.97*row.FullPerf {
			t.Errorf("%s: gating should not cost meaningful performance (%.3f vs %.3f)",
				name, row.GatedPerf, row.FullPerf)
		}
	}
	if bfs := byName["bfs"]; bfs.GatedPerf > 0.97*bfs.FullPerf {
		t.Errorf("bfs wants the big cache: gating should cost performance (%.3f vs %.3f)",
			bfs.GatedPerf, bfs.FullPerf)
	}
}

// TestValidateMethodology reproduces the Section 5.1 claim: per-SM
// runtimes on a multi-SM chip with a shared, channel-interleaved DRAM
// system match the single-SM simulation with a private 1/N bandwidth
// share.
func TestValidateMethodology(t *testing.T) {
	if testing.Short() {
		t.Skip("chip validation skipped in -short mode")
	}
	var kernels []*workloads.Kernel
	for _, name := range []string{"vectoradd", "nbody", "pcr", "needle"} {
		k, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		kernels = append(kernels, k)
	}
	r := NewRunner()
	rows, err := r.ValidateMethodology(kernels, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, row := range rows {
		t.Logf("%-10s single=%d chip-mean=%.0f deviation=%.1f%%",
			row.Benchmark, row.SingleSMCycles, row.ChipMeanCycles, 100*row.Deviation)
		sum += row.Deviation
		// Kernels whose SMs all read a shared hot region can deviate
		// further (convoying + set-conflict sensitivity the single-SM
		// model cannot see) — see EXPERIMENTS.md.
		if row.Deviation > 0.35 {
			t.Errorf("%s: chip deviates %.1f%% from the single-SM methodology",
				row.Benchmark, 100*row.Deviation)
		}
	}
	if mean := sum / float64(len(rows)); mean > 0.15 {
		t.Errorf("mean methodology deviation %.1f%%, want under 15%%", 100*mean)
	}
}

// TestAblateWritePolicy checks the Section 4.3/4.4 ablation: the
// write-through design the paper chose owes no flush at repartitioning,
// while a write-back design leaves dirty state behind; for these
// write-once streaming workloads write-back buys little or nothing.
func TestAblateWritePolicy(t *testing.T) {
	var kernels []*workloads.Kernel
	for _, name := range []string{"vectoradd", "needle", "sto", "srad"} {
		k, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		kernels = append(kernels, k)
	}
	r := NewRunner()
	rows, err := r.AblateWritePolicy(kernels)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		t.Logf("%-10s perf=%.3f dram=%.3f dirtyFlush=%d lines",
			row.Benchmark, row.PerfRatio, row.DRAMRatio, row.DirtyFlushLines)
		if row.DirtyFlushLines == 0 {
			t.Errorf("%s: write-back run should leave dirty lines behind", row.Benchmark)
		}
		if row.PerfRatio > 1.3 {
			t.Errorf("%s: write-back cannot plausibly be %.2fx faster for write-once streams",
				row.Benchmark, row.PerfRatio)
		}
	}
	// The write-through design by construction never owes a flush.
	wt, err := r.Baseline(kernels[0])
	if err != nil {
		t.Fatal(err)
	}
	if wt.Counters.DirtyLinesEnd != 0 {
		t.Error("write-through run reports dirty lines")
	}
}

// TestAblateScheduler checks that the two-level scheduler's active-set
// size of 8 (the prior work's choice) performs within a few percent of a
// full flat scheduler: the active set restricts issue candidates, not
// residency, so 8 suffices once long-latency waiters are swapped out.
func TestAblateScheduler(t *testing.T) {
	var kernels []*workloads.Kernel
	for _, name := range []string{"vectoradd", "needle", "sgemv"} {
		k, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		kernels = append(kernels, k)
	}
	r := NewRunner()
	rows, err := r.AblateScheduler(kernels)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		c8 := row.CyclesByActive[8]
		c32 := row.CyclesByActive[32]
		t.Logf("%-10s active=4:%d 8:%d 16:%d 32:%d", row.Benchmark,
			row.CyclesByActive[4], c8, row.CyclesByActive[16], c32)
		if float64(c8) > 1.10*float64(c32) {
			t.Errorf("%s: 8 active warps loses %.1f%% to a flat scheduler — the two-level design should be near-free",
				row.Benchmark, 100*(float64(c8)/float64(c32)-1))
		}
	}
}
