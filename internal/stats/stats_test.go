package stats

import (
	"testing"
	"testing/quick"
)

func TestRecordConflictBuckets(t *testing.T) {
	var c Counters
	c.RecordConflict(1)
	c.RecordConflict(2)
	c.RecordConflict(3)
	c.RecordConflict(4)
	c.RecordConflict(5)
	c.RecordConflict(9)
	want := [ConflictBuckets]int64{1, 1, 1, 1, 2}
	if c.ConflictHist != want {
		t.Errorf("ConflictHist = %v, want %v", c.ConflictHist, want)
	}
	// Penalties: 0+1+2+3+4+8 = 18.
	if c.ConflictCycles != 18 {
		t.Errorf("ConflictCycles = %d, want 18", c.ConflictCycles)
	}
}

func TestRecordConflictClampsBelowOne(t *testing.T) {
	var c Counters
	c.RecordConflict(0)
	if c.ConflictHist[0] != 1 || c.ConflictCycles != 0 {
		t.Errorf("zero-access instruction should land in bucket 0 with no penalty: %v", c.ConflictHist)
	}
}

func TestConflictFractionsSumToOne(t *testing.T) {
	f := func(a, b, d, e, g uint8) bool {
		var c Counters
		c.ConflictHist = [ConflictBuckets]int64{int64(a), int64(b), int64(d), int64(e), int64(g)}
		total := int64(a) + int64(b) + int64(d) + int64(e) + int64(g)
		fr := c.ConflictFractions()
		sum := 0.0
		for _, v := range fr {
			sum += v
		}
		if total == 0 {
			return sum == 0
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDRAMAccessesRoundsUp(t *testing.T) {
	c := Counters{DRAMReadBytes: 33}
	if got := c.DRAMAccesses(); got != 2 {
		t.Errorf("DRAMAccesses() = %d, want 2", got)
	}
	c = Counters{DRAMReadBytes: 64, DRAMWriteBytes: 64}
	if got := c.DRAMAccesses(); got != 4 {
		t.Errorf("DRAMAccesses() = %d, want 4", got)
	}
}

func TestMRFAccessFraction(t *testing.T) {
	c := Counters{MRFReads: 2, MRFWrites: 2, ORFReads: 2, LRFReads: 2, LRFWrites: 2}
	if got := c.MRFAccessFraction(); got != 0.4 {
		t.Errorf("MRFAccessFraction() = %v, want 0.4", got)
	}
	var zero Counters
	if zero.MRFAccessFraction() != 0 {
		t.Error("empty counters should report 0")
	}
}

func TestCacheHitRateAndIPC(t *testing.T) {
	c := Counters{CacheProbes: 10, CacheHits: 7, Cycles: 100, WarpInsts: 50}
	if got := c.CacheHitRate(); got != 0.7 {
		t.Errorf("CacheHitRate() = %v", got)
	}
	if got := c.IPC(); got != 0.5 {
		t.Errorf("IPC() = %v", got)
	}
	var zero Counters
	if zero.CacheHitRate() != 0 || zero.IPC() != 0 {
		t.Error("zero counters should report 0 rates")
	}
}

func TestAddAccumulatesEverything(t *testing.T) {
	a := Counters{
		Cycles: 1, WarpInsts: 2, SpillInsts: 3, ThreadInsts: 4,
		ConflictCycles: 5, ArbitrationConflicts: 6,
		MRFReads: 7, MRFWrites: 8, ORFReads: 9, ORFWrites: 10,
		LRFReads: 11, LRFWrites: 12, SharedReads: 13, SharedWrites: 14,
		CacheProbes: 15, CacheHits: 16, CacheMisses: 17,
		CacheDataReads: 18, CacheDataWrites: 19,
		DRAMReadBytes: 20, DRAMWriteBytes: 21, CTAsRetired: 22, ThreadsRun: 23,
		MaxResidentThreads: 256,
	}
	a.ConflictHist = [ConflictBuckets]int64{1, 2, 3, 4, 5}
	b := a // copy
	b.MaxResidentThreads = 512
	a.Add(&b)
	if a.Cycles != 2 || a.WarpInsts != 4 || a.SpillInsts != 6 || a.ThreadInsts != 8 {
		t.Error("core counters not doubled")
	}
	if a.DRAMWriteBytes != 42 || a.ThreadsRun != 46 {
		t.Error("tail counters not doubled")
	}
	if a.ConflictHist != [ConflictBuckets]int64{2, 4, 6, 8, 10} {
		t.Errorf("ConflictHist = %v", a.ConflictHist)
	}
	if a.MaxResidentThreads != 512 {
		t.Errorf("MaxResidentThreads = %d, want max 512", a.MaxResidentThreads)
	}
}

func TestStringContainsHeadlines(t *testing.T) {
	c := Counters{Cycles: 10, WarpInsts: 5}
	s := c.String()
	if s == "" {
		t.Error("String() empty")
	}
}
