// Package stats collects the event counters produced by a simulation run.
//
// The counters feed three consumers: the performance report (cycles,
// instructions), the bank-conflict characterization of Table 5, and the
// energy model of internal/energy (per-structure access counts and DRAM
// bytes).
package stats

import (
	"fmt"

	"repro/internal/isa"
)

// ConflictBuckets is the number of buckets in the bank-conflict histogram:
// <=1, 2, 3, 4, >4 maximum accesses to a single bank per warp instruction
// (the Table 5 breakdown).
const ConflictBuckets = 5

// Counters accumulates all events of one simulation run.
type Counters struct {
	// Cycles is the total execution time of the run in SM cycles.
	Cycles int64
	// WarpInsts is the number of warp instructions issued, including
	// spill and fill instructions.
	WarpInsts int64
	// SpillInsts is the number of warp instructions that were inserted
	// by the register allocator (spill stores + fill loads).
	SpillInsts int64
	// ThreadInsts is the number of thread instructions (warp instructions
	// weighted by active threads).
	ThreadInsts int64

	// ConflictHist[i] counts warp instructions whose most-contended
	// memory bank received i+1 accesses; the last bucket counts >4.
	ConflictHist [ConflictBuckets]int64
	// ConflictCycles is the total issue-slot cycles lost to bank
	// serialization (sum over instructions of max-per-bank accesses - 1).
	ConflictCycles int64
	// ArbitrationConflicts counts unified-design conflicts in which a
	// register operand and a shmem/cache access contended for one bank.
	ArbitrationConflicts int64

	// Register file hierarchy accesses (per warp instruction operand,
	// i.e. one access serves all active threads of a 4-lane cluster bank;
	// energy accounting scales these by the bank count touched).
	MRFReads, MRFWrites int64
	ORFReads, ORFWrites int64
	LRFReads, LRFWrites int64

	// Shared memory accesses, counted per touched bank.
	SharedReads, SharedWrites int64

	// Cache events. Probes are tag lookups (one per distinct line touched
	// by a warp instruction); data accesses are counted per touched bank.
	CacheProbes     int64
	CacheHits       int64
	CacheMisses     int64
	CacheDataReads  int64
	CacheDataWrites int64

	// DRAM traffic in bytes.
	DRAMReadBytes  int64
	DRAMWriteBytes int64

	// CTAsRetired counts cooperative thread arrays run to completion.
	CTAsRetired int64
	// ThreadsRun counts threads launched.
	ThreadsRun int64
	// MaxResidentThreads is the high-water mark of concurrently resident
	// threads on the SM.
	MaxResidentThreads int
	// DirtyLinesEnd is the number of modified cache lines resident when
	// the run finished: the flush a write-back design would owe at the
	// next repartitioning. Always zero for the write-through design.
	DirtyLinesEnd int
}

// RecordConflict files a warp instruction whose most-contended bank saw
// maxAccesses accesses and charges the serialization penalty.
func (c *Counters) RecordConflict(maxAccesses int) {
	if maxAccesses < 1 {
		maxAccesses = 1
	}
	bucket := maxAccesses - 1
	if bucket >= ConflictBuckets {
		bucket = ConflictBuckets - 1
	}
	c.ConflictHist[bucket]++
	c.ConflictCycles += int64(maxAccesses - 1)
}

// RecordRegAccesses files one warp instruction's register hierarchy
// events (per-space operand reads and writes) for the energy model.
func (c *Counters) RecordRegAccesses(wi *isa.WarpInst) {
	for _, src := range wi.Srcs {
		switch {
		case !src.Valid():
		case src.Space == isa.SpaceMRF:
			c.MRFReads++
		case src.Space == isa.SpaceORF:
			c.ORFReads++
		case src.Space == isa.SpaceLRF:
			c.LRFReads++
		}
	}
	if wi.Dst.Valid() {
		switch wi.Dst.Space {
		case isa.SpaceMRF:
			c.MRFWrites++
		case isa.SpaceORF:
			c.ORFWrites++
		case isa.SpaceLRF:
			c.LRFWrites++
		}
		if wi.DstMRFWrite && wi.Dst.Space != isa.SpaceMRF {
			c.MRFWrites++
		}
	}
}

// DRAMBytes returns total DRAM traffic in bytes.
func (c *Counters) DRAMBytes() int64 { return c.DRAMReadBytes + c.DRAMWriteBytes }

// DRAMAccesses returns DRAM traffic expressed in 32-byte minimum-fetch
// transactions, the unit the paper's "DRAM accesses" metric uses.
func (c *Counters) DRAMAccesses() int64 { return (c.DRAMBytes() + 31) / 32 }

// MRFAccessFraction returns the fraction of register operand accesses
// (reads and writes) served by the MRF rather than the ORF/LRF. The
// two-level hierarchy of the paper reduces this to roughly 40%.
func (c *Counters) MRFAccessFraction() float64 {
	mrf := c.MRFReads + c.MRFWrites
	all := mrf + c.ORFReads + c.ORFWrites + c.LRFReads + c.LRFWrites
	if all == 0 {
		return 0
	}
	return float64(mrf) / float64(all)
}

// CacheHitRate returns the fraction of cache probes that hit.
func (c *Counters) CacheHitRate() float64 {
	if c.CacheProbes == 0 {
		return 0
	}
	return float64(c.CacheHits) / float64(c.CacheProbes)
}

// IPC returns warp instructions per cycle.
func (c *Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.WarpInsts) / float64(c.Cycles)
}

// ThreadIPC returns thread instructions per cycle (warp instructions
// weighted by their active threads; peak is the SM's 32 lanes). Unlike
// normalized performance figures, this is an absolute metric.
func (c *Counters) ThreadIPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.ThreadInsts) / float64(c.Cycles)
}

// ConflictFractions returns the Table 5 row: the fraction of warp
// instructions in each max-accesses-per-bank bucket.
func (c *Counters) ConflictFractions() [ConflictBuckets]float64 {
	var out [ConflictBuckets]float64
	total := int64(0)
	for _, v := range c.ConflictHist {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range c.ConflictHist {
		out[i] = float64(v) / float64(total)
	}
	return out
}

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	c.Cycles += other.Cycles
	c.WarpInsts += other.WarpInsts
	c.SpillInsts += other.SpillInsts
	c.ThreadInsts += other.ThreadInsts
	for i := range c.ConflictHist {
		c.ConflictHist[i] += other.ConflictHist[i]
	}
	c.ConflictCycles += other.ConflictCycles
	c.ArbitrationConflicts += other.ArbitrationConflicts
	c.MRFReads += other.MRFReads
	c.MRFWrites += other.MRFWrites
	c.ORFReads += other.ORFReads
	c.ORFWrites += other.ORFWrites
	c.LRFReads += other.LRFReads
	c.LRFWrites += other.LRFWrites
	c.SharedReads += other.SharedReads
	c.SharedWrites += other.SharedWrites
	c.CacheProbes += other.CacheProbes
	c.CacheHits += other.CacheHits
	c.CacheMisses += other.CacheMisses
	c.CacheDataReads += other.CacheDataReads
	c.CacheDataWrites += other.CacheDataWrites
	c.DRAMReadBytes += other.DRAMReadBytes
	c.DRAMWriteBytes += other.DRAMWriteBytes
	c.CTAsRetired += other.CTAsRetired
	c.ThreadsRun += other.ThreadsRun
	if other.MaxResidentThreads > c.MaxResidentThreads {
		c.MaxResidentThreads = other.MaxResidentThreads
	}
	c.DirtyLinesEnd += other.DirtyLinesEnd
}

// String summarizes the headline counters.
func (c *Counters) String() string {
	return fmt.Sprintf("cycles=%d insts=%d ipc=%.3f cacheHit=%.3f dramBytes=%d",
		c.Cycles, c.WarpInsts, c.IPC(), c.CacheHitRate(), c.DRAMBytes())
}
