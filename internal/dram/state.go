package dram

// State is a frozen image of the channel: bus occupancy, traffic
// tallies, and the open-row tracker. Every field is a scalar, so the
// value copy Snapshot returns is already deep.
type State struct {
	BusFreeAt  int64
	ReadBytes  int64
	WriteBytes int64
	Reads      int64
	Writes     int64
	StallCycle int64
	OpenRow    uint32
	HasRow     bool
	RowHits    int64
	RowMisses  int64
}

// Snapshot captures the channel state.
func (d *DRAM) Snapshot() State {
	return State{
		BusFreeAt:  d.busFreeAt,
		ReadBytes:  d.readBytes,
		WriteBytes: d.writeBytes,
		Reads:      d.reads,
		Writes:     d.writes,
		StallCycle: d.stallCycle,
		OpenRow:    d.openRow,
		HasRow:     d.hasRow,
		RowHits:    d.rowHits,
		RowMisses:  d.rowMisses,
	}
}

// Restore overwrites the channel state with a previously captured State.
// The configuration is untouched: a fork built with a divergent Config
// resumes the warm prefix's bus and row state under its own timing.
func (d *DRAM) Restore(st State) {
	d.busFreeAt = st.BusFreeAt
	d.readBytes = st.ReadBytes
	d.writeBytes = st.WriteBytes
	d.reads = st.Reads
	d.writes = st.Writes
	d.stallCycle = st.StallCycle
	d.openRow = st.OpenRow
	d.hasRow = st.HasRow
	d.rowHits = st.RowHits
	d.rowMisses = st.RowMisses
}

// SetConfig replaces the channel configuration mid-run (the snapshot
// machinery's param-switch-at-K semantics), normalizing zero fields the
// same way New does. Bus and row state carry over.
func (d *DRAM) SetConfig(cfg Config) {
	d.cfg = cfg.Normalized()
}
