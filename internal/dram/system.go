package dram

import (
	"fmt"

	"repro/internal/cache"
)

// System is the chip-level DRAM: several independent channels with
// addresses interleaved between them at a fixed granularity, shared by
// every SM on the chip (Figure 1a of the paper: 6 channels, 256 B/cycle
// aggregate).
//
// A System is not safe for concurrent use; the chip simulator serializes
// accesses in global time order.
type System struct {
	channels    []*DRAM
	interleave  uint32
	readBytes   int64
	writeBytes  int64
	outOfOrder  int64 // requests that arrived with now < a channel's last now
	lastIssueAt int64

	// Memory-side merge of concurrent same-line reads (the row-buffer /
	// L2-absorption effect): when several SMs fetch the same 128-byte
	// line while a fetch is in flight, they share its transfer instead
	// of serializing. Without this, lockstep kernels reading shared data
	// convoy artificially on the channels.
	inflight map[uint32]int64 // line -> data-ready cycle
	merged   int64

	l2        *cache.Cache
	l2Latency int64
	l2Hits    int64
}

// SystemConfig parameterizes the chip DRAM.
type SystemConfig struct {
	// Channels is the channel count (6 in the paper).
	Channels int
	// BytesPerCyclePerChannel is each channel's bandwidth. The paper's
	// chip provides 256 B/cycle over 6 channels (~42.7 B/cycle each).
	BytesPerCyclePerChannel int
	// LatencyCycles is the access latency (400).
	LatencyCycles int64
	// InterleaveBytes is the address-interleave granularity between
	// channels (256 B, two cache lines).
	InterleaveBytes uint32
	// L2Bytes adds a shared chip-level L2 cache in front of the channels
	// (0 = none, the paper's memory system). The paper's target GPU
	// predates Fermi's L2; the option exists to quantify how much an L2
	// absorbs cross-SM sharing (see the chip validation experiment).
	L2Bytes int
	// L2LatencyCycles is the L2 hit latency (default 120).
	L2LatencyCycles int64
}

// DefaultSystemConfig returns a chip-level memory system scaled to nSMs
// streaming multiprocessors with exactly 8 B/cycle of aggregate bandwidth
// per SM — the share the paper's single-SM methodology assumes. The
// channel count is min(nSMs, 8) so the per-channel rate stays integral
// (the paper's 6 channels deliver a non-integral 42.67 B/cycle each; we
// keep the aggregate faithful instead).
func DefaultSystemConfig(nSMs int) SystemConfig {
	if nSMs < 1 {
		nSMs = 1
	}
	channels := nSMs
	if channels > 8 {
		channels = 8
	}
	for nSMs%channels != 0 {
		channels--
	}
	return SystemConfig{
		Channels:                channels,
		BytesPerCyclePerChannel: 8 * nSMs / channels,
		LatencyCycles:           400,
		InterleaveBytes:         256,
	}
}

// NewSystem builds the channel array.
func NewSystem(cfg SystemConfig) *System {
	if cfg.Channels < 1 {
		cfg.Channels = 1
	}
	if cfg.InterleaveBytes == 0 {
		cfg.InterleaveBytes = 256
	}
	s := &System{interleave: cfg.InterleaveBytes, inflight: make(map[uint32]int64)}
	if cfg.L2Bytes > 0 {
		s.l2 = cache.New(cfg.L2Bytes)
		s.l2Latency = cfg.L2LatencyCycles
		if s.l2Latency <= 0 {
			s.l2Latency = 120
		}
	}
	for i := 0; i < cfg.Channels; i++ {
		s.channels = append(s.channels, New(Config{
			BytesPerCycle: cfg.BytesPerCyclePerChannel,
			LatencyCycles: cfg.LatencyCycles,
		}))
	}
	return s
}

// channel routes an address to its channel. The granule index is hashed
// (xor-folded) before the modulo so that power-of-two strides do not
// alias onto a subset of the six channels — the same reason real memory
// controllers hash their channel-select bits.
func (s *System) channel(addr uint32) *DRAM {
	g := addr / s.interleave
	g ^= g >> 7
	g ^= g >> 13
	return s.channels[int(g)%len(s.channels)]
}

// Read schedules a read on the address's channel, merging with an
// in-flight fetch of the same 128-byte line if one exists.
func (s *System) Read(now int64, addr uint32, bytes int) int64 {
	if now < s.lastIssueAt {
		s.outOfOrder++
	} else {
		s.lastIssueAt = now
	}
	line := addr / 128
	if ready, ok := s.inflight[line]; ok {
		if ready > now {
			s.merged++
			return ready
		}
		delete(s.inflight, line)
	}
	if s.l2 != nil && s.l2.Read(line) {
		s.l2Hits++
		return now + s.l2Latency
	}
	s.readBytes += int64(bytes)
	ready := s.channel(addr).Read(now, addr, bytes)
	if len(s.inflight) > 4096 {
		// Prune stale entries; the map only needs to cover in-flight
		// fetches (a few hundred cycles of traffic).
		for l, r := range s.inflight {
			if r <= now {
				delete(s.inflight, l)
			}
		}
	}
	s.inflight[line] = ready
	return ready
}

// Write posts a write on the address's channel.
func (s *System) Write(now int64, addr uint32, bytes int) {
	if now < s.lastIssueAt {
		s.outOfOrder++
	} else {
		s.lastIssueAt = now
	}
	s.writeBytes += int64(bytes)
	s.channel(addr).Write(now, addr, bytes)
}

// ReadBytes returns cumulative bytes read across channels.
func (s *System) ReadBytes() int64 { return s.readBytes }

// WriteBytes returns cumulative bytes written across channels.
func (s *System) WriteBytes() int64 { return s.writeBytes }

// Channels returns the channel count.
func (s *System) Channels() int { return len(s.channels) }

// Merged returns how many reads were served by an in-flight fetch of the
// same line issued by another SM.
func (s *System) Merged() int64 { return s.merged }

// L2Hits returns reads served by the optional chip-level L2.
func (s *System) L2Hits() int64 { return s.l2Hits }

// OutOfOrder returns how many requests arrived below the high-water
// timestamp — a diagnostic for the chip simulator's global-time ordering
// (small values mean the conservative interleave is holding).
func (s *System) OutOfOrder() int64 { return s.outOfOrder }

// String summarizes the system.
func (s *System) String() string {
	return fmt.Sprintf("dram system: %d channels, %dB interleave, r=%dB w=%dB",
		len(s.channels), s.interleave, s.readBytes, s.writeBytes)
}
