package dram

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultSystemConfigPreservesPerSMShare(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6, 8, 16, 32} {
		cfg := DefaultSystemConfig(n)
		if got := cfg.Channels * cfg.BytesPerCyclePerChannel; got != 8*n {
			t.Errorf("nSMs=%d: aggregate bandwidth %d, want %d", n, got, 8*n)
		}
		if cfg.Channels < 1 || cfg.Channels > 8 {
			t.Errorf("nSMs=%d: %d channels", n, cfg.Channels)
		}
	}
	if cfg := DefaultSystemConfig(0); cfg.Channels*cfg.BytesPerCyclePerChannel != 8 {
		t.Error("zero SMs should clamp to one")
	}
}

func TestSystemInFlightMerge(t *testing.T) {
	s := NewSystem(SystemConfig{Channels: 2, BytesPerCyclePerChannel: 8, LatencyCycles: 400})
	first := s.Read(0, 64, 32)
	// Another reader of the same 128-byte line while the fetch is in
	// flight shares its completion; no extra bytes move.
	second := s.Read(5, 0, 32)
	if second != first {
		t.Errorf("merged read completes at %d, want %d", second, first)
	}
	if s.Merged() != 1 {
		t.Errorf("Merged() = %d, want 1", s.Merged())
	}
	if s.ReadBytes() != 32 {
		t.Errorf("ReadBytes() = %d, want 32 (one fetch)", s.ReadBytes())
	}
	// After the fetch lands, a new read refetches.
	third := s.Read(first+10, 0, 32)
	if third <= first {
		t.Error("post-completion read should schedule a fresh fetch")
	}
	if s.ReadBytes() != 64 {
		t.Errorf("ReadBytes() = %d, want 64", s.ReadBytes())
	}
}

func TestSystemL2(t *testing.T) {
	s := NewSystem(SystemConfig{Channels: 2, BytesPerCyclePerChannel: 8, LatencyCycles: 400, L2Bytes: 64 << 10})
	miss := s.Read(0, 0, 32)
	if miss < 400 {
		t.Errorf("L2 miss too fast: %d", miss)
	}
	// Wait for the in-flight entry to expire so the L2 path is probed.
	hit := s.Read(miss+1, 0, 32)
	if hit != miss+1+120 {
		t.Errorf("L2 hit completion = %d, want %d (120-cycle default)", hit, miss+1+120)
	}
	if s.L2Hits() != 1 {
		t.Errorf("L2Hits() = %d, want 1", s.L2Hits())
	}
	if s.ReadBytes() != 32 {
		t.Errorf("ReadBytes() = %d, want 32 (hit avoids DRAM)", s.ReadBytes())
	}
}

func TestSystemWriteRouting(t *testing.T) {
	s := NewSystem(SystemConfig{Channels: 4, BytesPerCyclePerChannel: 8, LatencyCycles: 100})
	s.Write(0, 0, 64)
	s.Write(0, 512, 64)
	if s.WriteBytes() != 128 {
		t.Errorf("WriteBytes() = %d", s.WriteBytes())
	}
	if !strings.Contains(s.String(), "channels") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSystemOutOfOrderDiagnostic(t *testing.T) {
	s := NewSystem(SystemConfig{Channels: 1, BytesPerCyclePerChannel: 8, LatencyCycles: 100})
	s.Read(100, 0, 8)
	s.Read(50, 4096, 8) // goes back in time
	if s.OutOfOrder() != 1 {
		t.Errorf("OutOfOrder() = %d, want 1", s.OutOfOrder())
	}
}

// TestChannelHashCoversAllChannels property-checks that strided address
// patterns reach every channel (the hash defeats power-of-two aliasing).
func TestChannelHashCoversAllChannels(t *testing.T) {
	f := func(strideRaw uint16) bool {
		stride := (uint32(strideRaw)%64 + 1) * 256
		s := NewSystem(SystemConfig{Channels: 6, BytesPerCyclePerChannel: 8, LatencyCycles: 10})
		for i := uint32(0); i < 600; i++ {
			s.Read(int64(i)*1000, i*stride, 8)
		}
		// With hashing, a long strided sweep must touch >= 4 of 6 channels.
		touched := 0
		for _, ch := range s.channels {
			if ch.ReadBytes() > 0 {
				touched++
			}
		}
		return touched >= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSystemZeroConfigDefaults(t *testing.T) {
	s := NewSystem(SystemConfig{})
	if s.Channels() != 1 {
		t.Errorf("Channels() = %d, want 1", s.Channels())
	}
	if done := s.Read(0, 0, 8); done <= 0 {
		t.Error("zero-config system should still serve reads")
	}
}
