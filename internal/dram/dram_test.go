package dram

import (
	"testing"
	"testing/quick"
)

func TestReadLatency(t *testing.T) {
	d := New(DefaultConfig())
	done := d.Read(0, 0, 128)
	// 128 bytes at 8 B/cycle = 16 transfer cycles + 400 latency.
	if done != 416 {
		t.Errorf("Read completion = %d, want 416", done)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	d := New(DefaultConfig())
	first := d.Read(0, 0, 128)
	second := d.Read(0, 0, 128)
	if second != first+16 {
		t.Errorf("second read = %d, want %d (bus serialized)", second, first+16)
	}
	if d.QueueingStall() != 16 {
		t.Errorf("QueueingStall() = %d, want 16", d.QueueingStall())
	}
}

func TestBusIdleGapNotCharged(t *testing.T) {
	d := New(DefaultConfig())
	d.Read(0, 0, 128)
	done := d.Read(1000, 0, 128) // bus long idle by cycle 1000
	if done != 1416 {
		t.Errorf("idle-bus read = %d, want 1416", done)
	}
	if d.QueueingStall() != 0 {
		t.Errorf("QueueingStall() = %d, want 0", d.QueueingStall())
	}
}

func TestWritesArePostedButConsumeBandwidth(t *testing.T) {
	d := New(DefaultConfig())
	d.Write(0, 0, 128) // occupies bus until 16
	done := d.Read(0, 0, 8)
	if done != 16+1+400 {
		t.Errorf("read after write = %d, want 417", done)
	}
}

func TestByteAccounting(t *testing.T) {
	d := New(DefaultConfig())
	d.Read(0, 0, 128)
	d.Read(0, 0, 128)
	d.Write(0, 0, 100)
	if d.ReadBytes() != 256 || d.WriteBytes() != 100 || d.TotalBytes() != 356 {
		t.Errorf("bytes: r=%d w=%d", d.ReadBytes(), d.WriteBytes())
	}
	r, w := d.Accesses()
	if r != 2 || w != 1 {
		t.Errorf("accesses: r=%d w=%d", r, w)
	}
}

func TestMinimumOneTransferCycle(t *testing.T) {
	d := New(DefaultConfig())
	done := d.Read(0, 0, 1)
	if done != 401 {
		t.Errorf("1-byte read = %d, want 401", done)
	}
}

func TestDefaultsAppliedForZeroConfig(t *testing.T) {
	d := New(Config{})
	if done := d.Read(0, 0, 8); done != 401 {
		t.Errorf("zero-config read = %d, want defaults applied (401)", done)
	}
}

// TestCompletionMonotonic property-checks that completions never move
// backwards in time for monotonically issued requests.
func TestCompletionMonotonic(t *testing.T) {
	f := func(sizes []uint16) bool {
		d := New(DefaultConfig())
		now, last := int64(0), int64(0)
		for _, sz := range sizes {
			now += int64(sz % 100)
			done := d.Read(now, 0, int(sz%512)+1)
			if done < last || done < now+d.cfg.LatencyCycles {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringNonEmpty(t *testing.T) {
	if New(DefaultConfig()).String() == "" {
		t.Error("String() empty")
	}
}

func TestOpenRowModel(t *testing.T) {
	d := New(Config{BytesPerCycle: 8, LatencyCycles: 400, RowBytes: 2048})
	first := d.Read(0, 100, 8) // row miss: full latency
	if first != 401 {
		t.Errorf("row miss completion = %d, want 401", first)
	}
	second := d.Read(1000, 200, 8) // same 2KB row: hit saves 100 cycles
	if second != 1000+1+300 {
		t.Errorf("row hit completion = %d, want 1301", second)
	}
	third := d.Read(2000, 4096, 8) // different row
	if third != 2000+1+400 {
		t.Errorf("row miss completion = %d, want 2401", third)
	}
	hits, misses := d.RowStats()
	if hits != 1 || misses != 2 {
		t.Errorf("row stats = %d/%d, want 1/2", hits, misses)
	}
}

func TestOpenRowDisabledByDefault(t *testing.T) {
	d := New(DefaultConfig())
	d.Read(0, 0, 8)
	d.Read(1000, 8, 8)
	if h, m := d.RowStats(); h != 0 || m != 0 {
		t.Errorf("flat-latency model should not track rows: %d/%d", h, m)
	}
}

func TestWritesMoveOpenRow(t *testing.T) {
	d := New(Config{BytesPerCycle: 8, LatencyCycles: 400, RowBytes: 2048})
	d.Read(0, 0, 8)       // opens row 0
	d.Write(100, 8192, 8) // write moves to row 4
	done := d.Read(1000, 0, 8)
	if done != 1000+1+400 {
		t.Errorf("read after row-moving write = %d, want full-latency 1401", done)
	}
}
