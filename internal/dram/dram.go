// Package dram models the SM's share of the chip-wide DRAM system as a
// single bandwidth-limited channel with fixed access latency.
//
// Following the paper's methodology (Section 5.1), a single simulated SM
// receives 8 bytes/cycle of DRAM bandwidth — 1/32 of the chip's 256
// bytes/cycle — and every access observes a 400-cycle latency on top of
// queueing and transfer time. Byte counts are tracked exactly; they drive
// both the DRAM-traffic results (Figure 9) and DRAM energy (40 pJ/bit).
package dram

import "fmt"

// Config parameterizes the channel.
type Config struct {
	// BytesPerCycle is the sustained bandwidth share (8 in the paper).
	BytesPerCycle int
	// LatencyCycles is the fixed access latency (400 in the paper).
	LatencyCycles int64
	// RowBytes enables an open-row model: consecutive accesses that fall
	// in the same RowBytes-sized row skip the activate/precharge portion
	// of the latency (RowMissPenalty). Zero keeps the paper's flat
	// latency.
	RowBytes uint32
	// RowMissPenalty is the extra latency of a row miss relative to a
	// row hit (default 100 cycles when RowBytes is set).
	RowMissPenalty int64
}

// DefaultConfig returns the paper's Table 2 DRAM parameters.
func DefaultConfig() Config {
	return Config{BytesPerCycle: 8, LatencyCycles: 400}
}

// DRAM is the channel model. It is cycle-agnostic: callers pass the current
// cycle and receive completion cycles.
type DRAM struct {
	cfg       Config
	busFreeAt int64

	readBytes  int64
	writeBytes int64
	reads      int64
	writes     int64
	stallCycle int64 // cumulative queueing delay observed by reads

	openRow   uint32
	hasRow    bool
	rowHits   int64
	rowMisses int64
}

// Normalized returns the configuration with zero fields replaced by the
// Table 2 defaults, exactly as New applies them — so callers that need
// the effective values (the sampled-mode bus bound, SetConfig) agree
// with the channel itself.
func (cfg Config) Normalized() Config {
	if cfg.BytesPerCycle <= 0 {
		cfg.BytesPerCycle = 8
	}
	if cfg.LatencyCycles <= 0 {
		cfg.LatencyCycles = 400
	}
	if cfg.RowBytes > 0 && cfg.RowMissPenalty <= 0 {
		cfg.RowMissPenalty = 100
	}
	return cfg
}

// New builds a channel with the given configuration.
func New(cfg Config) *DRAM {
	return &DRAM{cfg: cfg.Normalized()}
}

// latencyFor returns the access latency, applying the open-row model when
// configured: the flat LatencyCycles is interpreted as the row-miss
// latency, and row hits save RowMissPenalty cycles.
func (d *DRAM) latencyFor(addr uint32) int64 {
	if d.cfg.RowBytes == 0 {
		return d.cfg.LatencyCycles
	}
	row := addr / d.cfg.RowBytes
	if d.hasRow && row == d.openRow {
		d.rowHits++
		return d.cfg.LatencyCycles - d.cfg.RowMissPenalty
	}
	d.rowMisses++
	d.openRow = row
	d.hasRow = true
	return d.cfg.LatencyCycles
}

// RowStats returns open-row hits and misses (zero unless RowBytes is set).
func (d *DRAM) RowStats() (hits, misses int64) { return d.rowHits, d.rowMisses }

// transferCycles returns the bus occupancy of a transfer, at least one cycle.
func (d *DRAM) transferCycles(bytes int) int64 {
	t := int64((bytes + d.cfg.BytesPerCycle - 1) / d.cfg.BytesPerCycle)
	if t < 1 {
		t = 1
	}
	return t
}

// Read schedules a read of the given size issued at cycle now and returns
// the cycle at which the data is available to the SM. addr is accepted for
// interface compatibility with channel-interleaved systems; a single
// channel ignores it.
func (d *DRAM) Read(now int64, addr uint32, bytes int) int64 {
	start := now
	if d.busFreeAt > start {
		d.stallCycle += d.busFreeAt - start
		start = d.busFreeAt
	}
	lat := d.latencyFor(addr)
	d.busFreeAt = start + d.transferCycles(bytes)
	d.readBytes += int64(bytes)
	d.reads++
	return d.busFreeAt + lat
}

// Write schedules a write of the given size issued at cycle now. Writes are
// posted: the SM does not wait for them, but they consume bus bandwidth and
// delay subsequent accesses.
func (d *DRAM) Write(now int64, addr uint32, bytes int) {
	if d.cfg.RowBytes > 0 {
		d.latencyFor(addr) // writes move the open row too
	}
	start := now
	if d.busFreeAt > start {
		start = d.busFreeAt
	}
	d.busFreeAt = start + d.transferCycles(bytes)
	d.writeBytes += int64(bytes)
	d.writes++
}

// ReadBytes returns cumulative bytes read.
func (d *DRAM) ReadBytes() int64 { return d.readBytes }

// WriteBytes returns cumulative bytes written.
func (d *DRAM) WriteBytes() int64 { return d.writeBytes }

// TotalBytes returns cumulative traffic in both directions.
func (d *DRAM) TotalBytes() int64 { return d.readBytes + d.writeBytes }

// Accesses returns the number of read and write transactions issued.
func (d *DRAM) Accesses() (reads, writes int64) { return d.reads, d.writes }

// QueueingStall returns the cumulative cycles reads spent waiting for the
// bus, a congestion indicator used in tests.
func (d *DRAM) QueueingStall() int64 { return d.stallCycle }

// BusFreeAt returns the cycle at which the bus next becomes idle.
func (d *DRAM) BusFreeAt() int64 { return d.busFreeAt }

// String summarizes traffic.
func (d *DRAM) String() string {
	return fmt.Sprintf("dram read=%dB write=%dB stall=%d", d.readBytes, d.writeBytes, d.stallCycle)
}
