// Package profiling wires the standard pprof CPU and heap profiles into
// the command-line tools behind shared -cpuprofile / -memprofile flags,
// so hot-path work (see DESIGN.md, "Cycle-loop performance") can be
// measured on exactly the binary being shipped rather than on ad-hoc
// test harnesses.
//
// Usage in a main:
//
//	prof := profiling.AddFlags(flag.CommandLine)
//	flag.Parse()
//	stop, err := prof.Start()
//	if err != nil { ... }
//	defer stop()
//
// Start is a no-op when neither flag is set. The returned stop function
// ends the CPU profile and writes the heap profile; mains that exit via
// os.Exit on success must call it explicitly first (deferred calls do
// not run past os.Exit).
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered by AddFlags.
type Flags struct {
	cpu *string
	mem *string

	cpuFile *os.File
}

// AddFlags registers -cpuprofile and -memprofile on fs and returns the
// handle Start reads them from. Call before fs is parsed.
func AddFlags(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu: fs.String("cpuprofile", "", "write a pprof CPU profile to `file`"),
		mem: fs.String("memprofile", "", "write a pprof heap profile to `file` on exit"),
	}
}

// Start begins CPU profiling if -cpuprofile was given. The returned
// stop function ends the CPU profile and, if -memprofile was given,
// writes the heap profile (after a final GC, so it reports live heap).
// stop is never nil and is safe to call when no flag was set.
func (p *Flags) Start() (stop func(), err error) {
	if *p.cpu != "" {
		p.cpuFile, err = os.Create(*p.cpu)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(p.cpuFile); err != nil {
			p.cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return p.stop, nil
}

// stop finishes whatever profiles Start began.
func (p *Flags) stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
			return
		}
		defer f.Close()
		runtime.GC() // report live heap, not the allocation high-water mark
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "profiling:", err)
		}
	}
}
