package floorplan

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/energy"
)

func TestUnifiedClustersAreLarger(t *testing.T) {
	m := NewModel()
	part := m.Estimate(config.Baseline())
	uni := config.Baseline()
	uni.Design = config.Unified
	u := m.Estimate(uni)
	if u.ClusterMM2 <= part.ClusterMM2 {
		t.Errorf("unified cluster %.3f mm^2 should exceed partitioned %.3f (storage moved in)",
			u.ClusterMM2, part.ClusterMM2)
	}
	if u.CrossbarMM <= part.CrossbarMM {
		t.Error("bigger clusters must stretch the crossbar")
	}
	if u.MemAccessWirePJ <= part.MemAccessWirePJ {
		t.Error("unified accesses must pay more wire energy")
	}
}

// TestDerivedOverheadNearPaperAssumption is the point of the package: the
// paper models the unified design's extra wiring as +10% on bank access
// energy without a physical design. Deriving it from the paper's own
// Table 3 wire constants and CACTI-class area numbers lands in the same
// range, supporting the assumption.
func TestDerivedOverheadNearPaperAssumption(t *testing.T) {
	m := NewModel()
	bankPJ, _ := energy.BankEnergy(12 << 10)
	got := m.DerivedOverhead(config.BaselineTotalBytes, bankPJ)
	t.Logf("derived unified wiring overhead: %.1f%% (paper assumes 10%%)", 100*got)
	if got < 0.03 || got > 0.30 {
		t.Errorf("derived overhead %.3f outside the plausible range of the paper's 0.10", got)
	}
}

func TestOverheadGrowsWithCapacity(t *testing.T) {
	m := NewModel()
	bankPJ, _ := energy.BankEnergy(12 << 10)
	small := m.DerivedOverhead(128<<10, bankPJ)
	large := m.DerivedOverhead(384<<10, bankPJ)
	if large <= small {
		t.Errorf("more storage in the clusters should mean more wire: %.3f vs %.3f", large, small)
	}
}

func TestEstimateString(t *testing.T) {
	s := NewModel().Estimate(config.Baseline()).String()
	if !strings.Contains(s, "crossbar") {
		t.Errorf("String() = %q", s)
	}
}

func TestZeroArea(t *testing.T) {
	m := Model{P: Params{}}
	e := m.Estimate(config.MemConfig{Design: config.Partitioned, RFBytes: 1024})
	if e.MemAccessWirePJ != 0 {
		t.Errorf("zero constants should produce zero energy, got %v", e.MemAccessWirePJ)
	}
}
