// Package floorplan estimates SM wire lengths and crossbar energy from
// first principles, using the wire constants of the paper's Table 3
// (300 fF/mm capacitance, 1.9 pJ/mm signalling energy at 0.9 V, 32 nm).
//
// The paper does not do a physical design; it models the unified design's
// extra wiring (the 4:1 cluster mux and a longer crossbar, because moving
// cache and shared-memory storage into the clusters grows them) as a flat
// +10% on bank access energy. This package derives that overhead instead:
// it lays the 8 SM clusters out in a row, sizes each cluster by its SRAM
// content, spans the crossbar across them, and charges 1.9 pJ/mm for the
// average data traversal of a shared-memory or cache access. The result
// (see TestDerivedOverheadNearPaperAssumption) lands in the same range as
// the paper's assumption, which is the point of the exercise.
package floorplan

import (
	"fmt"
	"math"

	"repro/internal/config"
)

// Params holds the physical constants.
type Params struct {
	// WireEnergyPJPerMM is the Table 3 signalling energy (1.9 pJ/mm),
	// interpreted per 16-byte transfer segment.
	WireEnergyPJPerMM float64
	// SRAMAreaMM2PerKB is the 32 nm SRAM macro density including
	// peripheral overhead (~0.0055 mm^2/KB follows from CACTI-class
	// 32 nm arrays).
	SRAMAreaMM2PerKB float64
	// ClusterLogicMM2 is the non-SRAM area of one 4-lane cluster
	// (ALUs, operand buffering, control).
	ClusterLogicMM2 float64
	// MuxEnergyPJ is the 4:1 bank multiplexer the unified design adds on
	// each cluster's path to the crossbar.
	MuxEnergyPJ float64
}

// DefaultParams returns the Table 3 constants with CACTI-class area
// assumptions.
func DefaultParams() Params {
	return Params{
		WireEnergyPJPerMM: 1.9,
		SRAMAreaMM2PerKB:  0.0055,
		ClusterLogicMM2:   0.055,
		MuxEnergyPJ:       0.35,
	}
}

// Estimate is the derived physical picture of one configuration.
type Estimate struct {
	// ClusterMM2 is the area of one SM cluster.
	ClusterMM2 float64
	// CrossbarMM is the crossbar span across the 8 clusters.
	CrossbarMM float64
	// MemAccessWirePJ is the average wire + mux energy of one 16-byte
	// shared-memory or cache data access reaching the memory access
	// units through the crossbar.
	MemAccessWirePJ float64
}

// clusterSRAMBytes returns the SRAM held inside one cluster: the MRF share
// always, plus the shared-memory and cache shares in the unified design
// (Section 4.1 moves all data storage into the clusters).
func clusterSRAMBytes(cfg config.MemConfig) int {
	switch cfg.Design {
	case config.Unified:
		return cfg.TotalBytes() / config.NumClusters
	default:
		return cfg.RFBytes / config.NumClusters
	}
}

// Model evaluates configurations under one set of physical constants.
type Model struct {
	P Params
}

// NewModel returns a model with the default constants.
func NewModel() Model { return Model{P: DefaultParams()} }

// Estimate computes the floorplan quantities for a configuration.
func (m Model) Estimate(cfg config.MemConfig) Estimate {
	sramKB := float64(clusterSRAMBytes(cfg)) / 1024
	area := m.P.ClusterLogicMM2 + sramKB*m.P.SRAMAreaMM2PerKB
	// Clusters are square tiles in a row; the crossbar runs along them.
	pitch := math.Sqrt(area)
	span := pitch * config.NumClusters
	// An access traverses on average half the crossbar span, plus (in
	// the unified design) half the cluster pitch to exit the bank array
	// and the 4:1 mux.
	wire := span / 2
	mux := 0.0
	if cfg.Design == config.Unified {
		wire += pitch / 2
		mux = m.P.MuxEnergyPJ
	}
	return Estimate{
		ClusterMM2:      area,
		CrossbarMM:      span,
		MemAccessWirePJ: wire*m.P.WireEnergyPJPerMM + mux,
	}
}

// DerivedOverhead returns the unified design's extra shared/cache access
// energy relative to the partitioned baseline of the same total capacity,
// expressed as a fraction of the partitioned bank+wire access energy
// (bankPJ is the partitioned per-16-byte bank access energy, Table 4).
// The paper assumes 0.10; this derives it from the wire constants.
func (m Model) DerivedOverhead(totalBytes int, bankPJ float64) float64 {
	part := config.MemConfig{
		Design:      config.Partitioned,
		RFBytes:     totalBytes * 2 / 3,
		SharedBytes: totalBytes / 6,
		CacheBytes:  totalBytes / 6,
	}
	uni := part
	uni.Design = config.Unified
	ep := m.Estimate(part)
	eu := m.Estimate(uni)
	return (eu.MemAccessWirePJ - ep.MemAccessWirePJ) / (bankPJ + ep.MemAccessWirePJ)
}

// String renders the estimate.
func (e Estimate) String() string {
	return fmt.Sprintf("cluster %.3f mm^2, crossbar %.2f mm, mem-access wire %.2f pJ",
		e.ClusterMM2, e.CrossbarMM, e.MemAccessWirePJ)
}
