package memsys

import (
	"repro/internal/config"
	"repro/internal/isa"
)

// Fast* are the functional counterparts of Load/Store/Tex, used by the
// SM's sampled-simulation mode to fast-forward between detailed windows.
// They keep the cache functionally warm (real tag-store accesses, so hit
// rates stay attributable) and file the same event counters a detailed
// access would, but model time approximately: flat latencies, no tag-port
// serialization, no MSHR table, and no DRAM bus queueing. Because they
// never touch the Memory backend, the backend's own tallies (and its bus
// clock) lag the counters during a fast-forward; single-SM runs report
// from the counters, so sampled results stay internally consistent.

// FastLoad is the functional LDG: tag probes warm the cache and classify
// hits/misses exactly, misses account their sectored fill bytes, and the
// returned data-ready cycle uses the flat DRAM latency with no queueing
// or in-flight merging.
func (m *MemSys) FastLoad(wi *isa.WarpInst, now int64) int64 {
	if !m.CacheEnabled() {
		m.c.DRAMReadBytes += int64(uncachedGranule * m.distinctAddrs(wi))
		return now + m.cfg.DRAMLatency
	}
	lines, sectors := m.lines(wi, m.lineBuf[:], m.sectorBuf[:])
	worst := now + m.cfg.CacheLatency
	for i, line := range lines {
		m.c.CacheProbes++
		var hit bool
		if m.cfg.WriteBack {
			var victimDirty bool
			hit, victimDirty, _ = m.l1.AccessAllocate(line, false)
			if victimDirty {
				m.c.CacheDataReads++
				m.c.DRAMWriteBytes += int64(config.CacheLineBytes)
			}
		} else {
			hit = m.l1.Read(line)
		}
		if hit {
			m.c.CacheHits++
			m.c.CacheDataReads++
		} else {
			m.c.CacheMisses++
			m.c.CacheDataWrites++ // fill
			m.c.DRAMReadBytes += int64(popcount8(sectors[i]) * SectorBytes)
			if done := now + m.cfg.DRAMLatency; done > worst {
				worst = done
			}
		}
	}
	return worst
}

// FastStore is the functional STG: write-through traffic or write-back
// allocation with dirty-victim accounting, with no bus timing.
func (m *MemSys) FastStore(wi *isa.WarpInst, now int64) {
	if !m.CacheEnabled() {
		m.c.DRAMWriteBytes += int64(uncachedGranule * m.distinctAddrs(wi))
		return
	}
	lines, _ := m.lines(wi, m.lineBuf[:], nil)
	if m.cfg.WriteBack {
		for _, line := range lines {
			m.c.CacheProbes++
			hit, victimDirty, _ := m.l1.AccessAllocate(line, true)
			m.c.CacheDataWrites++
			if !hit {
				m.c.CacheMisses++
				m.c.DRAMReadBytes += int64(config.CacheLineBytes)
			} else {
				m.c.CacheHits++
			}
			if victimDirty {
				m.c.CacheDataReads++
				m.c.DRAMWriteBytes += int64(config.CacheLineBytes)
			}
		}
		return
	}
	for _, line := range lines {
		m.c.CacheProbes++
		if m.l1.Write(line) {
			m.c.CacheDataWrites++
		}
	}
	m.c.DRAMWriteBytes += int64(4 * wi.ActiveThreads())
}

// FastTex is the functional TEX: sectored byte accounting at the flat
// texture-path latency.
func (m *MemSys) FastTex(wi *isa.WarpInst, now int64) int64 {
	lines, sectors := m.lines(wi, m.lineBuf[:], m.sectorBuf[:])
	for i := range lines {
		m.c.DRAMReadBytes += int64(popcount8(sectors[i]) * SectorBytes)
	}
	return now + m.cfg.TexLatency
}
