package memsys

// pendingTable tracks in-flight line fills (line -> data-ready cycle)
// without per-operation heap traffic. It replaces the map[uint32]int64
// the pipeline used to mutate on every miss: a Go map assignment can
// allocate (bucket growth) on the cycle loop's hottest path, whereas
// this open-addressed table allocates only when its backing arrays
// double — and never, once pre-sized, in the MSHR-bounded configuration
// (capacity is fixed by the MSHR bound, entries never exceed it).
//
// Semantics match the map exactly; the eviction scan reproduces the
// map loop's deterministic minimum-(ready, line) selection. A
// randomized differential test (pending_test.go) pins the equivalence.
type pendingTable struct {
	keys []uint32
	vals []int64
	used []bool
	n    int
}

// minPendingSlots is the smallest table; must be a power of two.
const minPendingSlots = 64

// newPendingTable sizes the table for up to bound resident entries
// (bound <= 0 means unbounded: start small and grow by doubling).
func newPendingTable(bound int) *pendingTable {
	slots := minPendingSlots
	// Keep occupancy at or below 50% so probe chains stay short and a
	// bounded table never needs to grow.
	for slots < 2*bound {
		slots *= 2
	}
	return &pendingTable{
		keys: make([]uint32, slots),
		vals: make([]int64, slots),
		used: make([]bool, slots),
	}
}

// home returns the key's preferred slot (Fibonacci hashing; the table
// length is a power of two).
func (p *pendingTable) home(key uint32) int {
	return int((key * 2654435761) & uint32(len(p.keys)-1))
}

// len returns the number of resident entries.
func (p *pendingTable) len() int { return p.n }

// get returns the entry for key, if present.
func (p *pendingTable) get(key uint32) (int64, bool) {
	mask := len(p.keys) - 1
	for i := p.home(key); p.used[i]; i = (i + 1) & mask {
		if p.keys[i] == key {
			return p.vals[i], true
		}
	}
	return 0, false
}

// put inserts or overwrites the entry for key.
func (p *pendingTable) put(key uint32, val int64) {
	if 2*(p.n+1) > len(p.keys) {
		p.grow()
	}
	mask := len(p.keys) - 1
	i := p.home(key)
	for p.used[i] {
		if p.keys[i] == key {
			p.vals[i] = val
			return
		}
		i = (i + 1) & mask
	}
	p.keys[i], p.vals[i], p.used[i] = key, val, true
	p.n++
}

// del removes the entry for key if present, using backward-shift
// deletion (no tombstones: later entries of the probe chain slide into
// the vacated slot when their home position allows it).
func (p *pendingTable) del(key uint32) {
	mask := len(p.keys) - 1
	i := p.home(key)
	for {
		if !p.used[i] {
			return // absent
		}
		if p.keys[i] == key {
			break
		}
		i = (i + 1) & mask
	}
	p.n--
	j := i
	for {
		p.used[i] = false
		for {
			j = (j + 1) & mask
			if !p.used[j] {
				return
			}
			// The entry at j may move into the hole at i only if its
			// home slot does not lie cyclically within (i, j] — moving
			// it otherwise would break its own probe chain.
			h := p.home(p.keys[j])
			if (j-h)&mask >= (j-i)&mask {
				p.keys[i], p.vals[i], p.used[i] = p.keys[j], p.vals[j], true
				break
			}
		}
		i = j
	}
}

// evictEarliest removes and returns the entry with the smallest value,
// breaking value ties by the smaller key — the same deterministic rule
// the map-based scan used, so runs stay bit-reproducible. It must not
// be called on an empty table.
func (p *pendingTable) evictEarliest() (key uint32, val int64) {
	val = int64(1) << 62
	for i, u := range p.used {
		if !u {
			continue
		}
		if p.vals[i] < val || (p.vals[i] == val && p.keys[i] < key) {
			key, val = p.keys[i], p.vals[i]
		}
	}
	p.del(key)
	return key, val
}

// grow doubles the table and rehashes every entry.
func (p *pendingTable) grow() {
	old := *p
	slots := 2 * len(old.keys)
	p.keys = make([]uint32, slots)
	p.vals = make([]int64, slots)
	p.used = make([]bool, slots)
	p.n = 0
	for i, u := range old.used {
		if u {
			p.put(old.keys[i], old.vals[i])
		}
	}
}
