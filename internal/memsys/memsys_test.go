package memsys

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/stats"
)

// memEvent records one DRAM transaction seen by the fake memory.
type memEvent struct {
	now   int64
	addr  uint32
	bytes int
}

// fixedMem is a Memory with a fixed read latency that records all traffic.
type fixedMem struct {
	latency int64
	reads   []memEvent
	writes  []memEvent
}

func (m *fixedMem) Read(now int64, addr uint32, bytes int) int64 {
	m.reads = append(m.reads, memEvent{now, addr, bytes})
	return now + m.latency
}

func (m *fixedMem) Write(now int64, addr uint32, bytes int) {
	m.writes = append(m.writes, memEvent{now, addr, bytes})
}

// ldg builds a full-warp global load with per-lane addresses.
func ldg(addr func(lane int) uint32) *isa.WarpInst {
	var av isa.AddrVec
	for t := 0; t < isa.WarpSize; t++ {
		av[t] = addr(t)
	}
	return &isa.WarpInst{Op: isa.OpLDG, Mask: isa.FullMask, Addrs: &av}
}

// stg builds a full-warp global store with per-lane addresses.
func stg(addr func(lane int) uint32) *isa.WarpInst {
	wi := ldg(addr)
	wi.Op = isa.OpSTG
	return wi
}

func newTestMemSys(mem Memory, maxMSHRs int, writeBack bool, cacheBytes int) (*MemSys, *stats.Counters) {
	c := &stats.Counters{}
	m := New(Config{
		CacheBytes:   cacheBytes,
		CacheLatency: 20,
		TexLatency:   400,
		DRAMLatency:  100,
		MaxMSHRs:     maxMSHRs,
		WriteBack:    writeBack,
	}, mem, c)
	return m, c
}

func TestMSHRMergeInFlight(t *testing.T) {
	mem := &fixedMem{latency: 200}
	m, c := newTestMemSys(mem, 0, false, 64<<10)

	// Cold miss: one sectored fill leaves line 0 in flight until 200.
	ready, accs := m.Load(ldg(func(l int) uint32 { return uint32(l) * 4 }), 0, 0)
	if len(accs) != 1 || accs[0].Status != AccessMiss {
		t.Fatalf("cold load: accs = %+v, want one miss", accs)
	}
	if ready != 200 {
		t.Fatalf("cold load ready = %d, want 200", ready)
	}

	// A second load of the same line while the fill is outstanding merges
	// with it (MSHR hit): same ready cycle, no new DRAM traffic.
	ready2, accs2 := m.Load(ldg(func(l int) uint32 { return uint32(l) * 4 }), 1, 0)
	if len(accs2) != 1 || accs2[0].Status != AccessMerged {
		t.Fatalf("merged load: accs = %+v, want one merge", accs2)
	}
	if ready2 != 200 {
		t.Errorf("merged load ready = %d, want the in-flight fill's 200", ready2)
	}
	if len(mem.reads) != 1 {
		t.Errorf("merge issued %d DRAM reads, want 1", len(mem.reads))
	}
	if c.CacheHits != 1 || c.CacheMisses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1 (merge counts as a hit)", c.CacheHits, c.CacheMisses)
	}

	// After the fill lands, the line is resident: a plain tag hit.
	ready3, accs3 := m.Load(ldg(func(l int) uint32 { return uint32(l) * 4 }), 300, 0)
	if accs3[0].Status != AccessHit {
		t.Errorf("post-fill load status = %v, want AccessHit", accs3[0].Status)
	}
	if want := int64(300 + 20); ready3 != want {
		t.Errorf("hit ready = %d, want %d (lookup + cache latency)", ready3, want)
	}
}

func TestMSHRBoundEvictsAndStalls(t *testing.T) {
	mem := &fixedMem{latency: 100}
	m, _ := newTestMemSys(mem, 1, false, 64<<10)

	// Fill the single MSHR with line 0 (in flight until 100).
	m.Load(ldg(func(l int) uint32 { return uint32(l) * 4 }), 0, 0)
	if m.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", m.InFlight())
	}

	// A miss to a new line finds every MSHR busy: its lookup stalls until
	// the earliest outstanding fill (cycle 100) retires, then pays its own
	// DRAM trip. The stall window is exported for the stall classifier.
	ready, accs := m.Load(ldg(func(l int) uint32 { return 4096 + uint32(l)*4 }), 1, 0)
	if accs[0].Status != AccessMiss {
		t.Fatalf("second load status = %v, want AccessMiss", accs[0].Status)
	}
	if want := int64(200); ready != want {
		t.Errorf("MSHR-blocked miss ready = %d, want %d (retire at 100 + 100 latency)", ready, want)
	}
	if m.MSHRBlockedUntil() != 100 {
		t.Errorf("MSHRBlockedUntil = %d, want 100", m.MSHRBlockedUntil())
	}
	if m.InFlight() != 1 {
		t.Errorf("InFlight after eviction = %d, want 1 (old entry evicted)", m.InFlight())
	}
}

func TestSectorMaskCoalescing(t *testing.T) {
	mem := &fixedMem{latency: 100}
	m, c := newTestMemSys(mem, 0, false, 64<<10)

	// A unit-stride warp load covers exactly one 128-byte line: one access
	// with all four 32-byte sectors touched, fetching the full line.
	_, accs := m.Load(ldg(func(l int) uint32 { return uint32(l) * 4 }), 0, 0)
	if len(accs) != 1 {
		t.Fatalf("coalesced load produced %d line accesses, want 1", len(accs))
	}
	if accs[0].Sectors != 0x0F {
		t.Errorf("coalesced sector mask = %#x, want 0x0f", accs[0].Sectors)
	}
	if c.DRAMReadBytes != 128 {
		t.Errorf("coalesced fill read %d bytes, want 128", c.DRAMReadBytes)
	}

	// A 128-byte-stride gather touches one word in each of 32 lines: 32
	// accesses, each fetching a single sector.
	mem2 := &fixedMem{latency: 100}
	m2, c2 := newTestMemSys(mem2, 0, false, 64<<10)
	_, accs2 := m2.Load(ldg(func(l int) uint32 { return uint32(l) * 128 }), 0, 0)
	if len(accs2) != 32 {
		t.Fatalf("gather produced %d line accesses, want 32", len(accs2))
	}
	for i, a := range accs2 {
		if a.Sectors != 0x01 {
			t.Fatalf("gather access %d sector mask = %#x, want 0x01", i, a.Sectors)
		}
	}
	if c2.DRAMReadBytes != 32*SectorBytes {
		t.Errorf("sectored gather read %d bytes, want %d", c2.DRAMReadBytes, 32*SectorBytes)
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	// A one-set cache (ways * 128 bytes): filling it with dirty lines and
	// storing to one more forces a dirty-victim writeback of the LRU line.
	mem := &fixedMem{latency: 100}
	m, c := newTestMemSys(mem, 0, true, config.CacheWays*config.CacheLineBytes)

	for i := 0; i <= config.CacheWays; i++ {
		line := uint32(i)
		m.Store(stg(func(l int) uint32 { return line*config.CacheLineBytes + uint32(l)*4 }), int64(i*10), 0)
	}
	if len(mem.writes) != 1 {
		t.Fatalf("dirty eviction wrote %d times, want 1", len(mem.writes))
	}
	if w := mem.writes[0]; w.addr != 0 || w.bytes != config.CacheLineBytes {
		t.Errorf("writeback = %+v, want the full LRU line 0", w)
	}
	if m.DirtyLines() != config.CacheWays {
		t.Errorf("DirtyLines = %d, want %d (cache full of dirty lines)", m.DirtyLines(), config.CacheWays)
	}
	// Write-allocate fetches every missed line.
	if c.CacheMisses != int64(config.CacheWays)+1 {
		t.Errorf("CacheMisses = %d, want %d", c.CacheMisses, config.CacheWays+1)
	}
}

func TestWriteThroughNeverDirty(t *testing.T) {
	mem := &fixedMem{latency: 100}
	m, _ := newTestMemSys(mem, 0, false, 64<<10)
	for i := 0; i < 8; i++ {
		line := uint32(i)
		m.Store(stg(func(l int) uint32 { return line*config.CacheLineBytes + uint32(l)*4 }), int64(i), 0)
	}
	if m.DirtyLines() != 0 {
		t.Errorf("write-through cache has %d dirty lines, want 0", m.DirtyLines())
	}
	if len(mem.writes) != 8 {
		t.Errorf("write-through posted %d DRAM writes, want 8", len(mem.writes))
	}
}

// TestLoadReadyMonotoneInNow is the property the SM timing core depends
// on: for the same access sequence against the real DRAM model, issuing
// every load delta cycles later never produces an earlier data-ready
// cycle. Exercises hits, misses, in-flight merges, tag-port backpressure,
// and the bounded-MSHR stall path.
func TestLoadReadyMonotoneInNow(t *testing.T) {
	f := func(seed uint64, deltaRaw uint16, mshrRaw uint8) bool {
		delta := int64(deltaRaw)
		maxMSHRs := []int{0, 1, 4}[int(mshrRaw)%3]

		run := func(shift int64) []int64 {
			m, _ := newTestMemSys(dram.New(dram.DefaultConfig()), maxMSHRs, false, 4<<10)
			rng := rand.New(rand.NewPCG(seed, 7))
			now := shift
			var readys []int64
			for i := 0; i < 40; i++ {
				base := rng.Uint32N(1 << 14)
				stride := []uint32{4, 128, 0}[rng.Uint32N(3)]
				ready, _ := m.Load(ldg(func(l int) uint32 { return base + uint32(l)*stride }), now, 0)
				readys = append(readys, ready)
				now += int64(rng.Uint32N(50))
			}
			return readys
		}

		early, late := run(0), run(delta)
		for i := range early {
			if late[i] < early[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
