// Package memsys is the SM's global-memory pipeline: the load/store
// unit's coalescer, the primary data cache with its single tag port, the
// pending-line (MSHR) table with in-flight merging and an optional entry
// bound, sectored DRAM fills, and the texture path. It owns the Memory
// interface the SM issues DRAM traffic to.
//
// Each global access returns a typed per-line result (Access: hit, miss,
// or in-flight merge, the touched sector mask, and the data-ready cycle)
// consumed by both the timing core (register-ready cycles) and the
// observability probe (per-access classification). Timing state the rest
// of the SM needs — the tag-port drain cycle for run finalization and the
// all-MSHRs-in-flight window for stall attribution — is exposed through
// accessors rather than shared fields, so the memory pipeline can be
// modified (or replaced) without touching the scheduler or dispatch
// layers.
package memsys

import (
	"math/bits"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/stats"
)

// Memory is the DRAM system the pipeline issues global traffic to. A
// private single-channel dram.DRAM satisfies it for single-SM runs; the
// chip simulator injects a shared channel-interleaved system.
type Memory interface {
	// Read schedules a read and returns the data-ready cycle.
	Read(now int64, addr uint32, bytes int) int64
	// Write posts a write.
	Write(now int64, addr uint32, bytes int)
}

// Config holds the memory-pipeline parameters (a slice of sm.Params).
type Config struct {
	// CacheBytes is the primary data cache capacity; zero disables the
	// cache and its coalescing buffer (per-thread DRAM transactions).
	CacheBytes int
	// CacheLatency is the cache hit latency in cycles.
	CacheLatency int64
	// TexLatency is the texture-path latency in cycles.
	TexLatency int64
	// DRAMLatency is the DRAM access latency, used to rebase texture
	// fetches onto the sampler pipeline's latency.
	DRAMLatency int64
	// MaxMSHRs bounds outstanding cache misses; zero means unbounded.
	MaxMSHRs int
	// WriteBack replaces the paper's write-through no-write-allocate
	// cache with a write-back write-allocate one.
	WriteBack bool
}

// AccessStatus classifies one line access.
type AccessStatus uint8

const (
	// AccessHit: the tag probe hit a resident line.
	AccessHit AccessStatus = iota
	// AccessMerged: the access merged with an in-flight fill (MSHR hit).
	AccessMerged
	// AccessMiss: the line was fetched from DRAM.
	AccessMiss
)

// Access is the typed outcome of one distinct-line access of a global
// load: which line, which 32-byte sectors the warp touched, how the tag
// probe resolved, and when the data is ready.
type Access struct {
	Line    uint32
	Sectors uint8
	Status  AccessStatus
	Ready   int64
}

// MemSys is one SM's global-memory pipeline. It is not safe for
// concurrent use; each simulated SM owns one.
type MemSys struct {
	cfg Config
	l1  *cache.Cache
	mem Memory
	c   *stats.Counters

	pending   *pendingTable // in-flight line fills: line -> data-ready cycle
	tagFreeAt int64         // cache tag port busy until
	// mshrBlockedUntil marks the end of the current window in which all
	// cache miss entries are in flight (MaxMSHRs reached); the stall
	// classifier attributes memory waits inside it to MSHR pressure.
	mshrBlockedUntil int64

	lineBuf   [isa.WarpSize]uint32
	sectorBuf [isa.WarpSize]uint8
	accBuf    []Access // reused Load result storage
}

// New builds a memory pipeline issuing to mem, filing events into c.
func New(cfg Config, mem Memory, c *stats.Counters) *MemSys {
	return &MemSys{
		cfg:     cfg,
		l1:      cache.New(cfg.CacheBytes),
		mem:     mem,
		c:       c,
		pending: newPendingTable(cfg.MaxMSHRs),
		accBuf:  make([]Access, 0, isa.WarpSize),
	}
}

// CacheEnabled reports whether a data cache is configured.
func (m *MemSys) CacheEnabled() bool { return m.cfg.CacheBytes > 0 }

// TagFreeAt returns the cycle the cache tag port drains; a run is not
// finished until posted tag-port work completes.
func (m *MemSys) TagFreeAt() int64 { return m.tagFreeAt }

// MSHRBlockedUntil returns the end of the current all-MSHRs-in-flight
// window (zero when the MSHR table has never saturated). Issue slots
// lost inside the window are charged to MSHR pressure by the stall
// classifier.
func (m *MemSys) MSHRBlockedUntil() int64 { return m.mshrBlockedUntil }

// InFlight returns the number of outstanding line fills.
func (m *MemSys) InFlight() int { return m.pending.len() }

// DirtyLines returns the number of modified lines resident in the cache
// (always zero for the write-through design).
func (m *MemSys) DirtyLines() int { return m.l1.DirtyLines() }

// read issues a DRAM read and accounts its bytes.
func (m *MemSys) read(now int64, addr uint32, bytes int) int64 {
	m.c.DRAMReadBytes += int64(bytes)
	return m.mem.Read(now, addr, bytes)
}

// write posts a DRAM write and accounts its bytes.
func (m *MemSys) write(now int64, addr uint32, bytes int) {
	m.c.DRAMWriteBytes += int64(bytes)
	m.mem.Write(now, addr, bytes)
}

// distinctAddrs counts the distinct per-thread addresses of a memory
// instruction: even without a cache, the load/store unit merges threads
// that access the same address (broadcast reads cost one transaction).
func (m *MemSys) distinctAddrs(wi *isa.WarpInst) int {
	var buf [isa.WarpSize]uint32
	n := 0
	for t := 0; t < isa.WarpSize; t++ {
		if wi.Mask&(1<<uint(t)) == 0 {
			continue
		}
		a := wi.Addrs[t]
		dup := false
		for i := 0; i < n; i++ {
			if buf[i] == a {
				dup = true
				break
			}
		}
		if !dup {
			buf[n] = a
			n++
		}
	}
	return n
}

// SectorBytes is the DRAM fetch granularity within a cache line: misses
// fetch only the 32-byte sectors the warp actually touches (sectored
// fill, as in Fermi-class memory systems), so sparse gathers do not pay
// for full 128-byte lines.
const SectorBytes = 32

// lines collects the distinct cache lines touched by a memory instruction
// (in lane order) and, in sectors, a parallel bitmask of the 32-byte
// sectors touched within each line. sectors may be nil when masks are not
// needed.
func (m *MemSys) lines(wi *isa.WarpInst, buf []uint32, sectors []uint8) ([]uint32, []uint8) {
	buf = buf[:0]
	if sectors != nil {
		sectors = sectors[:0]
	}
	for t := 0; t < isa.WarpSize; t++ {
		if wi.Mask&(1<<uint(t)) == 0 {
			continue
		}
		line := wi.Addrs[t] / config.CacheLineBytes
		sector := uint8(1) << (wi.Addrs[t] % config.CacheLineBytes / SectorBytes)
		dup := false
		for i, l := range buf {
			if l == line {
				dup = true
				if sectors != nil {
					sectors[i] |= sector
				}
				break
			}
		}
		if !dup {
			buf = append(buf, line)
			if sectors != nil {
				sectors = append(sectors, sector)
			}
		}
	}
	return buf, sectors
}

// popcount8 counts set bits in a sector mask.
func popcount8(x uint8) int { return bits.OnesCount8(x) }

// uncachedGranule is the per-thread DRAM transaction size when no data
// cache is configured. The cache doubles as the SM's coalescing buffer
// (Section 3.1's "bandwidth amplification"): without one, each active
// thread's access becomes its own minimum-size DRAM transaction. This is
// what makes the paper's 0 KB column 3-4x worse for streaming kernels
// (vectoradd 3.88x) yet slightly *better* for needle, whose scattered
// accesses use only a fraction of each 128-byte line a cache would fetch.
const uncachedGranule = 16

// Load performs an LDG issued at now: per distinct line, one tag lookup
// (single tag port, serialized alongside extra bank-conflict cycles),
// then a hit (cache latency), an in-flight merge, or a miss (sectored
// DRAM fetch). It returns the cycle the register result is ready and the
// per-line outcomes; the Access slice is the pipeline's own scratch
// storage, valid until the next Load call.
func (m *MemSys) Load(wi *isa.WarpInst, now, extra int64) (int64, []Access) {
	m.accBuf = m.accBuf[:0]
	if !m.CacheEnabled() {
		// No coalescing buffer: per-thread minimum-size transactions.
		return m.read(now, wi.Addrs[0], uncachedGranule*m.distinctAddrs(wi)), m.accBuf
	}
	lines, sectors := m.lines(wi, m.lineBuf[:], m.sectorBuf[:])

	start := now
	if m.tagFreeAt > start {
		start = m.tagFreeAt
	}
	// Unified-design bank conflicts on the line accesses serialize on the
	// cache port alongside the tag lookups.
	m.tagFreeAt = start + int64(len(lines)) + extra

	worst := now + m.cfg.CacheLatency
	for i, line := range lines {
		lookup := start + int64(i)
		m.c.CacheProbes++
		var ready int64
		status := AccessMiss
		if done, ok := m.pending.get(line); ok && done > lookup {
			// Merge with an in-flight fill (MSHR hit).
			ready = done
			status = AccessMerged
			m.c.CacheHits++
			m.c.CacheDataReads++
		} else {
			if ok {
				m.pending.del(line)
			}
			if m.cfg.MaxMSHRs > 0 && m.pending.len() >= m.cfg.MaxMSHRs {
				// All miss entries in flight: the lookup stalls until the
				// earliest outstanding fill returns. Ties on the ready
				// cycle break by line number so the choice never depends
				// on table layout (runs must be bit-reproducible).
				_, earliest := m.pending.evictEarliest()
				if earliest > lookup {
					lookup = earliest
					// The issue slots until the entry retires are lost
					// to MSHR pressure; the stall classifier gives this
					// window priority over plain scoreboard waits.
					if earliest > m.mshrBlockedUntil {
						m.mshrBlockedUntil = earliest
					}
				}
			}
			hit := false
			if m.cfg.WriteBack {
				var victimDirty bool
				var victim uint32
				hit, victimDirty, victim = m.l1.AccessAllocate(line, false)
				if victimDirty {
					// Dirty eviction: read the victim from the data
					// array and write the full line back to DRAM.
					m.c.CacheDataReads++
					m.write(lookup, victim*config.CacheLineBytes, config.CacheLineBytes)
				}
			} else {
				hit = m.l1.Read(line)
			}
			if hit {
				ready = lookup + m.cfg.CacheLatency
				status = AccessHit
				m.c.CacheHits++
				m.c.CacheDataReads++
			} else {
				// Sectored fill: fetch only the touched 32-byte sectors.
				ready = m.read(lookup, line*config.CacheLineBytes, popcount8(sectors[i])*SectorBytes)
				m.c.CacheMisses++
				// The line is already installed; remember when its data
				// actually arrives.
				m.pending.put(line, ready)
				m.c.CacheDataWrites++ // fill
			}
		}
		m.accBuf = append(m.accBuf, Access{Line: line, Sectors: sectors[i], Status: status, Ready: ready})
		if ready > worst {
			worst = ready
		}
	}
	return worst, m.accBuf
}

// Store performs an STG issued at now: write-through (bytes to DRAM) and
// no-write-allocate (present lines refreshed, absent lines ignored), or
// write-allocate with dirty-victim writebacks in write-back mode.
func (m *MemSys) Store(wi *isa.WarpInst, now, extra int64) {
	if !m.CacheEnabled() {
		// No coalescing buffer: per-thread minimum-size transactions.
		m.write(now, wi.Addrs[0], uncachedGranule*m.distinctAddrs(wi))
		return
	}
	lines, _ := m.lines(wi, m.lineBuf[:], nil)
	start := now
	if m.tagFreeAt > start {
		start = m.tagFreeAt
	}
	m.tagFreeAt = start + int64(len(lines)) + extra
	if m.cfg.WriteBack {
		// Write-allocate: install each line dirty; misses fetch the line
		// and dirty victims write back. No write-through traffic.
		for _, line := range lines {
			m.c.CacheProbes++
			hit, victimDirty, victim := m.l1.AccessAllocate(line, true)
			m.c.CacheDataWrites++
			if !hit {
				m.read(start, line*config.CacheLineBytes, config.CacheLineBytes)
				m.c.CacheMisses++
			} else {
				m.c.CacheHits++
			}
			if victimDirty {
				m.c.CacheDataReads++
				m.write(start, victim*config.CacheLineBytes, config.CacheLineBytes)
			}
		}
		return
	}
	for _, line := range lines {
		m.c.CacheProbes++
		if m.l1.Write(line) {
			m.c.CacheDataWrites++
		}
	}
	m.write(start, wi.Addrs[0], 4*wi.ActiveThreads())
}

// Tex performs a TEX issued at now: the texture path bypasses the primary
// data cache (it has its own sampler pipeline), so it is modeled as a
// fixed long-latency DRAM read per distinct line. It returns the cycle
// the register result is ready.
func (m *MemSys) Tex(wi *isa.WarpInst, now int64) int64 {
	lines, sectors := m.lines(wi, m.lineBuf[:], m.sectorBuf[:])
	worst := now + m.cfg.TexLatency
	for i := range lines {
		done := m.read(now, lines[i]*config.CacheLineBytes, popcount8(sectors[i])*SectorBytes) -
			m.cfg.DRAMLatency + m.cfg.TexLatency
		if done > worst {
			worst = done
		}
	}
	return worst
}
