package memsys

import (
	"math/rand"
	"testing"
)

// refPending is the map-based reference the pendingTable replaced,
// including the deterministic minimum-(ready, line) eviction scan the
// memory pipeline relies on for bit-reproducible runs.
type refPending map[uint32]int64

func (m refPending) evictEarliest() (uint32, int64) {
	var key uint32
	val := int64(1) << 62
	for k, v := range m {
		if v < val || (v == val && k < key) {
			key, val = k, v
		}
	}
	delete(m, key)
	return key, val
}

// TestPendingTableDifferential drives the open-addressed table and the
// reference map through the same randomized operation stream and
// requires identical observable behaviour at every step.
func TestPendingTableDifferential(t *testing.T) {
	for _, bound := range []int{0, 4, 32, 1024} {
		rng := rand.New(rand.NewSource(int64(7 + bound)))
		tab := newPendingTable(bound)
		ref := refPending{}
		// Keys drawn from a small universe so inserts, overwrites,
		// deletes of present and absent keys, and probe-chain collisions
		// all occur; values collide often to exercise the tie-break.
		for op := 0; op < 50000; op++ {
			key := uint32(rng.Intn(300))
			switch rng.Intn(4) {
			case 0, 1: // put (insert or overwrite)
				val := int64(rng.Intn(50))
				tab.put(key, val)
				ref[key] = val
			case 2: // del (possibly absent)
				tab.del(key)
				delete(ref, key)
			case 3: // evict the deterministic minimum
				if len(ref) == 0 {
					continue
				}
				gk, gv := tab.evictEarliest()
				wk, wv := ref.evictEarliest()
				if gk != wk || gv != wv {
					t.Fatalf("op %d: evictEarliest = (%d, %d), want (%d, %d)", op, gk, gv, wk, wv)
				}
			}
			if tab.len() != len(ref) {
				t.Fatalf("op %d: len = %d, want %d", op, tab.len(), len(ref))
			}
			// Point-probe a few keys, present and absent.
			for i := 0; i < 4; i++ {
				k := uint32(rng.Intn(300))
				gv, gok := tab.get(k)
				wv, wok := ref[k]
				if gok != wok || (gok && gv != wv) {
					t.Fatalf("op %d: get(%d) = (%d, %v), want (%d, %v)", op, k, gv, gok, wv, wok)
				}
			}
		}
	}
}

// TestPendingTableBoundedNeverGrows: sized by the MSHR bound, the table
// must keep its backing arrays for the lifetime of the pipeline — that
// is the allocation-free guarantee of the cycle loop's hot path.
func TestPendingTableBoundedNeverGrows(t *testing.T) {
	const bound = 64
	tab := newPendingTable(bound)
	slots := len(tab.keys)
	if slots < 2*bound {
		t.Fatalf("table sized %d slots for bound %d, want >= %d", slots, bound, 2*bound)
	}
	rng := rand.New(rand.NewSource(11))
	for op := 0; op < 100000; op++ {
		for tab.len() >= bound { // the pipeline evicts before inserting
			tab.evictEarliest()
		}
		tab.put(rng.Uint32(), int64(rng.Intn(1000)))
		if len(tab.keys) != slots {
			t.Fatalf("op %d: table grew from %d to %d slots", op, slots, len(tab.keys))
		}
	}
}
