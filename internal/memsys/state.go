package memsys

import (
	"fmt"

	"repro/internal/cache"
)

// State is a frozen image of the memory pipeline: the pending-line
// (MSHR) table, the tag-port and MSHR-saturation clocks, and the cache
// tag store.
//
// The pending table is the one structure here that must be deep-copied
// rather than shared: put, del, and the bounded-MSHR eviction all mutate
// its open-addressed arrays in place (backward-shift deletion slides
// entries between slots), so a shallow copy would alias a fork's MSHR
// bookkeeping to the parent's — in-flight fills retired by one run would
// vanish from, or reappear in, the other. The scratch buffers (lineBuf,
// sectorBuf, accBuf) hold no cross-call state and are not captured.
type State struct {
	// PendingKeys, PendingVals, PendingUsed, and PendingN are a verbatim
	// copy of the pending table's open-addressed arrays. Preserving the
	// exact slot layout (rather than re-inserting entries) keeps a fork's
	// probe chains identical to the parent's; the table's semantics are
	// layout-independent, but verbatim restoration makes fork-vs-fresh
	// equality trivially exact.
	PendingKeys []uint32
	PendingVals []int64
	PendingUsed []bool
	PendingN    int

	TagFreeAt        int64
	MSHRBlockedUntil int64

	// Cache is the tag-store state, nil when no cache is configured.
	Cache *cache.State
}

// Snapshot captures the pipeline state as an immutable State.
func (m *MemSys) Snapshot() *State {
	st := &State{
		PendingKeys:      append([]uint32(nil), m.pending.keys...),
		PendingVals:      append([]int64(nil), m.pending.vals...),
		PendingUsed:      append([]bool(nil), m.pending.used...),
		PendingN:         m.pending.n,
		TagFreeAt:        m.tagFreeAt,
		MSHRBlockedUntil: m.mshrBlockedUntil,
	}
	if m.CacheEnabled() {
		st.Cache = m.l1.Snapshot()
	}
	return st
}

// Restore overwrites the pipeline state with a previously captured
// State. It copies out of st (never aliases it), so one State can seed
// any number of forks, concurrently. The cache geometry must match; the
// pipeline's own Config (latencies, MSHR bound, write policy) is
// untouched, which is what lets a fork diverge on those parameters. A
// fork whose MaxMSHRs bound is below the restored in-flight count simply
// drains: the bounded-eviction path in Load retires entries until the
// table is back under the new bound.
func (m *MemSys) Restore(st *State) error {
	if (st.Cache != nil) != m.CacheEnabled() {
		return fmt.Errorf("memsys: cache presence changed across a snapshot")
	}
	if st.Cache != nil {
		if err := m.l1.Restore(st.Cache); err != nil {
			return fmt.Errorf("memsys: %w", err)
		}
	}
	m.pending.keys = append(m.pending.keys[:0], st.PendingKeys...)
	m.pending.vals = append(m.pending.vals[:0], st.PendingVals...)
	m.pending.used = append(m.pending.used[:0], st.PendingUsed...)
	m.pending.n = st.PendingN
	m.tagFreeAt = st.TagFreeAt
	m.mshrBlockedUntil = st.MSHRBlockedUntil
	return nil
}

// SetTiming replaces the pipeline's timing parameters mid-run (the
// snapshot machinery's param-switch-at-K semantics). The cache capacity
// is structural — the tag store is live state — and must not change.
func (m *MemSys) SetTiming(cfg Config) error {
	if cfg.CacheBytes != m.cfg.CacheBytes {
		return fmt.Errorf("memsys: cache capacity changed from %d to %d mid-run", m.cfg.CacheBytes, cfg.CacheBytes)
	}
	m.cfg = cfg
	return nil
}
