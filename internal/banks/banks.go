// Package banks models SM local-memory bank mapping and the per-warp-
// instruction conflict model of Section 6.1 of the paper.
//
// For every warp instruction we count the accesses each bank receives from
// the instruction's MRF operand reads and its shared-memory or cache data
// accesses, then charge one extra issue cycle for each access beyond the
// first to the most-contended bank. In the partitioned design, register
// banks and shared/cache banks live in disjoint structures, so the two
// kinds of access can never collide; in the unified design they share the
// same 32 banks and additionally compete for the single 16-byte port each
// cluster drives onto the crossbar (arbitration conflicts).
package banks

import (
	"repro/internal/config"
	"repro/internal/isa"
)

// Outcome summarizes the bank behaviour of one warp instruction.
type Outcome struct {
	// MaxPerBank is the maximum number of accesses any single bank (or,
	// in the unified design, any single cluster port) received. Table 5
	// buckets this value.
	MaxPerBank int
	// ExtraCycles is the issue serialization penalty: MaxPerBank - 1
	// (zero for conflict-free instructions).
	ExtraCycles int
	// Arbitration reports that, in the unified design, a register operand
	// read and a shared/cache data access contended for the same bank.
	Arbitration bool
	// MemAccesses is the number of distinct memory bank granules touched
	// (shared-memory words/granules or cache lines); used for access-energy
	// and throughput accounting.
	MemAccesses int
}

// Model evaluates bank conflicts for one design. A Model holds scratch
// buffers and is not safe for concurrent use; each simulated SM owns one.
type Model struct {
	design     config.Design
	aggressive bool

	bankReg [config.NumBanks]uint8 // register read accesses per bank
	bankMem [config.NumBanks]uint8 // memory data accesses per bank
	port    [config.NumClusters]uint8
	granule [isa.WarpSize]uint32 // dedupe scratch
	// trivial marks that the last Evaluate took the no-bank-traffic fast
	// path and left the scratch tallies stale; HeatInto must contribute
	// nothing for such an instruction.
	trivial bool
}

// New returns a conflict model for the given design. The FermiLike design
// uses partitioned banking (its flexibility is capacity-only).
func New(d config.Design) *Model {
	return &Model{design: d}
}

// NewAggressive returns the unified-design variant of Section 4.2 that
// allows multiple banks within a cluster to be accessed per cycle for
// scatter/gather (still limited to 16 bytes per cluster onto the
// crossbar). The paper measured a 0.5% average improvement over the
// simple single-bank-per-cluster design and used the simple one for its
// results; this variant exists for the ablation benchmark.
func NewAggressive(d config.Design) *Model {
	return &Model{design: d, aggressive: true}
}

// Design returns the design the model evaluates.
func (m *Model) Design() config.Design { return m.design }

// Outcomes evaluates every instruction of a trace under one bank-model
// variant. An Outcome is a pure function of the instruction and the
// variant, so the result can be memoized and replayed across runs (the
// trace cache in internal/workloads does exactly that).
func Outcomes(design config.Design, aggressive bool, insts []isa.WarpInst) []Outcome {
	m := New(design)
	if aggressive {
		m = NewAggressive(design)
	}
	out := make([]Outcome, len(insts))
	for i := range insts {
		out[i] = m.Evaluate(&insts[i])
	}
	return out
}

// unified reports whether register and memory accesses share banks.
func (m *Model) unified() bool { return m.design == config.Unified }

// Evaluate computes the bank outcome of one warp instruction.
func (m *Model) Evaluate(wi *isa.WarpInst) Outcome {
	// Fast path: an instruction with no MRF operand reads and no memory
	// addresses touches no bank at all — its outcome is fixed, and the
	// scratch tallies can stay stale (HeatInto checks m.trivial).
	if !(wi.Op.IsMemory() && wi.Addrs != nil) &&
		!(wi.Srcs[0].Space == isa.SpaceMRF && wi.Srcs[0].Valid()) &&
		!(wi.Srcs[1].Space == isa.SpaceMRF && wi.Srcs[1].Valid()) &&
		!(wi.Srcs[2].Space == isa.SpaceMRF && wi.Srcs[2].Valid()) {
		m.trivial = true
		return Outcome{MaxPerBank: 1}
	}
	m.trivial = false
	for i := range m.bankReg {
		m.bankReg[i] = 0
		m.bankMem[i] = 0
	}
	for i := range m.port {
		m.port[i] = 0
	}

	// MRF operand reads. Register r maps to bank r mod 4 within each
	// cluster; every cluster reads its own copy for its 4 lanes, so one
	// MRF source adds one access to the same bank slot of all clusters.
	for _, src := range wi.Srcs {
		if src.Valid() && src.Space == isa.SpaceMRF {
			slot := int(src.Reg) % config.BanksPerCluster
			for c := 0; c < config.NumClusters; c++ {
				m.bankReg[c*config.BanksPerCluster+slot]++
			}
		}
	}

	memAccesses := 0
	if wi.Op.IsMemory() && wi.Addrs != nil {
		if wi.Op.IsShared() {
			memAccesses = m.addShared(wi)
		} else {
			memAccesses = m.addGlobal(wi)
		}
	}

	out := Outcome{MemAccesses: memAccesses}
	if m.unified() {
		// Shared banks: register and memory accesses sum per bank, and
		// shared/cache traffic also contends for the per-cluster port.
		for b := 0; b < config.NumBanks; b++ {
			total := int(m.bankReg[b]) + int(m.bankMem[b])
			if total > out.MaxPerBank {
				out.MaxPerBank = total
			}
			if m.bankReg[b] > 0 && m.bankMem[b] > 0 {
				out.Arbitration = true
			}
		}
		if !m.aggressive {
			// Simple design: one bank per cluster reaches the crossbar
			// per cycle, so distinct granules in one cluster serialize
			// even across different banks. The aggressive design muxes
			// any bank onto the port, leaving only true per-bank
			// conflicts (counted above).
			for c := 0; c < config.NumClusters; c++ {
				if int(m.port[c]) > out.MaxPerBank {
					out.MaxPerBank = int(m.port[c])
				}
			}
		}
	} else {
		// Disjoint structures: the worst bank of either space decides.
		for b := 0; b < config.NumBanks; b++ {
			if int(m.bankReg[b]) > out.MaxPerBank {
				out.MaxPerBank = int(m.bankReg[b])
			}
			if int(m.bankMem[b]) > out.MaxPerBank {
				out.MaxPerBank = int(m.bankMem[b])
			}
		}
	}
	if out.MaxPerBank < 1 {
		out.MaxPerBank = 1
	}
	out.ExtraCycles = out.MaxPerBank - 1
	return out
}

// HeatInto adds the bank footprint of the most recently Evaluated
// instruction to the per-bank access and conflict accumulators (the
// observability layer's heatmap). A bank's conflict count is the
// serialized accesses beyond its first in one instruction. Must be
// called after Evaluate and before the next one; it performs no
// allocation.
func (m *Model) HeatInto(access, conflict *[config.NumBanks]int64) {
	if m.trivial {
		// The last instruction touched no bank; the tallies are stale.
		return
	}
	for b := range m.bankReg {
		n := int64(m.bankReg[b]) + int64(m.bankMem[b])
		if n == 0 {
			continue
		}
		access[b] += n
		if n > 1 {
			conflict[b] += n - 1
		}
	}
}

// addShared files the shared-memory accesses of the instruction and
// returns the number of distinct bank granules touched.
//
// Partitioned: banks are 4 bytes wide, bank = (addr/4) mod 32; accesses to
// the same word broadcast and count once.
//
// Unified: banks are 16 bytes wide and the shared address space stripes
// 16-byte granules across the 8 clusters (cluster = (addr/16) mod 8,
// bank-in-cluster = (addr/128) mod 4). One 16-byte granule is served by a
// single bank access, but each cluster can route only one bank onto the
// crossbar per cycle, so distinct granules in the same cluster serialize
// even when they live in different banks.
func (m *Model) addShared(wi *isa.WarpInst) int {
	n := 0
	for t := 0; t < isa.WarpSize; t++ {
		if wi.Mask&(1<<uint(t)) == 0 {
			continue
		}
		addr := wi.Addrs[t]
		var g uint32
		if m.unified() {
			g = addr / config.UnifiedBankWidth
		} else {
			g = addr / config.PartitionedShmemBankWidth
		}
		if m.seen(g, n) {
			continue
		}
		m.granule[n] = g
		n++
		if m.unified() {
			cluster := int(g) % config.NumClusters
			slot := int(addr/config.CacheLineBytes) % config.BanksPerCluster
			m.bankMem[cluster*config.BanksPerCluster+slot]++
			m.port[cluster]++
		} else {
			m.bankMem[g%config.NumBanks]++
		}
	}
	return n
}

// addGlobal files the cache-line accesses of a global memory instruction
// and returns the number of distinct lines touched.
//
// A 128-byte line spans banks in both designs: all 32 4-byte banks in the
// partitioned design, or 8 16-byte unified banks, one per cluster, with
// bank-in-cluster = (line) mod 4. Distinct lines are already serialized by
// the single-ported tag array (one lookup per cycle, modeled by the SM),
// so lines never collide with each other within an instruction; the only
// unified-specific hazard is a line's data access landing in the same bank
// an MRF operand of the same instruction reads (an arbitration conflict,
// at most one extra cycle). Each line access is therefore filed as one
// access to its bank slot, capped at one per slot.
func (m *Model) addGlobal(wi *isa.WarpInst) int {
	n := 0
	var slotUsed [config.BanksPerCluster]bool
	for t := 0; t < isa.WarpSize; t++ {
		if wi.Mask&(1<<uint(t)) == 0 {
			continue
		}
		line := wi.Addrs[t] / config.CacheLineBytes
		if m.seen(line, n) {
			continue
		}
		m.granule[n] = line
		n++
		if m.unified() {
			slot := int(line) % config.BanksPerCluster
			if !slotUsed[slot] {
				slotUsed[slot] = true
				for c := 0; c < config.NumClusters; c++ {
					m.bankMem[c*config.BanksPerCluster+slot]++
				}
			}
		}
		// Partitioned cache lines use dedicated banks; nothing to file.
	}
	return n
}

// seen reports whether g is among the first n recorded granules. The
// scan runs newest-first: adjacent threads usually land in the granule
// recorded last (coalesced accesses), making the common duplicate an
// O(1) hit instead of a full scan.
func (m *Model) seen(g uint32, n int) bool {
	for i := n - 1; i >= 0; i-- {
		if m.granule[i] == g {
			return true
		}
	}
	return false
}
