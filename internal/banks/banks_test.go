package banks

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/kgen"
)

func sharedInst(op isa.Op, addrs *isa.AddrVec) *isa.WarpInst {
	wi := &isa.WarpInst{Op: op, Mask: isa.FullMask, Addrs: addrs}
	wi.Dst.Reg = isa.NoReg
	for i := range wi.Srcs {
		wi.Srcs[i].Reg = isa.NoReg
	}
	return wi
}

func withMRFSrcs(wi *isa.WarpInst, regs ...uint8) *isa.WarpInst {
	for i, r := range regs {
		wi.Srcs[i] = isa.Operand{Reg: r, Space: isa.SpaceMRF}
	}
	return wi
}

func TestALUConflictFreeRegisters(t *testing.T) {
	// Registers 0,1,2 map to distinct banks (mod 4) in every cluster.
	wi := sharedInst(isa.OpALU, nil)
	withMRFSrcs(wi, 0, 1, 2)
	for _, d := range []config.Design{config.Partitioned, config.Unified} {
		out := New(d).Evaluate(wi)
		if out.MaxPerBank != 1 || out.ExtraCycles != 0 {
			t.Errorf("%v: distinct banks conflicted: %+v", d, out)
		}
	}
}

func TestALURegisterBankConflict(t *testing.T) {
	// r1 and r5 share bank 1 (mod 4) -> 2 accesses in both designs.
	wi := sharedInst(isa.OpALU, nil)
	withMRFSrcs(wi, 1, 5)
	for _, d := range []config.Design{config.Partitioned, config.Unified} {
		out := New(d).Evaluate(wi)
		if out.MaxPerBank != 2 || out.ExtraCycles != 1 {
			t.Errorf("%v: want 2-way register conflict, got %+v", d, out)
		}
	}
}

func TestORFOperandsDontTouchBanks(t *testing.T) {
	wi := sharedInst(isa.OpALU, nil)
	wi.Srcs[0] = isa.Operand{Reg: 1, Space: isa.SpaceLRF}
	wi.Srcs[1] = isa.Operand{Reg: 5, Space: isa.SpaceORF}
	out := New(config.Unified).Evaluate(wi)
	if out.MaxPerBank != 1 {
		t.Errorf("hierarchy operands must not create bank traffic: %+v", out)
	}
}

func TestSharedCoalescedConflictFree(t *testing.T) {
	// Lane i reads word i: stride 4 covers 32 distinct banks (partitioned)
	// or 8 granules in 8 distinct clusters (unified).
	addrs := kgen.Coalesced(0, 4)
	for _, d := range []config.Design{config.Partitioned, config.Unified} {
		out := New(d).Evaluate(sharedInst(isa.OpLDS, addrs))
		if out.ExtraCycles != 0 {
			t.Errorf("%v: coalesced shared access conflicted: %+v", d, out)
		}
	}
}

func TestSharedBroadcastSingleAccess(t *testing.T) {
	addrs := kgen.Broadcast(64)
	for _, d := range []config.Design{config.Partitioned, config.Unified} {
		out := New(d).Evaluate(sharedInst(isa.OpLDS, addrs))
		if out.MaxPerBank != 1 || out.MemAccesses != 1 {
			t.Errorf("%v: broadcast should be one access: %+v", d, out)
		}
	}
}

func TestSharedStride128Partitioned(t *testing.T) {
	// All 32 lanes hit bank 0 in the partitioned design: 32-way conflict.
	addrs := kgen.Conflicting(0, 32)
	out := New(config.Partitioned).Evaluate(sharedInst(isa.OpLDS, addrs))
	if out.MaxPerBank != 32 || out.ExtraCycles != 31 {
		t.Errorf("want 32-way conflict, got %+v", out)
	}
}

func TestSharedScatterWorseInUnified(t *testing.T) {
	// A random scatter coalesces to at most 32 partitioned banks but only
	// 8 unified cluster ports: the unified penalty must be >= partitioned.
	rng := rand.New(rand.NewPCG(1, 2))
	worseSomewhere := false
	for trial := 0; trial < 50; trial++ {
		addrs := kgen.Random(rng, 0, 16<<10, 4)
		wi := sharedInst(isa.OpLDS, addrs)
		p := New(config.Partitioned).Evaluate(wi)
		u := New(config.Unified).Evaluate(wi)
		if u.MaxPerBank < (p.MaxPerBank+3)/4 {
			t.Fatalf("unified conflict %d impossible given partitioned %d", u.MaxPerBank, p.MaxPerBank)
		}
		if u.MaxPerBank > p.MaxPerBank {
			worseSomewhere = true
		}
	}
	if !worseSomewhere {
		t.Error("unified 8-port restriction never produced a worse conflict on random scatters")
	}
}

func TestStride16UnifiedPortConflict(t *testing.T) {
	// Stride 16: partitioned uses banks 0,4,8,... conflict-free within a
	// 128-byte row then wraps (4 lanes per bank over 32 lanes at stride 16
	// -> 512 bytes span banks 0..31 evenly: lane i hits bank (i*16/4)%32 =
	// (4i)%32, so 8 distinct banks with 4 accesses each).
	// Unified: lane i granule = i, cluster = i%8 -> 4 distinct granules per
	// cluster -> 4-way port conflict.
	addrs := kgen.Coalesced(0, 16)
	p := New(config.Partitioned).Evaluate(sharedInst(isa.OpLDS, addrs))
	u := New(config.Unified).Evaluate(sharedInst(isa.OpLDS, addrs))
	if p.MaxPerBank != 4 {
		t.Errorf("partitioned stride-16: MaxPerBank = %d, want 4", p.MaxPerBank)
	}
	if u.MaxPerBank != 4 {
		t.Errorf("unified stride-16: MaxPerBank = %d, want 4", u.MaxPerBank)
	}
}

func TestGlobalLoadPartitionedNoBankConflict(t *testing.T) {
	// Cache lines span all 32 partitioned banks: by construction no bank
	// conflicts (serialization happens on the tag port instead).
	addrs := kgen.Coalesced(0, 128) // 32 distinct lines
	out := New(config.Partitioned).Evaluate(sharedInst(isa.OpLDG, addrs))
	if out.ExtraCycles != 0 {
		t.Errorf("partitioned global load should not bank-conflict: %+v", out)
	}
	if out.MemAccesses != 32 {
		t.Errorf("MemAccesses = %d, want 32 lines", out.MemAccesses)
	}
}

func TestGlobalLoadUnifiedMultipleLinesNoSelfConflict(t *testing.T) {
	// Distinct lines are serialized by the tag port (modeled in the SM),
	// so they never bank-conflict with each other within an instruction —
	// whether they share a bank slot (lines 0 and 4) or not (0 and 1).
	var addrs isa.AddrVec
	for l := 0; l < 16; l++ {
		addrs[l] = 0
	}
	for l := 16; l < 32; l++ {
		addrs[l] = 4 * 128
	}
	out := New(config.Unified).Evaluate(sharedInst(isa.OpLDG, &addrs))
	if out.MaxPerBank != 1 || out.MemAccesses != 2 {
		t.Errorf("slot-sharing lines: %+v, want MaxPerBank 1, 2 lines", out)
	}
	for l := 16; l < 32; l++ {
		addrs[l] = 128
	}
	out = New(config.Unified).Evaluate(sharedInst(isa.OpLDG, &addrs))
	if out.MaxPerBank != 1 || out.MemAccesses != 2 {
		t.Errorf("distinct-slot lines: %+v, want MaxPerBank 1, 2 lines", out)
	}
}

func TestArbitrationConflictUnifiedOnly(t *testing.T) {
	// A global load whose line lands in bank slot 0 while reading r0/r4
	// (also slot 0) must arbitrate in the unified design.
	wi := sharedInst(isa.OpLDG, kgen.Broadcast(0)) // line 0 -> slot 0
	withMRFSrcs(wi, 0)
	u := New(config.Unified).Evaluate(wi)
	if !u.Arbitration {
		t.Errorf("unified: want arbitration conflict, got %+v", u)
	}
	if u.MaxPerBank != 2 {
		t.Errorf("unified: MaxPerBank = %d, want 2 (reg + line)", u.MaxPerBank)
	}
	p := New(config.Partitioned).Evaluate(wi)
	if p.Arbitration || p.ExtraCycles != 0 {
		t.Errorf("partitioned: registers and cache are separate structures: %+v", p)
	}
}

func TestNoArbitrationWhenSlotsDiffer(t *testing.T) {
	wi := sharedInst(isa.OpLDG, kgen.Broadcast(0)) // line 0 -> slot 0
	withMRFSrcs(wi, 1)                             // slot 1
	u := New(config.Unified).Evaluate(wi)
	if u.Arbitration || u.ExtraCycles != 0 {
		t.Errorf("disjoint slots should not arbitrate: %+v", u)
	}
}

func TestMaskedLanesIgnored(t *testing.T) {
	addrs := kgen.Conflicting(0, 32)
	wi := sharedInst(isa.OpLDS, addrs)
	wi.Mask = 0x1 // one active lane
	out := New(config.Partitioned).Evaluate(wi)
	if out.MaxPerBank != 1 || out.MemAccesses != 1 {
		t.Errorf("masked conflict: %+v", out)
	}
}

func TestEvaluateNeverReturnsZeroMax(t *testing.T) {
	f := func(op uint8, seed uint64, mask uint32) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		ops := []isa.Op{isa.OpALU, isa.OpLDS, isa.OpSTS, isa.OpLDG, isa.OpSTG}
		wi := sharedInst(ops[int(op)%len(ops)], kgen.Random(rng, 0, 1<<20, 4))
		wi.Mask = mask
		for _, d := range []config.Design{config.Partitioned, config.Unified} {
			out := New(d).Evaluate(wi)
			if out.MaxPerBank < 1 || out.ExtraCycles != out.MaxPerBank-1 {
				return false
			}
			if out.MaxPerBank > isa.WarpSize+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
