package dispatch

import "fmt"

// CTAState is one resident CTA slot's frozen bookkeeping. The slot's
// warp indices are structural (slot i always owns warps i*warpsPer ...)
// and are not captured.
type CTAState struct {
	// ID is the grid CTA index resident in the slot, -1 when empty.
	ID int
	// LiveWarps and BarWaits are the slot's retirement and barrier
	// arrival counts.
	LiveWarps int
	BarWaits  int
}

// State is a frozen image of the dispatcher: every warp slot, every CTA
// slot, the grid launch cursor, and the ready bitmask.
//
// Warp entries are value copies, which deep-copies the per-register
// scoreboard (an array) but shares the Trace and Outcomes slices — those
// are immutable by the TraceSource contract (the workloads trace cache
// memoizes them process-wide), so sharing them across any number of
// forks is the copy-on-write half of the snapshot design: a 64-warp
// snapshot costs a few KB of mutable state, never the traces.
type State struct {
	Warps []Warp
	CTAs  []CTAState
	// NextCTA is the grid launch cursor; TotalCTAs and WarpsPer pin the
	// grid shape so Restore can refuse a mismatched source.
	NextCTA   int
	TotalCTAs int
	WarpsPer  int
	LiveWarps int
	ReadyMask uint64
}

// Snapshot captures the dispatcher state as an immutable State. It is
// defined for single-stream dispatchers only — the stream list is
// prefix-defining for snapshot/fork, and multi-stream runs refuse
// capture at the SM layer — and returns nil on a multi-stream
// dispatcher.
func (d *Dispatcher) Snapshot() *State {
	if len(d.streams) != 1 {
		return nil
	}
	st := &State{
		Warps:     append([]Warp(nil), d.warps...),
		CTAs:      make([]CTAState, len(d.ctas)),
		NextCTA:   d.streams[0].nextCTA,
		TotalCTAs: d.streams[0].totalCTAs,
		WarpsPer:  d.streams[0].warpsPer,
		LiveWarps: d.liveWarps,
		ReadyMask: d.readyMask,
	}
	for i := range d.ctas {
		st.CTAs[i] = CTAState{ID: d.ctas[i].id, LiveWarps: d.ctas[i].liveWarps, BarWaits: d.ctas[i].barWaits}
	}
	return st
}

// Restore overwrites the dispatcher state with a previously captured
// State. It copies out of st (never aliases its slices), so one State
// can seed any number of forks, concurrently. The grid shape and slot
// counts must match.
//
// Outcome slices are re-resolved rather than trusted: the fork's own
// outcome configuration (EnableOutcomes, or its absence on probed runs)
// decides whether each live warp replays memoized bank outcomes, so a
// snapshot taken by an unprobed parent restores correctly into a probed
// fork and vice versa.
func (d *Dispatcher) Restore(st *State) error {
	if len(d.streams) != 1 {
		return fmt.Errorf("dispatch: multi-stream dispatchers do not restore snapshots (streams are prefix-defining)")
	}
	stream := &d.streams[0]
	if len(st.Warps) != len(d.warps) || len(st.CTAs) != len(d.ctas) {
		return fmt.Errorf("dispatch: slot shape changed across a snapshot: %d/%d warps, %d/%d CTAs",
			len(st.Warps), len(d.warps), len(st.CTAs), len(d.ctas))
	}
	if st.TotalCTAs != stream.totalCTAs || st.WarpsPer != stream.warpsPer {
		return fmt.Errorf("dispatch: grid changed across a snapshot: %dx%d state, %dx%d source",
			st.TotalCTAs, st.WarpsPer, stream.totalCTAs, stream.warpsPer)
	}
	copy(d.warps, st.Warps)
	for i := range d.ctas {
		d.ctas[i].id = st.CTAs[i].ID
		d.ctas[i].liveWarps = st.CTAs[i].LiveWarps
		d.ctas[i].barWaits = st.CTAs[i].BarWaits
	}
	stream.nextCTA = st.NextCTA
	d.liveWarps = st.LiveWarps
	stream.liveWarps = st.LiveWarps
	d.readyMask = st.ReadyMask
	if stream.liveWarps == 0 && stream.nextCTA >= stream.totalCTAs {
		if stream.doneAt < 0 {
			stream.doneAt = 0
		}
	} else {
		stream.doneAt = -1
	}
	for i := range d.warps {
		w := &d.warps[i]
		if w.Status == Done || w.Status == Idle {
			continue
		}
		if stream.outSrc == nil {
			w.Outcomes = nil
			continue
		}
		cta := st.CTAs[w.CTASlot]
		w.Outcomes = stream.outSrc.WarpOutcomes(cta.ID, i%stream.warpsPer, d.design, d.aggressive)
	}
	return nil
}
