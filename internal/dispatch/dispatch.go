// Package dispatch owns the SM's work-distribution bookkeeping: CTA
// slots, warp launch and retirement, and CTA barriers. It is the layer
// between the trace source (which supplies the kernel grid) and the
// scheduler/timing core (which consume warp state).
//
// The Dispatcher holds the canonical warp array. Warp fields the timing
// core mutates on every issue (PC, scoreboard, issue serialization) are
// exported on Warp so the hot path stays direct; lifecycle transitions —
// launch, barrier arrival and release, exit, CTA rotation — go through
// Dispatcher methods so the invariants (live-warp counts, barrier
// arrival counts, early-exit barrier release) live in one place.
//
// Dispatcher implements the scheduler's Pool interface (NumWarps /
// ReadyAt / Activate), which is the only coupling between the two
// components.
package dispatch

import (
	"fmt"
	"math/bits"

	"repro/internal/banks"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/stats"
)

// TraceSource supplies the kernel grid to execute.
type TraceSource interface {
	// Grid returns the total number of CTAs and the warps per CTA.
	Grid() (ctas, warpsPerCTA int)
	// WarpTrace generates the instruction trace of one warp. It is
	// called once per warp, when the warp's CTA is launched. Returned
	// traces may be shared and must be treated as immutable.
	WarpTrace(cta, warp int) []isa.WarpInst
}

// OutcomeSource is an optional TraceSource extension: a source that can
// additionally supply the precomputed bank-conflict outcome of every
// instruction under a given bank-model variant (the trace cache in
// internal/workloads memoizes these). The slice must be index-aligned
// with the warp's trace and immutable.
type OutcomeSource interface {
	TraceSource
	WarpOutcomes(cta, warp int, design config.Design, aggressive bool) []banks.Outcome
}

// Status is a warp's lifecycle state.
type Status uint8

const (
	// Idle: the slot is unoccupied.
	Idle Status = iota
	// Ready: eligible for the active set at WakeAt.
	Ready
	// Active: in the scheduler's active set.
	Active
	// Barrier: blocked at a CTA barrier.
	Barrier
	// Done: exited.
	Done
)

// Warp is one warp slot. The scheduler and timing core identify warps by
// their slot index in the Dispatcher.
type Warp struct {
	Status  Status
	CTASlot int
	Trace   []isa.WarpInst
	// Outcomes, when non-nil, holds the precomputed bank-conflict
	// outcome of each Trace instruction for the SM's bank-model variant
	// (see OutcomeSource); the timing core then skips the per-issue
	// conflict evaluation. Probed runs leave it unused.
	Outcomes []banks.Outcome
	PC       int
	// NextIssue serializes the warp's own issue stream while the
	// bank-conflict extra cycles of its previous instruction elapse.
	NextIssue int64
	// WakeAt is the cycle a Ready warp becomes eligible for promotion.
	WakeAt int64
	// RegReady is the per-register scoreboard: the cycle each
	// architectural register's pending value arrives.
	RegReady [isa.MaxRegs]int64
	// ArbStall records that the warp's pending issue serialization came
	// from an arbitration conflict, for the observability layer's stall
	// attribution. Timing never reads it.
	ArbStall bool
}

// ctaSlot tracks one resident CTA.
type ctaSlot struct {
	id        int // grid CTA index, -1 if empty
	liveWarps int
	barWaits  int
	warps     []int // warp slot indices
}

// Dispatcher launches the grid's CTAs into resident slots, rotates new
// CTAs in as old ones drain, and resolves barriers.
type Dispatcher struct {
	src TraceSource
	c   *stats.Counters

	// outSrc, when non-nil, attaches precomputed bank outcomes to each
	// launched warp for the configured bank-model variant.
	outSrc     OutcomeSource
	design     config.Design
	aggressive bool

	warps []Warp
	ctas  []ctaSlot

	nextCTA   int // next grid CTA to launch
	totalCTAs int
	warpsPer  int
	liveWarps int
	// readyMask has bit w set iff warp slot w is in the Ready state, so
	// the scheduler's refill and the timing core's wake scan walk only
	// the ready warps (usually none, on a busy SM) instead of every
	// slot. MaxWarpsPerSM <= 64 keeps every slot in one word (checked
	// at compile time below).
	readyMask uint64
}

// readyMask must cover every possible warp slot.
var _ [64 - config.MaxWarpsPerSM]struct{}

// New builds a dispatcher for the grid of src with residentCTAs
// concurrent CTA slots. Launch and retirement events are filed into c.
func New(src TraceSource, residentCTAs int, c *stats.Counters) (*Dispatcher, error) {
	totalCTAs, warpsPer := src.Grid()
	if residentCTAs < 1 {
		return nil, fmt.Errorf("dispatch: need at least one resident CTA")
	}
	if warpsPer < 1 {
		return nil, fmt.Errorf("dispatch: kernel has no warps per CTA")
	}
	if residentCTAs*warpsPer > config.MaxWarpsPerSM {
		return nil, fmt.Errorf("dispatch: %d resident CTAs of %d warps exceed the %d-warp SM limit",
			residentCTAs, warpsPer, config.MaxWarpsPerSM)
	}
	d := &Dispatcher{
		src:       src,
		c:         c,
		warps:     make([]Warp, residentCTAs*warpsPer),
		ctas:      make([]ctaSlot, residentCTAs),
		totalCTAs: totalCTAs,
		warpsPer:  warpsPer,
	}
	for i := range d.ctas {
		d.ctas[i].id = -1
		d.ctas[i].warps = make([]int, warpsPer)
		for w := 0; w < warpsPer; w++ {
			d.ctas[i].warps[w] = i*warpsPer + w
		}
	}
	return d, nil
}

// EnableOutcomes requests precomputed bank outcomes for every launched
// warp under the given bank-model variant. It reports whether the trace
// source supports them; it must be called before Start.
func (d *Dispatcher) EnableOutcomes(design config.Design, aggressive bool) bool {
	src, ok := d.src.(OutcomeSource)
	if !ok {
		return false
	}
	d.outSrc, d.design, d.aggressive = src, design, aggressive
	return true
}

// Start launches the initial resident CTAs at the given cycle and records
// the resident-thread high-water mark.
func (d *Dispatcher) Start(cycle int64) {
	for slot := range d.ctas {
		if d.nextCTA < d.totalCTAs {
			d.launch(slot, cycle)
		}
	}
	resident := 0
	for _, c := range d.ctas {
		if c.id >= 0 {
			resident++
		}
	}
	d.c.MaxResidentThreads = resident * d.warpsPer * isa.WarpSize
}

// launch populates a CTA slot with the next grid CTA; its warps wake at
// the given cycle.
func (d *Dispatcher) launch(slot int, cycle int64) {
	c := &d.ctas[slot]
	c.id = d.nextCTA
	d.nextCTA++
	c.liveWarps = d.warpsPer
	c.barWaits = 0
	for i, wIdx := range c.warps {
		w := &d.warps[wIdx]
		*w = Warp{
			Status:  Ready,
			CTASlot: slot,
			Trace:   d.src.WarpTrace(c.id, i),
			WakeAt:  cycle,
		}
		if d.outSrc != nil {
			w.Outcomes = d.outSrc.WarpOutcomes(c.id, i, d.design, d.aggressive)
		}
		d.liveWarps++
		d.readyMask |= 1 << uint(wIdx)
	}
	d.c.ThreadsRun += int64(d.warpsPer) * isa.WarpSize
}

// Done reports whether every warp of the grid has exited.
func (d *Dispatcher) Done() bool { return d.liveWarps == 0 }

// LiveWarps returns the number of warps not yet exited.
func (d *Dispatcher) LiveWarps() int { return d.liveWarps }

// NumWarps returns the number of warp slots (the sched.Pool view).
func (d *Dispatcher) NumWarps() int { return len(d.warps) }

// Warp returns the warp at slot i for direct state access.
func (d *Dispatcher) Warp(i int) *Warp { return &d.warps[i] }

// ReadyAt reports whether warp w awaits promotion and its wake cycle
// (the sched.Pool view).
func (d *Dispatcher) ReadyAt(w int) (int64, bool) {
	if d.warps[w].Status != Ready {
		return 0, false
	}
	return d.warps[w].WakeAt, true
}

// MinReady returns the Ready warp with the oldest wake cycle at or
// before now, lowest slot index breaking ties — the promotion rule of
// the two-level scheduler (the sched.Pool view). It walks only the
// ready warps via the ready bitmask.
func (d *Dispatcher) MinReady(now int64) (w int, ok bool) {
	best, bestWake := -1, int64(0)
	for m := d.readyMask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if wake := d.warps[i].WakeAt; wake <= now && (best < 0 || wake < bestWake) {
			best, bestWake = i, wake
		}
	}
	return best, best >= 0
}

// MinFutureWake returns the earliest wake cycle strictly after now among
// Ready warps, or int64(1)<<62 when there is none — the timing core's
// next-event candidate for warp wake-ups.
func (d *Dispatcher) MinFutureWake(now int64) int64 {
	min := int64(1) << 62
	for m := d.readyMask; m != 0; m &= m - 1 {
		if wake := d.warps[bits.TrailingZeros64(m)].WakeAt; wake > now && wake < min {
			min = wake
		}
	}
	return min
}

// Activate marks warp w as entering the scheduler's active set (the
// sched.Pool view).
func (d *Dispatcher) Activate(w int) {
	d.warps[w].Status = Active
	d.readyMask &^= 1 << uint(w)
}

// Park returns an active warp to the Ready state to wait out a
// long-latency dependence, eligible for promotion again at wake (the
// two-level scheduler's deschedule rule). The caller removes the warp
// from the active set.
func (d *Dispatcher) Park(w int, wake int64) {
	d.warps[w].Status = Ready
	d.warps[w].WakeAt = wake
	d.readyMask |= 1 << uint(w)
}

// Barrier blocks warp wIdx at its CTA barrier (advancing its PC past the
// BAR instruction); when it is the last live warp to arrive, the whole
// CTA is released to wake at now+1. The caller removes the warp from the
// active set.
func (d *Dispatcher) Barrier(wIdx int, now int64) {
	w := &d.warps[wIdx]
	c := &d.ctas[w.CTASlot]
	w.PC++
	w.Status = Barrier
	c.barWaits++
	if c.barWaits >= c.liveWarps {
		c.barWaits = 0
		d.release(c, now)
	}
}

// release wakes every barrier-blocked warp of the CTA.
func (d *Dispatcher) release(c *ctaSlot, now int64) {
	for _, idx := range c.warps {
		ww := &d.warps[idx]
		if ww.Status == Barrier {
			ww.Status = Ready
			ww.WakeAt = now + 1
			d.readyMask |= 1 << uint(idx)
		}
	}
}

// Exit retires warp wIdx and, when its CTA drains, launches the next grid
// CTA into the freed slot. An exiting warp may also be the last one
// holding up a barrier (warps that exit early release their CTA-mates).
// The caller removes the warp from the active set.
func (d *Dispatcher) Exit(wIdx int, now int64) {
	w := &d.warps[wIdx]
	c := &d.ctas[w.CTASlot]
	w.Status = Done
	w.Trace = nil
	w.Outcomes = nil
	d.liveWarps--
	c.liveWarps--
	if c.liveWarps == 0 {
		d.c.CTAsRetired++
		slot := w.CTASlot
		c.id = -1
		if d.nextCTA < d.totalCTAs {
			d.launch(slot, now)
		}
	} else if c.barWaits >= c.liveWarps && c.barWaits > 0 {
		c.barWaits = 0
		d.release(c, now)
	}
}

// Counts returns the number of warps blocked at a barrier and the number
// awaiting promotion, for the stall classifier.
func (d *Dispatcher) Counts() (barrier, ready int) {
	for i := range d.warps {
		switch d.warps[i].Status {
		case Barrier:
			barrier++
		case Ready:
			ready++
		}
	}
	return barrier, ready
}
