// Package dispatch owns the SM's work-distribution bookkeeping: CTA
// slots, warp launch and retirement, and CTA barriers. It is the layer
// between the trace source (which supplies the kernel grid) and the
// scheduler/timing core (which consume warp state).
//
// The Dispatcher holds the canonical warp array. Warp fields the timing
// core mutates on every issue (PC, scoreboard, issue serialization) are
// exported on Warp so the hot path stays direct; lifecycle transitions —
// launch, barrier arrival and release, exit, CTA rotation — go through
// Dispatcher methods so the invariants (live-warp counts, barrier
// arrival counts, early-exit barrier release) live in one place.
//
// Dispatcher implements the scheduler's Pool interface (NumWarps /
// ReadyAt / Activate), which is the only coupling between the two
// components.
package dispatch

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/stats"
)

// TraceSource supplies the kernel grid to execute.
type TraceSource interface {
	// Grid returns the total number of CTAs and the warps per CTA.
	Grid() (ctas, warpsPerCTA int)
	// WarpTrace generates the instruction trace of one warp. It is
	// called once per warp, when the warp's CTA is launched.
	WarpTrace(cta, warp int) []isa.WarpInst
}

// Status is a warp's lifecycle state.
type Status uint8

const (
	// Idle: the slot is unoccupied.
	Idle Status = iota
	// Ready: eligible for the active set at WakeAt.
	Ready
	// Active: in the scheduler's active set.
	Active
	// Barrier: blocked at a CTA barrier.
	Barrier
	// Done: exited.
	Done
)

// Warp is one warp slot. The scheduler and timing core identify warps by
// their slot index in the Dispatcher.
type Warp struct {
	Status  Status
	CTASlot int
	Trace   []isa.WarpInst
	PC      int
	// NextIssue serializes the warp's own issue stream while the
	// bank-conflict extra cycles of its previous instruction elapse.
	NextIssue int64
	// WakeAt is the cycle a Ready warp becomes eligible for promotion.
	WakeAt int64
	// RegReady is the per-register scoreboard: the cycle each
	// architectural register's pending value arrives.
	RegReady [isa.MaxRegs]int64
	// ArbStall records that the warp's pending issue serialization came
	// from an arbitration conflict, for the observability layer's stall
	// attribution. Timing never reads it.
	ArbStall bool
}

// ctaSlot tracks one resident CTA.
type ctaSlot struct {
	id        int // grid CTA index, -1 if empty
	liveWarps int
	barWaits  int
	warps     []int // warp slot indices
}

// Dispatcher launches the grid's CTAs into resident slots, rotates new
// CTAs in as old ones drain, and resolves barriers.
type Dispatcher struct {
	src TraceSource
	c   *stats.Counters

	warps []Warp
	ctas  []ctaSlot

	nextCTA   int // next grid CTA to launch
	totalCTAs int
	warpsPer  int
	liveWarps int
}

// New builds a dispatcher for the grid of src with residentCTAs
// concurrent CTA slots. Launch and retirement events are filed into c.
func New(src TraceSource, residentCTAs int, c *stats.Counters) (*Dispatcher, error) {
	totalCTAs, warpsPer := src.Grid()
	if residentCTAs < 1 {
		return nil, fmt.Errorf("dispatch: need at least one resident CTA")
	}
	if warpsPer < 1 {
		return nil, fmt.Errorf("dispatch: kernel has no warps per CTA")
	}
	if residentCTAs*warpsPer > config.MaxWarpsPerSM {
		return nil, fmt.Errorf("dispatch: %d resident CTAs of %d warps exceed the %d-warp SM limit",
			residentCTAs, warpsPer, config.MaxWarpsPerSM)
	}
	d := &Dispatcher{
		src:       src,
		c:         c,
		warps:     make([]Warp, residentCTAs*warpsPer),
		ctas:      make([]ctaSlot, residentCTAs),
		totalCTAs: totalCTAs,
		warpsPer:  warpsPer,
	}
	for i := range d.ctas {
		d.ctas[i].id = -1
		d.ctas[i].warps = make([]int, warpsPer)
		for w := 0; w < warpsPer; w++ {
			d.ctas[i].warps[w] = i*warpsPer + w
		}
	}
	return d, nil
}

// Start launches the initial resident CTAs at the given cycle and records
// the resident-thread high-water mark.
func (d *Dispatcher) Start(cycle int64) {
	for slot := range d.ctas {
		if d.nextCTA < d.totalCTAs {
			d.launch(slot, cycle)
		}
	}
	resident := 0
	for _, c := range d.ctas {
		if c.id >= 0 {
			resident++
		}
	}
	d.c.MaxResidentThreads = resident * d.warpsPer * isa.WarpSize
}

// launch populates a CTA slot with the next grid CTA; its warps wake at
// the given cycle.
func (d *Dispatcher) launch(slot int, cycle int64) {
	c := &d.ctas[slot]
	c.id = d.nextCTA
	d.nextCTA++
	c.liveWarps = d.warpsPer
	c.barWaits = 0
	for i, wIdx := range c.warps {
		w := &d.warps[wIdx]
		*w = Warp{
			Status:  Ready,
			CTASlot: slot,
			Trace:   d.src.WarpTrace(c.id, i),
			WakeAt:  cycle,
		}
		d.liveWarps++
	}
	d.c.ThreadsRun += int64(d.warpsPer) * isa.WarpSize
}

// Done reports whether every warp of the grid has exited.
func (d *Dispatcher) Done() bool { return d.liveWarps == 0 }

// LiveWarps returns the number of warps not yet exited.
func (d *Dispatcher) LiveWarps() int { return d.liveWarps }

// NumWarps returns the number of warp slots (the sched.Pool view).
func (d *Dispatcher) NumWarps() int { return len(d.warps) }

// Warp returns the warp at slot i for direct state access.
func (d *Dispatcher) Warp(i int) *Warp { return &d.warps[i] }

// ReadyAt reports whether warp w awaits promotion and its wake cycle
// (the sched.Pool view).
func (d *Dispatcher) ReadyAt(w int) (int64, bool) {
	if d.warps[w].Status != Ready {
		return 0, false
	}
	return d.warps[w].WakeAt, true
}

// Activate marks warp w as entering the scheduler's active set (the
// sched.Pool view).
func (d *Dispatcher) Activate(w int) { d.warps[w].Status = Active }

// Barrier blocks warp wIdx at its CTA barrier (advancing its PC past the
// BAR instruction); when it is the last live warp to arrive, the whole
// CTA is released to wake at now+1. The caller removes the warp from the
// active set.
func (d *Dispatcher) Barrier(wIdx int, now int64) {
	w := &d.warps[wIdx]
	c := &d.ctas[w.CTASlot]
	w.PC++
	w.Status = Barrier
	c.barWaits++
	if c.barWaits >= c.liveWarps {
		c.barWaits = 0
		d.release(c, now)
	}
}

// release wakes every barrier-blocked warp of the CTA.
func (d *Dispatcher) release(c *ctaSlot, now int64) {
	for _, idx := range c.warps {
		ww := &d.warps[idx]
		if ww.Status == Barrier {
			ww.Status = Ready
			ww.WakeAt = now + 1
		}
	}
}

// Exit retires warp wIdx and, when its CTA drains, launches the next grid
// CTA into the freed slot. An exiting warp may also be the last one
// holding up a barrier (warps that exit early release their CTA-mates).
// The caller removes the warp from the active set.
func (d *Dispatcher) Exit(wIdx int, now int64) {
	w := &d.warps[wIdx]
	c := &d.ctas[w.CTASlot]
	w.Status = Done
	w.Trace = nil
	d.liveWarps--
	c.liveWarps--
	if c.liveWarps == 0 {
		d.c.CTAsRetired++
		slot := w.CTASlot
		c.id = -1
		if d.nextCTA < d.totalCTAs {
			d.launch(slot, now)
		}
	} else if c.barWaits >= c.liveWarps && c.barWaits > 0 {
		c.barWaits = 0
		d.release(c, now)
	}
}

// Counts returns the number of warps blocked at a barrier and the number
// awaiting promotion, for the stall classifier.
func (d *Dispatcher) Counts() (barrier, ready int) {
	for i := range d.warps {
		switch d.warps[i].Status {
		case Barrier:
			barrier++
		case Ready:
			ready++
		}
	}
	return barrier, ready
}
