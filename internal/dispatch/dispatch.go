// Package dispatch owns the SM's work-distribution bookkeeping: CTA
// slots, warp launch and retirement, and CTA barriers. It is the layer
// between the trace source (which supplies the kernel grid) and the
// scheduler/timing core (which consume warp state).
//
// The Dispatcher holds the canonical warp array. Warp fields the timing
// core mutates on every issue (PC, scoreboard, issue serialization) are
// exported on Warp so the hot path stays direct; lifecycle transitions —
// launch, barrier arrival and release, exit, CTA rotation — go through
// Dispatcher methods so the invariants (live-warp counts, barrier
// arrival counts, early-exit barrier release) live in one place.
//
// Dispatcher implements the scheduler's Pool interface (NumWarps /
// ReadyAt / Activate), which is the only coupling between the two
// components.
package dispatch

import (
	"fmt"
	"math/bits"

	"repro/internal/banks"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/stats"
)

// TraceSource supplies the kernel grid to execute.
type TraceSource interface {
	// Grid returns the total number of CTAs and the warps per CTA.
	Grid() (ctas, warpsPerCTA int)
	// WarpTrace generates the instruction trace of one warp. It is
	// called once per warp, when the warp's CTA is launched. Returned
	// traces may be shared and must be treated as immutable.
	WarpTrace(cta, warp int) []isa.WarpInst
}

// OutcomeSource is an optional TraceSource extension: a source that can
// additionally supply the precomputed bank-conflict outcome of every
// instruction under a given bank-model variant (the trace cache in
// internal/workloads memoizes these). The slice must be index-aligned
// with the warp's trace and immutable.
type OutcomeSource interface {
	TraceSource
	WarpOutcomes(cta, warp int, design config.Design, aggressive bool) []banks.Outcome
}

// Status is a warp's lifecycle state.
type Status uint8

const (
	// Idle: the slot is unoccupied.
	Idle Status = iota
	// Ready: eligible for the active set at WakeAt.
	Ready
	// Active: in the scheduler's active set.
	Active
	// Barrier: blocked at a CTA barrier.
	Barrier
	// Done: exited.
	Done
)

// Warp is one warp slot. The scheduler and timing core identify warps by
// their slot index in the Dispatcher.
type Warp struct {
	Status  Status
	CTASlot int
	Trace   []isa.WarpInst
	// Outcomes, when non-nil, holds the precomputed bank-conflict
	// outcome of each Trace instruction for the SM's bank-model variant
	// (see OutcomeSource); the timing core then skips the per-issue
	// conflict evaluation. Probed runs leave it unused.
	Outcomes []banks.Outcome
	PC       int
	// NextIssue serializes the warp's own issue stream while the
	// bank-conflict extra cycles of its previous instruction elapse.
	NextIssue int64
	// WakeAt is the cycle a Ready warp becomes eligible for promotion.
	WakeAt int64
	// RegReady is the per-register scoreboard: the cycle each
	// architectural register's pending value arrives.
	RegReady [isa.MaxRegs]int64
	// ArbStall records that the warp's pending issue serialization came
	// from an arbitration conflict, for the observability layer's stall
	// attribution. Timing never reads it.
	ArbStall bool
}

// ctaSlot tracks one resident CTA.
type ctaSlot struct {
	id        int // grid CTA index, -1 if empty
	stream    int // owning stream (kernel) index
	liveWarps int
	barWaits  int
	warps     []int // warp slot indices
}

// StreamSpec describes one co-resident kernel (stream) of a
// multi-stream dispatcher: its grid source and the number of CTA slots
// it holds resident.
type StreamSpec struct {
	// Source supplies the stream's kernel grid.
	Source TraceSource
	// ResidentCTAs is the number of CTA slots reserved for this stream.
	ResidentCTAs int
}

// streamState is one stream's launch bookkeeping.
type streamState struct {
	src TraceSource
	// outSrc mirrors Dispatcher.outSrc per stream (each stream has its
	// own trace source and therefore its own outcome memoization).
	outSrc    OutcomeSource
	nextCTA   int // next grid CTA of this stream to launch
	totalCTAs int
	warpsPer  int
	liveWarps int
	// doneAt is the cycle the stream's last warp exited with no grid
	// CTAs left, -1 while the stream still has work — the stream's own
	// completion time under co-residency.
	doneAt int64
	// mask selects the warp slots owned by this stream's CTA slots.
	mask uint64
	// c, when non-nil, receives this stream's share of the launch and
	// retirement events (ThreadsRun, CTAsRetired, MaxResidentThreads);
	// the aggregate counters are always charged as well.
	c *stats.Counters
}

// Dispatcher launches the grid's CTAs into resident slots, rotates new
// CTAs in as old ones drain, and resolves barriers. A multi-stream
// dispatcher (NewMulti) hosts several kernels at once: each CTA slot is
// pinned to one stream, slots are interleaved round-robin across
// streams, and a drained slot relaunches the next CTA of its own
// stream.
type Dispatcher struct {
	c *stats.Counters

	design     config.Design
	aggressive bool

	streams []streamState

	warps []Warp
	// streamOf maps each warp slot to its owning stream index; the
	// mapping is structural (slots never change streams).
	streamOf []int
	ctas     []ctaSlot

	liveWarps int
	// readyMask has bit w set iff warp slot w is in the Ready state, so
	// the scheduler's refill and the timing core's wake scan walk only
	// the ready warps (usually none, on a busy SM) instead of every
	// slot. MaxWarpsPerSM <= 64 keeps every slot in one word (checked
	// at compile time below).
	readyMask uint64
}

// readyMask must cover every possible warp slot.
var _ [64 - config.MaxWarpsPerSM]struct{}

// New builds a dispatcher for the grid of src with residentCTAs
// concurrent CTA slots. Launch and retirement events are filed into c.
func New(src TraceSource, residentCTAs int, c *stats.Counters) (*Dispatcher, error) {
	_, warpsPer := src.Grid()
	if residentCTAs < 1 {
		return nil, fmt.Errorf("dispatch: need at least one resident CTA")
	}
	if warpsPer < 1 {
		return nil, fmt.Errorf("dispatch: kernel has no warps per CTA")
	}
	if residentCTAs*warpsPer > config.MaxWarpsPerSM {
		return nil, fmt.Errorf("dispatch: %d resident CTAs of %d warps exceed the %d-warp SM limit",
			residentCTAs, warpsPer, config.MaxWarpsPerSM)
	}
	return NewMulti([]StreamSpec{{Source: src, ResidentCTAs: residentCTAs}}, c, nil)
}

// NewMulti builds a dispatcher hosting the given streams concurrently.
// CTA slots are interleaved round-robin across streams (stream 0's
// first slot, stream 1's first slot, ..., stream 0's second slot, ...),
// so slot — and therefore warp — indices alternate between streams and
// index-based tie-breaks (MinReady) stay fair. With one stream the
// layout is identical to New's. streamCounters, when non-nil, supplies
// one per-stream counter set charged alongside the aggregate c.
func NewMulti(specs []StreamSpec, c *stats.Counters, streamCounters []*stats.Counters) (*Dispatcher, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("dispatch: need at least one stream")
	}
	if streamCounters != nil && len(streamCounters) != len(specs) {
		return nil, fmt.Errorf("dispatch: %d stream counter sets for %d streams", len(streamCounters), len(specs))
	}
	d := &Dispatcher{c: c, streams: make([]streamState, len(specs))}
	totalWarps, maxResident := 0, 0
	for i, sp := range specs {
		if sp.Source == nil {
			return nil, fmt.Errorf("dispatch: stream %d has no trace source", i)
		}
		if sp.ResidentCTAs < 1 {
			return nil, fmt.Errorf("dispatch: stream %d needs at least one resident CTA", i)
		}
		totalCTAs, warpsPer := sp.Source.Grid()
		if warpsPer < 1 {
			return nil, fmt.Errorf("dispatch: stream %d has no warps per CTA", i)
		}
		st := &d.streams[i]
		st.src = sp.Source
		st.totalCTAs = totalCTAs
		st.warpsPer = warpsPer
		st.doneAt = -1
		if streamCounters != nil {
			st.c = streamCounters[i]
		}
		totalWarps += sp.ResidentCTAs * warpsPer
		if sp.ResidentCTAs > maxResident {
			maxResident = sp.ResidentCTAs
		}
	}
	if totalWarps > config.MaxWarpsPerSM {
		return nil, fmt.Errorf("dispatch: %d streams need %d warp slots, exceeding the %d-warp SM limit",
			len(specs), totalWarps, config.MaxWarpsPerSM)
	}
	d.warps = make([]Warp, totalWarps)
	d.streamOf = make([]int, totalWarps)
	base := 0
	for round := 0; round < maxResident; round++ {
		for s, sp := range specs {
			if round >= sp.ResidentCTAs {
				continue
			}
			warpsPer := d.streams[s].warpsPer
			slot := ctaSlot{id: -1, stream: s, warps: make([]int, warpsPer)}
			for w := 0; w < warpsPer; w++ {
				slot.warps[w] = base + w
				d.streamOf[base+w] = s
				d.streams[s].mask |= 1 << uint(base+w)
			}
			base += warpsPer
			d.ctas = append(d.ctas, slot)
		}
	}
	return d, nil
}

// EnableOutcomes requests precomputed bank outcomes for every launched
// warp under the given bank-model variant. It reports whether every
// stream's trace source supports them; it must be called before Start.
func (d *Dispatcher) EnableOutcomes(design config.Design, aggressive bool) bool {
	for i := range d.streams {
		src, ok := d.streams[i].src.(OutcomeSource)
		if !ok {
			for j := 0; j < i; j++ {
				d.streams[j].outSrc = nil
			}
			return false
		}
		d.streams[i].outSrc = src
	}
	d.design, d.aggressive = design, aggressive
	return true
}

// Start launches the initial resident CTAs at the given cycle and records
// the resident-thread high-water mark (aggregate and per stream).
func (d *Dispatcher) Start(cycle int64) {
	for slot := range d.ctas {
		st := &d.streams[d.ctas[slot].stream]
		if st.nextCTA < st.totalCTAs {
			d.launch(slot, cycle)
		}
	}
	resident := 0
	for i := range d.ctas {
		c := &d.ctas[i]
		if c.id < 0 {
			continue
		}
		threads := len(c.warps) * isa.WarpSize
		resident += threads
		if sc := d.streams[c.stream].c; sc != nil {
			sc.MaxResidentThreads += threads
		}
	}
	d.c.MaxResidentThreads = resident
	// A stream with an empty grid is complete before it begins.
	for i := range d.streams {
		st := &d.streams[i]
		if st.liveWarps == 0 && st.nextCTA >= st.totalCTAs && st.doneAt < 0 {
			st.doneAt = cycle
		}
	}
}

// launch populates a CTA slot with its stream's next grid CTA; the
// warps wake at the given cycle.
func (d *Dispatcher) launch(slot int, cycle int64) {
	c := &d.ctas[slot]
	st := &d.streams[c.stream]
	c.id = st.nextCTA
	st.nextCTA++
	c.liveWarps = st.warpsPer
	c.barWaits = 0
	for i, wIdx := range c.warps {
		w := &d.warps[wIdx]
		*w = Warp{
			Status:  Ready,
			CTASlot: slot,
			Trace:   st.src.WarpTrace(c.id, i),
			WakeAt:  cycle,
		}
		if st.outSrc != nil {
			w.Outcomes = st.outSrc.WarpOutcomes(c.id, i, d.design, d.aggressive)
		}
		d.liveWarps++
		st.liveWarps++
		d.readyMask |= 1 << uint(wIdx)
	}
	launched := int64(st.warpsPer) * isa.WarpSize
	d.c.ThreadsRun += launched
	if st.c != nil {
		st.c.ThreadsRun += launched
	}
}

// Done reports whether every warp of the grid has exited.
func (d *Dispatcher) Done() bool { return d.liveWarps == 0 }

// LiveWarps returns the number of warps not yet exited.
func (d *Dispatcher) LiveWarps() int { return d.liveWarps }

// NumWarps returns the number of warp slots (the sched.Pool view).
func (d *Dispatcher) NumWarps() int { return len(d.warps) }

// Warp returns the warp at slot i for direct state access.
func (d *Dispatcher) Warp(i int) *Warp { return &d.warps[i] }

// ReadyAt reports whether warp w awaits promotion and its wake cycle
// (the sched.Pool view).
func (d *Dispatcher) ReadyAt(w int) (int64, bool) {
	if d.warps[w].Status != Ready {
		return 0, false
	}
	return d.warps[w].WakeAt, true
}

// MinReady returns the Ready warp with the oldest wake cycle at or
// before now, lowest slot index breaking ties — the promotion rule of
// the two-level scheduler (the sched.Pool view). It walks only the
// ready warps via the ready bitmask.
func (d *Dispatcher) MinReady(now int64) (w int, ok bool) {
	best, bestWake := -1, int64(0)
	for m := d.readyMask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if wake := d.warps[i].WakeAt; wake <= now && (best < 0 || wake < bestWake) {
			best, bestWake = i, wake
		}
	}
	return best, best >= 0
}

// MinFutureWake returns the earliest wake cycle strictly after now among
// Ready warps, or int64(1)<<62 when there is none — the timing core's
// next-event candidate for warp wake-ups.
func (d *Dispatcher) MinFutureWake(now int64) int64 {
	min := int64(1) << 62
	for m := d.readyMask; m != 0; m &= m - 1 {
		if wake := d.warps[bits.TrailingZeros64(m)].WakeAt; wake > now && wake < min {
			min = wake
		}
	}
	return min
}

// Activate marks warp w as entering the scheduler's active set (the
// sched.Pool view).
func (d *Dispatcher) Activate(w int) {
	d.warps[w].Status = Active
	d.readyMask &^= 1 << uint(w)
}

// Park returns an active warp to the Ready state to wait out a
// long-latency dependence, eligible for promotion again at wake (the
// two-level scheduler's deschedule rule). The caller removes the warp
// from the active set.
func (d *Dispatcher) Park(w int, wake int64) {
	d.warps[w].Status = Ready
	d.warps[w].WakeAt = wake
	d.readyMask |= 1 << uint(w)
}

// Barrier blocks warp wIdx at its CTA barrier (advancing its PC past the
// BAR instruction); when it is the last live warp to arrive, the whole
// CTA is released to wake at now+1. The caller removes the warp from the
// active set.
func (d *Dispatcher) Barrier(wIdx int, now int64) {
	w := &d.warps[wIdx]
	c := &d.ctas[w.CTASlot]
	w.PC++
	w.Status = Barrier
	c.barWaits++
	if c.barWaits >= c.liveWarps {
		c.barWaits = 0
		d.release(c, now)
	}
}

// release wakes every barrier-blocked warp of the CTA.
func (d *Dispatcher) release(c *ctaSlot, now int64) {
	for _, idx := range c.warps {
		ww := &d.warps[idx]
		if ww.Status == Barrier {
			ww.Status = Ready
			ww.WakeAt = now + 1
			d.readyMask |= 1 << uint(idx)
		}
	}
}

// Exit retires warp wIdx and, when its CTA drains, launches its
// stream's next grid CTA into the freed slot. An exiting warp may also
// be the last one holding up a barrier (warps that exit early release
// their CTA-mates). The caller removes the warp from the active set.
func (d *Dispatcher) Exit(wIdx int, now int64) {
	w := &d.warps[wIdx]
	c := &d.ctas[w.CTASlot]
	st := &d.streams[c.stream]
	w.Status = Done
	w.Trace = nil
	w.Outcomes = nil
	d.liveWarps--
	st.liveWarps--
	c.liveWarps--
	if c.liveWarps == 0 {
		d.c.CTAsRetired++
		if st.c != nil {
			st.c.CTAsRetired++
		}
		slot := w.CTASlot
		c.id = -1
		if st.nextCTA < st.totalCTAs {
			d.launch(slot, now)
		}
	} else if c.barWaits >= c.liveWarps && c.barWaits > 0 {
		c.barWaits = 0
		d.release(c, now)
	}
	if st.liveWarps == 0 && st.nextCTA >= st.totalCTAs && st.doneAt < 0 {
		st.doneAt = now
	}
}

// NumStreams returns the number of co-resident streams (the
// sched.StreamPool view); it is 1 for dispatchers built with New.
func (d *Dispatcher) NumStreams() int { return len(d.streams) }

// Stream returns the stream index owning warp slot w (the
// sched.StreamPool view). The mapping is structural and never changes.
func (d *Dispatcher) Stream(w int) int { return d.streamOf[w] }

// MinReadyOf is MinReady restricted to one stream's warp slots (the
// sched.StreamPool view): the stream's Ready warp with the oldest wake
// at or before now, lowest slot index breaking ties.
func (d *Dispatcher) MinReadyOf(now int64, stream int) (w int, ok bool) {
	best, bestWake := -1, int64(0)
	for m := d.readyMask & d.streams[stream].mask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if wake := d.warps[i].WakeAt; wake <= now && (best < 0 || wake < bestWake) {
			best, bestWake = i, wake
		}
	}
	return best, best >= 0
}

// StreamDoneAt returns the cycle a stream's last warp exited (its
// completion time under co-residency), or -1 while it still has live
// warps or unlaunched CTAs.
func (d *Dispatcher) StreamDoneAt(stream int) int64 { return d.streams[stream].doneAt }

// Counts returns the number of warps blocked at a barrier and the number
// awaiting promotion, for the stall classifier.
func (d *Dispatcher) Counts() (barrier, ready int) {
	for i := range d.warps {
		switch d.warps[i].Status {
		case Barrier:
			barrier++
		case Ready:
			ready++
		}
	}
	return barrier, ready
}
