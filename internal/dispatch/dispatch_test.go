package dispatch

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/stats"
)

// fakeSource is a TraceSource for a grid of ctas x warpsPer warps, each
// warp running a trivial two-instruction trace.
type fakeSource struct {
	ctas, warpsPer int
	traced         [][2]int // (cta, warp) pairs WarpTrace was asked for
}

func (s *fakeSource) Grid() (int, int) { return s.ctas, s.warpsPer }

func (s *fakeSource) WarpTrace(cta, warp int) []isa.WarpInst {
	s.traced = append(s.traced, [2]int{cta, warp})
	return []isa.WarpInst{
		{Op: isa.OpALU, Mask: isa.FullMask},
		{Op: isa.OpEXIT, Mask: isa.FullMask},
	}
}

func newDisp(t *testing.T, ctas, warpsPer, resident int) (*Dispatcher, *fakeSource, *stats.Counters) {
	t.Helper()
	src := &fakeSource{ctas: ctas, warpsPer: warpsPer}
	c := &stats.Counters{}
	d, err := New(src, resident, c)
	if err != nil {
		t.Fatal(err)
	}
	return d, src, c
}

func TestNewValidation(t *testing.T) {
	c := &stats.Counters{}
	if _, err := New(&fakeSource{ctas: 1, warpsPer: 2}, 0, c); err == nil {
		t.Error("resident CTAs < 1 should fail")
	}
	if _, err := New(&fakeSource{ctas: 1, warpsPer: 0}, 2, c); err == nil {
		t.Error("zero warps per CTA should fail")
	}
	over := config.MaxWarpsPerSM + 1
	if _, err := New(&fakeSource{ctas: 1, warpsPer: over}, 1, c); err == nil {
		t.Error("oversubscribing the SM warp limit should fail")
	}
}

func TestStartLaunchesResidentCTAs(t *testing.T) {
	// Grid of 3 CTAs x 2 warps, 2 resident slots: Start launches CTAs 0
	// and 1, traces all four of their warps, and records the resident
	// thread high-water mark.
	d, src, c := newDisp(t, 3, 2, 2)
	d.Start(7)

	if d.LiveWarps() != 4 || d.Done() {
		t.Fatalf("LiveWarps = %d, Done = %v after Start; want 4, false", d.LiveWarps(), d.Done())
	}
	if want := [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}; len(src.traced) != 4 {
		t.Errorf("traced %v, want %v", src.traced, want)
	}
	if c.MaxResidentThreads != 2*2*isa.WarpSize {
		t.Errorf("MaxResidentThreads = %d, want %d", c.MaxResidentThreads, 2*2*isa.WarpSize)
	}
	if c.ThreadsRun != int64(2*2*isa.WarpSize) {
		t.Errorf("ThreadsRun = %d, want %d", c.ThreadsRun, 2*2*isa.WarpSize)
	}
	for i := 0; i < d.NumWarps(); i++ {
		wake, ok := d.ReadyAt(i)
		if !ok || wake != 7 {
			t.Errorf("warp %d ReadyAt = %d, %v; want 7, true", i, wake, ok)
		}
	}
	// Activation removes a warp from the ready pool.
	d.Activate(0)
	if _, ok := d.ReadyAt(0); ok {
		t.Error("activated warp still reports ready")
	}
}

func TestExitRotatesNextCTA(t *testing.T) {
	d, src, c := newDisp(t, 3, 2, 2)
	d.Start(0)

	// Retire CTA 0's warps (slots 0 and 1): the slot is refilled with grid
	// CTA 2, whose warps wake at the retirement cycle.
	d.Exit(0, 50)
	if c.CTAsRetired != 0 {
		t.Fatalf("CTAsRetired = %d before the CTA drained, want 0", c.CTAsRetired)
	}
	d.Exit(1, 60)
	if c.CTAsRetired != 1 {
		t.Errorf("CTAsRetired = %d, want 1", c.CTAsRetired)
	}
	if got := src.traced[len(src.traced)-1]; got != [2]int{2, 1} {
		t.Errorf("last traced warp = %v, want CTA 2 warp 1", got)
	}
	if wake, ok := d.ReadyAt(0); !ok || wake != 60 {
		t.Errorf("rotated warp 0 ReadyAt = %d, %v; want 60, true", wake, ok)
	}
	if d.LiveWarps() != 4 {
		t.Errorf("LiveWarps = %d after rotation, want 4", d.LiveWarps())
	}

	// Drain everything: grid exhausted, no further launches.
	for i := 0; i < 4; i++ {
		d.Exit(i, 100)
	}
	if !d.Done() || d.LiveWarps() != 0 {
		t.Errorf("Done = %v, LiveWarps = %d after draining the grid; want true, 0", d.Done(), d.LiveWarps())
	}
	if c.CTAsRetired != 3 {
		t.Errorf("CTAsRetired = %d, want 3", c.CTAsRetired)
	}
	if c.ThreadsRun != int64(3*2*isa.WarpSize) {
		t.Errorf("ThreadsRun = %d, want all 3 CTAs launched", c.ThreadsRun)
	}
}

func TestBarrierReleasesOnLastArrival(t *testing.T) {
	d, _, _ := newDisp(t, 1, 3, 1)
	d.Start(0)
	for i := 0; i < 3; i++ {
		d.Activate(i)
	}

	d.Barrier(0, 10)
	d.Barrier(1, 11)
	if bar, _ := d.Counts(); bar != 2 {
		t.Fatalf("barrier count = %d after two arrivals, want 2", bar)
	}
	if _, ok := d.ReadyAt(0); ok {
		t.Fatal("barrier-blocked warp reports ready before release")
	}

	// Last arrival releases the whole CTA at now+1 with PCs advanced past
	// the BAR instruction.
	d.Barrier(2, 12)
	bar, ready := d.Counts()
	if bar != 0 || ready != 3 {
		t.Fatalf("Counts = (%d barrier, %d ready) after release, want (0, 3)", bar, ready)
	}
	for i := 0; i < 3; i++ {
		if wake, ok := d.ReadyAt(i); !ok || wake != 13 {
			t.Errorf("warp %d ReadyAt = %d, %v; want 13, true", i, wake, ok)
		}
		if d.Warp(i).PC != 1 {
			t.Errorf("warp %d PC = %d, want 1 (advanced past BAR)", i, d.Warp(i).PC)
		}
	}
}

func TestEarlyExitReleasesBarrier(t *testing.T) {
	// Two warps wait at a barrier while the third exits instead of
	// arriving: the exit must release its CTA-mates or they deadlock.
	d, _, _ := newDisp(t, 1, 3, 1)
	d.Start(0)
	for i := 0; i < 3; i++ {
		d.Activate(i)
	}

	d.Barrier(0, 10)
	d.Barrier(1, 11)
	d.Exit(2, 20)

	bar, ready := d.Counts()
	if bar != 0 || ready != 2 {
		t.Fatalf("Counts = (%d barrier, %d ready) after early exit, want (0, 2)", bar, ready)
	}
	for i := 0; i < 2; i++ {
		if wake, ok := d.ReadyAt(i); !ok || wake != 21 {
			t.Errorf("warp %d ReadyAt = %d, %v; want 21, true", i, wake, ok)
		}
	}
	if d.LiveWarps() != 2 {
		t.Errorf("LiveWarps = %d, want 2", d.LiveWarps())
	}
}
