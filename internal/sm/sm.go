// Package sm is the streaming-multiprocessor timing simulator.
//
// It models one SM of the paper's baseline GPU (Figure 1, Table 2): 32
// SIMT lanes organized as 8 four-lane clusters, a 32-entry single-issue
// in-order warp scheduler with a two-level active/inactive policy, a
// software-managed MRF/ORF/LRF register hierarchy, shared memory, a
// write-through primary data cache with a single tag port, and a
// bandwidth-limited DRAM channel. Traces are supplied per warp by a
// TraceSource (internal/workloads via internal/kgen).
//
// Following the paper's Section 5.1 methodology, one SM is simulated to
// completion with its 1/32 share of chip DRAM bandwidth.
package sm

import (
	"fmt"

	"repro/internal/banks"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/probe"
	"repro/internal/stats"
)

// Params holds the timing parameters of Table 2.
type Params struct {
	ALULatency    int64
	SFULatency    int64
	SharedLatency int64
	CacheLatency  int64 // primary cache hit latency
	TexLatency    int64
	DRAM          dram.Config
	// DeschedulePast is the wait (in cycles) beyond which a dependent
	// warp is moved to the inactive set instead of busy-waiting in the
	// active set.
	DeschedulePast int64
	// ActiveWarps is the active-set size of the two-level scheduler.
	ActiveWarps int
	// AggressiveScatter selects the Section 4.2 multi-bank-per-cluster
	// scatter/gather variant of the unified design.
	AggressiveScatter bool
	// WriteBackCache replaces the paper's write-through no-write-allocate
	// cache with a write-back write-allocate one (an ablation of the
	// Section 4.3/4.4 design choice). Dirty victims cost a line writeback
	// to DRAM plus a data-array read.
	WriteBackCache bool
	// GreedyScheduler switches the active set from round-robin to
	// greedy-then-oldest (GTO): keep issuing from the same warp until it
	// stalls, then fall back to the oldest ready warp. GTO improves
	// intra-warp locality at some fairness cost.
	GreedyScheduler bool
	// MaxMSHRs bounds outstanding cache misses; a load that needs a new
	// miss entry while all are in flight stalls until one retires.
	// Zero means unbounded (the paper's model).
	MaxMSHRs int
}

// DefaultParams returns the Table 2 parameters.
func DefaultParams() Params {
	return Params{
		ALULatency:     8,
		SFULatency:     20,
		SharedLatency:  20,
		CacheLatency:   20,
		TexLatency:     400,
		DRAM:           dram.DefaultConfig(),
		DeschedulePast: 30,
		ActiveWarps:    config.ActiveWarps,
	}
}

// Memory is the DRAM system the SM issues global traffic to. A private
// single-channel dram.DRAM satisfies it for single-SM runs; the chip
// simulator injects a shared channel-interleaved system.
type Memory interface {
	// Read schedules a read and returns the data-ready cycle.
	Read(now int64, addr uint32, bytes int) int64
	// Write posts a write.
	Write(now int64, addr uint32, bytes int)
}

// TraceSource supplies the kernel grid to execute.
type TraceSource interface {
	// Grid returns the total number of CTAs and the warps per CTA.
	Grid() (ctas, warpsPerCTA int)
	// WarpTrace generates the instruction trace of one warp. It is
	// called once per warp, when the warp's CTA is launched.
	WarpTrace(cta, warp int) []isa.WarpInst
}

type warpStatus uint8

const (
	wIdle    warpStatus = iota // slot unoccupied
	wReady                     // eligible for the active set at wakeAt
	wActive                    // in the active set
	wBarrier                   // blocked at a CTA barrier
	wDone                      // exited
)

type warp struct {
	status    warpStatus
	ctaSlot   int
	trace     []isa.WarpInst
	pc        int
	nextIssue int64
	wakeAt    int64
	regReady  [isa.MaxRegs]int64
	// arbStall records that the warp's pending issue serialization
	// (nextIssue in the future) came from an arbitration conflict, for
	// the observability layer's stall attribution. Timing never reads it.
	arbStall bool
}

type ctaSlot struct {
	id        int // grid CTA index, -1 if empty
	liveWarps int
	barWaits  int
	warps     []int // warp slot indices
}

// SM is one simulated streaming multiprocessor.
type SM struct {
	params Params
	cfg    config.MemConfig
	src    TraceSource

	bankModel *banks.Model
	l1        *cache.Cache
	mem       Memory
	counters  stats.Counters
	// prof is the attached observability probe, nil when disabled.
	// Every hook call site is guarded, so a run without a probe does no
	// observability work at all, and a probed run only reads state.
	prof *probe.Probe
	// mshrBlockedUntil marks the end of the current window in which all
	// cache miss entries are in flight (MaxMSHRs reached); the stall
	// classifier attributes memory waits inside it to MSHR pressure.
	mshrBlockedUntil int64

	warps []warp
	ctas  []ctaSlot

	active []int // indices into warps
	rr     int   // round-robin cursor into active

	cycle      int64
	slotFreeAt int64 // issue slot busy until
	tagFreeAt  int64 // cache tag port busy until

	pending map[uint32]int64 // in-flight line fills: line -> data-ready cycle

	nextCTA   int // next grid CTA to launch
	totalCTAs int
	warpsPer  int
	liveWarps int
	started   bool
}

// Spec gathers everything needed to build an SM. The zero value of the
// optional fields selects the defaults: Memory nil creates a private
// single-channel DRAM system (the chip simulator injects a shared one),
// and Probe nil disables the observability layer entirely.
type Spec struct {
	// Config is the local-memory configuration.
	Config config.MemConfig
	// Params are the timing parameters (Table 2).
	Params Params
	// Source supplies the kernel grid to execute.
	Source TraceSource
	// ResidentCTAs is the number of concurrent CTA slots.
	ResidentCTAs int
	// Memory optionally injects a shared memory system.
	Memory Memory
	// Probe optionally attaches a cycle-level observability probe.
	Probe *probe.Probe
}

// New prepares an SM to run the grid of src under cfg with residentCTAs
// concurrent CTA slots, with a private single-channel DRAM system.
//
// Deprecated: use NewSM with a Spec, which also carries the optional
// memory system and observability probe.
func New(cfg config.MemConfig, params Params, src TraceSource, residentCTAs int) (*SM, error) {
	return NewSM(Spec{Config: cfg, Params: params, Source: src, ResidentCTAs: residentCTAs})
}

// NewWithMemory is New with an injected memory system (shared across SMs
// by the chip simulator). mem == nil creates a private channel.
//
// Deprecated: use NewSM with Spec.Memory set.
func NewWithMemory(cfg config.MemConfig, params Params, src TraceSource, residentCTAs int, mem Memory) (*SM, error) {
	return NewSM(Spec{Config: cfg, Params: params, Source: src, ResidentCTAs: residentCTAs, Memory: mem})
}

// NewSM builds an SM from spec.
func NewSM(spec Spec) (*SM, error) {
	if spec.Source == nil {
		return nil, fmt.Errorf("sm: Spec.Source is nil")
	}
	cfg, params := spec.Config, spec.Params
	totalCTAs, warpsPer := spec.Source.Grid()
	if spec.ResidentCTAs < 1 {
		return nil, fmt.Errorf("sm: need at least one resident CTA")
	}
	if warpsPer < 1 {
		return nil, fmt.Errorf("sm: kernel has no warps per CTA")
	}
	if spec.ResidentCTAs*warpsPer > config.MaxWarpsPerSM {
		return nil, fmt.Errorf("sm: %d resident CTAs of %d warps exceed the %d-warp SM limit",
			spec.ResidentCTAs, warpsPer, config.MaxWarpsPerSM)
	}
	if params.ActiveWarps < 1 {
		params.ActiveWarps = config.ActiveWarps
	}
	bankModel := banks.New(cfg.Design)
	if params.AggressiveScatter {
		bankModel = banks.NewAggressive(cfg.Design)
	}
	mem := spec.Memory
	if mem == nil {
		mem = dram.New(params.DRAM)
	}
	s := &SM{
		params:    params,
		cfg:       cfg,
		src:       spec.Source,
		bankModel: bankModel,
		l1:        cache.New(cfg.CacheBytes),
		mem:       mem,
		prof:      spec.Probe,
		warps:     make([]warp, spec.ResidentCTAs*warpsPer),
		ctas:      make([]ctaSlot, spec.ResidentCTAs),
		active:    make([]int, 0, params.ActiveWarps),
		pending:   make(map[uint32]int64),
		totalCTAs: totalCTAs,
		warpsPer:  warpsPer,
	}
	for i := range s.ctas {
		s.ctas[i].id = -1
		s.ctas[i].warps = make([]int, warpsPer)
		for w := 0; w < warpsPer; w++ {
			s.ctas[i].warps[w] = i*warpsPer + w
		}
	}
	return s, nil
}

// cycleBound guards against scheduler deadlock in case of a malformed
// trace (e.g. a barrier reached by only part of a CTA).
const cycleBound = int64(1) << 40

// Start launches the initial resident CTAs. It is called implicitly by
// Run; the chip simulator calls it directly before stepping.
func (s *SM) Start() { s.StartAt(0) }

// StartAt launches the initial resident CTAs at the given cycle (the chip
// simulator staggers SM start times, as the hardware work distributor's
// sequential CTA launch does).
func (s *SM) StartAt(cycle int64) {
	if s.started {
		return
	}
	s.started = true
	s.cycle = cycle
	if s.prof != nil {
		s.prof.Begin(&s.counters, cycle)
	}
	for slot := range s.ctas {
		if s.nextCTA < s.totalCTAs {
			s.launch(slot)
		}
	}
	resident := 0
	for _, c := range s.ctas {
		if c.id >= 0 {
			resident++
		}
	}
	s.counters.MaxResidentThreads = resident * s.warpsPer * isa.WarpSize
}

// Done reports whether every warp of the grid has exited.
func (s *SM) Done() bool { return s.started && s.liveWarps == 0 }

// Cycle returns the SM's local clock, used by the chip simulator to
// advance SMs in global time order.
func (s *SM) Cycle() int64 { return s.cycle }

// Step advances the SM by one scheduling action: either one instruction
// issues, or the local clock advances to the next interesting event. The
// local clock is nondecreasing across calls and strictly increases at
// least every second call.
func (s *SM) Step() error {
	if s.cycle < s.slotFreeAt {
		s.cycle = s.slotFreeAt
	}
	s.refillActive()
	issued, nextEvent := s.tryIssue()
	if issued {
		return nil
	}
	if nextEvent <= s.cycle {
		nextEvent = s.cycle + 1
	}
	if s.prof != nil {
		s.prof.Stall(s.cycle, nextEvent, s.stallReason())
	}
	s.cycle = nextEvent
	if s.cycle > cycleBound {
		return fmt.Errorf("sm: no forward progress by cycle %d (deadlocked trace?)", s.cycle)
	}
	return nil
}

// Finish finalizes and returns the counters: execution ends when the last
// warp exits AND posted tag-port work has drained.
func (s *SM) Finish() *stats.Counters {
	s.counters.Cycles = s.cycle
	if s.tagFreeAt > s.counters.Cycles {
		s.counters.Cycles = s.tagFreeAt
	}
	s.counters.DirtyLinesEnd = s.l1.DirtyLines()
	if s.prof != nil {
		s.prof.End(s.counters.Cycles)
	}
	return &s.counters
}

// stallReason classifies a failed issue attempt for the observability
// probe. Each lost slot is charged to exactly one cause, by fixed
// priority: barrier > MSHR-full > scoreboard > arbitration >
// bank-conflict > no-ready-warp. Only probed runs call this, on the
// (cold) no-issue path.
func (s *SM) stallReason() probe.StallReason {
	if len(s.active) == 0 {
		barrier, readyLater := 0, 0
		for i := range s.warps {
			switch s.warps[i].status {
			case wBarrier:
				barrier++
			case wReady:
				readyLater++
			}
		}
		if barrier > 0 && readyLater == 0 {
			return probe.StallBarrier
		}
		if s.cycle < s.mshrBlockedUntil {
			return probe.StallMSHRFull
		}
		return probe.StallNoReadyWarp
	}
	sawDep, sawSerial, sawArb := false, false, false
	for _, wIdx := range s.active {
		w := &s.warps[wIdx]
		if w.nextIssue > s.cycle {
			// The warp holds its own issue stream while bank-conflict
			// extra cycles of its previous instruction elapse.
			sawSerial = true
			if w.arbStall {
				sawArb = true
			}
			continue
		}
		// An active warp that is not serialized failed on an operand
		// dependence (long waits were descheduled out of the set).
		sawDep = true
	}
	switch {
	case s.cycle < s.mshrBlockedUntil:
		return probe.StallMSHRFull
	case sawDep:
		return probe.StallScoreboard
	case sawArb:
		return probe.StallArbitration
	case sawSerial:
		return probe.StallBankConflict
	}
	return probe.StallNoReadyWarp
}

// Run executes the grid to completion and returns the event counters.
func (s *SM) Run() (*stats.Counters, error) {
	s.Start()
	for !s.Done() {
		if err := s.Step(); err != nil {
			return nil, err
		}
	}
	return s.Finish(), nil
}

// launch populates a CTA slot with the next grid CTA.
func (s *SM) launch(slot int) {
	c := &s.ctas[slot]
	c.id = s.nextCTA
	s.nextCTA++
	c.liveWarps = s.warpsPer
	c.barWaits = 0
	for i, wIdx := range c.warps {
		w := &s.warps[wIdx]
		*w = warp{
			status:  wReady,
			ctaSlot: slot,
			trace:   s.src.WarpTrace(c.id, i),
			wakeAt:  s.cycle,
		}
		s.liveWarps++
	}
	s.counters.ThreadsRun += int64(s.warpsPer) * isa.WarpSize
}

// refillActive promotes ready warps into vacant active-set slots,
// oldest-wakeup first.
func (s *SM) refillActive() {
	for len(s.active) < s.params.ActiveWarps {
		best, bestWake := -1, int64(0)
		for i := range s.warps {
			w := &s.warps[i]
			if w.status == wReady && w.wakeAt <= s.cycle {
				if best < 0 || w.wakeAt < bestWake {
					best, bestWake = i, w.wakeAt
				}
			}
		}
		if best < 0 {
			return
		}
		s.warps[best].status = wActive
		s.active = append(s.active, best)
	}
}

// deactivate removes the active-set entry at position pos.
func (s *SM) deactivate(pos int) {
	s.active = append(s.active[:pos], s.active[pos+1:]...)
	if s.rr > pos {
		s.rr--
	}
	if len(s.active) > 0 {
		s.rr %= len(s.active)
	} else {
		s.rr = 0
	}
}

// tryIssue attempts to issue one warp instruction from the active set,
// round robin. It returns whether an instruction issued and, if not, the
// earliest future cycle at which something may become issueable.
func (s *SM) tryIssue() (bool, int64) {
	nextEvent := int64(1 << 62)
	note := func(t int64) {
		if t > s.cycle && t < nextEvent {
			nextEvent = t
		}
	}
	// Wake-ups of ready and barrier-released warps are future events.
	for i := range s.warps {
		w := &s.warps[i]
		if w.status == wReady && w.wakeAt > s.cycle {
			note(w.wakeAt)
		}
	}

	n := len(s.active)
	for k := 0; k < n; k++ {
		pos := (s.rr + k) % n
		wIdx := s.active[pos]
		w := &s.warps[wIdx]
		wi := &w.trace[w.pc]

		if w.nextIssue > s.cycle {
			note(w.nextIssue)
			continue
		}
		depReady := int64(0)
		for _, src := range wi.Srcs {
			if src.Reg != isa.NoReg {
				if t := w.regReady[src.Reg]; t > depReady {
					depReady = t
				}
			}
		}
		if depReady > s.cycle {
			if depReady-s.cycle > s.params.DeschedulePast {
				// Two-level scheduler: swap out on long-latency dependence.
				w.status = wReady
				w.wakeAt = depReady
				s.deactivate(pos)
				note(depReady)
				n = len(s.active)
				k--
				continue
			}
			note(depReady)
			continue
		}

		s.issue(pos, wIdx, wi)
		return true, 0
	}
	return false, nextEvent
}

// issue executes one warp instruction.
func (s *SM) issue(pos, wIdx int, wi *isa.WarpInst) {
	w := &s.warps[wIdx]
	out := s.bankModel.Evaluate(wi)
	if s.prof != nil {
		s.prof.Issue(s.cycle)
		acc, conf := s.prof.Heat()
		s.bankModel.HeatInto(acc, conf)
	}
	w.arbStall = out.Arbitration && out.ExtraCycles > 0
	s.counters.WarpInsts++
	s.counters.ThreadInsts += int64(wi.ActiveThreads())
	if wi.Spill {
		s.counters.SpillInsts++
	}
	s.counters.RecordConflict(out.MaxPerBank)
	if out.Arbitration {
		s.counters.ArbitrationConflicts++
	}
	s.countRegAccesses(wi)

	// Bank-conflict serialization follows the paper's §6.1 model: each
	// access beyond the first to the most-contended bank delays *this*
	// instruction by one cycle — the issuing warp holds its own issue
	// stream and its result arrives late, but other warps keep issuing.
	// (The paper's model tracks only within-instruction conflicts and
	// notes it is pessimistic; it has no cross-instruction bank port
	// contention, and neither does this simulator.)
	extra := int64(out.ExtraCycles)
	s.slotFreeAt = s.cycle + 1
	w.nextIssue = s.cycle + 1 + extra
	if s.params.GreedyScheduler {
		s.rr = pos % len(s.active) // greedy: stay on this warp
	} else {
		s.rr = (pos + 1) % len(s.active)
	}

	complete := s.cycle + 1
	switch wi.Op {
	case isa.OpALU, isa.OpNop:
		complete = s.cycle + s.params.ALULatency + extra
	case isa.OpSFU:
		complete = s.cycle + s.params.SFULatency + extra
	case isa.OpLDS:
		complete = s.cycle + s.params.SharedLatency + extra
		s.counters.SharedReads += int64(out.MemAccesses)
	case isa.OpSTS:
		s.counters.SharedWrites += int64(out.MemAccesses)
	case isa.OpLDG:
		complete = s.globalLoad(wi, extra)
	case isa.OpSTG:
		s.globalStore(wi, extra)
	case isa.OpTEX:
		complete = s.texFetch(wi)
	case isa.OpBAR:
		s.barrier(pos, wIdx)
		return
	case isa.OpEXIT:
		s.exit(pos, wIdx)
		return
	}

	if wi.Dst.Reg != isa.NoReg {
		if complete > w.regReady[wi.Dst.Reg] {
			w.regReady[wi.Dst.Reg] = complete
		}
	}
	w.pc++
}

// countRegAccesses files register hierarchy events for the energy model.
func (s *SM) countRegAccesses(wi *isa.WarpInst) {
	for _, src := range wi.Srcs {
		switch {
		case !src.Valid():
		case src.Space == isa.SpaceMRF:
			s.counters.MRFReads++
		case src.Space == isa.SpaceORF:
			s.counters.ORFReads++
		case src.Space == isa.SpaceLRF:
			s.counters.LRFReads++
		}
	}
	if wi.Dst.Valid() {
		switch wi.Dst.Space {
		case isa.SpaceMRF:
			s.counters.MRFWrites++
		case isa.SpaceORF:
			s.counters.ORFWrites++
		case isa.SpaceLRF:
			s.counters.LRFWrites++
		}
		if wi.DstMRFWrite && wi.Dst.Space != isa.SpaceMRF {
			s.counters.MRFWrites++
		}
	}
}

// memRead issues a DRAM read and accounts its bytes.
func (s *SM) memRead(now int64, addr uint32, bytes int) int64 {
	s.counters.DRAMReadBytes += int64(bytes)
	return s.mem.Read(now, addr, bytes)
}

// memWrite posts a DRAM write and accounts its bytes.
func (s *SM) memWrite(now int64, addr uint32, bytes int) {
	s.counters.DRAMWriteBytes += int64(bytes)
	s.mem.Write(now, addr, bytes)
}

// distinctAddrs counts the distinct per-thread addresses of a memory
// instruction: even without a cache, the load/store unit merges threads
// that access the same address (broadcast reads cost one transaction).
func (s *SM) distinctAddrs(wi *isa.WarpInst) int {
	var buf [isa.WarpSize]uint32
	n := 0
	for t := 0; t < isa.WarpSize; t++ {
		if wi.Mask&(1<<uint(t)) == 0 {
			continue
		}
		a := wi.Addrs[t]
		dup := false
		for i := 0; i < n; i++ {
			if buf[i] == a {
				dup = true
				break
			}
		}
		if !dup {
			buf[n] = a
			n++
		}
	}
	return n
}

// sectorBytes is the DRAM fetch granularity within a cache line: misses
// fetch only the 32-byte sectors the warp actually touches (sectored
// fill, as in Fermi-class memory systems), so sparse gathers do not pay
// for full 128-byte lines.
const sectorBytes = 32

// lines collects the distinct cache lines touched by a memory instruction
// (in lane order) and, in sectors, a parallel bitmask of the 32-byte
// sectors touched within each line. sectors may be nil when masks are not
// needed.
func (s *SM) lines(wi *isa.WarpInst, buf []uint32, sectors []uint8) ([]uint32, []uint8) {
	buf = buf[:0]
	if sectors != nil {
		sectors = sectors[:0]
	}
	for t := 0; t < isa.WarpSize; t++ {
		if wi.Mask&(1<<uint(t)) == 0 {
			continue
		}
		line := wi.Addrs[t] / config.CacheLineBytes
		sector := uint8(1) << (wi.Addrs[t] % config.CacheLineBytes / sectorBytes)
		dup := false
		for i, l := range buf {
			if l == line {
				dup = true
				if sectors != nil {
					sectors[i] |= sector
				}
				break
			}
		}
		if !dup {
			buf = append(buf, line)
			if sectors != nil {
				sectors = append(sectors, sector)
			}
		}
	}
	return buf, sectors
}

// popcount8 counts set bits in a sector mask.
func popcount8(x uint8) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// uncachedGranule is the per-thread DRAM transaction size when no data
// cache is configured. The cache doubles as the SM's coalescing buffer
// (Section 3.1's "bandwidth amplification"): without one, each active
// thread's access becomes its own minimum-size DRAM transaction. This is
// what makes the paper's 0 KB column 3-4x worse for streaming kernels
// (vectoradd 3.88x) yet slightly *better* for needle, whose scattered
// accesses use only a fraction of each 128-byte line a cache would fetch.
const uncachedGranule = 16

// globalLoad performs an LDG: per distinct line, one tag lookup (single
// tag port), then a hit (cache latency), an in-flight merge, or a miss
// (DRAM fetch of the full 128-byte line). Returns the cycle the register
// result is ready.
func (s *SM) globalLoad(wi *isa.WarpInst, extra int64) int64 {
	if !s.cacheEnabled() {
		return s.memRead(s.cycle, wi.Addrs[0], uncachedGranule*s.distinctAddrs(wi))
	}
	var lineBuf [isa.WarpSize]uint32
	var sectorBuf [isa.WarpSize]uint8
	lines, sectors := s.lines(wi, lineBuf[:], sectorBuf[:])

	start := s.cycle
	if s.tagFreeAt > start {
		start = s.tagFreeAt
	}
	// Unified-design bank conflicts on the line accesses serialize on the
	// cache port alongside the tag lookups.
	s.tagFreeAt = start + int64(len(lines)) + extra

	worst := s.cycle + s.params.CacheLatency
	for i, line := range lines {
		lookup := start + int64(i)
		s.counters.CacheProbes++
		var ready int64
		if done, ok := s.pending[line]; ok && done > lookup {
			// Merge with an in-flight fill (MSHR hit).
			ready = done
			s.counters.CacheHits++
			s.counters.CacheDataReads++
		} else {
			if ok {
				delete(s.pending, line)
			}
			if s.params.MaxMSHRs > 0 && len(s.pending) >= s.params.MaxMSHRs {
				// All miss entries in flight: the lookup stalls until the
				// earliest outstanding fill returns. Ties on the ready
				// cycle break by line number so the choice never depends
				// on map iteration order (runs must be bit-reproducible).
				earliest := int64(1 << 62)
				var oldest uint32
				for l, done := range s.pending {
					if done < earliest || (done == earliest && l < oldest) {
						earliest, oldest = done, l
					}
				}
				delete(s.pending, oldest)
				if earliest > lookup {
					lookup = earliest
					// The issue slots until the entry retires are lost
					// to MSHR pressure; the stall classifier gives this
					// window priority over plain scoreboard waits.
					if earliest > s.mshrBlockedUntil {
						s.mshrBlockedUntil = earliest
					}
				}
			}
			hit := false
			if s.params.WriteBackCache {
				var victimDirty bool
				var victim uint32
				hit, victimDirty, victim = s.l1.AccessAllocate(line, false)
				if victimDirty {
					// Dirty eviction: read the victim from the data
					// array and write the full line back to DRAM.
					s.counters.CacheDataReads++
					s.memWrite(lookup, victim*config.CacheLineBytes, config.CacheLineBytes)
				}
			} else {
				hit = s.l1.Read(line)
			}
			if hit {
				ready = lookup + s.params.CacheLatency
				s.counters.CacheHits++
				s.counters.CacheDataReads++
			} else {
				// Sectored fill: fetch only the touched 32-byte sectors.
				ready = s.memRead(lookup, line*config.CacheLineBytes, popcount8(sectors[i])*sectorBytes)
				s.counters.CacheMisses++
				// The line is already installed; remember when its data
				// actually arrives.
				s.pending[line] = ready
				s.counters.CacheDataWrites++ // fill
			}
		}
		if ready > worst {
			worst = ready
		}
	}
	return worst
}

// cacheEnabled reports whether a data cache is configured.
func (s *SM) cacheEnabled() bool { return s.cfg.CacheBytes > 0 }

// globalStore performs an STG: write-through (bytes to DRAM) and
// no-write-allocate (present lines refreshed, absent lines ignored).
func (s *SM) globalStore(wi *isa.WarpInst, extra int64) {
	if !s.cacheEnabled() {
		// No coalescing buffer: per-thread minimum-size transactions.
		s.memWrite(s.cycle, wi.Addrs[0], uncachedGranule*s.distinctAddrs(wi))
		return
	}
	var lineBuf [isa.WarpSize]uint32
	lines, _ := s.lines(wi, lineBuf[:], nil)
	start := s.cycle
	if s.tagFreeAt > start {
		start = s.tagFreeAt
	}
	s.tagFreeAt = start + int64(len(lines)) + extra
	if s.params.WriteBackCache {
		// Write-allocate: install each line dirty; misses fetch the line
		// and dirty victims write back. No write-through traffic.
		for _, line := range lines {
			s.counters.CacheProbes++
			hit, victimDirty, victim := s.l1.AccessAllocate(line, true)
			s.counters.CacheDataWrites++
			if !hit {
				s.memRead(start, line*config.CacheLineBytes, config.CacheLineBytes)
				s.counters.CacheMisses++
			} else {
				s.counters.CacheHits++
			}
			if victimDirty {
				s.counters.CacheDataReads++
				s.memWrite(start, victim*config.CacheLineBytes, config.CacheLineBytes)
			}
		}
		return
	}
	for _, line := range lines {
		s.counters.CacheProbes++
		if s.l1.Write(line) {
			s.counters.CacheDataWrites++
		}
	}
	s.memWrite(start, wi.Addrs[0], 4*wi.ActiveThreads())
}

// texFetch performs a TEX: the texture path bypasses the primary data
// cache (it has its own sampler pipeline), so it is modeled as a fixed
// long-latency DRAM read per distinct line.
func (s *SM) texFetch(wi *isa.WarpInst) int64 {
	var lineBuf [isa.WarpSize]uint32
	var sectorBuf [isa.WarpSize]uint8
	lines, sectors := s.lines(wi, lineBuf[:], sectorBuf[:])
	worst := s.cycle + s.params.TexLatency
	for i := range lines {
		done := s.memRead(s.cycle, lines[i]*config.CacheLineBytes, popcount8(sectors[i])*sectorBytes) -
			s.params.DRAM.LatencyCycles + s.params.TexLatency
		if done > worst {
			worst = done
		}
	}
	return worst
}

// barrier blocks the warp until all live warps of its CTA arrive.
func (s *SM) barrier(pos, wIdx int) {
	w := &s.warps[wIdx]
	c := &s.ctas[w.ctaSlot]
	w.pc++
	w.status = wBarrier
	s.deactivate(pos)
	c.barWaits++
	if c.barWaits >= c.liveWarps {
		c.barWaits = 0
		for _, idx := range c.warps {
			ww := &s.warps[idx]
			if ww.status == wBarrier {
				ww.status = wReady
				ww.wakeAt = s.cycle + 1
			}
		}
	}
}

// exit retires the warp and, when its CTA drains, launches the next grid
// CTA into the freed slot.
func (s *SM) exit(pos, wIdx int) {
	w := &s.warps[wIdx]
	c := &s.ctas[w.ctaSlot]
	w.status = wDone
	w.trace = nil
	s.deactivate(pos)
	s.liveWarps--
	c.liveWarps--
	if c.liveWarps == 0 {
		s.counters.CTAsRetired++
		slot := w.ctaSlot
		c.id = -1
		if s.nextCTA < s.totalCTAs {
			s.launch(slot)
		}
	} else if c.barWaits >= c.liveWarps && c.barWaits > 0 {
		// The exiting warp may have been the last one holding up a
		// barrier (warps that exit early release their CTA-mates).
		c.barWaits = 0
		for _, idx := range c.warps {
			ww := &s.warps[idx]
			if ww.status == wBarrier {
				ww.status = wReady
				ww.wakeAt = s.cycle + 1
			}
		}
	}
}

// DirtyCacheLines returns the number of modified lines resident in the
// cache at the end of a run — the flush a write-back design would need on
// repartitioning (always zero for write-through).
func (s *SM) DirtyCacheLines() int { return s.l1.DirtyLines() }
