// Package sm is the streaming-multiprocessor timing simulator.
//
// It models one SM of the paper's baseline GPU (Figure 1, Table 2): 32
// SIMT lanes organized as 8 four-lane clusters, a 32-entry single-issue
// in-order warp scheduler with a two-level active/inactive policy, a
// software-managed MRF/ORF/LRF register hierarchy, shared memory, a
// write-through primary data cache with a single tag port, and a
// bandwidth-limited DRAM channel. Traces are supplied per warp by a
// TraceSource (internal/workloads via internal/kgen).
//
// The SM itself is a thin orchestrator over three components:
//
//   - internal/sched owns the warp-scheduling policy (active-set
//     selection, issue priority order, long-latency descheduling);
//   - internal/dispatch owns work distribution (CTA slots, warp launch
//     and retirement, barriers) and the canonical warp array;
//   - internal/memsys owns the global-memory pipeline (coalescer,
//     primary cache, MSHR table, sectored DRAM fills, texture path).
//
// Following the paper's Section 5.1 methodology, one SM is simulated to
// completion with its 1/32 share of chip DRAM bandwidth.
package sm

import (
	"context"
	"fmt"

	"repro/internal/banks"
	"repro/internal/config"
	"repro/internal/dispatch"
	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/probe"
	"repro/internal/sched"
	"repro/internal/stats"
)

// Memory is the DRAM system the SM issues global traffic to; it is owned
// by the memory-pipeline component.
type Memory = memsys.Memory

// TraceSource supplies the kernel grid to execute; it is consumed by the
// dispatch component.
type TraceSource = dispatch.TraceSource

// Params holds the timing parameters of Table 2.
type Params struct {
	ALULatency    int64
	SFULatency    int64
	SharedLatency int64
	CacheLatency  int64 // primary cache hit latency
	TexLatency    int64
	DRAM          dram.Config
	// DeschedulePast is the wait (in cycles) beyond which a dependent
	// warp is moved to the inactive set instead of busy-waiting in the
	// active set.
	DeschedulePast int64
	// ActiveWarps is the active-set size of the warp scheduler.
	ActiveWarps int
	// Scheduler selects the warp-scheduling policy; the zero value is
	// sched.TwoLevel, the paper's two-level round-robin scheduler.
	Scheduler sched.Policy
	// AggressiveScatter selects the Section 4.2 multi-bank-per-cluster
	// scatter/gather variant of the unified design.
	AggressiveScatter bool
	// WriteBackCache replaces the paper's write-through no-write-allocate
	// cache with a write-back write-allocate one (an ablation of the
	// Section 4.3/4.4 design choice). Dirty victims cost a line writeback
	// to DRAM plus a data-array read.
	WriteBackCache bool
	// GreedyScheduler holds the two-level scheduler's cursor on the warp
	// that issued last (greedy-then-round-robin), improving intra-warp
	// locality at some fairness cost. The GTO policy is inherently
	// greedy and ignores this flag.
	GreedyScheduler bool
	// MaxMSHRs bounds outstanding cache misses; a load that needs a new
	// miss entry while all are in flight stalls until one retires.
	// Zero means unbounded (the paper's model).
	MaxMSHRs int
}

// DefaultParams returns the Table 2 parameters.
func DefaultParams() Params {
	return Params{
		ALULatency:     8,
		SFULatency:     20,
		SharedLatency:  20,
		CacheLatency:   20,
		TexLatency:     400,
		DRAM:           dram.DefaultConfig(),
		DeschedulePast: 30,
		ActiveWarps:    config.ActiveWarps,
	}
}

// SM is one simulated streaming multiprocessor: the timing core plus its
// scheduler, dispatcher, and memory-pipeline components.
type SM struct {
	params Params
	cfg    config.MemConfig

	bankModel *banks.Model
	sched     sched.Scheduler
	disp      *dispatch.Dispatcher
	mem       *memsys.MemSys
	// dramModel is the SM-private DRAM channel, nil when Spec.Memory
	// injected a shared system. Snapshot needs it: a shared memory
	// system's state belongs to the chip, not to one SM.
	dramModel *dram.DRAM
	counters  stats.Counters
	// streamCounters holds per-stream attribution for multi-tenant runs
	// (Spec.Streams); nil for single-kernel specs, which therefore pay
	// one nil check per issue for the capability. Additive categories
	// sum exactly to counters across streams (DESIGN.md §5j).
	streamCounters []stats.Counters
	// lastStream is the stream of the most recent issue, the default
	// attribution target for stalls no single warp owns.
	lastStream int
	// prof is the attached observability probe, nil when disabled.
	// Every hook call site is guarded, so a run without a probe does no
	// observability work at all, and a probed run only reads state.
	prof *probe.Probe

	cycle      int64
	slotFreeAt int64 // issue slot busy until
	started    bool

	// visit is the Walk visitor, bound once at construction: creating the
	// method value per Step would heap-allocate a closure on the hottest
	// loop of the simulator.
	visit func(w int) sched.Action
	// nextEvent accumulates, during one tryIssue pass, the earliest future
	// cycle at which something may become issueable.
	nextEvent int64
}

// StreamSpec describes one co-resident kernel (stream) of a
// multi-tenant run.
type StreamSpec struct {
	// Name labels the stream in probe output (typically the kernel name).
	Name string
	// Source supplies the stream's grid.
	Source TraceSource
	// ResidentCTAs is the stream's share of the SM's CTA slots.
	ResidentCTAs int
}

// Spec gathers everything needed to build an SM. The zero value of the
// optional fields selects the defaults: Memory nil creates a private
// single-channel DRAM system (the chip simulator injects a shared one),
// and Probe nil disables the observability layer entirely.
type Spec struct {
	// Config is the local-memory configuration.
	Config config.MemConfig
	// Params are the timing parameters (Table 2).
	Params Params
	// Source supplies the kernel grid to execute.
	Source TraceSource
	// ResidentCTAs is the number of concurrent CTA slots.
	ResidentCTAs int
	// Streams runs several kernels co-resident on the SM with CTA slots
	// interleaved round-robin and per-stream counter attribution.
	// Mutually exclusive with Source/ResidentCTAs.
	Streams []StreamSpec
	// Memory optionally injects a shared memory system.
	Memory Memory
	// Probe optionally attaches a cycle-level observability probe.
	Probe *probe.Probe
}

// NewSM builds an SM from spec.
func NewSM(spec Spec) (*SM, error) {
	if spec.Source == nil && len(spec.Streams) == 0 {
		return nil, fmt.Errorf("sm: Spec.Source is nil")
	}
	if spec.Source != nil && len(spec.Streams) > 0 {
		return nil, fmt.Errorf("sm: Spec.Source and Spec.Streams are mutually exclusive")
	}
	cfg, params := spec.Config, spec.Params
	if params.ActiveWarps < 1 {
		params.ActiveWarps = config.ActiveWarps
	}
	bankModel := banks.New(cfg.Design)
	if params.AggressiveScatter {
		bankModel = banks.NewAggressive(cfg.Design)
	}
	mem := spec.Memory
	var owned *dram.DRAM
	if mem == nil {
		owned = dram.New(params.DRAM)
		mem = owned
	}
	s := &SM{
		params:    params,
		cfg:       cfg,
		bankModel: bankModel,
		dramModel: owned,
		prof:      spec.Probe,
	}
	var err error
	if s.sched, err = sched.New(params.Scheduler, params.ActiveWarps, params.GreedyScheduler); err != nil {
		return nil, fmt.Errorf("sm: %w", err)
	}
	if len(spec.Streams) > 0 {
		s.streamCounters = make([]stats.Counters, len(spec.Streams))
		specs := make([]dispatch.StreamSpec, len(spec.Streams))
		refs := make([]*stats.Counters, len(spec.Streams))
		for i, st := range spec.Streams {
			specs[i] = dispatch.StreamSpec{Source: st.Source, ResidentCTAs: st.ResidentCTAs}
			refs[i] = &s.streamCounters[i]
		}
		if s.disp, err = dispatch.NewMulti(specs, &s.counters, refs); err != nil {
			return nil, fmt.Errorf("sm: %w", err)
		}
		if spec.Probe != nil {
			names := make([]string, len(spec.Streams))
			for i, st := range spec.Streams {
				names[i] = st.Name
			}
			spec.Probe.SetStreams(names, refs)
		}
	} else if s.disp, err = dispatch.New(spec.Source, spec.ResidentCTAs, &s.counters); err != nil {
		return nil, fmt.Errorf("sm: %w", err)
	}
	if spec.Probe == nil {
		// Unprobed runs replay memoized bank outcomes (an Outcome is a
		// pure function of instruction and variant); probed runs keep
		// evaluating so the model's scratch tallies feed the heatmap.
		s.disp.EnableOutcomes(cfg.Design, params.AggressiveScatter)
	}
	s.visit = s.visitWarp
	s.mem = memsys.New(memConfig(cfg, params), mem, &s.counters)
	return s, nil
}

// memConfig derives the memory-pipeline configuration from the SM
// parameters; NewSM and SetParams must agree on it so a fork built with
// divergent params and an in-place param switch behave identically.
func memConfig(cfg config.MemConfig, params Params) memsys.Config {
	return memsys.Config{
		CacheBytes:   cfg.CacheBytes,
		CacheLatency: params.CacheLatency,
		TexLatency:   params.TexLatency,
		DRAMLatency:  params.DRAM.LatencyCycles,
		MaxMSHRs:     params.MaxMSHRs,
		WriteBack:    params.WriteBackCache,
	}
}

// cycleBound guards against scheduler deadlock in case of a malformed
// trace (e.g. a barrier reached by only part of a CTA).
const cycleBound = int64(1) << 40

// Start launches the initial resident CTAs. It is called implicitly by
// Run; the chip simulator calls it directly before stepping.
func (s *SM) Start() { s.StartAt(0) }

// StartAt launches the initial resident CTAs at the given cycle (the chip
// simulator staggers SM start times, as the hardware work distributor's
// sequential CTA launch does).
func (s *SM) StartAt(cycle int64) {
	if s.started {
		return
	}
	s.started = true
	s.cycle = cycle
	if s.prof != nil {
		s.prof.Begin(&s.counters, cycle)
	}
	s.disp.Start(cycle)
}

// Done reports whether every warp of the grid has exited.
func (s *SM) Done() bool { return s.started && s.disp.Done() }

// Cycle returns the SM's local clock, used by the chip simulator to
// advance SMs in global time order.
func (s *SM) Cycle() int64 { return s.cycle }

// Step advances the SM by one scheduling action: either one instruction
// issues, or the local clock advances to the next interesting event. The
// local clock is nondecreasing across calls and strictly increases at
// least every second call.
func (s *SM) Step() error {
	if s.cycle < s.slotFreeAt {
		s.cycle = s.slotFreeAt
	}
	s.sched.Refill(s.disp, s.cycle)
	issued, nextEvent := s.tryIssue()
	if issued {
		return nil
	}
	if nextEvent <= s.cycle {
		nextEvent = s.cycle + 1
	}
	if s.prof != nil {
		if s.streamCounters != nil {
			reason, stream := s.stallReasonStream()
			s.prof.StallStream(s.cycle, nextEvent, reason, stream)
		} else {
			s.prof.Stall(s.cycle, nextEvent, s.stallReason())
		}
	}
	s.cycle = nextEvent
	if s.cycle > cycleBound {
		return fmt.Errorf("sm: no forward progress by cycle %d (deadlocked trace?)", s.cycle)
	}
	return nil
}

// Finish finalizes and returns the counters: execution ends when the last
// warp exits AND posted tag-port work has drained.
func (s *SM) Finish() *stats.Counters {
	s.counters.Cycles = s.cycle
	if t := s.mem.TagFreeAt(); t > s.counters.Cycles {
		s.counters.Cycles = t
	}
	s.counters.DirtyLinesEnd = s.mem.DirtyLines()
	// A stream's cycle count is the cycle its last warp exited; the
	// aggregate keeps the SM-wide completion (including tag drain).
	for i := range s.streamCounters {
		s.streamCounters[i].Cycles = s.disp.StreamDoneAt(i)
	}
	if s.prof != nil {
		s.prof.End(s.counters.Cycles)
	}
	return &s.counters
}

// StreamCounters returns the per-stream counters of a multi-tenant run
// (nil for single-kernel specs), indexed by Spec.Streams order. The
// additive event categories sum exactly to the aggregate counters;
// Cycles holds each stream's own completion cycle. Call after Finish.
func (s *SM) StreamCounters() []stats.Counters { return s.streamCounters }

// stallReason classifies a failed issue attempt for the observability
// probe, reading each component at its boundary: active-set occupancy
// from the scheduler, warp lifecycle counts from the dispatcher, and the
// MSHR-saturation window from the memory pipeline. Each lost slot is
// charged to exactly one cause, by fixed priority: barrier > MSHR-full >
// scoreboard > arbitration > bank-conflict > no-ready-warp. Only probed
// runs call this, on the (cold) no-issue path.
func (s *SM) stallReason() probe.StallReason {
	if s.sched.Len() == 0 {
		barrier, readyLater := s.disp.Counts()
		if barrier > 0 && readyLater == 0 {
			return probe.StallBarrier
		}
		if s.cycle < s.mem.MSHRBlockedUntil() {
			return probe.StallMSHRFull
		}
		return probe.StallNoReadyWarp
	}
	sawDep, sawSerial, sawArb := false, false, false
	for _, wIdx := range s.sched.Active() {
		w := s.disp.Warp(wIdx)
		if w.NextIssue > s.cycle {
			// The warp holds its own issue stream while bank-conflict
			// extra cycles of its previous instruction elapse.
			sawSerial = true
			if w.ArbStall {
				sawArb = true
			}
			continue
		}
		// An active warp that is not serialized failed on an operand
		// dependence (long waits were descheduled out of the set).
		sawDep = true
	}
	switch {
	case s.cycle < s.mem.MSHRBlockedUntil():
		return probe.StallMSHRFull
	case sawDep:
		return probe.StallScoreboard
	case sawArb:
		return probe.StallArbitration
	case sawSerial:
		return probe.StallBankConflict
	}
	return probe.StallNoReadyWarp
}

// stallReasonStream is stallReason for multi-tenant runs: the same
// fixed-priority classification, additionally naming the stream the lost
// slots are charged to — the stream of the first warp exhibiting the
// winning cause, or the last-issuing stream for causes no single warp
// owns (MSHR saturation, an empty ready set). It is a separate function
// so the single-stream classifier stays untouched on the common path.
func (s *SM) stallReasonStream() (probe.StallReason, int) {
	if s.sched.Len() == 0 {
		barrier, readyLater := s.disp.Counts()
		if barrier > 0 && readyLater == 0 {
			return probe.StallBarrier, s.barrierStream()
		}
		if s.cycle < s.mem.MSHRBlockedUntil() {
			return probe.StallMSHRFull, s.lastStream
		}
		return probe.StallNoReadyWarp, s.lastStream
	}
	sawDep, sawSerial, sawArb := false, false, false
	depStream, serialStream, arbStream := 0, 0, 0
	for _, wIdx := range s.sched.Active() {
		w := s.disp.Warp(wIdx)
		if w.NextIssue > s.cycle {
			if !sawSerial {
				serialStream = s.disp.Stream(wIdx)
			}
			sawSerial = true
			if w.ArbStall && !sawArb {
				arbStream = s.disp.Stream(wIdx)
				sawArb = true
			}
			continue
		}
		if !sawDep {
			depStream = s.disp.Stream(wIdx)
		}
		sawDep = true
	}
	switch {
	case s.cycle < s.mem.MSHRBlockedUntil():
		return probe.StallMSHRFull, s.lastStream
	case sawDep:
		return probe.StallScoreboard, depStream
	case sawArb:
		return probe.StallArbitration, arbStream
	case sawSerial:
		return probe.StallBankConflict, serialStream
	}
	return probe.StallNoReadyWarp, s.lastStream
}

// barrierStream returns the stream of the first warp blocked at a CTA
// barrier, the attribution target for barrier stalls.
func (s *SM) barrierStream() int {
	for i, n := 0, s.disp.NumWarps(); i < n; i++ {
		if s.disp.Warp(i).Status == dispatch.Barrier {
			return s.disp.Stream(i)
		}
	}
	return s.lastStream
}

// Run executes the grid to completion and returns the event counters.
func (s *SM) Run() (*stats.Counters, error) {
	s.Start()
	for !s.Done() {
		if err := s.Step(); err != nil {
			return nil, err
		}
	}
	return s.Finish(), nil
}

// ctxCheckInterval is the number of Step calls RunContext executes
// between context polls. Polling is two predictable branches per
// interval, so the context-aware loop stays indistinguishable from Run
// on the profiles while still bounding cancellation latency to a few
// microseconds of simulated work.
const ctxCheckInterval = 1 << 13

// RunContext is Run with cooperative cancellation: the cycle loop polls
// ctx every few thousand steps and aborts with ctx.Err() once the
// context is done. A context that can never be cancelled (for example
// context.Background()) selects the exact Run path. A completed run's
// counters are identical to Run's — cancellation only decides whether
// the run finishes, never what it computes.
func (s *SM) RunContext(ctx context.Context) (*stats.Counters, error) {
	if ctx == nil || ctx.Done() == nil {
		return s.Run()
	}
	s.Start()
	budget := ctxCheckInterval
	for !s.Done() {
		if err := s.Step(); err != nil {
			return nil, err
		}
		if budget--; budget == 0 {
			budget = ctxCheckInterval
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
	}
	return s.Finish(), nil
}

// tryIssue attempts to issue one warp instruction from the active set in
// the scheduling policy's priority order. It returns whether an
// instruction issued and, if not, the earliest future cycle at which
// something may become issueable.
//
// The wake-up scan over Ready warps runs only on a failed issue (its
// result is unused otherwise) and only when some warp is Ready at all;
// warps the Walk itself parks are Ready with their wake cycle already
// noted, so scanning after the Walk observes the same set of events.
func (s *SM) tryIssue() (bool, int64) {
	s.nextEvent = int64(1) << 62
	if s.sched.Walk(s.visit) {
		return true, s.nextEvent
	}
	// Wake-ups of ready and barrier-released warps are future events.
	if wake := s.disp.MinFutureWake(s.cycle); wake < s.nextEvent {
		s.nextEvent = wake
	}
	return false, s.nextEvent
}

// note records a candidate next-event cycle.
func (s *SM) note(t int64) {
	if t > s.cycle && t < s.nextEvent {
		s.nextEvent = t
	}
}

// visitWarp is the Walk visitor: it judges one active-set candidate,
// issuing it when its operands are ready.
func (s *SM) visitWarp(wIdx int) sched.Action {
	w := s.disp.Warp(wIdx)
	wi := &w.Trace[w.PC]

	if w.NextIssue > s.cycle {
		s.note(w.NextIssue)
		return sched.Keep
	}
	depReady := int64(0)
	for _, src := range wi.Srcs {
		if src.Reg != isa.NoReg {
			if t := w.RegReady[src.Reg]; t > depReady {
				depReady = t
			}
		}
	}
	if depReady > s.cycle {
		s.note(depReady)
		if depReady-s.cycle > s.params.DeschedulePast {
			// Two-level rule: swap out on a long-latency dependence.
			s.disp.Park(wIdx, depReady)
			return sched.Deschedule
		}
		return sched.Keep
	}
	return s.issue(wIdx, w, wi)
}

// issue executes one warp instruction and reports to the scheduler
// whether the warp stays in the active set (Issued) or leaves it on a
// barrier or exit (IssuedGone).
func (s *SM) issue(wIdx int, w *dispatch.Warp, wi *isa.WarpInst) sched.Action {
	var out banks.Outcome
	if w.Outcomes != nil {
		// Replay the memoized outcome (attached at launch for unprobed
		// runs); the conflict model is bypassed entirely.
		out = w.Outcomes[w.PC]
	} else {
		out = s.bankModel.Evaluate(wi)
	}
	// sc is the issuing warp's per-stream counter set, nil on
	// single-kernel runs: direct charges below are duplicated into it,
	// and the memory-system counters it cannot observe directly are
	// attributed by delta around the op dispatch.
	var sc *stats.Counters
	if s.streamCounters != nil {
		stream := s.disp.Stream(wIdx)
		sc = &s.streamCounters[stream]
		s.lastStream = stream
		if s.prof != nil {
			s.prof.IssueStream(s.cycle, stream)
		}
	} else if s.prof != nil {
		s.prof.Issue(s.cycle)
	}
	if s.prof != nil {
		acc, conf := s.prof.Heat()
		s.bankModel.HeatInto(acc, conf)
	}
	w.ArbStall = out.Arbitration && out.ExtraCycles > 0
	s.counters.WarpInsts++
	s.counters.ThreadInsts += int64(wi.ActiveThreads())
	if wi.Spill {
		s.counters.SpillInsts++
	}
	s.counters.RecordConflict(out.MaxPerBank)
	if out.Arbitration {
		s.counters.ArbitrationConflicts++
	}
	s.counters.RecordRegAccesses(wi)
	if sc != nil {
		sc.WarpInsts++
		sc.ThreadInsts += int64(wi.ActiveThreads())
		if wi.Spill {
			sc.SpillInsts++
		}
		sc.RecordConflict(out.MaxPerBank)
		if out.Arbitration {
			sc.ArbitrationConflicts++
		}
		sc.RecordRegAccesses(wi)
	}

	// Bank-conflict serialization follows the paper's §6.1 model: each
	// access beyond the first to the most-contended bank delays *this*
	// instruction by one cycle — the issuing warp holds its own issue
	// stream and its result arrives late, but other warps keep issuing.
	// (The model tracks only within-instruction conflicts, as the paper's
	// does; there is no cross-instruction bank port contention.)
	extra := int64(out.ExtraCycles)
	s.slotFreeAt = s.cycle + 1
	w.NextIssue = s.cycle + 1 + extra

	// Memory-system events (shared memory, cache, DRAM) land in the
	// aggregate counters inside the op dispatch; per-stream attribution
	// captures them as a before/after delta. BAR and EXIT return early
	// without touching any of these fields, so skipping their delta is
	// exact.
	var memSnap memCounterSnap
	if sc != nil {
		memSnap = snapMemCounters(&s.counters)
	}

	complete := s.cycle + 1
	switch wi.Op {
	case isa.OpALU, isa.OpNop:
		complete = s.cycle + s.params.ALULatency + extra
	case isa.OpSFU:
		complete = s.cycle + s.params.SFULatency + extra
	case isa.OpLDS:
		complete = s.cycle + s.params.SharedLatency + extra
		s.counters.SharedReads += int64(out.MemAccesses)
	case isa.OpSTS:
		s.counters.SharedWrites += int64(out.MemAccesses)
	case isa.OpLDG:
		var accs []memsys.Access
		complete, accs = s.mem.Load(wi, s.cycle, extra)
		if s.prof != nil {
			for i := range accs {
				s.prof.MemAccess(&accs[i])
			}
		}
	case isa.OpSTG:
		s.mem.Store(wi, s.cycle, extra)
	case isa.OpTEX:
		complete = s.mem.Tex(wi, s.cycle)
	case isa.OpBAR:
		s.disp.Barrier(wIdx, s.cycle)
		return sched.IssuedGone
	case isa.OpEXIT:
		s.disp.Exit(wIdx, s.cycle)
		return sched.IssuedGone
	}

	if sc != nil {
		memSnap.deltaInto(sc, &s.counters)
	}

	if wi.Dst.Reg != isa.NoReg {
		if complete > w.RegReady[wi.Dst.Reg] {
			w.RegReady[wi.Dst.Reg] = complete
		}
	}
	w.PC++
	return sched.Issued
}

// memCounterSnap freezes the memory-system counter fields one warp
// instruction can mutate, so issue can attribute their growth to the
// issuing warp's stream.
type memCounterSnap struct {
	sharedReads, sharedWrites           int64
	cacheProbes, cacheHits, cacheMisses int64
	cacheDataReads, cacheDataWrites     int64
	dramReadBytes, dramWriteBytes       int64
}

func snapMemCounters(c *stats.Counters) memCounterSnap {
	return memCounterSnap{
		sharedReads: c.SharedReads, sharedWrites: c.SharedWrites,
		cacheProbes: c.CacheProbes, cacheHits: c.CacheHits, cacheMisses: c.CacheMisses,
		cacheDataReads: c.CacheDataReads, cacheDataWrites: c.CacheDataWrites,
		dramReadBytes: c.DRAMReadBytes, dramWriteBytes: c.DRAMWriteBytes,
	}
}

// deltaInto adds the growth of the aggregate counters since the snapshot
// to the stream counters sc.
func (m *memCounterSnap) deltaInto(sc, c *stats.Counters) {
	sc.SharedReads += c.SharedReads - m.sharedReads
	sc.SharedWrites += c.SharedWrites - m.sharedWrites
	sc.CacheProbes += c.CacheProbes - m.cacheProbes
	sc.CacheHits += c.CacheHits - m.cacheHits
	sc.CacheMisses += c.CacheMisses - m.cacheMisses
	sc.CacheDataReads += c.CacheDataReads - m.cacheDataReads
	sc.CacheDataWrites += c.CacheDataWrites - m.cacheDataWrites
	sc.DRAMReadBytes += c.DRAMReadBytes - m.dramReadBytes
	sc.DRAMWriteBytes += c.DRAMWriteBytes - m.dramWriteBytes
}

// DirtyCacheLines returns the number of modified lines resident in the
// cache at the end of a run — the flush a write-back design would need on
// repartitioning (always zero for write-through).
func (s *SM) DirtyCacheLines() int { return s.mem.DirtyLines() }
