package sm

import (
	"context"
	"fmt"

	"repro/internal/sched"
	"repro/internal/snapshot"
)

// Snapshot captures the SM's full simulation state as an immutable
// snapshot.State: clocks, counters, scheduler cursors, warp and CTA
// slots, the cache and MSHR state, and the DRAM channel (see the
// internal/snapshot package comment for the copy-on-write rules). The
// SM must have started, and must own its DRAM channel — a shared memory
// system injected by the chip simulator belongs to every SM at once and
// cannot be frozen from one.
//
// Snapshot may allocate freely (it runs once per warm prefix); the
// cycle loop of a fork restored from the State stays allocation-free.
func (s *SM) Snapshot() (*snapshot.State, error) {
	if !s.started {
		return nil, fmt.Errorf("sm: cannot snapshot before Start")
	}
	if s.dramModel == nil {
		return nil, fmt.Errorf("sm: cannot snapshot an SM with injected shared memory")
	}
	if s.streamCounters != nil {
		return nil, fmt.Errorf("sm: multi-tenant runs do not snapshot (streams are prefix-defining)")
	}
	return &snapshot.State{
		Config:     s.cfg,
		Aggressive: s.params.AggressiveScatter,
		Greedy:     s.params.GreedyScheduler,
		Cycle:      s.cycle,
		SlotFreeAt: s.slotFreeAt,
		Started:    s.started,
		Counters:   s.counters,
		Sched:      s.sched.Snapshot(),
		Disp:       s.disp.Snapshot(),
		Mem:        s.mem.Snapshot(),
		DRAM:       s.dramModel.Snapshot(),
		Probe:      s.prof.Snapshot(),
	}, nil
}

// Fork builds a new SM that resumes from st under spec's parameters —
// the divergence point of a sweep. spec must agree with the snapshot on
// every prefix-defining field (configuration, grid source, scheduler
// policy and active-set size, greedy flag, scatter variant, and
// probed-ness); the divergable timing parameters — op latencies,
// DeschedulePast, MaxMSHRs, the DRAM configuration, and the cache write
// policy — may differ, with "switch at cycle K" semantics: a fork with
// divergent values is bit-identical to a fresh run that calls SetParams
// at the snapshot cycle.
//
// Fork only reads st, so any number of forks — concurrent ones included
// — can share one snapshot. A probed snapshot must be forked with
// spec.Probe set to a probe built by probe.Restore from st.Probe; Fork
// rebinds it to the new SM's counters.
func Fork(spec Spec, st *snapshot.State) (*SM, error) {
	if spec.Memory != nil {
		return nil, fmt.Errorf("sm: cannot fork onto injected shared memory")
	}
	if spec.Config != st.Config {
		return nil, fmt.Errorf("sm: fork config %v differs from snapshot config %v", spec.Config, st.Config)
	}
	if spec.Params.AggressiveScatter != st.Aggressive {
		return nil, fmt.Errorf("sm: AggressiveScatter is prefix-defining and cannot diverge across a fork")
	}
	if spec.Params.GreedyScheduler != st.Greedy {
		return nil, fmt.Errorf("sm: GreedyScheduler is prefix-defining and cannot diverge across a fork")
	}
	if (spec.Probe != nil) != (st.Probe != nil) {
		return nil, fmt.Errorf("sm: probed-ness cannot change across a fork (probes observe from cycle 0)")
	}
	s, err := NewSM(spec)
	if err != nil {
		return nil, err
	}
	s.counters = st.Counters
	s.cycle = st.Cycle
	s.slotFreeAt = st.SlotFreeAt
	s.started = st.Started
	if err := s.sched.Restore(st.Sched); err != nil {
		return nil, fmt.Errorf("sm: fork: %w", err)
	}
	if err := s.disp.Restore(st.Disp); err != nil {
		return nil, fmt.Errorf("sm: fork: %w", err)
	}
	if err := s.mem.Restore(st.Mem); err != nil {
		return nil, fmt.Errorf("sm: fork: %w", err)
	}
	s.dramModel.Restore(st.DRAM)
	if s.prof != nil {
		s.prof.Rebind(&s.counters)
	}
	return s, nil
}

// SetParams switches the divergable timing parameters mid-run — the
// in-place equivalent of forking, used as the fresh-run comparator in
// differential tests (warm, switch, continue ≡ warm, snapshot, fork).
// Prefix-defining fields must not change; see Fork.
func (s *SM) SetParams(p Params) error {
	if p.ActiveWarps < 1 {
		p.ActiveWarps = s.params.ActiveWarps
	}
	newPol, err := sanitizePolicy(p)
	if err != nil {
		return err
	}
	curPol, _ := sanitizePolicy(s.params)
	if newPol != curPol || p.ActiveWarps != s.params.ActiveWarps {
		return fmt.Errorf("sm: scheduler policy and active-set size are prefix-defining and cannot change mid-run")
	}
	if p.AggressiveScatter != s.params.AggressiveScatter {
		return fmt.Errorf("sm: AggressiveScatter is prefix-defining and cannot change mid-run")
	}
	if p.GreedyScheduler != s.params.GreedyScheduler {
		return fmt.Errorf("sm: GreedyScheduler is prefix-defining and cannot change mid-run")
	}
	if p.DRAM != s.params.DRAM && s.dramModel == nil {
		return fmt.Errorf("sm: cannot retime injected shared memory")
	}
	if err := s.mem.SetTiming(memConfig(s.cfg, p)); err != nil {
		return fmt.Errorf("sm: %w", err)
	}
	if s.dramModel != nil {
		s.dramModel.SetConfig(p.DRAM)
	}
	s.params = p
	return nil
}

// Params returns the SM's current timing parameters.
func (s *SM) Params() Params { return s.params }

// RunTo steps the SM until its clock reaches at least cycle or the grid
// completes, whichever comes first — the warm-prefix half of a
// snapshot/fork sweep. It starts the SM if needed and does not finalize
// counters; follow with Snapshot, more stepping, or Run.
func (s *SM) RunTo(cycle int64) error {
	return s.RunToContext(context.Background(), cycle)
}

// RunToContext is RunTo with cooperative cancellation, polling ctx on
// the same stride as RunContext.
func (s *SM) RunToContext(ctx context.Context, cycle int64) error {
	poll := ctx != nil && ctx.Done() != nil
	s.Start()
	budget := ctxCheckInterval
	for !s.Done() && s.cycle < cycle {
		if err := s.Step(); err != nil {
			return err
		}
		if budget--; budget == 0 {
			budget = ctxCheckInterval
			if poll {
				select {
				case <-ctx.Done():
					return ctx.Err()
				default:
				}
			}
		}
	}
	return nil
}

// BarrierWarps returns the number of warps currently blocked at a CTA
// barrier — the differential harness uses it to place snapshots at
// mid-barrier points.
func (s *SM) BarrierWarps() int {
	barrier, _ := s.disp.Counts()
	return barrier
}

// InFlightFills returns the number of outstanding cache line fills —
// the differential harness uses it to place snapshots at MSHR-full
// points.
func (s *SM) InFlightFills() int { return s.mem.InFlight() }

// sanitizePolicy resolves the Params' scheduler policy name.
func sanitizePolicy(p Params) (sched.Policy, error) {
	pol, err := sched.ParsePolicy(string(p.Scheduler))
	if err != nil {
		return "", fmt.Errorf("sm: %w", err)
	}
	return pol, nil
}
