package sm

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/kgen"
	"repro/internal/stats"
)

// randomKernel emits a random but well-formed kernel body (balanced
// barriers, bounded registers and addresses).
func randomKernel(seed uint64, length int) func(cta, warp int) []isa.WarpInst {
	return func(cta, warp int) []isa.WarpInst {
		rng := rand.New(rand.NewPCG(seed, uint64(cta)<<16|uint64(warp)))
		b := kgen.NewBuilder(kgen.Config{RegsAvail: 8 + int(rng.Uint32N(24))})
		b.ALU(0)
		b.ALU(1, 0)
		bars := 0
		for i := 0; i < length; i++ {
			dst := uint8(rng.Uint32N(24))
			src := uint8(rng.Uint32N(24))
			switch rng.Uint32N(8) {
			case 0, 1, 2:
				b.ALU(dst, src)
			case 3:
				b.SFU(dst, src)
			case 4:
				b.LDG(dst, src, kgen.Random(rng, 0, 1<<20, 4))
			case 5:
				b.STG(src, isa.NoReg, kgen.Coalesced(rng.Uint32N(1<<18)*4, 4))
			case 6:
				b.LDS(dst, src, kgen.CoalescedMod(rng.Uint32N(4096), 4, 8192))
			case 7:
				b.STS(src, isa.NoReg, kgen.CoalescedMod(rng.Uint32N(4096), 4, 8192))
			}
			// Occasional barrier at a deterministic position so every
			// warp of the CTA emits the same count.
			if i%17 == 16 {
				b.Bar()
				bars++
			}
		}
		return b.Finish()
	}
}

// TestSimulationInvariants runs random kernels under random configurations
// and checks structural invariants of every run.
func TestSimulationInvariants(t *testing.T) {
	f := func(seed uint64, warpsRaw, ctasRaw, designRaw, lenRaw uint8) bool {
		warps := 1 + int(warpsRaw)%4
		ctas := 1 + int(ctasRaw)%6
		resident := 1 + int(ctasRaw)%2
		length := 20 + int(lenRaw)%100
		design := []config.Design{config.Partitioned, config.Unified}[int(designRaw)%2]
		cfg := config.MemConfig{
			Design:      design,
			RFBytes:     128 << 10,
			SharedBytes: 64 << 10,
			CacheBytes:  64 << 10,
		}
		if resident*warps > config.MaxWarpsPerSM {
			resident = 1
		}
		src := funcSource{ctas, warps, randomKernel(seed, length)}
		s, err := newSM(cfg, DefaultParams(), src, resident)
		if err != nil {
			return false
		}
		c, err := s.Run()
		if err != nil {
			return false
		}
		// Every CTA retires; every instruction is issued exactly once.
		if c.CTAsRetired != int64(ctas) {
			return false
		}
		// Cycles bound the instruction count (single issue).
		if c.Cycles < c.WarpInsts/int64(min(resident*warps, 8))-1 && c.Cycles < c.WarpInsts {
			return false
		}
		// The conflict histogram covers every instruction.
		var histTotal int64
		for _, v := range c.ConflictHist {
			histTotal += v
		}
		if histTotal != c.WarpInsts {
			return false
		}
		// DRAM byte accounting is non-negative and misses imply traffic.
		if c.DRAMReadBytes < 0 || c.DRAMWriteBytes < 0 {
			return false
		}
		if c.CacheMisses > 0 && c.DRAMReadBytes == 0 {
			return false
		}
		// Load probes classify as hit or miss; store probes (write-through
		// tag touches) do not, so hits+misses never exceed probes.
		if c.CacheHits+c.CacheMisses > c.CacheProbes {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDeterministicAcrossRuns is a property test over random kernels and
// parameter variations: running the same kernel/config twice from fresh
// state must yield bit-identical counters — every field, not just cycles.
// This is the foundation the parallel experiment engine's serial-identical
// guarantee is built on; any hidden global state shows up here before it
// can become a race.
func TestDeterministicAcrossRuns(t *testing.T) {
	f := func(seed uint64, lenRaw, mshrRaw uint8) bool {
		length := 30 + int(lenRaw)%100
		params := DefaultParams()
		// Exercise the bounded-MSHR stall path too: its eviction choice
		// must not depend on map iteration order.
		params.MaxMSHRs = []int{0, 1, 2, 8}[int(mshrRaw)%4]
		src := funcSource{4, 2, randomKernel(seed, length)}
		run := func() *stats.Counters {
			s, err := newSM(config.Baseline(), params, src, 2)
			if err != nil {
				t.Fatal(err)
			}
			c, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		return reflect.DeepEqual(run(), run())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
