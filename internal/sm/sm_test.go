package sm

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/kgen"
)

// funcSource adapts a closure into a TraceSource.
type funcSource struct {
	ctas, warps int
	gen         func(cta, warp int) []isa.WarpInst
}

func (f funcSource) Grid() (int, int)                       { return f.ctas, f.warps }
func (f funcSource) WarpTrace(cta, warp int) []isa.WarpInst { return f.gen(cta, warp) }

func build(f func(b *kgen.Builder)) []isa.WarpInst {
	b := kgen.NewBuilder(kgen.Config{})
	f(b)
	return b.Finish()
}

// newSM is the tests' shorthand for NewSM with the common Spec fields.
func newSM(cfg config.MemConfig, params Params, src TraceSource, residentCTAs int) (*SM, error) {
	return NewSM(Spec{Config: cfg, Params: params, Source: src, ResidentCTAs: residentCTAs})
}

func TestSingleWarpALUChain(t *testing.T) {
	// A dependent ALU chain of N instructions: each waits 8 cycles for
	// its predecessor, so runtime is close to 8*N.
	const n = 100
	src := funcSource{ctas: 1, warps: 1, gen: func(_, _ int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			b.ALU(0)
			for i := 1; i < n; i++ {
				b.ALU(uint8(i%4), uint8((i-1)%4))
			}
		})
	}}
	s, err := newSM(config.Baseline(), DefaultParams(), src, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles < 8*(n-1) || c.Cycles > 8*n+50 {
		t.Errorf("dependent chain cycles = %d, want ~%d", c.Cycles, 8*n)
	}
	if c.WarpInsts != n+1 { // +EXIT
		t.Errorf("WarpInsts = %d, want %d", c.WarpInsts, n+1)
	}
}

func TestIndependentWarpsHideLatency(t *testing.T) {
	// 8 warps of dependent chains issue in the chain-latency shadow of
	// each other: total runtime should be much less than 8x one warp.
	chain := func(_, _ int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			b.ALU(0)
			for i := 1; i < 64; i++ {
				b.ALU(uint8(i%4), uint8((i-1)%4))
			}
		})
	}
	one, err := newSM(config.Baseline(), DefaultParams(), funcSource{1, 1, chain}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := one.Run()
	if err != nil {
		t.Fatal(err)
	}
	eight, err := newSM(config.Baseline(), DefaultParams(), funcSource{1, 8, chain}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := eight.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c8.Cycles > c1.Cycles+100 {
		t.Errorf("8 warps took %d cycles vs %d for 1: latency not hidden", c8.Cycles, c1.Cycles)
	}
}

func TestCacheHitVersusMissLatency(t *testing.T) {
	// Same trace; with a cache the second pass over the data hits (short
	// runtime), without a cache every load pays DRAM latency.
	gen := func(_, _ int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			for pass := 0; pass < 4; pass++ {
				for i := 0; i < 16; i++ {
					b.LDG(uint8(i%8), isa.NoReg, kgen.Coalesced(uint32(i)*128, 4))
					b.ALU(8, uint8(i%8)) // consume
				}
			}
		})
	}
	cached := config.Baseline()
	uncached := config.Baseline()
	uncached.CacheBytes = 0
	sC, _ := newSM(cached, DefaultParams(), funcSource{1, 1, gen}, 1)
	cC, err := sC.Run()
	if err != nil {
		t.Fatal(err)
	}
	sU, _ := newSM(uncached, DefaultParams(), funcSource{1, 1, gen}, 1)
	cU, err := sU.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cC.Cycles >= cU.Cycles {
		t.Errorf("cached run (%d cycles) not faster than uncached (%d)", cC.Cycles, cU.Cycles)
	}
	if cC.CacheMisses != 16 {
		t.Errorf("CacheMisses = %d, want 16 cold misses", cC.CacheMisses)
	}
	if cC.CacheHits != 48 {
		t.Errorf("CacheHits = %d, want 48 warm hits", cC.CacheHits)
	}
	if cU.DRAMReadBytes <= cC.DRAMReadBytes {
		t.Error("uncached run should read more DRAM")
	}
}

func TestWriteThroughTraffic(t *testing.T) {
	gen := func(_, _ int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			b.ALU(0)
			for i := 0; i < 10; i++ {
				b.STG(0, isa.NoReg, kgen.Coalesced(uint32(i)*128, 4))
			}
		})
	}
	s, _ := newSM(config.Baseline(), DefaultParams(), funcSource{1, 1, gen}, 1)
	c, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.DRAMWriteBytes != 10*32*4 {
		t.Errorf("DRAMWriteBytes = %d, want %d (write-through)", c.DRAMWriteBytes, 10*32*4)
	}
	if c.DRAMReadBytes != 0 {
		t.Errorf("DRAMReadBytes = %d, want 0 (no-write-allocate)", c.DRAMReadBytes)
	}
}

func TestBarrierSynchronizesCTA(t *testing.T) {
	// Warp 0 does long work before the barrier; warp 1 reaches it
	// immediately. Both must finish after warp 0's pre-barrier work.
	gen := func(_, warp int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			if warp == 0 {
				b.ALU(0)
				for i := 0; i < 50; i++ {
					b.ALU(0, 0) // dependent chain: 8 cycles each
				}
			}
			b.Bar()
			b.ALU(1)
		})
	}
	s, _ := newSM(config.Baseline(), DefaultParams(), funcSource{1, 2, gen}, 1)
	c, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles < 400 {
		t.Errorf("cycles = %d; barrier should make both warps wait for the slow one", c.Cycles)
	}
}

func TestBarrierReleasedByExitingWarp(t *testing.T) {
	// Warp 1 exits without reaching the barrier; warp 0 must not hang.
	gen := func(_, warp int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			if warp == 0 {
				b.ALU(0)
				b.Bar()
			}
			b.ALU(1)
		})
	}
	s, _ := newSM(config.Baseline(), DefaultParams(), funcSource{1, 2, gen}, 1)
	if _, err := s.Run(); err != nil {
		t.Fatalf("CTA with early-exiting warp deadlocked: %v", err)
	}
}

func TestCTARotation(t *testing.T) {
	// 6 CTAs over 2 slots: all must retire.
	gen := func(cta, _ int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			b.ALU(0)
			b.ALU(1, 0)
		})
	}
	s, _ := newSM(config.Baseline(), DefaultParams(), funcSource{6, 2, gen}, 2)
	c, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.CTAsRetired != 6 {
		t.Errorf("CTAsRetired = %d, want 6", c.CTAsRetired)
	}
	if c.ThreadsRun != 6*2*32 {
		t.Errorf("ThreadsRun = %d", c.ThreadsRun)
	}
	if c.MaxResidentThreads != 2*2*32 {
		t.Errorf("MaxResidentThreads = %d, want 128", c.MaxResidentThreads)
	}
}

func TestMoreResidentCTAsHideDRAMLatency(t *testing.T) {
	// A DRAM-bound streaming kernel: each CTA loads distinct lines.
	// More resident CTAs -> more latency overlap -> fewer cycles.
	gen := func(cta, warp int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			base := uint32(cta)*1<<20 + uint32(warp)*1<<16
			for i := 0; i < 32; i++ {
				b.LDG(uint8(i%4), isa.NoReg, kgen.Coalesced(base+uint32(i)*4096, 4))
				b.ALU(5, uint8(i%4))
			}
		})
	}
	cfg := config.Baseline()
	cfg.CacheBytes = 0 // force DRAM on every access
	one, _ := newSM(cfg, DefaultParams(), funcSource{8, 2, gen}, 1)
	c1, err := one.Run()
	if err != nil {
		t.Fatal(err)
	}
	four, _ := newSM(cfg, DefaultParams(), funcSource{8, 2, gen}, 4)
	c4, err := four.Run()
	if err != nil {
		t.Fatal(err)
	}
	if float64(c4.Cycles) > 0.7*float64(c1.Cycles) {
		t.Errorf("4 CTAs: %d cycles, 1 CTA: %d; expected substantial latency hiding",
			c4.Cycles, c1.Cycles)
	}
}

func TestBankConflictsSlowExecution(t *testing.T) {
	// 32-way shared-memory bank conflicts serialize the issue slot.
	gen := func(degree int) func(int, int) []isa.WarpInst {
		return func(_, _ int) []isa.WarpInst {
			return build(func(b *kgen.Builder) {
				b.ALU(0)
				for i := 0; i < 64; i++ {
					b.LDS(1, isa.NoReg, kgen.Conflicting(0, degree))
				}
			})
		}
	}
	sNice, _ := newSM(config.Baseline(), DefaultParams(), funcSource{1, 1, gen(1)}, 1)
	cNice, err := sNice.Run()
	if err != nil {
		t.Fatal(err)
	}
	sBad, _ := newSM(config.Baseline(), DefaultParams(), funcSource{1, 1, gen(32)}, 1)
	cBad, err := sBad.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cBad.Cycles < cNice.Cycles+31*32 {
		t.Errorf("conflicted run %d vs clean %d: 31-cycle penalties missing",
			cBad.Cycles, cNice.Cycles)
	}
	if cBad.ConflictHist[4] == 0 {
		t.Error("conflict histogram should record >4-way conflicts")
	}
}

func TestTwoLevelSchedulerDeschedulesOnMiss(t *testing.T) {
	// 16 warps, each alternating a cold load and dependent ALU work: the
	// active set (8) must rotate through all 16 warps.
	gen := func(cta, warp int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			base := uint32(warp) * 1 << 16
			for i := 0; i < 8; i++ {
				b.LDG(0, isa.NoReg, kgen.Coalesced(base+uint32(i)*8192, 4))
				b.ALU(1, 0) // forces a deschedule while the load is in flight
			}
		})
	}
	cfg := config.Baseline()
	cfg.CacheBytes = 0
	s, _ := newSM(cfg, DefaultParams(), funcSource{1, 16, gen}, 1)
	c, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// All 16 warps must have completed all their instructions.
	if c.WarpInsts != 16*(8*2+1) {
		t.Errorf("WarpInsts = %d, want %d", c.WarpInsts, 16*(8*2+1))
	}
}

func TestSpilledTraceRunsSlower(t *testing.T) {
	// Identical program; one build with ample registers, one with 8.
	gen := func(regs int) func(int, int) []isa.WarpInst {
		return func(_, _ int) []isa.WarpInst {
			b := kgen.NewBuilder(kgen.Config{RegsAvail: regs, SpillBase: 1 << 24})
			for pass := 0; pass < 8; pass++ {
				for r := 0; r < 24; r++ {
					b.ALU(uint8(r), uint8((r+5)%24))
				}
			}
			return b.Finish()
		}
	}
	sFull, _ := newSM(config.Baseline(), DefaultParams(), funcSource{1, 1, gen(0)}, 1)
	cFull, err := sFull.Run()
	if err != nil {
		t.Fatal(err)
	}
	sSpill, _ := newSM(config.Baseline(), DefaultParams(), funcSource{1, 1, gen(8)}, 1)
	cSpill, err := sSpill.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cSpill.SpillInsts == 0 {
		t.Fatal("spill build produced no spill instructions")
	}
	if cSpill.Cycles <= cFull.Cycles {
		t.Errorf("spilled run %d cycles vs %d unspilled; spills should cost time",
			cSpill.Cycles, cFull.Cycles)
	}
	if cSpill.DRAMBytes() == 0 && cFull.DRAMBytes() == 0 {
		// Spill traffic is cacheable; at least the cold misses must show.
		t.Error("expected some DRAM traffic from spill fills")
	}
}

func TestRejectsOversubscription(t *testing.T) {
	gen := func(_, _ int) []isa.WarpInst { return build(func(b *kgen.Builder) { b.ALU(0) }) }
	if _, err := newSM(config.Baseline(), DefaultParams(), funcSource{1, 8, gen}, 5); err == nil {
		t.Error("40 warps should exceed the 32-warp SM limit")
	}
	if _, err := newSM(config.Baseline(), DefaultParams(), funcSource{1, 0, gen}, 1); err == nil {
		t.Error("zero warps per CTA should be rejected")
	}
	if _, err := newSM(config.Baseline(), DefaultParams(), funcSource{1, 1, gen}, 0); err == nil {
		t.Error("zero resident CTAs should be rejected")
	}
}

func TestArbitrationConflictsOnlyUnified(t *testing.T) {
	// Loads whose line slot collides with their MRF address register.
	gen := func(_, _ int) []isa.WarpInst {
		b := kgen.NewBuilder(kgen.Config{})
		b.ALU(0)
		b.ALU(4) // far apart so reads come from MRF
		for i := 0; i < 8; i++ {
			b.ALU(uint8(8 + i%4))
		}
		for i := 0; i < 16; i++ {
			b.LDG(1, 0, kgen.Broadcast(0)) // line 0 -> slot 0, r0 -> slot 0
			b.ALU(2, 1)
		}
		return b.Finish()
	}
	uniCfg := config.MemConfig{Design: config.Unified, RFBytes: 256 << 10, SharedBytes: 64 << 10, CacheBytes: 64 << 10}
	sU, _ := newSM(uniCfg, DefaultParams(), funcSource{1, 1, gen}, 1)
	cU, err := sU.Run()
	if err != nil {
		t.Fatal(err)
	}
	sP, _ := newSM(config.Baseline(), DefaultParams(), funcSource{1, 1, gen}, 1)
	cP, err := sP.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cU.ArbitrationConflicts == 0 {
		t.Error("unified design should record arbitration conflicts")
	}
	if cP.ArbitrationConflicts != 0 {
		t.Error("partitioned design cannot have arbitration conflicts")
	}
}

func TestRegisterHierarchyCountersPopulated(t *testing.T) {
	gen := func(_, _ int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			for i := 0; i < 50; i++ {
				b.ALU(uint8(i%8), uint8((i+1)%8))
				b.ALU(uint8((i+2)%8), uint8(i%8))
			}
		})
	}
	s, _ := newSM(config.Baseline(), DefaultParams(), funcSource{1, 1, gen}, 1)
	c, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.LRFReads == 0 || c.MRFReads == 0 {
		t.Errorf("register counters empty: LRF=%d MRF=%d", c.LRFReads, c.MRFReads)
	}
	if frac := c.MRFAccessFraction(); frac > 0.6 {
		t.Errorf("MRF fraction = %.2f; hierarchy should absorb most accesses", frac)
	}
}

func TestTexFetchLongLatency(t *testing.T) {
	gen := func(_, _ int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			b.TEX(0, isa.NoReg, kgen.Broadcast(0))
			b.ALU(1, 0)
		})
	}
	s, _ := newSM(config.Baseline(), DefaultParams(), funcSource{1, 1, gen}, 1)
	c, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles < 400 {
		t.Errorf("TEX-dependent run took %d cycles, want >= 400", c.Cycles)
	}
	if c.DRAMReadBytes == 0 {
		t.Error("texture fetches should consume DRAM bandwidth")
	}
}

func TestUncachedModePerThreadTransactions(t *testing.T) {
	// Without a cache, a coalesced 32-lane load costs 32 x 16 bytes
	// (the coalescing buffer is gone), and a broadcast costs one
	// transaction (the LSU still merges identical addresses).
	gen := func(_, _ int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			b.ALU(0)
			b.LDG(1, 0, kgen.Coalesced(0, 4))
			b.ALU(2, 1)
			b.LDG(1, 0, kgen.Broadcast(4096))
			b.ALU(2, 1)
		})
	}
	cfg := config.Baseline()
	cfg.CacheBytes = 0
	s, _ := newSM(cfg, DefaultParams(), funcSource{1, 1, gen}, 1)
	c, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.DRAMReadBytes != 32*16+16 {
		t.Errorf("uncached reads = %d bytes, want %d", c.DRAMReadBytes, 32*16+16)
	}
}

func TestSectoredFills(t *testing.T) {
	// A gather touching one 4-byte word in each of 32 lines fetches one
	// 32-byte sector per line, not full 128-byte lines.
	gen := func(_, _ int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			b.ALU(0)
			b.LDG(1, 0, kgen.Coalesced(0, 128)) // 32 lines, 1 word each
			b.ALU(2, 1)
		})
	}
	s, _ := newSM(config.Baseline(), DefaultParams(), funcSource{1, 1, gen}, 1)
	c, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.DRAMReadBytes != 32*32 {
		t.Errorf("sectored reads = %d bytes, want %d", c.DRAMReadBytes, 32*32)
	}
}

func TestWriteBackMode(t *testing.T) {
	// Write-back: a store miss allocates (fetches the line), re-writing
	// the same line adds no DRAM traffic, and the dirty line is reported
	// at the end.
	gen := func(_, _ int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			b.ALU(0)
			b.STG(0, isa.NoReg, kgen.Coalesced(0, 4))
			b.STG(0, isa.NoReg, kgen.Coalesced(0, 4))
		})
	}
	p := DefaultParams()
	p.WriteBackCache = true
	s, _ := newSM(config.Baseline(), p, funcSource{1, 1, gen}, 1)
	c, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.DRAMWriteBytes != 0 {
		t.Errorf("write-back store wrote %d bytes to DRAM", c.DRAMWriteBytes)
	}
	if c.DRAMReadBytes != 128 {
		t.Errorf("write-allocate should fetch the line once: %d bytes", c.DRAMReadBytes)
	}
	if c.DirtyLinesEnd != 1 {
		t.Errorf("DirtyLinesEnd = %d, want 1", c.DirtyLinesEnd)
	}
}

func TestStepAPIMatchesRun(t *testing.T) {
	gen := func(_, _ int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			b.ALU(0)
			for i := 0; i < 30; i++ {
				b.LDG(1, 0, kgen.Coalesced(uint32(i)*4096, 4))
				b.ALU(2, 1)
			}
		})
	}
	run, _ := newSM(config.Baseline(), DefaultParams(), funcSource{2, 2, gen}, 2)
	want, err := run.Run()
	if err != nil {
		t.Fatal(err)
	}
	stepped, _ := newSM(config.Baseline(), DefaultParams(), funcSource{2, 2, gen}, 2)
	stepped.Start()
	for !stepped.Done() {
		if err := stepped.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got := stepped.Finish()
	if got.Cycles != want.Cycles || got.WarpInsts != want.WarpInsts {
		t.Errorf("Step loop diverged from Run: %d/%d vs %d/%d",
			got.Cycles, got.WarpInsts, want.Cycles, want.WarpInsts)
	}
}

func TestStartAtOffsetsClock(t *testing.T) {
	gen := func(_, _ int) []isa.WarpInst {
		return build(func(b *kgen.Builder) { b.ALU(0) })
	}
	s, _ := newSM(config.Baseline(), DefaultParams(), funcSource{1, 1, gen}, 1)
	s.StartAt(1000)
	for !s.Done() {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c := s.Finish(); c.Cycles < 1000 {
		t.Errorf("Cycles = %d, want >= the 1000-cycle start offset", c.Cycles)
	}
}

func TestMaskedInstructionThreadCount(t *testing.T) {
	gen := func(_, _ int) []isa.WarpInst {
		b := kgen.NewBuilder(kgen.Config{Mask: 0x0000FFFF}) // 16 active lanes
		b.ALU(0)
		b.STG(0, isa.NoReg, kgen.Coalesced(0, 4))
		return b.Finish()
	}
	s, _ := newSM(config.Baseline(), DefaultParams(), funcSource{1, 1, gen}, 1)
	c, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 3 warp instructions (ALU, STG, EXIT) but only 16 lanes each.
	if c.ThreadInsts != 3*16 {
		t.Errorf("ThreadInsts = %d, want 48", c.ThreadInsts)
	}
	if c.DRAMWriteBytes != 16*4 {
		t.Errorf("masked store wrote %d bytes, want 64", c.DRAMWriteBytes)
	}
}

func TestGreedySchedulerIssuesRuns(t *testing.T) {
	// Independent ALU streams: GTO and RR must both finish all work; GTO
	// must not starve any warp (all CTAs retire).
	gen := func(_, _ int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			for i := 0; i < 40; i++ {
				b.ALU(uint8(i%8), uint8((i+3)%8))
			}
		})
	}
	p := DefaultParams()
	p.GreedyScheduler = true
	s, _ := newSM(config.Baseline(), p, funcSource{4, 4, gen}, 2)
	c, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.CTAsRetired != 4 {
		t.Errorf("GTO starved CTAs: retired %d of 4", c.CTAsRetired)
	}
	rr, _ := newSM(config.Baseline(), DefaultParams(), funcSource{4, 4, gen}, 2)
	cr, err := rr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.WarpInsts != cr.WarpInsts {
		t.Errorf("instruction counts diverge: %d vs %d", c.WarpInsts, cr.WarpInsts)
	}
}

func TestMSHRLimitThrottlesMisses(t *testing.T) {
	// A miss flood with 2 MSHRs must run slower than with unbounded
	// MSHRs, and still complete correctly.
	gen := func(cta, warp int) []isa.WarpInst {
		return build(func(b *kgen.Builder) {
			base := uint32(cta)<<20 | uint32(warp)<<16
			b.ALU(0)
			for i := 0; i < 32; i++ {
				b.LDG(uint8(1+i%4), 0, kgen.Coalesced(base+uint32(i)*4096, 4))
			}
			b.ALU(5, 1)
		})
	}
	limited := DefaultParams()
	limited.MaxMSHRs = 2
	sL, _ := newSM(config.Baseline(), limited, funcSource{2, 4, gen}, 2)
	cL, err := sL.Run()
	if err != nil {
		t.Fatal(err)
	}
	sU, _ := newSM(config.Baseline(), DefaultParams(), funcSource{2, 4, gen}, 2)
	cU, err := sU.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cL.Cycles <= cU.Cycles {
		t.Errorf("2 MSHRs (%d cycles) should be slower than unbounded (%d)", cL.Cycles, cU.Cycles)
	}
	if cL.CTAsRetired != 2 || cL.WarpInsts != cU.WarpInsts {
		t.Error("MSHR-limited run lost work")
	}
}
