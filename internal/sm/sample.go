package sm

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/banks"
	"repro/internal/dispatch"
	"repro/internal/isa"
	"repro/internal/sched"
	"repro/internal/stats"
)

// SampleSpec configures sampled simulation: alternate detailed windows
// of DetailedCycles cycles with functional fast-forwards of SkipCycles
// cycles. The zero value disables sampling (exact simulation).
//
// Sampled runs are approximate by design (Accel-Sim-style sampling):
// event counters stay exactly attributed — every instruction is executed
// and files its issue, conflict, register, cache, and DRAM-byte events,
// and the cache stays functionally warm — but timing inside a
// fast-forward collapses to flat latencies with no tag-port, MSHR, or
// DRAM-bus contention, so cycle counts (and anything derived from them,
// like IPC) carry a measured error bound. internal/harness reports that
// bound per workload; exact mode remains the default everywhere.
type SampleSpec struct {
	// DetailedCycles is the width W of each detailed window.
	DetailedCycles int64
	// SkipCycles is the span S fast-forwarded between windows.
	SkipCycles int64
}

// Enabled reports whether the spec requests sampling.
func (sp SampleSpec) Enabled() bool { return sp.DetailedCycles > 0 && sp.SkipCycles > 0 }

// String renders the spec in the flag syntax ParseSampleSpec accepts.
func (sp SampleSpec) String() string {
	return fmt.Sprintf("detailed=%d,skip=%d", sp.DetailedCycles, sp.SkipCycles)
}

// ParseSampleSpec parses the "-sample detailed=W,skip=S" flag syntax.
// The empty string yields a disabled spec.
func ParseSampleSpec(s string) (SampleSpec, error) {
	var sp SampleSpec
	if s == "" {
		return sp, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return sp, fmt.Errorf("sm: bad sample spec %q (want detailed=W,skip=S)", s)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n <= 0 {
			return sp, fmt.Errorf("sm: bad sample spec %q: %s must be a positive integer", s, key)
		}
		switch key {
		case "detailed":
			sp.DetailedCycles = n
		case "skip":
			sp.SkipCycles = n
		default:
			return sp, fmt.Errorf("sm: bad sample spec %q: unknown key %q", s, key)
		}
	}
	if !sp.Enabled() {
		return sp, fmt.Errorf("sm: sample spec %q needs both detailed=W and skip=S", s)
	}
	return sp, nil
}

// RunSampled executes the grid in sampled mode: detailed windows of
// sp.DetailedCycles cycles alternate with functional fast-forwards of
// sp.SkipCycles cycles until the grid completes. A disabled spec
// degrades to the exact RunContext path. The context is polled on the
// RunContext stride inside both the detailed windows and the
// fast-forward loops, so a deadline bounds sampled runs the same way it
// bounds exact ones.
//
// Probes require exact runs: their stall attribution must cover every
// issue slot, which a fast-forward skips past.
func (s *SM) RunSampled(ctx context.Context, sp SampleSpec) (*stats.Counters, error) {
	if !sp.Enabled() {
		return s.RunContext(ctx)
	}
	if s.prof != nil {
		return nil, fmt.Errorf("sm: sampled mode cannot attach a probe (stall attribution needs exact runs)")
	}
	if s.streamCounters != nil {
		return nil, fmt.Errorf("sm: sampled mode does not support multi-tenant streams")
	}
	poll := ctx != nil && ctx.Done() != nil
	s.Start()
	budget := ctxCheckInterval
	for !s.Done() {
		windowEnd := s.cycle + sp.DetailedCycles
		for !s.Done() && s.cycle < windowEnd {
			if err := s.Step(); err != nil {
				return nil, err
			}
			if budget--; budget == 0 {
				budget = ctxCheckInterval
				if poll && ctx.Err() != nil {
					return nil, ctx.Err()
				}
			}
		}
		if s.Done() {
			break
		}
		if err := s.fastForward(ctx, s.cycle+sp.SkipCycles, &budget); err != nil {
			return nil, err
		}
	}
	return s.Finish(), nil
}

// fastForward advances the SM to the target cycle functionally: every
// warp executes its instruction stream in slot order with exact event
// accounting (replayed bank outcomes, functional cache warming via the
// memsys Fast paths) but approximate timing — flat latencies, one
// virtual issue slot per warp, no structural contention. Barriers and
// CTA rotation run through the dispatcher as usual, so warp lifecycle
// state stays exact. The context poll budget is shared with the caller:
// cancellation fires inside long fast-forwards on the same stride as
// everywhere else (the RunContext contract).
func (s *SM) fastForward(ctx context.Context, until int64, budget *int) error {
	poll := ctx != nil && ctx.Done() != nil
	// Drain the active set: fast-forward operates purely on dispatch
	// state, and Refill rebuilds the set when detailed simulation
	// resumes. Each warp parks at the cycle it could next issue.
	s.sched.Walk(func(wIdx int) sched.Action {
		w := s.disp.Warp(wIdx)
		wake := s.cycle
		if w.NextIssue > wake {
			wake = w.NextIssue
		}
		s.disp.Park(wIdx, wake)
		return sched.Deschedule
	})

	start := s.cycle
	issued := int64(0)
	maxLocal := start
	dramBytes0 := s.counters.DRAMReadBytes + s.counters.DRAMWriteBytes
	n := s.disp.NumWarps()
	for {
		progressed := false
		for wIdx := 0; wIdx < n; wIdx++ {
			w := s.disp.Warp(wIdx)
			if w.Status != dispatch.Ready || w.WakeAt >= until {
				continue
			}
			now := w.WakeAt
			if now < start {
				now = start
			}
			s.disp.Activate(wIdx)
			issuedHere, end, err := s.runWarpFast(ctx, poll, wIdx, now, until, budget)
			issued += issuedHere
			if end > maxLocal {
				maxLocal = end
			}
			if err != nil {
				return err
			}
			progressed = true
		}
		if !progressed {
			break
		}
	}

	// Advance the clock: at least the skip target, at least one issue
	// slot per instruction executed (the SM is single-issue), at least
	// the cycles the DRAM bus needs to move the bytes the fast-forward
	// generated (the first-order structural bound for memory-bound
	// grids), and — when the grid finished inside the fast-forward — at
	// least the last warp's local completion.
	adv := until
	if t := start + issued; t > adv {
		adv = t
	}
	if bpc := int64(s.params.DRAM.Normalized().BytesPerCycle); bpc > 0 {
		moved := s.counters.DRAMReadBytes + s.counters.DRAMWriteBytes - dramBytes0
		if t := start + (moved+bpc-1)/bpc; t > adv {
			adv = t
		}
	}
	if s.disp.Done() && maxLocal > adv {
		adv = maxLocal
	}
	if adv > s.cycle {
		s.cycle = adv
	}
	if s.slotFreeAt < s.cycle {
		s.slotFreeAt = s.cycle
	}
	return nil
}

// runWarpFast executes one warp functionally from cycle now until it
// reaches the fast-forward horizon, blocks at a barrier, or exits. It
// returns the instructions executed and the warp's final local cycle.
func (s *SM) runWarpFast(ctx context.Context, poll bool, wIdx int, now, until int64, budget *int) (int64, int64, error) {
	w := s.disp.Warp(wIdx)
	issued := int64(0)
	for {
		if now >= until {
			s.disp.Park(wIdx, now)
			return issued, now, nil
		}
		wi := &w.Trace[w.PC]
		dep := now
		for _, src := range wi.Srcs {
			if src.Reg != isa.NoReg {
				if t := w.RegReady[src.Reg]; t > dep {
					dep = t
				}
			}
		}
		if w.NextIssue > dep {
			dep = w.NextIssue
		}
		if dep > now {
			now = dep
			continue
		}

		var out banks.Outcome
		if w.Outcomes != nil {
			out = w.Outcomes[w.PC]
		} else {
			out = s.bankModel.Evaluate(wi)
		}
		s.counters.WarpInsts++
		s.counters.ThreadInsts += int64(wi.ActiveThreads())
		if wi.Spill {
			s.counters.SpillInsts++
		}
		s.counters.RecordConflict(out.MaxPerBank)
		if out.Arbitration {
			s.counters.ArbitrationConflicts++
		}
		s.counters.RecordRegAccesses(wi)
		extra := int64(out.ExtraCycles)
		issued++

		complete := now + 1
		switch wi.Op {
		case isa.OpALU, isa.OpNop:
			complete = now + s.params.ALULatency + extra
		case isa.OpSFU:
			complete = now + s.params.SFULatency + extra
		case isa.OpLDS:
			complete = now + s.params.SharedLatency + extra
			s.counters.SharedReads += int64(out.MemAccesses)
		case isa.OpSTS:
			s.counters.SharedWrites += int64(out.MemAccesses)
		case isa.OpLDG:
			complete = s.mem.FastLoad(wi, now)
		case isa.OpSTG:
			s.mem.FastStore(wi, now)
		case isa.OpTEX:
			complete = s.mem.FastTex(wi, now)
		case isa.OpBAR:
			s.disp.Barrier(wIdx, now)
			return issued, now + 1, nil
		case isa.OpEXIT:
			s.disp.Exit(wIdx, now)
			return issued, now + 1, nil
		}
		if wi.Dst.Reg != isa.NoReg && complete > w.RegReady[wi.Dst.Reg] {
			w.RegReady[wi.Dst.Reg] = complete
		}
		w.PC++
		w.NextIssue = now + 1 + extra
		now++

		*budget--
		if *budget == 0 {
			*budget = ctxCheckInterval
			if poll && ctx.Err() != nil {
				s.disp.Park(wIdx, now)
				return issued, now, ctx.Err()
			}
		}
	}
}
