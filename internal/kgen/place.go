package kgen

import "repro/internal/isa"

// place assigns MRF/ORF/LRF spaces to every operand of a finished trace.
//
// The pass mirrors the compile-time register hierarchy management of
// Gebhart et al. [MICRO 2011], which the unified-memory design relies on
// to keep MRF bandwidth demand low:
//
//   - The trace is divided into regions at every point where the two-level
//     warp scheduler deschedules the warp: barriers, and the first
//     consumption of a result still outstanding from a global or texture
//     load. ORF and LRF contents do not survive region boundaries.
//   - Within a region, a short-latency result is placed in the LRF when
//     all of its nearby uses are by the immediately following result
//     (distance 1), or in the ORF when any use falls within the next
//     ORFWindow results. Uses in later regions or beyond the window read
//     the MRF, and the producer then also writes through to the MRF.
//   - Long-latency loads (global, texture) write the MRF: their consumers
//     run after a deschedule. Shared-memory loads complete while the warp
//     stays active, so their results use the hierarchy like ALU results.
func place(insts []isa.WarpInst) {
	n := len(insts)
	if n == 0 {
		return
	}

	type def struct {
		inst   int32 // producing instruction index, -1 if none
		region int32
		seq    int32 // producer sequence number within region
		isLoad bool
	}
	type agg struct {
		nearMax int32 // max same-region use distance within ORFWindow
		far     bool  // some use beyond the window or region
	}

	var lastDef [isa.MaxRegs]def
	for r := range lastDef {
		lastDef[r].inst = -1
	}
	// pendingLL marks registers written by a long-latency load whose
	// first use has not yet forced a deschedule.
	var pendingLL [isa.MaxRegs]bool

	aggs := make([]agg, n)
	producer := make([][3]int32, n) // per-src producing instruction, -1 if none

	region := int32(0)
	seq := int32(0) // producer sequence counter within region

	for i := 0; i < n; i++ {
		wi := &insts[i]

		// A deschedule happens before this instruction if it consumes an
		// outstanding long-latency result.
		for _, s := range wi.Srcs {
			if s.Reg != isa.NoReg && pendingLL[s.Reg] {
				region++
				seq = 0
				clear(pendingLL[:])
				break
			}
		}

		for k, s := range wi.Srcs {
			producer[i][k] = -1
			if s.Reg == isa.NoReg {
				continue
			}
			d := lastDef[s.Reg]
			if d.inst < 0 {
				continue // kernel input / uninitialized: counts as MRF
			}
			producer[i][k] = d.inst
			a := &aggs[d.inst]
			if d.region == region && !d.isLoad && seq-d.seq < ORFWindow && seq >= d.seq {
				if dist := seq - d.seq + 1; dist > a.nearMax {
					a.nearMax = dist
				}
			} else {
				a.far = true
			}
		}

		if wi.Dst.Reg != isa.NoReg {
			// Long-latency load results go straight to the MRF and never
			// occupy an LRF/ORF slot, so they do not advance the window:
			// a base address stays ORF-readable across a burst of loads.
			if !wi.Op.IsLongLatency() {
				seq++
			}
			lastDef[wi.Dst.Reg] = def{
				inst:   int32(i),
				region: region,
				seq:    seq,
				isLoad: wi.Op.IsLongLatency(),
			}
			pendingLL[wi.Dst.Reg] = wi.Op.IsLongLatency()
		}

		// Barriers and exits end the schedulable region after executing.
		if wi.Op == isa.OpBAR || wi.Op == isa.OpEXIT {
			region++
			seq = 0
			clear(pendingLL[:])
		}
	}

	// Resolve destination spaces from the aggregated uses.
	for i := 0; i < n; i++ {
		wi := &insts[i]
		if wi.Dst.Reg == isa.NoReg {
			wi.Dst.Space = isa.SpaceNone
			continue
		}
		a := aggs[i]
		switch {
		case wi.Op.IsLongLatency():
			wi.Dst.Space = isa.SpaceMRF
			wi.DstMRFWrite = true
		case a.nearMax == 1:
			wi.Dst.Space = isa.SpaceLRF
			wi.DstMRFWrite = a.far
		case a.nearMax > 1:
			wi.Dst.Space = isa.SpaceORF
			wi.DstMRFWrite = a.far
		default:
			// No nearby use: dead value or far-only uses go to the MRF.
			wi.Dst.Space = isa.SpaceMRF
			wi.DstMRFWrite = true
		}
	}

	// Resolve source spaces against their producers' placements.
	// A use is near iff its producer recorded it as contributing to
	// nearMax, which we recheck with the same region/sequence bookkeeping.
	region, seq = 0, 0
	for r := range lastDef {
		lastDef[r].inst = -1
	}
	clear(pendingLL[:])
	for i := 0; i < n; i++ {
		wi := &insts[i]
		for _, s := range wi.Srcs {
			if s.Reg != isa.NoReg && pendingLL[s.Reg] {
				region++
				seq = 0
				clear(pendingLL[:])
				break
			}
		}
		for k := range wi.Srcs {
			s := &wi.Srcs[k]
			if s.Reg == isa.NoReg {
				s.Space = isa.SpaceNone
				continue
			}
			s.Space = isa.SpaceMRF
			p := producer[i][k]
			if p < 0 {
				continue
			}
			d := lastDef[s.Reg]
			if d.inst != p {
				continue // clobbered meanwhile; defensive, cannot happen
			}
			prod := &insts[p]
			if d.region == region && !d.isLoad && seq >= d.seq && seq-d.seq < ORFWindow {
				switch prod.Dst.Space {
				case isa.SpaceLRF:
					s.Space = isa.SpaceLRF
				case isa.SpaceORF:
					s.Space = isa.SpaceORF
				}
			}
		}
		if wi.Dst.Reg != isa.NoReg {
			// Long-latency load results go straight to the MRF and never
			// occupy an LRF/ORF slot, so they do not advance the window:
			// a base address stays ORF-readable across a burst of loads.
			if !wi.Op.IsLongLatency() {
				seq++
			}
			lastDef[wi.Dst.Reg] = def{
				inst:   int32(i),
				region: region,
				seq:    seq,
				isLoad: wi.Op.IsLongLatency(),
			}
			pendingLL[wi.Dst.Reg] = wi.Op.IsLongLatency()
		}
		if wi.Op == isa.OpBAR || wi.Op == isa.OpEXIT {
			region++
			seq = 0
			clear(pendingLL[:])
		}
	}
}
