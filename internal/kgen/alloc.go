package kgen

import "repro/internal/isa"

// allocate rewrites a spill-free trace for a physical register budget,
// inserting fill loads and spill stores against the warp's spill region.
//
// Eviction uses Belady's MIN rule (furthest next use), which is the right
// model for a compiler that sees the whole kernel: unlike an online LRU it
// does not collapse on cyclic reference patterns, so a kernel whose hot
// window is one register larger than the budget loses a few percent, not
// half its throughput — matching the gentle spill curves of Table 1.
// Registers that are dead (no further use) are evicted for free; dirty
// registers with remaining uses are spilled with a store and reloaded with
// a fill at their next use. Registers read before any definition are
// kernel inputs and need no fill.
func allocate(insts []isa.WarpInst, budget int, spillBase uint32) []isa.WarpInst {
	if budget < minPhysRegs {
		budget = minPhysRegs
	}

	// Collect, per register, the ordered list of instruction indices that
	// use it (source or destination).
	var uses [isa.MaxRegs][]int32
	regsOf := func(wi *isa.WarpInst) [4]uint8 {
		return [4]uint8{wi.Srcs[0].Reg, wi.Srcs[1].Reg, wi.Srcs[2].Reg, wi.Dst.Reg}
	}
	for i := range insts {
		for _, r := range regsOf(&insts[i]) {
			if r != isa.NoReg {
				uses[r] = append(uses[r], int32(i))
			}
		}
	}

	const never = int32(1 << 30)
	var cursor [isa.MaxRegs]int // index into uses[r]
	nextUse := func(r uint8, after int32) int32 {
		u := uses[r]
		for cursor[r] < len(u) && u[cursor[r]] <= after {
			cursor[r]++
		}
		if cursor[r] == len(u) {
			return never
		}
		return u[cursor[r]]
	}

	var resident, dirty, defined, inCurrent [isa.MaxRegs]bool
	nResident := 0
	out := make([]isa.WarpInst, 0, len(insts)+len(insts)/4)

	spillOp := func(op isa.Op, r uint8) isa.WarpInst {
		var addrs isa.AddrVec
		base := spillBase + uint32(r)*128
		for l := 0; l < isa.WarpSize; l++ {
			addrs[l] = base + uint32(l)*4
		}
		wi := isa.WarpInst{Op: op, Mask: insts[0].Mask, Addrs: &addrs, Spill: true}
		wi.Dst.Reg = isa.NoReg
		for i := range wi.Srcs {
			wi.Srcs[i].Reg = isa.NoReg
		}
		if op == isa.OpLDG {
			wi.Dst.Reg = r
		} else {
			wi.Srcs[0].Reg = r
		}
		return wi
	}

	evict := func(i int32) {
		// Furthest next use among resident registers not needed by the
		// current instruction.
		victim, worst := -1, int32(-1)
		for r := 0; r < isa.MaxRegs; r++ {
			if !resident[r] || inCurrent[r] {
				continue
			}
			nu := nextUse(uint8(r), i-1)
			if nu > worst {
				victim, worst = r, nu
			}
			if nu == never {
				break // cannot do better than a dead register
			}
		}
		if victim < 0 {
			panic("kgen: no evictable register (budget below operand count?)")
		}
		if dirty[victim] && worst != never && defined[victim] {
			out = append(out, spillOp(isa.OpSTG, uint8(victim)))
		}
		resident[victim] = false
		dirty[victim] = false
		nResident--
	}

	ensure := func(r uint8, i int32, isWrite bool) {
		if resident[r] {
			return
		}
		if nResident >= budget {
			evict(i)
		}
		resident[r] = true
		nResident++
		if !isWrite && defined[r] {
			out = append(out, spillOp(isa.OpLDG, r))
		}
	}

	for i := range insts {
		wi := insts[i]
		rs := regsOf(&wi)
		for _, r := range rs {
			if r != isa.NoReg {
				inCurrent[r] = true
			}
		}
		for _, s := range wi.Srcs {
			if s.Reg != isa.NoReg {
				ensure(s.Reg, int32(i), false)
			}
		}
		if wi.Dst.Reg != isa.NoReg {
			ensure(wi.Dst.Reg, int32(i), true)
			dirty[wi.Dst.Reg] = true
			defined[wi.Dst.Reg] = true
		}
		for _, r := range rs {
			if r != isa.NoReg {
				inCurrent[r] = false
			}
		}
		out = append(out, wi)
	}
	return out
}
