package kgen

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// countOps tallies the trace by op class.
func countOps(trace []isa.WarpInst) map[isa.Op]int {
	m := make(map[isa.Op]int)
	for i := range trace {
		m[trace[i].Op]++
	}
	return m
}

func TestFinishAppendsExit(t *testing.T) {
	b := NewBuilder(Config{})
	b.ALU(0)
	trace := b.Finish()
	if trace[len(trace)-1].Op != isa.OpEXIT {
		t.Error("Finish must terminate the trace with EXIT")
	}
}

func TestNoSpillsWhenBudgetSuffices(t *testing.T) {
	b := NewBuilder(Config{RegsAvail: 16})
	for i := 0; i < 100; i++ {
		b.ALU(uint8(i%16), uint8((i+1)%16))
	}
	trace := b.Finish()
	for i := range trace {
		if trace[i].Spill {
			t.Fatal("no spill expected with sufficient registers")
		}
	}
}

func TestSpillsGrowAsBudgetShrinks(t *testing.T) {
	demand := 32
	emit := func(regsAvail int) int {
		b := NewBuilder(Config{RegsAvail: regsAvail})
		// Round-robin writes then reads over `demand` registers: a
		// working set larger than the budget must thrash.
		for pass := 0; pass < 4; pass++ {
			for r := 0; r < demand; r++ {
				b.ALU(uint8(r), uint8((r+1)%demand))
			}
		}
		spills := 0
		for _, wi := range b.Finish() {
			if wi.Spill {
				spills++
			}
		}
		return spills
	}
	s32, s24, s18 := emit(32), emit(24), emit(18)
	if s32 != 0 {
		t.Errorf("full budget spilled %d times", s32)
	}
	if !(s18 > s24 && s24 > 0) {
		t.Errorf("spills should grow as budget shrinks: 18->%d 24->%d", s18, s24)
	}
}

func TestSpillAddressesAreCoalescedPerRegister(t *testing.T) {
	b := NewBuilder(Config{RegsAvail: 6, SpillBase: 1 << 20})
	for r := 0; r < 12; r++ {
		b.ALU(uint8(r))
	}
	for r := 0; r < 12; r++ {
		b.ALU(12, uint8(r)) // read them all back
	}
	trace := b.Finish()
	sawSpill := false
	for _, wi := range trace {
		if !wi.Spill {
			continue
		}
		sawSpill = true
		if wi.Addrs == nil {
			t.Fatal("spill op without addresses")
		}
		base := wi.Addrs[0]
		if base < 1<<20 {
			t.Fatalf("spill address %#x below SpillBase", base)
		}
		for l := 1; l < isa.WarpSize; l++ {
			if wi.Addrs[l] != base+uint32(l)*4 {
				t.Fatalf("spill lane %d not coalesced: %#x vs base %#x", l, wi.Addrs[l], base)
			}
		}
		if base%128 != 0 {
			t.Fatalf("spill slot %#x not line aligned", base)
		}
	}
	if !sawSpill {
		t.Fatal("expected spill traffic")
	}
}

func TestFillLoadsPrecedeUse(t *testing.T) {
	b := NewBuilder(Config{RegsAvail: 6})
	b.ALU(0) // r0: next use is the very last -> Belady's first victim
	for r := 1; r < 10; r++ {
		b.ALU(uint8(r))
		b.ALU(uint8(r), uint8(r))
	}
	for r := 1; r < 10; r++ {
		b.ALU(11, uint8(r)) // keep r1..r9 nearer than r0
	}
	b.ALU(10, 0) // r0 was spilled; a fill must appear before this ALU
	trace := b.Finish()
	spilled := false
	for i := range trace {
		if trace[i].Spill && trace[i].Op == isa.OpSTG && trace[i].Srcs[0].Reg == 0 {
			spilled = true
		}
	}
	if !spilled {
		t.Fatal("dirty r0 with a future use must be spilled with a store")
	}
	for i := range trace {
		wi := &trace[i]
		if wi.Op == isa.OpALU && wi.Srcs[0].Reg == 0 {
			// Scan backwards: a fill of r0 must appear after its last
			// eviction and before this use (other allocator traffic may
			// sit in between).
			for j := i - 1; j >= 0; j-- {
				p := &trace[j]
				if p.Spill && p.Op == isa.OpLDG && p.Dst.Reg == 0 {
					return
				}
				if !p.Spill {
					break
				}
			}
			t.Fatalf("instruction %d uses r0 without a preceding fill", i)
		}
	}
	t.Fatal("consumer of r0 not found")
}

func TestPlacementLRF(t *testing.T) {
	b := NewBuilder(Config{})
	b.ALU(0)    // r0 produced
	b.ALU(1, 0) // consumed immediately -> LRF
	trace := b.Finish()
	if trace[0].Dst.Space != isa.SpaceLRF {
		t.Errorf("producer placed in %v, want LRF", trace[0].Dst.Space)
	}
	if trace[1].Srcs[0].Space != isa.SpaceLRF {
		t.Errorf("consumer reads %v, want LRF", trace[1].Srcs[0].Space)
	}
}

func TestPlacementORF(t *testing.T) {
	b := NewBuilder(Config{})
	b.ALU(0)    // r0
	b.ALU(1)    // intervening result
	b.ALU(2, 0) // distance 2 -> ORF
	trace := b.Finish()
	if trace[0].Dst.Space != isa.SpaceORF {
		t.Errorf("producer placed in %v, want ORF", trace[0].Dst.Space)
	}
	if trace[2].Srcs[0].Space != isa.SpaceORF {
		t.Errorf("consumer reads %v, want ORF", trace[2].Srcs[0].Space)
	}
}

func TestPlacementMRFBeyondWindow(t *testing.T) {
	b := NewBuilder(Config{})
	b.ALU(0)
	for i := 0; i < ORFWindow; i++ { // ORFWindow intervening results
		b.ALU(uint8(1 + i))
	}
	b.ALU(10, 0) // too far -> MRF
	trace := b.Finish()
	if trace[0].Dst.Space != isa.SpaceMRF {
		t.Errorf("far-use producer placed in %v, want MRF", trace[0].Dst.Space)
	}
	last := trace[len(trace)-2] // before EXIT
	if last.Srcs[0].Space != isa.SpaceMRF {
		t.Errorf("far consumer reads %v, want MRF", last.Srcs[0].Space)
	}
}

func TestPlacementMixedNearAndFarUses(t *testing.T) {
	b := NewBuilder(Config{})
	b.ALU(0)
	b.ALU(1, 0) // near use (distance 1)
	for i := 0; i < 6; i++ {
		b.ALU(uint8(2 + i))
	}
	b.ALU(10, 0) // far use
	trace := b.Finish()
	if trace[0].Dst.Space != isa.SpaceLRF || !trace[0].DstMRFWrite {
		t.Errorf("mixed-use producer: space=%v mrfWrite=%v, want LRF+MRF",
			trace[0].Dst.Space, trace[0].DstMRFWrite)
	}
}

func TestBarrierEndsRegion(t *testing.T) {
	b := NewBuilder(Config{})
	b.ALU(0)
	b.Bar()
	b.ALU(1, 0) // across a barrier -> MRF
	trace := b.Finish()
	if trace[2].Srcs[0].Space != isa.SpaceMRF {
		t.Errorf("cross-barrier read from %v, want MRF", trace[2].Srcs[0].Space)
	}
	if !trace[0].DstMRFWrite {
		t.Error("value live across barrier must write through to MRF")
	}
}

func TestLoadConsumptionEndsRegion(t *testing.T) {
	b := NewBuilder(Config{})
	b.LDG(0, isa.NoReg, Coalesced(0, 4))
	b.ALU(1)    // independent work in the shadow of the load
	b.ALU(2, 1) // would be LRF...
	b.ALU(3, 0) // consumes the load -> deschedule point
	b.ALU(4, 1) // r1 now in a new region -> MRF
	trace := b.Finish()
	if trace[0].Dst.Space != isa.SpaceMRF {
		t.Errorf("load result placed in %v, want MRF", trace[0].Dst.Space)
	}
	if trace[3].Srcs[0].Space != isa.SpaceMRF {
		t.Errorf("load consumer reads %v, want MRF", trace[3].Srcs[0].Space)
	}
	if trace[2].Srcs[0].Space != isa.SpaceLRF {
		t.Errorf("in-shadow consumer reads %v, want LRF", trace[2].Srcs[0].Space)
	}
	if trace[4].Srcs[0].Space != isa.SpaceMRF {
		t.Errorf("post-deschedule consumer reads %v, want MRF", trace[4].Srcs[0].Space)
	}
}

// TestMRFAccessReduction checks the headline effect the unified design
// depends on: on typical dependent ALU code, the hierarchy serves well
// over half of operand accesses without touching the MRF.
func TestMRFAccessReduction(t *testing.T) {
	b := NewBuilder(Config{})
	// A chain-heavy body resembling compiled arithmetic code.
	for i := 0; i < 200; i++ {
		r := uint8(i % 8)
		b.ALU(r, uint8((i+7)%8))
		b.ALU(uint8((i+1)%8), r)
	}
	trace := b.Finish()
	mrf, total := 0, 0
	for _, wi := range trace {
		for _, s := range wi.Srcs {
			if !s.Valid() {
				continue
			}
			total++
			if s.Space == isa.SpaceMRF {
				mrf++
			}
		}
		if wi.Dst.Valid() {
			total++
			if wi.Dst.Space == isa.SpaceMRF || wi.DstMRFWrite {
				mrf++
			}
		}
	}
	if total == 0 {
		t.Fatal("no operands")
	}
	frac := float64(mrf) / float64(total)
	if frac > 0.5 {
		t.Errorf("MRF operand fraction = %.2f, want < 0.5 (paper: ~40%%)", frac)
	}
}

func TestEmitAfterFinishPanics(t *testing.T) {
	b := NewBuilder(Config{})
	b.Finish()
	defer func() {
		if recover() == nil {
			t.Error("emit after Finish should panic")
		}
	}()
	b.ALU(0)
}

func TestTooManySourcesPanics(t *testing.T) {
	b := NewBuilder(Config{})
	defer func() {
		if recover() == nil {
			t.Error("4-source instruction should panic")
		}
	}()
	b.ALU(0, 1, 2, 3, 4)
}

// TestEverySrcHasSpace property-checks that the placement pass leaves no
// operand unresolved, under random programs with and without spilling.
func TestEverySrcHasSpace(t *testing.T) {
	f := func(seed int64, budget uint8, ops []uint16) bool {
		b := NewBuilder(Config{RegsAvail: 6 + int(budget)%32})
		for _, o := range ops {
			dst := uint8(o % 24)
			src := uint8((o >> 5) % 24)
			switch o % 5 {
			case 0, 1:
				b.ALU(dst, src)
			case 2:
				b.SFU(dst, src, uint8((o>>10)%24))
			case 3:
				b.LDG(dst, src, Coalesced(uint32(o)*4, 4))
			case 4:
				b.STS(src, isa.NoReg, Coalesced(uint32(o)*4, 4))
			}
		}
		trace := b.Finish()
		for _, wi := range trace {
			for _, s := range wi.Srcs {
				if s.Reg != isa.NoReg && s.Space == isa.SpaceNone {
					return false
				}
			}
			if wi.Dst.Reg != isa.NoReg && wi.Dst.Space == isa.SpaceNone {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddrHelpers(t *testing.T) {
	co := Coalesced(100, 4)
	if co[0] != 100 || co[31] != 100+31*4 {
		t.Errorf("Coalesced wrong: %v, %v", co[0], co[31])
	}
	br := Broadcast(64)
	for _, a := range br {
		if a != 64 {
			t.Fatal("Broadcast should be uniform")
		}
	}
	cf := Conflicting(0, 4)
	if cf[0] != 0 || cf[1] != 128 || cf[4] != 4 {
		t.Errorf("Conflicting(4): %v %v %v", cf[0], cf[1], cf[4])
	}
	idx := make([]uint32, isa.WarpSize)
	for i := range idx {
		idx[i] = uint32(i * 2)
	}
	ga := Gather(1000, 4, idx)
	if ga[3] != 1000+6*4 {
		t.Errorf("Gather lane 3 = %d", ga[3])
	}
}
