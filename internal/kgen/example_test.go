package kgen_test

import (
	"fmt"

	"repro/internal/kgen"
)

// ExampleBuilder shows the placement pass at work: a value consumed by the
// next instruction lives in the last result file, one consumed a little
// later in the operand register file, and the result of a global load —
// whose consumer runs after the warp is descheduled — in the main register
// file.
func ExampleBuilder() {
	b := kgen.NewBuilder(kgen.Config{})
	b.ALU(0)                          // r0: read by the next instruction
	b.ALU(1, 0)                       // r1: read two results later
	b.ALU(2)                          //
	b.ALU(3, 1)                       //
	b.LDG(4, 3, kgen.Coalesced(0, 4)) // r4: long-latency load
	b.ALU(5, 4)                       // consuming r4 forces a deschedule
	trace := b.Finish()
	for _, wi := range trace[:6] {
		fmt.Println(wi.String())
	}
	// Output:
	// ALU r0@LRF
	// ALU r1@ORF r0@LRF
	// ALU r2@MRF
	// ALU r3@LRF r1@ORF
	// LDG r4@MRF r3@LRF
	// ALU r5@MRF r4@MRF
}
