package kgen

import (
	"math/rand/v2"

	"repro/internal/isa"
)

// Coalesced returns per-thread addresses base + lane*stride: the canonical
// fully coalesced GPU access (a 4-byte stride touches one 128-byte line per
// warp).
func Coalesced(base, stride uint32) *isa.AddrVec {
	var v isa.AddrVec
	for l := 0; l < isa.WarpSize; l++ {
		v[l] = base + uint32(l)*stride
	}
	return &v
}

// CoalescedMod returns per-thread addresses (base + lane*stride) mod m,
// for strided patterns that must stay inside a segment of m bytes (e.g. a
// CTA's shared-memory allocation). m must be positive.
func CoalescedMod(base, stride, m uint32) *isa.AddrVec {
	var v isa.AddrVec
	for l := 0; l < isa.WarpSize; l++ {
		v[l] = (base + uint32(l)*stride) % m
	}
	return &v
}

// Broadcast returns the same address for every thread (served by a single
// bank access / cache line).
func Broadcast(addr uint32) *isa.AddrVec {
	var v isa.AddrVec
	for l := range v {
		v[l] = addr
	}
	return &v
}

// Strided2D returns addresses base + lane*colStride for a warp reading one
// element per row of a row-major matrix: colStride equal to the row pitch
// produces the worst-case one-line-per-thread pattern.
func Strided2D(base, colStride uint32) *isa.AddrVec {
	return Coalesced(base, colStride)
}

// Random returns addresses drawn uniformly from [base, base+size), aligned
// to align bytes. It models pointer-chasing and irregular gather patterns
// (graph traversal, hash probing).
func Random(rng *rand.Rand, base, size, align uint32) *isa.AddrVec {
	var v isa.AddrVec
	if align == 0 {
		align = 4
	}
	slots := size / align
	if slots == 0 {
		slots = 1
	}
	for l := range v {
		v[l] = base + (rng.Uint32N(slots))*align
	}
	return &v
}

// ClusteredRandom returns gather addresses with line-level locality:
// consecutive groups of groupLanes lanes read adjacent 4-byte words of one
// randomly chosen 128-byte line. It models data-dependent gathers whose
// targets have spatial structure (graph neighbour lists, BVH nodes), where
// a warp touches ~32/groupLanes distinct lines rather than 32.
func ClusteredRandom(rng *rand.Rand, base, size uint32, groupLanes int) *isa.AddrVec {
	var v isa.AddrVec
	if groupLanes < 1 {
		groupLanes = 1
	}
	lines := size / 128
	if lines == 0 {
		lines = 1
	}
	for l := 0; l < isa.WarpSize; l += groupLanes {
		line := base + rng.Uint32N(lines)*128
		for j := 0; j < groupLanes && l+j < isa.WarpSize; j++ {
			v[l+j] = line + uint32(j)*4
		}
	}
	return &v
}

// Gather returns per-lane addresses base + idx[lane]*elem for an index
// vector, as produced by data-dependent gathers. idx must have WarpSize
// entries.
func Gather(base, elem uint32, idx []uint32) *isa.AddrVec {
	var v isa.AddrVec
	for l := range v {
		v[l] = base + idx[l]*elem
	}
	return &v
}

// Conflicting returns shared-memory addresses in which groups of `degree`
// consecutive lanes hit the same 4-byte bank column (stride of 128 bytes
// between lanes within a group), producing a degree-way bank conflict in
// the baseline design. degree must divide WarpSize.
func Conflicting(base uint32, degree int) *isa.AddrVec {
	var v isa.AddrVec
	if degree < 1 {
		degree = 1
	}
	for l := 0; l < isa.WarpSize; l++ {
		group := l / degree
		within := l % degree
		v[l] = base + uint32(group)*4 + uint32(within)*128
	}
	return &v
}
