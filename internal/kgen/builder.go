// Package kgen builds per-warp instruction traces for the SM simulator.
//
// It stands in for the paper's Ocelot-based PTX tracing flow: workloads
// (internal/workloads) describe their computation against a small builder
// API, and kgen lowers that description into isa.WarpInst traces, performing
// the two compiler responsibilities the paper depends on:
//
//   - Register allocation with spilling. Each kernel references
//     architectural registers according to its natural computation
//     structure; when the configured physical register budget is smaller
//     than the kernel's demand, a Belady (furthest-next-use) allocation
//     pass — the right model for a compiler that sees the whole kernel —
//     inserts spill stores and fill loads to a per-warp, register-major
//     local region in global memory (coalesced: one 128-byte line per
//     register per warp). The Table 1 dynamic-instruction ratios emerge
//     from the reference patterns rather than from a fitted curve.
//
//   - Operand placement in the MRF/ORF/LRF hierarchy (Gebhart et al.,
//     MICRO 2011). Values are read from the LRF when produced by the
//     immediately preceding result, from the 4-entry ORF when produced
//     within the current schedulable region, and from the MRF otherwise.
//     Regions end at barriers and wherever the two-level scheduler would
//     deschedule the warp (first consumption of an outstanding global or
//     texture load).
package kgen

import (
	"fmt"

	"repro/internal/isa"
)

// ORFWindow is the reach of the operand register file in producer results:
// a value is ORF-resident for the next ORFWindow results of its region.
const ORFWindow = 4

// minPhysRegs is the floor on the physical register budget: the operands
// of a single instruction (up to 3 sources + 1 destination) plus allocator
// headroom must be co-resident.
const minPhysRegs = 6

// Config parameterizes trace generation for one warp.
type Config struct {
	// RegsAvail is the physical register budget per thread. Zero or
	// anything at or above the kernel's demand disables spilling.
	RegsAvail int
	// SpillBase is the global byte address of this warp's spill region.
	// Register r of lane l spills to SpillBase + r*128 + l*4.
	SpillBase uint32
	// Mask is the default active-thread mask (FullMask if zero).
	Mask uint32
}

// Builder accumulates one warp's trace. It is single use: Emit methods add
// instructions, Finish runs register allocation (spill insertion) and the
// operand placement pass, then returns the trace.
type Builder struct {
	cfg      Config
	insts    []isa.WarpInst
	finished bool
}

// NewBuilder returns a builder for one warp's trace.
func NewBuilder(cfg Config) *Builder {
	if cfg.Mask == 0 {
		cfg.Mask = isa.FullMask
	}
	return &Builder{cfg: cfg}
}

// Len returns the number of instructions emitted so far (including
// allocator-inserted spill code).
func (b *Builder) Len() int { return len(b.insts) }

// SetMask changes the active-thread mask for subsequently emitted
// instructions, modeling SIMT control-flow divergence (threads that take
// a different path, or that have finished their work, drop out of the
// mask). A zero mask is rejected: a fully inactive instruction would not
// be issued at all.
func (b *Builder) SetMask(mask uint32) {
	if mask == 0 {
		panic("kgen: empty active mask")
	}
	b.cfg.Mask = mask
}

// Mask returns the current active-thread mask.
func (b *Builder) Mask() uint32 { return b.cfg.Mask }

// ALU emits an arithmetic instruction.
func (b *Builder) ALU(dst uint8, srcs ...uint8) {
	b.emit(isa.OpALU, dst, srcs, nil)
}

// SFU emits a special-function instruction.
func (b *Builder) SFU(dst uint8, srcs ...uint8) {
	b.emit(isa.OpSFU, dst, srcs, nil)
}

// LDG emits a global load into dst using the per-thread addresses. addrReg,
// if not isa.NoReg, is the register holding the base address.
func (b *Builder) LDG(dst, addrReg uint8, addrs *isa.AddrVec) {
	b.emit(isa.OpLDG, dst, srcList(addrReg), addrs)
}

// STG emits a global store of data to the per-thread addresses.
func (b *Builder) STG(data, addrReg uint8, addrs *isa.AddrVec) {
	b.emit(isa.OpSTG, isa.NoReg, srcList(data, addrReg), addrs)
}

// LDS emits a shared-memory load.
func (b *Builder) LDS(dst, addrReg uint8, addrs *isa.AddrVec) {
	b.emit(isa.OpLDS, dst, srcList(addrReg), addrs)
}

// STS emits a shared-memory store.
func (b *Builder) STS(data, addrReg uint8, addrs *isa.AddrVec) {
	b.emit(isa.OpSTS, isa.NoReg, srcList(data, addrReg), addrs)
}

// TEX emits a texture fetch.
func (b *Builder) TEX(dst, addrReg uint8, addrs *isa.AddrVec) {
	b.emit(isa.OpTEX, dst, srcList(addrReg), addrs)
}

// Bar emits a CTA-wide barrier.
func (b *Builder) Bar() { b.emit(isa.OpBAR, isa.NoReg, nil, nil) }

// Exit terminates the warp. Finish appends one automatically if absent.
func (b *Builder) Exit() { b.emit(isa.OpEXIT, isa.NoReg, nil, nil) }

// srcList packs register operands, dropping NoReg entries.
func srcList(regs ...uint8) []uint8 {
	out := regs[:0]
	for _, r := range regs {
		if r != isa.NoReg {
			out = append(out, r)
		}
	}
	return out
}

// emit runs the register allocator over the operands and appends the
// instruction.
func (b *Builder) emit(op isa.Op, dst uint8, srcs []uint8, addrs *isa.AddrVec) {
	if b.finished {
		panic("kgen: emit after Finish")
	}
	if len(srcs) > 3 {
		panic(fmt.Sprintf("kgen: %v has %d sources, max 3", op, len(srcs)))
	}
	for _, r := range srcs {
		if int(r) >= isa.MaxRegs {
			panic(fmt.Sprintf("kgen: register r%d out of range", r))
		}
	}
	if dst != isa.NoReg && int(dst) >= isa.MaxRegs {
		panic(fmt.Sprintf("kgen: register r%d out of range", dst))
	}
	wi := isa.WarpInst{Op: op, Mask: b.cfg.Mask, Addrs: addrs}
	wi.Dst = isa.Operand{Reg: dst}
	for i := range wi.Srcs {
		wi.Srcs[i].Reg = isa.NoReg
	}
	for i, r := range srcs {
		wi.Srcs[i] = isa.Operand{Reg: r}
	}
	b.insts = append(b.insts, wi)
}

// Finish runs register allocation and the operand placement pass, then
// returns the trace. The builder must not be reused afterwards.
func (b *Builder) Finish() []isa.WarpInst {
	if b.finished {
		panic("kgen: Finish called twice")
	}
	if n := len(b.insts); n == 0 || b.insts[n-1].Op != isa.OpEXIT {
		b.Exit()
	}
	b.finished = true
	if b.cfg.RegsAvail > 0 && b.cfg.RegsAvail < isa.MaxRegs {
		b.insts = allocate(b.insts, b.cfg.RegsAvail, b.cfg.SpillBase)
	}
	place(b.insts)
	return b.insts
}
