package campaign

import (
	"strings"
	"testing"

	"repro/api"
)

// minSpec is a small valid campaign to mutate in validation tests.
func minSpec() api.CompareRequest {
	return api.CompareRequest{
		Name: "t",
		Machines: []api.CompareMachine{
			{Name: "base"},
			{Name: "uni", AllocTotalKB: 384},
		},
		Workloads: []string{"vectoradd", "sto"},
	}
}

func TestNewCompilesMachineMajorRuns(t *testing.T) {
	spec := minSpec()
	spec.Workloads = []string{"vectoradd", "needle@64"}
	spec.Seed = 7
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Baseline != 0 || c.BaselineName() != "base" {
		t.Fatalf("baseline = %d (%s), want first machine", c.Baseline, c.BaselineName())
	}
	if len(c.Runs) != 4 {
		t.Fatalf("compiled %d runs, want 2 machines x 2 workloads", len(c.Runs))
	}
	// Machine-major: [base/vectoradd, base/needle, uni/vectoradd, uni/needle].
	wantKernels := []string{"vectoradd", "needle", "vectoradd", "needle"}
	for i, rr := range c.Runs {
		if rr.Kernel != wantKernels[i] {
			t.Errorf("run %d kernel = %q, want %q", i, rr.Kernel, wantKernels[i])
		}
		if rr.Seed != 7 {
			t.Errorf("run %d seed = %d, want campaign seed", i, rr.Seed)
		}
	}
	if c.Runs[1].BF != 64 || c.Runs[3].BF != 64 {
		t.Errorf("needle runs lost the blocking factor: %+v", c.Runs)
	}
	if c.Runs[2].AllocTotalKB != 384 || c.Runs[0].AllocTotalKB != 0 {
		t.Errorf("alloc override misplaced: %+v", c.Runs)
	}
	if c.Workloads[1].Label != "needle@64" {
		t.Errorf("needle label = %q, want needle@64", c.Workloads[1].Label)
	}
}

func TestAliasExpansion(t *testing.T) {
	spec := minSpec()
	spec.Workloads = []string{"benefit"}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Workloads) == 0 || c.Workloads[0].Label != "bfs" {
		t.Fatalf("benefit alias expanded to %+v", c.Workloads)
	}
	spec.Workloads = []string{"all", "bfs"}
	if _, err := New(spec); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("overlapping alias + name should fail, got %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*api.CompareRequest)
		wantErr string
	}{
		{"missing name", func(s *api.CompareRequest) { s.Name = "" }, "missing \"name\""},
		{"no machines", func(s *api.CompareRequest) { s.Machines = nil }, "at least one machine"},
		{"unnamed machine", func(s *api.CompareRequest) { s.Machines[1].Name = "" }, "missing \"name\""},
		{"duplicate machine", func(s *api.CompareRequest) { s.Machines[1].Name = "base" }, "duplicate machine"},
		{"alloc and fermi", func(s *api.CompareRequest) { s.Machines[1].FermiTotalKB = 384 }, "at most one of"},
		{"fermi too small", func(s *api.CompareRequest) {
			s.Machines[1].AllocTotalKB = 0
			s.Machines[1].FermiTotalKB = 256
		}, "must exceed"},
		{"bad design", func(s *api.CompareRequest) { s.Machines[0].Machine.Design = "quantum" }, "unknown design"},
		{"unknown baseline", func(s *api.CompareRequest) { s.Baseline = "nope" }, "not a campaign machine"},
		{"no workloads", func(s *api.CompareRequest) { s.Workloads = nil }, "at least one workload"},
		{"unknown workload", func(s *api.CompareRequest) { s.Workloads = []string{"nope"} }, "nope"},
		{"bad blocking factor", func(s *api.CompareRequest) { s.Workloads = []string{"needle@x"} }, "bad blocking factor"},
		{"bf on non-needle", func(s *api.CompareRequest) { s.Workloads = []string{"bfs@64"} }, "needle only"},
		{"unknown metric", func(s *api.CompareRequest) { s.Metrics = []string{"vibes"} }, "unknown metric"},
		{"threshold off metric", func(s *api.CompareRequest) {
			s.Metrics = []string{"ipc"}
			s.Thresholds = map[string]float64{"energy": 5}
		}, "not a selected metric"},
		{"table unknown machine", func(s *api.CompareRequest) {
			s.Tables = []api.CompareTable{{Machine: "nope"}}
		}, "not a campaign machine"},
		{"table workload outside campaign", func(s *api.CompareRequest) {
			s.Tables = []api.CompareTable{{Machine: "uni", Workloads: []string{"bfs"}}}
		}, "not in the campaign's workload list"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := minSpec()
			tc.mutate(&spec)
			_, err := New(spec)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name":"t","machines":[{"name":"m"}],"workloads":["sto"],"bogus":1}`))
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown field should fail decoding, got %v", err)
	}
}

func TestTableDefaults(t *testing.T) {
	spec := minSpec()
	spec.Tables = []api.CompareTable{{Machine: "uni"}}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.tables[0].title; got != "uni vs base" {
		t.Errorf("default table title = %q", got)
	}
	if len(c.tables[0].workloads) != len(c.Workloads) {
		t.Errorf("default table workloads = %v, want all %d", c.tables[0].workloads, len(c.Workloads))
	}
}

func TestNote(t *testing.T) {
	c, err := New(minSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Note(); got != "compare t (2 machines x 2 workloads)" {
		t.Errorf("Note() = %q", got)
	}
}
