// Package campaign validates, compiles, executes, and renders
// declarative compare campaigns (api.CompareRequest): N named machine
// configurations evaluated over one workload list, diffed
// metric-by-metric against a baseline machine, with optional
// paper-style comparison tables and threshold-based regression
// highlighting.
//
// A campaign compiles to one machine-major list of api.RunRequests —
// the cells of the (machine x workload) matrix. The same compiled runs
// execute two ways with bit-identical outcomes: locally through
// core.Runner + parallel.Map (Execute), or remotely as a "compare" job
// whose result bytes are byte-identical to POST /v1/batch of the runs
// (ResultFromBatch). Rendering draws every scalar from exactly the
// fields that round-trip the JSON API losslessly (int64 counters,
// float64 totals), which is what makes the local CLI and the job API
// produce byte-identical tables — the same property the golden suite
// pins for the paper experiments.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/api"
	"repro/internal/workloads"
)

// Workload is one expanded campaign workload: a registry kernel plus
// the request fields that reproduce it server-side.
type Workload struct {
	// Label names the row in every table (the kernel name, or
	// "needle@BF" for explicit blocking-factor variants).
	Label string
	// Name and BF are the RunRequest fields addressing the kernel.
	Name string
	BF   int
	// Kernel is the resolved registry entry (nil for a mix).
	Kernel *workloads.Kernel
	// Streams holds the members of a multi-tenant mix workload
	// ("needle+matrixmul"): two or more single-kernel workloads that run
	// co-resident on one SM. Nil for single-kernel workloads.
	Streams []Workload
}

// tableSpec is a resolved CompareTable: indices instead of names.
type tableSpec struct {
	title     string
	machine   int
	workloads []int
}

// Campaign is a validated, compiled campaign.
type Campaign struct {
	// Spec is the validated request.
	Spec api.CompareRequest
	// Baseline is the index of the baseline machine in Spec.Machines.
	Baseline int
	// Workloads are the expanded campaign workloads, in listed order.
	Workloads []Workload
	// Runs are the compiled cells, machine-major: Runs[m*len(Workloads)+w]
	// is machine m under workload w. This is the batch a "compare" job
	// executes.
	Runs []api.RunRequest

	metrics []metricDef
	tables  []tableSpec
}

// workloadAliases expand to registry sets, in registry order.
var workloadAliases = map[string]func() []*workloads.Kernel{
	"all":        workloads.All,
	"benefit":    workloads.BenefitSet,
	"no-benefit": workloads.NoBenefitSet,
}

// parseWorkload resolves one workload entry: a set alias, a kernel
// name, "needle@BF", or a "+"-joined multi-tenant mix of those
// ("needle+matrixmul", "needle@64+bfs") — the same spelling the
// -streams CLI flags take.
func parseWorkload(entry string) ([]Workload, error) {
	if parts := strings.Split(entry, "+"); len(parts) > 1 {
		mix := Workload{Label: entry}
		for _, part := range parts {
			ws, err := parseWorkload(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			if len(ws) != 1 || ws[0].Streams != nil {
				return nil, fmt.Errorf("workload %q: mix members must be single kernels, not aliases or mixes", entry)
			}
			mix.Streams = append(mix.Streams, ws[0])
		}
		return []Workload{mix}, nil
	}
	if expand, ok := workloadAliases[entry]; ok {
		ks := expand()
		out := make([]Workload, len(ks))
		for i, k := range ks {
			out[i] = Workload{Label: k.Name, Name: k.Name, Kernel: k}
		}
		return out, nil
	}
	name, bf := entry, 0
	if at := strings.IndexByte(entry, '@'); at >= 0 {
		n, err := strconv.Atoi(entry[at+1:])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("workload %q: bad blocking factor (want e.g. \"needle@64\")", entry)
		}
		name, bf = entry[:at], n
	}
	k, err := kernelFor(name, bf)
	if err != nil {
		return nil, err
	}
	label := k.Name
	if bf != 0 {
		label = fmt.Sprintf("%s@%d", name, bf)
	}
	return []Workload{{Label: label, Name: name, BF: bf, Kernel: k}}, nil
}

// kernelFor resolves a kernel exactly as the service does (serve's
// resolve): needle honors an explicit BF, everything else must be a
// registry name.
func kernelFor(name string, bf int) (*workloads.Kernel, error) {
	if name == "needle" && bf != 0 {
		return workloads.NeedleKernel(bf), nil
	}
	if bf != 0 {
		return nil, fmt.Errorf("workload %q: blocking factors apply to needle only", name)
	}
	return workloads.ByName(name)
}

// expandWorkloads expands and de-duplicates a workload list.
func expandWorkloads(entries []string, seen map[string]int, ordered *[]Workload) error {
	for _, entry := range entries {
		ws, err := parseWorkload(entry)
		if err != nil {
			return err
		}
		for _, w := range ws {
			if _, dup := seen[w.Label]; dup {
				return fmt.Errorf("workload %q appears twice (aliases overlap?)", w.Label)
			}
			seen[w.Label] = len(*ordered)
			*ordered = append(*ordered, w)
		}
	}
	return nil
}

// New validates a campaign spec and compiles its run matrix.
func New(spec api.CompareRequest) (*Campaign, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("campaign: missing \"name\"")
	}
	if len(spec.Machines) == 0 {
		return nil, fmt.Errorf("campaign %s: \"machines\" must list at least one machine", spec.Name)
	}
	c := &Campaign{Spec: spec, Baseline: -1}
	machineIdx := make(map[string]int, len(spec.Machines))
	for i, m := range spec.Machines {
		if m.Name == "" {
			return nil, fmt.Errorf("campaign %s: machines[%d]: missing \"name\"", spec.Name, i)
		}
		if _, dup := machineIdx[m.Name]; dup {
			return nil, fmt.Errorf("campaign %s: duplicate machine %q", spec.Name, m.Name)
		}
		machineIdx[m.Name] = i
		if m.AllocTotalKB > 0 && m.FermiTotalKB > 0 {
			return nil, fmt.Errorf("campaign %s: machine %q: at most one of alloc_total_kb and fermi_total_kb", spec.Name, m.Name)
		}
		if m.FermiTotalKB > 0 && m.FermiTotalKB<<10 <= fermiRFBytes {
			return nil, fmt.Errorf("campaign %s: machine %q: fermi_total_kb must exceed the fixed %dKB register file", spec.Name, m.Name, fermiRFBytes>>10)
		}
		if _, _, _, err := m.Machine.Resolve(); err != nil {
			return nil, fmt.Errorf("campaign %s: machine %q: %v", spec.Name, m.Name, err)
		}
	}
	base := spec.Baseline
	if base == "" {
		base = spec.Machines[0].Name
	}
	bi, ok := machineIdx[base]
	if !ok {
		return nil, fmt.Errorf("campaign %s: baseline %q is not a campaign machine", spec.Name, base)
	}
	c.Baseline = bi

	if len(spec.Workloads) == 0 {
		return nil, fmt.Errorf("campaign %s: \"workloads\" must list at least one workload or alias", spec.Name)
	}
	workloadIdx := make(map[string]int)
	if err := expandWorkloads(spec.Workloads, workloadIdx, &c.Workloads); err != nil {
		return nil, fmt.Errorf("campaign %s: %v", spec.Name, err)
	}

	var err error
	if c.metrics, err = resolveMetrics(spec.Metrics); err != nil {
		return nil, fmt.Errorf("campaign %s: %v", spec.Name, err)
	}
	for name := range spec.Thresholds {
		found := false
		for _, m := range c.metrics {
			if m.name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("campaign %s: threshold for %q, which is not a selected metric (have %s)",
				spec.Name, name, strings.Join(metricNames(c.metrics), ", "))
		}
	}

	for i, ts := range spec.Tables {
		mi, ok := machineIdx[ts.Machine]
		if !ok {
			return nil, fmt.Errorf("campaign %s: tables[%d]: machine %q is not a campaign machine", spec.Name, i, ts.Machine)
		}
		resolved := tableSpec{machine: mi, title: ts.Title}
		if resolved.title == "" {
			resolved.title = fmt.Sprintf("%s vs %s", ts.Machine, spec.Machines[bi].Name)
		}
		if len(ts.Workloads) == 0 {
			for w := range c.Workloads {
				resolved.workloads = append(resolved.workloads, w)
			}
		} else {
			var subset []Workload
			if err := expandWorkloads(ts.Workloads, make(map[string]int), &subset); err != nil {
				return nil, fmt.Errorf("campaign %s: tables[%d]: %v", spec.Name, i, err)
			}
			for _, w := range subset {
				wi, ok := workloadIdx[w.Label]
				if !ok {
					return nil, fmt.Errorf("campaign %s: tables[%d]: workload %q is not in the campaign's workload list", spec.Name, i, w.Label)
				}
				resolved.workloads = append(resolved.workloads, wi)
			}
		}
		c.tables = append(c.tables, resolved)
	}

	// Compile the machine-major run matrix. A mix compiles to the
	// streams form; the campaign seed then rides on every stream (the
	// top-level seed field is mutually exclusive with streams).
	c.Runs = make([]api.RunRequest, 0, len(spec.Machines)*len(c.Workloads))
	for _, m := range spec.Machines {
		for _, w := range c.Workloads {
			rr := api.RunRequest{
				Machine:      m.Machine,
				AllocTotalKB: m.AllocTotalKB,
				FermiTotalKB: m.FermiTotalKB,
				TimeoutMS:    spec.TimeoutMS,
			}
			if len(w.Streams) > 0 {
				for _, member := range w.Streams {
					rr.Streams = append(rr.Streams, api.StreamRequest{
						Kernel: member.Name, BF: member.BF, Seed: spec.Seed,
					})
				}
			} else {
				rr.Kernel, rr.BF, rr.Seed = w.Name, w.BF, spec.Seed
			}
			c.Runs = append(c.Runs, rr)
		}
	}
	return c, nil
}

// Parse strictly decodes a campaign document and validates it. Unknown
// fields are errors, as everywhere else on the API surface.
func Parse(data []byte) (*Campaign, error) {
	var spec api.CompareRequest
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("campaign: %v", err)
	}
	return New(spec)
}

// Load reads, parses, and validates a campaign file.
func Load(path string) (*Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// Title is the campaign's display title (Title, or Name when unset).
func (c *Campaign) Title() string {
	if c.Spec.Title != "" {
		return c.Spec.Title
	}
	return c.Spec.Name
}

// BaselineName names the baseline machine.
func (c *Campaign) BaselineName() string { return c.Spec.Machines[c.Baseline].Name }

// Note is the one-line job description ("compare paper-designs (3
// machines x 26 workloads)").
func (c *Campaign) Note() string {
	return fmt.Sprintf("compare %s (%d machines x %d workloads)",
		c.Spec.Name, len(c.Spec.Machines), len(c.Workloads))
}
