package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/api"
	"repro/internal/parallel"
)

// renderAll joins every table of a result, the way cmd/compare prints
// them.
func renderAll(res *Result) string {
	var b strings.Builder
	for i, t := range res.Tables() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// TestExecuteDeterministicAcrossWorkers pins the campaign's parallel
// fan-out: rendered output is byte-identical for every worker count.
func TestExecuteDeterministicAcrossWorkers(t *testing.T) {
	spec := minSpec()
	spec.Tables = []api.CompareTable{{Machine: "uni"}}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer parallel.SetWorkers(parallel.Workers())

	parallel.SetWorkers(1)
	serial, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(8)
	fanned, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderAll(serial), renderAll(fanned); a != b {
		t.Errorf("output differs between -j 1 and -j 8:\n--- j=1 ---\n%s--- j=8 ---\n%s", a, b)
	}
}

// TestExecuteInfeasibleCell checks that a machine too small for a
// workload settles as an infeasible cell, not an error — and renders as
// such.
func TestExecuteInfeasibleCell(t *testing.T) {
	spec := minSpec()
	spec.Workloads = []string{"sto"}
	spec.Machines[1] = api.CompareMachine{Name: "tiny"}
	spec.Machines[1].Machine.RFKB = 4
	spec.Machines[1].Machine.SharedKB = 1
	spec.Machines[1].Machine.CacheKB = 1
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcomes[1][0].Infeasible {
		t.Fatalf("4KB register file should not fit sto: %+v", res.Outcomes[1][0])
	}
	if res.Outcomes[0][0].Infeasible {
		t.Fatal("baseline should be feasible")
	}
	out := renderAll(res)
	if !strings.Contains(out, "infeasible") {
		t.Errorf("rendered output should mark the infeasible cell:\n%s", out)
	}
}

// TestRegressionFlagging synthesizes outcomes to pin threshold logic:
// worse-than-threshold deltas are flagged in the table and listed by
// Regressions, in both metric directions.
func TestRegressionFlagging(t *testing.T) {
	spec := minSpec()
	spec.Workloads = []string{"vectoradd"}
	spec.Metrics = []string{"ipc", "energy"}
	spec.Thresholds = map[string]float64{"ipc": 5, "energy": 5}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{Campaign: c, Outcomes: [][]Outcome{
		{{Threads: 1024, Cycles: 1000, IPC: 10, EnergyJ: 1.0}},
		// IPC 10% below baseline (bad for higher-better), energy 10%
		// above (bad for lower-better): both cross the 5% thresholds.
		{{Threads: 1024, Cycles: 1100, IPC: 9, EnergyJ: 1.1}},
	}}
	regs := res.Regressions()
	if len(regs) != 2 {
		t.Fatalf("Regressions() = %+v, want ipc and energy", regs)
	}
	if regs[0].Metric != "ipc" || regs[0].Machine != "uni" || regs[0].DeltaPct > -9.9 {
		t.Errorf("ipc regression = %+v", regs[0])
	}
	if regs[1].Metric != "energy" || regs[1].DeltaPct < 9.9 {
		t.Errorf("energy regression = %+v", regs[1])
	}
	out := renderAll(res)
	if strings.Count(out, "!") != 2 {
		t.Errorf("want exactly the two regressions flagged:\n%s", out)
	}

	// Improvements in each metric's good direction must not flag.
	res.Outcomes[1][0] = Outcome{Threads: 1024, Cycles: 900, IPC: 11, EnergyJ: 0.9}
	if regs := res.Regressions(); len(regs) != 0 {
		t.Errorf("improvements flagged as regressions: %+v", regs)
	}
}

// TestInfeasibleBaselineDelta: cells without a feasible baseline render
// "-" deltas and never count as regressions.
func TestInfeasibleBaselineDelta(t *testing.T) {
	spec := minSpec()
	spec.Workloads = []string{"vectoradd"}
	spec.Metrics = []string{"ipc"}
	spec.Thresholds = map[string]float64{"ipc": 5}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{Campaign: c, Outcomes: [][]Outcome{
		{{Infeasible: true}},
		{{Threads: 1024, Cycles: 1100, IPC: 9, EnergyJ: 1.1}},
	}}
	if regs := res.Regressions(); len(regs) != 0 {
		t.Errorf("infeasible baseline produced regressions: %+v", regs)
	}
	out := renderAll(res)
	if !strings.Contains(out, "infeasible") || strings.Contains(out, "!") {
		t.Errorf("infeasible baseline should render without flags:\n%s", out)
	}
}

// TestPaperDesignsCampaignReproducesGoldens is the tentpole acceptance
// check: the committed paper-designs campaign's three paper-style
// tables are byte-identical to the harness golden files for Figures 7,
// 9, and 10.
func TestPaperDesignsCampaignReproducesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign execution skipped in -short mode")
	}
	c, err := Load(filepath.Join("..", "..", "examples", "campaigns", "paper-designs.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	tables := res.Tables()
	// Three metric diff tables first, then the three paper tables.
	if len(tables) != 6 {
		t.Fatalf("campaign rendered %d tables, want 6", len(tables))
	}
	for i, name := range []string{"figure7", "figure9", "figure10"} {
		golden := filepath.Join("..", "harness", "testdata", "golden", name+".txt")
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatal(err)
		}
		if got := tables[3+i].String(); got != string(want) {
			t.Errorf("%s: campaign table diverged from %s\n--- got ---\n%s--- want ---\n%s",
				name, golden, got, want)
		}
	}
}

// TestCommittedCampaignsParse keeps every committed example campaign
// loadable.
func TestCommittedCampaignsParse(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "campaigns")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		n++
		if _, err := Load(filepath.Join(dir, e.Name())); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
	if n == 0 {
		t.Fatal("no committed campaigns found")
	}
}
