package campaign

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/api"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/sm"
	"repro/internal/stats"
)

// fermiRFBytes is the Fermi-like design's fixed register file.
const fermiRFBytes = config.BaselineRFBytes

// Outcome is one campaign cell's result, reduced to scalars that
// round-trip the JSON API losslessly: identical whether produced by a
// local core run or decoded from a service response. Every rendered
// number derives from these fields, so local and remote tables are
// byte-identical.
type Outcome struct {
	// Infeasible marks a cell whose configuration cannot fit even one
	// CTA (a 422 on the service side). Infeasible cells carry no other
	// data.
	Infeasible bool
	// Config is the resolved configuration the cell executed under.
	Config api.ConfigInfo
	// Threads is the admitted residency.
	Threads int
	// Cycles, DRAMBytes, and ConflictCycles are exact counter values.
	Cycles         int64
	DRAMBytes      int64
	ConflictCycles int64
	// IPC is thread instructions per cycle; EnergyJ total joules.
	IPC     float64
	EnergyJ float64
}

// outcomeOf reduces one run to its Outcome. Both execution paths funnel
// through this: locally from core.Result fields, remotely from the
// decoded RunResponse — the counters round-trip exactly, so the derived
// floats are bit-identical.
func outcomeOf(cfg api.ConfigInfo, threads int, cnt *stats.Counters, energyJ float64) Outcome {
	return Outcome{
		Config:         cfg,
		Threads:        threads,
		Cycles:         cnt.Cycles,
		DRAMBytes:      cnt.DRAMBytes(),
		ConflictCycles: cnt.ConflictCycles,
		IPC:            cnt.ThreadIPC(),
		EnergyJ:        energyJ,
	}
}

// Result is an executed campaign: one Outcome per (machine, workload)
// cell.
type Result struct {
	Campaign *Campaign
	// Outcomes is indexed [machine][workload], matching
	// Campaign.Spec.Machines and Campaign.Workloads.
	Outcomes [][]Outcome
}

// runnerCache memoizes core.Runners by their (timing, energy)
// parameters, exactly like the service does: the runner depends only on
// that half of the machine, so cells under different capacities share
// one Runner and its per-kernel baseline calibrations.
type runnerCache struct {
	mu      sync.Mutex
	runners map[string]*core.Runner
}

func (rc *runnerCache) get(p sm.Params, e energy.Params) (*core.Runner, error) {
	canon := machine.Describe(config.Baseline(), p, e)
	canon.Design, canon.RFKB, canon.SharedKB, canon.CacheKB, canon.MaxThreads = "", 0, 0, 0, 0
	kb, err := json.Marshal(canon)
	if err != nil {
		return nil, err
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if r, ok := rc.runners[string(kb)]; ok {
		return r, nil
	}
	r := core.NewRunner()
	r.Params = p
	r.Energy.P = e
	if rc.runners == nil {
		rc.runners = make(map[string]*core.Runner)
	}
	rc.runners[string(kb)] = r
	return r, nil
}

// resolveConfig derives a cell's memory configuration from its request,
// mirroring the service's resolve step: the machine description first,
// then the §4.5 allocation or Fermi-like preset override. reqs carries
// one entry per kernel of the cell — a multi-tenant mix allocates
// jointly, exactly as the service's streams path does.
func resolveConfig(reqs []config.KernelRequirements, rr api.RunRequest) (config.MemConfig, sm.Params, energy.Params, error) {
	cfg, params, eparams, err := rr.Machine.Resolve()
	if err != nil {
		return cfg, params, eparams, err
	}
	if rr.AllocTotalKB > 0 && rr.FermiTotalKB > 0 {
		return cfg, params, eparams, fmt.Errorf("at most one of alloc_total_kb and fermi_total_kb")
	}
	if rr.AllocTotalKB > 0 {
		cfg, err = config.AllocateMulti(reqs, rr.AllocTotalKB<<10, rr.Machine.MaxThreads)
		if err != nil {
			return cfg, params, eparams, err
		}
	}
	if rr.FermiTotalKB > 0 {
		if rr.FermiTotalKB<<10 <= fermiRFBytes {
			return cfg, params, eparams, fmt.Errorf(
				"fermi_total_kb must exceed the fixed %dKB register file", fermiRFBytes>>10)
		}
		cfg = config.ChooseFermiMulti(reqs, rr.FermiTotalKB<<10-fermiRFBytes, rr.Machine.MaxThreads)
	}
	return cfg, params, eparams, nil
}

// configInfo is the API view of a resolved configuration (the service's
// RunResponse.Config construction).
func configInfo(cfg config.MemConfig) api.ConfigInfo {
	return api.ConfigInfo{
		Design:      cfg.Design.String(),
		RFBytes:     cfg.RFBytes,
		SharedBytes: cfg.SharedBytes,
		CacheBytes:  cfg.CacheBytes,
		MaxThreads:  cfg.MaxThreads,
	}
}

// Execute runs every cell locally, fanned out across the parallel
// engine. Results are deterministic and independent of the worker
// count. A cell whose configuration cannot fit the kernel settles as an
// infeasible Outcome; any other failure aborts the campaign.
func (c *Campaign) Execute() (*Result, error) {
	rc := &runnerCache{}
	flat, err := parallel.Map(len(c.Runs), func(i int) (Outcome, error) {
		rr := c.Runs[i]
		label := c.Workloads[i%len(c.Workloads)].Label
		machineName := c.Spec.Machines[i/len(c.Workloads)].Name
		spec := core.RunSpec{RegsPerThread: rr.RegsPerThread, Seed: rr.Seed}
		var reqs []config.KernelRequirements
		if len(rr.Streams) > 0 {
			for _, sr := range rr.Streams {
				k, err := kernelFor(sr.Kernel, sr.BF)
				if err != nil {
					return Outcome{}, err
				}
				spec.Streams = append(spec.Streams, core.StreamSpec{
					Kernel: k, RegsPerThread: sr.RegsPerThread, Seed: sr.Seed,
				})
				reqs = append(reqs, k.Requirements())
			}
		} else {
			k, err := kernelFor(rr.Kernel, rr.BF)
			if err != nil {
				return Outcome{}, err
			}
			spec.Kernel = k
			reqs = []config.KernelRequirements{k.Requirements()}
		}
		cfg, params, eparams, err := resolveConfig(reqs, rr)
		if err != nil {
			return Outcome{}, fmt.Errorf("%s under %s: %w", label, machineName, err)
		}
		spec.Config = cfg
		r, err := rc.get(params, eparams)
		if err != nil {
			return Outcome{}, err
		}
		res, err := r.Run(spec)
		if core.IsInfeasible(err) {
			return Outcome{Infeasible: true}, nil
		}
		if err != nil {
			return Outcome{}, fmt.Errorf("%s under %s: %w", label, machineName, err)
		}
		return outcomeOf(configInfo(cfg), res.Occupancy.Threads, res.Counters, res.Energy.Total()), nil
	})
	if err != nil {
		return nil, err
	}
	return c.result(flat), nil
}

// ResultFromBatch decodes a campaign result from the batch response of
// its compiled runs — the remote half of Execute. Items keep the
// machine-major cell order.
func (c *Campaign) ResultFromBatch(br *api.BatchResponse) (*Result, error) {
	items, err := br.Items()
	if err != nil {
		return nil, fmt.Errorf("campaign %s: decoding batch items: %w", c.Spec.Name, err)
	}
	if len(items) != len(c.Runs) {
		return nil, fmt.Errorf("campaign %s: batch returned %d cells, want %d",
			c.Spec.Name, len(items), len(c.Runs))
	}
	flat := make([]Outcome, len(items))
	for i, it := range items {
		switch {
		case it.Error != nil && it.Error.Code == api.CodeInfeasible:
			flat[i] = Outcome{Infeasible: true}
		case it.Error != nil:
			return nil, fmt.Errorf("campaign %s: %s under %s: %v", c.Spec.Name,
				c.Workloads[i%len(c.Workloads)].Label,
				c.Spec.Machines[i/len(c.Workloads)].Name, it.Error)
		default:
			r := it.Result
			flat[i] = outcomeOf(r.Config, r.Occupancy.Threads, r.Counters, r.Energy.Total)
		}
	}
	return c.result(flat), nil
}

// result reshapes the flat machine-major outcomes into the cell matrix.
func (c *Campaign) result(flat []Outcome) *Result {
	out := &Result{Campaign: c, Outcomes: make([][]Outcome, len(c.Spec.Machines))}
	for m := range out.Outcomes {
		out.Outcomes[m] = flat[m*len(c.Workloads) : (m+1)*len(c.Workloads)]
	}
	return out
}
