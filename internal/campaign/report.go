package campaign

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/report"
)

// metricDef is one diffable metric: how to extract it from an Outcome,
// how to format it, and which direction is better (for regression
// flagging).
type metricDef struct {
	name         string
	label        string
	higherBetter bool
	value        func(Outcome) float64
	format       func(float64) string
}

func intCell(v float64) string { return fmt.Sprint(int64(v)) }

// metricDefs is the metric vocabulary. int64 counters convert to
// float64 exactly at simulation magnitudes, so formatting through
// float64 loses nothing.
var metricDefs = []metricDef{
	{"ipc", "IPC", true,
		func(o Outcome) float64 { return o.IPC },
		func(v float64) string { return fmt.Sprintf("%.3f", v) }},
	{"cycles", "cycles", false,
		func(o Outcome) float64 { return float64(o.Cycles) }, intCell},
	{"dram", "dram bytes", false,
		func(o Outcome) float64 { return float64(o.DRAMBytes) }, intCell},
	{"energy", "energy (J)", false,
		func(o Outcome) float64 { return o.EnergyJ },
		func(v float64) string { return fmt.Sprintf("%.3e", v) }},
	{"conflict-cycles", "conflict cycles", false,
		func(o Outcome) float64 { return float64(o.ConflictCycles) }, intCell},
}

// DefaultMetrics are the diff tables of a campaign that names none.
var DefaultMetrics = []string{"ipc", "energy", "dram"}

// resolveMetrics maps metric names to their definitions.
func resolveMetrics(names []string) ([]metricDef, error) {
	if len(names) == 0 {
		names = DefaultMetrics
	}
	out := make([]metricDef, 0, len(names))
	for _, name := range names {
		found := false
		for _, d := range metricDefs {
			if d.name == name {
				out = append(out, d)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown metric %q (have %s)",
				name, strings.Join(metricNames(metricDefs), ", "))
		}
	}
	return out, nil
}

func metricNames(defs []metricDef) []string {
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.name
	}
	return names
}

// deltaPct is v's relative change from base in percent; ok is false
// when the baseline value cannot normalize (zero or NaN).
func deltaPct(base, v float64) (float64, bool) {
	if base == 0 || base != base || v != v {
		return 0, false
	}
	return 100 * (v - base) / base, true
}

// regressed reports whether a delta crosses the metric's threshold in
// its bad direction.
func (m metricDef) regressed(pct, threshold float64) bool {
	if threshold <= 0 {
		return false
	}
	if m.higherBetter {
		return pct < -threshold
	}
	return pct > threshold
}

// Regression is one threshold violation: a non-baseline machine whose
// metric is worse than the baseline by more than the campaign's
// tolerance.
type Regression struct {
	Metric   string
	Workload string
	Machine  string
	// DeltaPct is the relative change from the baseline in percent
	// (signed: negative means below baseline).
	DeltaPct float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s on %s: %+.1f%% vs baseline", r.Metric, r.Machine, r.Workload, r.DeltaPct)
}

// Tables renders the campaign: one diff table per metric (workload
// rows; baseline value column; value + delta columns per non-baseline
// machine, regressions flagged "!"), then one paper-style comparison
// table per Tables entry.
func (res *Result) Tables() []*report.Table {
	c := res.Campaign
	out := make([]*report.Table, 0, len(c.metrics)+len(c.tables))
	for _, m := range c.metrics {
		out = append(out, res.metricTable(m))
	}
	for _, ts := range c.tables {
		out = append(out, res.paperTable(ts))
	}
	return out
}

// metricTable renders one metric across every machine.
func (res *Result) metricTable(m metricDef) *report.Table {
	c := res.Campaign
	header := []string{"workload", c.BaselineName()}
	for i, mc := range c.Spec.Machines {
		if i == c.Baseline {
			continue
		}
		header = append(header, mc.Name, "delta")
	}
	title := fmt.Sprintf("%s: %s (baseline %s)", c.Title(), m.label, c.BaselineName())
	t := report.NewTable(title, header...)
	threshold := c.Spec.Thresholds[m.name]
	cell := func(o Outcome) string {
		if o.Infeasible {
			return "infeasible"
		}
		return m.format(m.value(o))
	}
	for w, wl := range c.Workloads {
		base := res.Outcomes[c.Baseline][w]
		row := []string{wl.Label, cell(base)}
		for i := range c.Spec.Machines {
			if i == c.Baseline {
				continue
			}
			o := res.Outcomes[i][w]
			delta := "-"
			if !o.Infeasible && !base.Infeasible {
				if pct, ok := deltaPct(m.value(base), m.value(o)); ok {
					delta = fmt.Sprintf("%+.1f%%", pct)
					if m.regressed(pct, threshold) {
						delta += " !"
					}
				}
			}
			row = append(row, cell(o), delta)
		}
		t.AddRow(row...)
	}
	return t
}

// paperTable renders one machine against the campaign baseline with the
// Figure 7/9/10 columns, through the same harness renderer the golden
// experiments use — which is why a campaign spelling out the paper's
// designs reproduces the goldens byte-identically.
func (res *Result) paperTable(ts tableSpec) *report.Table {
	c := res.Campaign
	t := harness.NewComparisonTable(ts.title)
	for _, w := range ts.workloads {
		o := res.Outcomes[ts.machine][w]
		base := res.Outcomes[c.Baseline][w]
		if o.Infeasible || base.Infeasible {
			t.AddRow(c.Workloads[w].Label, "infeasible", "-", "-", "-", "-", "-", "-")
			continue
		}
		t.AddRow(harness.ComparisonRow(core.Comparison{
			Benchmark: c.Workloads[w].Label,
			Config: config.MemConfig{
				RFBytes:     o.Config.RFBytes,
				SharedBytes: o.Config.SharedBytes,
				CacheBytes:  o.Config.CacheBytes,
			},
			Threads: o.Threads,
			// Exactly core's compare() arithmetic, applied to the exact
			// round-tripped scalars.
			PerfRatio:   float64(base.Cycles) / float64(o.Cycles),
			EnergyRatio: o.EnergyJ / base.EnergyJ,
			DRAMRatio:   float64(o.DRAMBytes) / float64(base.DRAMBytes),
		})...)
	}
	return t
}

// Regressions lists every threshold violation, in metric, workload,
// machine order.
func (res *Result) Regressions() []Regression {
	c := res.Campaign
	var out []Regression
	for _, m := range c.metrics {
		threshold := c.Spec.Thresholds[m.name]
		if threshold <= 0 {
			continue
		}
		for w, wl := range c.Workloads {
			base := res.Outcomes[c.Baseline][w]
			if base.Infeasible {
				continue
			}
			for i, mc := range c.Spec.Machines {
				if i == c.Baseline {
					continue
				}
				o := res.Outcomes[i][w]
				if o.Infeasible {
					continue
				}
				if pct, ok := deltaPct(m.value(base), m.value(o)); ok && m.regressed(pct, threshold) {
					out = append(out, Regression{
						Metric: m.name, Workload: wl.Label, Machine: mc.Name, DeltaPct: pct,
					})
				}
			}
		}
	}
	return out
}
