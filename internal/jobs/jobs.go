// Package jobs is the durable async job engine behind the simulation
// service's /v1/jobs API: a submitted run/batch/sweep/experiment
// returns immediately with a job id, executes in the background under
// bounded admission (parallel.Gate for concurrent jobs, parallel.Map
// for item fan-out), streams progress and per-item completion events to
// any number of subscribers, and cancels through the same context
// plumbing the synchronous endpoints use.
//
// The engine is deliberately generic: it knows nothing about
// simulations. The service hands it two callbacks — Resolve, which
// turns a raw request body into a Plan (an ordered item list plus an
// assembly function), and Exec, which settles one item — and the
// engine owns everything else: the state machine
// (queued -> running -> done | failed | cancelled), item accounting,
// the event log, and persistence.
//
// Durability: with Options.Dir set, every job's request is written
// (atomically, via internal/store's rename trick) to
// <dir>/<id>.json before Submit returns, and its terminal state and
// final result bytes are written when it finishes. A process that dies
// mid-job leaves the record in a non-terminal state; New re-reads the
// directory, re-resolves those requests, and re-enters them as queued
// jobs with Resumes incremented. The engine does not checkpoint item
// results itself — item results live in the service's content-addressed
// store (internal/store), keyed by each item's canonical SHA-256, so a
// resumed job "skips" completed items simply because Exec finds their
// bytes already stored. The checkpoint granularity is therefore one
// item; a killed sweep re-pays at most its warm prefix plus the items
// in flight at the kill.
//
// Determinism: item events are emitted in item-index order regardless
// of execution interleaving (a reorder buffer holds completed items
// until their predecessors settle), so a job's event stream — like
// every response body in the service — does not depend on worker
// count or scheduling.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/api"
	"repro/internal/parallel"
	"repro/internal/store"
)

// Sentinel errors. ErrStorage wraps persistence failures (a 500, not a
// client error); ErrNotFound and ErrNotReady map to 404 and 409.
var (
	ErrStorage  = errors.New("jobs: storage failure")
	ErrNotFound = errors.New("jobs: no such job")
	ErrNotReady = errors.New("jobs: job has not finished")
)

// Item is one unit of work in a job.
type Item struct {
	// Index is the item's position; results assemble in index order.
	Index int
	// Key is the item's canonical result key (the store's SHA-256).
	Key string
	// Probe marks items whose execution streams probe NDJSON.
	Probe bool
	// Payload is opaque to the engine and interpreted by Exec (the
	// service stores its resolved run here).
	Payload any
}

// Plan is a resolved job: its ordered items and how to assemble their
// settled bodies into the job's final result.
type Plan struct {
	// Type is the job flavor ("run", "batch", "sweep", "experiment").
	// Single-item types (run, experiment) fail the job when their item
	// fails; multi-item types embed per-item errors in the final body
	// and finish "done", exactly like the synchronous /v1/batch.
	Type string
	// Note is a short human description carried on the Job.
	Note string
	// Items are the units of work.
	Items []Item
	// Assemble builds the final (status, body) from every item's
	// settled status and body, in item order. It must be deterministic:
	// the job result endpoint's byte-identity contract rests on it.
	Assemble func(statuses []int, bodies [][]byte) (int, []byte)
}

// ItemContext lets Exec stream observability back into the job while
// an item runs.
type ItemContext struct {
	job  *job
	item Item
}

// Probe publishes one probe NDJSON line as a live job event.
func (c *ItemContext) Probe(line []byte) {
	if c == nil || c.job == nil {
		return
	}
	c.job.broadcastProbe(line)
}

// Note sets the job's "current activity" progress field (e.g. the warm
// prefix being computed). An empty string clears it.
func (c *ItemContext) Note(s string) {
	if c == nil || c.job == nil {
		return
	}
	c.job.setCurrent(s)
}

// Exec settles one item: it returns the item's HTTP-equivalent status,
// its body bytes, and where the body came from ("miss", "hit",
// "stored", "coalesced"). Exec must honor ctx (cancellation settles
// remaining items as 408s) and must be deterministic in (status, body).
type Exec func(ctx context.Context, it Item, ic *ItemContext) (status int, body []byte, cache string)

// Resolve turns a raw request body into a Plan. It runs synchronously
// on Submit (a bad spec is the caller's 400, never a failed job) and
// again on restart for every persisted non-terminal job.
type Resolve func(request []byte) (Plan, error)

// Options configures an Engine. Resolve and Exec are required.
type Options struct {
	// Dir is the job-record directory; empty runs the engine without
	// persistence (jobs die with the process).
	Dir string
	// Slots bounds concurrently executing jobs (default 2); Queue
	// bounds jobs waiting behind them (default 1024). Items of a
	// running job additionally fan out under the process-wide
	// parallel.SetWorkers budget, like batch requests.
	Slots int
	Queue int
	// History bounds terminal jobs kept in memory (default 256); with
	// persistence, evicted jobs remain readable from their records.
	History int
	// Resolve and Exec are the service callbacks described above.
	Resolve Resolve
	Exec    Exec
}

// Event is one entry of a job's event log: a typed, JSON-encoded
// payload (see api.JobEvent for the vocabulary).
type Event struct {
	Seq  int
	Type string
	Data []byte
}

// Subscription is a live view of one job's events: Replay holds
// everything emitted before the subscription, C delivers subsequent
// events and closes when the job reaches a terminal state (or the
// engine shuts down). Close releases the subscription early.
type Subscription struct {
	Replay []Event
	C      <-chan Event

	cancel func()
}

// Close detaches the subscription; safe to call multiple times.
func (s *Subscription) Close() {
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
}

// maxEventLog bounds a job's retained event log. Item and state events
// are always retained (their count is bounded by the item count);
// probe events stop being logged past the cap but still reach live
// subscribers.
const maxEventLog = 1 << 16

// job is the engine-internal state of one job.
type job struct {
	mu sync.Mutex

	id      string
	typ     string
	note    string
	request []byte
	plan    Plan

	state    string
	progress api.JobProgress
	resumes  int
	jobErr   *api.Error

	created  time.Time
	started  time.Time
	finished time.Time

	cancelled bool
	ctx       context.Context
	cancel    context.CancelFunc

	finalStatus int
	final       []byte
	// onDisk marks history records loaded from a previous process:
	// their final bytes live only in the result file.
	onDisk bool

	// Event log and subscribers.
	seq     int
	log     []Event
	subs    map[int]chan Event
	nextSub int
	closed  bool // no further events; channels closed

	// Reorder buffer for deterministic item events.
	itemNext    int
	itemPending map[int]api.JobItemEvent
}

// Engine runs jobs. Create one with New; Close it on shutdown.
type Engine struct {
	opts Options
	gate *parallel.Gate

	mu   sync.Mutex
	jobs map[string]*job
	seq  int

	rootCtx    context.Context
	rootCancel context.CancelFunc
	closing    bool
	wg         sync.WaitGroup

	submitted, resumed           int64
	done, failed, cancelledCount int64
}

// New returns an Engine and, when opts.Dir is set, resumes every
// persisted non-terminal job found there.
func New(opts Options) (*Engine, error) {
	if opts.Resolve == nil || opts.Exec == nil {
		return nil, fmt.Errorf("jobs: Options.Resolve and Options.Exec are required")
	}
	if opts.Slots < 1 {
		opts.Slots = 2
	}
	if opts.Queue < 1 {
		opts.Queue = 1024
	}
	if opts.History < 1 {
		opts.History = 256
	}
	e := &Engine{
		opts: opts,
		gate: parallel.NewGate(opts.Slots, opts.Queue),
		jobs: make(map[string]*job),
	}
	e.rootCtx, e.rootCancel = context.WithCancel(context.Background())
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: %w", err)
		}
		if err := e.recover(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Close stops the engine: running jobs are aborted WITHOUT being marked
// terminal (their records keep their last persisted state, so the next
// New on the same directory resumes them — the graceful-shutdown path
// is deliberately identical to a SIGKILL). Close blocks until every
// job goroutine has returned.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closing {
		e.mu.Unlock()
		return
	}
	e.closing = true
	e.mu.Unlock()
	e.rootCancel()
	e.wg.Wait()
	// Release any remaining subscribers so SSE handlers return.
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, j := range e.jobs {
		j.closeSubs()
	}
}

// Submit resolves, persists, and enqueues one job. The returned Job is
// the initial (queued) state. Resolve errors are returned verbatim
// (the caller's 400); persistence errors wrap ErrStorage.
func (e *Engine) Submit(request []byte) (api.Job, error) {
	plan, err := e.opts.Resolve(request)
	if err != nil {
		return api.Job{}, err
	}
	e.mu.Lock()
	if e.closing {
		e.mu.Unlock()
		return api.Job{}, fmt.Errorf("%w: engine is shut down", ErrStorage)
	}
	e.seq++
	id := "j" + strconv.Itoa(e.seq)
	j := e.newJob(id, plan, json.RawMessage(request), 0)
	e.jobs[id] = j
	e.submitted++
	e.mu.Unlock()

	if err := e.persist(j); err != nil {
		e.mu.Lock()
		delete(e.jobs, id)
		e.mu.Unlock()
		return api.Job{}, fmt.Errorf("%w: %v", ErrStorage, err)
	}
	view := j.view()
	j.broadcastState(api.EventState)
	e.start(j)
	return view, nil
}

// newJob constructs a queued job (caller holds e.mu or is recover()).
func (e *Engine) newJob(id string, plan Plan, request json.RawMessage, resumes int) *job {
	ctx, cancel := context.WithCancel(e.rootCtx)
	j := &job{
		id:          id,
		typ:         plan.Type,
		note:        plan.Note,
		request:     request,
		plan:        plan,
		state:       api.JobQueued,
		resumes:     resumes,
		created:     time.Now(),
		ctx:         ctx,
		cancel:      cancel,
		subs:        make(map[int]chan Event),
		itemPending: make(map[int]api.JobItemEvent),
	}
	j.progress.Total = len(plan.Items)
	return j
}

// start launches the job's goroutine.
func (e *Engine) start(j *job) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.run(j)
	}()
}

// run executes one job end to end.
func (e *Engine) run(j *job) {
	if err := e.gate.Acquire(j.ctx); err != nil {
		// Either the queue is full, the job was cancelled while queued,
		// or the engine is shutting down.
		if e.isClosing() && !j.isCancelled() {
			return // abandoned; record stays queued for the next process
		}
		if errors.Is(err, parallel.ErrQueueFull) {
			e.finish(j, api.JobFailed, &api.Error{
				Code:    api.CodeOverCapacity,
				Message: "job queue is full",
			}, nil, 0)
			return
		}
		e.finish(j, api.JobCancelled, &api.Error{
			Code:    api.CodeCancelled,
			Message: "job cancelled while queued",
		}, nil, 0)
		return
	}
	defer e.gate.Release()

	j.mu.Lock()
	j.state = api.JobRunning
	j.started = time.Now()
	j.mu.Unlock()
	_ = e.persist(j)
	j.broadcastState(api.EventState)

	n := len(j.plan.Items)
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	_, _ = parallel.Map(n, func(i int) (struct{}, error) {
		it := j.plan.Items[i]
		ic := &ItemContext{job: j, item: it}
		status, body, cache := e.opts.Exec(j.ctx, it, ic)
		statuses[i], bodies[i] = status, body
		j.settleItem(it, status, cache)
		return struct{}{}, nil
	})

	if e.isClosing() && !j.isCancelled() {
		return // abandoned mid-run; record stays running, resume re-enters
	}

	finalStatus, final := 0, []byte(nil)
	if j.plan.Assemble != nil {
		finalStatus, final = j.plan.Assemble(statuses, bodies)
	}
	switch {
	case j.isCancelled():
		e.finish(j, api.JobCancelled, &api.Error{
			Code:    api.CodeCancelled,
			Message: "job cancelled",
		}, final, finalStatus)
	case (j.typ == "run" || j.typ == "experiment") && finalStatus != 0 && finalStatus != 200:
		var env api.ErrorBody
		jerr := &api.Error{Code: api.CodeInternal, Message: "item failed"}
		if err := json.Unmarshal(final, &env); err == nil && env.Error != nil {
			jerr = env.Error
		}
		e.finish(j, api.JobFailed, jerr, final, finalStatus)
	default:
		e.finish(j, api.JobDone, nil, final, finalStatus)
	}
}

// finish moves a job to a terminal state, persists it, publishes the
// final events, and closes subscribers.
func (e *Engine) finish(j *job, state string, jerr *api.Error, final []byte, finalStatus int) {
	j.mu.Lock()
	j.state = state
	j.jobErr = jerr
	j.finished = time.Now()
	j.final = final
	j.finalStatus = finalStatus
	j.progress.Current = ""
	// The disk is the commit point, and the lock is held until both
	// writes land: the result bytes first, then the terminal record.
	// An engine opened against the same directory must never read a
	// stale running record for a job this process already reported
	// terminal (it would resume a finished job), nor a terminal record
	// whose result file has not appeared yet.
	if e.opts.Dir != "" {
		if final != nil {
			_ = store.WriteFileAtomic(e.resultPath(j.id), final)
		}
		_ = e.persistLocked(j)
	}
	j.mu.Unlock()

	e.mu.Lock()
	switch state {
	case api.JobDone:
		e.done++
	case api.JobFailed:
		e.failed++
	case api.JobCancelled:
		e.cancelledCount++
	}
	e.mu.Unlock()

	j.broadcastState(api.EventDone)
	j.closeSubs()
	e.trimHistory()
}

func (e *Engine) isClosing() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closing
}

// Get returns a job's state. Evicted persisted jobs are re-read from
// their records.
func (e *Engine) Get(id string) (api.Job, bool) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if ok {
		return j.view(), true
	}
	if rec, err := e.readRecord(id); err == nil {
		return rec.view(), true
	}
	return api.Job{}, false
}

// List returns every in-memory job, oldest id first.
func (e *Engine) List() []api.Job {
	e.mu.Lock()
	js := make([]*job, 0, len(e.jobs))
	for _, j := range e.jobs {
		js = append(js, j)
	}
	e.mu.Unlock()
	sort.Slice(js, func(a, b int) bool { return jobNum(js[a].id) < jobNum(js[b].id) })
	out := make([]api.Job, len(js))
	for i, j := range js {
		out[i] = j.view()
	}
	return out
}

// Cancel requests cancellation. Terminal jobs are unaffected; the
// returned Job is the state after the request.
func (e *Engine) Cancel(id string) (api.Job, bool) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		if rec, err := e.readRecord(id); err == nil {
			return rec.view(), true
		}
		return api.Job{}, false
	}
	j.mu.Lock()
	terminal := j.state == api.JobDone || j.state == api.JobFailed || j.state == api.JobCancelled
	if !terminal {
		j.cancelled = true
	}
	j.mu.Unlock()
	if !terminal {
		j.cancel()
	}
	return j.view(), true
}

// Result returns a terminal job's final (status, body). ErrNotFound
// and ErrNotReady are the non-success cases; storage failures wrap
// ErrStorage.
func (e *Engine) Result(id string) (int, []byte, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		rec, err := e.readRecord(id)
		if err != nil {
			return 0, nil, ErrNotFound
		}
		j = rec
	}
	j.mu.Lock()
	state, final, status, onDisk := j.state, j.final, j.finalStatus, j.onDisk
	j.mu.Unlock()
	if state != api.JobDone && state != api.JobFailed && state != api.JobCancelled {
		return 0, nil, ErrNotReady
	}
	if final == nil && onDisk && e.opts.Dir != "" {
		body, err := os.ReadFile(e.resultPath(id))
		if err != nil {
			return 0, nil, fmt.Errorf("%w: %v", ErrStorage, err)
		}
		return status, body, nil
	}
	if final == nil {
		return 0, nil, fmt.Errorf("%w: job has no result", ErrStorage)
	}
	return status, final, nil
}

// Subscribe attaches to a job's event stream.
func (e *Engine) Subscribe(id string) (*Subscription, bool) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		rec, err := e.readRecord(id)
		if err != nil {
			return nil, false
		}
		j = rec
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	replay := make([]Event, len(j.log))
	copy(replay, j.log)
	if len(replay) == 0 && j.onDisk {
		// History job from a previous process: the per-process event log
		// is gone; synthesize the terminal event.
		if data, err := json.Marshal(j.viewLocked()); err == nil {
			replay = append(replay, Event{Seq: 0, Type: api.EventDone, Data: data})
		}
	}
	ch := make(chan Event, 1024)
	if j.closed || j.onDisk {
		close(ch)
		return &Subscription{Replay: replay, C: ch}, true
	}
	j.nextSub++
	subID := j.nextSub
	j.subs[subID] = ch
	sub := &Subscription{Replay: replay, C: ch}
	sub.cancel = func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if c, ok := j.subs[subID]; ok {
			delete(j.subs, subID)
			close(c)
		}
	}
	return sub, true
}

// Stats returns the engine's accounting.
func (e *Engine) Stats() api.JobStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := api.JobStats{
		Submitted: e.submitted,
		Resumed:   e.resumed,
		Done:      e.done,
		Failed:    e.failed,
		Cancelled: e.cancelledCount,
	}
	for _, j := range e.jobs {
		j.mu.Lock()
		switch j.state {
		case api.JobQueued:
			s.Queued++
		case api.JobRunning:
			s.Active++
		}
		j.mu.Unlock()
	}
	return s
}

// trimHistory evicts the oldest terminal jobs beyond the history bound.
// Persisted jobs stay readable via their records.
func (e *Engine) trimHistory() {
	e.mu.Lock()
	defer e.mu.Unlock()
	var terminal []*job
	for _, j := range e.jobs {
		j.mu.Lock()
		if j.state == api.JobDone || j.state == api.JobFailed || j.state == api.JobCancelled {
			terminal = append(terminal, j)
		}
		j.mu.Unlock()
	}
	if len(terminal) <= e.opts.History {
		return
	}
	sort.Slice(terminal, func(a, b int) bool { return jobNum(terminal[a].id) < jobNum(terminal[b].id) })
	for _, j := range terminal[:len(terminal)-e.opts.History] {
		delete(e.jobs, j.id)
	}
}

// jobNum extracts the numeric part of a job id for ordering.
func jobNum(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n
}

// ---- job internals ----

// settleItem records one settled item and emits its event in index
// order.
func (j *job) settleItem(it Item, status int, cache string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress.Done++
	if status != 200 {
		j.progress.Errors++
	}
	switch cache {
	case "hit":
		j.progress.CacheHits++
	case "stored":
		j.progress.StoreHits++
	case "coalesced":
		j.progress.Coalesced++
	}
	j.itemPending[it.Index] = api.JobItemEvent{
		Index:  it.Index,
		Key:    it.Key,
		Status: status,
		Cache:  cache,
		Total:  j.progress.Total,
	}
	for {
		ev, ok := j.itemPending[j.itemNext]
		if !ok {
			break
		}
		delete(j.itemPending, j.itemNext)
		j.itemNext++
		ev.Done = j.itemNext
		if data, err := json.Marshal(ev); err == nil {
			j.broadcastLocked(api.EventItem, data, true)
		}
	}
}

func (j *job) setCurrent(s string) {
	j.mu.Lock()
	j.progress.Current = s
	j.mu.Unlock()
}

func (j *job) isCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

// broadcastState publishes the job's current view as a state/done
// event.
func (j *job) broadcastState(evType string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, err := json.Marshal(j.viewLocked())
	if err != nil {
		return
	}
	j.broadcastLocked(evType, data, true)
}

// broadcastProbe publishes one probe NDJSON line. Probe events beyond
// the log cap still reach live subscribers but are not replayed.
func (j *job) broadcastProbe(line []byte) {
	data := make([]byte, len(line))
	copy(data, line)
	data = []byte(strings.TrimRight(string(data), "\n"))
	j.mu.Lock()
	defer j.mu.Unlock()
	j.broadcastLocked(api.EventProbe, data, len(j.log) < maxEventLog)
}

// broadcastLocked appends to the log (when logged) and fans out to
// subscribers; j.mu must be held. A subscriber whose buffer is full
// loses the event (SSE clients that lag behind a simulation have
// bigger problems; the replay log is the source of truth).
func (j *job) broadcastLocked(evType string, data []byte, logged bool) {
	if j.closed {
		return
	}
	ev := Event{Seq: j.seq, Type: evType, Data: data}
	j.seq++
	if logged {
		j.log = append(j.log, ev)
	}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// closeSubs closes every subscriber channel and marks the stream ended.
func (j *job) closeSubs() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
}

// view renders the job's public state.
func (j *job) view() api.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked()
}

func (j *job) viewLocked() api.Job {
	v := api.Job{
		ID:           j.id,
		Type:         j.typ,
		State:        j.state,
		Note:         j.note,
		Progress:     j.progress,
		Resumes:      j.resumes,
		CreatedUnix:  unix(j.created),
		StartedUnix:  unix(j.started),
		FinishedUnix: unix(j.finished),
		Error:        j.jobErr,
	}
	return v
}

func unix(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.Unix()
}

// ---- persistence ----

// record is the on-disk form of a job.
type record struct {
	ID          string          `json:"id"`
	Type        string          `json:"type"`
	State       string          `json:"state"`
	Note        string          `json:"note,omitempty"`
	Request     json.RawMessage `json:"request"`
	Progress    api.JobProgress `json:"progress"`
	Resumes     int             `json:"resumes,omitempty"`
	Created     int64           `json:"created_unix,omitempty"`
	Started     int64           `json:"started_unix,omitempty"`
	Finished    int64           `json:"finished_unix,omitempty"`
	Error       *api.Error      `json:"error,omitempty"`
	FinalStatus int             `json:"final_status,omitempty"`
}

func (e *Engine) recordPath(id string) string {
	return filepath.Join(e.opts.Dir, id+".json")
}

func (e *Engine) resultPath(id string) string {
	return filepath.Join(e.opts.Dir, id+".result.json")
}

// persist writes the job's record; a no-op without a directory.
func (e *Engine) persist(j *job) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return e.persistLocked(j)
}

// persistLocked is persist with j.mu already held. The record write
// completes before the caller releases the lock, which is what lets
// finish make the on-disk record durable before the terminal state
// becomes observable.
func (e *Engine) persistLocked(j *job) error {
	if e.opts.Dir == "" {
		return nil
	}
	rec := record{
		ID:          j.id,
		Type:        j.typ,
		State:       j.state,
		Note:        j.note,
		Request:     j.request,
		Progress:    j.progress,
		Resumes:     j.resumes,
		Created:     unix(j.created),
		Started:     unix(j.started),
		Finished:    unix(j.finished),
		Error:       j.jobErr,
		FinalStatus: j.finalStatus,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return store.WriteFileAtomic(e.recordPath(j.id), append(data, '\n'))
}

// readRecord loads a persisted job as a read-only history entry.
func (e *Engine) readRecord(id string) (*job, error) {
	if e.opts.Dir == "" || !validJobID(id) {
		return nil, ErrNotFound
	}
	data, err := os.ReadFile(e.recordPath(id))
	if err != nil {
		return nil, ErrNotFound
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStorage, err)
	}
	return recordJob(rec), nil
}

// recordJob materializes a record as an in-memory history job.
func recordJob(rec record) *job {
	return &job{
		id:          rec.ID,
		typ:         rec.Type,
		note:        rec.Note,
		request:     rec.Request,
		state:       rec.State,
		progress:    rec.Progress,
		resumes:     rec.Resumes,
		jobErr:      rec.Error,
		created:     time.Unix(rec.Created, 0),
		started:     timeOrZero(rec.Started),
		finished:    timeOrZero(rec.Finished),
		finalStatus: rec.FinalStatus,
		onDisk:      true,
		closed:      true,
		subs:        map[int]chan Event{},
	}
}

func timeOrZero(sec int64) time.Time {
	if sec == 0 {
		return time.Time{}
	}
	return time.Unix(sec, 0)
}

// validJobID guards record paths: ids are "j<number>".
func validJobID(id string) bool {
	if len(id) < 2 || len(id) > 20 || id[0] != 'j' {
		return false
	}
	for i := 1; i < len(id); i++ {
		if id[i] < '0' || id[i] > '9' {
			return false
		}
	}
	return true
}

// recover re-reads the record directory: terminal jobs become history
// entries, non-terminal ones are re-resolved and re-entered as queued
// jobs (the restart half of checkpoint/resume).
func (e *Engine) recover() error {
	entries, err := os.ReadDir(e.opts.Dir)
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	var resumable []*job
	for _, ent := range entries {
		name := ent.Name()
		id, ok := strings.CutSuffix(name, ".json")
		if !ok || !validJobID(id) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(e.opts.Dir, name))
		if err != nil {
			continue
		}
		var rec record
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID != id {
			continue
		}
		if n := jobNum(id); n > e.seq {
			e.seq = n
		}
		switch rec.State {
		case api.JobDone, api.JobFailed, api.JobCancelled:
			e.jobs[id] = recordJob(rec)
		default:
			plan, err := e.opts.Resolve(rec.Request)
			if err != nil {
				// The spec validated once but no longer resolves (e.g. a
				// kernel renamed across versions): fail it loudly rather
				// than resubmitting forever.
				j := recordJob(rec)
				j.state = api.JobFailed
				j.jobErr = &api.Error{Code: api.CodeBadRequest, Message: "resume: " + err.Error()}
				j.finished = time.Now()
				j.onDisk = false
				e.jobs[id] = j
				_ = e.persist(j)
				continue
			}
			j := e.newJob(id, plan, rec.Request, rec.Resumes+1)
			e.jobs[id] = j
			e.resumed++
			resumable = append(resumable, j)
		}
	}
	// Start resumed jobs in id order so admission is deterministic.
	sort.Slice(resumable, func(a, b int) bool { return jobNum(resumable[a].id) < jobNum(resumable[b].id) })
	for _, j := range resumable {
		_ = e.persist(j)
		j.broadcastState(api.EventState)
		e.start(j)
	}
	return nil
}
