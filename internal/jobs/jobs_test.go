package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/api"
)

// testSpec is the synthetic job request the test callbacks understand.
type testSpec struct {
	N    int   `json:"n"`
	Fail []int `json:"fail,omitempty"` // item indexes that settle 422
}

// testResolve builds an N-item plan whose final body joins item bodies.
func testResolve(request []byte) (Plan, error) {
	var spec testSpec
	if err := json.Unmarshal(request, &spec); err != nil {
		return Plan{}, err
	}
	if spec.N < 1 {
		return Plan{}, fmt.Errorf("bad spec: n must be positive")
	}
	items := make([]Item, spec.N)
	for i := range items {
		items[i] = Item{Index: i, Key: fmt.Sprintf("key-%d", i)}
	}
	return Plan{
		Type:  "batch",
		Note:  fmt.Sprintf("test batch of %d", spec.N),
		Items: items,
		Assemble: func(statuses []int, bodies [][]byte) (int, []byte) {
			return http.StatusOK, bytes.Join(bodies, []byte(","))
		},
	}, nil
}

// plainExec settles items instantly; failSet items settle 422.
func plainExec(failSet map[int]bool) Exec {
	return func(ctx context.Context, it Item, ic *ItemContext) (int, []byte, string) {
		if failSet[it.Index] {
			return http.StatusUnprocessableEntity, []byte(fmt.Sprintf("err%d", it.Index)), "miss"
		}
		return http.StatusOK, []byte(fmt.Sprintf("b%d", it.Index)), "miss"
	}
}

func submitSpec(t *testing.T, e *Engine, spec testSpec) api.Job {
	t.Helper()
	body, _ := json.Marshal(spec)
	job, err := e.Submit(body)
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func waitTerminal(t *testing.T, e *Engine, id string) api.Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := e.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if j.Terminal() {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return api.Job{}
}

func TestJobLifecycle(t *testing.T) {
	e, err := New(Options{Resolve: testResolve, Exec: plainExec(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	job := submitSpec(t, e, testSpec{N: 3})
	if job.State != api.JobQueued || job.Progress.Total != 3 {
		t.Fatalf("submit view = %+v", job)
	}
	done := waitTerminal(t, e, job.ID)
	if done.State != api.JobDone || done.Progress.Done != 3 || done.Error != nil {
		t.Fatalf("terminal view = %+v", done)
	}
	status, body, err := e.Result(job.ID)
	if err != nil || status != http.StatusOK {
		t.Fatalf("Result = %d, %v", status, err)
	}
	if string(body) != "b0,b1,b2" {
		t.Errorf("result body = %q", body)
	}
	stats := e.Stats()
	if stats.Submitted != 1 || stats.Done != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestItemErrorsCountButDontFailBatch(t *testing.T) {
	e, err := New(Options{Resolve: testResolve, Exec: plainExec(map[int]bool{1: true})})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	job := submitSpec(t, e, testSpec{N: 3})
	done := waitTerminal(t, e, job.ID)
	if done.State != api.JobDone || done.Progress.Errors != 1 {
		t.Fatalf("terminal view = %+v, want done with 1 item error", done)
	}
	_, body, _ := e.Result(job.ID)
	if string(body) != "b0,err1,b2" {
		t.Errorf("result body = %q", body)
	}
}

func TestSubmitRejectsBadSpec(t *testing.T) {
	e, err := New(Options{Resolve: testResolve, Exec: plainExec(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Submit([]byte(`{"n":0}`)); err == nil {
		t.Fatal("Submit of an invalid spec succeeded")
	}
	if len(e.List()) != 0 {
		t.Error("rejected submit left a job behind")
	}
	if _, ok := e.Get("j1"); ok {
		t.Error("rejected submit is Gettable")
	}
}

// TestEventOrderDeterministic pins the reorder buffer: item events
// arrive in index order with monotone done counts even though execution
// finishes in reverse.
func TestEventOrderDeterministic(t *testing.T) {
	const n = 6
	release := make(chan struct{})
	exec := func(ctx context.Context, it Item, ic *ItemContext) (int, []byte, string) {
		<-release
		// Higher indexes return sooner.
		time.Sleep(time.Duration(n-it.Index) * 3 * time.Millisecond)
		return http.StatusOK, []byte(fmt.Sprintf("b%d", it.Index)), "miss"
	}
	e, err := New(Options{Resolve: testResolve, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	job := submitSpec(t, e, testSpec{N: n})
	sub, ok := e.Subscribe(job.ID)
	if !ok {
		t.Fatal("Subscribe failed")
	}
	defer sub.Close()
	close(release)

	var items []api.JobItemEvent
	collect := func(ev Event) {
		if ev.Type != api.EventItem {
			return
		}
		var ie api.JobItemEvent
		if err := json.Unmarshal(ev.Data, &ie); err != nil {
			t.Fatal(err)
		}
		items = append(items, ie)
	}
	for _, ev := range sub.Replay {
		collect(ev)
	}
	for ev := range sub.C {
		collect(ev)
	}
	if len(items) != n {
		t.Fatalf("saw %d item events, want %d", len(items), n)
	}
	for i, ie := range items {
		if ie.Index != i || ie.Done != i+1 || ie.Total != n {
			t.Errorf("item event %d = %+v, want index %d done %d", i, ie, i, i+1)
		}
	}
}

func TestSubscribeReplaysTerminalJob(t *testing.T) {
	e, err := New(Options{Resolve: testResolve, Exec: plainExec(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	job := submitSpec(t, e, testSpec{N: 2})
	waitTerminal(t, e, job.ID)
	sub, ok := e.Subscribe(job.ID)
	if !ok {
		t.Fatal("Subscribe failed")
	}
	defer sub.Close()
	if _, open := <-sub.C; open {
		t.Error("terminal job's live channel not closed")
	}
	var last Event
	for _, ev := range sub.Replay {
		last = ev
	}
	if last.Type != api.EventDone {
		t.Errorf("replay ends with %q, want done", last.Type)
	}
}

func TestCancel(t *testing.T) {
	started := make(chan struct{}, 1)
	exec := func(ctx context.Context, it Item, ic *ItemContext) (int, []byte, string) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return http.StatusRequestTimeout, []byte("cancelled"), "miss"
	}
	e, err := New(Options{Resolve: testResolve, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	job := submitSpec(t, e, testSpec{N: 1})
	<-started
	if _, ok := e.Cancel(job.ID); !ok {
		t.Fatal("Cancel failed")
	}
	done := waitTerminal(t, e, job.ID)
	if done.State != api.JobCancelled {
		t.Fatalf("state = %s, want cancelled", done.State)
	}
	if done.Error == nil || done.Error.Code != api.CodeCancelled {
		t.Errorf("error = %+v, want cancelled envelope", done.Error)
	}
	if e.Stats().Cancelled != 1 {
		t.Errorf("stats = %+v", e.Stats())
	}
}

func TestResultNotReady(t *testing.T) {
	block := make(chan struct{})
	exec := func(ctx context.Context, it Item, ic *ItemContext) (int, []byte, string) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return http.StatusOK, []byte("b"), "miss"
	}
	e, err := New(Options{Resolve: testResolve, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	job := submitSpec(t, e, testSpec{N: 1})
	if _, _, err := e.Result(job.ID); err != ErrNotReady {
		t.Errorf("Result while running = %v, want ErrNotReady", err)
	}
	if _, _, err := e.Result("j999"); err != ErrNotFound {
		t.Errorf("Result of unknown = %v, want ErrNotFound", err)
	}
	close(block)
	waitTerminal(t, e, job.ID)
}

// TestKillResume is the engine-level durability contract: an engine
// closed mid-job leaves a resumable record; a new engine on the same
// directory re-enters the job and finishes it.
func TestKillResume(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 1)
	blockingExec := func(ctx context.Context, it Item, ic *ItemContext) (int, []byte, string) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done() // block until the engine aborts us
		return http.StatusRequestTimeout, []byte("killed"), "miss"
	}
	e1, err := New(Options{Dir: dir, Resolve: testResolve, Exec: blockingExec})
	if err != nil {
		t.Fatal(err)
	}
	job := submitSpec(t, e1, testSpec{N: 2})
	<-started
	e1.Close() // the "SIGKILL": abandon without terminal state

	// The record must still say running (not a terminal state).
	data, err := os.ReadFile(filepath.Join(dir, job.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"state":"running"`) {
		t.Fatalf("abandoned record = %s, want state running", data)
	}

	e2, err := New(Options{Dir: dir, Resolve: testResolve, Exec: plainExec(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Stats().Resumed != 1 {
		t.Fatalf("stats after reopen = %+v, want 1 resumed", e2.Stats())
	}
	done := waitTerminal(t, e2, job.ID)
	if done.State != api.JobDone || done.Resumes != 1 {
		t.Fatalf("resumed job = %+v, want done with resumes=1", done)
	}
	status, body, err := e2.Result(job.ID)
	if err != nil || status != http.StatusOK || string(body) != "b0,b1" {
		t.Fatalf("resumed result = %d %q %v", status, body, err)
	}

	// A third engine sees the terminal record as history, result intact.
	e3, err := New(Options{Dir: dir, Resolve: testResolve, Exec: plainExec(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if e3.Stats().Resumed != 0 {
		t.Error("terminal job resumed again")
	}
	status, body, err = e3.Result(job.ID)
	if err != nil || status != http.StatusOK || string(body) != "b0,b1" {
		t.Fatalf("history result = %d %q %v", status, body, err)
	}
}

// TestNewJobIDsContinueAfterRestart pins id allocation across restarts:
// ids never collide with persisted jobs.
func TestNewJobIDsContinueAfterRestart(t *testing.T) {
	dir := t.TempDir()
	e1, err := New(Options{Dir: dir, Resolve: testResolve, Exec: plainExec(nil)})
	if err != nil {
		t.Fatal(err)
	}
	j1 := submitSpec(t, e1, testSpec{N: 1})
	waitTerminal(t, e1, j1.ID)
	e1.Close()

	e2, err := New(Options{Dir: dir, Resolve: testResolve, Exec: plainExec(nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	j2 := submitSpec(t, e2, testSpec{N: 1})
	if j2.ID == j1.ID {
		t.Fatalf("restarted engine reused job id %s", j2.ID)
	}
	if jobNum(j2.ID) <= jobNum(j1.ID) {
		t.Errorf("job ids not monotone across restart: %s then %s", j1.ID, j2.ID)
	}
}

func TestSingleItemFailureFailsJob(t *testing.T) {
	resolve := func(request []byte) (Plan, error) {
		return Plan{
			Type:     "run",
			Items:    []Item{{Index: 0, Key: "k"}},
			Assemble: func(st []int, bd [][]byte) (int, []byte) { return st[0], bd[0] },
		}, nil
	}
	body := []byte(`{"error":{"code":"infeasible","message":"does not fit"}}`)
	exec := func(ctx context.Context, it Item, ic *ItemContext) (int, []byte, string) {
		return http.StatusUnprocessableEntity, body, "miss"
	}
	e, err := New(Options{Resolve: resolve, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	job, err := e.Submit([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, e, job.ID)
	if done.State != api.JobFailed {
		t.Fatalf("state = %s, want failed", done.State)
	}
	if done.Error == nil || done.Error.Code != api.CodeInfeasible {
		t.Errorf("error = %+v, want the item's envelope code", done.Error)
	}
	status, got, err := e.Result(job.ID)
	if err != nil || status != http.StatusUnprocessableEntity || !bytes.Equal(got, body) {
		t.Fatalf("Result = %d %q %v, want the item's bytes", status, got, err)
	}
}
