package harness

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/probe"
	"repro/internal/workloads"
)

// profileConfig is the baseline partitioned machine used by these tests.
var profileConfig = config.MemConfig{
	Design:      config.Partitioned,
	RFBytes:     config.BaselineRFBytes,
	SharedBytes: config.BaselineSharedBytes,
	CacheBytes:  config.BaselineCacheBytes,
}

// TestProbeDoesNotPerturbRun pins the observability contract: attaching
// a probe must leave every simulation counter identical to an unprobed
// run. (The golden-table suite pins the no-probe output byte-for-byte;
// this closes the other half.)
func TestProbeDoesNotPerturbRun(t *testing.T) {
	for _, name := range []string{"needle", "bfs"} {
		r := core.NewRunner()
		k, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		spec := core.RunSpec{Kernel: k, Config: profileConfig}
		plain, err := r.Run(spec)
		if err != nil {
			t.Fatalf("%s unprobed: %v", name, err)
		}
		probed, err := r.Run(spec, core.WithProbe(probe.New(0, nil)))
		if err != nil {
			t.Fatalf("%s probed: %v", name, err)
		}
		if !reflect.DeepEqual(plain.Counters, probed.Counters) {
			t.Errorf("%s: probe changed the run's counters:\nunprobed %+v\nprobed   %+v",
				name, plain.Counters, probed.Counters)
		}
		if plain.Energy != probed.Energy {
			t.Errorf("%s: probe changed the energy breakdown", name)
		}
	}
}

// TestProbeSlotsAccountForEveryCycle checks the attribution invariant on
// real runs: issued plus every stall category sums to the run's issue
// slots, and the interval series re-sums to the same totals.
func TestProbeSlotsAccountForEveryCycle(t *testing.T) {
	for _, name := range []string{"needle", "dgemm", "bfs"} {
		pr, err := Profile(core.NewRunner(), ProfileSpec{Kernel: name, Config: profileConfig})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p, c := pr.Probe, pr.Result.Counters
		covered := c.Cycles - p.StartCycle()
		// The final slot is inclusive when the run's last event is an
		// issue at the reported cycle, so allow covered or covered+1.
		if got := p.TotalSlots(); got != covered && got != covered+1 {
			t.Errorf("%s: TotalSlots = %d, want %d or %d (cycles=%d)",
				name, got, covered, covered+1, c.Cycles)
		}
		var issued int64
		var stalls [probe.NumStallReasons]int64
		for _, iv := range p.Intervals() {
			issued += iv.Issued
			for r, n := range iv.Stalls {
				stalls[r] += n
			}
		}
		if issued != p.Issued() || stalls != p.StallSlots() {
			t.Errorf("%s: interval series does not re-sum to the totals", name)
		}
		if issued != c.WarpInsts {
			t.Errorf("%s: probe issued %d, counters retired %d warp insts",
				name, issued, c.WarpInsts)
		}
	}
}

// TestProfileNDJSONRoundTrip streams a real run's profile and decodes it
// back with probe.Decode, checking the decoded stream agrees with the
// live probe.
func TestProfileNDJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	pr, err := Profile(core.NewRunner(), ProfileSpec{
		Kernel: "needle", Config: profileConfig, IntervalCycles: 2048, NDJSON: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := pr.Probe
	prof, err := probe.Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if prof.IntervalCycles != 2048 {
		t.Errorf("decoded interval = %d, want 2048", prof.IntervalCycles)
	}
	if prof.Annotations["kernel"] != "needle" {
		t.Errorf("kernel annotation = %q, want needle", prof.Annotations["kernel"])
	}
	if len(prof.Intervals) != len(p.Intervals()) {
		t.Fatalf("decoded %d intervals, want %d", len(prof.Intervals), len(p.Intervals()))
	}
	for i, iv := range p.Intervals() {
		if prof.Intervals[i] != iv {
			t.Fatalf("interval %d: decoded %+v, want %+v", i, prof.Intervals[i], iv)
		}
	}
	if prof.Summary == nil {
		t.Fatal("no summary record")
	}
	if prof.Summary.Slots != p.TotalSlots() || prof.Summary.Issued != p.Issued() ||
		prof.Summary.Stalls != p.StallSlots() {
		t.Errorf("decoded summary does not match the live probe")
	}
	acc, conf := p.BankHeat()
	if prof.Summary.BankAccess != acc || prof.Summary.BankConflict != conf {
		t.Errorf("decoded bank heat does not match the live probe")
	}
	if prof.Summary.CacheProbes != pr.Result.Counters.CacheProbes {
		t.Errorf("summary cache probes = %d, want %d",
			prof.Summary.CacheProbes, pr.Result.Counters.CacheProbes)
	}
}

// TestProbeParallelFanOut attaches a fresh probe to every run of an
// 8-worker fan-out — the pattern experiment drivers use — and checks
// each run's profile is self-consistent. Run under -race this also
// verifies probes introduce no shared mutable state across runs.
func TestProbeParallelFanOut(t *testing.T) {
	old := parallel.Workers()
	parallel.SetWorkers(8)
	defer parallel.SetWorkers(old)

	r := core.NewRunner()
	kernels := []string{"needle", "bfs", "dgemm", "needle", "bfs", "dgemm", "needle", "bfs"}
	profs, err := parallel.Map(len(kernels), func(i int) (*ProfileResult, error) {
		return Profile(r, ProfileSpec{Kernel: kernels[i], Config: profileConfig, NDJSON: &bytes.Buffer{}})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range profs {
		if pr.Probe.TotalSlots() == 0 || pr.Probe.Issued() == 0 {
			t.Errorf("run %d (%s): empty profile", i, kernels[i])
		}
		if pr.Probe.Issued() != pr.Result.Counters.WarpInsts {
			t.Errorf("run %d (%s): issued %d != warp insts %d",
				i, kernels[i], pr.Probe.Issued(), pr.Result.Counters.WarpInsts)
		}
	}
	// Identical kernels must produce identical profiles regardless of
	// which worker ran them.
	if profs[0].Probe.StallSlots() != profs[3].Probe.StallSlots() {
		t.Error("identical runs produced different stall breakdowns across workers")
	}
}

// TestFormatProfile sanity-checks the rendered report.
func TestFormatProfile(t *testing.T) {
	pr, err := Profile(core.NewRunner(), ProfileSpec{Kernel: "needle", Config: profileConfig})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatProfile(pr)
	for _, want := range []string{
		"Stall attribution", "issued", "no ready warp", "total",
		"Bank heatmap", "Phases",
		fmt.Sprint(pr.Probe.TotalSlots()),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
