package harness

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/workloads"
)

// TestParallelMatchesSerial proves the execution engine never changes
// results: a representative experiment (figure7, which exercises baseline
// caching, the §4.5 allocator, and the energy model) is regenerated with
// 1 worker (the exact serial path) and with 8, and both the rendered
// table and the underlying simulation counters must be identical.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism check skipped in -short mode")
	}
	type outcome struct {
		table    string
		comps    []core.Comparison
		counters map[string]int64 // baseline cycles per kernel
	}
	runAt := func(workers int) outcome {
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(0)
		r := core.NewRunner()
		tab, err := Figure7(r)
		if err != nil {
			t.Fatalf("j=%d: %v", workers, err)
		}
		comps, err := r.Figure7()
		if err != nil {
			t.Fatalf("j=%d: %v", workers, err)
		}
		counters := make(map[string]int64)
		for _, k := range workloads.NoBenefitSet() {
			base, err := r.Baseline(k)
			if err != nil {
				t.Fatalf("j=%d: baseline %s: %v", workers, k.Name, err)
			}
			counters[k.Name] = base.Counters.Cycles
		}
		return outcome{table: tab.String(), comps: comps, counters: counters}
	}

	// Serial with a cold trace cache, then parallel twice: first against
	// the cache the serial run just filled (hot), then against a freshly
	// flushed cache (cold), where the 8 workers race to build each entry.
	workloads.ResetTraceCache()
	serial := runAt(1)
	parHot := runAt(8)
	workloads.ResetTraceCache()
	parCold := runAt(8)

	for _, par := range []struct {
		label string
		out   outcome
	}{{"hot cache", parHot}, {"cold cache", parCold}} {
		if serial.table != par.out.table {
			t.Errorf("rendered tables differ between -j 1 and -j 8 (%s):\n--- j=1 ---\n%s--- j=8 ---\n%s",
				par.label, serial.table, par.out.table)
		}
		if !reflect.DeepEqual(serial.comps, par.out.comps) {
			t.Errorf("comparison results differ between -j 1 and -j 8 (%s):\nj=1: %+v\nj=8: %+v",
				par.label, serial.comps, par.out.comps)
		}
		if !reflect.DeepEqual(serial.counters, par.out.counters) {
			t.Errorf("baseline counters differ between -j 1 and -j 8 (%s):\nj=1: %v\nj=8: %v",
				par.label, serial.counters, par.out.counters)
		}
	}
}

// TestParallelMatchesSerialCounters checks full counter equality (every
// field, not just cycles) for one kernel's baseline produced inside a
// parallel experiment versus a direct serial run.
func TestParallelMatchesSerialCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism check skipped in -short mode")
	}
	k, err := workloads.ByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}

	parallel.SetWorkers(1)
	serialRunner := core.NewRunner()
	serial, err := serialRunner.Baseline(k)
	parallel.SetWorkers(0)
	if err != nil {
		t.Fatal(err)
	}

	parallel.SetWorkers(8)
	defer parallel.SetWorkers(0)
	parRunner := core.NewRunner()
	if _, err := parRunner.Table1([]*workloads.Kernel{k}); err != nil {
		t.Fatal(err)
	}
	par, err := parRunner.Baseline(k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Counters, par.Counters) {
		t.Errorf("counters differ:\nserial: %+v\nparallel: %+v", serial.Counters, par.Counters)
	}
	if serial.Energy.Total() != par.Energy.Total() {
		t.Errorf("energy differs: serial %v, parallel %v", serial.Energy.Total(), par.Energy.Total())
	}
}
