package harness

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/sm"
	"repro/internal/workloads"
)

// Sampling reports sampled-simulation accuracy: every workload runs
// twice under the baseline configuration — exactly and in sampled mode
// (sp) — and the table shows both cycle counts and IPCs with the
// per-workload relative IPC error, followed by mean and max error
// summary rows. The table is deterministic (the sampled simulator is as
// repeatable as the exact one); it is not part of Experiments because
// its rows measure the simulator's own approximation, not the paper's
// results. Exact-vs-sampled wall-clock speedup is measured separately by
// internal/perfbench.
func Sampling(r *core.Runner, sp sm.SampleSpec, kernels []*workloads.Kernel) (*report.Table, error) {
	if !sp.Enabled() {
		return nil, fmt.Errorf("harness: sampling table needs an enabled sample spec")
	}
	type row struct {
		name                         string
		exactCycles, sampledCycles   int64
		exactIPC, sampledIPC, relErr float64
	}
	rows, err := parallel.Map(len(kernels), func(i int) (row, error) {
		k := kernels[i]
		spec := core.RunSpec{Kernel: k, Config: config.Baseline()}
		exact, err := r.Run(spec)
		if err != nil {
			return row{}, err
		}
		sampled, err := r.Run(spec, core.WithSample(sp))
		if err != nil {
			return row{}, err
		}
		rw := row{
			name:          k.Name,
			exactCycles:   exact.Counters.Cycles,
			sampledCycles: sampled.Counters.Cycles,
			exactIPC:      exact.IPC(),
			sampledIPC:    sampled.IPC(),
		}
		if rw.exactIPC != 0 {
			rw.relErr = (rw.sampledIPC - rw.exactIPC) / rw.exactIPC
			if rw.relErr < 0 {
				rw.relErr = -rw.relErr
			}
		}
		return rw, nil
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Sampled simulation accuracy (%s, baseline config): IPC error vs exact runs", sp),
		"workload", "exact cycles", "sampled cycles", "exact IPC", "sampled IPC", "IPC error")
	var sum, max float64
	for _, rw := range rows {
		t.AddRow(rw.name, fmt.Sprint(rw.exactCycles), fmt.Sprint(rw.sampledCycles),
			fmt.Sprintf("%.4f", rw.exactIPC), fmt.Sprintf("%.4f", rw.sampledIPC),
			fmt.Sprintf("%.2f%%", rw.relErr*100))
		sum += rw.relErr
		if rw.relErr > max {
			max = rw.relErr
		}
	}
	if len(rows) > 0 {
		t.AddRow("mean", "", "", "", "", fmt.Sprintf("%.2f%%", sum/float64(len(rows))*100))
		t.AddRow("max", "", "", "", "", fmt.Sprintf("%.2f%%", max*100))
	}
	return t, nil
}
