package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run(core.NewRunner(), "figure99"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestTable4RendersPublishedValues(t *testing.T) {
	out := Table4().String()
	for _, want := range []string{"9.8", "11.8", "3.9", "5.1", "12.1", "14.9", "384KB unified"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 output missing %q:\n%s", want, out)
		}
	}
}

// TestEveryExperimentRenders checks each experiment's output is a
// non-trivial table. It shares the once-per-binary rendering with
// TestGoldenTables, so the full pipeline regenerates only once per test
// run; it still takes tens of seconds.
func TestEveryExperimentRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration skipped in -short mode")
	}
	rendered, err := renderAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Experiments {
		out := rendered[name]
		if lines := strings.Count(out, "\n"); lines < 4 {
			t.Errorf("%s: suspiciously small table (%d lines)", name, lines)
		}
		if strings.Contains(out, "NaN") {
			t.Errorf("%s: NaN leaked into output:\n%s", name, out)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab, err := Run(core.NewRunner(), "figure8")
	if err != nil {
		t.Fatal(err)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "benchmark,") {
		t.Errorf("CSV header wrong: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if strings.Count(csv, "\n") != 9 { // header + 8 benchmarks
		t.Errorf("CSV has %d lines, want 9:\n%s", strings.Count(csv, "\n"), csv)
	}
}

func TestChartRendersFigure11(t *testing.T) {
	if testing.Short() {
		t.Skip("chart regeneration skipped in -short mode")
	}
	out, err := Chart(core.NewRunner(), "figure11")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"needle BF=16", "needle BF=32", "needle BF=64", "shared memory (KB)"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
}

func TestChartRejectsNonSweeps(t *testing.T) {
	if _, err := Chart(core.NewRunner(), "table4"); err == nil {
		t.Error("table4 is not chartable")
	}
}

func TestChartRendersFigure2Lines(t *testing.T) {
	if testing.Short() {
		t.Skip("chart regeneration skipped in -short mode")
	}
	out, err := Chart(core.NewRunner(), "figure2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"figure2: dgemm", "figure2: needle", "18 regs", "64 regs", "RF capacity (KB)"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure2 charts missing %q", want)
		}
	}
}
