package harness

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/workloads"
)

// ProfileSpec describes one observed run for Profile.
type ProfileSpec struct {
	// Kernel is the benchmark name (workloads registry).
	Kernel string
	// Streams, when non-empty, profiles a multi-tenant mix instead: the
	// named kernels run co-resident on one SM and the probe attributes
	// issue and stall slots per stream. Mutually exclusive with Kernel;
	// RegsPerThread then applies to no stream (each uses its spill-free
	// demand).
	Streams []string
	// Config is the local-memory configuration to run under.
	Config config.MemConfig
	// RegsPerThread overrides the register allocation (0 = spill-free).
	RegsPerThread int
	// IntervalCycles is the probe sampling interval (0 = default).
	IntervalCycles int64
	// NDJSON, when non-nil, receives the streamed NDJSON profile.
	NDJSON io.Writer
}

// ProfileResult pairs a run's outcome with its probe.
type ProfileResult struct {
	Result *core.Result
	Probe  *probe.Probe
}

// Profile runs one kernel with a cycle-level probe attached. It is the
// engine behind cmd/smprof and usable directly from tests.
func Profile(r *core.Runner, ps ProfileSpec) (*ProfileResult, error) {
	p := probe.New(ps.IntervalCycles, ps.NDJSON)
	var spec core.RunSpec
	if len(ps.Streams) > 0 {
		if ps.Kernel != "" {
			return nil, fmt.Errorf("harness: ProfileSpec.Kernel and ProfileSpec.Streams are mutually exclusive")
		}
		spec = core.RunSpec{Config: ps.Config}
		for _, name := range ps.Streams {
			k, err := workloads.ByName(name)
			if err != nil {
				return nil, err
			}
			spec.Streams = append(spec.Streams, core.StreamSpec{Kernel: k})
		}
	} else {
		k, err := workloads.ByName(ps.Kernel)
		if err != nil {
			return nil, err
		}
		spec = core.RunSpec{Kernel: k, Config: ps.Config, RegsPerThread: ps.RegsPerThread}
	}
	res, err := r.Run(spec, core.WithProbe(p))
	if err != nil {
		return nil, err
	}
	if werr := p.WriteErr(); werr != nil {
		return nil, fmt.Errorf("harness: writing NDJSON profile: %w", werr)
	}
	return &ProfileResult{Result: res, Probe: p}, nil
}

// stallLabels are the human-readable stall category names, in
// probe.StallReason order.
var stallLabels = [probe.NumStallReasons]string{
	"barrier", "MSHR full", "scoreboard", "arbitration", "bank conflict",
	"no ready warp", "drain",
}

// sparkWidth caps the rendered width of profile sparklines; longer
// series are bucket-averaged down to it.
const sparkWidth = 72

// StallTable renders the issue-slot attribution breakdown. Every slot
// of the run is either an issued instruction or charged to exactly one
// stall category, so the rows sum to the total row exactly.
func StallTable(p *probe.Probe) *report.Table {
	total := p.TotalSlots()
	t := report.NewTable(
		fmt.Sprintf("Stall attribution (%d issue slots from cycle %d)", total, p.StartCycle()),
		"category", "slots", "share")
	share := func(n int64) string {
		if total == 0 {
			return "-"
		}
		return report.Percent(float64(n) / float64(total))
	}
	t.AddRow("issued", fmt.Sprint(p.Issued()), share(p.Issued()))
	stalls := p.StallSlots()
	for i, n := range stalls {
		t.AddRow(stallLabels[i], fmt.Sprint(n), share(n))
	}
	t.AddRow("total", fmt.Sprint(total), share(total))
	return t
}

// StreamStallTable renders the per-stream issue-slot attribution of a
// multi-tenant profile: one row per stream, the same categories as
// StallTable. Each row's slots are the stream's share; the rows sum to
// the aggregate table's slots (minus none — the probe's conservation
// invariant).
func StreamStallTable(p *probe.Probe) *report.Table {
	cols := append([]string{"stream", "issued"}, stallLabels[:]...)
	t := report.NewTable("Per-stream stall attribution", cols...)
	for i := 0; i < p.NumStreams(); i++ {
		stalls := p.StreamStalls(i)
		row := []string{p.StreamName(i), fmt.Sprint(p.StreamIssued(i))}
		for _, n := range stalls {
			row = append(row, fmt.Sprint(n))
		}
		t.AddRow(row...)
	}
	return t
}

// FormatBankHeat renders the per-bank access/conflict heatmap: one
// sparkline column per physical bank, plus the hot-bank summary.
func FormatBankHeat(p *probe.Probe) string {
	access, conflict := p.BankHeat()
	acc := make([]float64, len(access))
	conf := make([]float64, len(conflict))
	totalAcc, totalConf, hot := int64(0), int64(0), 0
	for b := range access {
		acc[b] = float64(access[b])
		conf[b] = float64(conflict[b])
		totalAcc += access[b]
		totalConf += conflict[b]
		if access[b] > access[hot] {
			hot = b
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Bank heatmap (%d banks, one column per bank)\n", len(access))
	fmt.Fprintf(&sb, "  accesses   %s\n", report.Sparkline(acc))
	fmt.Fprintf(&sb, "  conflicts  %s\n", report.Sparkline(conf))
	if totalAcc > 0 {
		mean := float64(totalAcc) / float64(len(access))
		fmt.Fprintf(&sb, "  hottest bank %d: %d accesses (%.2fx the per-bank mean); %d conflict cycles total\n",
			hot, access[hot], float64(access[hot])/mean, totalConf)
	}
	return sb.String()
}

// FormatIntervals renders the sampled time series as sparklines: issue
// rate, stall fraction, cache hit rate, and DRAM traffic per window.
func FormatIntervals(p *probe.Probe) string {
	ivs := p.Intervals()
	if len(ivs) == 0 {
		return ""
	}
	issue := make([]float64, len(ivs))
	stall := make([]float64, len(ivs))
	hit := make([]float64, len(ivs))
	dram := make([]float64, len(ivs))
	for i, iv := range ivs {
		slots := iv.Issued
		for _, n := range iv.Stalls {
			slots += n
		}
		if slots > 0 {
			issue[i] = float64(iv.Issued) / float64(slots)
			stall[i] = 1 - issue[i]
		}
		if iv.CacheProbes > 0 {
			hit[i] = float64(iv.CacheHits) / float64(iv.CacheProbes)
		}
		dram[i] = float64(iv.DRAMBytes)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Phases (%d intervals of %d cycles)\n", len(ivs), p.IntervalCycles())
	fmt.Fprintf(&sb, "  issue rate  %s\n", report.Sparkline(report.Downsample(issue, sparkWidth)))
	fmt.Fprintf(&sb, "  stall rate  %s\n", report.Sparkline(report.Downsample(stall, sparkWidth)))
	fmt.Fprintf(&sb, "  cache hits  %s\n", report.Sparkline(report.Downsample(hit, sparkWidth)))
	fmt.Fprintf(&sb, "  dram bytes  %s\n", report.Sparkline(report.Downsample(dram, sparkWidth)))
	return sb.String()
}

// FormatProfile renders the full cmd/smprof report for one profiled run.
func FormatProfile(pr *ProfileResult) string {
	res, p := pr.Result, pr.Probe
	c := res.Counters
	var sb strings.Builder
	if len(res.Spec.Streams) > 0 {
		fmt.Fprintf(&sb, "%s under %v: threads=%d (%d CTAs jointly resident)\n",
			core.StreamNames(res.Spec.Streams), res.Spec.Config,
			res.Occupancy.Threads, res.Occupancy.CTAs)
	} else {
		fmt.Fprintf(&sb, "%s under %v: threads=%d (%d CTAs, limited by %v)\n",
			res.Spec.Kernel.Name, res.Spec.Config, res.Occupancy.Threads,
			res.Occupancy.CTAs, res.Occupancy.Limiter)
	}
	fmt.Fprintf(&sb, "cycles=%d  warp IPC=%.3f  thread IPC=%.2f  cache hit=%s  dram=%dB\n\n",
		c.Cycles, c.IPC(), res.IPC(), report.Percent(c.CacheHitRate()), c.DRAMBytes())
	sb.WriteString(StallTable(p).String())
	sb.WriteByte('\n')
	if p.NumStreams() > 1 {
		sb.WriteString(StreamStallTable(p).String())
		sb.WriteByte('\n')
	}
	sb.WriteString(FormatBankHeat(p))
	sb.WriteByte('\n')
	sb.WriteString(FormatIntervals(p))
	return sb.String()
}
