package harness

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/harness -run TestGoldenTables -update
var update = flag.Bool("update", false, "rewrite testdata/golden from current output")

// schedFlag selects the warp-scheduling policy the experiments run under.
// The golden files are pinned for the default (two-level) policy; with a
// non-default policy TestGoldenTables still renders every experiment —
// asserting the full result surface stays runnable under the alternative
// scheduler — but skips the byte comparison.
//
//	go test ./internal/harness -run TestGoldenTables -sched gto
var schedFlag = flag.String("sched", "", "warp scheduler to run the experiments under")

// renderAll regenerates every experiment exactly once per test binary,
// sharing one Runner so baselines are cached across experiments the same
// way cmd/paper runs them. Both the golden comparison and the render
// sanity checks consume this.
var renderAll = sync.OnceValues(func() (map[string]string, error) {
	policy, err := sched.ParsePolicy(*schedFlag)
	if err != nil {
		return nil, err
	}
	r := core.NewRunner()
	r.Params.Scheduler = policy
	out := make(map[string]string, len(Experiments))
	for _, name := range Experiments {
		tab, err := Run(r, name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out[name] = tab.String()
	}
	return out, nil
})

// goldenPath returns the committed rendering of one experiment.
func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".txt")
}

// TestGoldenTables pins the paper's entire result surface: the rendered
// output of all 14 experiments must match the committed golden files
// byte for byte. Run with -update after an intentional model change and
// review the diff like any other code change.
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration skipped in -short mode")
	}
	rendered, err := renderAll()
	if err != nil {
		t.Fatal(err)
	}
	if *schedFlag != "" && *schedFlag != string(sched.TwoLevel) {
		// Non-default policy: every experiment rendered without error is
		// the assertion; the goldens only pin the default scheduler.
		t.Logf("ran all %d experiments under -sched %s; golden comparison skipped", len(Experiments), *schedFlag)
		return
	}
	if *update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range Experiments {
		t.Run(name, func(t *testing.T) {
			got := rendered[name]
			path := goldenPath(name)
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output diverged from %s (regenerate with -update if intentional)\n--- got ---\n%s--- want ---\n%s",
					name, path, got, want)
			}
		})
	}
}
