// Package harness regenerates every table and figure of the paper as a
// rendered text table. It is the shared engine behind cmd/paper and the
// root-level benchmarks (bench_test.go): each ExperimentFunc runs the
// corresponding internal/core driver and formats its output with the same
// rows and series the paper reports.
package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

// Experiment names accepted by Run.
var Experiments = []string{
	"table1", "figure2", "figure3", "figure4", "table4", "table5",
	"figure7", "figure8", "figure9", "figure10", "table6", "figure11",
	"validation", "ablation", "multitenant",
}

// Run regenerates one experiment by name.
func Run(r *core.Runner, name string) (*report.Table, error) {
	switch name {
	case "table1":
		return Table1(r)
	case "figure2":
		return Figure2(r)
	case "figure3":
		return Figure3(r)
	case "figure4":
		return Figure4(r)
	case "table4":
		return Table4(), nil
	case "table5":
		return Table5(r)
	case "figure7":
		return Figure7(r)
	case "figure8":
		return Figure8(r)
	case "figure9":
		return Figure9(r)
	case "figure10":
		return Figure10(r)
	case "table6":
		return Table6(r)
	case "figure11":
		return Figure11(r)
	case "validation":
		return Validation(r)
	case "ablation":
		return Ablation(r)
	case "multitenant":
		return Multitenant(r)
	}
	return nil, fmt.Errorf("harness: unknown experiment %q (have %s)",
		name, strings.Join(Experiments, ", "))
}

// Table1 renders the workload characterization.
func Table1(r *core.Runner) (*report.Table, error) {
	rows, err := r.Table1(workloads.All())
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		"Table 1: workload characterization (dyn insts normalized to spill-free; DRAM normalized to 256KB cache)",
		"workload", "category", "regs", "dyn@18", "dyn@24", "dyn@32", "dyn@40", "dyn@64",
		"RF-full-occ", "shm B/thr", "dram@0", "dram@64K", "dram@256K")
	for _, row := range rows {
		t.AddRow(
			row.Name, row.Category.String(), fmt.Sprint(row.RegsPerThread),
			report.Ratio(row.DynInstRatio[0]), report.Ratio(row.DynInstRatio[1]),
			report.Ratio(row.DynInstRatio[2]), report.Ratio(row.DynInstRatio[3]),
			report.Ratio(row.DynInstRatio[4]),
			fmt.Sprintf("%dK", row.RFFullOccupancyKB),
			fmt.Sprintf("%.1f", row.SharedBytesPerThread),
			report.Ratio(row.DRAMNorm[0]), report.Ratio(row.DRAMNorm[1]),
			report.Ratio(row.DRAMNorm[2]))
	}
	return t, nil
}

// SweepTable renders capacity-sweep figures: one row per (benchmark,
// point), with infeasible points marked.
func SweepTable(title string, sweeps []core.FigureSweep, lineLabel string) *report.Table {
	t := report.NewTable(title, "benchmark", lineLabel, "threads", "capacity", "norm perf")
	for _, sw := range sweeps {
		for _, p := range sw.Points {
			perf := report.Ratio(p.Perf)
			if p.Infeasible {
				perf = "infeasible"
			}
			t.AddRow(sw.Benchmark, fmt.Sprint(p.Regs), fmt.Sprint(p.Threads),
				fmt.Sprintf("%dK", p.CapacityKB), perf)
		}
	}
	return t
}

// Figure2 renders performance versus register file capacity.
func Figure2(r *core.Runner) (*report.Table, error) {
	sweeps, err := r.Figure2()
	if err != nil {
		return nil, err
	}
	return SweepTable("Figure 2: performance vs register file capacity (normalized to 64 regs, 1024 threads)",
		sweeps, "regs/thread"), nil
}

// Figure3 renders performance versus shared-memory capacity.
func Figure3(r *core.Runner) (*report.Table, error) {
	sweeps, err := r.Figure3()
	if err != nil {
		return nil, err
	}
	return SweepTable("Figure 3: performance vs shared memory capacity (normalized to 1024 threads)",
		sweeps, "-"), nil
}

// Figure4 renders performance versus cache capacity.
func Figure4(r *core.Runner) (*report.Table, error) {
	sweeps, err := r.Figure4()
	if err != nil {
		return nil, err
	}
	return SweepTable("Figure 4: performance vs cache capacity (normalized to 512KB cache, 1024 threads)",
		sweeps, "-"), nil
}

// Table4 renders SRAM bank access energies.
func Table4() *report.Table {
	t := report.NewTable("Table 4: energy per 16-byte SRAM bank access (32nm)",
		"structure", "bank size", "read (pJ)", "write (pJ)")
	for _, row := range core.Table4() {
		t.AddRow(row.Structure, fmt.Sprintf("%dK", row.BankKB),
			fmt.Sprintf("%.1f", row.ReadPJ), fmt.Sprintf("%.1f", row.WritePJ))
	}
	return t
}

// Table5 renders the bank-conflict breakdown.
func Table5(r *core.Runner) (*report.Table, error) {
	rows, err := r.Table5()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 5: warp instructions by max accesses to a single bank (Figure 7 benchmarks)",
		"design", "<=1", "2", "3", "4", ">4")
	for _, row := range rows {
		t.AddRow(row.Machine,
			report.Percent(row.Fractions[0]), report.Percent(row.Fractions[1]),
			report.Percent(row.Fractions[2]), report.Percent(row.Fractions[3]),
			report.Percent(row.Fractions[4]))
	}
	return t, nil
}

// NewComparisonTable returns an empty baseline-comparison table with
// the canonical Figure 7/9/10 columns. Callers that need per-row
// control (e.g. infeasible markers in campaign tables) pair it with
// ComparisonRow; everyone else uses ComparisonTable.
func NewComparisonTable(title string) *report.Table {
	return report.NewTable(title,
		"benchmark", "perf (x)", "energy (x)", "dram (x)", "threads", "rf", "shared", "cache")
}

// ComparisonRow formats one comparison for NewComparisonTable.
func ComparisonRow(c core.Comparison) []string {
	return []string{c.Benchmark, report.Ratio(c.PerfRatio), report.Ratio(c.EnergyRatio),
		report.Ratio(c.DRAMRatio), fmt.Sprint(c.Threads),
		report.KB(c.Config.RFBytes), report.KB(c.Config.SharedBytes),
		report.KB(c.Config.CacheBytes)}
}

// ComparisonTable renders machine-versus-baseline comparisons — the
// Figure 7/9/10 rendering, shared with the campaign layer's
// paper-style tables.
func ComparisonTable(title string, comps []core.Comparison) *report.Table {
	t := NewComparisonTable(title)
	for _, c := range comps {
		t.AddRow(ComparisonRow(c)...)
	}
	return t
}

// Figure7 renders the no-benefit comparison.
func Figure7(r *core.Runner) (*report.Table, error) {
	comps, err := r.Figure7()
	if err != nil {
		return nil, err
	}
	return ComparisonTable("Figure 7: unified (384KB) vs partitioned, applications with no benefit", comps), nil
}

// Figure8 renders the chosen unified partitionings.
func Figure8(r *core.Runner) (*report.Table, error) {
	rows, err := r.Figure8()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 8: unified memory allocation chosen per benchmark (384KB)",
		"benchmark", "rf", "shared", "cache", "threads")
	for _, row := range rows {
		t.AddRow(row.Benchmark, fmt.Sprintf("%dK", row.RFKB), fmt.Sprintf("%dK", row.SharedKB),
			fmt.Sprintf("%dK", row.CacheKB), fmt.Sprint(row.Threads))
	}
	return t, nil
}

// Figure9 renders the benefit comparison.
func Figure9(r *core.Runner) (*report.Table, error) {
	comps, err := r.Figure9()
	if err != nil {
		return nil, err
	}
	return ComparisonTable("Figure 9: unified (384KB) vs partitioned, applications that benefit", comps), nil
}

// Figure10 renders the Fermi-like limited-flexibility comparison.
func Figure10(r *core.Runner) (*report.Table, error) {
	comps, err := r.Figure10()
	if err != nil {
		return nil, err
	}
	return ComparisonTable("Figure 10: Fermi-like limited design (384KB) vs partitioned", comps), nil
}

// Table6 renders capacity sensitivity.
func Table6(r *core.Runner) (*report.Table, error) {
	rows, err := r.Table6()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 6: unified capacity sensitivity (normalized to baseline partitioned)",
		"benchmark", "perf@128K", "perf@256K", "perf@384K", "energy@128K", "energy@256K", "energy@384K")
	for _, row := range rows {
		cell := func(v float64, infeasible bool) string {
			if infeasible {
				return "n/a"
			}
			return report.Ratio(v)
		}
		t.AddRow(row.Benchmark,
			cell(row.Perf[0], row.Infeasible[0]), cell(row.Perf[1], row.Infeasible[1]),
			cell(row.Perf[2], row.Infeasible[2]),
			cell(row.Energy[0], row.Infeasible[0]), cell(row.Energy[1], row.Infeasible[1]),
			cell(row.Energy[2], row.Infeasible[2]))
	}
	return t, nil
}

// Figure11 renders the needle blocking-factor study.
func Figure11(r *core.Runner) (*report.Table, error) {
	sweeps, err := r.Figure11()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 11: needle performance vs shared memory capacity by blocking factor",
		"variant", "threads", "shared", "norm perf")
	for _, sw := range sweeps {
		for _, p := range sw.Points {
			perf := report.Ratio(p.Perf)
			if p.Infeasible {
				perf = "infeasible"
			}
			t.AddRow(sw.Benchmark, fmt.Sprint(p.Threads), fmt.Sprintf("%dK", p.CapacityKB), perf)
		}
	}
	return t, nil
}

// ValidationBenchmarks are the kernels used for the Section 5.1
// methodology check (a spread of memory behaviours; the full registry
// would take minutes on a multi-SM chip).
var ValidationBenchmarks = []string{"vectoradd", "needle", "pcr", "sto", "hotspot"}

// ValidationSMs is the chip size used for the methodology check.
const ValidationSMs = 4

// Validation renders the single-SM-vs-chip methodology comparison.
func Validation(r *core.Runner) (*report.Table, error) {
	var kernels []*workloads.Kernel
	for _, name := range ValidationBenchmarks {
		k, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		kernels = append(kernels, k)
	}
	rows, err := r.ValidateMethodology(kernels, ValidationSMs)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Methodology validation (§5.1): single-SM simulation vs %d-SM chip with shared DRAM", ValidationSMs),
		"benchmark", "single-SM cycles", "chip mean cycles", "deviation")
	for _, row := range rows {
		t.AddRow(row.Benchmark, fmt.Sprint(row.SingleSMCycles),
			fmt.Sprintf("%.0f", row.ChipMeanCycles), report.Percent(row.Deviation))
	}
	return t, nil
}

// Ablation renders the Section 4.2 simple-vs-aggressive scatter design
// comparison over the full registry.
func Ablation(r *core.Runner) (*report.Table, error) {
	rows, err := r.AblateScatter(workloads.All())
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		"Ablation (§4.2): aggressive multi-bank scatter/gather vs simple unified design",
		"benchmark", "speedup", "conflict cycles (simple)", "conflict cycles (aggressive)")
	for _, row := range rows {
		t.AddRow(row.Benchmark, fmt.Sprintf("%.4f", row.Speedup),
			fmt.Sprint(row.ConflictCyclesSimple), fmt.Sprint(row.ConflictCyclesAggressive))
	}
	return t, nil
}

// Multitenant renders the concurrent-kernel co-tenancy study: every
// adjacent registry pair and quad runs as one multi-tenant mix under
// the three designs, with the partitioned baseline as the 1.00
// reference. Unified and Fermi capacities partition the baseline's
// 384 KB jointly for the whole mix.
func Multitenant(r *core.Runner) (*report.Table, error) {
	rows, err := r.Multitenant(core.MultitenantMixes(workloads.All()))
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		"Multi-tenant co-tenancy: partitioned vs unified (384KB) vs Fermi-like (384KB), joint runs",
		"mix", "ways", "part cycles", "uni perf (x)", "uni energy (x)", "fermi perf (x)", "fermi energy (x)")
	cell := func(v float64, infeasible bool) string {
		if infeasible {
			return "infeasible"
		}
		return report.Ratio(v)
	}
	for _, row := range rows {
		part := fmt.Sprint(row.PartCycles)
		if row.PartInfeasible {
			part = "infeasible"
		}
		inf := row.PartInfeasible
		t.AddRow(row.Mix, fmt.Sprint(row.Ways), part,
			cell(row.UnifiedPerf, inf || row.UnifiedInfeasible),
			cell(row.UnifiedEnergy, inf || row.UnifiedInfeasible),
			cell(row.FermiPerf, inf || row.FermiInfeasible),
			cell(row.FermiEnergy, inf || row.FermiInfeasible))
	}
	return t, nil
}

// ChartableExperiments lists experiments Chart can render as plots.
var ChartableExperiments = []string{"figure2", "figure3", "figure4", "figure11"}

// Chart renders a capacity-sweep experiment as ASCII charts (one per
// benchmark for the multi-benchmark figures).
func Chart(r *core.Runner, name string) (string, error) {
	var sweeps []core.FigureSweep
	var err error
	var xLabel string
	perBenchmarkSeries := false
	switch name {
	case "figure2":
		sweeps, err = r.Figure2()
		xLabel = "RF capacity (KB)"
	case "figure3":
		sweeps, err = r.Figure3()
		xLabel = "shared memory (KB)"
		perBenchmarkSeries = true
	case "figure4":
		sweeps, err = r.Figure4()
		xLabel = "cache capacity (KB)"
	case "figure11":
		sweeps, err = r.Figure11()
		xLabel = "shared memory (KB)"
		perBenchmarkSeries = true
	default:
		return "", fmt.Errorf("harness: experiment %q is not chartable (have %s)",
			name, strings.Join(ChartableExperiments, ", "))
	}
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if perBenchmarkSeries {
		// One chart, one series per benchmark/variant.
		ch := report.NewChart(name+": normalized performance", xLabel, "perf")
		for _, sw := range sweeps {
			var xs, ys []float64
			for _, p := range sw.Points {
				if p.Infeasible {
					continue
				}
				xs = append(xs, float64(p.CapacityKB))
				ys = append(ys, p.Perf)
			}
			ch.AddSeries(sw.Benchmark, xs, ys)
		}
		b.WriteString(ch.String())
		return b.String(), nil
	}
	// One chart per benchmark, one series per line (regs or threads).
	for _, sw := range sweeps {
		ch := report.NewChart(fmt.Sprintf("%s: %s", name, sw.Benchmark), xLabel, "perf")
		series := map[int]struct{ xs, ys []float64 }{}
		var keys []int
		lineOf := func(p core.SweepPoint) int {
			if name == "figure2" {
				return p.Regs
			}
			return p.Threads
		}
		for _, p := range sw.Points {
			if p.Infeasible {
				continue
			}
			k := lineOf(p)
			s := series[k]
			s.xs = append(s.xs, float64(p.CapacityKB))
			s.ys = append(s.ys, p.Perf)
			if len(s.xs) == 1 {
				keys = append(keys, k)
			}
			series[k] = s
		}
		for _, k := range keys {
			label := fmt.Sprintf("%d regs", k)
			if name != "figure2" {
				label = fmt.Sprintf("%d threads", k)
			}
			ch.AddSeries(label, series[k].xs, series[k].ys)
		}
		b.WriteString(ch.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}
