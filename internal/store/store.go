// Package store is the persistent, content-addressed result store
// underneath the simulation service: a filesystem layout keyed by the
// canonical-config SHA-256 the service already computes for its
// in-memory result cache, so completed simulation bodies survive
// process death.
//
// The contract mirrors the in-memory LRU (internal/serve) one level
// down:
//
//   - Keys are lowercase hex SHA-256 digests of canonical requests.
//     Content addressing makes the store idempotent — two processes (or
//     two attempts of one resumed job) writing the same key write the
//     same bytes, so Put never needs coordination beyond atomicity.
//   - Writes are atomic: the body lands in a temporary file in the same
//     directory and is renamed into place, so a crash mid-write can
//     never leave a torn entry, and a reader never observes a partial
//     body.
//   - The index is restart-safe: Open scans the directory tree once and
//     rebuilds the key set, so a restarted worker knows exactly which
//     results exist and re-enters a half-finished sweep by skipping
//     them — checkpoint/resume for free, and the identity layer that
//     lets N replicas drain one queue against a shared directory.
//
// Layout: <dir>/<key[:2]>/<key>.json — a two-level fan-out keeps
// directories small at campaign scale. Entries are immutable once
// written and never evicted (results are tiny next to traces; an
// operator prunes with rm).
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// Store is a persistent result store rooted at one directory. It is
// safe for concurrent use; the zero value is not usable, call Open.
type Store struct {
	dir string

	mu    sync.RWMutex
	index map[string]struct{}

	hits, misses, puts, errs atomic.Int64
	bytes                    atomic.Int64
}

// Stats is the store's observable state, exposed by the service's
// /metrics snapshot.
type Stats struct {
	// Entries and Bytes describe the resident result set (Bytes counts
	// entries present at Open plus bodies written since).
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Hits and Misses count Get outcomes; Puts counts bodies written
	// (idempotent re-puts of an existing key are not counted).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
	// Errors counts I/O failures (all non-fatal: the caller falls back
	// to simulating).
	Errors int64 `json:"errors"`
}

// Open opens (creating if needed) the store rooted at dir and rebuilds
// its index from the entries already on disk.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, index: make(map[string]struct{})}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		key, ok := strings.CutSuffix(name, ".json")
		if !ok || !validKey(key) {
			return nil // temp files, foreign droppings
		}
		s.index[key] = struct{}{}
		if info, err := d.Info(); err == nil {
			s.bytes.Add(info.Size())
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validKey reports whether key is a lowercase hex SHA-256 digest — the
// only key shape the store accepts, which also makes paths safe by
// construction.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Has reports whether key is present, from the index alone (no I/O).
func (s *Store) Has(key string) bool {
	if !validKey(key) {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Get returns the stored body for key and whether it was present. A
// body that cannot be read back (index/filesystem divergence) counts as
// a miss and drops the key from the index.
func (s *Store) Get(key string) ([]byte, bool) {
	if !s.Has(key) {
		s.misses.Add(1)
		return nil, false
	}
	body, err := os.ReadFile(s.path(key))
	if err != nil {
		s.errs.Add(1)
		s.misses.Add(1)
		s.mu.Lock()
		delete(s.index, key)
		s.mu.Unlock()
		return nil, false
	}
	s.hits.Add(1)
	return body, true
}

// Put stores body under key with an atomic write. Re-putting an
// existing key is a no-op: entries are content-addressed and immutable,
// so the first body is always kept. Errors are returned for logging but
// leave the store consistent (the entry is simply absent).
func (s *Store) Put(key string, body []byte) error {
	if !validKey(key) {
		s.errs.Add(1)
		return fmt.Errorf("store: invalid key %q", key)
	}
	s.mu.Lock()
	if _, ok := s.index[key]; ok {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if err := WriteFileAtomic(s.path(key), body); err != nil {
		s.errs.Add(1)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	s.mu.Lock()
	_, dup := s.index[key]
	s.index[key] = struct{}{}
	s.mu.Unlock()
	if !dup {
		s.puts.Add(1)
		s.bytes.Add(int64(len(body)))
	}
	return nil
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Stats returns the store's counters. Like every metrics read it is
// approximate under concurrency.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	entries := len(s.index)
	s.mu.RUnlock()
	return Stats{
		Entries: entries,
		Bytes:   s.bytes.Load(),
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Puts:    s.puts.Load(),
		Errors:  s.errs.Load(),
	}
}

// WriteFileAtomic writes data to path via a same-directory temporary
// file and rename, creating parent directories as needed. A crash at
// any point leaves either the old content or the new, never a torn
// file. The job engine reuses it for its job records.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
