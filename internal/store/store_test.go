package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func key(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := key("a")
	body := []byte(`{"x":1}` + "\n")
	if _, ok := st.Get(k); ok {
		t.Fatal("Get before Put reported a hit")
	}
	if err := st.Put(k, body); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(k)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, %v; want the stored bytes", got, ok)
	}
	// Idempotent: a second Put of the same key is a no-op.
	if err := st.Put(k, []byte("different")); err != nil {
		t.Fatal(err)
	}
	got, _ = st.Get(k)
	if !bytes.Equal(got, body) {
		t.Error("second Put overwrote a content-addressed entry")
	}
	stats := st.Stats()
	if stats.Entries != 1 || stats.Puts != 1 || stats.Hits != 2 || stats.Misses != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestReopenRebuildIndex(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	bodies := map[string][]byte{}
	for _, s := range []string{"a", "b", "c"} {
		k := key(s)
		bodies[k] = []byte(`{"v":"` + s + `"}`)
		if err := st.Put(k, bodies[k]); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh Open on the same directory must see every entry — the
	// restart-safety contract.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3", st2.Len())
	}
	for k, want := range bodies {
		got, ok := st2.Get(k)
		if !ok || !bytes.Equal(got, want) {
			t.Errorf("reopened Get(%s) = %q, %v", k[:8], got, ok)
		}
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "ab"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ab/notakey.json", "ab/short.json", "README.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Errorf("Len = %d, want 0 (foreign files must not index)", st.Len())
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "short", strings.Repeat("Z", 64), "../../../etc/passwd"} {
		if err := st.Put(k, []byte("x")); err == nil {
			t.Errorf("Put(%q): want error, got none", k)
		}
		if _, ok := st.Get(k); ok {
			t.Errorf("Get(%q): want miss", k)
		}
	}
}

func TestGetDropsCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := key("x")
	if err := st.Put(k, []byte("body")); err != nil {
		t.Fatal(err)
	}
	// Remove the file behind the index's back; Get must miss and heal
	// the index instead of erroring forever.
	if err := os.Remove(filepath.Join(dir, k[:2], k+".json")); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(k); ok {
		t.Fatal("Get of a removed entry reported a hit")
	}
	if st.Len() != 0 {
		t.Errorf("Len = %d after heal, want 0", st.Len())
	}
	if st.Stats().Errors == 0 {
		t.Error("read failure not counted in Errors")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "deep", "nested", "f.json")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2" {
		t.Fatalf("read = %q, %v", got, err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("dir has %d entries, want 1 (temp files must not leak)", len(entries))
	}
}
