// Package isa defines the warp-level instruction set consumed by the SM
// timing simulator.
//
// The simulator is trace driven: a kernel (see internal/kgen and
// internal/workloads) emits, for every warp, a sequence of WarpInst values.
// Each WarpInst describes one SIMT instruction executed by up to 32 threads
// in lockstep: an operation class, register operands annotated with their
// placement in the register file hierarchy (MRF/ORF/LRF), and, for memory
// operations, one address per active thread.
//
// The ISA is deliberately small. The paper's evaluation depends only on
// instruction class (which execution unit and latency), register operand
// placement (which banks are touched), and memory addresses (bank conflicts,
// cache behaviour, DRAM traffic) — not on actual data values, which are
// never modeled.
package isa

import (
	"fmt"
	"math/bits"
)

// WarpSize is the number of threads that execute a WarpInst in lockstep.
const WarpSize = 32

// Op identifies the operation class of a warp instruction.
type Op uint8

// Operation classes. Latencies are assigned by the SM model (internal/sm)
// following Table 2 of the paper.
const (
	// OpNop performs no work and produces no result.
	OpNop Op = iota
	// OpALU is a single-cycle-throughput arithmetic instruction
	// (8-cycle latency).
	OpALU
	// OpSFU is a special-function instruction such as rsqrt or sin
	// (20-cycle latency).
	OpSFU
	// OpLDG is a load from global memory. It probes the primary data
	// cache and on a miss fetches a 128-byte line from DRAM.
	OpLDG
	// OpSTG is a store to global memory. The cache is write-through and
	// no-write-allocate, so stores always send their bytes to DRAM.
	OpSTG
	// OpLDS is a load from shared (scratchpad) memory.
	OpLDS
	// OpSTS is a store to shared (scratchpad) memory.
	OpSTS
	// OpTEX is a texture fetch (400-cycle latency), cached.
	OpTEX
	// OpBAR is a CTA-wide barrier.
	OpBAR
	// OpEXIT terminates the warp.
	OpEXIT

	numOps
)

var opNames = [numOps]string{
	OpNop:  "NOP",
	OpALU:  "ALU",
	OpSFU:  "SFU",
	OpLDG:  "LDG",
	OpSTG:  "STG",
	OpLDS:  "LDS",
	OpSTS:  "STS",
	OpTEX:  "TEX",
	OpBAR:  "BAR",
	OpEXIT: "EXIT",
}

// String returns the mnemonic of the operation class.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsMemory reports whether the op carries per-thread addresses.
func (o Op) IsMemory() bool {
	switch o {
	case OpLDG, OpSTG, OpLDS, OpSTS, OpTEX:
		return true
	}
	return false
}

// IsGlobal reports whether the op accesses the global address space
// (through the cache and DRAM).
func (o Op) IsGlobal() bool {
	switch o {
	case OpLDG, OpSTG, OpTEX:
		return true
	}
	return false
}

// IsShared reports whether the op accesses the shared-memory scratchpad.
func (o Op) IsShared() bool { return o == OpLDS || o == OpSTS }

// IsLoad reports whether the op produces a register result from memory.
func (o Op) IsLoad() bool { return o == OpLDG || o == OpLDS || o == OpTEX }

// IsStore reports whether the op writes memory.
func (o Op) IsStore() bool { return o == OpSTG || o == OpSTS }

// IsLongLatency reports whether a dependent instruction should cause the
// two-level warp scheduler to deschedule the warp while the result is
// outstanding (global loads and texture fetches).
func (o Op) IsLongLatency() bool { return o == OpLDG || o == OpTEX }

// RegSpace identifies where an operand is read from or written to in the
// three-level register file hierarchy of Gebhart et al. [MICRO 2011].
type RegSpace uint8

const (
	// SpaceNone marks an absent operand.
	SpaceNone RegSpace = iota
	// SpaceMRF is the main register file (large, banked SRAM).
	SpaceMRF
	// SpaceORF is the per-thread 4-entry operand register file.
	SpaceORF
	// SpaceLRF is the per-thread single-entry last result file.
	SpaceLRF
)

var spaceNames = [...]string{
	SpaceNone: "-",
	SpaceMRF:  "MRF",
	SpaceORF:  "ORF",
	SpaceLRF:  "LRF",
}

// String returns the name of the register space.
func (s RegSpace) String() string {
	if int(s) < len(spaceNames) {
		return spaceNames[s]
	}
	return fmt.Sprintf("RegSpace(%d)", uint8(s))
}

// NoReg marks an absent register operand.
const NoReg uint8 = 0xFF

// MaxRegs is the maximum number of architectural registers per thread.
const MaxRegs = 64

// Operand is a register operand together with its hierarchy placement.
type Operand struct {
	Reg   uint8 // architectural register index, or NoReg
	Space RegSpace
}

// Valid reports whether the operand names a register.
func (o Operand) Valid() bool { return o.Reg != NoReg && o.Space != SpaceNone }

// String formats the operand as e.g. "r3@MRF".
func (o Operand) String() string {
	if !o.Valid() {
		return "-"
	}
	return fmt.Sprintf("r%d@%s", o.Reg, o.Space)
}

// AddrVec holds one byte address per thread in the warp. Entries of
// inactive threads (per the instruction mask) are ignored.
type AddrVec [WarpSize]uint32

// WarpInst is one dynamic warp instruction.
type WarpInst struct {
	// Op is the operation class.
	Op Op
	// Dst is the destination register, if any. For instructions that
	// produce a result, Dst.Space records the cheapest level the result
	// is written to (always at least the LRF for short-latency ops).
	Dst Operand
	// DstMRFWrite records that the result is additionally written through
	// to the MRF because it is live past a deschedule point or beyond the
	// ORF window. Loads always write the MRF.
	DstMRFWrite bool
	// Srcs are the source operands; unused entries have Space == SpaceNone.
	Srcs [3]Operand
	// Mask is the active-thread mask; bit i set means thread i executes.
	Mask uint32
	// Addrs holds per-thread byte addresses for memory operations and is
	// nil otherwise. Shared-memory addresses are offsets into the CTA's
	// shared segment; global addresses are absolute.
	Addrs *AddrVec
	// Spill marks instructions inserted by the register allocator
	// (spill stores and fill loads) rather than the original program.
	Spill bool
}

// FullMask is the mask with all 32 threads active.
const FullMask uint32 = 0xFFFFFFFF

// ActiveThreads returns the number of active threads in the instruction.
func (wi *WarpInst) ActiveThreads() int {
	return bits.OnesCount32(wi.Mask)
}

// NumSrcs returns the number of valid source operands.
func (wi *WarpInst) NumSrcs() int {
	n := 0
	for _, s := range wi.Srcs {
		if s.Valid() {
			n++
		}
	}
	return n
}

// String renders the instruction for debugging.
func (wi *WarpInst) String() string {
	s := wi.Op.String()
	if wi.Dst.Valid() {
		s += " " + wi.Dst.String()
		if wi.DstMRFWrite && wi.Dst.Space != SpaceMRF {
			s += "+MRF"
		}
	}
	for _, src := range wi.Srcs {
		if src.Valid() {
			s += " " + src.String()
		}
	}
	if wi.Spill {
		s += " [spill]"
	}
	return s
}
