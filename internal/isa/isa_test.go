package isa

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpNop: "NOP", OpALU: "ALU", OpSFU: "SFU", OpLDG: "LDG", OpSTG: "STG",
		OpLDS: "LDS", OpSTS: "STS", OpTEX: "TEX", OpBAR: "BAR", OpEXIT: "EXIT",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); got != "Op(200)" {
		t.Errorf("unknown op String() = %q", got)
	}
}

func TestOpPredicates(t *testing.T) {
	tests := []struct {
		op                                     Op
		mem, global, shared, load, store, long bool
	}{
		{OpNop, false, false, false, false, false, false},
		{OpALU, false, false, false, false, false, false},
		{OpSFU, false, false, false, false, false, false},
		{OpLDG, true, true, false, true, false, true},
		{OpSTG, true, true, false, false, true, false},
		{OpLDS, true, false, true, true, false, false},
		{OpSTS, true, false, true, false, true, false},
		{OpTEX, true, true, false, true, false, true},
		{OpBAR, false, false, false, false, false, false},
		{OpEXIT, false, false, false, false, false, false},
	}
	for _, tc := range tests {
		if got := tc.op.IsMemory(); got != tc.mem {
			t.Errorf("%v.IsMemory() = %v, want %v", tc.op, got, tc.mem)
		}
		if got := tc.op.IsGlobal(); got != tc.global {
			t.Errorf("%v.IsGlobal() = %v, want %v", tc.op, got, tc.global)
		}
		if got := tc.op.IsShared(); got != tc.shared {
			t.Errorf("%v.IsShared() = %v, want %v", tc.op, got, tc.shared)
		}
		if got := tc.op.IsLoad(); got != tc.load {
			t.Errorf("%v.IsLoad() = %v, want %v", tc.op, got, tc.load)
		}
		if got := tc.op.IsStore(); got != tc.store {
			t.Errorf("%v.IsStore() = %v, want %v", tc.op, got, tc.store)
		}
		if got := tc.op.IsLongLatency(); got != tc.long {
			t.Errorf("%v.IsLongLatency() = %v, want %v", tc.op, got, tc.long)
		}
	}
}

func TestOperandValid(t *testing.T) {
	if (Operand{Reg: NoReg, Space: SpaceMRF}).Valid() {
		t.Error("NoReg operand should be invalid")
	}
	if (Operand{Reg: 3, Space: SpaceNone}).Valid() {
		t.Error("SpaceNone operand should be invalid")
	}
	if !(Operand{Reg: 3, Space: SpaceLRF}).Valid() {
		t.Error("r3@LRF should be valid")
	}
}

func TestOperandString(t *testing.T) {
	o := Operand{Reg: 7, Space: SpaceORF}
	if got := o.String(); got != "r7@ORF" {
		t.Errorf("String() = %q", got)
	}
	var empty Operand
	if got := empty.String(); got != "-" {
		t.Errorf("empty String() = %q", got)
	}
}

func TestActiveThreadsMatchesBits(t *testing.T) {
	f := func(mask uint32) bool {
		wi := WarpInst{Mask: mask}
		return wi.ActiveThreads() == bits.OnesCount32(mask)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNumSrcs(t *testing.T) {
	wi := WarpInst{}
	for i := range wi.Srcs {
		wi.Srcs[i].Reg = NoReg
	}
	if got := wi.NumSrcs(); got != 0 {
		t.Errorf("NumSrcs() = %d, want 0", got)
	}
	wi.Srcs[0] = Operand{Reg: 1, Space: SpaceMRF}
	wi.Srcs[2] = Operand{Reg: 2, Space: SpaceLRF}
	if got := wi.NumSrcs(); got != 2 {
		t.Errorf("NumSrcs() = %d, want 2", got)
	}
}

func TestWarpInstString(t *testing.T) {
	wi := WarpInst{
		Op:          OpALU,
		Dst:         Operand{Reg: 1, Space: SpaceLRF},
		DstMRFWrite: true,
	}
	for i := range wi.Srcs {
		wi.Srcs[i].Reg = NoReg
	}
	wi.Srcs[0] = Operand{Reg: 2, Space: SpaceMRF}
	got := wi.String()
	want := "ALU r1@LRF+MRF r2@MRF"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestRegSpaceString(t *testing.T) {
	if SpaceMRF.String() != "MRF" || SpaceORF.String() != "ORF" || SpaceLRF.String() != "LRF" {
		t.Error("space names wrong")
	}
}
