// Package probe is the simulator's cycle-level observability layer.
//
// A Probe attaches to one SM run (core.WithProbe, or sm.Spec.Probe) and
// attributes every issue slot of the run to either an issued instruction
// or one stall cause, accumulates a per-bank access/conflict heatmap, and
// samples interval time series (issue slots, stall breakdown, cache and
// DRAM phase behaviour) every Interval cycles. Attached to an io.Writer,
// it streams the profile as NDJSON records (ndjson.go) for external
// tooling; Decode reads such a stream back.
//
// Observability is strictly opt-in and passive: a nil *Probe disables
// every hook (the SM guards each call site), and an attached probe only
// reads simulator state, so counters and golden outputs are identical
// with and without one. The hot hooks (Issue, Stall, Heat) perform no
// allocation; interval records are appended to a pre-grown slice and
// NDJSON encoding happens only at interval boundaries, off the SM's
// issue loop.
package probe

import (
	"io"

	"repro/internal/config"
	"repro/internal/memsys"
	"repro/internal/stats"
)

// StallReason classifies why an SM issue slot was lost. The scheduler
// charges each stalled cycle to exactly one reason, by the priority
// documented on the constants (highest first), so the per-reason totals
// plus issued slots always sum to the run's total issue slots.
type StallReason uint8

const (
	// StallBarrier: every live warp is blocked at a CTA barrier.
	StallBarrier StallReason = iota
	// StallMSHRFull: the cycle fell inside a window in which all cache
	// miss entries were in flight, so a load was waiting on an MSHR to
	// retire rather than on ordinary memory latency.
	StallMSHRFull
	// StallScoreboard: an active warp was waiting (short wait, below the
	// descheduling threshold) for a source operand to be produced.
	StallScoreboard
	// StallArbitration: the only issue candidates were serialized by a
	// unified-design arbitration conflict (a register operand and a
	// shared/cache access contending for one bank) on their previous
	// instruction.
	StallArbitration
	// StallBankConflict: the only issue candidates were serialized by
	// ordinary bank conflicts on their previous instruction.
	StallBankConflict
	// StallNoReadyWarp: the active set was empty and no warp was ready
	// to be promoted — warps were descheduled on long-latency (memory)
	// dependences, or the grid's tail left nothing to run.
	StallNoReadyWarp
	// StallDrain: cycles after the last warp exited while posted
	// tag-port work drained.
	StallDrain

	// NumStallReasons is the number of stall categories.
	NumStallReasons = int(StallDrain) + 1
)

// stallNames are the NDJSON/report keys, in StallReason order.
var stallNames = [NumStallReasons]string{
	"barrier", "mshr_full", "scoreboard", "arbitration", "bank_conflict",
	"no_ready_warp", "drain",
}

// String names the reason (the NDJSON key).
func (r StallReason) String() string {
	if int(r) < NumStallReasons {
		return stallNames[r]
	}
	return "unknown"
}

// DefaultInterval is the sampling interval, in cycles, used when a Probe
// is created with interval 0.
const DefaultInterval = 4096

// Interval is one closed sampling window of the run's time series.
type Interval struct {
	// Start and End bound the window in SM cycles: [Start, End).
	Start, End int64
	// Issued is the number of instructions issued in the window.
	Issued int64
	// Stalls is the per-reason breakdown of the window's lost slots.
	Stalls [NumStallReasons]int64
	// CacheProbes and CacheHits are the window's tag lookups and hits
	// (deltas of the run counters at the window boundaries).
	CacheProbes, CacheHits int64
	// DRAMBytes is the window's DRAM traffic in bytes.
	DRAMBytes int64
}

// Probe collects one run's cycle-level profile. A Probe observes exactly
// one SM and is not safe for concurrent use; attach a fresh Probe to
// each run of a parallel fan-out.
type Probe struct {
	interval int64
	out      io.Writer

	meta     []metaKV
	counters *stats.Counters

	startCycle int64 // run start (chip simulators stagger SM starts)
	next       int64 // next unaccounted cycle
	began      bool
	ended      bool

	issued int64
	stalls [NumStallReasons]int64

	bankAccess   [config.NumBanks]int64
	bankConflict [config.NumBanks]int64

	// Global-load access classification, from the memory pipeline's typed
	// per-line results: tag hits, in-flight merges (MSHR hits), misses,
	// and the total touched sectors of the missed fills.
	accHits, accMerged, accMisses int64
	missSectors                   int64

	cur       Interval
	intervals []Interval

	// Counter snapshots at the current interval's start.
	snapProbes, snapHits, snapDRAM int64

	// Per-stream attribution (streams.go); all nil/zero on
	// single-kernel runs, so those pay nothing for the capability.
	streamNames    []string
	streamCounters []*stats.Counters
	streamTallies  []streamTally
	lastStream     int

	encBuf []byte // reused NDJSON encode buffer
	werr   error  // first NDJSON write error
}

type metaKV struct{ key, value string }

// New returns a Probe sampling every intervalCycles cycles (0 uses
// DefaultInterval) and, when ndjson is non-nil, streaming NDJSON records
// to it as the run progresses.
func New(intervalCycles int64, ndjson io.Writer) *Probe {
	if intervalCycles <= 0 {
		intervalCycles = DefaultInterval
	}
	return &Probe{
		interval:  intervalCycles,
		out:       ndjson,
		intervals: make([]Interval, 0, 256),
		encBuf:    make([]byte, 0, 512),
	}
}

// Annotate attaches a key/value pair (kernel name, configuration, ...)
// to the profile's metadata, emitted in the NDJSON meta record. Pairs
// keep insertion order. Annotate must be called before the run begins.
func (p *Probe) Annotate(key, value string) {
	p.meta = append(p.meta, metaKV{key, value})
}

// Meta returns the annotation value for key, or "".
func (p *Probe) Meta(key string) string {
	for _, kv := range p.meta {
		if kv.key == key {
			return kv.value
		}
	}
	return ""
}

// Begin starts observation at the run's first cycle. c is the live
// counter set of the SM under observation; the probe reads it at
// interval boundaries to derive cache and DRAM phase deltas. The SM
// calls Begin from Start.
func (p *Probe) Begin(c *stats.Counters, cycle int64) {
	if p.began {
		return
	}
	p.began = true
	p.counters = c
	p.startCycle = cycle
	p.next = cycle
	p.cur = Interval{Start: cycle, End: cycle + p.interval}
	if p.out != nil {
		p.writeMeta()
	}
}

// Issue records one issued instruction occupying the slot at cycle. The
// SM guarantees cycles arrive nondecreasing and that every slot between
// Begin and End is covered by exactly one Issue or Stall call.
func (p *Probe) Issue(cycle int64) {
	p.advance(cycle)
	p.issued++
	p.cur.Issued++
	p.next = cycle + 1
}

// Stall attributes the lost issue slots [from, to) to reason.
func (p *Probe) Stall(from, to int64, reason StallReason) {
	for from < to {
		p.advance(from)
		// Fill the current interval up to its end or the span's end.
		n := to - from
		if room := p.cur.End - from; room < n {
			n = room
		}
		p.stalls[reason] += n
		p.cur.Stalls[reason] += n
		from += n
	}
	if to > p.next {
		p.next = to
	}
}

// Heat returns the probe's per-bank access and conflict accumulators for
// the SM's issue hook (banks.Model.HeatInto adds one instruction's bank
// footprint to them). The arrays index by physical bank number.
func (p *Probe) Heat() (access, conflict *[config.NumBanks]int64) {
	return &p.bankAccess, &p.bankConflict
}

// MemAccess records one typed global-load line access from the memory
// pipeline (memsys.MemSys.Load). Like the other hot hooks it performs no
// allocation; the classification totals are exposed by LoadAccesses and
// do not alter the NDJSON stream or formatted profiles.
func (p *Probe) MemAccess(a *memsys.Access) {
	switch a.Status {
	case memsys.AccessHit:
		p.accHits++
	case memsys.AccessMerged:
		p.accMerged++
	case memsys.AccessMiss:
		p.accMisses++
		for m := a.Sectors; m != 0; m &= m - 1 {
			p.missSectors++
		}
	}
}

// LoadAccesses returns the global-load line-access classification: tag
// hits, in-flight merges (MSHR hits), misses, and the total number of
// 32-byte sectors the missed fills fetched.
func (p *Probe) LoadAccesses() (hits, merged, misses, missSectors int64) {
	return p.accHits, p.accMerged, p.accMisses, p.missSectors
}

// End closes observation at finalCycle (the run's reported cycle count),
// attributing any trailing slots to StallDrain, flushing the last
// partial interval, and emitting the NDJSON summary record.
func (p *Probe) End(finalCycle int64) {
	if !p.began || p.ended {
		return
	}
	p.ended = true
	if finalCycle > p.next {
		// The trailing drain is charged to the last-issuing stream: the
		// run's final issue is the last-finishing stream's EXIT, and the
		// posted tag-port work draining afterwards is its traffic.
		p.StallStream(p.next, finalCycle, StallDrain, p.lastStream)
	}
	if p.cur.Issued != 0 || p.cur.Stalls != ([NumStallReasons]int64{}) {
		p.cur.End = p.next
		p.flush()
	}
	if p.out != nil {
		p.writeSummary()
		p.writeStreams()
	}
}

// advance rolls the current interval window forward until it contains
// cycle, flushing each completed interval.
func (p *Probe) advance(cycle int64) {
	for cycle >= p.cur.End {
		p.flush()
	}
}

// flush closes the current interval: snapshots counter deltas, appends
// the record, streams it as NDJSON, and opens the next window.
func (p *Probe) flush() {
	iv := p.cur
	if p.counters != nil {
		iv.CacheProbes = p.counters.CacheProbes - p.snapProbes
		iv.CacheHits = p.counters.CacheHits - p.snapHits
		iv.DRAMBytes = p.counters.DRAMBytes() - p.snapDRAM
		p.snapProbes = p.counters.CacheProbes
		p.snapHits = p.counters.CacheHits
		p.snapDRAM = p.counters.DRAMBytes()
	}
	p.intervals = append(p.intervals, iv)
	if p.out != nil {
		p.writeInterval(&iv)
	}
	p.cur = Interval{Start: iv.End, End: iv.End + p.interval}
}

// Issued returns the number of instructions issued.
func (p *Probe) Issued() int64 { return p.issued }

// StallSlots returns the per-reason totals of lost issue slots.
func (p *Probe) StallSlots() [NumStallReasons]int64 { return p.stalls }

// TotalSlots returns the total issue slots observed: issued plus every
// stall category. By construction this equals the span of cycles the
// probe covered, so the breakdown always sums exactly.
func (p *Probe) TotalSlots() int64 {
	n := p.issued
	for _, s := range p.stalls {
		n += s
	}
	return n
}

// StartCycle returns the cycle observation began at.
func (p *Probe) StartCycle() int64 { return p.startCycle }

// IntervalCycles returns the sampling interval.
func (p *Probe) IntervalCycles() int64 { return p.interval }

// Intervals returns the completed sampling windows, in time order.
func (p *Probe) Intervals() []Interval { return p.intervals }

// BankHeat returns copies of the per-bank access and conflict counts.
func (p *Probe) BankHeat() (access, conflict [config.NumBanks]int64) {
	return p.bankAccess, p.bankConflict
}

// WriteErr returns the first error encountered writing NDJSON records,
// or nil. Hooks never fail the simulation; callers that care about the
// stream check WriteErr after the run.
func (p *Probe) WriteErr() error { return p.werr }
