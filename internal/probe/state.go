package probe

import (
	"io"

	"repro/internal/config"
	"repro/internal/stats"
)

// State is a frozen image of a probe mid-run: accumulators, the open
// sampling window, the completed interval series, and the counter
// snapshots that turn run counters into per-interval deltas. It exists
// so a forked SM's probe continues the parent's stream exactly — the
// NDJSON records a restored probe emits from cycle K onward are byte
// for byte what the parent would have written.
//
// Not captured: the output writer and encode buffer (a fork streams to
// its own writer; bytes the parent already wrote belong to the caller),
// and the live counters pointer, which must be rebound to the fork's
// counter set (Rebind) — pointing a fork's probe at the parent's
// counters would make interval deltas read the wrong run.
type State struct {
	Interval   int64
	Meta       [][2]string
	StartCycle int64
	Next       int64
	Began      bool
	Ended      bool

	Issued int64
	Stalls [NumStallReasons]int64

	BankAccess   [config.NumBanks]int64
	BankConflict [config.NumBanks]int64

	AccHits, AccMerged, AccMisses int64
	MissSectors                   int64

	Cur       Interval
	Intervals []Interval

	SnapProbes, SnapHits, SnapDRAM int64
}

// Snapshot captures the probe state as an immutable State. A nil probe
// snapshots to nil (unprobed runs stay unprobed across forks).
func (p *Probe) Snapshot() *State {
	if p == nil {
		return nil
	}
	st := &State{
		Interval:     p.interval,
		Meta:         make([][2]string, len(p.meta)),
		StartCycle:   p.startCycle,
		Next:         p.next,
		Began:        p.began,
		Ended:        p.ended,
		Issued:       p.issued,
		Stalls:       p.stalls,
		BankAccess:   p.bankAccess,
		BankConflict: p.bankConflict,
		AccHits:      p.accHits,
		AccMerged:    p.accMerged,
		AccMisses:    p.accMisses,
		MissSectors:  p.missSectors,
		Cur:          p.cur,
		Intervals:    append([]Interval(nil), p.intervals...),
		SnapProbes:   p.snapProbes,
		SnapHits:     p.snapHits,
		SnapDRAM:     p.snapDRAM,
	}
	for i, kv := range p.meta {
		st.Meta[i] = [2]string{kv.key, kv.value}
	}
	return st
}

// Restore builds a probe resuming from st, streaming any further NDJSON
// records to out (nil disables streaming). The parent's meta record and
// completed intervals were already written to the parent's writer, so a
// restored probe never re-emits them; concatenating the parent's bytes
// with the fork's reproduces the single-run stream. The probe's counters
// pointer starts nil — the forked SM must call Rebind before running.
func Restore(st *State, out io.Writer) *Probe {
	if st == nil {
		return nil
	}
	p := &Probe{
		interval:     st.Interval,
		out:          out,
		meta:         make([]metaKV, len(st.Meta)),
		startCycle:   st.StartCycle,
		next:         st.Next,
		began:        st.Began,
		ended:        st.Ended,
		issued:       st.Issued,
		stalls:       st.Stalls,
		bankAccess:   st.BankAccess,
		bankConflict: st.BankConflict,
		accHits:      st.AccHits,
		accMerged:    st.AccMerged,
		accMisses:    st.AccMisses,
		missSectors:  st.MissSectors,
		cur:          st.Cur,
		intervals:    append(make([]Interval, 0, len(st.Intervals)+256), st.Intervals...),
		snapProbes:   st.SnapProbes,
		snapHits:     st.SnapHits,
		snapDRAM:     st.SnapDRAM,
		encBuf:       make([]byte, 0, 512),
	}
	for i, kv := range st.Meta {
		p.meta[i] = metaKV{key: kv[0], value: kv[1]}
	}
	return p
}

// Rebind points the probe at the counter set of the SM it now observes.
// It is the snapshot/fork hook: a restored probe's interval deltas must
// read the forked run's counters, not the parent's. The SM calls it
// during Fork; it has no other use.
func (p *Probe) Rebind(c *stats.Counters) { p.counters = c }
