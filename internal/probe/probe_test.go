package probe

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/config"
)

// TestStallSplitsAcrossIntervals drives a synthetic event sequence and
// checks that spans crossing interval boundaries are split correctly and
// that the breakdown sums to the covered cycle span.
func TestStallSplitsAcrossIntervals(t *testing.T) {
	p := New(10, nil)
	p.Begin(nil, 0)

	p.Issue(0)                        // interval 0
	p.Stall(1, 25, StallScoreboard)   // spans intervals 0, 1, 2
	p.Issue(25)                       // interval 2
	p.Stall(26, 30, StallNoReadyWarp) // rest of interval 2
	p.Issue(30)                       // interval 3
	p.End(34)                         // 3 trailing drain slots

	if got := p.Issued(); got != 3 {
		t.Fatalf("Issued = %d, want 3", got)
	}
	stalls := p.StallSlots()
	if stalls[StallScoreboard] != 24 {
		t.Errorf("scoreboard slots = %d, want 24", stalls[StallScoreboard])
	}
	if stalls[StallNoReadyWarp] != 4 {
		t.Errorf("no-ready-warp slots = %d, want 4", stalls[StallNoReadyWarp])
	}
	if stalls[StallDrain] != 3 {
		t.Errorf("drain slots = %d, want 3", stalls[StallDrain])
	}
	// Every cycle [0, 34) accounted for exactly once.
	if got := p.TotalSlots(); got != 34 {
		t.Fatalf("TotalSlots = %d, want 34", got)
	}

	ivs := p.Intervals()
	if len(ivs) != 4 {
		t.Fatalf("got %d intervals, want 4", len(ivs))
	}
	// Interval 0: one issue + 9 scoreboard slots.
	if ivs[0].Issued != 1 || ivs[0].Stalls[StallScoreboard] != 9 {
		t.Errorf("interval 0 = %+v, want issued=1 scoreboard=9", ivs[0])
	}
	// Interval 1: fully inside the scoreboard span.
	if ivs[1].Stalls[StallScoreboard] != 10 {
		t.Errorf("interval 1 scoreboard = %d, want 10", ivs[1].Stalls[StallScoreboard])
	}
	// Interval 2: 5 scoreboard tail + issue at 25 + 4 no-ready-warp.
	if ivs[2].Issued != 1 || ivs[2].Stalls[StallScoreboard] != 5 || ivs[2].Stalls[StallNoReadyWarp] != 4 {
		t.Errorf("interval 2 = %+v, want issued=1 scoreboard=5 noready=4", ivs[2])
	}
	// Each interval's slots sum to its window span (last one is partial).
	for i, iv := range ivs {
		slots := iv.Issued
		for _, n := range iv.Stalls {
			slots += n
		}
		span := iv.End - iv.Start
		if slots != span {
			t.Errorf("interval %d: %d slots over a %d-cycle window", i, slots, span)
		}
	}
	if last := ivs[3]; last.End != 34 {
		t.Errorf("last interval ends at %d, want 34 (trimmed to the run)", last.End)
	}
}

// TestStaggeredStart checks attribution when observation begins at a
// nonzero cycle, as in the multi-SM chip simulator.
func TestStaggeredStart(t *testing.T) {
	p := New(0, nil)
	p.Begin(nil, 1000)
	p.Issue(1000)
	p.Stall(1001, 1500, StallBarrier)
	p.End(1500)
	if p.StartCycle() != 1000 {
		t.Errorf("StartCycle = %d, want 1000", p.StartCycle())
	}
	if got := p.TotalSlots(); got != 500 {
		t.Errorf("TotalSlots = %d, want 500", got)
	}
	if p.IntervalCycles() != DefaultInterval {
		t.Errorf("IntervalCycles = %d, want DefaultInterval", p.IntervalCycles())
	}
}

// TestNDJSONRoundTrip streams a synthetic profile and decodes it back.
func TestNDJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	p := New(16, &buf)
	p.Annotate("kernel", "synthetic")
	p.Annotate("config", `quoted "name" \ and ünïcode`)
	p.Begin(nil, 0)
	p.Issue(0)
	p.Stall(1, 40, StallBankConflict)
	acc, conf := p.Heat()
	acc[0] = 7
	acc[31] = 3
	conf[31] = 2
	p.End(45)
	if err := p.WriteErr(); err != nil {
		t.Fatalf("WriteErr: %v", err)
	}

	prof, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if prof.Version != ndjsonVersion {
		t.Errorf("Version = %d, want %d", prof.Version, ndjsonVersion)
	}
	if prof.IntervalCycles != 16 {
		t.Errorf("IntervalCycles = %d, want 16", prof.IntervalCycles)
	}
	if prof.Annotations["kernel"] != "synthetic" {
		t.Errorf("kernel annotation = %q", prof.Annotations["kernel"])
	}
	if got := prof.Annotations["config"]; got != `quoted "name" \ and ünïcode` {
		t.Errorf("escaped annotation round-trip = %q", got)
	}
	if len(prof.Intervals) != len(p.Intervals()) {
		t.Fatalf("decoded %d intervals, want %d", len(prof.Intervals), len(p.Intervals()))
	}
	for i, iv := range p.Intervals() {
		if prof.Intervals[i] != iv {
			t.Errorf("interval %d: decoded %+v, want %+v", i, prof.Intervals[i], iv)
		}
	}
	s := prof.Summary
	if s == nil {
		t.Fatal("no summary record decoded")
	}
	if s.Slots != p.TotalSlots() || s.Issued != p.Issued() || s.Stalls != p.StallSlots() {
		t.Errorf("summary totals %+v do not match probe", s)
	}
	wantAcc, wantConf := p.BankHeat()
	if s.BankAccess != wantAcc || s.BankConflict != wantConf {
		t.Errorf("summary bank heat does not match probe")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct{ name, stream, wantErr string }{
		{"unknown type", `{"type":"wat"}`, `unknown record type`},
		{"unknown reason", `{"type":"interval","stalls":{"cosmic_rays":1}}`, `unknown stall reason`},
		{"bank mismatch", `{"type":"summary","bank_access":[1,2,3]}`, `3 banks`},
		{"bad json", `{"type":`, `line 1`},
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c.stream)); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

// TestDecodeTruncated: a stream cut off before the summary decodes
// cleanly with Summary == nil.
func TestDecodeTruncated(t *testing.T) {
	prof, err := Decode(strings.NewReader(
		`{"type":"meta","version":1,"interval":4096,"annotations":{}}` + "\n" +
			`{"type":"interval","start":0,"end":4096,"issued":5,"stalls":{},"cache_probes":0,"cache_hits":0,"dram_bytes":0}` + "\n"))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if prof.Summary != nil {
		t.Error("truncated stream decoded a summary")
	}
	if len(prof.Intervals) != 1 {
		t.Errorf("decoded %d intervals, want 1", len(prof.Intervals))
	}
}

// TestHotHooksDoNotAllocate pins the zero-allocation contract of the
// hooks on the SM's issue loop: Issue, Stall, and Heat must not allocate
// in steady state (no NDJSON writer attached).
func TestHotHooksDoNotAllocate(t *testing.T) {
	p := New(1<<40, nil) // one huge interval: steady state, no flushes
	p.Begin(nil, 0)
	cycle := int64(0)
	if n := testing.AllocsPerRun(1000, func() {
		p.Issue(cycle)
		p.Stall(cycle+1, cycle+3, StallScoreboard)
		acc, conf := p.Heat()
		acc[cycle%config.NumBanks]++
		conf[cycle%config.NumBanks]++
		cycle += 3
	}); n != 0 {
		t.Fatalf("hot hooks allocate %v times per issue", n)
	}
}

func BenchmarkProbeIssue(b *testing.B) {
	p := New(1<<40, nil)
	p.Begin(nil, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Issue(int64(i))
	}
}

func BenchmarkProbeStall(b *testing.B) {
	p := New(1<<40, nil)
	p.Begin(nil, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := int64(i) * 2
		p.Stall(c, c+2, StallNoReadyWarp)
	}
}
