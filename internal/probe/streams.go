package probe

import "repro/internal/stats"

// Per-stream attribution. When several kernels (streams) are co-resident
// on the observed SM, the SM routes its hot hooks through IssueStream and
// StallStream instead of Issue and Stall: each wraps the aggregate hook
// and additionally tallies the slot to one stream, so the per-stream
// breakdowns sum exactly to the aggregate profile by construction (the
// conservation invariant DESIGN.md §5j pins). A probe without SetStreams
// carries no per-stream state and its NDJSON stream is byte-identical to
// the single-kernel schema.

// streamTally is one stream's share of the issue-slot attribution.
type streamTally struct {
	issued int64
	stalls [NumStallReasons]int64
}

// SetStreams declares the co-resident streams before the run begins.
// names label the streams (kernel names) in stream-index order; counters
// optionally supplies each stream's live counter set (per-stream cache
// and DRAM attribution in the NDJSON stream records), and may be nil.
func (p *Probe) SetStreams(names []string, counters []*stats.Counters) {
	if len(names) == 0 {
		return
	}
	p.streamNames = append([]string(nil), names...)
	p.streamCounters = counters
	p.streamTallies = make([]streamTally, len(names))
}

// IssueStream is Issue with the slot additionally charged to stream.
func (p *Probe) IssueStream(cycle int64, stream int) {
	p.Issue(cycle)
	if p.streamTallies != nil {
		p.streamTallies[stream].issued++
		p.lastStream = stream
	}
}

// StallStream is Stall with the lost slots additionally charged to
// stream (the stream the SM holds responsible for the stall).
func (p *Probe) StallStream(from, to int64, reason StallReason, stream int) {
	if p.streamTallies != nil && to > from {
		p.streamTallies[stream].stalls[reason] += to - from
	}
	p.Stall(from, to, reason)
}

// NumStreams returns the number of declared streams (0 when the probe
// observes a single-kernel run).
func (p *Probe) NumStreams() int { return len(p.streamNames) }

// StreamName returns the label of stream i.
func (p *Probe) StreamName(i int) string { return p.streamNames[i] }

// StreamIssued returns the instructions issued by stream i.
func (p *Probe) StreamIssued(i int) int64 { return p.streamTallies[i].issued }

// StreamStalls returns stream i's per-reason lost-slot totals.
func (p *Probe) StreamStalls(i int) [NumStallReasons]int64 { return p.streamTallies[i].stalls }
