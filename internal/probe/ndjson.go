package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/config"
)

// NDJSON stream schema (one JSON object per line, in stream order):
//
//	{"type":"meta","version":1,"interval":4096,
//	 "annotations":{"kernel":"needle","config":"..."}}
//	{"type":"interval","start":0,"end":4096,"issued":3071,
//	 "stalls":{"barrier":0,...},"cache_probes":412,"cache_hits":301,
//	 "dram_bytes":14208}
//	... one interval record per completed sampling window ...
//	{"type":"summary","start":0,"slots":188416,"issued":150221,
//	 "stalls":{...},"bank_access":[32 ints],"bank_conflict":[32 ints],
//	 "cache_probes":...,"cache_hits":...,"dram_bytes":...}
//
// Records are hand-encoded with a fixed field order so a run's stream is
// byte-deterministic; Decode accepts any field order.

// ndjsonVersion is the stream schema version of this package.
const ndjsonVersion = 1

// write sends one encoded line, latching the first error.
func (p *Probe) write(line []byte) {
	if p.werr != nil {
		return
	}
	if _, err := p.out.Write(line); err != nil {
		p.werr = err
	}
}

// appendStalls encodes a stall breakdown object in StallReason order.
func appendStalls(b []byte, stalls *[NumStallReasons]int64) []byte {
	b = append(b, `"stalls":{`...)
	for i, n := range stalls {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, stallNames[i]...)
		b = append(b, `":`...)
		b = strconv.AppendInt(b, n, 10)
	}
	return append(b, '}')
}

// appendInts encodes an int64 array value.
func appendInts(b []byte, vals *[config.NumBanks]int64) []byte {
	b = append(b, '[')
	for i, v := range vals {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, v, 10)
	}
	return append(b, ']')
}

func (p *Probe) writeMeta() {
	b := p.encBuf[:0]
	b = append(b, `{"type":"meta","version":`...)
	b = strconv.AppendInt(b, ndjsonVersion, 10)
	b = append(b, `,"interval":`...)
	b = strconv.AppendInt(b, p.interval, 10)
	b = append(b, `,"annotations":{`...)
	for i, kv := range p.meta {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, kv.key)
		b = append(b, ':')
		b = appendJSONString(b, kv.value)
	}
	b = append(b, "}}\n"...)
	p.encBuf = b
	p.write(b)
}

func (p *Probe) writeInterval(iv *Interval) {
	b := p.encBuf[:0]
	b = append(b, `{"type":"interval","start":`...)
	b = strconv.AppendInt(b, iv.Start, 10)
	b = append(b, `,"end":`...)
	b = strconv.AppendInt(b, iv.End, 10)
	b = append(b, `,"issued":`...)
	b = strconv.AppendInt(b, iv.Issued, 10)
	b = append(b, ',')
	b = appendStalls(b, &iv.Stalls)
	b = append(b, `,"cache_probes":`...)
	b = strconv.AppendInt(b, iv.CacheProbes, 10)
	b = append(b, `,"cache_hits":`...)
	b = strconv.AppendInt(b, iv.CacheHits, 10)
	b = append(b, `,"dram_bytes":`...)
	b = strconv.AppendInt(b, iv.DRAMBytes, 10)
	b = append(b, "}\n"...)
	p.encBuf = b
	p.write(b)
}

func (p *Probe) writeSummary() {
	var cp, ch, db int64
	if p.counters != nil {
		cp, ch, db = p.counters.CacheProbes, p.counters.CacheHits, p.counters.DRAMBytes()
	}
	b := p.encBuf[:0]
	b = append(b, `{"type":"summary","start":`...)
	b = strconv.AppendInt(b, p.startCycle, 10)
	b = append(b, `,"slots":`...)
	b = strconv.AppendInt(b, p.TotalSlots(), 10)
	b = append(b, `,"issued":`...)
	b = strconv.AppendInt(b, p.issued, 10)
	b = append(b, ',')
	b = appendStalls(b, &p.stalls)
	b = append(b, `,"bank_access":`...)
	b = appendInts(b, &p.bankAccess)
	b = append(b, `,"bank_conflict":`...)
	b = appendInts(b, &p.bankConflict)
	b = append(b, `,"cache_probes":`...)
	b = strconv.AppendInt(b, cp, 10)
	b = append(b, `,"cache_hits":`...)
	b = strconv.AppendInt(b, ch, 10)
	b = append(b, `,"dram_bytes":`...)
	b = strconv.AppendInt(b, db, 10)
	b = append(b, "}\n"...)
	p.encBuf = b
	p.write(b)
}

// writeStreams emits one stream record per declared stream, after the
// summary. Single-kernel probes (no SetStreams) emit nothing, keeping
// their streams byte-identical to the version-1 single-kernel schema:
//
//	{"type":"stream","index":0,"name":"fft","issued":...,"stalls":{...},
//	 "cache_probes":...,"cache_hits":...,"cache_misses":...,
//	 "dram_bytes":...}
func (p *Probe) writeStreams() {
	for i := range p.streamNames {
		var cp, ch, cm, db int64
		if p.streamCounters != nil && p.streamCounters[i] != nil {
			c := p.streamCounters[i]
			cp, ch, cm, db = c.CacheProbes, c.CacheHits, c.CacheMisses, c.DRAMBytes()
		}
		t := &p.streamTallies[i]
		b := p.encBuf[:0]
		b = append(b, `{"type":"stream","index":`...)
		b = strconv.AppendInt(b, int64(i), 10)
		b = append(b, `,"name":`...)
		b = appendJSONString(b, p.streamNames[i])
		b = append(b, `,"issued":`...)
		b = strconv.AppendInt(b, t.issued, 10)
		b = append(b, ',')
		b = appendStalls(b, &t.stalls)
		b = append(b, `,"cache_probes":`...)
		b = strconv.AppendInt(b, cp, 10)
		b = append(b, `,"cache_hits":`...)
		b = strconv.AppendInt(b, ch, 10)
		b = append(b, `,"cache_misses":`...)
		b = strconv.AppendInt(b, cm, 10)
		b = append(b, `,"dram_bytes":`...)
		b = strconv.AppendInt(b, db, 10)
		b = append(b, "}\n"...)
		p.encBuf = b
		p.write(b)
	}
}

// appendJSONString appends a JSON-quoted string. Annotation keys and
// values are short config/kernel names; anything needing escapes goes
// through the standard encoder.
func appendJSONString(b []byte, s string) []byte {
	plain := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			plain = false
			break
		}
	}
	if plain {
		b = append(b, '"')
		b = append(b, s...)
		return append(b, '"')
	}
	enc, _ := json.Marshal(s)
	return append(b, enc...)
}

// Summary is the decoded whole-run totals of an NDJSON profile.
type Summary struct {
	Start        int64
	Slots        int64
	Issued       int64
	Stalls       [NumStallReasons]int64
	BankAccess   [config.NumBanks]int64
	BankConflict [config.NumBanks]int64
	CacheProbes  int64
	CacheHits    int64
	DRAMBytes    int64
}

// StreamSummary is one co-resident stream's share of the profile, from
// a decoded stream record. The per-stream issued and stall totals sum
// exactly to the aggregate Summary across streams.
type StreamSummary struct {
	// Index is the stream's index on the SM; Name labels it (the kernel
	// name).
	Index int
	Name  string
	// Issued and Stalls are the stream's share of the issue slots.
	Issued int64
	Stalls [NumStallReasons]int64
	// CacheProbes, CacheHits, CacheMisses, and DRAMBytes are the
	// stream's memory-system totals.
	CacheProbes, CacheHits, CacheMisses int64
	DRAMBytes                           int64
}

// Profile is a decoded NDJSON stream.
type Profile struct {
	// Version is the stream schema version from the meta record.
	Version int
	// IntervalCycles is the sampling interval from the meta record.
	IntervalCycles int64
	// Annotations are the meta record's key/value pairs.
	Annotations map[string]string
	// Intervals are the sampling windows, in stream order.
	Intervals []Interval
	// Summary is the whole-run record, nil if the stream was truncated
	// before the run ended.
	Summary *Summary
	// Streams are the per-stream records of a multi-tenant run, in
	// stream-index order; empty for single-kernel profiles.
	Streams []StreamSummary
}

// record is the union wire form of every NDJSON line.
type record struct {
	Type         string            `json:"type"`
	Version      int               `json:"version"`
	Interval     int64             `json:"interval"`
	Annotations  map[string]string `json:"annotations"`
	Start        int64             `json:"start"`
	End          int64             `json:"end"`
	Slots        int64             `json:"slots"`
	Issued       int64             `json:"issued"`
	Stalls       map[string]int64  `json:"stalls"`
	BankAccess   []int64           `json:"bank_access"`
	BankConflict []int64           `json:"bank_conflict"`
	CacheProbes  int64             `json:"cache_probes"`
	CacheHits    int64             `json:"cache_hits"`
	CacheMisses  int64             `json:"cache_misses"`
	DRAMBytes    int64             `json:"dram_bytes"`
	Index        int               `json:"index"`
	Name         string            `json:"name"`
}

// reasonIndex maps an NDJSON stall key back to its StallReason.
func reasonIndex(name string) (StallReason, bool) {
	for i, n := range stallNames {
		if n == name {
			return StallReason(i), true
		}
	}
	return 0, false
}

func decodeStalls(m map[string]int64, line int) ([NumStallReasons]int64, error) {
	var out [NumStallReasons]int64
	for name, v := range m {
		r, ok := reasonIndex(name)
		if !ok {
			return out, fmt.Errorf("probe: line %d: unknown stall reason %q", line, name)
		}
		out[r] = v
	}
	return out, nil
}

func copyBanks(dst *[config.NumBanks]int64, src []int64, what string, line int) error {
	if src == nil {
		return nil
	}
	if len(src) != config.NumBanks {
		return fmt.Errorf("probe: line %d: %s has %d banks, want %d", line, what, len(src), config.NumBanks)
	}
	copy(dst[:], src)
	return nil
}

// Decode reads an NDJSON profile stream back into a Profile. It accepts
// exactly the records this package emits and fails on unknown record
// types or malformed lines.
func Decode(r io.Reader) (*Profile, error) {
	p := &Profile{Annotations: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("probe: line %d: %w", line, err)
		}
		switch rec.Type {
		case "meta":
			p.Version = rec.Version
			p.IntervalCycles = rec.Interval
			for k, v := range rec.Annotations {
				p.Annotations[k] = v
			}
		case "interval":
			stalls, err := decodeStalls(rec.Stalls, line)
			if err != nil {
				return nil, err
			}
			p.Intervals = append(p.Intervals, Interval{
				Start: rec.Start, End: rec.End, Issued: rec.Issued,
				Stalls:      stalls,
				CacheProbes: rec.CacheProbes, CacheHits: rec.CacheHits,
				DRAMBytes: rec.DRAMBytes,
			})
		case "summary":
			stalls, err := decodeStalls(rec.Stalls, line)
			if err != nil {
				return nil, err
			}
			s := &Summary{
				Start: rec.Start, Slots: rec.Slots, Issued: rec.Issued,
				Stalls:      stalls,
				CacheProbes: rec.CacheProbes, CacheHits: rec.CacheHits,
				DRAMBytes: rec.DRAMBytes,
			}
			if err := copyBanks(&s.BankAccess, rec.BankAccess, "bank_access", line); err != nil {
				return nil, err
			}
			if err := copyBanks(&s.BankConflict, rec.BankConflict, "bank_conflict", line); err != nil {
				return nil, err
			}
			p.Summary = s
		case "stream":
			stalls, err := decodeStalls(rec.Stalls, line)
			if err != nil {
				return nil, err
			}
			p.Streams = append(p.Streams, StreamSummary{
				Index: rec.Index, Name: rec.Name, Issued: rec.Issued,
				Stalls:      stalls,
				CacheProbes: rec.CacheProbes, CacheHits: rec.CacheHits,
				CacheMisses: rec.CacheMisses, DRAMBytes: rec.DRAMBytes,
			})
		default:
			return nil, fmt.Errorf("probe: line %d: unknown record type %q", line, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("probe: reading stream: %w", err)
	}
	return p, nil
}
