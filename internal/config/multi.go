package config

import (
	"errors"
	"fmt"
)

// AllocateMulti extends the Section 4.5 automatic partitioning to a set
// of co-resident kernels sharing one unified memory of totalBytes. CTAs
// are admitted greedily round-robin — each round offers every kernel,
// in index order, one more CTA under the joint thread and capacity
// budgets — so the split reflects the same interleaving the dispatcher
// uses for CTA slots. Register file and shared memory are sized to the
// admitted footprints, and all remaining storage becomes primary data
// cache (rounded down to whole cache sets, as in Allocate).
//
// Every kernel must admit at least one CTA alongside its co-tenants;
// otherwise AllocateMulti fails with ErrDoesNotFit. threadCap, if
// non-zero, bounds the joint resident-thread count.
func AllocateMulti(reqs []KernelRequirements, totalBytes, threadCap int) (MemConfig, error) {
	if len(reqs) == 0 {
		return MemConfig{}, errors.New("config: no kernels to allocate for")
	}
	if len(reqs) == 1 {
		return Allocate(reqs[0], totalBytes, threadCap)
	}
	for i, req := range reqs {
		if req.ThreadsPerCTA <= 0 {
			return MemConfig{}, fmt.Errorf("config: stream %d: ThreadsPerCTA must be positive", i)
		}
		if req.ThreadsPerCTA%32 != 0 {
			return MemConfig{}, fmt.Errorf("config: stream %d: ThreadsPerCTA %d not a multiple of the warp size", i, req.ThreadsPerCTA)
		}
	}
	limit := MaxThreadsPerSM
	if threadCap > 0 && threadCap < limit {
		limit = threadCap
	}
	ctas := make([]int, len(reqs))
	blocked := make([]bool, len(reqs))
	threads, used := 0, 0
	for progress := true; progress; {
		progress = false
		for i, req := range reqs {
			if blocked[i] {
				continue
			}
			perCTA := req.BytesPerThread()*req.ThreadsPerCTA + req.SharedBytesPerCTA
			if threads+req.ThreadsPerCTA > limit || used+perCTA > totalBytes {
				blocked[i] = true
				continue
			}
			ctas[i]++
			threads += req.ThreadsPerCTA
			used += perCTA
			progress = true
		}
	}
	cfg := MemConfig{Design: Unified, MaxThreads: threads}
	for i, req := range reqs {
		if ctas[i] < 1 {
			return MemConfig{}, fmt.Errorf("config: stream %d does not fit alongside its co-tenants in %d bytes: %w",
				i, totalBytes, ErrDoesNotFit)
		}
		cfg.RFBytes += ctas[i] * req.ThreadsPerCTA * req.BytesPerThread()
		cfg.SharedBytes += ctas[i] * req.SharedBytesPerCTA
	}
	cfg.CacheBytes = totalBytes - cfg.RFBytes - cfg.SharedBytes
	// Round the cache down to a whole number of sets, as Allocate does.
	cfg.CacheBytes -= cfg.CacheBytes % (CacheLineBytes * CacheWays)
	return cfg, nil
}

// ChooseFermiMulti picks the Fermi-like shared/cache split that admits
// the most joint resident threads for a set of co-resident kernels,
// breaking ties toward the larger cache (as ChooseFermi does for one
// kernel). Residency uses the same round-robin CTA admission as
// AllocateMulti, under the split's fixed register-file and
// shared-memory capacities.
func ChooseFermiMulti(reqs []KernelRequirements, nonRFBytes, threadCap int) MemConfig {
	if len(reqs) == 1 {
		return ChooseFermi(reqs[0], nonRFBytes, threadCap)
	}
	splits := FermiSplits(nonRFBytes)
	best := splits[1] // prefer the larger cache on ties
	if residentThreadsMulti(reqs, splits[0], threadCap) > residentThreadsMulti(reqs, splits[1], threadCap) {
		best = splits[0]
	}
	best.MaxThreads = threadCap
	return best
}

// residentThreadsMulti counts joint resident threads for co-resident
// kernels under a fixed configuration, using round-robin CTA admission.
func residentThreadsMulti(reqs []KernelRequirements, cfg MemConfig, threadCap int) int {
	limit := cfg.ThreadLimit()
	if threadCap > 0 && threadCap < limit {
		limit = threadCap
	}
	blocked := make([]bool, len(reqs))
	threads, rfUsed, shUsed := 0, 0, 0
	for i, req := range reqs {
		if req.ThreadsPerCTA <= 0 {
			blocked[i] = true
		}
	}
	for progress := true; progress; {
		progress = false
		for i, req := range reqs {
			if blocked[i] {
				continue
			}
			rfPerCTA := req.BytesPerThread() * req.ThreadsPerCTA
			if threads+req.ThreadsPerCTA > limit ||
				rfUsed+rfPerCTA > cfg.RFBytes ||
				shUsed+req.SharedBytesPerCTA > cfg.SharedBytes {
				blocked[i] = true
				continue
			}
			threads += req.ThreadsPerCTA
			rfUsed += rfPerCTA
			shUsed += req.SharedBytesPerCTA
			progress = true
		}
	}
	return threads
}
