// Package config describes the SM local-memory organizations evaluated in
// the paper and implements the Section 4.5 allocation algorithm that
// partitions a unified memory among register file, shared memory, and cache
// on a per-kernel basis.
package config

import (
	"errors"
	"fmt"
)

// ErrDoesNotFit marks allocation failures in which a kernel cannot fit
// even one CTA in the available capacity. Allocate wraps it into its
// errors, and core.FitError matches it, so errors.Is(err, ErrDoesNotFit)
// is the single infeasibility test across the stack.
var ErrDoesNotFit = errors.New("kernel does not fit the available capacity")

// Machine constants shared by all designs (Table 2 of the paper).
const (
	// NumBanks is the number of local-memory banks per SM. Both the
	// partitioned and the unified design expose 32 banks to keep
	// bandwidth constant.
	NumBanks = 32
	// NumClusters is the number of 4-wide SIMT lane clusters per SM.
	NumClusters = 8
	// BanksPerCluster is the number of MRF (or unified) banks per cluster.
	BanksPerCluster = NumBanks / NumClusters
	// MaxThreadsPerSM is the architectural thread residency limit.
	MaxThreadsPerSM = 1024
	// MaxWarpsPerSM is the warp residency limit.
	MaxWarpsPerSM = MaxThreadsPerSM / 32
	// ActiveWarps is the active-set size of the two-level warp scheduler.
	ActiveWarps = 8
	// CacheLineBytes is the primary data cache line size.
	CacheLineBytes = 128
	// CacheWays is the cache associativity.
	CacheWays = 4
	// UnifiedBankWidth is the width of one unified bank in bytes.
	UnifiedBankWidth = 16
	// PartitionedShmemBankWidth is the width of one baseline shared
	// memory or cache bank in bytes.
	PartitionedShmemBankWidth = 4

	// BaselineRFBytes is the baseline partitioned register file capacity.
	BaselineRFBytes = 256 << 10
	// BaselineSharedBytes is the baseline shared memory capacity.
	BaselineSharedBytes = 64 << 10
	// BaselineCacheBytes is the baseline cache capacity.
	BaselineCacheBytes = 64 << 10
	// BaselineTotalBytes is the total baseline local storage (384 KB).
	BaselineTotalBytes = BaselineRFBytes + BaselineSharedBytes + BaselineCacheBytes
)

// Design enumerates the three local-memory organizations compared in the
// paper.
type Design uint8

const (
	// Partitioned is the baseline: dedicated 16-byte MRF banks plus
	// dedicated 4-byte shared-memory and cache banks with fixed capacity.
	Partitioned Design = iota
	// Unified merges register file, shared memory, and cache into 32
	// uniform 16-byte banks whose capacity split is set per kernel.
	Unified
	// FermiLike keeps a fixed register file but allows the remaining
	// storage to be split between shared memory and cache in two preset
	// ratios (the Fermi 16/48 and 48/16 choice, scaled to capacity).
	FermiLike
)

// String names the design.
func (d Design) String() string {
	switch d {
	case Partitioned:
		return "partitioned"
	case Unified:
		return "unified"
	case FermiLike:
		return "fermi-like"
	}
	return fmt.Sprintf("Design(%d)", uint8(d))
}

// MemConfig is a fully resolved SM local-memory configuration: the design
// style plus the concrete capacity assigned to each function for the kernel
// about to run.
type MemConfig struct {
	// Design selects the bank organization and conflict model.
	Design Design
	// RFBytes is the register file capacity in bytes.
	RFBytes int
	// SharedBytes is the shared-memory capacity in bytes.
	SharedBytes int
	// CacheBytes is the primary data cache capacity in bytes.
	CacheBytes int
	// MaxThreads caps resident threads (used by the thread-count sweeps
	// in Figures 2-4; 0 means the architectural limit).
	MaxThreads int
}

// TotalBytes returns the aggregate local storage of the configuration.
func (m MemConfig) TotalBytes() int { return m.RFBytes + m.SharedBytes + m.CacheBytes }

// ThreadLimit returns the effective resident-thread cap.
func (m MemConfig) ThreadLimit() int {
	if m.MaxThreads <= 0 || m.MaxThreads > MaxThreadsPerSM {
		return MaxThreadsPerSM
	}
	return m.MaxThreads
}

// BankBytes returns the capacity of one bank for the structure sizes of
// this configuration: (rf, shared, cache) bank sizes for the partitioned
// design, or the single unified bank size repeated for the unified design.
func (m MemConfig) BankBytes() (rf, shared, cache int) {
	switch m.Design {
	case Unified:
		u := m.TotalBytes() / NumBanks
		return u, u, u
	default:
		return m.RFBytes / NumBanks, m.SharedBytes / NumBanks, m.CacheBytes / NumBanks
	}
}

// String renders the configuration compactly, e.g. "unified rf=228K shm=67K $=89K".
func (m MemConfig) String() string {
	return fmt.Sprintf("%s rf=%dK shm=%dK $=%dK", m.Design,
		m.RFBytes>>10, m.SharedBytes>>10, m.CacheBytes>>10)
}

// Validate checks structural invariants of the configuration.
func (m MemConfig) Validate() error {
	if m.RFBytes < 0 || m.SharedBytes < 0 || m.CacheBytes < 0 {
		return errors.New("config: negative capacity")
	}
	if m.TotalBytes() == 0 {
		return errors.New("config: zero total capacity")
	}
	if m.Design == Unified && m.TotalBytes()%NumBanks != 0 {
		return fmt.Errorf("config: unified capacity %d not divisible by %d banks",
			m.TotalBytes(), NumBanks)
	}
	if m.CacheBytes > 0 && m.CacheBytes%(CacheLineBytes*CacheWays) != 0 {
		return fmt.Errorf("config: cache capacity %d not divisible by way*line", m.CacheBytes)
	}
	return nil
}

// Baseline returns the baseline partitioned 256/64/64 KB configuration.
func Baseline() MemConfig {
	return MemConfig{
		Design:      Partitioned,
		RFBytes:     BaselineRFBytes,
		SharedBytes: BaselineSharedBytes,
		CacheBytes:  BaselineCacheBytes,
	}
}

// KernelRequirements captures what the programming system knows about a
// kernel when the Section 4.5 allocation runs.
type KernelRequirements struct {
	// RegsPerThread is the compiler-computed register count that avoids
	// spills (Table 1, column 2).
	RegsPerThread int
	// SharedBytesPerCTA is the programmer-declared shared memory per CTA.
	SharedBytesPerCTA int
	// ThreadsPerCTA is the CTA size.
	ThreadsPerCTA int
}

// BytesPerThread returns the per-thread register file footprint (4-byte
// registers).
func (k KernelRequirements) BytesPerThread() int { return k.RegsPerThread * 4 }

// SharedBytesPerThread returns the per-thread shared-memory footprint.
func (k KernelRequirements) SharedBytesPerThread() float64 {
	if k.ThreadsPerCTA == 0 {
		return 0
	}
	return float64(k.SharedBytesPerCTA) / float64(k.ThreadsPerCTA)
}

// Allocate implements the Section 4.5 automatic partitioning for a unified
// memory of totalBytes:
//
//  1. the compiler supplies registers per thread to avoid spills,
//  2. the programmer supplies shared memory per CTA,
//  3. the scheduler maximizes resident threads (CTA granular) under the
//     capacity, and
//  4. all remaining storage becomes primary data cache.
//
// threadCap, if non-zero, limits resident threads below the architectural
// maximum (used for autotuned thread counts).
func Allocate(req KernelRequirements, totalBytes, threadCap int) (MemConfig, error) {
	if req.ThreadsPerCTA <= 0 {
		return MemConfig{}, errors.New("config: ThreadsPerCTA must be positive")
	}
	if req.ThreadsPerCTA%32 != 0 {
		return MemConfig{}, fmt.Errorf("config: ThreadsPerCTA %d not a multiple of the warp size", req.ThreadsPerCTA)
	}
	limit := MaxThreadsPerSM
	if threadCap > 0 && threadCap < limit {
		limit = threadCap
	}
	perCTABytes := req.BytesPerThread()*req.ThreadsPerCTA + req.SharedBytesPerCTA
	if perCTABytes > totalBytes {
		return MemConfig{}, fmt.Errorf("config: one CTA needs %d bytes, unified memory has %d: %w",
			perCTABytes, totalBytes, ErrDoesNotFit)
	}
	maxCTAs := limit / req.ThreadsPerCTA
	if maxCTAs < 1 {
		return MemConfig{}, fmt.Errorf("config: CTA size %d exceeds thread limit %d: %w",
			req.ThreadsPerCTA, limit, ErrDoesNotFit)
	}
	if byCapacity := totalBytes / perCTABytes; byCapacity < maxCTAs {
		maxCTAs = byCapacity
	}
	cfg := MemConfig{
		Design:      Unified,
		RFBytes:     maxCTAs * req.ThreadsPerCTA * req.BytesPerThread(),
		SharedBytes: maxCTAs * req.SharedBytesPerCTA,
		MaxThreads:  maxCTAs * req.ThreadsPerCTA,
	}
	cfg.CacheBytes = totalBytes - cfg.RFBytes - cfg.SharedBytes
	// Round the cache down to a whole number of sets so the tag array is
	// well formed; the remainder is left unused (sub-set slack is below
	// one bank's granularity and does not affect the model).
	cfg.CacheBytes -= cfg.CacheBytes % (CacheLineBytes * CacheWays)
	return cfg, nil
}

// FermiSplits returns the two shared/cache splits offered by the Fermi-like
// limited design for a given non-register capacity: (3/4, 1/4) and
// (1/4, 3/4), mirroring Fermi's 48/16 KB choice scaled to capacity.
func FermiSplits(nonRFBytes int) [2]MemConfig {
	large := nonRFBytes * 3 / 4
	small := nonRFBytes - large
	return [2]MemConfig{
		{Design: FermiLike, RFBytes: BaselineRFBytes, SharedBytes: large, CacheBytes: small},
		{Design: FermiLike, RFBytes: BaselineRFBytes, SharedBytes: small, CacheBytes: large},
	}
}

// ChooseFermi picks the better of the two Fermi-like splits for a kernel:
// the split whose shared memory fits the kernel's footprint at the highest
// thread count, breaking ties toward the larger cache.
func ChooseFermi(req KernelRequirements, nonRFBytes, threadCap int) MemConfig {
	splits := FermiSplits(nonRFBytes)
	best := splits[1] // prefer large cache when shared memory is no constraint
	if req.SharedBytesPerCTA > 0 {
		t0 := residentThreads(req, splits[0], threadCap)
		t1 := residentThreads(req, splits[1], threadCap)
		if t0 > t1 {
			best = splits[0]
		}
	}
	best.MaxThreads = threadCap
	return best
}

// residentThreads computes CTA-granular thread residency for a kernel under
// a configuration (shared by ChooseFermi and internal/occupancy; the full
// treatment with diagnostics lives in internal/occupancy).
func residentThreads(req KernelRequirements, cfg MemConfig, threadCap int) int {
	limit := cfg.ThreadLimit()
	if threadCap > 0 && threadCap < limit {
		limit = threadCap
	}
	ctas := limit / req.ThreadsPerCTA
	if req.SharedBytesPerCTA > 0 {
		if byShmem := cfg.SharedBytes / req.SharedBytesPerCTA; byShmem < ctas {
			ctas = byShmem
		}
	}
	if rfPerCTA := req.BytesPerThread() * req.ThreadsPerCTA; rfPerCTA > 0 {
		if byRF := cfg.RFBytes / rfPerCTA; byRF < ctas {
			ctas = byRF
		}
	}
	return ctas * req.ThreadsPerCTA
}
