package config_test

import (
	"fmt"

	"repro/internal/config"
)

// ExampleAllocate shows the Section 4.5 algorithm dividing a 384 KB
// unified memory for a dgemm-like kernel: registers and shared memory are
// sized for the maximum resident threads, and the remainder becomes cache.
func ExampleAllocate() {
	req := config.KernelRequirements{
		RegsPerThread:     57,    // compiler: registers to avoid spills
		SharedBytesPerCTA: 17024, // programmer: scratchpad per CTA
		ThreadsPerCTA:     256,
	}
	cfg, err := config.Allocate(req, config.BaselineTotalBytes, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(cfg)
	fmt.Println("threads:", cfg.MaxThreads)
	// Output:
	// unified rf=228K shm=66K $=89K
	// threads: 1024
}

// ExampleChooseFermi shows the limited-flexibility design picking between
// its two preset shared/cache splits.
func ExampleChooseFermi() {
	needsShared := config.KernelRequirements{RegsPerThread: 16, ThreadsPerCTA: 256, SharedBytesPerCTA: 24 << 10}
	needsCache := config.KernelRequirements{RegsPerThread: 16, ThreadsPerCTA: 256}
	fmt.Println(config.ChooseFermi(needsShared, 128<<10, 0))
	fmt.Println(config.ChooseFermi(needsCache, 128<<10, 0))
	// Output:
	// fermi-like rf=256K shm=96K $=32K
	// fermi-like rf=256K shm=32K $=96K
}
