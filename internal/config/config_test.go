package config

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBaselineGeometry(t *testing.T) {
	b := Baseline()
	if b.Design != Partitioned {
		t.Errorf("Design = %v", b.Design)
	}
	if b.TotalBytes() != 384<<10 {
		t.Errorf("TotalBytes() = %d, want 384K", b.TotalBytes())
	}
	if err := b.Validate(); err != nil {
		t.Errorf("Validate() = %v", err)
	}
	rf, sh, ch := b.BankBytes()
	if rf != 8<<10 || sh != 2<<10 || ch != 2<<10 {
		t.Errorf("BankBytes() = %d/%d/%d, want 8K/2K/2K", rf, sh, ch)
	}
}

func TestUnifiedBankBytes(t *testing.T) {
	m := MemConfig{Design: Unified, RFBytes: 228 << 10, SharedBytes: 64 << 10, CacheBytes: 92 << 10}
	rf, sh, ch := m.BankBytes()
	want := (384 << 10) / 32 // 12 KB
	if rf != want || sh != want || ch != want {
		t.Errorf("BankBytes() = %d/%d/%d, want %d each", rf, sh, ch, want)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []MemConfig{
		{Design: Partitioned, RFBytes: -1},
		{Design: Partitioned},
		{Design: Unified, RFBytes: 100}, // not divisible by 32 banks
		{Design: Partitioned, RFBytes: 1024, CacheBytes: 100},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate() accepted %+v", i, m)
		}
	}
}

func TestThreadLimit(t *testing.T) {
	m := MemConfig{RFBytes: 1024}
	if m.ThreadLimit() != MaxThreadsPerSM {
		t.Errorf("default ThreadLimit() = %d", m.ThreadLimit())
	}
	m.MaxThreads = 512
	if m.ThreadLimit() != 512 {
		t.Errorf("ThreadLimit() = %d, want 512", m.ThreadLimit())
	}
	m.MaxThreads = 4096
	if m.ThreadLimit() != MaxThreadsPerSM {
		t.Errorf("oversized cap should clamp, got %d", m.ThreadLimit())
	}
}

func TestDesignString(t *testing.T) {
	if Partitioned.String() != "partitioned" || Unified.String() != "unified" || FermiLike.String() != "fermi-like" {
		t.Error("design names wrong")
	}
	if !strings.Contains(Baseline().String(), "rf=256K") {
		t.Errorf("config String() = %q", Baseline().String())
	}
}

// TestAllocateDGEMMLike reproduces the paper's dgemm split: 57 regs/thread
// and 66.5 KB of shared memory at full occupancy leave a larger cache than
// the baseline.
func TestAllocateDGEMMLike(t *testing.T) {
	req := KernelRequirements{
		RegsPerThread:     57,
		ThreadsPerCTA:     256,
		SharedBytesPerCTA: 66*1024 + 512, // 66.5 KB for 4 CTAs -> 16.625 KB per CTA
	}
	req.SharedBytesPerCTA = req.SharedBytesPerCTA / 4
	cfg, err := Allocate(req, BaselineTotalBytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Design != Unified {
		t.Errorf("Design = %v", cfg.Design)
	}
	if cfg.MaxThreads != 1024 {
		t.Errorf("MaxThreads = %d, want 1024", cfg.MaxThreads)
	}
	if cfg.RFBytes != 57*4*1024 {
		t.Errorf("RFBytes = %d, want %d", cfg.RFBytes, 57*4*1024)
	}
	if cfg.CacheBytes <= 0 {
		t.Errorf("CacheBytes = %d, want positive remainder", cfg.CacheBytes)
	}
	if total := cfg.RFBytes + cfg.SharedBytes + cfg.CacheBytes; total > BaselineTotalBytes {
		t.Errorf("allocation exceeds capacity: %d > %d", total, BaselineTotalBytes)
	}
}

// TestAllocateNeedleLike checks the paper's headline case: a kernel with a
// huge shared-memory footprint gets most of the unified store as shared
// memory, which a partitioned design cannot offer.
func TestAllocateNeedleLike(t *testing.T) {
	req := KernelRequirements{
		RegsPerThread:     18,
		ThreadsPerCTA:     64,
		SharedBytesPerCTA: 16 * 1024, // ~264 B/thread
	}
	cfg, err := Allocate(req, BaselineTotalBytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SharedBytes <= BaselineSharedBytes {
		t.Errorf("SharedBytes = %d, want far above the 64K baseline", cfg.SharedBytes)
	}
	if cfg.MaxThreads <= 256 {
		t.Errorf("MaxThreads = %d, want more threads than the partitioned design admits", cfg.MaxThreads)
	}
}

func TestAllocateRejectsImpossible(t *testing.T) {
	req := KernelRequirements{RegsPerThread: 64, ThreadsPerCTA: 1024, SharedBytesPerCTA: 600 << 10}
	if _, err := Allocate(req, BaselineTotalBytes, 0); err == nil {
		t.Error("Allocate() accepted a CTA larger than the unified memory")
	}
	if _, err := Allocate(KernelRequirements{RegsPerThread: 8, ThreadsPerCTA: 0}, BaselineTotalBytes, 0); err == nil {
		t.Error("Allocate() accepted zero ThreadsPerCTA")
	}
	if _, err := Allocate(KernelRequirements{RegsPerThread: 8, ThreadsPerCTA: 33}, BaselineTotalBytes, 0); err == nil {
		t.Error("Allocate() accepted non-warp-multiple CTA")
	}
}

func TestAllocateRespectsThreadCap(t *testing.T) {
	req := KernelRequirements{RegsPerThread: 9, ThreadsPerCTA: 256}
	cfg, err := Allocate(req, BaselineTotalBytes, 512)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxThreads != 512 {
		t.Errorf("MaxThreads = %d, want 512", cfg.MaxThreads)
	}
}

// TestAllocateNeverOverflows property-checks the §4.5 algorithm: for any
// feasible kernel the chosen split fits the capacity and admits at least
// one CTA.
func TestAllocateNeverOverflows(t *testing.T) {
	f := func(regs, ctaWarps, shmKB uint8) bool {
		req := KernelRequirements{
			RegsPerThread:     1 + int(regs)%64,
			ThreadsPerCTA:     32 * (1 + int(ctaWarps)%8),
			SharedBytesPerCTA: int(shmKB) % 48 << 10,
		}
		cfg, err := Allocate(req, BaselineTotalBytes, 0)
		if err != nil {
			// Infeasible combinations are allowed to error.
			return true
		}
		if cfg.TotalBytes() > BaselineTotalBytes {
			return false
		}
		return cfg.MaxThreads >= req.ThreadsPerCTA
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFermiSplits(t *testing.T) {
	splits := FermiSplits(128 << 10)
	if splits[0].SharedBytes != 96<<10 || splits[0].CacheBytes != 32<<10 {
		t.Errorf("split 0 = %v", splits[0])
	}
	if splits[1].SharedBytes != 32<<10 || splits[1].CacheBytes != 96<<10 {
		t.Errorf("split 1 = %v", splits[1])
	}
	for _, s := range splits {
		if s.Design != FermiLike || s.RFBytes != BaselineRFBytes {
			t.Errorf("split has wrong design/RF: %v", s)
		}
	}
}

func TestChooseFermiPrefersCacheWhenNoShared(t *testing.T) {
	req := KernelRequirements{RegsPerThread: 9, ThreadsPerCTA: 256}
	cfg := ChooseFermi(req, 128<<10, 0)
	if cfg.CacheBytes != 96<<10 {
		t.Errorf("no-shared kernel should get the large cache, got %v", cfg)
	}
}

func TestChooseFermiPrefersSharedWhenLimited(t *testing.T) {
	// 24 KB/CTA of shared memory: the 32 KB split fits 1 CTA, the 96 KB
	// split fits 4 CTAs -> choose large shared memory.
	req := KernelRequirements{RegsPerThread: 16, ThreadsPerCTA: 256, SharedBytesPerCTA: 24 << 10}
	cfg := ChooseFermi(req, 128<<10, 0)
	if cfg.SharedBytes != 96<<10 {
		t.Errorf("shared-hungry kernel should get the large shared memory, got %v", cfg)
	}
}

func TestKernelRequirementsHelpers(t *testing.T) {
	req := KernelRequirements{RegsPerThread: 10, SharedBytesPerCTA: 2048, ThreadsPerCTA: 256}
	if req.BytesPerThread() != 40 {
		t.Errorf("BytesPerThread() = %d", req.BytesPerThread())
	}
	if got := req.SharedBytesPerThread(); got != 8 {
		t.Errorf("SharedBytesPerThread() = %v", got)
	}
	var zero KernelRequirements
	if zero.SharedBytesPerThread() != 0 {
		t.Error("zero CTA size should report 0 shared bytes per thread")
	}
}
