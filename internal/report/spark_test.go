package report

import (
	"math"
	"reflect"
	"testing"
)

func TestSparkline(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want string
	}{
		{"empty", nil, ""},
		{"scaled from zero", []float64{0, 4, 8}, "▁▄█"},
		{"all zero", []float64{0, 0, 0}, "▁▁▁"},
		{"single max", []float64{5}, "█"},
		{"nan and negative blank", []float64{1, math.NaN(), -1, 1}, "█  █"},
	}
	for _, c := range cases {
		if got := Sparkline(c.in); got != c.want {
			t.Errorf("%s: Sparkline(%v) = %q, want %q", c.name, c.in, got, c.want)
		}
	}
}

func TestDownsample(t *testing.T) {
	in := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	if got := Downsample(in, 4); !reflect.DeepEqual(got, []float64{1, 2, 3, 4}) {
		t.Errorf("Downsample to 4 = %v", got)
	}
	// Short series pass through unchanged (same backing array).
	if got := Downsample(in, 100); &got[0] != &in[0] {
		t.Error("Downsample should return short input unchanged")
	}
	if got := Downsample(in, 3); len(got) != 3 {
		t.Errorf("Downsample to 3 returned %d points", len(got))
	}
	// Uneven split still covers every input point exactly once.
	in7 := []float64{1, 2, 3, 4, 5, 6, 7}
	got := Downsample(in7, 3)
	sum := 0.0
	for i, v := range got {
		lo := i * len(in7) / 3
		hi := (i + 1) * len(in7) / 3
		sum += v * float64(hi-lo)
	}
	if sum != 28 {
		t.Errorf("bucket averages do not cover the input: weighted sum %v, want 28", sum)
	}
}
