package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("Title", "name", "value")
	tab.AddRow("short", "1")
	tab.AddRow("a-much-longer-name", "22")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header = %q", lines[1])
	}
	// The value column must start at the same offset in every row.
	idx := strings.Index(lines[3], "1")
	if strings.Index(lines[4], "22") != idx {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestTableTruncatesExtraCells(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("1", "2", "3")
	if strings.Contains(tab.String(), "3") {
		t.Error("extra cell should be dropped")
	}
}

func TestAddRowfFormatsFloats(t *testing.T) {
	tab := NewTable("", "x", "y")
	tab.AddRowf(1.23456, 7)
	if !strings.Contains(tab.String(), "1.23") {
		t.Errorf("float not formatted: %s", tab.String())
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := NewTable("ignored", "a", "b")
	tab.AddRow(`with,comma`, `with"quote`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"with,comma"`) || !strings.Contains(csv, `"with""quote"`) {
		t.Errorf("CSV escaping wrong: %s", csv)
	}
	if strings.Contains(csv, "ignored") {
		t.Error("CSV should omit the title")
	}
}

func TestFormatters(t *testing.T) {
	if Ratio(1.234) != "1.23" {
		t.Errorf("Ratio = %q", Ratio(1.234))
	}
	if Ratio(0) != "-" {
		t.Errorf("Ratio(0) = %q", Ratio(0))
	}
	nan := 0.0
	nan /= nan
	if Ratio(nan) != "-" {
		t.Errorf("Ratio(NaN) = %q", Ratio(nan))
	}
	if Percent(0.123) != "12.3%" {
		t.Errorf("Percent = %q", Percent(0.123))
	}
	if KB(64<<10) != "64K" {
		t.Errorf("KB = %q", KB(64<<10))
	}
}

func TestChartRendersSeries(t *testing.T) {
	c := NewChart("title", "x", "y")
	c.AddSeries("a", []float64{0, 1, 2}, []float64{0, 1, 4})
	c.AddSeries("b", []float64{0, 1, 2}, []float64{4, 1, 0})
	out := c.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Errorf("chart missing parts:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("markers not plotted:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	c := NewChart("t", "x", "y")
	if !strings.Contains(c.String(), "no data") {
		t.Error("empty chart should say so")
	}
	c.AddSeries("nan", []float64{math.NaN()}, []float64{1})
	if !strings.Contains(c.String(), "no data") {
		t.Error("NaN-only series should be dropped")
	}
}

func TestChartDegenerateExtent(t *testing.T) {
	c := NewChart("t", "x", "y")
	c.AddSeries("point", []float64{5}, []float64{5})
	out := c.String()
	if strings.Contains(out, "no data") {
		t.Errorf("single point should plot:\n%s", out)
	}
}

func TestChartSetSize(t *testing.T) {
	c := NewChart("t", "x", "y")
	c.SetSize(20, 5)
	c.AddSeries("a", []float64{0, 10}, []float64{0, 1})
	lines := strings.Split(c.String(), "\n")
	// title + 5 rows + axis + xlabel + legend
	if len(lines) < 8 {
		t.Errorf("unexpected layout:\n%s", c.String())
	}
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("Title ignored", "name", "value")
	tb.AddRow("plain", "1.00")
	tb.AddRow("pipe|cell", "2.00")
	got := tb.Markdown()
	want := "| name | value |\n|---|---|\n| plain | 1.00 |\n| pipe\\|cell | 2.00 |\n"
	if got != want {
		t.Errorf("Markdown:\n%q\nwant:\n%q", got, want)
	}
	if tb.Title() != "Title ignored" {
		t.Errorf("Title() = %q", tb.Title())
	}
}
