package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("Title", "name", "value")
	tab.AddRow("short", "1")
	tab.AddRow("a-much-longer-name", "22")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header = %q", lines[1])
	}
	// The value column must start at the same offset in every row.
	idx := strings.Index(lines[3], "1")
	if strings.Index(lines[4], "22") != idx {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestTableTruncatesExtraCells(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("1", "2", "3")
	if strings.Contains(tab.String(), "3") {
		t.Error("extra cell should be dropped")
	}
}

func TestAddRowfFormatsFloats(t *testing.T) {
	tab := NewTable("", "x", "y")
	tab.AddRowf(1.23456, 7)
	if !strings.Contains(tab.String(), "1.23") {
		t.Errorf("float not formatted: %s", tab.String())
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := NewTable("ignored", "a", "b")
	tab.AddRow(`with,comma`, `with"quote`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"with,comma"`) || !strings.Contains(csv, `"with""quote"`) {
		t.Errorf("CSV escaping wrong: %s", csv)
	}
	if strings.Contains(csv, "ignored") {
		t.Error("CSV should omit the title")
	}
}

func TestFormatters(t *testing.T) {
	if Ratio(1.234) != "1.23" {
		t.Errorf("Ratio = %q", Ratio(1.234))
	}
	if Ratio(0) != "-" {
		t.Errorf("Ratio(0) = %q", Ratio(0))
	}
	nan := 0.0
	nan /= nan
	if Ratio(nan) != "-" {
		t.Errorf("Ratio(NaN) = %q", Ratio(nan))
	}
	if Percent(0.123) != "12.3%" {
		t.Errorf("Percent = %q", Percent(0.123))
	}
	if KB(64<<10) != "64K" {
		t.Errorf("KB = %q", KB(64<<10))
	}
}

func TestChartRendersSeries(t *testing.T) {
	c := NewChart("title", "x", "y")
	c.AddSeries("a", []float64{0, 1, 2}, []float64{0, 1, 4})
	c.AddSeries("b", []float64{0, 1, 2}, []float64{4, 1, 0})
	out := c.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Errorf("chart missing parts:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("markers not plotted:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	c := NewChart("t", "x", "y")
	if !strings.Contains(c.String(), "no data") {
		t.Error("empty chart should say so")
	}
	c.AddSeries("nan", []float64{math.NaN()}, []float64{1})
	if !strings.Contains(c.String(), "no data") {
		t.Error("NaN-only series should be dropped")
	}
}

func TestChartDegenerateExtent(t *testing.T) {
	c := NewChart("t", "x", "y")
	c.AddSeries("point", []float64{5}, []float64{5})
	out := c.String()
	if strings.Contains(out, "no data") {
		t.Errorf("single point should plot:\n%s", out)
	}
}

func TestChartSetSize(t *testing.T) {
	c := NewChart("t", "x", "y")
	c.SetSize(20, 5)
	c.AddSeries("a", []float64{0, 10}, []float64{0, 1})
	lines := strings.Split(c.String(), "\n")
	// title + 5 rows + axis + xlabel + legend
	if len(lines) < 8 {
		t.Errorf("unexpected layout:\n%s", c.String())
	}
}

func TestEmptyTables(t *testing.T) {
	// No columns at all: header and separator degenerate to blank lines,
	// but rendering must not panic (the separator is total-2 wide).
	empty := NewTable("only a title")
	if got := empty.String(); got != "only a title\n\n\n" {
		t.Errorf("zero-column table = %q", got)
	}
	if got := NewTable("").String(); got != "\n\n" {
		t.Errorf("fully empty table = %q", got)
	}
	// Columns but no rows: header and rule only.
	headerOnly := NewTable("t", "a", "b")
	if got := headerOnly.String(); got != "t\na  b\n----\n" {
		t.Errorf("rowless table = %q", got)
	}
	if got := headerOnly.Markdown(); got != "| a | b |\n|---|---|\n" {
		t.Errorf("rowless markdown = %q", got)
	}
	if got := headerOnly.CSV(); got != "a,b\n" {
		t.Errorf("rowless CSV = %q", got)
	}
}

func TestRaggedRows(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRow("1")           // short: padded to width
	tab.AddRow()              // empty: all cells blank
	tab.AddRow("x", "y", "z") // exact
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%q", len(lines), out)
	}
	width := len(lines[0])
	for i, l := range lines {
		if i == 1 {
			continue // the rule line is total-2 wide by design
		}
		if len(l) != width {
			t.Errorf("line %d width %d != %d:\n%q", i, len(l), width, out)
		}
	}
	md := tab.Markdown()
	for _, line := range strings.Split(strings.TrimRight(md, "\n"), "\n") {
		if strings.Count(line, "|")-strings.Count(line, `\|`) != 4 {
			t.Errorf("markdown row has wrong column count: %q", line)
		}
	}
}

func TestMarkdownEscapesCells(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("pipe|cell", "multi\nline")
	tab.AddRow("crlf\r\ncell", "cr\rcell")
	got := tab.Markdown()
	want := "| a | b |\n|---|---|\n" +
		"| pipe\\|cell | multi<br>line |\n" +
		"| crlf<br>cell | cr<br>cell |\n"
	if got != want {
		t.Errorf("Markdown:\n%q\nwant:\n%q", got, want)
	}
}

func TestDelta(t *testing.T) {
	cases := []struct {
		base, v float64
		want    string
	}{
		{100, 110, "+10.0%"},
		{100, 90, "-10.0%"},
		{100, 100, "+0.0%"},
		{0, 5, "-"},
		{math.NaN(), 5, "-"},
		{5, math.NaN(), "-"},
	}
	for _, c := range cases {
		if got := Delta(c.base, c.v); got != c.want {
			t.Errorf("Delta(%v, %v) = %q, want %q", c.base, c.v, got, c.want)
		}
	}
}

func TestRunRowFormatting(t *testing.T) {
	got := RunRow("64K", 512, 123456, 3.14159, 98765, 0.00123)
	want := []string{"64K", "512", "123456", "3.142", "98765", "1.230e-03"}
	if len(got) != len(want) {
		t.Fatalf("RunRow = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RunRow[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	inf := InfeasibleRunRow("8K")
	if inf[0] != "8K" || inf[2] != "infeasible" {
		t.Errorf("InfeasibleRunRow = %v", inf)
	}
	tab := NewRunTable("t", "capacity")
	tab.AddRow(got...)
	tab.AddRow(inf...)
	if !strings.Contains(tab.String(), "energy (J)") {
		t.Errorf("run table header missing: %s", tab.String())
	}
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("Title ignored", "name", "value")
	tb.AddRow("plain", "1.00")
	tb.AddRow("pipe|cell", "2.00")
	got := tb.Markdown()
	want := "| name | value |\n|---|---|\n| plain | 1.00 |\n| pipe\\|cell | 2.00 |\n"
	if got != want {
		t.Errorf("Markdown:\n%q\nwant:\n%q", got, want)
	}
	if tb.Title() != "Title ignored" {
		t.Errorf("Title() = %q", tb.Title())
	}
}
