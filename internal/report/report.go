// Package report renders experiment results as aligned text tables and
// CSV, for the cmd tools and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf formats each cell with fmt.Sprint.
func (t *Table) AddRowf(cells ...interface{}) {
	out := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			out = append(out, fmt.Sprintf("%.2f", v))
		default:
			out = append(out, fmt.Sprint(c))
		}
	}
	t.AddRow(out...)
}

// widths computes per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.header))
	for i, h := range t.header {
		w[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	widths := t.widths()
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if total >= 2 {
		b.WriteString(strings.Repeat("-", total-2))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return ""
	}
	return b.String()
}

// CSV renders the table as comma-separated values (title omitted).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table. The
// title is omitted — callers place their own headings — so the output
// can be pasted into EXPERIMENTS.md-style documents verbatim.
func (t *Table) Markdown() string {
	var b strings.Builder
	esc := func(c string) string {
		c = strings.ReplaceAll(c, "|", `\|`)
		// A literal newline would terminate the markdown row; <br> keeps
		// multi-line cells inside their table cell.
		c = strings.ReplaceAll(c, "\r\n", "\n")
		c = strings.ReplaceAll(c, "\r", "\n")
		return strings.ReplaceAll(c, "\n", "<br>")
	}
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(esc(c))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	b.WriteByte('|')
	for range t.header {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// Ratio formats a ratio with two decimals, or "-" for non-finite input.
func Ratio(v float64) string {
	if v != v || v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// Percent formats a fraction as a percentage with one decimal.
func Percent(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}

// KB formats a byte count in binary kilobytes.
func KB(bytes int) string {
	return fmt.Sprintf("%dK", bytes>>10)
}

// Delta formats v's relative change from base as a signed percentage
// with one decimal, or "-" when the baseline value is unusable.
func Delta(base, v float64) string {
	if base == 0 || base != base || v != v {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*(v-base)/base)
}

// NewRunTable returns the canonical per-run metric table shared by
// cmd/sweep and cmd/compare: one row per run, labeled by firstCol.
func NewRunTable(title, firstCol string) *Table {
	return NewTable(title, firstCol, "threads", "cycles", "IPC", "dram bytes", "energy (J)")
}

// RunRow formats one run's cells for NewRunTable. The formatting is the
// contract that keeps local and service-rendered tables byte-identical:
// callers on both sides feed exact round-tripped scalars through the
// same verbs.
func RunRow(label string, threads int, cycles int64, ipc float64, dramBytes int64, energyJoules float64) []string {
	return []string{label, fmt.Sprint(threads), fmt.Sprint(cycles),
		fmt.Sprintf("%.3f", ipc), fmt.Sprint(dramBytes), fmt.Sprintf("%.3e", energyJoules)}
}

// InfeasibleRunRow is RunRow for a configuration the kernel cannot fit.
func InfeasibleRunRow(label string) []string {
	return []string{label, "-", "infeasible", "-", "-", "-"}
}
