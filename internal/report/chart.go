package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Chart renders one or more (x, y) series as an ASCII scatter/line chart,
// used by cmd/paper -chart to show the paper's figures as plots rather
// than tables.
type Chart struct {
	title  string
	xLabel string
	yLabel string
	series []chartSeries
	width  int
	height int
}

type chartSeries struct {
	name   string
	marker byte
	xs, ys []float64
}

// seriesMarkers are assigned to series in order.
var seriesMarkers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// NewChart creates a chart with the given title and axis labels.
func NewChart(title, xLabel, yLabel string) *Chart {
	return &Chart{title: title, xLabel: xLabel, yLabel: yLabel, width: 64, height: 16}
}

// SetSize overrides the plot area dimensions in characters.
func (c *Chart) SetSize(width, height int) {
	if width >= 16 {
		c.width = width
	}
	if height >= 4 {
		c.height = height
	}
}

// AddSeries appends a named series. xs and ys must have equal length;
// non-finite points are dropped.
func (c *Chart) AddSeries(name string, xs, ys []float64) {
	s := chartSeries{name: name, marker: seriesMarkers[len(c.series)%len(seriesMarkers)]}
	for i := range xs {
		if i >= len(ys) {
			break
		}
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			continue
		}
		s.xs = append(s.xs, xs[i])
		s.ys = append(s.ys, ys[i])
	}
	c.series = append(c.series, s)
}

// bounds returns the data extent across series, padded slightly.
func (c *Chart) bounds() (x0, x1, y0, y1 float64, ok bool) {
	x0, y0 = math.Inf(1), math.Inf(1)
	x1, y1 = math.Inf(-1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.xs {
			x0, x1 = math.Min(x0, s.xs[i]), math.Max(x1, s.xs[i])
			y0, y1 = math.Min(y0, s.ys[i]), math.Max(y1, s.ys[i])
		}
	}
	if x0 > x1 {
		return 0, 0, 0, 0, false
	}
	if x0 == x1 {
		x0, x1 = x0-1, x1+1
	}
	if y0 == y1 {
		y0, y1 = y0-1, y1+1
	}
	// Always show y=0 context for ratio plots that hover near 1.
	if y0 > 0 && y0 < 1.5 && y1 < 3 {
		y0 = 0
	}
	return x0, x1, y0, y1, true
}

// String renders the chart.
func (c *Chart) String() string {
	var b strings.Builder
	if c.title != "" {
		fmt.Fprintf(&b, "%s\n", c.title)
	}
	x0, x1, y0, y1, ok := c.bounds()
	if !ok {
		b.WriteString("(no data)\n")
		return b.String()
	}
	grid := make([][]byte, c.height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.width))
	}
	for _, s := range c.series {
		// Plot points sorted by x so overlapping series stay readable.
		idx := make([]int, len(s.xs))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return s.xs[idx[i]] < s.xs[idx[j]] })
		for _, i := range idx {
			col := int(math.Round((s.xs[i] - x0) / (x1 - x0) * float64(c.width-1)))
			row := c.height - 1 - int(math.Round((s.ys[i]-y0)/(y1-y0)*float64(c.height-1)))
			if col >= 0 && col < c.width && row >= 0 && row < c.height {
				grid[row][col] = s.marker
			}
		}
	}
	yTop := fmt.Sprintf("%.2f", y1)
	yBot := fmt.Sprintf("%.2f", y0)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r := range grid {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yTop)
		case c.height - 1:
			label = fmt.Sprintf("%*s", pad, yBot)
		case c.height / 2:
			label = fmt.Sprintf("%*s", pad, c.yLabel)
			if len(label) > pad {
				label = label[:pad]
			}
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", c.width))
	left := fmt.Sprintf("%.0f", x0)
	right := fmt.Sprintf("%.0f", x1)
	gap := c.width - len(left) - len(right)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s  (%s)\n", strings.Repeat(" ", pad), left,
		strings.Repeat(" ", gap), right, c.xLabel)
	for _, s := range c.series {
		fmt.Fprintf(&b, "%s    %c %s\n", strings.Repeat(" ", pad), s.marker, s.name)
	}
	return b.String()
}
