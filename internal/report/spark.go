package report

import "strings"

// sparkLevels are the eight block glyphs of a sparkline, lowest first.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a row of block glyphs, scaled linearly from
// zero to the maximum value (so bar heights compare magnitudes, not
// just shape). Negative and NaN values render as spaces; an all-zero
// series renders as the lowest bar.
func Sparkline(vals []float64) string {
	max := 0.0
	for _, v := range vals {
		if v == v && v > max {
			max = v
		}
	}
	var b strings.Builder
	b.Grow(3 * len(vals))
	for _, v := range vals {
		if v != v || v < 0 {
			b.WriteByte(' ')
			continue
		}
		lvl := 0
		if max > 0 {
			lvl = int(v / max * float64(len(sparkLevels)-1))
			if lvl >= len(sparkLevels) {
				lvl = len(sparkLevels) - 1
			}
		}
		b.WriteRune(sparkLevels[lvl])
	}
	return b.String()
}

// Downsample reduces vals to at most width points by averaging equal
// buckets, for sparklines of long series. It returns vals unchanged
// when they already fit.
func Downsample(vals []float64, width int) []float64 {
	if width <= 0 || len(vals) <= width {
		return vals
	}
	out := make([]float64, width)
	for i := range out {
		lo := i * len(vals) / width
		hi := (i + 1) * len(vals) / width
		if hi == lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range vals[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}
