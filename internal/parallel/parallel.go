// Package parallel is the experiment execution engine: it fans
// independent (kernel, configuration) simulations out across a bounded
// pool of worker goroutines while guaranteeing results identical to a
// serial loop.
//
// Every simulation the experiment drivers run is independent — the SM
// timing model, trace generation, and energy evaluation share no mutable
// state between runs (internal/core's Runner serializes its baseline
// cache) — so the only thing parallel execution could change is ordering.
// Map removes that freedom: results are collected by item index, and on
// failure the error of the lowest failing index is returned, exactly the
// error a serial loop would have stopped at. A worker count of 1 runs the
// loop inline on the calling goroutine, recovering the precise serial
// execution path.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker count used by Map and Do.
// Zero means "not set": fall back to GOMAXPROCS at call time.
var defaultWorkers atomic.Int64

// SetWorkers sets the process-wide worker count (the -j flag of cmd/paper
// and cmd/sweep). n < 1 restores the default of GOMAXPROCS.
func SetWorkers(n int) {
	if n < 1 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Workers returns the current worker count.
func Workers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs f(i) for every i in [0, n) across Workers() goroutines and
// returns the results in index order.
//
// Error semantics match a serial loop: the returned error is the one from
// the lowest failing index. Items are dispatched in index order, so when
// item e fails, every item below e has already been dispatched and is
// allowed to finish; items not yet dispatched when a failure is recorded
// are skipped (a serial loop would never have reached them). The reported
// error is therefore independent of the worker count and of goroutine
// scheduling.
//
// With one worker (or n <= 1) Map runs inline on the calling goroutine
// and stops at the first error — the exact serial path.
func Map[T any](n int, f func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			v, err := f(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			// The failure check precedes the claim: a claimed index always
			// runs. Claims are issued in index order, so every index below
			// a failing one has been claimed and will finish, making the
			// lowest recorded error the same one a serial loop stops at.
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := f(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach is Map for functions with no result value.
func ForEach(n int, f func(i int) error) error {
	_, err := Map(n, func(i int) (struct{}, error) {
		return struct{}{}, f(i)
	})
	return err
}

// Do runs the given functions concurrently (each is one Map item) and
// returns the error of the lowest-indexed function that failed.
func Do(fns ...func() error) error {
	return ForEach(len(fns), func(i int) error { return fns[i]() })
}
