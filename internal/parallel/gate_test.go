package parallel

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestGateAdmitsUpToCapacity asserts that workers slots are granted
// without blocking and the next Acquire beyond slots+queue fails fast.
func TestGateAdmitsUpToCapacity(t *testing.T) {
	g := NewGate(2, 0)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := g.InFlight(); got != 2 {
		t.Errorf("InFlight = %d, want 2", got)
	}
	if err := g.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire with zero queue: err = %v, want ErrQueueFull", err)
	}
	g.Release()
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	g.Release()
	g.Release()
	if got := g.InFlight(); got != 0 {
		t.Errorf("InFlight after releases = %d, want 0", got)
	}
}

// TestGateQueueBacklog asserts queued waiters are admitted as slots
// free, and that over-capacity arrivals are rejected while they wait.
func TestGateQueueBacklog(t *testing.T) {
	g := NewGate(1, 1)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- g.Acquire(ctx) }()
	// Wait for the goroutine to enter the queue.
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := g.Acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("acquire with full queue: err = %v, want ErrQueueFull", err)
	}
	g.Release()
	if err := <-waited; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	g.Release()
}

// TestGateContextCancelsWait asserts a queued waiter unblocks with the
// context's error, leaving the queue accounting balanced.
func TestGateContextCancelsWait(t *testing.T) {
	g := NewGate(1, 4)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waited := make(chan error, 1)
	go func() { waited <- g.Acquire(ctx) }()
	for g.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-waited; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: err = %v, want context.Canceled", err)
	}
	if got := g.Waiting(); got != 0 {
		t.Errorf("Waiting after cancel = %d, want 0", got)
	}
	g.Release()
}

// TestGateConcurrentHammer races many acquirers through a small gate
// under -race: every admitted holder must observe the concurrency bound.
func TestGateConcurrentHammer(t *testing.T) {
	const workers, queue, callers = 3, 2, 64
	g := NewGate(workers, queue)
	var (
		mu       sync.Mutex
		running  int
		maxSeen  int
		admitted int
	)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background()); err != nil {
				if !errors.Is(err, ErrQueueFull) {
					t.Errorf("acquire: %v", err)
				}
				return
			}
			mu.Lock()
			running++
			admitted++
			if running > maxSeen {
				maxSeen = running
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			running--
			mu.Unlock()
			g.Release()
		}()
	}
	wg.Wait()
	if maxSeen > workers {
		t.Errorf("observed %d concurrent holders, capacity %d", maxSeen, workers)
	}
	if admitted < workers {
		t.Errorf("admitted %d callers, want at least %d", admitted, workers)
	}
	if g.InFlight() != 0 || g.Waiting() != 0 {
		t.Errorf("gate not drained: inflight=%d waiting=%d", g.InFlight(), g.Waiting())
	}
}
