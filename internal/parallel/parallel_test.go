package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// withWorkers runs f with the process-wide worker count pinned to n.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	old := int(defaultWorkers.Load())
	SetWorkers(n)
	defer defaultWorkers.Store(int64(old))
	f()
}

func TestMapOrdersResults(t *testing.T) {
	for _, w := range []int{1, 2, 8, 32} {
		withWorkers(t, w, func() {
			out, err := Map(100, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatalf("j=%d: %v", w, err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("j=%d: out[%d] = %d, want %d", w, i, v, i*i)
				}
			}
		})
	}
}

func TestMapReportsLowestError(t *testing.T) {
	// Several items fail; every worker count must report the lowest index,
	// exactly as a serial loop would.
	failAt := map[int]bool{17: true, 3: true, 64: true}
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w, func() {
			for trial := 0; trial < 20; trial++ {
				_, err := Map(100, func(i int) (int, error) {
					if failAt[i] {
						return 0, fmt.Errorf("item %d", i)
					}
					return i, nil
				})
				if err == nil || err.Error() != "item 3" {
					t.Fatalf("j=%d: got error %v, want item 3", w, err)
				}
			}
		})
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, func(i int) (int, error) { return 0, errors.New("never called") })
	if err != nil || out != nil {
		t.Fatalf("Map(0) = %v, %v", out, err)
	}
}

func TestMapSerialStopsAtFirstError(t *testing.T) {
	withWorkers(t, 1, func() {
		var ran atomic.Int64
		_, err := Map(10, func(i int) (int, error) {
			ran.Add(1)
			if i == 4 {
				return 0, errors.New("stop")
			}
			return i, nil
		})
		if err == nil {
			t.Fatal("want error")
		}
		if ran.Load() != 5 {
			t.Fatalf("serial path ran %d items, want 5 (stop at first error)", ran.Load())
		}
	})
}

func TestMapUsesMultipleGoroutines(t *testing.T) {
	withWorkers(t, 4, func() {
		var peak, cur atomic.Int64
		started := make(chan struct{}, 8)
		release := make(chan struct{})
		go func() {
			// Hold the first arrivals until all four workers are inside f.
			for i := 0; i < 4; i++ {
				<-started
			}
			close(release)
		}()
		_, err := Map(8, func(i int) (int, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			started <- struct{}{}
			<-release
			cur.Add(-1)
			return i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if peak.Load() != 4 {
			t.Fatalf("peak concurrency %d, want 4", peak.Load())
		}
	})
}

func TestDoAndForEach(t *testing.T) {
	withWorkers(t, 4, func() {
		var a, b atomic.Bool
		err := Do(
			func() error { a.Store(true); return nil },
			func() error { b.Store(true); return nil },
		)
		if err != nil || !a.Load() || !b.Load() {
			t.Fatalf("Do: err=%v a=%v b=%v", err, a.Load(), b.Load())
		}
		if err := Do(func() error { return errors.New("x") }); err == nil {
			t.Fatal("Do should propagate errors")
		}
	})
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	withWorkers(t, 0, func() {
		if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
			t.Fatalf("Workers() = %d, want GOMAXPROCS %d", got, want)
		}
	})
	withWorkers(t, 7, func() {
		if Workers() != 7 {
			t.Fatalf("Workers() = %d, want 7", Workers())
		}
	})
}
