package parallel

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull is returned by Gate.Acquire when the bounded wait queue
// is already at capacity; callers translate it into backpressure (the
// simulation service answers 429 with Retry-After).
var ErrQueueFull = errors.New("parallel: admission queue is full")

// Gate is the admission side of the execution engine: where Map fans
// one caller's items out across workers, a Gate bounds how many outside
// callers may be running work at all, with a bounded wait queue behind
// the slots. It is what lets a long-lived process (the simulation
// service) submit work into the same machine budget the experiment
// drivers use without unbounded queueing:
//
//	g := parallel.NewGate(4, 16) // 4 concurrent, 16 waiting
//	if err := g.Acquire(ctx); err != nil { /* 429 or ctx error */ }
//	defer g.Release()
//	// ... run simulations, e.g. via parallel.Map ...
//
// Acquire fails fast with ErrQueueFull when slots are busy and the wait
// queue is at capacity, and with ctx.Err() when the context ends while
// waiting. The zero Gate is not usable; call NewGate.
type Gate struct {
	slots    chan struct{}
	queue    int
	waiting  atomic.Int64
	inflight atomic.Int64
}

// NewGate returns a Gate admitting up to workers concurrent holders
// with at most queue callers waiting behind them. workers < 1 is
// treated as 1; queue < 0 as 0 (no waiting: every Acquire beyond the
// slots fails immediately).
func NewGate(workers, queue int) *Gate {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Gate{slots: make(chan struct{}, workers), queue: queue}
}

// Acquire claims a slot, waiting in the bounded queue if none is free.
// It returns ErrQueueFull immediately when the queue is already at
// capacity, or ctx.Err() if the context ends first. A nil error means
// the caller holds a slot and must Release it.
func (g *Gate) Acquire(ctx context.Context) error {
	// Fast path: a free slot skips the queue accounting entirely.
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		return nil
	default:
	}
	if g.waiting.Add(1) > int64(g.queue) {
		g.waiting.Add(-1)
		return ErrQueueFull
	}
	defer g.waiting.Add(-1)
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot claimed by a successful Acquire.
func (g *Gate) Release() {
	g.inflight.Add(-1)
	<-g.slots
}

// Waiting returns the number of callers queued behind the slots — the
// service's queue-depth metric.
func (g *Gate) Waiting() int { return int(g.waiting.Load()) }

// InFlight returns the number of slots currently held.
func (g *Gate) InFlight() int { return int(g.inflight.Load()) }

// Capacity returns the concurrent-holder limit.
func (g *Gate) Capacity() int { return cap(g.slots) }
