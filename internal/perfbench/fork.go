package perfbench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sm"
	"repro/internal/workloads"
)

// ForkSweepKernel is the workload the fork-sweep benchmark runs: long
// enough that the warm prefix dominates, memory-bound enough that the
// snapshot carries nontrivial cache and MSHR state.
const ForkSweepKernel = "needle"

// ForkSweep is the measured copy-on-write fork speedup: one prefix
// warmed to WarmCycle (~90% of the exact run) and resumed into Points
// divergent parameter points, against the same points simulated the
// exact way (fresh run + in-place parameter switch at the warm cycle).
// Both sides produce bit-identical counters (internal/simtest pins
// that), so the speedup buys nothing but time.
type ForkSweep struct {
	Kernel string `json:"kernel"`
	// TotalCycles is the kernel's exact-run cycle count; WarmCycle is
	// the shared prefix target derived from it.
	TotalCycles int64 `json:"total_cycles"`
	WarmCycle   int64 `json:"warm_cycle"`
	Points      int   `json:"points"`
	// ForkSeconds covers warming once plus Points forked resumes;
	// ExactSeconds covers Points fresh runs of identical work.
	ForkSeconds  float64 `json:"fork_seconds"`
	ExactSeconds float64 `json:"exact_seconds"`
	Speedup      float64 `json:"speedup"`
}

// forkSweepPoints are the divergent parameter points of the measured
// sweep: a DRAM-latency axis, the shape cmd/sweep's -resource dramlat
// runs. Latency points keep each tail's step count near the prefix's
// pace, so the measured speedup reflects the shared prefix rather than
// pathological tails.
var forkSweepPoints = []int64{200, 300, 400, 500, 600, 700, 800, 900}

// MeasureForkSweep measures the fork-sweep speedup. Both sides run
// serially so the two times divide cleanly.
func MeasureForkSweep() (*ForkSweep, error) {
	k, err := workloads.ByName(ForkSweepKernel)
	if err != nil {
		return nil, err
	}
	spec := core.RunSpec{Kernel: k, Config: config.Baseline()}
	r := core.NewRunner()
	// Pre-measure the exact run: its cycle count places the warm target
	// at 90% of the run, and the run itself warms the trace cache and
	// the energy baseline so neither side pays first-touch costs.
	res, err := r.Run(spec)
	if err != nil {
		return nil, err
	}
	fs := &ForkSweep{
		Kernel:      k.Name,
		TotalCycles: res.Counters.Cycles,
		WarmCycle:   res.Counters.Cycles * 9 / 10,
		Points:      len(forkSweepPoints),
	}

	ctx := context.Background()
	start := time.Now()
	warm, err := r.Warm(ctx, spec, fs.WarmCycle)
	if err != nil {
		return nil, err
	}
	for _, lat := range forkSweepPoints {
		p := warm.Params
		p.DRAM.LatencyCycles = lat
		if _, err := warm.Resume(ctx, r, p); err != nil {
			return nil, err
		}
	}
	fs.ForkSeconds = time.Since(start).Seconds()

	start = time.Now()
	for _, lat := range forkSweepPoints {
		p := warm.Params
		p.DRAM.LatencyCycles = lat
		if _, err := warm.ResumeExact(ctx, r, p); err != nil {
			return nil, err
		}
	}
	fs.ExactSeconds = time.Since(start).Seconds()
	if fs.ForkSeconds > 0 {
		fs.Speedup = fs.ExactSeconds / fs.ForkSeconds
	}
	return fs, nil
}

// Sampled is the measured cost/accuracy trade of sampled simulation
// over the full workload registry under the baseline configuration:
// wall-clock speedup against exact runs and the relative IPC error
// bounds the approximation carries (the harness sampling table reports
// the same errors per workload).
type Sampled struct {
	Spec           string  `json:"spec"`
	Workloads      int     `json:"workloads"`
	ExactSeconds   float64 `json:"exact_seconds"`
	SampledSeconds float64 `json:"sampled_seconds"`
	Speedup        float64 `json:"speedup"`
	MeanIPCError   float64 `json:"mean_ipc_error"`
	MaxIPCError    float64 `json:"max_ipc_error"`
}

// MeasureSampled measures sampled-mode speedup and IPC error for sp
// across every registry workload.
func MeasureSampled(sp sm.SampleSpec) (*Sampled, error) {
	if !sp.Enabled() {
		return nil, fmt.Errorf("perfbench: sampled measurement needs an enabled sample spec")
	}
	r := core.NewRunner()
	kernels := workloads.All()
	out := &Sampled{Spec: sp.String(), Workloads: len(kernels)}
	type pair struct{ exact, sampled float64 }
	ipcs := make([]pair, len(kernels))
	// Warm every trace and baseline first so both timed passes measure
	// simulation, not first-touch trace generation.
	for _, k := range kernels {
		if _, err := r.Run(core.RunSpec{Kernel: k, Config: config.Baseline()}); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	for i, k := range kernels {
		res, err := r.Run(core.RunSpec{Kernel: k, Config: config.Baseline()})
		if err != nil {
			return nil, err
		}
		ipcs[i].exact = res.IPC()
	}
	out.ExactSeconds = time.Since(start).Seconds()
	start = time.Now()
	for i, k := range kernels {
		res, err := r.Run(core.RunSpec{Kernel: k, Config: config.Baseline()}, core.WithSample(sp))
		if err != nil {
			return nil, err
		}
		ipcs[i].sampled = res.IPC()
	}
	out.SampledSeconds = time.Since(start).Seconds()
	if out.SampledSeconds > 0 {
		out.Speedup = out.ExactSeconds / out.SampledSeconds
	}
	for _, p := range ipcs {
		if p.exact == 0 {
			continue
		}
		e := (p.sampled - p.exact) / p.exact
		if e < 0 {
			e = -e
		}
		out.MeanIPCError += e
		if e > out.MaxIPCError {
			out.MaxIPCError = e
		}
	}
	out.MeanIPCError /= float64(len(kernels))
	return out, nil
}

// DefaultSampleSpec is the sampled-mode configuration the tracked
// benchmark measures.
var DefaultSampleSpec = sm.SampleSpec{DetailedCycles: 2048, SkipCycles: 8192}
