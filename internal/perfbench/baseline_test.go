package perfbench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadBaselineNumber(t *testing.T) {
	secs, err := ReadBaseline("37.486")
	if err != nil || secs != 37.486 {
		t.Fatalf("ReadBaseline(number) = %v, %v", secs, err)
	}
	if _, err := ReadBaseline("-3"); err == nil {
		t.Error("negative seconds accepted")
	}
	if _, err := ReadBaseline("0"); err == nil {
		t.Error("zero seconds accepted")
	}
}

func TestReadBaselineArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	res := &Results{SuiteSeconds: 12.5}
	if err := res.Write(path); err != nil {
		t.Fatal(err)
	}
	secs, err := ReadBaseline(path)
	if err != nil || secs != 12.5 {
		t.Fatalf("ReadBaseline(artifact) = %v, %v", secs, err)
	}
}

func TestReadBaselineMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.json")
	_, err := ReadBaseline(path)
	if err == nil {
		t.Fatal("missing file accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, path) || !strings.Contains(msg, "bench -o") {
		t.Errorf("error lacks the path or the remedy: %v", msg)
	}
}

func TestReadBaselineCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadBaseline(path)
	if err == nil {
		t.Fatal("corrupt file accepted")
	}
	if msg := err.Error(); !strings.Contains(msg, "not a bench artifact") || !strings.Contains(msg, "regenerate") {
		t.Errorf("error lacks diagnosis or remedy: %v", msg)
	}
}

func TestReadBaselineSkipSuiteArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "skip.json")
	res := &Results{CycleLoop: CycleLoop{NsPerOp: 100}} // no suite timing
	if err := res.Write(path); err != nil {
		t.Fatal(err)
	}
	_, err := ReadBaseline(path)
	if err == nil {
		t.Fatal("suite-less artifact accepted")
	}
	if msg := err.Error(); !strings.Contains(msg, "suite_seconds") {
		t.Errorf("error does not explain the missing field: %v", msg)
	}
}
