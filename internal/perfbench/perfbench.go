// Package perfbench is the tracked performance baseline of the
// simulator: one measurement core shared by the root benchmarks
// (BenchmarkCycleLoop) and the cmd/bench CLI, which serializes the
// results to BENCH_results.json so regressions show up as a diff
// against the committed numbers rather than as an anecdote.
//
// Two measurements matter:
//
//   - the cycle-loop microbenchmark: steady-state cost of one SM
//     scheduling action (sm.Step) on a hot trace cache, in ns/op and
//     allocs/op. The cycle loop is designed to be allocation-free in
//     steady state; CI gates on allocs/op staying zero.
//   - the end-to-end experiment suite: wall-clock seconds to regenerate
//     each of the paper's tables and figures, sharing one Runner the way
//     cmd/paper does.
package perfbench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/occupancy"
	"repro/internal/parallel"
	"repro/internal/sm"
	"repro/internal/workloads"
)

// CycleLoopKernel is the registry kernel the microbenchmark steps; it
// mixes ALU work, shared-memory traffic, and global loads.
const CycleLoopKernel = "needle"

// CycleLoop holds the steady-state cost of one sm.Step call.
type CycleLoop struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Experiment is the end-to-end wall time of one harness experiment.
type Experiment struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Results is the BENCH_results.json schema.
type Results struct {
	// Timestamp is when the measurement ran (RFC 3339).
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Workers is the parallel.Map worker count the suite ran with.
	Workers int `json:"workers"`

	CycleLoop CycleLoop `json:"cycle_loop"`

	Experiments  []Experiment `json:"experiments"`
	SuiteSeconds float64      `json:"suite_seconds"`

	// ForkSweep is the measured snapshot/fork sweep speedup; Sampled the
	// sampled-simulation speedup and IPC error bounds. Both are omitted
	// by the microbenchmark-only path (-skip-suite).
	ForkSweep *ForkSweep `json:"fork_sweep,omitempty"`
	Sampled   *Sampled   `json:"sampled,omitempty"`

	// BaselineSuiteSeconds, when non-zero, is the committed
	// pre-optimization suite time measured on the same machine, and
	// SuiteSpeedup is BaselineSuiteSeconds / SuiteSeconds.
	BaselineSuiteSeconds float64 `json:"baseline_suite_seconds,omitempty"`
	SuiteSpeedup         float64 `json:"suite_speedup,omitempty"`
}

// newCycleLoopSM builds a fresh baseline-configuration SM running the
// microbenchmark kernel.
func newCycleLoopSM() (*sm.SM, error) {
	k, err := workloads.ByName(CycleLoopKernel)
	if err != nil {
		return nil, err
	}
	cfg := config.Baseline()
	occ := occupancy.Compute(k.Requirements(), cfg, 0)
	if occ.CTAs < 1 {
		return nil, fmt.Errorf("perfbench: %s does not fit the baseline configuration", k.Name)
	}
	return sm.NewSM(sm.Spec{
		Config:       cfg,
		Params:       sm.DefaultParams(),
		Source:       &workloads.Source{K: k},
		ResidentCTAs: occ.CTAs,
	})
}

// RunCycleLoop is the shared body of BenchmarkCycleLoop: b.N steady-state
// sm.Step calls on a hot trace cache. SM construction (and
// reconstruction whenever a simulation completes mid-benchmark) happens
// with the timer stopped, so ns/op and allocs/op measure only the cycle
// loop itself.
func RunCycleLoop(b *testing.B) {
	b.ReportAllocs()
	machine, err := newCycleLoopSM()
	if err != nil {
		b.Fatal(err)
	}
	// Warm up with one complete run: every (cta, warp) trace and outcome
	// table is memoized and every lazily-grown scratch buffer has reached
	// its high-water mark before the timer starts.
	if _, err := machine.Run(); err != nil {
		b.Fatal(err)
	}
	if machine, err = newCycleLoopSM(); err != nil {
		b.Fatal(err)
	}
	machine.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if machine.Done() {
			b.StopTimer()
			if machine, err = newCycleLoopSM(); err != nil {
				b.Fatal(err)
			}
			machine.Start()
			b.StartTimer()
		}
		if err := machine.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// MeasureCycleLoop runs the microbenchmark through testing.Benchmark.
func MeasureCycleLoop() CycleLoop {
	r := testing.Benchmark(RunCycleLoop)
	return CycleLoop{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// MeasureExperiments regenerates the named harness experiments (all of
// them when names is empty) end to end, sharing one Runner the way
// cmd/paper does, and returns per-experiment wall times.
func MeasureExperiments(names []string) ([]Experiment, error) {
	if len(names) == 0 {
		names = harness.Experiments
	}
	r := core.NewRunner()
	out := make([]Experiment, 0, len(names))
	for _, name := range names {
		start := time.Now()
		if _, err := harness.Run(r, name); err != nil {
			return nil, fmt.Errorf("perfbench: %s: %w", name, err)
		}
		out = append(out, Experiment{Name: name, Seconds: time.Since(start).Seconds()})
	}
	return out, nil
}

// Collect runs both measurements and assembles a Results.
// baselineSuiteSeconds, when positive, is recorded alongside so the
// speedup over the tracked baseline is part of the artifact.
func Collect(names []string, baselineSuiteSeconds float64) (*Results, error) {
	res := &Results{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Workers:   parallel.Workers(),
		CycleLoop: MeasureCycleLoop(),
	}
	exps, err := MeasureExperiments(names)
	if err != nil {
		return nil, err
	}
	res.Experiments = exps
	for _, e := range exps {
		res.SuiteSeconds += e.Seconds
	}
	if res.ForkSweep, err = MeasureForkSweep(); err != nil {
		return nil, err
	}
	if res.Sampled, err = MeasureSampled(DefaultSampleSpec); err != nil {
		return nil, err
	}
	if baselineSuiteSeconds > 0 {
		res.BaselineSuiteSeconds = baselineSuiteSeconds
		if res.SuiteSeconds > 0 {
			res.SuiteSpeedup = baselineSuiteSeconds / res.SuiteSeconds
		}
	}
	return res, nil
}

// ReadBaseline interprets cmd/bench's -baseline argument: either a
// plain number of suite seconds ("37.486") or the path of a previous
// bench artifact (usually the committed BENCH_results.json), whose
// suite_seconds is used. Failures come back with the remedy attached —
// a missing or corrupt file names the path and how to regenerate it —
// rather than as a bare parse error.
func ReadBaseline(arg string) (float64, error) {
	if secs, err := strconv.ParseFloat(arg, 64); err == nil {
		if secs <= 0 {
			return 0, fmt.Errorf("perfbench: baseline seconds must be positive, got %v", secs)
		}
		return secs, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return 0, fmt.Errorf("perfbench: baseline %q is neither a number of seconds nor a readable bench artifact (%v); "+
			"regenerate one with `bench -o %s` on the reference commit, or pass suite seconds directly (e.g. -baseline 37.5)",
			arg, err, arg)
	}
	var prev Results
	if err := json.Unmarshal(data, &prev); err != nil {
		return 0, fmt.Errorf("perfbench: baseline %q is not a bench artifact (%v); "+
			"regenerate it with `bench -o %s` on the reference commit", arg, err, arg)
	}
	if prev.SuiteSeconds <= 0 {
		return 0, fmt.Errorf("perfbench: baseline %q has no suite_seconds (was it measured with -skip-suite?); "+
			"regenerate it with `bench -o %s` without -skip-suite", arg, arg)
	}
	return prev.SuiteSeconds, nil
}

// Write serializes r as indented JSON to path.
func (r *Results) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
