package simtest

import (
	"sync"
	"testing"

	"repro/internal/parallel"
	"repro/internal/sm"
	"repro/internal/stats"
)

// fuzzMutate derives a divergable-parameter mutation from the fuzzer's
// selector byte. Every arm stays within the divergable set, so a fork
// must always succeed.
func fuzzMutate(sel uint8) func(*sm.Params) {
	switch sel % 6 {
	case 0:
		return nil // no divergence
	case 1:
		return func(p *sm.Params) { p.MaxMSHRs = 1 + int(sel%8) }
	case 2:
		return func(p *sm.Params) { p.DRAM.LatencyCycles = 100 + int64(sel)*4 }
	case 3:
		return func(p *sm.Params) { p.DRAM.BytesPerCycle = 1 + int(sel%16) }
	case 4:
		return func(p *sm.Params) { p.WriteBackCache = !p.WriteBackCache }
	default:
		return func(p *sm.Params) { p.ALULatency = 1 + int64(sel%32) }
	}
}

// FuzzForkRestore fuzzes the (snapshot cycle, parameter mutation) plane:
// whatever point the snapshot lands on — mid-coalesce, mid-barrier,
// mid-fill, grid already done — restoring must never panic, and a fleet
// of forks resumed under one worker must be bit-identical to the same
// fleet resumed under eight (no hidden shared mutable state).
func FuzzForkRestore(f *testing.F) {
	f.Add(uint16(0), uint8(0))
	f.Add(uint16(1), uint8(1))
	f.Add(uint16(311), uint8(2))
	f.Add(uint16(2048), uint8(3))
	f.Add(uint16(9000), uint8(4))
	f.Add(uint16(60000), uint8(5))
	f.Fuzz(func(t *testing.T, k uint16, sel uint8) {
		c := Case{Kernel: "bfs", SnapCycle: int64(k), Mutate: fuzzMutate(sel)}
		spec, err := c.Spec()
		if err != nil {
			t.Fatal(err)
		}
		parent, err := c.warm(spec)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := parent.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		forkSpec := spec
		if c.Mutate != nil && !parent.Done() {
			c.Mutate(&forkSpec.Params)
		}

		resumeAll := func() []*stats.Counters {
			out, err := parallel.Map(4, func(i int) (*stats.Counters, error) {
				fork, err := sm.Fork(forkSpec, snap)
				if err != nil {
					return nil, err
				}
				return fork.Run()
			})
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		prev := parallel.Workers()
		defer parallel.SetWorkers(prev)
		parallel.SetWorkers(1)
		serial := resumeAll()
		parallel.SetWorkers(8)
		fanned := resumeAll()
		for i := range serial {
			if d := DiffCounters(serial[i], fanned[i]); d != "" {
				t.Errorf("fork %d: j=1 vs j=8 diverged (shared mutable state?): %s", i, d)
			}
		}
		for i := 1; i < len(serial); i++ {
			if d := DiffCounters(serial[0], serial[i]); d != "" {
				t.Errorf("fork %d diverged from fork 0 off the same snapshot: %s", i, d)
			}
		}
	})
}

// TestForkFanOutRace resumes many forks off one snapshot concurrently.
// Under -race (CI runs this suite with the detector on) any writable
// state leaking through the snapshot — a shared pending-table array, a
// shared cache tag store, a shared warp slice — is reported as a data
// race; without -race the counter comparison still catches divergence.
func TestForkFanOutRace(t *testing.T) {
	t.Parallel()
	c := Case{Kernel: "mummer", SnapCycle: 2000}
	spec, err := c.Spec()
	if err != nil {
		t.Fatal(err)
	}
	parent, err := c.warm(spec)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	results := make([]*stats.Counters, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fork, err := sm.Fork(spec, snap)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = fork.Run()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("fork %d: %v", i, errs[i])
		}
		if d := DiffCounters(results[0], results[i]); d != "" {
			t.Errorf("concurrent fork %d diverged from fork 0: %s", i, d)
		}
	}
	// The parent must be untouched by its forks' runs: resuming it now
	// must land on the same counters yet again.
	parentCounters, err := parent.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffCounters(results[0], parentCounters); d != "" {
		t.Errorf("parent resumed after fork fan-out diverged: %s", d)
	}
}
