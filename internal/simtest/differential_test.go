package simtest

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sched"
	"repro/internal/sm"
)

// TestForkEqualsFreshAllDesigns pins the core equivalence for every
// memory design crossed with both cache write policies: a run forked at
// cycle K finishes with counters identical to a run that never
// snapshotted. mummer is the cache-limited stress (misses, sectored
// fills in flight at K); matrixmul adds shared memory and barriers.
func TestForkEqualsFreshAllDesigns(t *testing.T) {
	t.Parallel()
	designs := []config.Design{config.Partitioned, config.Unified, config.FermiLike}
	for _, kernel := range []string{"mummer", "matrixmul"} {
		for _, design := range designs {
			for _, wb := range []bool{false, true} {
				c := Case{
					Kernel:    kernel,
					Design:    design,
					WriteBack: wb,
					SnapCycle: 3000,
				}
				name := kernel + "/" + design.String() + "/wb=" + map[bool]string{false: "through", true: "back"}[wb]
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					fresh, forked, err := c.Differential()
					if err != nil {
						t.Fatal(err)
					}
					if d := DiffCounters(fresh, forked); d != "" {
						t.Errorf("fork at cycle %d diverged from fresh run: %s", c.SnapCycle, d)
					}
				})
			}
		}
	}
}

// TestForkEqualsFreshSchedulers covers the GTO policy and the greedy
// two-level variant: scheduler cursor state (last-issued warp) must
// survive the snapshot.
func TestForkEqualsFreshSchedulers(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name   string
		policy sched.Policy
	}{
		{"gto", sched.GTO},
		{"twolevel", sched.TwoLevel},
	} {
		c := Case{Kernel: "bfs", Scheduler: tc.policy, SnapCycle: 2000}
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			fresh, forked, err := c.Differential()
			if err != nil {
				t.Fatal(err)
			}
			if d := DiffCounters(fresh, forked); d != "" {
				t.Errorf("fork diverged from fresh run: %s", d)
			}
		})
	}
}

// TestForkMidBarrier parks the snapshot at a point where warps are
// blocked at a CTA barrier: the per-CTA barrier wait counts and the
// blocked warps' statuses must restore exactly, or the barrier releases
// with the wrong population.
func TestForkMidBarrier(t *testing.T) {
	t.Parallel()
	c := Case{
		Kernel:    "matrixmul",
		SnapCycle: 500,
		SnapWhen:  func(s *sm.SM) bool { return s.BarrierWarps() > 0 },
	}
	fresh, forked, err := c.Differential()
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffCounters(fresh, forked); d != "" {
		t.Errorf("mid-barrier fork diverged from fresh run: %s", d)
	}
}

// TestForkMSHRFull parks the snapshot while the bounded miss table is
// saturated: every in-flight fill (the pending table's open-addressed
// slots, verbatim) and the MSHR-blocked window must restore exactly.
func TestForkMSHRFull(t *testing.T) {
	t.Parallel()
	const mshrs = 4
	c := Case{
		Kernel:    "mummer",
		MaxMSHRs:  mshrs,
		SnapCycle: 200,
		SnapWhen:  func(s *sm.SM) bool { return s.InFlightFills() >= mshrs },
	}
	fresh, forked, err := c.Differential()
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffCounters(fresh, forked); d != "" {
		t.Errorf("MSHR-full fork diverged from fresh run: %s", d)
	}
}

// TestForkDivergentParams pins the sweep semantics: a fork whose
// parameters diverge at K equals a fresh run that switches the same
// parameters in place at K (sm.SetParams). Each mutation exercises one
// divergable axis.
func TestForkDivergentParams(t *testing.T) {
	t.Parallel()
	muts := []struct {
		name string
		fn   func(*sm.Params)
	}{
		{"mshrs", func(p *sm.Params) { p.MaxMSHRs = 6 }},
		{"dram-latency", func(p *sm.Params) { p.DRAM.LatencyCycles = 700 }},
		{"dram-bandwidth", func(p *sm.Params) { p.DRAM.BytesPerCycle = 4 }},
		{"alu-latency", func(p *sm.Params) { p.ALULatency = 12 }},
		{"write-policy", func(p *sm.Params) { p.WriteBackCache = true }},
		{"deschedule", func(p *sm.Params) { p.DeschedulePast = 8 }},
	}
	for _, m := range muts {
		c := Case{Kernel: "mummer", SnapCycle: 2500, Mutate: m.fn}
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			fresh, forked, err := c.Differential()
			if err != nil {
				t.Fatal(err)
			}
			if d := DiffCounters(fresh, forked); d != "" {
				t.Errorf("divergent fork != in-place param switch: %s", d)
			}
		})
	}
}

// TestForkAfterCompletion covers the degenerate warm prefix: when the
// grid finishes before the warm target, the fork resumes a completed
// grid and must still report the fresh run's counters.
func TestForkAfterCompletion(t *testing.T) {
	t.Parallel()
	c := Case{Kernel: "vectoradd", SnapCycle: 1 << 40}
	fresh, forked, err := c.Differential()
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffCounters(fresh, forked); d != "" {
		t.Errorf("completed-grid fork diverged: %s", d)
	}
}

// TestForkRejectsPrefixDefiningDivergence pins the guard rails: the
// fields that alter history before K must be rejected, not silently
// accepted into a meaningless hybrid.
func TestForkRejectsPrefixDefiningDivergence(t *testing.T) {
	t.Parallel()
	c := Case{Kernel: "vectoradd", SnapCycle: 100}
	spec, err := c.Spec()
	if err != nil {
		t.Fatal(err)
	}
	parent, err := sm.NewSM(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.RunTo(c.SnapCycle); err != nil {
		t.Fatal(err)
	}
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		fn   func(*sm.Spec)
	}{
		{"config", func(s *sm.Spec) { s.Config.CacheBytes *= 2 }},
		{"scatter", func(s *sm.Spec) { s.Params.AggressiveScatter = true }},
		{"greedy", func(s *sm.Spec) { s.Params.GreedyScheduler = true }},
		{"scheduler", func(s *sm.Spec) { s.Params.Scheduler = sched.GTO }},
		{"active-warps", func(s *sm.Spec) { s.Params.ActiveWarps = 16 }},
	}
	for _, b := range bad {
		forkSpec := spec
		b.fn(&forkSpec)
		if _, err := sm.Fork(forkSpec, snap); err == nil {
			t.Errorf("Fork accepted prefix-defining divergence %s", b.name)
		}
	}
}
