package simtest

import (
	"context"
	"testing"
	"time"

	"repro/internal/probe"
	"repro/internal/sm"
)

// TestSampledExactAttribution pins sampled mode's accounting contract:
// timing is approximate but work is not. A sampled run must execute the
// whole grid — every instruction, thread, and CTA attributed exactly as
// in the exact run.
func TestSampledExactAttribution(t *testing.T) {
	t.Parallel()
	for _, kernel := range []string{"matrixmul", "mummer", "vectoradd"} {
		t.Run(kernel, func(t *testing.T) {
			t.Parallel()
			c := Case{Kernel: kernel}
			spec, err := c.Spec()
			if err != nil {
				t.Fatal(err)
			}
			exactSM, err := sm.NewSM(spec)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := exactSM.Run()
			if err != nil {
				t.Fatal(err)
			}
			sampledSM, err := sm.NewSM(spec)
			if err != nil {
				t.Fatal(err)
			}
			sampled, err := sampledSM.RunSampled(context.Background(), sm.SampleSpec{DetailedCycles: 500, SkipCycles: 2000})
			if err != nil {
				t.Fatal(err)
			}
			if sampled.WarpInsts != exact.WarpInsts {
				t.Errorf("WarpInsts: sampled %d, exact %d", sampled.WarpInsts, exact.WarpInsts)
			}
			if sampled.ThreadInsts != exact.ThreadInsts {
				t.Errorf("ThreadInsts: sampled %d, exact %d", sampled.ThreadInsts, exact.ThreadInsts)
			}
			if sampled.CTAsRetired != exact.CTAsRetired {
				t.Errorf("CTAsRetired: sampled %d, exact %d", sampled.CTAsRetired, exact.CTAsRetired)
			}
			if sampled.ThreadsRun != exact.ThreadsRun {
				t.Errorf("ThreadsRun: sampled %d, exact %d", sampled.ThreadsRun, exact.ThreadsRun)
			}
			if sampled.SpillInsts != exact.SpillInsts {
				t.Errorf("SpillInsts: sampled %d, exact %d", sampled.SpillInsts, exact.SpillInsts)
			}
			if sampled.Cycles <= 0 {
				t.Errorf("sampled run reported nonpositive cycles %d", sampled.Cycles)
			}
		})
	}
}

// TestSampledCancellationInFastForward is the regression test for the
// context-poll fix: the RunContext cancellation stride must fire inside
// the fast-forward loops too, so an expired deadline aborts a sampled
// run even when nearly all of its work happens between detailed windows.
// The deadline is already expired when the run starts; only the poll
// inside the fast-forward can observe it, because the detailed window is
// far shorter than the poll stride.
func TestSampledCancellationInFastForward(t *testing.T) {
	t.Parallel()
	c := Case{Kernel: "mummer"}
	spec, err := c.Spec()
	if err != nil {
		t.Fatal(err)
	}
	machine, err := sm.NewSM(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	// One tiny detailed window, then a fast-forward spanning the rest of
	// the grid: cancellation must surface from inside the fast-forward.
	_, err = machine.RunSampled(ctx, sm.SampleSpec{DetailedCycles: 1, SkipCycles: 1 << 40})
	if err == nil {
		t.Fatal("sampled run with an expired deadline completed instead of cancelling")
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("sampled run returned %v, want context.DeadlineExceeded", err)
	}
}

// TestSampledRejectsProbe pins the probe interlock: stall attribution
// needs exact runs, so sampled mode must refuse to start under a probe
// rather than emit a silently holey profile.
func TestSampledRejectsProbe(t *testing.T) {
	t.Parallel()
	c := Case{Kernel: "vectoradd"}
	spec, err := c.Spec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Probe = probe.New(0, nil)
	machine, err := sm.NewSM(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.RunSampled(context.Background(), sm.SampleSpec{DetailedCycles: 100, SkipCycles: 100}); err == nil {
		t.Fatal("sampled mode accepted a probe")
	}
}

// TestParseSampleSpec pins the flag syntax.
func TestParseSampleSpec(t *testing.T) {
	t.Parallel()
	sp, err := sm.ParseSampleSpec("detailed=1000,skip=9000")
	if err != nil {
		t.Fatal(err)
	}
	if sp.DetailedCycles != 1000 || sp.SkipCycles != 9000 {
		t.Fatalf("parsed %+v", sp)
	}
	if sp.String() != "detailed=1000,skip=9000" {
		t.Fatalf("String() = %q", sp.String())
	}
	if sp, err := sm.ParseSampleSpec(""); err != nil || sp.Enabled() {
		t.Fatalf("empty spec: %+v, %v", sp, err)
	}
	for _, bad := range []string{"detailed=100", "skip=100", "detailed=0,skip=5", "detailed=a,skip=5", "bogus=1,skip=5", "detailed"} {
		if _, err := sm.ParseSampleSpec(bad); err == nil {
			t.Errorf("ParseSampleSpec(%q) accepted a bad spec", bad)
		}
	}
}
