package simtest

import (
	"bytes"
	"testing"

	"repro/internal/probe"
	"repro/internal/sm"
)

// TestProbeStreamAcrossSnapshot pins the observability contract across a
// snapshot boundary: the NDJSON stream of (parent run to K, fork runs to
// completion) concatenated is byte-identical to the stream of a fresh
// probed run from cycle 0 — meta record, every interval record, and the
// summary. The snapshot cycle is deliberately not interval-aligned, so
// the partially filled window must cross the boundary intact.
func TestProbeStreamAcrossSnapshot(t *testing.T) {
	t.Parallel()
	c := Case{Kernel: "matrixmul", SnapCycle: 1333}
	spec, err := c.Spec()
	if err != nil {
		t.Fatal(err)
	}
	const interval = 512

	// Fresh probed run, cycle 0 to completion.
	var freshBuf bytes.Buffer
	freshSpec := spec
	freshSpec.Probe = probe.New(interval, &freshBuf)
	fresh, err := sm.NewSM(freshSpec)
	if err != nil {
		t.Fatal(err)
	}
	freshCounters, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := freshSpec.Probe.WriteErr(); err != nil {
		t.Fatal(err)
	}

	// Probed parent to K, snapshot, probed fork to completion.
	var parentBuf, forkBuf bytes.Buffer
	parentSpec := spec
	parentSpec.Probe = probe.New(interval, &parentBuf)
	parent, err := sm.NewSM(parentSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.RunTo(c.SnapCycle); err != nil {
		t.Fatal(err)
	}
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Probe == nil {
		t.Fatal("snapshot of a probed run carries no probe state")
	}
	forkSpec := spec
	forkSpec.Probe = probe.Restore(snap.Probe, &forkBuf)
	fork, err := sm.Fork(forkSpec, snap)
	if err != nil {
		t.Fatal(err)
	}
	forkCounters, err := fork.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := forkSpec.Probe.WriteErr(); err != nil {
		t.Fatal(err)
	}

	if d := DiffCounters(freshCounters, forkCounters); d != "" {
		t.Errorf("probed fork counters diverged from fresh probed run: %s", d)
	}
	joined := append(append([]byte(nil), parentBuf.Bytes()...), forkBuf.Bytes()...)
	if !bytes.Equal(freshBuf.Bytes(), joined) {
		t.Errorf("NDJSON stream across snapshot boundary is not byte-identical to fresh stream:\nfresh (%d bytes):\n%s\nparent+fork (%d+%d bytes):\n%s",
			freshBuf.Len(), freshBuf.String(), parentBuf.Len(), forkBuf.Len(), joined)
	}
	if parentBuf.Len() == 0 {
		t.Error("parent emitted no NDJSON before the snapshot (boundary not exercised)")
	}
	// The probe's in-memory time series must agree too: the fork's
	// restored probe accumulates the parent's closed intervals plus its
	// own continuation.
	fi, ki := freshSpec.Probe.Intervals(), forkSpec.Probe.Intervals()
	if len(fi) != len(ki) {
		t.Fatalf("interval series lengths differ: fresh %d, fork %d", len(fi), len(ki))
	}
	for i := range fi {
		if fi[i] != ki[i] {
			t.Errorf("interval %d differs: fresh %+v, fork %+v", i, fi[i], ki[i])
		}
	}
}

// TestForkProbednessGuard pins the probe/fork interlock: a probed
// snapshot cannot be forked unprobed (the stream would silently
// truncate) and an unprobed snapshot cannot grow a probe (its first
// intervals would be missing).
func TestForkProbednessGuard(t *testing.T) {
	t.Parallel()
	c := Case{Kernel: "vectoradd", SnapCycle: 200}
	spec, err := c.Spec()
	if err != nil {
		t.Fatal(err)
	}
	parent, err := sm.NewSM(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.RunTo(c.SnapCycle); err != nil {
		t.Fatal(err)
	}
	snap, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	probed := spec
	probed.Probe = probe.New(0, nil)
	if _, err := sm.Fork(probed, snap); err == nil {
		t.Error("Fork attached a probe to an unprobed snapshot")
	}
}
