// Package simtest is the differential-equivalence harness for the
// snapshot/fork machinery: reusable helpers asserting that a run
// continued from a snapshot is bit-identical to a run that never
// snapshotted. The pinned equivalence is
//
//	run to cycle N  ≡  run to K, Snapshot, Fork, run to N
//
// for every counter — and, when parameters diverge at K, that a fork
// under the divergent parameters equals a fresh run that switches the
// same parameters in place at K (sm.SetParams). The package's own tests
// cover all three memory designs, both cache write policies, probed
// NDJSON streams across the boundary, mid-barrier and MSHR-full
// snapshot points, fuzzed (K, mutation) pairs, and concurrent fork
// fan-out; other packages reuse the helpers to pin their own
// fork-dependent behavior (sweeps, the simulation service).
package simtest

import (
	"fmt"
	"reflect"
	"strings"

	"repro/internal/config"
	"repro/internal/occupancy"
	"repro/internal/sched"
	"repro/internal/sm"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Case describes one fork-vs-fresh differential scenario.
type Case struct {
	// Kernel is the workload name (workloads.ByName).
	Kernel string
	// Design selects the memory organization; the capacity split is
	// derived the same way the paper's experiments derive it
	// (baseline partition, §4.5 allocation, or the better Fermi split).
	Design config.Design
	// WriteBack selects the write-back cache ablation.
	WriteBack bool
	// MaxMSHRs bounds outstanding misses (0 unbounded).
	MaxMSHRs int
	// Scheduler selects the warp-scheduling policy ("" = two-level).
	Scheduler sched.Policy
	// Seed perturbs per-warp random streams (0 = 1).
	Seed uint64
	// SnapCycle is the warm-prefix target: the snapshot is taken at the
	// first state whose clock reaches it.
	SnapCycle int64
	// SnapWhen, when non-nil, refines the snapshot point: after
	// SnapCycle the run steps on until the predicate holds (or the grid
	// completes) — how tests park the snapshot mid-barrier or MSHR-full.
	SnapWhen func(*sm.SM) bool
	// Mutate, when non-nil, is the parameter divergence applied at the
	// snapshot point (to the fork's spec, and in place on the fresh
	// comparator).
	Mutate func(*sm.Params)
}

// Spec resolves the case to a buildable sm.Spec (occupancy computed the
// way core does).
func (c Case) Spec() (sm.Spec, error) {
	k, err := workloads.ByName(c.Kernel)
	if err != nil {
		return sm.Spec{}, err
	}
	cfg, err := c.memConfig(k)
	if err != nil {
		return sm.Spec{}, err
	}
	params := sm.DefaultParams()
	params.WriteBackCache = c.WriteBack
	params.MaxMSHRs = c.MaxMSHRs
	params.Scheduler = c.Scheduler
	occ := occupancy.Compute(k.Requirements(), cfg, k.RegsNeeded)
	if occ.CTAs < 1 {
		return sm.Spec{}, fmt.Errorf("simtest: %s does not fit %v", c.Kernel, cfg)
	}
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	return sm.Spec{
		Config:       cfg,
		Params:       params,
		Source:       &workloads.Source{K: k, Seed: seed},
		ResidentCTAs: occ.CTAs,
	}, nil
}

// memConfig derives the case's memory configuration from its design.
func (c Case) memConfig(k *workloads.Kernel) (config.MemConfig, error) {
	switch c.Design {
	case config.Unified:
		return config.Allocate(k.Requirements(), config.BaselineTotalBytes, 0)
	case config.FermiLike:
		return config.ChooseFermi(k.Requirements(), config.BaselineTotalBytes-config.BaselineRFBytes, 0), nil
	default:
		return config.Baseline(), nil
	}
}

// warm builds the case's SM and advances it to the snapshot point:
// RunTo(SnapCycle), then — when SnapWhen is set — single steps until
// the predicate holds or the grid completes.
func (c Case) warm(spec sm.Spec) (*sm.SM, error) {
	s, err := sm.NewSM(spec)
	if err != nil {
		return nil, err
	}
	if err := s.RunTo(c.SnapCycle); err != nil {
		return nil, err
	}
	if c.SnapWhen != nil {
		for !s.Done() && !c.SnapWhen(s) {
			if err := s.Step(); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Fresh runs the case's comparator: warm to the snapshot point, apply
// the mutation in place (sm.SetParams), continue to completion. No
// snapshot is involved.
func (c Case) Fresh() (*stats.Counters, error) {
	spec, err := c.Spec()
	if err != nil {
		return nil, err
	}
	s, err := c.warm(spec)
	if err != nil {
		return nil, err
	}
	if c.Mutate != nil && !s.Done() {
		p := s.Params()
		c.Mutate(&p)
		if err := s.SetParams(p); err != nil {
			return nil, err
		}
	}
	return s.Run()
}

// Forked runs the case through the snapshot machinery: warm to the
// snapshot point, Snapshot, Fork under the (possibly mutated)
// parameters, run the fork to completion. The warm parent is abandoned
// untouched after the capture.
func (c Case) Forked() (*stats.Counters, error) {
	spec, err := c.Spec()
	if err != nil {
		return nil, err
	}
	parent, err := c.warm(spec)
	if err != nil {
		return nil, err
	}
	snap, err := parent.Snapshot()
	if err != nil {
		return nil, err
	}
	forkSpec := spec
	if c.Mutate != nil && !parent.Done() {
		c.Mutate(&forkSpec.Params)
	}
	fork, err := sm.Fork(forkSpec, snap)
	if err != nil {
		return nil, err
	}
	return fork.Run()
}

// Differential runs both paths and returns their counters; callers
// assert equality with DiffCounters.
func (c Case) Differential() (fresh, forked *stats.Counters, err error) {
	if fresh, err = c.Fresh(); err != nil {
		return nil, nil, fmt.Errorf("fresh: %w", err)
	}
	if forked, err = c.Forked(); err != nil {
		return nil, nil, fmt.Errorf("forked: %w", err)
	}
	return fresh, forked, nil
}

// DiffCounters compares two counter sets field by field and describes
// every difference, or returns "" when they are identical. Reflection
// keeps the comparison exhaustive: a counter added to stats.Counters is
// covered by every differential test automatically.
func DiffCounters(a, b *stats.Counters) string {
	if a == nil || b == nil {
		if a == b {
			return ""
		}
		return "one counter set is nil"
	}
	va, vb := reflect.ValueOf(*a), reflect.ValueOf(*b)
	t := va.Type()
	var diffs []string
	for i := 0; i < t.NumField(); i++ {
		fa, fb := va.Field(i), vb.Field(i)
		if !reflect.DeepEqual(fa.Interface(), fb.Interface()) {
			diffs = append(diffs, fmt.Sprintf("%s: %v != %v", t.Field(i).Name, fa.Interface(), fb.Interface()))
		}
	}
	return strings.Join(diffs, "; ")
}
