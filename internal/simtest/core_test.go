package simtest

import (
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sm"
	"repro/internal/workloads"
)

// TestWarmResumeEqualsResumeExact pins the sweep-facing API one layer
// up: core.Warm + Resume (the fork path a sweep takes) must produce the
// same Result — counters, occupancy, energy breakdown — as ResumeExact
// (a fresh run that switches parameters in place at the warm cycle),
// and a result table rendered from each must be byte-identical, so
// sweeps can adopt forking without any golden churn.
func TestWarmResumeEqualsResumeExact(t *testing.T) {
	t.Parallel()
	k, err := workloads.ByName("mummer")
	if err != nil {
		t.Fatal(err)
	}
	runner := core.NewRunner()
	warm, err := runner.Warm(context.Background(), core.RunSpec{Kernel: k, Config: config.Baseline()}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	params := warm.Params
	params.MaxMSHRs = 8
	params.DRAM.LatencyCycles = 600

	forked, err := warm.Resume(context.Background(), runner, params)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := warm.ResumeExact(context.Background(), runner, params)
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffCounters(exact.Counters, forked.Counters); d != "" {
		t.Errorf("Resume diverged from ResumeExact: %s", d)
	}
	if forked.Energy != exact.Energy {
		t.Errorf("energy breakdowns differ: fork %+v, exact %+v", forked.Energy, exact.Energy)
	}
	if forked.Occupancy != exact.Occupancy {
		t.Errorf("occupancy differs: fork %+v, exact %+v", forked.Occupancy, exact.Occupancy)
	}

	render := func(r *core.Result) string {
		tb := report.NewTable("sweep point", "kernel", "cycles", "IPC", "energy")
		tb.AddRowf(r.Spec.Kernel.Name, r.Counters.Cycles, r.IPC(), r.Energy.Total())
		return tb.String()
	}
	if got, want := render(forked), render(exact); got != want {
		t.Errorf("rendered tables differ:\nfork:\n%s\nexact:\n%s", got, want)
	}
}

// TestWarmResumeConcurrent sweeps one warm prefix into several divergent
// points concurrently — the intended sweep shape — and checks each
// against its own ResumeExact comparator.
func TestWarmResumeConcurrent(t *testing.T) {
	t.Parallel()
	k, err := workloads.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	runner := core.NewRunner()
	warm, err := runner.Warm(context.Background(), core.RunSpec{Kernel: k, Config: config.Baseline()}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	points := []func(*sm.Params){
		func(p *sm.Params) { p.MaxMSHRs = 2 },
		func(p *sm.Params) { p.MaxMSHRs = 16 },
		func(p *sm.Params) { p.DRAM.BytesPerCycle = 2 },
		func(p *sm.Params) { p.WriteBackCache = true },
	}
	type out struct {
		forked, exact *core.Result
		err           error
	}
	results := make([]out, len(points))
	done := make(chan int, len(points))
	for i, mut := range points {
		go func(i int, mut func(*sm.Params)) {
			defer func() { done <- i }()
			p := warm.Params
			mut(&p)
			var o out
			if o.forked, o.err = warm.Resume(context.Background(), runner, p); o.err == nil {
				o.exact, o.err = warm.ResumeExact(context.Background(), runner, p)
			}
			results[i] = o
		}(i, mut)
	}
	for range points {
		<-done
	}
	for i, o := range results {
		if o.err != nil {
			t.Fatalf("point %d: %v", i, o.err)
		}
		if d := DiffCounters(o.exact.Counters, o.forked.Counters); d != "" {
			t.Errorf("point %d: fork diverged from exact: %s", i, d)
		}
	}
}

// TestWarmInfeasible pins Warm's error contract: a configuration the
// kernel cannot fit fails with the same *FitError a direct Run reports.
func TestWarmInfeasible(t *testing.T) {
	t.Parallel()
	k, err := workloads.ByName("dgemm")
	if err != nil {
		t.Fatal(err)
	}
	tiny := config.MemConfig{Design: config.Partitioned, RFBytes: 1 << 10, SharedBytes: 1 << 10, CacheBytes: 1 << 10}
	_, err = core.NewRunner().Warm(context.Background(), core.RunSpec{Kernel: k, Config: tiny}, 100)
	if !core.IsInfeasible(err) {
		t.Fatalf("Warm under an infeasible config returned %v, want *FitError", err)
	}
}
