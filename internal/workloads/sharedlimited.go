package workloads

import (
	"repro/internal/isa"
	"repro/internal/kgen"
)

// Global address-map bases used by the shared-memory-limited kernels. Each
// kernel keeps its arrays in a private window so runs are self-consistent;
// different kernels never run in the same simulation.
const (
	needleMatrixBase uint32 = 0x0100_0000 // 2048x2048 DP matrix (offset so halo rows stay in range)
	needleRefBase    uint32 = 0x2000_0000
	needleRowPitch   uint32 = 2048 * 4

	stoInputBase  uint32 = 0
	stoOutputBase uint32 = 0x4000_0000

	luMatrixBase  uint32 = 0
	luMatrixBytes uint32 = 208 << 10 // full matrix (streamed tiles)
	luPivotBytes  uint32 = 144 << 10 // active pivot panel: rewards caches past 64 KB
)

// NeedleKernel builds the Needleman-Wunsch kernel with the given blocking
// factor. The registered default uses BF=32, the paper's most efficient
// point for a 64 KB scratchpad; Figure 11 sweeps BF in {16, 32, 64}.
//
// The real kernel tiles a 2048x2048 dynamic-programming matrix into BF x BF
// subblocks held in shared memory (two arrays: the score subblock and the
// reference subblock), processed as 2*BF-1 diagonal wavefronts separated by
// barriers. Shared memory per CTA grows quadratically with BF while threads
// grow linearly, which is exactly the capacity/parallelism trade Figure 11
// explores.
func NeedleKernel(bf int) *Kernel {
	if bf < 16 {
		bf = 16
	}
	threads := bf
	if threads < isa.WarpSize {
		threads = isa.WarpSize
	}
	// Two (BF+1)x(BF+2) int arrays in shared memory: the Rodinia kernel's
	// (BF+1)^2 tiles, row-padded by one word so anti-diagonal accesses
	// (stride BF+2 words) stay bank-conflict free — the common tuning the
	// paper assumes ("avoiding shared memory bank conflicts is a common
	// optimization employed by programmers").
	shm := 2 * (bf + 1) * (bf + 2) * 4
	// Fixed total matrix work: (2048/BF)^2 subblocks, scaled down 32x.
	grid := 2048 / bf * (2048 / bf) / 32
	return &Kernel{
		Name:              "needle",
		Suite:             "Rodinia",
		Category:          SharedLimited,
		Description:       "Needleman-Wunsch DNA sequence alignment (dynamic programming wavefront)",
		RegsNeeded:        18,
		ThreadsPerCTA:     threads,
		SharedBytesPerCTA: shm,
		GridCTAs:          grid,
		BF:                bf,
		Emit:              emitNeedle,
	}
}

// needleKernel registers the default blocking factor of 32, the paper's
// operating point for all results outside the Figure 11 study.
var needleKernel = register(NeedleKernel(32))

func emitNeedle(b *kgen.Builder, e *Env) {
	// Register map (18): r0-r3 address/index bookkeeping, r4-r6 the three
	// DP neighbours, r7 reference cell, r8 running max, r9 score temp,
	// r10-r17 wavefront bookkeeping rotated through the steps.
	const (
		rIdx0, rIdx1, rIdx2, rIdx3 = 0, 1, 2, 3
		rN, rW, rNW                = 4, 5, 6
		rRef, rMax, rTmp           = 7, 8, 9
	)
	bf := e.BF
	lanes := uint32(isa.WarpSize)
	// Subblock origin in the DP matrix: CTAs walk the blocked matrix.
	blocksPerRow := 2048 / uint32(bf)
	bx := (uint32(e.CTA) % blocksPerRow) * uint32(bf)
	by := (uint32(e.CTA) / blocksPerRow) * uint32(bf) % 2048
	origin := needleMatrixBase + by*needleRowPitch + bx*4

	rot := uint8(10) // r10..r17 rotate
	next := func() uint8 {
		r := rot
		rot++
		if rot > 17 {
			rot = 10
		}
		return r
	}

	b.ALU(rIdx0)        // thread index setup
	b.ALU(rIdx1, rIdx0) // row pointer
	b.ALU(rIdx2, rIdx0)
	b.ALU(rIdx3, rIdx1, rIdx2)

	// Load the north boundary row (coalesced) and the west boundary
	// column (one element per matrix row: every lane touches a different
	// 128-byte line — the uncoalesced pattern that makes needle's cached
	// DRAM traffic exceed its uncached traffic, Table 1 col 10).
	shmCells := uint32(bf+1) * uint32(bf+2) * 4
	cols := uint32(bf) / lanes
	if cols == 0 {
		cols = 1
	}
	for c := uint32(0); c < cols; c++ {
		b.LDG(rN, rIdx1, kgen.Coalesced(origin-needleRowPitch+(uint32(e.Warp)*lanes+c*lanes)*4, 4))
		b.STS(rN, rIdx0, kgen.CoalescedMod(4+c*lanes*4, 4, shmCells))
	}
	for c := uint32(0); c < cols; c++ {
		b.LDG(rW, rIdx2, kgen.Coalesced(origin-4+(uint32(e.Warp)*lanes+c*lanes)*needleRowPitch, needleRowPitch))
		// The west column scatters down the subblock: the classic needle
		// shared-memory bank-conflict pattern.
		b.STS(rW, rIdx0, kgen.CoalescedMod(uint32(bf+2)*4*(1+c*lanes), uint32(bf+2)*4, shmCells))
	}
	// Load the reference subblock rows for this warp (coalesced) into the
	// second shared array.
	rowsPerWarp := bf / (e.WarpsPerCTA * 1)
	if rowsPerWarp < 1 {
		rowsPerWarp = 1
	}
	refShmBase := uint32((bf + 1) * (bf + 2) * 4)
	for r := 0; r < rowsPerWarp; r++ {
		row := uint32(e.Warp*rowsPerWarp + r)
		for c := uint32(0); c < cols; c++ {
			b.LDG(rRef, rIdx3, kgen.Coalesced(needleRefBase+(by+row)*needleRowPitch+(bx+c*lanes)*4, 4))
			b.STS(rRef, rIdx0, kgen.Coalesced(refShmBase+row*uint32(bf)*4+c*lanes*4, 4))
		}
	}
	b.Bar()

	// Wavefront over the subblock: 2*BF-1 anti-diagonals. Each step every
	// thread reads its north/west/northwest neighbours from shared memory,
	// the reference cell, computes the DP max, and stores its cell. The
	// anti-diagonal walks down one row per lane, a scatter the unified
	// design must coalesce onto 8 cluster ports instead of 32 banks.
	// Diagonal stride: one padded row down, one column left = BF+1 words,
	// co-prime with the 32-bank layout.
	diagStride := uint32(bf+2)*4 - 4
	for step := 0; step < 2*bf-1; step++ {
		base := (uint32(step) % uint32(bf)) * uint32(bf+2) * 4
		b.ALU(rIdx1, rIdx2, rIdx3) // advance the diagonal indices
		b.ALU(rIdx2, rIdx1)
		b.LDS(rN, rIdx1, kgen.CoalescedMod(base, diagStride, shmCells))
		b.LDS(rW, rIdx1, kgen.CoalescedMod(base+4, diagStride, shmCells))
		b.LDS(rNW, rIdx1, kgen.CoalescedMod(base+8, diagStride, shmCells))
		b.LDS(rRef, rIdx2, kgen.CoalescedMod(refShmBase+base, 4, shmCells*2))
		// The Rodinia cell body: boundary clamps, three candidate scores,
		// running max, and traceback bookkeeping — a dozen ALU ops per
		// cell that make needle compute- rather than bandwidth-heavy.
		b.ALU(rTmp, rN, rRef)
		b.ALU(rMax, rW, rNW)
		r1 := next()
		r2 := next()
		r3 := next()
		b.ALU(r1, rTmp, rMax)
		b.ALU(r2, r1, rN)
		b.ALU(r3, r2, rW)
		b.ALU(rTmp, r3, rRef)
		b.ALU(r2, rTmp, r1)
		b.ALU(rMax, r2, r3)
		b.ALU(r1, rMax, rTmp)
		b.ALU(r3, r1, r2)
		b.ALU(rMax, r3, rMax)
		b.STS(rMax, rIdx1, kgen.CoalescedMod(base+12, diagStride, shmCells))
		b.Bar()
	}

	// Write the finished subblock back, row by row (coalesced).
	for r := 0; r < rowsPerWarp; r++ {
		row := uint32(e.Warp*rowsPerWarp + r)
		for c := uint32(0); c < cols; c++ {
			rv := next()
			b.LDS(rv, rIdx0, kgen.Coalesced(row*uint32(bf+2)*4+c*lanes*4, 4))
			b.STG(rv, rIdx3, kgen.Coalesced(origin+row*needleRowPitch+c*lanes*4, 4))
		}
	}
}

// stoKernel is StoreGPU (GPGPU-Sim suite [2]): sliding-window MD5-like
// hashing performed almost entirely out of shared memory. The kernel
// stages its input chunk in the scratchpad, then makes many passes of
// shared loads, hash arithmetic, and shared stores before writing digests
// back. Re-reads of the global input give it the paper's 3.95x uncached
// DRAM blowup while a 64 KB cache already captures everything.
var stoKernel = register(&Kernel{
	Name:              "sto",
	Suite:             "GPGPU-Sim",
	Category:          SharedLimited,
	Description:       "StoreGPU sliding-window hashing in scratchpad",
	RegsNeeded:        33,
	ThreadsPerCTA:     128,
	SharedBytesPerCTA: 16256, // 127 B/thread (Table 1)
	GridCTAs:          28,
	Emit:              emitSto,
})

func emitSto(b *kgen.Builder, e *Env) {
	// Register map (33): r0-r3 addressing, r4-r11 hash state (long lived),
	// r12-r27 message schedule words (medium lived), r28-r32 temps.
	const stateBase, schedBase, tmpBase = 4, 12, 28
	chunk := e.WarpBase(4096) % (1 << 22)
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 0)
	b.ALU(3, 1, 2)
	for i := 0; i < 8; i++ {
		b.ALU(uint8(stateBase + i)) // init hash state
	}
	// Stage the input chunk into shared memory (coalesced).
	warpShm := uint32(e.Warp) * 1024
	// Stage with three loads in flight so DRAM latency overlaps (the
	// real kernel unrolls its staging loop).
	for i := uint32(0); i < 6; i += 3 {
		b.LDG(28, 0, kgen.Coalesced(stoInputBase+chunk+i*128, 4))
		b.LDG(29, 0, kgen.Coalesced(stoInputBase+chunk+(i+1)*128, 4))
		b.LDG(30, 0, kgen.Coalesced(stoInputBase+chunk+(i+2)*128, 4))
		b.STS(28, 1, kgen.Coalesced(warpShm+i*128, 4))
		b.STS(29, 1, kgen.Coalesced(warpShm+(i+1)*128, 4))
		b.STS(30, 1, kgen.Coalesced(warpShm+(i+2)*128, 4))
	}
	b.Bar()
	// Hash rounds over the staged window: the kernel's time is dominated
	// by scratchpad-resident arithmetic, which is why STO performs well
	// even at low thread counts (Section 3.3.2).
	for round := 0; round < 96; round++ {
		w := uint8(schedBase + round%16)
		b.ALU(1, 2, 3) // window pointer follows the hash state
		b.ALU(2, 1)
		b.LDS(w, 1, kgen.Coalesced(warpShm+uint32(round%8)*128, 4))
		t1 := uint8(tmpBase + round%4)
		t2 := uint8(tmpBase + (round+1)%4)
		s := uint8(stateBase + round%8)
		b.ALU(t1, w, s)
		b.ALU(t2, t1, uint8(schedBase+(round+9)%16))
		b.ALU(s, t2, uint8(stateBase+(round+5)%8))
		b.ALU(32, s, t1)
		b.STS(32, 2, kgen.Coalesced(warpShm+uint32((round+4)%8)*128, 4))
	}
	// Second pass re-reads the global input (cache-friendly re-touch).
	for i := uint32(0); i < 4; i++ {
		b.LDG(29, 0, kgen.Coalesced(stoInputBase+chunk+i*256, 8))
		b.ALU(uint8(stateBase+int(i)%8), 29, uint8(stateBase+int(i+1)%8))
	}
	b.Bar()
	// Emit digests.
	for i := 0; i < 2; i++ {
		b.STG(uint8(stateBase+i), 3, kgen.Coalesced(stoOutputBase+e.WarpBase(256)+uint32(i)*128, 4))
	}
}

// luKernel is LU decomposition (Rodinia): shared-memory tiles of the
// active submatrix with repeated global re-reads of pivot rows. Its
// working set (~208 KB) sits between the 64 KB baseline cache and the
// 256 KB the unified design can offer, giving the Table 1 DRAM profile
// (1.94 / 1.46 / 1.0).
var luKernel = register(&Kernel{
	Name:              "lu",
	Suite:             "Rodinia",
	Category:          SharedLimited,
	Description:       "LU decomposition with shared-memory tiles",
	RegsNeeded:        20,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 24576, // 96 B/thread (Table 1)
	GridCTAs:          28,
	Emit:              emitLU,
})

func emitLU(b *kgen.Builder, e *Env) {
	// Register map (20): r0-r3 addressing, r4-r7 pivot row cache,
	// r8-r15 tile accumulators, r16-r19 temps.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	b.ALU(3, 2)
	for i := 0; i < 8; i++ {
		b.ALU(uint8(8 + i))
	}
	warpShm := uint32(e.Warp) * 3072
	stream := e.WarpBase(4096)
	tile := e.WarpBase(2048) % luMatrixBytes
	for outer := 0; outer < 10; outer++ {
		// Pivot rows: every CTA re-reads the active pivot panel as
		// elimination proceeds — cacheable reuse beyond 64 KB.
		pivot := (uint32(outer) * 14848) % luPivotBytes
		b.ALU(0, 3, 2) // advance the pivot/tile pointers
		b.ALU(1, 0)
		b.ALU(2, 1)
		b.ALU(3, 2)
		b.LDG(4, 0, kgen.Coalesced(luMatrixBase+pivot, 4))
		b.LDG(6, 1, kgen.Coalesced(0x2000_0000+stream+uint32(outer)*384, 4))
		b.LDG(5, 0, kgen.Coalesced(luMatrixBase+(pivot+8192)%luPivotBytes, 4))
		b.ALU(7, 4, 6)
		b.ALU(5, 5, 7)
		b.STS(4, 2, kgen.Coalesced(warpShm, 4))
		b.STS(6, 2, kgen.Coalesced(warpShm+1024, 4))
		b.Bar()
		// Elimination arithmetic dominates: LU is compute bound once its
		// pivot panel is resident.
		for inner := 0; inner < 24; inner++ {
			acc := uint8(8 + (outer*24+inner)%8)
			b.LDS(16, 2, kgen.CoalescedMod(warpShm+uint32(inner)*256, 4, 24576))
			b.LDS(17, 2, kgen.CoalescedMod(warpShm+1024+uint32(inner)*128, 4, 24576))
			// Wide elimination arithmetic: mostly independent ops (real
			// LU row updates have abundant ILP), with one accumulation.
			b.ALU(18, 16, 17)
			b.ALU(19, 16, 5)
			b.ALU(acc, acc, 18)
			b.ALU(18, 17, 5)
			b.ALU(19, 19, 16)
			b.ALU(acc, acc, 19)
			b.ALU(18, 16, 17)
			b.ALU(19, 17, 5)
			if inner%2 == 1 {
				b.STS(19, 3, kgen.CoalescedMod(warpShm+2048+uint32(inner)*128, 4, 24576))
			}
		}
		b.Bar()
	}
	for i := 0; i < 4; i++ {
		b.STG(uint8(8+i), 3, kgen.Coalesced(luMatrixBase+(tile+uint32(i)*128)%luMatrixBytes, 4))
	}
}
