// This file documents the benchmark catalog; the registry itself is built
// by the per-category definition files.
//
// The 26 kernels and their Table 1 characteristics:
//
//	name               suite        regs  shm B/thr  behaviour
//	-----------------  -----------  ----  ---------  -------------------------------------------
//	needle             Rodinia        18      ~280   DP wavefront in scratchpad tiles (BF 16/32/64)
//	sto                GPGPU-Sim      33       127   scratchpad-resident sliding-window hashing
//	lu                 Rodinia        20        96   tiled elimination, cacheable pivot panel
//	mummer             Rodinia        21         0   divergent suffix-tree walk (masked lanes)
//	bfs                Rodinia         9         0   frontier expansion, tiered irregular gathers
//	backprop           Rodinia        17         2   weight-window reuse + input streams
//	matrixmul          CUDA SDK       17         8   tiled matmul, B-matrix cache reuse
//	nbody              CUDA SDK       23         0   broadcast body sweep, extreme line reuse
//	vectoradd          CUDA SDK        9         0   pure streaming (coalescing-loss showcase)
//	srad               Rodinia        18        24   two-pass 5-point stencil, 160 KB set
//	dgemm              MAGMA          57        66   4x4 register blocking + scratchpad tiles
//	pcr                Zhang'10       33        20   cyclic reduction, 176 KB coefficient reuse
//	bicubic            CUDA SDK       33         0   texture taps, cache-insensitive
//	hwt                GPGPU-Sim      35        23   register-resident wavelet pyramid
//	ray                GPGPU-Sim      42         0   divergent BVH walk, deep ray state
//	hotspot            Rodinia        22        12   stencil over a 24 KB grid
//	recursivegaussian  CUDA SDK       23         2   register-resident IIR filter
//	sad                Parboil        31         0   motion estimation, grouped accumulators
//	scalarprod         CUDA SDK       18        16   dot products + scratchpad reduction
//	sgemv              MAGMA          14         4   row streams, 16 KB vector reuse
//	sobolqrng          CUDA SDK       12         2   QRNG, 4 KB direction tables
//	aes                GPGPU-Sim      28        24   scratchpad T-box lookups (scattered)
//	dct8x8             CUDA SDK       26         0   register butterfly over streamed blocks
//	dwthaar1d          CUDA SDK       14         8   per-level butterflies + scratchpad shuffle
//	lps                GPGPU-Sim      15        19   3D Laplace stencil with scratchpad tiles
//	nn                 GPGPU-Sim      13         0   8 KB weight matrix, 20x uncached blowup
//
// Category membership (Table 1 groups): shared-memory limited {needle,
// sto, lu}; cache limited {mummer, bfs, backprop, matrixmul, nbody,
// vectoradd, srad}; register limited {dgemm, pcr, bicubic, hwt, ray};
// balanced/minimal {the rest}. The Figure 9 benefit set is {needle, lu,
// mummer, bfs, srad, dgemm, pcr, ray}; all others form the Figure 7 set.
package workloads
