package workloads

import (
	"repro/internal/isa"
	"repro/internal/kgen"
)

const (
	dgemmABase   uint32 = 0
	dgemmBBase   uint32 = 0x2000_0000
	dgemmCBase   uint32 = 0x4000_0000
	pcrCoefBytes uint32 = 176 << 10 // coefficient tables: reuse beyond 64 KB
	pcrStreamIn  uint32 = 0x2000_0000
	pcrOutBase   uint32 = 0x4000_0000
	hwtInBase    uint32 = 0
	hwtOutBase   uint32 = 0x4000_0000
	raySceneHot  uint32 = 32 << 10 // upper BVH levels: fit the baseline cache
	rayMidBase   uint32 = 0x2800_0000
	rayMidBytes  uint32 = 160 << 10 // mid-tree nodes
	rayColdBase  uint32 = 0x6000_0000
	rayColdBytes uint32 = 32 << 20 // leaf geometry
	rayFrameBase uint32 = 0x4000_0000
	bicubicOut   uint32 = 0x4000_0000
)

// dgemmKernel is the MAGMA double-precision GEMM: 36 accumulator registers
// (a 6x6 register block) plus tile pointers demand 57 registers per thread
// — the largest register appetite in Table 1 — and 16.6 KB of shared
// memory per CTA for the A and B tiles. At 18 or 24 registers the
// accumulator block thrashes, reproducing the paper's spill curve (1.42 /
// 1.23 / 1.01 / 1.0 / 1.0).
var dgemmKernel = register(&Kernel{
	Name:              "dgemm",
	Suite:             "MAGMA",
	Category:          RegisterLimited,
	Description:       "double-precision matrix multiply with 6x6 register blocking",
	RegsNeeded:        57,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 17024, // 66.5 KB at full occupancy (Table 1)
	GridCTAs:          20,
	Emit:              emitDGEMM,
})

func emitDGEMM(b *kgen.Builder, e *Env) {
	// Register map (57): r0-r15 the hot 4x4 accumulator block (live across
	// the whole kernel), r16-r35 cold setup state (tile descriptors,
	// prefetch pointers — written at entry, folded in at exit), r36-r43
	// A/B fragments from shared memory, r44-r51 addressing, r52-r56 temps.
	// The hot-loop window (accumulators + fragments + two pointers) is
	// about 26 registers: a 32-register allocation barely spills, 24
	// thrashes mildly and 18 badly — the Table 1 dgemm spill curve.
	const accN, coldBase, fragBase, addrBase, tmpBase = 16, 16, 36, 44, 52
	for i := 0; i < 8; i++ {
		b.ALU(uint8(addrBase + i))
	}
	for i := 0; i < accN; i++ {
		b.ALU(uint8(i)) // zero the accumulators
	}
	for i := 0; i < 20; i++ {
		b.ALU(uint8(coldBase + i)) // tile descriptors and edge state
	}
	b.ALU(tmpBase+2, addrBase+5)
	b.ALU(tmpBase+3, addrBase+6)
	b.ALU(tmpBase+4, addrBase+7)
	warpShm := uint32(e.Warp) * 2128
	for kt := 0; kt < 14; kt++ {
		// Stage A and B tiles into shared memory (coalesced streams; the
		// big matrices have no cross-CTA reuse at this scale).
		aOff := e.WarpBase(32768) + uint32(kt)*2048
		bOff := e.WarpBase(32768) + uint32(kt)*2048 + 1024
		b.ALU(addrBase, addrBase+1, addrBase+2) // advance tile pointers
		b.ALU(addrBase+1, addrBase)
		b.LDG(tmpBase, addrBase, kgen.Coalesced(dgemmABase+aOff, 8))
		b.LDG(tmpBase+1, addrBase+1, kgen.Coalesced(dgemmBBase+bOff, 8))
		b.STS(tmpBase, addrBase+2, kgen.CoalescedMod(warpShm, 8, 17024))
		b.STS(tmpBase+1, addrBase+3, kgen.CoalescedMod(warpShm+1024, 8, 17024))
		b.Bar()
		b.ALU(addrBase+2, addrBase)
		b.ALU(addrBase+3, addrBase+2)
		// Inner product step: fragments are consumed right after they
		// load (software-pipelined, so they live in the ORF, not the MRF).
		for i := 0; i < 2; i++ {
			b.LDS(uint8(fragBase+4+i), addrBase+3, kgen.CoalescedMod(warpShm+1024+uint32(i)*160, 8, 17024))
		}
		for j := 0; j < 4; j++ {
			b.LDS(uint8(fragBase+j), addrBase+2, kgen.CoalescedMod(warpShm+uint32(j)*160, 8, 17024))
			for i := 0; i < 4; i++ {
				acc := uint8(i*4 + j)
				b.ALU(acc, acc, uint8(fragBase+j))
			}
		}
		b.ALU(uint8(fragBase+6), tmpBase, fragBase)
		b.ALU(uint8(fragBase+7), tmpBase+1, fragBase+1)
		b.Bar()
	}
	// Fold the cold state into the results and write the block out.
	for i := 0; i < 20; i++ {
		b.ALU(uint8(i%accN), uint8(i%accN), uint8(coldBase+i))
	}
	b.ALU(0, 0, tmpBase+2)
	b.ALU(1, 1, tmpBase+3)
	b.ALU(2, 2, tmpBase+4)
	for i := 0; i < accN; i += 2 {
		b.STG(uint8(i), addrBase+4, kgen.Coalesced(dgemmCBase+e.WarpBase(16384)+uint32(i)*256, 8))
	}
}

// pcrKernel is parallel cyclic reduction for tridiagonal systems [26]:
// log(n) communication-heavy steps, each streaming system coefficients and
// exchanging neighbours through shared memory. The shared coefficient
// tables (~176 KB) reward caches beyond the 64 KB baseline (Table 1:
// 2.88 / 1.29 / 1.0).
var pcrKernel = register(&Kernel{
	Name:              "pcr",
	Suite:             "Zhang et al. [26]",
	Category:          RegisterLimited,
	Description:       "parallel cyclic reduction tridiagonal solver",
	RegsNeeded:        33,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 5120, // 20 B/thread (Table 1)
	GridCTAs:          32,
	Emit:              emitPCR,
})

func emitPCR(b *kgen.Builder, e *Env) {
	// Register map (33): r0-r3 addressing, r4-r12 the three coefficient
	// triples (a,b,c for current/left/right), r13-r24 reduction state
	// (long lived across steps), r25-r32 temps.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	b.ALU(3, 2)
	for i := 0; i < 12; i++ {
		b.ALU(uint8(13 + i))
	}
	warpShm := uint32(e.Warp) * 640
	for step := 0; step < 8; step++ {
		// Stream this step's coefficients; the table region is shared by
		// all CTAs and revisited every step.
		coef := (e.WarpBase(2048) + uint32(step)*22528) % pcrCoefBytes
		b.ALU(0, 3, 2) // advance the coefficient pointers
		b.ALU(1, 0)
		b.ALU(2, 1)
		b.ALU(3, 2)
		b.LDG(4, 0, kgen.Coalesced(coef, 4))
		b.LDG(5, 0, kgen.Coalesced((coef+4096)%pcrCoefBytes, 4))
		b.LDG(6, 0, kgen.Coalesced((coef+8192)%pcrCoefBytes, 4))
		b.LDG(7, 1, kgen.Coalesced(pcrStreamIn+e.WarpBase(8192)+uint32(step)*1024, 4))
		// Neighbour exchange through the scratchpad.
		b.STS(4, 2, kgen.CoalescedMod(warpShm, 4, 5120))
		b.STS(5, 2, kgen.CoalescedMod(warpShm+256, 4, 5120))
		b.Bar()
		b.LDS(8, 3, kgen.CoalescedMod(warpShm+4, 4, 5120))
		b.LDS(9, 3, kgen.CoalescedMod(warpShm+260, 4, 5120))
		// Reduction arithmetic: alpha/beta elimination.
		t := uint8(25 + step%8)
		s1 := uint8(13 + step%12)
		s2 := uint8(13 + (step+3)%12)
		s3 := uint8(13 + (step+6)%12)
		s4 := uint8(13 + (step+9)%12)
		b.ALU(10, 4, 8)
		b.ALU(11, 5, 9)
		b.ALU(12, 6, 7)
		b.SFU(t, 10) // reciprocal
		b.ALU(s1, s1, t)
		b.ALU(uint8(25+(step+1)%8), 11, 12)
		b.ALU(s2, s2, uint8(25+(step+1)%8))
		b.ALU(uint8(25+(step+2)%8), s1, s2)
		b.ALU(s3, s3, s1)
		b.ALU(s4, s4, uint8(25+(step+2)%8))
		b.ALU(uint8(25+(step+3)%8), s3, s4)
		b.Bar()
	}
	b.STG(13, 3, kgen.Coalesced(pcrOutBase+e.WarpBase(512), 4))
	b.STG(14, 3, kgen.Coalesced(pcrOutBase+e.WarpBase(512)+128, 4))
}

// bicubicKernel is the CUDA SDK bicubic texture filtering demo: four
// texture taps and heavy weight arithmetic per pixel. Texture fetches use
// the dedicated sampler path, so its DRAM traffic is cache-insensitive
// (Table 1: 1.0 / 1.0 / 1.0) while spills appear below 33 registers.
var bicubicKernel = register(&Kernel{
	Name:          "bicubic",
	Suite:         "CUDA SDK",
	Category:      RegisterLimited,
	Description:   "bicubic texture filtering (4 texture taps/pixel)",
	RegsNeeded:    33,
	ThreadsPerCTA: 256,
	GridCTAs:      20,
	Emit:          emitBicubic,
})

func emitBicubic(b *kgen.Builder, e *Env) {
	// Register map (33): r0-r2 addressing, r3-r6 texel values, r7-r22
	// filter weights and pixel state (long lived), r23-r32 temps.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	for i := 0; i < 16; i++ {
		b.ALU(uint8(7 + i))
	}
	for px := 0; px < 10; px++ {
		base := e.WarpBase(16384) + uint32(px)*1024
		b.ALU(0, 1, 2) // advance the sample coordinates
		b.ALU(2, 0)
		for tap := 0; tap < 4; tap++ {
			b.TEX(uint8(3+tap), 0, kgen.Coalesced(base+uint32(tap)*256, 8))
		}
		t1 := uint8(23 + px%10)
		b.SFU(t1, 3)
		b.ALU(uint8(23+(px+1)%10), 4, 5)
		// All sixteen filter weights stay live; each pixel combines four.
		for i := 0; i < 4; i++ {
			w := uint8(7 + (px*4+i)%16)
			b.ALU(w, w, uint8(3+i))
			b.ALU(uint8(23+(px+i+2)%10), w, t1)
		}
		b.ALU(uint8(7+(px*4)%16), uint8(7+(px*4+1)%16), uint8(23+(px+1)%10))
		b.STG(uint8(7+px%16), 2, kgen.Coalesced(bicubicOut+e.WarpBase(4096)+uint32(px)*128, 4))
	}
}

// hwtKernel is the Haar wavelet transform (GPGPU-Sim suite): almost pure
// register arithmetic over streamed data with a small scratchpad shuffle.
// 35 registers of filter state spill only slightly even at 18 (Table 1:
// 1.04 across the sweep).
var hwtKernel = register(&Kernel{
	Name:              "hwt",
	Suite:             "GPGPU-Sim",
	Category:          RegisterLimited,
	Description:       "Haar wavelet transform (register-resident filter state)",
	RegsNeeded:        35,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 5888, // 23 B/thread
	GridCTAs:          24,
	Emit:              emitHWT,
})

func emitHWT(b *kgen.Builder, e *Env) {
	// Register map (35): r0-r2 addressing, r3-r4 inputs, r5-r16 the live
	// wavelet level (hot), r17-r28 coarse-level coefficients (written
	// early, folded in at the end: cold), r29-r34 temps. The hot window
	// is ~14 registers, giving hwt its nearly flat Table 1 spill curve.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	for i := 0; i < 16; i++ {
		b.ALU(uint8(13 + i))
	}
	warpShm := uint32(e.Warp) * 736
	for blk := 0; blk < 6; blk++ {
		b.ALU(0, 1, 2) // advance the block pointers
		b.ALU(1, 0)
		b.ALU(2, 1)
		b.LDG(3, 0, kgen.Coalesced(hwtInBase+e.WarpBase(8192)+uint32(blk)*256, 4))
		b.LDG(4, 0, kgen.Coalesced(hwtInBase+e.WarpBase(8192)+uint32(blk)*256+128, 4))
		// Butterfly levels: each level writes a fresh span of pyramid
		// registers from the previous level.
		for lv := 0; lv < 4; lv++ {
			p := uint8(5 + (blk*4+lv)%8)
			q := uint8(5 + (blk*4+lv+2)%8)
			t := uint8(29 + (blk*4+lv)%6)
			b.ALU(t, 3, 4)
			b.ALU(p, t, q)
			b.ALU(uint8(29+(blk*4+lv+1)%6), p, t)
		}
		b.STS(5, 1, kgen.CoalescedMod(warpShm+uint32(blk)*64, 4, 5888))
		b.Bar()
		b.LDS(29, 2, kgen.CoalescedMod(warpShm+uint32(blk)*64+32, 4, 5888))
		b.ALU(uint8(5+blk%8), 29, 3)
		// Fold two coarse coefficients into this block's output.
		b.ALU(uint8(13+(blk*2)%16), uint8(13+(blk*2)%16), 5)
		b.ALU(uint8(13+(blk*2+1)%16), uint8(13+(blk*2+1)%16), 6)
		b.STG(uint8(5+(blk*4)%8), 2, kgen.Coalesced(hwtOutBase+e.WarpBase(4096)+uint32(blk)*128, 4))
	}
}

// rayKernel is the GPGPU-Sim ray tracer: each thread renders a pixel
// through several reflection bounces, gathering BVH nodes and primitives
// from a scene whose footprint (~224 KB) exceeds the baseline cache. Its
// divergent gathers make cached and uncached DRAM traffic nearly equal
// (Table 1: 1.02 / 1.07 / 1.0).
var rayKernel = register(&Kernel{
	Name:          "ray",
	Suite:         "GPGPU-Sim",
	Category:      RegisterLimited,
	Description:   "recursive ray tracing (divergent BVH walk, deep register state)",
	RegsNeeded:    42,
	ThreadsPerCTA: 256,
	GridCTAs:      20,
	Emit:          emitRay,
})

func emitRay(b *kgen.Builder, e *Env) {
	// Register map (42): r0-r2 addressing, r3-r5 fetched node/primitive,
	// r6-r11 the hot ray core (origin/direction — touched every probe),
	// r12-r17 extended per-pixel state (touched per bounce), r18-r23 the
	// live traversal-stack window, r24-r33 deep stack and shadow-ray
	// state (touched once per pixel: cold), r34-r41 temps. The hot window
	// is ~20 registers, so an 18-register build spills mildly and larger
	// budgets hardly at all (Table 1: 1.18 / 1.11 / 1.08 / 1.05).
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	for i := 0; i < 12; i++ {
		b.ALU(uint8(6 + i))
	}
	for i := 0; i < 10; i++ {
		b.ALU(uint8(24 + i)) // deep stack / shadow state: cold
	}
	// Upper BVH levels are shared by all rays; leaf geometry is a cold
	// tail. Coherent primary rays keep lane pairs on the same node line.
	tiers := []tier{
		{0, raySceneHot, 72},
		{rayMidBase, rayMidBytes, 1},
		{rayColdBase, rayColdBytes, 27},
	}
	for px := 0; px < 3; px++ {
		// All lanes start a fresh pixel; rays terminate at different
		// bounce depths (SIMT divergence).
		b.SetMask(isa.FullMask)
		for bounce := 0; bounce < 3; bounce++ {
			if bounce > 0 {
				// A quarter of the remaining rays miss everything or hit
				// a light and drop out of the warp.
				mask := b.Mask() & ^(uint32(0xFF) << uint(8*(bounce+px)%4*8%24))
				if mask != 0 {
					b.SetMask(mask)
				}
			}
			for probe := 0; probe < 4; probe++ {
				// Divergent BVH descent; the node pointer is recomputed
				// each probe and reads from the LRF.
				b.ALU(0, 3, uint8(6+probe%6))
				reg := pickTier(e, tiers)
				b.LDG(3, 0, kgen.ClusteredRandom(e.Rng, reg.base, reg.size, 2))
				st := uint8(18 + (bounce*2+probe)%6)
				t := uint8(34 + probe%4)
				b.ALU(t, 3, uint8(6+probe%6))
				b.ALU(st, t, uint8(6+(probe+3)%6))
				b.ALU(4, st, t)
				b.ALU(uint8(34+(probe+1)%4), 4, st)
			}
			// Per-bounce state update touches the extended registers.
			ext := uint8(12 + bounce*2%6)
			b.ALU(ext, ext, 4)
			b.ALU(uint8(12+(bounce*2+1)%6), ext, uint8(24+(px*3+bounce)%10))
			// Shade the hit: update the hot ray core.
			b.ALU(1, 4, 5)
			reg := pickTier(e, tiers)
			b.LDG(5, 1, kgen.ClusteredRandom(e.Rng, reg.base, reg.size, 2))
			b.SFU(uint8(38+bounce%4), 5)
			for i := 0; i < 10; i++ {
				h := uint8(6 + i%6)
				b.ALU(h, h, uint8(38+(bounce+i)%4))
				b.ALU(uint8(34+(bounce+i+1)%4), h, uint8(6+(i+2)%6))
			}
		}
		b.STG(6, 2, kgen.Coalesced(rayFrameBase+e.WarpBase(2048)+uint32(px)*128, 4))
	}
}
