package workloads

// tier is one region of a tiered working set: irregular kernels gather
// mostly from a hot region that a modest cache captures, sometimes from a
// mid-size region only larger caches capture, and sometimes from a cold
// region no cache holds. Tier weights are the tuning knob that sets each
// benchmark's Table 1 DRAM profile.
type tier struct {
	base, size uint32
	weight     int
}

// pickTier selects a tier with probability proportional to its weight,
// using the env's deterministic per-warp stream.
func pickTier(e *Env, tiers []tier) tier {
	total := 0
	for _, t := range tiers {
		total += t.weight
	}
	n := int(e.Rng.Uint32N(uint32(total)))
	for _, t := range tiers {
		n -= t.weight
		if n < 0 {
			return t
		}
	}
	return tiers[len(tiers)-1]
}
