package workloads

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
)

func TestRegistryComplete(t *testing.T) {
	// The paper's Table 1 characterizes 26 workloads.
	if got := len(All()); got != 26 {
		names := make([]string, 0, got)
		for _, k := range All() {
			names = append(names, k.Name)
		}
		t.Fatalf("registry has %d kernels, want 26: %v", got, names)
	}
}

func TestTable1Expectations(t *testing.T) {
	// Spot-check the published per-thread requirements (Table 1).
	expect := map[string]struct {
		regs    int
		shmPerT float64
	}{
		"needle":    {18, 264.1},
		"sto":       {33, 127},
		"lu":        {20, 96},
		"mummer":    {21, 0},
		"bfs":       {9, 0},
		"vectoradd": {9, 0},
		"dgemm":     {57, 66.5},
		"pcr":       {33, 20},
		"ray":       {42, 0},
		"hwt":       {35, 23},
		"nn":        {13, 0},
		"aes":       {28, 24},
	}
	for name, want := range expect {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if k.RegsNeeded != want.regs {
			t.Errorf("%s: RegsNeeded = %d, want %d", name, k.RegsNeeded, want.regs)
		}
		got := k.SharedBytesPerThread()
		tol := want.shmPerT * 0.15
		if tol < 1 {
			tol = 1
		}
		if got < want.shmPerT-tol || got > want.shmPerT+tol {
			t.Errorf("%s: shared B/thread = %.1f, want ~%.1f", name, got, want.shmPerT)
		}
	}
	// dgemm's full-occupancy RF demand is the Table 1 maximum: 228 KB.
	dg, _ := ByName("dgemm")
	if rf := dg.RegsNeeded * 4 * config.MaxThreadsPerSM; rf != 228<<10 {
		t.Errorf("dgemm full-occupancy RF = %d, want 228K", rf)
	}
}

// traceFor builds one warp trace with an optional register budget.
func traceFor(k *Kernel, cta, warp, regsAvail int) []isa.WarpInst {
	src := &Source{K: k, RegsAvail: regsAvail, Seed: 7}
	return src.WarpTrace(cta, warp)
}

func TestRegisterDemandMatchesDeclaration(t *testing.T) {
	for _, k := range All() {
		used := make(map[uint8]bool)
		maxReg := -1
		for w := 0; w < k.WarpsPerCTA(); w++ {
			for _, wi := range traceFor(k, 0, w, 0) {
				regs := []isa.Operand{wi.Dst, wi.Srcs[0], wi.Srcs[1], wi.Srcs[2]}
				for _, o := range regs {
					if o.Reg != isa.NoReg {
						used[o.Reg] = true
						if int(o.Reg) > maxReg {
							maxReg = int(o.Reg)
						}
					}
				}
			}
		}
		if len(used) != k.RegsNeeded || maxReg+1 != k.RegsNeeded {
			t.Errorf("%s: uses %d distinct regs (max r%d), declares %d",
				k.Name, len(used), maxReg, k.RegsNeeded)
		}
	}
}

func TestSharedAddressesWithinAllocation(t *testing.T) {
	for _, k := range All() {
		for w := 0; w < k.WarpsPerCTA(); w++ {
			for i, wi := range traceFor(k, 1, w, 0) {
				if !wi.Op.IsShared() {
					continue
				}
				if k.SharedBytesPerCTA == 0 {
					t.Errorf("%s: shared access but no shared allocation", k.Name)
					break
				}
				for l := 0; l < isa.WarpSize; l++ {
					if wi.Mask&(1<<uint(l)) == 0 {
						continue
					}
					if int(wi.Addrs[l])+4 > k.SharedBytesPerCTA {
						t.Errorf("%s warp %d inst %d: shared addr %d beyond CTA allocation %d",
							k.Name, w, i, wi.Addrs[l], k.SharedBytesPerCTA)
						break
					}
				}
			}
		}
	}
}

func TestKernelsWithSharedMemoryUseIt(t *testing.T) {
	for _, k := range All() {
		if k.SharedBytesPerCTA == 0 {
			continue
		}
		found := false
		for w := 0; w < k.WarpsPerCTA() && !found; w++ {
			for _, wi := range traceFor(k, 0, w, 0) {
				if wi.Op.IsShared() {
					found = true
					break
				}
			}
		}
		if !found {
			t.Errorf("%s declares %d B of shared memory but never accesses it",
				k.Name, k.SharedBytesPerCTA)
		}
	}
}

func TestBarriersBalancedAcrossCTA(t *testing.T) {
	// Every warp of a CTA must execute the same number of barriers, or
	// the CTA deadlocks.
	for _, k := range All() {
		count := -1
		for w := 0; w < k.WarpsPerCTA(); w++ {
			bars := 0
			for _, wi := range traceFor(k, 0, w, 0) {
				if wi.Op == isa.OpBAR {
					bars++
				}
			}
			if count < 0 {
				count = bars
			} else if bars != count {
				t.Errorf("%s: warp %d has %d barriers, warp 0 has %d", k.Name, w, bars, count)
			}
		}
	}
}

func TestTracesDeterministic(t *testing.T) {
	for _, k := range All() {
		a := traceFor(k, 3, 0, 0)
		b := traceFor(k, 3, 0, 0)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: traces not deterministic", k.Name)
		}
	}
}

func TestSpillBudgetInflatesDynamicInstructions(t *testing.T) {
	// The register-limited group must show a visible dynamic-instruction
	// increase at 18 registers (Table 1 columns 3-7).
	for _, name := range []string{"dgemm", "pcr", "bicubic"} {
		k, _ := ByName(name)
		full := len(traceFor(k, 0, 0, 0))
		squeezed := len(traceFor(k, 0, 0, 18))
		ratio := float64(squeezed) / float64(full)
		if ratio < 1.05 {
			t.Errorf("%s: dyn-inst ratio at 18 regs = %.3f, want noticeable spill overhead", name, ratio)
		}
	}
	// needle avoids spills even at 18 registers (its demand is 18).
	k, _ := ByName("needle")
	if full, squeezed := len(traceFor(k, 0, 0, 0)), len(traceFor(k, 0, 0, 18)); squeezed != full {
		t.Errorf("needle: spills at its declared demand (full=%d squeezed=%d)", full, squeezed)
	}
}

func TestBenefitSetsPartitionRegistry(t *testing.T) {
	benefit := BenefitSet()
	noBenefit := NoBenefitSet()
	if len(benefit) != 8 {
		t.Errorf("BenefitSet has %d kernels, want 8", len(benefit))
	}
	if len(benefit)+len(noBenefit) != len(All()) {
		t.Errorf("benefit (%d) + no-benefit (%d) != all (%d)",
			len(benefit), len(noBenefit), len(All()))
	}
	seen := make(map[string]bool)
	for _, k := range append(benefit, noBenefit...) {
		if seen[k.Name] {
			t.Errorf("%s appears twice", k.Name)
		}
		seen[k.Name] = true
	}
}

func TestCategoriesCoverRegistry(t *testing.T) {
	total := 0
	for _, c := range []Category{SharedLimited, CacheLimited, RegisterLimited, Balanced} {
		ks := Categories(c)
		total += len(ks)
		for _, k := range ks {
			if k.Category != c {
				t.Errorf("%s filed under %v", k.Name, c)
			}
		}
	}
	if total != len(All()) {
		t.Errorf("categories cover %d kernels, registry has %d", total, len(All()))
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("no-such-kernel"); err == nil {
		t.Error("ByName should fail for unknown names")
	}
}

func TestNeedleBlockingFactors(t *testing.T) {
	// Figure 11: shared memory per CTA grows quadratically with BF while
	// CTA threads grow linearly.
	k16, k32, k64 := NeedleKernel(16), NeedleKernel(32), NeedleKernel(64)
	if k16.SharedBytesPerCTA >= k32.SharedBytesPerCTA || k32.SharedBytesPerCTA >= k64.SharedBytesPerCTA {
		t.Error("needle shared memory should grow with BF")
	}
	r32 := float64(k32.SharedBytesPerCTA) / float64(k16.SharedBytesPerCTA)
	if r32 < 3 || r32 > 4.2 {
		t.Errorf("BF 16->32 shared growth = %.2f, want ~quadratic (x3.5)", r32)
	}
	if k64.ThreadsPerCTA != 64 || k32.ThreadsPerCTA != 32 {
		t.Errorf("CTA sizes: bf64=%d bf32=%d", k64.ThreadsPerCTA, k32.ThreadsPerCTA)
	}
	// Full-occupancy shared demand at BF=64 is in the several-hundred-KB
	// range the paper's Figure 11 x-axis shows.
	full := k64.SharedBytesPerCTA * (1024 / k64.ThreadsPerCTA)
	if full < 400<<10 || full > 600<<10 {
		t.Errorf("BF=64 full-occupancy shared = %d KB, want ~520 KB", full>>10)
	}
}

func TestGlobalAddressesAvoidSpillRegion(t *testing.T) {
	for _, k := range All() {
		for _, wi := range traceFor(k, 2, 0, 0) {
			if !wi.Op.IsGlobal() || wi.Addrs == nil || wi.Spill {
				continue
			}
			for l := 0; l < isa.WarpSize; l++ {
				if wi.Addrs[l] >= SpillRegionBase {
					t.Errorf("%s: data address %#x inside the spill region", k.Name, wi.Addrs[l])
					break
				}
			}
		}
	}
}
