package workloads

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/banks"
	"repro/internal/config"
	"repro/internal/isa"
)

// freshSource returns a Source for the named registry kernel.
func freshSource(t *testing.T, name string) *Source {
	t.Helper()
	k, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return &Source{K: k}
}

// TestTraceCacheSharesBacking: two Sources with identical parameters must
// hand out the same backing array — the trace is built once, process-wide.
func TestTraceCacheSharesBacking(t *testing.T) {
	ResetTraceCache()
	a := freshSource(t, "needle").WarpTrace(0, 0)
	b := freshSource(t, "needle").WarpTrace(0, 0)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if &a[0] != &b[0] {
		t.Error("identical sources built the trace twice (distinct backing arrays)")
	}
}

// TestTraceCacheColdVsHot: a cache flush must not change the generated
// instructions — rebuilds are deterministic. (DeepEqual follows the
// Addrs pointers, so this compares full address vectors, not pointers.)
func TestTraceCacheColdVsHot(t *testing.T) {
	ResetTraceCache()
	src := freshSource(t, "mummer")
	_, warps := src.Grid()
	cold := make([][]isa.WarpInst, warps)
	for w := 0; w < warps; w++ {
		cold[w] = src.WarpTrace(0, w)
	}
	ResetTraceCache()
	for w := 0; w < warps; w++ {
		hot := src.WarpTrace(0, w)
		if &hot[0] == &cold[w][0] {
			t.Fatalf("warp %d: flush did not drop the cached entry", w)
		}
		if !reflect.DeepEqual(cold[w], hot) {
			t.Fatalf("warp %d: trace differs after cache flush", w)
		}
	}
}

// TestTraceCacheKeyDistinguishesVariants: kernels that share a registry
// name but differ in blocking factor or register budget must not collide
// in the cache.
func TestTraceCacheKeyDistinguishesVariants(t *testing.T) {
	ResetTraceCache()
	k16 := NeedleKernel(16)
	k64 := NeedleKernel(64)
	t16 := (&Source{K: k16}).WarpTrace(0, 0)
	t64 := (&Source{K: k64}).WarpTrace(0, 0)
	if len(t16) == len(t64) && &t16[0] == &t64[0] {
		t.Fatal("needle BF=16 and BF=64 shared one cache entry")
	}

	full := freshSource(t, "needle").WarpTrace(0, 0)
	k, _ := ByName("needle")
	spilled := (&Source{K: k, RegsAvail: 18}).WarpTrace(0, 0)
	if len(full) == len(spilled) && &full[0] == &spilled[0] {
		t.Fatal("spill-free and regsAvail=18 traces shared one cache entry")
	}
}

// TestTraceCacheConcurrent hammers one kernel's traces and outcome
// tables from 8 goroutines; under -race this proves the cache is safe,
// and the pointer comparison proves each entry was built exactly once.
func TestTraceCacheConcurrent(t *testing.T) {
	ResetTraceCache()
	src := freshSource(t, "needle")
	ctas, warps := src.Grid()
	if ctas > 4 {
		ctas = 4
	}
	const goroutines = 8
	traces := make([][]*isa.WarpInst, goroutines) // per-goroutine first-element pointers
	outs := make([][]*banks.Outcome, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := &Source{K: src.K} // distinct Source, same identity
			for c := 0; c < ctas; c++ {
				for w := 0; w < warps; w++ {
					tr := s.WarpTrace(c, w)
					traces[g] = append(traces[g], &tr[0])
					out := s.WarpOutcomes(c, w, config.Unified, false)
					if len(out) != len(tr) {
						t.Errorf("goroutine %d: %d outcomes for %d instructions", g, len(out), len(tr))
						return
					}
					outs[g] = append(outs[g], &out[0])
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(traces[0], traces[g]) {
			t.Errorf("goroutine %d saw different trace backing arrays than goroutine 0", g)
		}
		if !reflect.DeepEqual(outs[0], outs[g]) {
			t.Errorf("goroutine %d saw different outcome backing arrays than goroutine 0", g)
		}
	}
}

// TestWarpOutcomesMatchEvaluate is the differential check behind the
// timing core's fast path: for every bank-model variant, the memoized
// outcome table must equal a fresh Model's per-instruction evaluation.
func TestWarpOutcomesMatchEvaluate(t *testing.T) {
	ResetTraceCache()
	for _, name := range []string{"needle", "dgemm", "bfs"} {
		src := freshSource(t, name)
		insts := src.WarpTrace(0, 0)
		for _, design := range []config.Design{config.Partitioned, config.Unified, config.FermiLike} {
			for _, aggressive := range []bool{false, true} {
				got := src.WarpOutcomes(0, 0, design, aggressive)
				m := banks.New(design)
				if aggressive {
					m = banks.NewAggressive(design)
				}
				for i := range insts {
					want := m.Evaluate(&insts[i])
					if got[i] != want {
						t.Fatalf("%s design=%v aggressive=%v inst %d: memoized %+v, evaluated %+v",
							name, design, aggressive, i, got[i], want)
					}
				}
			}
		}
	}
}

// TestTraceCacheLimitFlush: exceeding the byte budget flushes the cache,
// and rebuilt traces still match what in-flight holders kept.
func TestTraceCacheLimitFlush(t *testing.T) {
	ResetTraceCache()
	prev := SetTraceCacheLimit(1) // flush on every charge
	defer SetTraceCacheLimit(prev)
	src := freshSource(t, "needle")
	first := src.WarpTrace(0, 0)
	second := src.WarpTrace(0, 0)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("rebuild after flush changed the trace")
	}
	SetTraceCacheLimit(prev)
	ResetTraceCache()
	if TraceCacheBytes() != 0 {
		t.Fatalf("TraceCacheBytes = %d after reset, want 0", TraceCacheBytes())
	}
}

// TestTraceCacheSnapshot asserts the exported statistics track lookups,
// builds, bytes, and flushes. Counters are process-monotonic, so the
// test measures deltas around its own traffic.
func TestTraceCacheSnapshot(t *testing.T) {
	ResetTraceCache()
	before := TraceCacheSnapshot()
	src := freshSource(t, "needle")
	src.WarpTrace(0, 0)                      // cold: one build
	src.WarpTrace(0, 0)                      // hot: no build
	freshSource(t, "needle").WarpTrace(0, 0) // hot via a second Source
	after := TraceCacheSnapshot()
	if got := after.Lookups - before.Lookups; got != 3 {
		t.Errorf("lookups delta = %d, want 3", got)
	}
	if got := after.Builds - before.Builds; got != 1 {
		t.Errorf("builds delta = %d, want 1", got)
	}
	if after.Bytes <= 0 {
		t.Errorf("bytes = %d, want > 0 after a build", after.Bytes)
	}
	if after.Limit <= 0 {
		t.Errorf("limit = %d, want > 0", after.Limit)
	}
	if hr := (TraceCacheStats{Lookups: 4, Builds: 1}).HitRatio(); hr != 0.75 {
		t.Errorf("HitRatio = %v, want 0.75", hr)
	}
	if hr := (TraceCacheStats{}).HitRatio(); hr != 0 {
		t.Errorf("zero-value HitRatio = %v, want 0", hr)
	}
	flushesBefore := after.Flushes
	ResetTraceCache()
	if got := TraceCacheSnapshot().Flushes - flushesBefore; got != 1 {
		t.Errorf("flushes delta = %d, want 1", got)
	}
	if got := TraceCacheSnapshot().Bytes; got != 0 {
		t.Errorf("bytes after reset = %d, want 0", got)
	}
}
