// Trace memoization: every simulation of a kernel replays the same
// per-warp instruction streams, because a warp's trace depends only on
// the kernel (name and blocking factor), the physical register budget
// (which decides spill code), and the workload seed (which drives the
// divergent-gather RNG streams) — never on the memory configuration the
// timing model sweeps. The experiment drivers therefore regenerate each
// distinct trace hundreds of times while sweeping capacities, and the
// kgen builder (register allocation, operand placement, address
// generation) dominated both CPU and allocation profiles.
//
// This file makes the amortization structural: a process-wide,
// concurrency-safe cache keyed by (kernel name, BF, regsAvail, seed)
// builds each per-warp stream exactly once and hands the same immutable
// slice to every replay. The timing core only reads traces (the warp's
// PC and scoreboard live in dispatch.Warp, not in the instructions), so
// sharing one backing array across concurrently simulated SMs is safe;
// a -race fan-out test and the golden-table suite pin that down.
//
// Alongside each warp trace the cache memoizes the banks.Outcome of
// every instruction per (design, aggressive-scatter) variant: the bank
// conflict outcome is a pure function of the instruction and the design,
// so unprobed timing runs can replay it as a table lookup instead of
// re-evaluating the conflict model per issue. Probed runs keep calling
// banks.Evaluate (the heatmap needs the model's scratch state); a
// differential test asserts lookup and evaluation never disagree.
//
// Memory is bounded: the cache tracks an approximate byte footprint and
// flushes itself entirely when it would exceed the budget (entries are
// rebuilt on demand; in-flight simulations keep their slices). Flushing
// never affects results — only whether a trace is rebuilt.
package workloads

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/banks"
	"repro/internal/config"
	"repro/internal/isa"
)

// traceKey identifies one distinct trace family. Kernel identity is
// (Name, BF): registry kernels have unique names, and the Figure 11
// needle variants share a name but differ in blocking factor.
type traceKey struct {
	name      string
	bf        int
	regsAvail int
	seed      uint64
}

// outcomeVariants is the number of (design, aggressive) bank-model
// variants an instruction's conflict outcome can be memoized under.
const outcomeVariants = 2 * 3 // config.Design values x {simple, aggressive}

// outcomeIndex maps a bank-model variant to its memoization slot, or -1
// for designs outside the known enum (defensively uncached).
func outcomeIndex(design config.Design, aggressive bool) int {
	if int(design) >= 3 {
		return -1
	}
	i := int(design) * 2
	if aggressive {
		i++
	}
	return i
}

// warpEntry memoizes one warp's instruction stream and its per-variant
// bank outcomes. Each field is built at most once; the built slices are
// never written again.
type warpEntry struct {
	traceOnce sync.Once
	insts     []isa.WarpInst

	outcomes [outcomeVariants]struct {
		once sync.Once
		out  []banks.Outcome
	}
}

// gridEntry holds one trace family's warps, keyed by (cta, warp). Warps
// are filled lazily so sources that extend the grid (the chip
// simulator's replicated validation source) memoize naturally.
type gridEntry struct {
	mu    sync.Mutex
	warps map[[2]int]*warpEntry
}

func (g *gridEntry) warp(cta, warp int) *warpEntry {
	g.mu.Lock()
	e, ok := g.warps[[2]int{cta, warp}]
	if !ok {
		e = &warpEntry{}
		g.warps[[2]int{cta, warp}] = e
	}
	g.mu.Unlock()
	return e
}

// traceCache is the process-wide cache state. The lookup/build/flush
// counters are monotonic over the process lifetime (a flush does not
// reset them) so long-lived consumers — the simulation service's
// /metrics endpoint — can export rates and hit ratios.
var traceCache = struct {
	mu      sync.RWMutex
	grids   map[traceKey]*gridEntry
	bytes   atomic.Int64
	limit   atomic.Int64
	lookups atomic.Int64
	builds  atomic.Int64
	flushes atomic.Int64
}{grids: make(map[traceKey]*gridEntry)}

// TraceCacheStats is a point-in-time snapshot of the process-wide trace
// cache, exported for observability (cmd/smserve's /metrics).
type TraceCacheStats struct {
	// Lookups counts warp-trace requests; Builds counts the subset that
	// had to construct the trace. Lookups - Builds is the hit count.
	Lookups int64 `json:"lookups"`
	Builds  int64 `json:"builds"`
	// Flushes counts whole-cache evictions forced by the byte budget
	// (plus explicit ResetTraceCache calls).
	Flushes int64 `json:"flushes"`
	// Bytes is the approximate resident footprint; Limit the budget.
	Bytes int64 `json:"bytes"`
	Limit int64 `json:"limit"`
}

// HitRatio returns the fraction of lookups served without a build, or 0
// before any lookup.
func (s TraceCacheStats) HitRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Lookups-s.Builds) / float64(s.Lookups)
}

// TraceCacheSnapshot returns the cache's current statistics. Counters
// are read individually without a lock: the snapshot is approximate
// under concurrency, like every metrics read.
func TraceCacheSnapshot() TraceCacheStats {
	limit := traceCache.limit.Load()
	if limit == 0 {
		limit = DefaultTraceCacheLimit
	}
	return TraceCacheStats{
		Lookups: traceCache.lookups.Load(),
		Builds:  traceCache.builds.Load(),
		Flushes: traceCache.flushes.Load(),
		Bytes:   traceCache.bytes.Load(),
		Limit:   limit,
	}
}

// DefaultTraceCacheLimit is the default approximate byte budget of the
// trace cache; the full 14-experiment suite stays well inside it.
const DefaultTraceCacheLimit = int64(1) << 31 // 2 GiB

// SetTraceCacheLimit sets the cache's approximate byte budget; reaching
// it flushes the whole cache (entries rebuild on demand). n <= 0
// restores DefaultTraceCacheLimit. It returns the previous limit.
func SetTraceCacheLimit(n int64) int64 {
	if n <= 0 {
		n = DefaultTraceCacheLimit
	}
	return traceCache.limit.Swap(n)
}

// ResetTraceCache empties the trace cache (for tests and long-lived
// processes that want to release memory). Simulations in flight keep
// the slices they already hold.
func ResetTraceCache() {
	traceCache.mu.Lock()
	traceCache.grids = make(map[traceKey]*gridEntry)
	traceCache.bytes.Store(0)
	traceCache.flushes.Add(1)
	traceCache.mu.Unlock()
}

// TraceCacheBytes returns the cache's approximate resident byte count.
func TraceCacheBytes() int64 { return traceCache.bytes.Load() }

// grid returns (creating if needed) the cache entry for key.
func grid(key traceKey) *gridEntry {
	traceCache.mu.RLock()
	g, ok := traceCache.grids[key]
	traceCache.mu.RUnlock()
	if ok {
		return g
	}
	traceCache.mu.Lock()
	g, ok = traceCache.grids[key]
	if !ok {
		g = &gridEntry{warps: make(map[[2]int]*warpEntry)}
		traceCache.grids[key] = g
	}
	traceCache.mu.Unlock()
	return g
}

// charge adds an approximate byte count and flushes the cache when the
// budget is exceeded. The flush drops the whole map — simple, safe
// (entries rebuild deterministically), and rare enough not to matter.
func charge(n int64) {
	limit := traceCache.limit.Load()
	if limit == 0 {
		limit = DefaultTraceCacheLimit
	}
	if traceCache.bytes.Add(n) > limit {
		ResetTraceCache()
	}
}

// traceBytes estimates the resident footprint of a built warp trace.
func traceBytes(insts []isa.WarpInst) int64 {
	n := int64(len(insts)) * int64(unsafe.Sizeof(isa.WarpInst{}))
	for i := range insts {
		if insts[i].Addrs != nil {
			n += int64(unsafe.Sizeof(isa.AddrVec{}))
		}
	}
	return n
}

// key returns the source's trace-cache key.
func (s *Source) key() traceKey {
	return traceKey{name: s.K.Name, bf: s.K.BF, regsAvail: s.RegsAvail, seed: s.Seed}
}

// cachedWarp returns the memoized entry for one warp, building the
// instruction stream on first use.
func (s *Source) cachedWarp(cta, warp int) *warpEntry {
	traceCache.lookups.Add(1)
	e := grid(s.key()).warp(cta, warp)
	e.traceOnce.Do(func() {
		traceCache.builds.Add(1)
		e.insts = s.buildWarpTrace(cta, warp)
		charge(traceBytes(e.insts))
	})
	return e
}

// WarpOutcomes returns the memoized per-instruction bank-conflict
// outcomes of one warp under the given bank-model variant, or nil for a
// design outside the known enum. The returned slice is shared and
// immutable; it is index-aligned with WarpTrace(cta, warp).
func (s *Source) WarpOutcomes(cta, warp int, design config.Design, aggressive bool) []banks.Outcome {
	v := outcomeIndex(design, aggressive)
	if v < 0 {
		return nil
	}
	e := s.cachedWarp(cta, warp)
	slot := &e.outcomes[v]
	slot.once.Do(func() {
		slot.out = banks.Outcomes(design, aggressive, e.insts)
		charge(int64(len(slot.out)) * int64(unsafe.Sizeof(banks.Outcome{})))
	})
	return slot.out
}
