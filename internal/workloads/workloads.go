// Package workloads defines synthetic equivalents of the 26 CUDA
// benchmarks characterized in Table 1 of the paper.
//
// The original evaluation traced real binaries (Rodinia, CUDA SDK, Parboil,
// MAGMA, GPGPU-Sim workloads) through Ocelot. Those binaries and traces are
// not available here, so each benchmark is re-expressed as a kernel
// generator that reproduces the characteristics the paper's study depends
// on: registers per thread to avoid spills, shared memory per CTA and per
// thread, CTA geometry, arithmetic intensity, and — most importantly — the
// memory access pattern (streaming, stencil, tiled with reuse, broadcast
// reuse, or divergent gather) that determines cache behaviour and DRAM
// traffic. Problem sizes are scaled down so a full grid simulates in
// milliseconds, as the paper itself scaled inputs for tractability.
package workloads

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/kgen"
)

// Category is the Table 1 grouping of a workload.
type Category uint8

const (
	// SharedLimited benchmarks want more scratchpad than the baseline has.
	SharedLimited Category = iota
	// CacheLimited benchmarks want a (larger) primary data cache.
	CacheLimited
	// RegisterLimited benchmarks want a larger register file.
	RegisterLimited
	// Balanced benchmarks fit the baseline partitioning.
	Balanced
)

// String names the category as in Table 1.
func (c Category) String() string {
	switch c {
	case SharedLimited:
		return "shared-memory limited"
	case CacheLimited:
		return "cache limited"
	case RegisterLimited:
		return "register limited"
	case Balanced:
		return "balanced / minimal"
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Address-space layout shared by all kernels. Data regions start at 0;
// register spill slots live far above any data so spill traffic and data
// traffic never alias.
const (
	// SpillRegionBase is the global address of thread-local spill space.
	SpillRegionBase uint32 = 0xC000_0000
	// spillBytesPerWarp is one warp's spill footprint: 64 registers x 32
	// lanes x 4 bytes.
	spillBytesPerWarp = isa.MaxRegs * isa.WarpSize * 4
)

// Env carries per-warp generation context into kernel emitters.
type Env struct {
	// CTA and Warp identify the warp within the grid.
	CTA, Warp int
	// WarpsPerCTA is the kernel's CTA size in warps.
	WarpsPerCTA int
	// BF is the blocking factor for kernels that have one (needle).
	BF int
	// Rng is seeded deterministically per (kernel, cta, warp).
	Rng *rand.Rand
}

// GlobalWarp returns the grid-wide warp index.
func (e *Env) GlobalWarp() int { return e.CTA*e.WarpsPerCTA + e.Warp }

// WarpBase returns a per-warp byte offset with the given stride, used to
// give each warp a private slice of a global array.
func (e *Env) WarpBase(stride uint32) uint32 { return uint32(e.GlobalWarp()) * stride }

// Kernel is one benchmark.
type Kernel struct {
	// Name is the benchmark name as it appears in Table 1.
	Name string
	// Suite attributes the original benchmark.
	Suite string
	// Category is the Table 1 grouping.
	Category Category
	// Description summarizes what the original computes.
	Description string

	// RegsNeeded is registers/thread to avoid spills (Table 1, col 2).
	RegsNeeded int
	// ThreadsPerCTA is the CTA size (multiple of 32).
	ThreadsPerCTA int
	// SharedBytesPerCTA is the scratchpad footprint of one CTA.
	SharedBytesPerCTA int
	// GridCTAs is the (scaled) grid size.
	GridCTAs int
	// BF is the default blocking factor, for kernels that have one.
	BF int

	// Emit generates the body of one warp. The builder has spilling and
	// placement configured by the Source; Emit only describes computation.
	Emit func(b *kgen.Builder, e *Env)
}

// Requirements converts the kernel's static needs into the form the §4.5
// allocation algorithm consumes.
func (k *Kernel) Requirements() config.KernelRequirements {
	return config.KernelRequirements{
		RegsPerThread:     k.RegsNeeded,
		SharedBytesPerCTA: k.SharedBytesPerCTA,
		ThreadsPerCTA:     k.ThreadsPerCTA,
	}
}

// WarpsPerCTA returns the CTA size in warps.
func (k *Kernel) WarpsPerCTA() int { return k.ThreadsPerCTA / isa.WarpSize }

// SharedBytesPerThread returns the per-thread scratchpad footprint.
func (k *Kernel) SharedBytesPerThread() float64 {
	if k.ThreadsPerCTA == 0 {
		return 0
	}
	return float64(k.SharedBytesPerCTA) / float64(k.ThreadsPerCTA)
}

// Source adapts a kernel to the simulator's TraceSource interface,
// configuring the register budget (for spill studies) and deterministic
// per-warp seeding.
//
// WarpTrace is memoized process-wide (see tracecache.go): all Sources
// with the same (kernel name, BF, RegsAvail, Seed) share one immutable
// copy of each warp's instruction stream, so capacity sweeps replay a
// trace instead of rebuilding it per configuration point. Callers must
// treat returned traces as read-only.
type Source struct {
	// K is the kernel to run.
	K *Kernel
	// RegsAvail is the per-thread physical register allocation; 0 or
	// >= K.RegsNeeded disables spilling.
	RegsAvail int
	// Seed perturbs the per-warp RNG streams.
	Seed uint64
}

// Grid implements sm.TraceSource.
func (s *Source) Grid() (int, int) { return s.K.GridCTAs, s.K.WarpsPerCTA() }

// WarpTrace implements sm.TraceSource, serving the memoized immutable
// trace (built on first use for this (kernel, RegsAvail, Seed, cta,
// warp) combination).
func (s *Source) WarpTrace(cta, warp int) []isa.WarpInst {
	return s.cachedWarp(cta, warp).insts
}

// buildWarpTrace constructs one warp's trace through kgen, which inserts
// spill code and operand placements. It is deterministic in (kernel,
// RegsAvail, Seed, cta, warp), which is what makes memoization exact.
func (s *Source) buildWarpTrace(cta, warp int) []isa.WarpInst {
	e := &Env{
		CTA:         cta,
		Warp:        warp,
		WarpsPerCTA: s.K.WarpsPerCTA(),
		BF:          s.K.BF,
		Rng:         rand.New(rand.NewPCG(s.Seed^0x9E3779B97F4A7C15, uint64(cta)<<20|uint64(warp))),
	}
	b := kgen.NewBuilder(kgen.Config{
		RegsAvail: s.RegsAvail,
		SpillBase: SpillRegionBase + uint32(e.GlobalWarp()%2048)*spillBytesPerWarp,
	})
	s.K.Emit(b, e)
	return b.Finish()
}

// registry is populated by the kernel definition files.
var registry []*Kernel

// register adds a kernel at package init time.
func register(k *Kernel) *Kernel {
	if k.ThreadsPerCTA%isa.WarpSize != 0 || k.ThreadsPerCTA == 0 {
		panic(fmt.Sprintf("workloads: %s has bad CTA size %d", k.Name, k.ThreadsPerCTA))
	}
	if k.RegsNeeded < 1 || k.RegsNeeded > isa.MaxRegs {
		panic(fmt.Sprintf("workloads: %s has bad register demand %d", k.Name, k.RegsNeeded))
	}
	registry = append(registry, k)
	return k
}

// All returns every benchmark, sorted by name.
func All() []*Kernel {
	out := make([]*Kernel, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName looks a benchmark up by its Table 1 name.
func ByName(name string) (*Kernel, error) {
	for _, k := range registry {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// BenefitSet returns the eight benchmarks of Figure 9 (those that gain
// from unified memory), sorted by name.
func BenefitSet() []*Kernel {
	names := []string{"bfs", "dgemm", "lu", "mummer", "pcr", "ray", "srad", "needle"}
	out := make([]*Kernel, 0, len(names))
	for _, n := range names {
		k, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NoBenefitSet returns the Figure 7 benchmarks (all others), sorted by name.
func NoBenefitSet() []*Kernel {
	benefit := make(map[string]bool)
	for _, k := range BenefitSet() {
		benefit[k.Name] = true
	}
	var out []*Kernel
	for _, k := range All() {
		if !benefit[k.Name] {
			out = append(out, k)
		}
	}
	return out
}

// Categories returns the benchmarks of one Table 1 group, sorted by name.
func Categories(c Category) []*Kernel {
	var out []*Kernel
	for _, k := range All() {
		if k.Category == c {
			out = append(out, k)
		}
	}
	return out
}
