package workloads

import (
	"repro/internal/kgen"
)

// The balanced / minimal-capacity group of Table 1: benchmarks written to
// fit early GPUs. Working sets stay below the 64 KB baseline cache, shared
// footprints are small, and register demand is modest, so these are the
// Figure 7 set: the unified design must neither help nor hurt them by more
// than ~1%.
const (
	hotspotGridBytes uint32 = 24 << 10
	hotspotPower     uint32 = 0x2000_0000
	hotspotOut       uint32 = 0x4000_0000
	rgInBase         uint32 = 0
	rgOutBase        uint32 = 0x4000_0000
	sadRefBytes      uint32 = 32 << 10
	sadFrameBase     uint32 = 0x2000_0000
	sadOutBase       uint32 = 0x4000_0000
	spInBaseA        uint32 = 0
	spInBaseB        uint32 = 0x2000_0000
	spOutBase        uint32 = 0x4000_0000
	sgemvMatBase     uint32 = 0
	sgemvVecBytes    uint32 = 16 << 10
	sgemvVecBase     uint32 = 0x2000_0000
	sgemvOutBase     uint32 = 0x4000_0000
	sobolDirBytes    uint32 = 4 << 10
	sobolOutBase     uint32 = 0x4000_0000
	aesInBase        uint32 = 0
	aesOutBase       uint32 = 0x4000_0000
	dctInBase        uint32 = 0
	dctOutBase       uint32 = 0x4000_0000
	dwtInBase        uint32 = 0
	dwtOutBase       uint32 = 0x4000_0000
	lpsGridBytes     uint32 = 56 << 10
	lpsOutBase       uint32 = 0x4000_0000
	nnWeightBytes    uint32 = 8 << 10
	nnInBase         uint32 = 0x2000_0000
	nnOutBase        uint32 = 0x4000_0000
)

// hotspotKernel is the Rodinia thermal simulation: a 5-point stencil over
// a chip grid that fits the baseline cache.
var hotspotKernel = register(&Kernel{
	Name:              "hotspot",
	Suite:             "Rodinia",
	Category:          Balanced,
	Description:       "thermal simulation stencil over a 48 KB grid",
	RegsNeeded:        22,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 3072, // 12 B/thread
	GridCTAs:          20,
	Emit:              emitHotspot,
})

func emitHotspot(b *kgen.Builder, e *Env) {
	// Register map (22): r0-r2 addressing, r3-r7 stencil points, r8-r9
	// power/temperature, r10-r15 coefficients, r16-r21 temps.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	for i := 0; i < 6; i++ {
		b.ALU(uint8(10 + i))
	}
	const pitch = 1024
	tile := e.WarpBase(1024) % hotspotGridBytes
	for px := 0; px < 12; px++ {
		center := (tile + uint32(px)*128) % hotspotGridBytes
		b.ALU(0, 2, 1) // advance the row pointer
		b.ALU(1, 0)
		b.LDG(3, 0, kgen.Coalesced(center, 4))
		b.LDG(4, 0, kgen.Coalesced((center+pitch)%hotspotGridBytes, 4))
		b.LDG(5, 0, kgen.Coalesced((center+hotspotGridBytes-pitch)%hotspotGridBytes, 4))
		b.LDG(6, 0, kgen.Coalesced(center+4, 4))
		b.LDG(7, 0, kgen.Coalesced((center+hotspotGridBytes-4)%hotspotGridBytes, 4))
		b.LDG(8, 1, kgen.Coalesced(hotspotPower+center, 4))
		t1 := uint8(16 + px%6)
		co := uint8(10 + px%6)
		b.ALU(t1, 3, 4)
		b.ALU(uint8(16+(px+1)%6), 5, 6)
		b.ALU(9, t1, 7)
		b.ALU(uint8(16+(px+2)%6), 9, 8)
		b.ALU(co, co, uint8(16+(px+2)%6))
		b.STG(co, 2, kgen.Coalesced(hotspotOut+center, 4))
	}
	// Halo exchange through the small scratchpad.
	b.STS(10, 1, kgen.CoalescedMod(uint32(e.Warp)*384, 4, 3072))
	b.Bar()
	b.LDS(16, 2, kgen.CoalescedMod(uint32(e.Warp)*384+128, 4, 3072))
	b.ALU(11, 16, 10)
}

// recursiveGaussianKernel is the CUDA SDK recursive Gaussian filter:
// a streaming IIR filter whose state lives entirely in registers.
var recursiveGaussianKernel = register(&Kernel{
	Name:              "recursivegaussian",
	Suite:             "CUDA SDK",
	Category:          Balanced,
	Description:       "recursive (IIR) Gaussian image filter",
	RegsNeeded:        23,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 544, // 2.125 B/thread
	GridCTAs:          20,
	Emit:              emitRecursiveGaussian,
})

func emitRecursiveGaussian(b *kgen.Builder, e *Env) {
	// Register map (23): r0-r2 addressing, r3 input pixel, r4-r11 IIR
	// state taps (long lived), r12-r17 filter coefficients, r18-r22 temps.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	for i := 0; i < 8; i++ {
		b.ALU(uint8(4 + i))
	}
	for i := 0; i < 6; i++ {
		b.ALU(uint8(12 + i))
	}
	for row := 0; row < 16; row++ {
		b.ALU(0, 1, 2) // advance the row pointer
		b.ALU(2, 0)
		b.LDG(3, 0, kgen.Coalesced(rgInBase+e.WarpBase(8192)+uint32(row)*128, 4))
		s0 := uint8(4 + row%8)
		s1 := uint8(4 + (row+1)%8)
		t := uint8(18 + row%2)
		b.ALU(t, 3, uint8(12+row%2))
		b.ALU(s0, s0, t)
		b.ALU(uint8(18+(row+1)%2), s0, s1)
		b.ALU(s1, s1, uint8(18+(row+1)%2))
		b.STG(s0, 2, kgen.Coalesced(rgOutBase+e.WarpBase(8192)+uint32(row)*128, 4))
	}
	// Fold the remaining coefficients and temps once at the end.
	for i := 0; i < 4; i++ {
		b.ALU(uint8(19+i), uint8(14+i), 4)
	}
	b.STS(4, 1, kgen.CoalescedMod(uint32(e.Warp)*64, 4, 544))
	b.Bar()
	b.LDS(18, 2, kgen.CoalescedMod(32, 4, 544))
	b.ALU(5, 18, 4)
}

// sadKernel is the Parboil sum-of-absolute-differences motion estimation
// kernel: reference macroblocks (32 KB) are compared against streaming
// frame data with deep accumulator state.
var sadKernel = register(&Kernel{
	Name:          "sad",
	Suite:         "Parboil",
	Category:      Balanced,
	Description:   "H.264 motion-estimation sum of absolute differences",
	RegsNeeded:    31,
	ThreadsPerCTA: 256,
	GridCTAs:      20,
	Emit:          emitSAD,
})

func emitSAD(b *kgen.Builder, e *Env) {
	// Register map (31): r0-r2 addressing, r3-r4 pixels, r5-r20 SAD
	// accumulators for 16 candidate vectors, r21-r30 temps.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	for i := 0; i < 16; i++ {
		b.ALU(uint8(5 + i))
	}
	for blk := 0; blk < 12; blk++ {
		b.ALU(0, 2, 1) // advance the block pointers
		b.ALU(1, 0)
		b.LDG(3, 0, kgen.Coalesced((uint32(blk)*2048+uint32(e.CTA%8)*256)%sadRefBytes, 4))
		b.LDG(4, 1, kgen.Coalesced(sadFrameBase+e.WarpBase(4096)+uint32(blk)*256, 4))
		// One candidate-vector group per block: the live accumulator
		// window stays narrow, so SAD tolerates small register budgets
		// (Table 1: 1.01 at 18 registers).
		group := blk / 3 % 4
		for v := 0; v < 4; v++ {
			acc := uint8(5 + group*4 + v)
			t := uint8(21 + v%3)
			b.ALU(t, 3, 4)
			b.ALU(acc, acc, t)
		}
	}
	// Reduce the candidate scores (touches the cooler temp registers
	// exactly once) and emit the best two.
	for i := 0; i < 7; i++ {
		b.ALU(uint8(24+i), uint8(5+i*2), uint8(6+i*2))
	}
	for i := 0; i < 2; i++ {
		b.STG(uint8(24+i), 2, kgen.Coalesced(sadOutBase+e.WarpBase(512)+uint32(i)*128, 4))
	}
}

// scalarprodKernel is the CUDA SDK scalar-product reduction: streaming
// loads, multiply-accumulate, and a shared-memory tree reduction.
var scalarprodKernel = register(&Kernel{
	Name:              "scalarprod",
	Suite:             "CUDA SDK",
	Category:          Balanced,
	Description:       "batched dot products with shared-memory reduction",
	RegsNeeded:        18,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 4096, // 16 B/thread
	GridCTAs:          24,
	Emit:              emitScalarProd,
})

func emitScalarProd(b *kgen.Builder, e *Env) {
	// Register map (18): r0-r2 addressing, r3-r4 inputs, r5-r8 partial
	// sums, r9-r17 reduction temps.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	for i := 0; i < 4; i++ {
		b.ALU(uint8(5 + i))
	}
	for i := 0; i < 16; i++ {
		off := e.WarpBase(8192) + uint32(i)*128
		b.ALU(0, 2, 1) // advance the element pointers
		b.ALU(1, 0)
		b.LDG(3, 0, kgen.Coalesced(spInBaseA+off, 4))
		b.LDG(4, 1, kgen.Coalesced(spInBaseB+off, 4))
		t := uint8(9 + i%9)
		b.ALU(t, 3, 4)
		b.ALU(uint8(5+i%4), uint8(5+i%4), t)
	}
	// Tree reduction in the scratchpad.
	warpShm := uint32(e.Warp) * 512
	b.STS(5, 2, kgen.CoalescedMod(warpShm, 4, 4096))
	b.Bar()
	for s := 0; s < 3; s++ {
		b.LDS(9, 2, kgen.CoalescedMod(warpShm+uint32(64>>s), 4, 4096))
		b.ALU(6, 6, 9)
		b.STS(6, 2, kgen.CoalescedMod(warpShm, 4, 4096))
		b.Bar()
	}
	b.STG(6, 2, kgen.Coalesced(spOutBase+e.WarpBase(128), 4))
}

// sgemvKernel is MAGMA's single-precision matrix-vector multiply: matrix
// rows stream once, the 16 KB x-vector is endlessly reused.
var sgemvKernel = register(&Kernel{
	Name:              "sgemv",
	Suite:             "MAGMA",
	Category:          Balanced,
	Description:       "dense matrix-vector multiply (vector reuse)",
	RegsNeeded:        14,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 1024, // 4 B/thread
	GridCTAs:          24,
	Emit:              emitSGEMV,
})

func emitSGEMV(b *kgen.Builder, e *Env) {
	// Register map (14): r0-r2 addressing, r3 matrix element, r4 vector
	// element, r5-r8 partial sums, r9-r13 temps.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	for i := 0; i < 4; i++ {
		b.ALU(uint8(5 + i))
	}
	for k := 0; k < 20; k++ {
		b.ALU(0, 2, 1) // advance the row and vector pointers
		b.ALU(1, 0)
		b.LDG(3, 0, kgen.Coalesced(sgemvMatBase+e.WarpBase(16384)+uint32(k)*512, 4))
		b.LDG(4, 1, kgen.Coalesced(sgemvVecBase+(uint32(k)*768)%sgemvVecBytes, 4))
		t := uint8(9 + k%5)
		b.ALU(t, 3, 4)
		b.ALU(uint8(5+k%4), uint8(5+k%4), t)
	}
	b.STS(5, 2, kgen.CoalescedMod(uint32(e.Warp)*128, 4, 1024))
	b.Bar()
	b.LDS(9, 2, kgen.CoalescedMod(uint32(e.Warp)*128+32, 4, 1024))
	b.ALU(6, 9, 5)
	b.STG(6, 2, kgen.Coalesced(sgemvOutBase+e.WarpBase(128), 4))
}

// sobolqrngKernel is the CUDA SDK Sobol quasi-random generator: tiny
// direction-vector tables and a long XOR chain, then streaming stores.
var sobolqrngKernel = register(&Kernel{
	Name:              "sobolqrng",
	Suite:             "CUDA SDK",
	Category:          Balanced,
	Description:       "Sobol quasi-random number generation",
	RegsNeeded:        12,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 512, // 2 B/thread
	GridCTAs:          24,
	Emit:              emitSobol,
})

func emitSobol(b *kgen.Builder, e *Env) {
	// Register map (12): r0-r1 addressing, r2 direction vector, r3-r6
	// generator state, r7-r11 temps.
	b.ALU(0)
	b.ALU(1, 0)
	for i := 0; i < 4; i++ {
		b.ALU(uint8(3 + i))
	}
	b.STS(3, 1, kgen.CoalescedMod(uint32(e.Warp)*64, 4, 512))
	b.Bar()
	for n := 0; n < 18; n++ {
		b.ALU(0, 1) // advance the direction-vector pointer
		b.ALU(1, 0)
		b.LDG(2, 0, kgen.Coalesced((uint32(n)*224)%sobolDirBytes, 4))
		s := uint8(3 + n%4)
		t := uint8(7 + n%5)
		b.ALU(t, 2, s)
		b.ALU(s, s, t)
		b.STG(s, 1, kgen.Coalesced(sobolOutBase+e.WarpBase(4096)+uint32(n)*128, 4))
	}
	b.LDS(7, 1, kgen.CoalescedMod(uint32(e.Warp)*64, 4, 512))
	b.ALU(4, 7, 3)
}

// aesKernel is AES encryption (GPGPU-Sim suite): T-box lookup tables live
// in shared memory; blocks stream through ten rounds of table lookups and
// XORs.
var aesKernel = register(&Kernel{
	Name:              "aes",
	Suite:             "GPGPU-Sim",
	Category:          Balanced,
	Description:       "AES block encryption with shared-memory T-boxes",
	RegsNeeded:        28,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 6144, // 24 B/thread
	GridCTAs:          20,
	Emit:              emitAES,
})

func emitAES(b *kgen.Builder, e *Env) {
	// Register map (28): r0-r2 addressing, r3-r6 block state columns,
	// r7-r10 T-box values, r11-r22 round keys (long lived), r23-r27 temps.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	for i := 0; i < 12; i++ {
		b.ALU(uint8(11 + i))
	}
	// Stage the T-boxes once per CTA.
	for i := 0; i < 4; i++ {
		b.LDG(7, 0, kgen.Coalesced((uint32(i)*1024)%4096, 4))
		b.STS(7, 1, kgen.CoalescedMod(uint32(i)*1024, 4, 6144))
	}
	b.Bar()
	b.LDG(3, 0, kgen.Coalesced(aesInBase+e.WarpBase(2048), 4))
	b.LDG(4, 0, kgen.Coalesced(aesInBase+e.WarpBase(2048)+128, 4))
	for round := 0; round < 10; round++ {
		// T-box lookups are data dependent: scattered within the tables.
		b.ALU(1, 3, 4) // the lookup index comes from the block state
		for c := 0; c < 4; c++ {
			b.LDS(uint8(7+c), 1, kgen.Random(e.Rng, 0, 4096, 4))
		}
		t := uint8(23 + round%5)
		b.ALU(t, 7, 8)
		b.ALU(uint8(23+(round+1)%5), 9, 10)
		// Round keys are expanded on the fly, so several stay live.
		k0 := uint8(11 + round%12)
		k1 := uint8(11 + (round+4)%12)
		k2 := uint8(11 + (round+8)%12)
		b.ALU(k0, k0, k1)
		b.ALU(3, t, k0)
		b.ALU(4, uint8(23+(round+1)%5), k1)
		b.ALU(k2, k2, k0)
		b.ALU(5, 3, 4)
		b.ALU(6, 5, t)
		b.ALU(k1, k2, 6)
	}
	b.STG(5, 2, kgen.Coalesced(aesOutBase+e.WarpBase(2048), 4))
	b.STG(6, 2, kgen.Coalesced(aesOutBase+e.WarpBase(2048)+128, 4))
}

// dct8x8Kernel is the CUDA SDK 8x8 discrete cosine transform: blocks
// stream through a register-resident butterfly network.
var dct8x8Kernel = register(&Kernel{
	Name:          "dct8x8",
	Suite:         "CUDA SDK",
	Category:      Balanced,
	Description:   "8x8 block discrete cosine transform",
	RegsNeeded:    26,
	ThreadsPerCTA: 256,
	GridCTAs:      20,
	Emit:          emitDCT,
})

func emitDCT(b *kgen.Builder, e *Env) {
	// Register map (26): r0-r1 addressing, r2-r9 the 8 block rows,
	// r10-r17 butterfly outputs, r18-r25 temps.
	b.ALU(0)
	b.ALU(1, 0)
	for blk := 0; blk < 6; blk++ {
		base := e.WarpBase(8192) + uint32(blk)*1024
		b.ALU(0, 1) // advance the block pointer
		b.ALU(1, 0)
		for r := 0; r < 8; r++ {
			b.LDG(uint8(2+r), 0, kgen.Coalesced(dctInBase+base+uint32(r)*128, 4))
		}
		for stage := 0; stage < 8; stage++ {
			o := uint8(10 + stage)
			t := uint8(18 + stage)
			b.ALU(t, uint8(2+stage), uint8(2+(stage+1)%8))
			b.ALU(o, t, uint8(2+(stage+4)%8))
		}
		for r := 0; r < 4; r++ {
			b.STG(uint8(10+r), 1, kgen.Coalesced(dctOutBase+base+uint32(r)*128, 4))
		}
	}
}

// dwthaar1dKernel is the AMD/CUDA SDK 1D Haar wavelet: one butterfly level
// per pass with a scratchpad shuffle between levels.
var dwthaar1dKernel = register(&Kernel{
	Name:              "dwthaar1d",
	Suite:             "CUDA SDK",
	Category:          Balanced,
	Description:       "1D Haar discrete wavelet transform",
	RegsNeeded:        14,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 2048, // 8 B/thread
	GridCTAs:          24,
	Emit:              emitDWT,
})

func emitDWT(b *kgen.Builder, e *Env) {
	// Register map (14): r0-r1 addressing, r2-r3 sample pair, r4-r5
	// average/detail, r6-r13 level state and temps.
	b.ALU(0)
	b.ALU(1, 0)
	warpShm := uint32(e.Warp) * 256
	for lv := 0; lv < 8; lv++ {
		b.ALU(0, 1) // advance the level pointer
		b.ALU(1, 0)
		b.LDG(2, 0, kgen.Coalesced(dwtInBase+e.WarpBase(4096)+uint32(lv)*256, 8))
		b.LDG(3, 0, kgen.Coalesced(dwtInBase+e.WarpBase(4096)+uint32(lv)*256+4, 8))
		b.ALU(4, 2, 3)
		b.ALU(5, 2, 3)
		s := uint8(6 + lv)
		b.ALU(s, 4, 5)
		b.STS(4, 1, kgen.CoalescedMod(warpShm+uint32(lv)*16, 4, 2048))
		b.Bar()
		b.LDS(5, 1, kgen.CoalescedMod(warpShm+uint32(lv)*16+64, 4, 2048))
		b.STG(s, 1, kgen.Coalesced(dwtOutBase+e.WarpBase(4096)+uint32(lv)*128, 4))
	}
}

// lpsKernel is the 3D Laplace solver (GPGPU-Sim suite): a shared-memory
// tiled stencil over a grid that fits the baseline cache.
var lpsKernel = register(&Kernel{
	Name:              "lps",
	Suite:             "GPGPU-Sim",
	Category:          Balanced,
	Description:       "3D Laplace PDE solver with shared-memory tiles",
	RegsNeeded:        15,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 4864, // 19 B/thread
	GridCTAs:          20,
	Emit:              emitLPS,
})

func emitLPS(b *kgen.Builder, e *Env) {
	// Register map (15): r0-r2 addressing, r3-r8 stencil neighbours,
	// r9 result, r10-r14 temps.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	const pitch = 2048
	warpShm := uint32(e.Warp) * 608
	for z := 0; z < 8; z++ {
		plane := (e.WarpBase(1024) + uint32(z)*4096) % lpsGridBytes
		b.ALU(0, 2, 1) // advance the plane pointer
		b.ALU(1, 0)
		b.ALU(2, 1)
		b.LDG(3, 0, kgen.Coalesced(plane, 4))
		b.LDG(4, 0, kgen.Coalesced((plane+pitch)%lpsGridBytes, 4))
		b.LDG(5, 0, kgen.Coalesced((plane+lpsGridBytes-pitch)%lpsGridBytes, 4))
		b.ALU(10, 3, 4) // normalize before staging (stores read the LRF)
		b.STS(10, 1, kgen.CoalescedMod(warpShm, 4, 4864))
		b.Bar()
		b.LDS(6, 2, kgen.CoalescedMod(warpShm+4, 4, 4864))
		b.LDS(7, 2, kgen.CoalescedMod((warpShm+4864-4)%4864, 4, 4864))
		b.LDS(8, 2, kgen.CoalescedMod(warpShm+128, 4, 4864))
		t := uint8(10 + z%5)
		b.ALU(t, 3, 4)
		b.ALU(uint8(10+(z+1)%5), 5, 6)
		b.ALU(9, t, 7)
		b.ALU(uint8(10+(z+2)%5), 9, 8)
		b.STG(9, 2, kgen.Coalesced(lpsOutBase+plane, 4))
		b.Bar()
	}
}

// nnKernel is a small neural-network inference kernel (GPGPU-Sim suite):
// an 8 KB weight matrix re-read for every input — the extreme reuse that
// makes its uncached DRAM traffic 20.8x (Table 1).
var nnKernel = register(&Kernel{
	Name:          "nn",
	Suite:         "GPGPU-Sim",
	Category:      Balanced,
	Description:   "neural-network inference over a tiny weight matrix",
	RegsNeeded:    13,
	ThreadsPerCTA: 256,
	GridCTAs:      24,
	Emit:          emitNN,
})

func emitNN(b *kgen.Builder, e *Env) {
	// Register map (13): r0-r1 addressing, r2 input, r3 weight, r4-r7
	// neuron accumulators, r8-r12 temps.
	b.ALU(0)
	b.ALU(1, 0)
	for i := 0; i < 4; i++ {
		b.ALU(uint8(4 + i))
	}
	for n := 0; n < 24; n++ {
		b.ALU(0, 1) // advance the input pointer
		b.ALU(1, 0)
		b.LDG(2, 0, kgen.Coalesced(nnInBase+e.WarpBase(4096)+uint32(n)*128, 4))
		// Weight fetches sweep the tiny matrix over and over.
		b.LDG(3, 1, kgen.Coalesced((uint32(n)*352)%nnWeightBytes, 4))
		t := uint8(8 + n%5)
		b.ALU(t, 2, 3)
		b.ALU(uint8(4+n%4), uint8(4+n%4), t)
	}
	b.SFU(8, 4) // activation
	b.STG(8, 1, kgen.Coalesced(nnOutBase+e.WarpBase(128), 4))
}
