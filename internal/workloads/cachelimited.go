package workloads

import (
	"repro/internal/isa"
	"repro/internal/kgen"
)

// Working-set sizes chosen to reproduce the Table 1 DRAM columns: sets
// below 64 KB are fully captured by the baseline cache (DRAM ratio 1 at
// 64 KB), sets between 64 KB and 256 KB keep improving with the larger
// caches the unified design affords.
const (
	mummerTreeBytes  uint32 = 32 << 10 // hot suffix-tree levels: fit 64 KB
	mummerQueryBase  uint32 = 0x2000_0000
	mummerMidBase    uint32 = 0x2800_0000
	mummerMidBytes   uint32 = 128 << 10 // mid-tree levels
	mummerColdBase   uint32 = 0x6000_0000
	mummerColdBytes  uint32 = 2 << 20  // deep suffix links
	bfsHotBytes      uint32 = 28 << 10 // frontier-adjacent nodes
	bfsStreamBase    uint32 = 0x5000_0000
	bfsMidBase       uint32 = 0x2000_0000
	bfsMidBytes      uint32 = 176 << 10 // wider neighbourhood
	bfsColdBase      uint32 = 0x6000_0000
	bfsColdBytes     uint32 = 12 << 20 // far graph regions
	bfsVisitedBase   uint32 = 0x4000_0000
	backpropWeights  uint32 = 28 << 10
	backpropInBase   uint32 = 0x2000_0000
	matmulBBytes     uint32 = 48 << 10 // B matrix, reused across CTAs
	matmulABase      uint32 = 0x2000_0000
	matmulOutBase    uint32 = 0x4000_0000
	nbodyBodiesBytes uint32 = 24 << 10
	nbodyOutBase     uint32 = 0x4000_0000
	vecAddABase      uint32 = 0
	vecAddBBase      uint32 = 0x2000_0000
	vecAddOutBase    uint32 = 0x4000_0000
	sradImageBytes   uint32 = 160 << 10
	sradOutBase      uint32 = 0x4000_0000
)

// mummerKernel is GPU-MUMmer (Rodinia): parallel suffix-tree traversal for
// DNA alignment. Each thread walks the shared reference tree with
// data-dependent, divergent gathers; the tree working set fits the 64 KB
// baseline cache for the scaled input (the paper notes its set was small
// for their datasets too).
var mummerKernel = register(&Kernel{
	Name:          "mummer",
	Suite:         "Rodinia",
	Category:      CacheLimited,
	Description:   "GPU-MUMmer suffix-tree DNA alignment (divergent tree walk)",
	RegsNeeded:    21,
	ThreadsPerCTA: 256,
	GridCTAs:      24,
	Emit:          emitMummer,
})

func emitMummer(b *kgen.Builder, e *Env) {
	// Register map (21): r0-r2 addressing, r3 query buffer, r4-r5 node
	// fields, r6-r11 match state (long lived), r12-r20 compare temps.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	for i := 0; i < 6; i++ {
		b.ALU(uint8(6 + i))
	}
	// Nearly all node visits stay in the hot upper tree; a small tail of
	// deep suffix links walks cold storage (the paper notes the working
	// set was small for its inputs).
	tiers := []tier{
		{0, mummerTreeBytes, 93},
		{mummerMidBase, mummerMidBytes, 4},
		{mummerColdBase, mummerColdBytes, 4},
	}
	queries := 6
	steps := 12
	for q := 0; q < queries; q++ {
		// Stream the query string (coalesced); every lane restarts with
		// a fresh query.
		b.SetMask(isa.FullMask)
		b.LDG(3, 0, kgen.Coalesced(mummerQueryBase+e.WarpBase(8192)+uint32(q)*128, 4))
		for s := 0; s < steps; s++ {
			// SIMT divergence: lanes whose queries mismatch drop out of
			// the traversal as it deepens.
			if s > 4 && s%3 == 0 {
				mask := b.Mask() & ^(uint32(3) << uint(2*(s%13)))
				if mask != 0 {
					b.SetMask(mask)
				}
			}
			// Chase the child pointer: the node address is recomputed
			// from the fetched node each step, so it reads from the
			// LRF/ORF rather than the MRF (the hierarchy the unified
			// design depends on for low arbitration rates).
			b.ALU(1, 4, 3)
			// Sibling threads follow nearby tree nodes: pairs of lanes
			// share a node line.
			reg := pickTier(e, tiers)
			b.LDG(4, 1, kgen.ClusteredRandom(e.Rng, reg.base, reg.size, 2))
			t := uint8(12 + (q*steps+s)%9)
			// Base-pair comparison and match-length bookkeeping.
			b.ALU(t, 4, 3)
			b.ALU(5, t, uint8(6+s%6))
			b.ALU(uint8(6+s%6), 5, t)
			b.ALU(t, 5, uint8(6+(s+2)%6))
			b.ALU(5, t, 4)
			b.ALU(uint8(6+(s+3)%6), 5, t)
			b.ALU(t, uint8(6+(s+3)%6), 5)
		}
	}
	// Write match results.
	b.STG(6, 2, kgen.Coalesced(0x4000_0000+e.WarpBase(256), 4))
	b.STG(7, 2, kgen.Coalesced(0x4000_0000+e.WarpBase(256)+128, 4))
}

// bfsKernel is breadth-first search (Rodinia) over a million-node graph
// (scaled): frontier nodes stream in, neighbour and visited lookups gather
// randomly across node and edge arrays whose combined footprint (~208 KB)
// exceeds the baseline cache but fits the unified design's larger cache.
var bfsKernel = register(&Kernel{
	Name:          "bfs",
	Suite:         "Rodinia",
	Category:      CacheLimited,
	Description:   "breadth-first graph search (irregular gathers)",
	RegsNeeded:    9,
	ThreadsPerCTA: 256,
	GridCTAs:      32,
	Emit:          emitBFS,
})

func emitBFS(b *kgen.Builder, e *Env) {
	// Register map (9): r0 frontier index, r1 node record, r2 edge,
	// r3 visited flag, r4 new cost, r5-r8 loop bookkeeping.
	b.ALU(0)
	b.ALU(5, 0)
	b.ALU(6, 5)
	// Frontier expansion has strong locality — most neighbours sit in the
	// frontier-adjacent hot region — with tails into a mid region only a
	// large cache holds and a cold tail no cache holds.
	tiers := []tier{
		{0, bfsHotBytes, 74},
		{bfsMidBase, bfsMidBytes, 2},
		{bfsColdBase, bfsColdBytes, 24},
	}
	for n := 0; n < 8; n++ {
		// Frontier node records stream coalesced.
		b.ALU(0, 5, 6) // advance the frontier pointer
		b.LDG(1, 0, kgen.Coalesced(bfsStreamBase+e.WarpBase(4096)+uint32(n)*128, 4))
		b.ALU(7, 1, 5)
		for deg := 0; deg < 3; deg++ {
			reg := pickTier(e, tiers)
			// Neighbour lists are contiguous: ~3 lanes share a line.
			b.LDG(2, 7, kgen.ClusteredRandom(e.Rng, reg.base, reg.size, 3))
			reg = pickTier(e, tiers)
			b.LDG(3, 2, kgen.ClusteredRandom(e.Rng, reg.base, reg.size, 3))
			// Cost comparison and atomically-emulated min: several
			// dependent integer ops per edge.
			b.ALU(4, 3, 1)
			b.ALU(8, 4, 6)
			b.ALU(4, 8, 3)
			b.ALU(6, 4, 8)
			b.ALU(8, 6, 1)
			b.ALU(4, 8, 4)
		}
		// Update the cost of one discovered neighbour per thread.
		b.STG(4, 8, kgen.ClusteredRandom(e.Rng, bfsVisitedBase, bfsHotBytes, 3))
	}
}

// backpropKernel is the Rodinia neural-network training kernel: the weight
// matrix (~48 KB) is re-read by every CTA, so a 64 KB cache removes nearly
// all its DRAM traffic (Table 1: 1.56 / 1.0 / 1.0).
var backpropKernel = register(&Kernel{
	Name:              "backprop",
	Suite:             "Rodinia",
	Category:          CacheLimited,
	Description:       "neural network back-propagation (weight-matrix reuse)",
	RegsNeeded:        17,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 544, // 2.125 B/thread (Table 1)
	GridCTAs:          28,
	Emit:              emitBackprop,
})

func emitBackprop(b *kgen.Builder, e *Env) {
	// Register map (17): r0-r2 addressing, r3 input, r4 weight, r5-r10
	// partial sums, r11-r16 temps.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	for i := 0; i < 6; i++ {
		b.ALU(uint8(5 + i))
	}
	for unit := 0; unit < 16; unit++ {
		b.ALU(0, 2, 1) // advance the unit pointers
		b.ALU(1, 0)
		b.ALU(2, 1)
		b.LDG(3, 0, kgen.Coalesced(backpropInBase+e.WarpBase(2176)+uint32(unit)*128, 4))
		for k := 0; k < 3; k++ {
			// The active weight rows form a small window that any cache
			// keeps resident; the full matrix is swept across phases.
			b.LDG(4, 1, kgen.Coalesced((uint32((unit%4)*3+k)*2432)%backpropWeights, 4))
			acc := uint8(5 + (unit+k)%6)
			t := uint8(11 + (unit*3+k)%6)
			b.ALU(t, 3, 4)
			b.ALU(acc, acc, t)
		}
	}
	// Small shared reduction then output.
	b.STS(5, 2, kgen.CoalescedMod(uint32(e.Warp)*64, 4, 544))
	b.Bar()
	b.LDS(11, 2, kgen.CoalescedMod(0, 4, 544))
	b.ALU(6, 11, 5)
	b.STG(6, 2, kgen.Coalesced(0x4000_0000+e.WarpBase(128), 4))
}

// matrixmulKernel is the CUDA SDK tiled matrix multiply: A streams, the
// B matrix (48 KB) is reused by every CTA. Without a cache its DRAM
// traffic explodes (Table 1: 4.77x), with 64 KB it is fully captured.
var matrixmulKernel = register(&Kernel{
	Name:              "matrixmul",
	Suite:             "CUDA SDK",
	Category:          CacheLimited,
	Description:       "tiled dense matrix multiply (B-matrix reuse)",
	RegsNeeded:        17,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 2048, // 8 B/thread
	GridCTAs:          28,
	Emit:              emitMatrixMul,
})

func emitMatrixMul(b *kgen.Builder, e *Env) {
	// Register map (17): r0-r2 addressing, r3 a, r4 b, r5-r12 accumulators,
	// r13-r16 temps.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	for i := 0; i < 8; i++ {
		b.ALU(uint8(5 + i))
	}
	warpShm := uint32(e.Warp) * 256
	for kt := 0; kt < 16; kt++ {
		b.ALU(0, 2, 1) // advance the tile pointers
		b.ALU(1, 0)
		b.ALU(2, 1)
		b.LDG(3, 0, kgen.Coalesced(matmulABase+e.WarpBase(8192)+uint32(kt)*512, 4))
		b.LDG(4, 1, kgen.Coalesced((uint32(kt)*3072+uint32(e.CTA%4)*96)%matmulBBytes, 4))
		b.STS(3, 2, kgen.CoalescedMod(warpShm, 4, 2048))
		b.Bar()
		for i := 0; i < 2; i++ {
			t := uint8(13 + (kt+i)%4)
			acc := uint8(5 + (kt*2+i)%8)
			b.LDS(t, 2, kgen.CoalescedMod(warpShm+uint32(i)*128, 4, 2048))
			b.ALU(acc, acc, t)
			b.ALU(acc, acc, 4)
		}
		b.Bar()
	}
	for i := 0; i < 4; i++ {
		b.STG(uint8(5+i), 2, kgen.Coalesced(matmulOutBase+e.WarpBase(1024)+uint32(i)*128, 4))
	}
}

// nbodyKernel is the CUDA SDK n-body simulation: all threads sweep the
// same body array (24 KB) with broadcast loads — extreme reuse that a
// cache of any size captures but that costs 3.5x DRAM uncached.
var nbodyKernel = register(&Kernel{
	Name:          "nbody",
	Suite:         "CUDA SDK",
	Category:      CacheLimited,
	Description:   "n-body gravitational simulation (broadcast body reuse)",
	RegsNeeded:    23,
	ThreadsPerCTA: 256,
	GridCTAs:      24,
	Emit:          emitNbody,
})

func emitNbody(b *kgen.Builder, e *Env) {
	// Register map (23): r0-r2 addressing, r3-r5 body j position,
	// r6-r11 acceleration accumulators, r12-r17 distance temps,
	// r18-r22 own position/velocity.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	for i := 0; i < 6; i++ {
		b.ALU(uint8(6 + i))
	}
	// Each thread loads its own body's position and velocity (streaming,
	// one-time) before sweeping all bodies.
	for i := 0; i < 5; i++ {
		b.LDG(uint8(18+i), 1, kgen.Coalesced(0x5000_0000+e.WarpBase(1024)+uint32(i)*128, 4))
	}
	for j := 0; j < 48; j++ {
		addr := (uint32(j) * 512) % nbodyBodiesBytes
		b.ALU(0, 21) // advance the body pointer
		b.LDG(3, 0, kgen.Broadcast(addr))
		b.LDG(4, 0, kgen.Broadcast(addr+128))
		b.LDG(5, 0, kgen.Broadcast(addr+256))
		t1 := uint8(12 + j%6)
		b.ALU(t1, 3, 18)
		b.ALU(uint8(12+(j+1)%6), 4, 19)
		b.ALU(uint8(12+(j+2)%6), 5, 20)
		if j%4 == 0 {
			b.SFU(uint8(12+(j+3)%6), t1) // rsqrt
		}
		b.ALU(uint8(6+j%6), uint8(6+j%6), t1)
		b.ALU(uint8(6+(j+1)%6), uint8(6+(j+1)%6), uint8(12+(j+3)%6))
	}
	for i := 0; i < 3; i++ {
		b.STG(uint8(6+i), 2, kgen.Coalesced(nbodyOutBase+e.WarpBase(512)+uint32(i)*128, 4))
	}
}

// vectoraddKernel is the CUDA SDK quickstart kernel: pure streaming with
// no reuse. Its cached DRAM traffic is compulsory; uncached per-thread
// transactions inflate it ~4x (Table 1: 3.88 / 1.0 / 1.0).
var vectoraddKernel = register(&Kernel{
	Name:          "vectoradd",
	Suite:         "CUDA SDK",
	Category:      CacheLimited,
	Description:   "elementwise vector addition (pure streaming)",
	RegsNeeded:    9,
	ThreadsPerCTA: 256,
	GridCTAs:      32,
	Emit:          emitVectorAdd,
})

func emitVectorAdd(b *kgen.Builder, e *Env) {
	// Register map (9): r0-r2 addressing, r3 a, r4 b, r5 sum, r6-r8 index
	// arithmetic.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	b.ALU(6, 0)
	for i := 0; i < 20; i++ {
		off := e.WarpBase(4096) + uint32(i)*128
		b.ALU(0, 6) // advance the element pointers
		b.ALU(1, 0)
		b.ALU(2, 1)
		b.LDG(3, 0, kgen.Coalesced(vecAddABase+off, 4))
		b.LDG(4, 1, kgen.Coalesced(vecAddBBase+off, 4))
		b.ALU(5, 3, 4)
		b.ALU(7, 6, 5)
		b.ALU(8, 7, 6)
		b.STG(5, 2, kgen.Coalesced(vecAddOutBase+off, 4))
	}
}

// sradKernel is the Rodinia speckle-reducing anisotropic diffusion stencil.
// Each CTA makes two passes over its image tile; tiles plus halo rows give
// a working set around 160 KB: partially cached at 64 KB, fully at 256 KB
// (Table 1: 1.22 / 1.20 / 1.0).
var sradKernel = register(&Kernel{
	Name:              "srad",
	Suite:             "Rodinia",
	Category:          CacheLimited,
	Description:       "speckle-reducing anisotropic diffusion (5-point stencil, two passes)",
	RegsNeeded:        18,
	ThreadsPerCTA:     256,
	SharedBytesPerCTA: 6144, // 24 B/thread
	GridCTAs:          24,
	Emit:              emitSRAD,
})

func emitSRAD(b *kgen.Builder, e *Env) {
	// Register map (18): r0-r2 addressing, r3-r7 stencil points,
	// r8-r12 PDE coefficients, r13-r17 temps.
	b.ALU(0)
	b.ALU(1, 0)
	b.ALU(2, 1)
	const rowPitch = 2048 // bytes per image row
	tile := e.WarpBase(2048) % sradImageBytes
	for pass := 0; pass < 2; pass++ {
		for px := 0; px < 10; px++ {
			center := (tile + uint32(px)*128) % sradImageBytes
			b.ALU(0, 2, 1) // advance the pixel pointers
			b.ALU(1, 0)
			b.ALU(2, 1)
			b.LDG(3, 0, kgen.Coalesced(center, 4))
			b.LDG(4, 0, kgen.Coalesced((center+rowPitch)%sradImageBytes, 4))
			b.LDG(5, 0, kgen.Coalesced((center+sradImageBytes-rowPitch)%sradImageBytes, 4))
			b.LDG(6, 0, kgen.Coalesced(center+4, 4))
			b.LDG(7, 0, kgen.Coalesced((center+sradImageBytes-4)%sradImageBytes, 4))
			// The diffusion-coefficient arithmetic: gradients, Laplacian,
			// q0 statistics, and the divergence update — SRAD is
			// arithmetic heavy (~30 ops per pixel in Rodinia).
			t1 := uint8(13 + px%5)
			c1 := uint8(8 + px%5)
			b.ALU(t1, 3, 4)
			b.ALU(uint8(13+(px+1)%5), 5, 6)
			b.ALU(c1, t1, 7)
			b.ALU(uint8(8+(px+1)%5), c1, t1)
			if px%3 == 0 {
				b.SFU(uint8(13+(px+2)%5), c1)
			}
			b.ALU(uint8(13+(px+3)%5), c1, uint8(8+(px+2)%5))
			for op := 0; op < 12; op++ {
				a := uint8(13 + (px+op)%5)
				z := uint8(8 + (px+op)%5)
				b.ALU(a, z, uint8(13+(px+op+2)%5))
				b.ALU(z, a, uint8(8+(px+op+3)%5))
			}
			if pass == 1 {
				b.STG(c1, 2, kgen.Coalesced(sradOutBase+center, 4))
			}
		}
		// Stage coefficients through shared memory between passes.
		b.STS(8, 1, kgen.CoalescedMod(uint32(e.Warp)*768, 4, 6144))
		b.Bar()
		b.LDS(13, 1, kgen.CoalescedMod(uint32(e.Warp)*768+256, 4, 6144))
		b.ALU(9, 13, 8)
	}
}
