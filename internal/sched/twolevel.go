package sched

// twoLevel is the paper's two-level scheduler: a fixed-size active set
// walked round-robin from a rotating cursor. With greedy set, the cursor
// stays on the warp that issued (greedy-then-round-robin), improving
// intra-warp locality at some fairness cost.
type twoLevel struct {
	capacity int
	greedy   bool
	active   []int
	rr       int // round-robin cursor into active
}

func newTwoLevel(capacity int, greedy bool) *twoLevel {
	return &twoLevel{capacity: capacity, greedy: greedy, active: make([]int, 0, capacity)}
}

func (s *twoLevel) Policy() Policy {
	return TwoLevel
}

func (s *twoLevel) Refill(pool Pool, now int64) {
	s.active = refill(s.active, s.capacity, pool, now)
}

func (s *twoLevel) Active() []int { return s.active }
func (s *twoLevel) Len() int      { return len(s.active) }

// Walk tries candidates at positions rr, rr+1, ... modulo the set size.
// A descheduled candidate is removed in place and the walk continues at
// the position that slid into its slot; an issuing candidate advances the
// cursor past itself (round-robin) or parks it on itself (greedy).
func (s *twoLevel) Walk(visit func(w int) Action) bool {
	n := len(s.active)
	for k := 0; k < n; k++ {
		pos := (s.rr + k) % n
		switch visit(s.active[pos]) {
		case Keep:
		case Deschedule:
			s.remove(pos)
			n = len(s.active)
			k--
		case Issued:
			s.advanceCursor(pos)
			return true
		case IssuedGone:
			// Cursor bookkeeping happens against the pre-removal set, as
			// the issue slot was consumed while the warp was still a
			// member; remove then fixes the cursor up.
			s.advanceCursor(pos)
			s.remove(pos)
			return true
		}
	}
	return false
}

// advanceCursor repositions the round-robin cursor after an issue at pos.
func (s *twoLevel) advanceCursor(pos int) {
	if s.greedy {
		s.rr = pos % len(s.active) // greedy: stay on this warp
	} else {
		s.rr = (pos + 1) % len(s.active)
	}
}

// remove deletes the active-set entry at position pos, keeping the
// cursor on the element it pointed at (or wrapping it into range).
func (s *twoLevel) remove(pos int) {
	s.active = append(s.active[:pos], s.active[pos+1:]...)
	if s.rr > pos {
		s.rr--
	}
	if len(s.active) > 0 {
		s.rr %= len(s.active)
	} else {
		s.rr = 0
	}
}
