// Package sched implements the SM's warp-scheduling policies behind a
// single Scheduler interface: which warps occupy the active set, in what
// order they compete for the one issue slot per cycle, and when a warp is
// moved to the inactive set to wait out a long-latency dependence.
//
// The package owns only scheduling state (the active list and the
// policy's cursor). Warp state — readiness, wake cycles, traces — stays
// with the SM's dispatch component, which the scheduler sees through the
// narrow Pool interface; the issue-time readiness test stays with the SM
// timing core, which drives Walk with a visitor that returns an Action
// per candidate. This split is what lets a policy be swapped without
// touching either the warp bookkeeping or the timing model.
//
// Two policies are provided:
//
//   - TwoLevel: the paper's two-level scheduler. Ready warps are promoted
//     into a fixed-size active set oldest-wakeup-first; the active set is
//     walked round-robin (or greedy, holding the last issuer, when built
//     with greedy=true); warps that hit a long-latency dependence are
//     descheduled back to the inactive set.
//   - GTO: greedy-then-oldest. The last-issued warp retries first; on
//     failure the remaining active warps are tried oldest-activation
//     first. Promotion and descheduling follow the same two-level rules,
//     so the comparison isolates the issue-ordering policy.
package sched

import "fmt"

// Policy names a scheduler implementation. The zero value selects
// TwoLevel, the paper's policy.
type Policy string

const (
	// TwoLevel is the paper's two-level round-robin scheduler.
	TwoLevel Policy = "twolevel"
	// GTO is the greedy-then-oldest alternative.
	GTO Policy = "gto"
)

// Policies returns the selectable policy names, default first.
func Policies() []Policy { return []Policy{TwoLevel, GTO} }

// ParsePolicy validates a policy name; the empty string selects TwoLevel.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "", TwoLevel:
		return TwoLevel, nil
	case GTO:
		return GTO, nil
	}
	return "", fmt.Errorf("sched: unknown policy %q (want %q or %q)", s, TwoLevel, GTO)
}

// Pool is the scheduler's view of the warp pool, implemented by the SM's
// dispatch component. Warps are identified by their pool slot index.
type Pool interface {
	// NumWarps returns the number of warp slots.
	NumWarps() int
	// ReadyAt reports whether warp w is awaiting promotion into the
	// active set and, if so, the cycle it becomes (or became) eligible.
	ReadyAt(w int) (wake int64, ok bool)
	// MinReady returns the warp Refill must promote next: the one with
	// the oldest wake at or before now, lowest slot index breaking
	// ties. ok is false when no warp is eligible. Pool implementations
	// answer this from their own ready-set bookkeeping so Refill does
	// not scan every warp slot per cycle.
	MinReady(now int64) (w int, ok bool)
	// Activate marks warp w as a member of the active set.
	Activate(w int)
}

// StreamPool is an optional Pool extension implemented by pools that
// host several co-resident kernels (streams). When a pool reports more
// than one stream, the shared promotion rule switches to a stream-fair
// variant: vacant active-set slots go to the stream with the fewest
// active members first, so one kernel's warp surplus cannot starve a
// co-tenant of issue opportunities. With one stream the promotion rule
// is exactly the classic one — single-kernel schedules are unchanged.
type StreamPool interface {
	Pool
	// NumStreams returns the number of co-resident streams.
	NumStreams() int
	// Stream returns the stream index owning warp slot w.
	Stream(w int) int
	// MinReadyOf is MinReady restricted to one stream's warps.
	MinReadyOf(now int64, stream int) (w int, ok bool)
}

// Action is a Walk visitor's verdict on one candidate warp.
type Action uint8

const (
	// Keep: the candidate cannot issue this cycle (short operand wait or
	// issue-stream serialization) but stays in the active set.
	Keep Action = iota
	// Deschedule: the candidate entered a long-latency wait; remove it
	// from the active set and keep walking.
	Deschedule
	// Issued: the candidate issued an instruction; stop walking.
	Issued
	// IssuedGone: the candidate issued and left the active set (barrier
	// or exit); stop walking.
	IssuedGone
)

// Scheduler is one SM's warp-scheduling policy. Implementations hold the
// active set and a policy cursor; they never inspect warp state directly.
// A Scheduler is not safe for concurrent use; each SM owns one.
type Scheduler interface {
	// Policy returns the implementation's name.
	Policy() Policy
	// Refill promotes eligible warps (Pool.ReadyAt true with wake <= now)
	// into vacant active-set slots, oldest wake first, lowest slot index
	// breaking ties.
	Refill(pool Pool, now int64)
	// Walk visits active warps in policy priority order, applying each
	// visitor verdict to the active set, until a visit reports Issued or
	// IssuedGone (returning true) or candidates run out (false).
	Walk(visit func(w int) Action) bool
	// Active returns the active set. The slice is the scheduler's own
	// storage in policy-internal order: callers must not modify it.
	Active() []int
	// Len returns the active-set occupancy.
	Len() int
	// Snapshot captures the scheduling state (active list and policy
	// cursor) as an immutable State for the SM snapshot machinery.
	Snapshot() State
	// Restore replaces the scheduling state with a previously captured
	// State. It fails on a policy or capacity mismatch.
	Restore(State) error
}

// New builds the named policy with the given active-set capacity. greedy
// selects the hold-the-last-issuer variant of TwoLevel (it is implied by
// GTO, which ignores the flag).
func New(p Policy, capacity int, greedy bool) (Scheduler, error) {
	pol, err := ParsePolicy(string(p))
	if err != nil {
		return nil, err
	}
	if capacity < 1 {
		return nil, fmt.Errorf("sched: active-set capacity %d < 1", capacity)
	}
	switch pol {
	case GTO:
		return newGTO(capacity), nil
	default:
		return newTwoLevel(capacity, greedy), nil
	}
}

// refill is the promotion rule both policies share: promote the pool's
// oldest-wakeup eligible warp (lowest slot index on ties, per
// Pool.MinReady) until the active set is full or no warp qualifies.
// Multi-stream pools (StreamPool with more than one stream) promote
// stream-fair instead; single-stream pools take the classic path
// verbatim.
func refill(active []int, capacity int, pool Pool, now int64) []int {
	if sp, ok := pool.(StreamPool); ok && sp.NumStreams() > 1 {
		return refillStreams(active, capacity, sp, now)
	}
	for len(active) < capacity {
		best, ok := pool.MinReady(now)
		if !ok {
			return active
		}
		pool.Activate(best)
		active = append(active, best)
	}
	return active
}

// refillStreams is the stream-fair promotion rule: each vacant slot
// goes to the eligible warp of the stream with the fewest active-set
// members, ties broken by oldest wake cycle then lowest stream index
// (within a stream, MinReadyOf's oldest-wake/lowest-slot rule holds).
// The rule is deterministic, so multi-stream schedules replay exactly.
func refillStreams(active []int, capacity int, pool StreamPool, now int64) []int {
	n := pool.NumStreams()
	var countsBuf [8]int
	counts := countsBuf[:]
	if n > len(countsBuf) {
		counts = make([]int, n)
	} else {
		counts = counts[:n]
		for i := range counts {
			counts[i] = 0
		}
	}
	for _, w := range active {
		counts[pool.Stream(w)]++
	}
	for len(active) < capacity {
		best, bestStream, bestWake := -1, -1, int64(0)
		for s := 0; s < n; s++ {
			w, ok := pool.MinReadyOf(now, s)
			if !ok {
				continue
			}
			wake, _ := pool.ReadyAt(w)
			better := best < 0 ||
				counts[s] < counts[bestStream] ||
				(counts[s] == counts[bestStream] && wake < bestWake)
			if better {
				best, bestStream, bestWake = w, s, wake
			}
		}
		if best < 0 {
			return active
		}
		pool.Activate(best)
		active = append(active, best)
		counts[bestStream]++
	}
	return active
}
