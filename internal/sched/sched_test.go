package sched

import (
	"reflect"
	"testing"
)

// fakePool is a Pool over explicit (wake, ready) warp states.
type fakePool struct {
	wake      []int64
	ready     []bool
	activated []int
}

func (p *fakePool) NumWarps() int { return len(p.wake) }

func (p *fakePool) ReadyAt(w int) (int64, bool) {
	if !p.ready[w] {
		return 0, false
	}
	return p.wake[w], true
}

func (p *fakePool) MinReady(now int64) (int, bool) {
	best, bestWake := -1, int64(0)
	for i := range p.ready {
		if p.ready[i] && p.wake[i] <= now && (best < 0 || p.wake[i] < bestWake) {
			best, bestWake = i, p.wake[i]
		}
	}
	return best, best >= 0
}

func (p *fakePool) Activate(w int) {
	p.ready[w] = false
	p.activated = append(p.activated, w)
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", TwoLevel, true},
		{"twolevel", TwoLevel, true},
		{"gto", GTO, true},
		{"GTO", "", false},
		{"round-robin", "", false},
	} {
		got, err := ParsePolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %q, %v; want %q, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if _, err := New("bogus", 8, false); err == nil {
		t.Error("New with an unknown policy should fail")
	}
	if _, err := New(TwoLevel, 0, false); err == nil {
		t.Error("New with zero capacity should fail")
	}
}

func TestRefillOldestWakeupFirst(t *testing.T) {
	for _, pol := range Policies() {
		s, err := New(pol, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		// Warps 0..3 ready with wakes 30, 10, 10, 20: capacity 2 promotes
		// the oldest wake first, lowest index breaking the 10/10 tie.
		pool := &fakePool{
			wake:  []int64{30, 10, 10, 20},
			ready: []bool{true, true, true, true},
		}
		s.Refill(pool, 100)
		if want := []int{1, 2}; !reflect.DeepEqual(pool.activated, want) {
			t.Errorf("%s: promoted %v, want %v", pol, pool.activated, want)
		}
		if s.Len() != 2 {
			t.Errorf("%s: Len = %d, want 2", pol, s.Len())
		}
		// A warp whose wake is still in the future is not eligible.
		pool2 := &fakePool{wake: []int64{500}, ready: []bool{true}}
		s2, _ := New(pol, 2, false)
		s2.Refill(pool2, 100)
		if s2.Len() != 0 {
			t.Errorf("%s: promoted a warp before its wake cycle", pol)
		}
	}
}

// fill promotes warps 0..n-1 (all wake 0) into the scheduler.
func fill(t *testing.T, s Scheduler, n int) {
	t.Helper()
	pool := &fakePool{wake: make([]int64, n), ready: make([]bool, n)}
	for i := range pool.ready {
		pool.ready[i] = true
	}
	s.Refill(pool, 0)
	if s.Len() != n {
		t.Fatalf("fill: Len = %d, want %d", s.Len(), n)
	}
}

// issueOn returns a visitor that reports Issued for warp w and Keep
// otherwise, recording the visit order.
func issueOn(w int, order *[]int) func(int) Action {
	return func(cand int) Action {
		*order = append(*order, cand)
		if cand == w {
			return Issued
		}
		return Keep
	}
}

func TestTwoLevelRoundRobinAdvances(t *testing.T) {
	s, _ := New(TwoLevel, 4, false)
	fill(t, s, 4)

	var order []int
	if !s.Walk(issueOn(0, &order)) {
		t.Fatal("walk found no issuer")
	}
	// Round robin: the next walk starts past the issuer.
	order = nil
	s.Walk(issueOn(1, &order))
	if order[0] != 1 {
		t.Errorf("after issuing warp 0, next walk started at %v, want warp 1 first", order)
	}
}

func TestTwoLevelGreedyHoldsIssuer(t *testing.T) {
	s, _ := New(TwoLevel, 4, true)
	fill(t, s, 4)

	var order []int
	s.Walk(issueOn(2, &order))
	order = nil
	s.Walk(issueOn(2, &order))
	if order[0] != 2 {
		t.Errorf("greedy cursor left the issuer: next walk order %v, want warp 2 first", order)
	}
}

func TestTwoLevelDescheduleMidWalk(t *testing.T) {
	s, _ := New(TwoLevel, 4, false)
	fill(t, s, 4)

	// Every candidate descheduled: the walk must visit all four exactly
	// once despite in-place removal, and empty the set.
	var order []int
	issued := s.Walk(func(w int) Action {
		order = append(order, w)
		return Deschedule
	})
	if issued {
		t.Error("walk reported an issue with no issuer")
	}
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Errorf("deschedule walk visited %v, want %v", order, want)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after descheduling all, want 0", s.Len())
	}
}

func TestTwoLevelIssuedGoneRemoves(t *testing.T) {
	s, _ := New(TwoLevel, 4, false)
	fill(t, s, 4)

	// Warp 1 issues a barrier/exit-class instruction: it leaves the set
	// and the cursor lands on its successor (warp 2).
	s.Walk(func(w int) Action {
		if w == 1 {
			return IssuedGone
		}
		return Keep
	})
	if want := []int{0, 2, 3}; !reflect.DeepEqual(s.Active(), want) {
		t.Fatalf("Active = %v, want %v", s.Active(), want)
	}
	var order []int
	s.Walk(issueOn(-1, &order))
	if want := []int{2, 3, 0}; !reflect.DeepEqual(order, want) {
		t.Errorf("post-removal walk order %v, want %v", order, want)
	}
}

func TestGTOGreedyThenOldest(t *testing.T) {
	s, _ := New(GTO, 4, false)
	fill(t, s, 4)

	// First walk issues in activation (oldest) order: warp 0.
	var order []int
	s.Walk(issueOn(0, &order))
	if order[0] != 0 {
		t.Fatalf("first GTO walk started at %v, want warp 0", order)
	}
	// Greedy pass: the last issuer is retried first even mid-list.
	order = nil
	s.Walk(issueOn(0, &order))
	if order[0] != 0 {
		t.Errorf("GTO did not retry the last issuer first: %v", order)
	}
	// When the greedy warp cannot issue, the oldest pass takes over and
	// does not revisit it.
	order = nil
	s.Walk(func(w int) Action {
		order = append(order, w)
		if w == 2 {
			return Issued
		}
		return Keep
	})
	if want := []int{0, 1, 2}; !reflect.DeepEqual(order, want) {
		t.Errorf("GTO fallback order %v, want greedy 0 then oldest 1, 2", order)
	}
	// The new issuer becomes the greedy warp.
	order = nil
	s.Walk(issueOn(2, &order))
	if order[0] != 2 {
		t.Errorf("GTO greedy warp not updated: %v", order)
	}
}

func TestGTOIssuedGoneClearsGreedy(t *testing.T) {
	s, _ := New(GTO, 4, false)
	fill(t, s, 4)

	s.Walk(issueOn(1, new([]int)))
	// The greedy warp exits: it must leave the set and the next walk
	// falls back to pure oldest-first.
	s.Walk(func(w int) Action {
		if w == 1 {
			return IssuedGone
		}
		return Keep
	})
	if want := []int{0, 2, 3}; !reflect.DeepEqual(s.Active(), want) {
		t.Fatalf("Active = %v, want %v", s.Active(), want)
	}
	var order []int
	s.Walk(issueOn(-1, &order))
	if want := []int{0, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Errorf("post-exit walk order %v, want oldest-first %v", order, want)
	}
}
