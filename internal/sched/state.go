package sched

import "fmt"

// State is a policy's frozen scheduling state: the active list plus the
// policy cursor (the round-robin position for TwoLevel, the last issuer
// for GTO). It is the scheduler's contribution to an SM snapshot
// (internal/snapshot): Snapshot deep-copies the active list, so a State
// stays valid however the live scheduler mutates afterwards, and one
// State can seed any number of forks.
type State struct {
	// Policy identifies the implementation the state belongs to; Restore
	// refuses a mismatch rather than reinterpret a cursor.
	Policy Policy
	// Capacity is the active-set capacity the state was captured under.
	Capacity int
	// Active is the active list in policy-internal order.
	Active []int
	// Cursor is the policy cursor: twoLevel.rr or gto.last.
	Cursor int
}

// checkRestore validates the structural fields shared by both policies.
func (st *State) checkRestore(p Policy, capacity int) error {
	if st.Policy != p {
		return fmt.Errorf("sched: cannot restore %s state into a %s scheduler", st.Policy, p)
	}
	if st.Capacity != capacity {
		return fmt.Errorf("sched: active-set capacity changed from %d to %d across a snapshot", st.Capacity, capacity)
	}
	if len(st.Active) > capacity {
		return fmt.Errorf("sched: state holds %d active warps, capacity is %d", len(st.Active), capacity)
	}
	return nil
}

func (s *twoLevel) Snapshot() State {
	return State{
		Policy:   TwoLevel,
		Capacity: s.capacity,
		Active:   append([]int(nil), s.active...),
		Cursor:   s.rr,
	}
}

func (s *twoLevel) Restore(st State) error {
	if err := st.checkRestore(TwoLevel, s.capacity); err != nil {
		return err
	}
	s.active = append(s.active[:0], st.Active...)
	s.rr = st.Cursor
	return nil
}

func (s *gto) Snapshot() State {
	return State{
		Policy:   GTO,
		Capacity: s.capacity,
		Active:   append([]int(nil), s.active...),
		Cursor:   s.last,
	}
}

func (s *gto) Restore(st State) error {
	if err := st.checkRestore(GTO, s.capacity); err != nil {
		return err
	}
	s.active = append(s.active[:0], st.Active...)
	s.last = st.Cursor
	return nil
}
