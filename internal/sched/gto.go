package sched

// gto is the greedy-then-oldest scheduler: the warp that issued last
// retries first (greedy), and when it cannot issue the remaining active
// warps are tried in activation order — the active list is append-only on
// promotion, so list order is oldest-activation-first. Promotion and
// long-latency descheduling follow the same two-level rules as the
// paper's policy; only the issue ordering differs, which is what makes a
// TwoLevel-vs-GTO differential isolate the policy itself.
type gto struct {
	capacity int
	active   []int // activation (oldest-first) order
	last     int   // warp that issued most recently, -1 when none
}

func newGTO(capacity int) *gto {
	return &gto{capacity: capacity, active: make([]int, 0, capacity), last: -1}
}

func (s *gto) Policy() Policy {
	return GTO
}

func (s *gto) Refill(pool Pool, now int64) {
	s.active = refill(s.active, s.capacity, pool, now)
}

func (s *gto) Active() []int { return s.active }
func (s *gto) Len() int      { return len(s.active) }

func (s *gto) Walk(visit func(w int) Action) bool {
	// Greedy pass: retry the last issuer while it remains active.
	greedyHeld := -1
	if s.last >= 0 {
		if pos := s.find(s.last); pos >= 0 {
			switch visit(s.last) {
			case Keep:
				greedyHeld = s.last // visited; skip in the oldest pass
			case Deschedule:
				s.removeAt(pos)
			case Issued:
				return true
			case IssuedGone:
				s.removeAt(pos)
				s.last = -1
				return true
			}
		}
	}
	// Oldest pass: activation order over the rest of the set.
	for pos := 0; pos < len(s.active); pos++ {
		w := s.active[pos]
		if w == greedyHeld {
			continue
		}
		switch visit(w) {
		case Keep:
		case Deschedule:
			s.removeAt(pos)
			pos--
		case Issued:
			s.last = w
			return true
		case IssuedGone:
			s.removeAt(pos)
			if s.last == w {
				s.last = -1
			}
			return true
		}
	}
	return false
}

// find returns the active-list position of warp w, or -1.
func (s *gto) find(w int) int {
	for i, a := range s.active {
		if a == w {
			return i
		}
	}
	return -1
}

// removeAt deletes the active-list entry at position pos, preserving
// activation order.
func (s *gto) removeAt(pos int) {
	s.active = append(s.active[:pos], s.active[pos+1:]...)
}
