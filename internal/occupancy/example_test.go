package occupancy_test

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/occupancy"
)

// ExampleCompute shows CTA-granular residency: needle's 8.8 KB-per-CTA
// scratchpad footprint limits the baseline SM to 7 CTAs (224 threads),
// the starvation the unified design relieves.
func ExampleCompute() {
	needle := config.KernelRequirements{
		RegsPerThread:     18,
		ThreadsPerCTA:     32,
		SharedBytesPerCTA: 8976,
	}
	r := occupancy.Compute(needle, config.Baseline(), 0)
	fmt.Printf("%d CTAs, %d threads, limited by %v\n", r.CTAs, r.Threads, r.Limiter)
	// Output:
	// 7 CTAs, 224 threads, limited by shared
}
