// Package occupancy computes CTA-granular thread residency: how many
// cooperative thread arrays of a kernel fit on an SM given the register
// file and shared memory capacities of a configuration.
//
// Occupancy is the lever through which local-memory capacity affects
// performance in the paper: a larger register file or shared memory admits
// more concurrent threads, which hides more DRAM latency.
package occupancy

import (
	"fmt"

	"repro/internal/config"
)

// Limiter identifies which resource bounds residency.
type Limiter uint8

const (
	// LimitThreads means the architectural (or requested) thread cap binds.
	LimitThreads Limiter = iota
	// LimitRegisters means register file capacity binds.
	LimitRegisters
	// LimitShared means shared memory capacity binds.
	LimitShared
	// LimitNone means not even one CTA fits.
	LimitNone
)

// String names the limiter.
func (l Limiter) String() string {
	switch l {
	case LimitThreads:
		return "threads"
	case LimitRegisters:
		return "registers"
	case LimitShared:
		return "shared"
	case LimitNone:
		return "none-fit"
	}
	return fmt.Sprintf("Limiter(%d)", uint8(l))
}

// Result describes the residency computation.
type Result struct {
	// CTAs is the number of concurrently resident CTAs.
	CTAs int
	// Threads is CTAs * ThreadsPerCTA.
	Threads int
	// Warps is Threads / 32.
	Warps int
	// Limiter names the binding resource.
	Limiter Limiter
	// RFBytesUsed and SharedBytesUsed are the footprints of the resident
	// CTAs.
	RFBytesUsed, SharedBytesUsed int
}

// Compute returns the residency of a kernel with the given requirements
// under cfg. regsAllocated is the register count actually allocated per
// thread, which may be below req.RegsPerThread when the sweep forces
// spills; pass 0 to use req.RegsPerThread.
func Compute(req config.KernelRequirements, cfg config.MemConfig, regsAllocated int) Result {
	if regsAllocated <= 0 {
		regsAllocated = req.RegsPerThread
	}
	if req.ThreadsPerCTA <= 0 {
		return Result{Limiter: LimitNone}
	}
	limit := cfg.ThreadLimit()
	ctasByThreads := limit / req.ThreadsPerCTA
	ctas := ctasByThreads
	limiter := LimitThreads

	rfPerCTA := regsAllocated * 4 * req.ThreadsPerCTA
	if rfPerCTA > 0 {
		byRF := cfg.RFBytes / rfPerCTA
		if byRF < ctas {
			ctas, limiter = byRF, LimitRegisters
		}
	}
	if req.SharedBytesPerCTA > 0 {
		byShmem := cfg.SharedBytes / req.SharedBytesPerCTA
		if byShmem < ctas {
			ctas, limiter = byShmem, LimitShared
		}
	}
	if ctas <= 0 {
		return Result{Limiter: LimitNone}
	}
	return Result{
		CTAs:            ctas,
		Threads:         ctas * req.ThreadsPerCTA,
		Warps:           ctas * req.ThreadsPerCTA / 32,
		Limiter:         limiter,
		RFBytesUsed:     ctas * rfPerCTA,
		SharedBytesUsed: ctas * req.SharedBytesPerCTA,
	}
}

// FullOccupancyRFBytes returns the register file capacity needed to run the
// architectural thread limit without spills (Table 1, column 8).
func FullOccupancyRFBytes(regsPerThread int) int {
	return regsPerThread * 4 * config.MaxThreadsPerSM
}

// MinRegsForResidency returns the largest register allocation (capped at
// need) that still admits at least `threads` resident threads under an RF
// of rfBytes, or 0 if even one register per thread does not fit. It lets
// sweeps trade spills against thread count the way Figure 2 does.
func MinRegsForResidency(rfBytes, threads, need int) int {
	if threads <= 0 {
		return 0
	}
	regs := rfBytes / (4 * threads)
	if regs > need {
		regs = need
	}
	return regs
}
