package occupancy

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func req(regs, ctaThreads, shmPerCTA int) config.KernelRequirements {
	return config.KernelRequirements{
		RegsPerThread:     regs,
		ThreadsPerCTA:     ctaThreads,
		SharedBytesPerCTA: shmPerCTA,
	}
}

func TestThreadLimited(t *testing.T) {
	r := Compute(req(16, 256, 1024), config.Baseline(), 0)
	if r.Limiter != LimitThreads {
		t.Errorf("Limiter = %v, want threads", r.Limiter)
	}
	if r.Threads != 1024 || r.CTAs != 4 || r.Warps != 32 {
		t.Errorf("got %+v", r)
	}
}

func TestRegisterLimited(t *testing.T) {
	// 57 regs * 4 B * 256 threads = 58368 B per CTA; 256 KB fits 4 CTAs
	// (233472 B), so dgemm stays thread limited at baseline; at 128 KB RF
	// it becomes register limited with 2 CTAs.
	cfg := config.Baseline()
	cfg.RFBytes = 128 << 10
	r := Compute(req(57, 256, 0), cfg, 0)
	if r.Limiter != LimitRegisters {
		t.Errorf("Limiter = %v, want registers", r.Limiter)
	}
	if r.CTAs != 2 {
		t.Errorf("CTAs = %d, want 2", r.CTAs)
	}
}

func TestSharedLimited(t *testing.T) {
	// Needle-like: 16 KB/CTA of shared memory in a 64 KB scratchpad.
	r := Compute(req(18, 64, 16<<10), config.Baseline(), 0)
	if r.Limiter != LimitShared {
		t.Errorf("Limiter = %v, want shared", r.Limiter)
	}
	if r.CTAs != 4 || r.Threads != 256 {
		t.Errorf("got %+v", r)
	}
}

func TestNoneFit(t *testing.T) {
	cfg := config.MemConfig{Design: config.Partitioned, RFBytes: 1024, SharedBytes: 0, CacheBytes: 0}
	r := Compute(req(64, 256, 0), cfg, 0)
	if r.Limiter != LimitNone || r.CTAs != 0 {
		t.Errorf("got %+v, want none-fit", r)
	}
	r = Compute(req(8, 0, 0), config.Baseline(), 0)
	if r.Limiter != LimitNone {
		t.Errorf("zero CTA size: got %+v", r)
	}
}

func TestRegsAllocatedOverride(t *testing.T) {
	// Allocating only 18 of the needed 57 registers raises occupancy.
	cfg := config.Baseline()
	cfg.RFBytes = 128 << 10
	full := Compute(req(57, 256, 0), cfg, 0)
	squeezed := Compute(req(57, 256, 0), cfg, 18)
	if squeezed.Threads <= full.Threads {
		t.Errorf("smaller allocation should admit more threads: %d vs %d",
			squeezed.Threads, full.Threads)
	}
}

func TestMaxThreadsCapInConfig(t *testing.T) {
	cfg := config.Baseline()
	cfg.MaxThreads = 512
	r := Compute(req(8, 256, 0), cfg, 0)
	if r.Threads != 512 || r.Limiter != LimitThreads {
		t.Errorf("got %+v", r)
	}
}

func TestFullOccupancyRFBytes(t *testing.T) {
	// Table 1: needle needs 18 regs -> 72 KB; dgemm 57 -> 228 KB.
	if got := FullOccupancyRFBytes(18); got != 72<<10 {
		t.Errorf("FullOccupancyRFBytes(18) = %d, want 72K", got)
	}
	if got := FullOccupancyRFBytes(57); got != 228<<10 {
		t.Errorf("FullOccupancyRFBytes(57) = %d, want 228K", got)
	}
}

func TestMinRegsForResidency(t *testing.T) {
	// 256 KB RF, 1024 threads -> 64 regs available; demand 57 caps at 57.
	if got := MinRegsForResidency(256<<10, 1024, 57); got != 57 {
		t.Errorf("got %d, want 57", got)
	}
	// 128 KB RF, 1024 threads -> 32 regs.
	if got := MinRegsForResidency(128<<10, 1024, 57); got != 32 {
		t.Errorf("got %d, want 32", got)
	}
	if got := MinRegsForResidency(128<<10, 0, 57); got != 0 {
		t.Errorf("zero threads: got %d", got)
	}
}

// TestOccupancyInvariants property-checks that the residency never exceeds
// any capacity and is always a whole number of CTAs.
func TestOccupancyInvariants(t *testing.T) {
	f := func(regs, warps, shmKB, rfKB, shKB uint8) bool {
		r := req(1+int(regs)%64, 32*(1+int(warps)%8), (int(shmKB)%40)<<10)
		cfg := config.MemConfig{
			Design:      config.Partitioned,
			RFBytes:     (1 + int(rfKB)) << 10,
			SharedBytes: (int(shKB) % 65) << 10,
			CacheBytes:  64 << 10,
		}
		res := Compute(r, cfg, 0)
		if res.CTAs == 0 {
			return res.Threads == 0
		}
		if res.Threads != res.CTAs*r.ThreadsPerCTA {
			return false
		}
		if res.RFBytesUsed > cfg.RFBytes || res.SharedBytesUsed > cfg.SharedBytes {
			return false
		}
		return res.Threads <= config.MaxThreadsPerSM
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
