package occupancy

import "repro/internal/config"

// ComputeShared returns per-stream residency when several kernels are
// co-resident on one SM. CTA slots are admitted greedily round-robin:
// each round offers every stream, in index order, one more CTA, which is
// admitted only if the joint thread, register-file, and shared-memory
// budgets still hold. Footprints only grow, so a stream that fails
// admission is blocked for good; the loop ends when every stream is
// blocked. The round-robin order matches the dispatcher's CTA-slot
// interleaving, so slot layout follows directly from this result.
//
// regsAllocated optionally overrides the register allocation per stream
// (nil or a zero entry means the stream's RegsPerThread). Each stream's
// Limiter names the resource that denied its next CTA; a stream that
// admits no CTA at all reports LimitNone, mirroring Compute.
func ComputeShared(reqs []config.KernelRequirements, cfg config.MemConfig, regsAllocated []int) []Result {
	out := make([]Result, len(reqs))
	blocked := make([]bool, len(reqs))
	limit := cfg.ThreadLimit()
	threads, rfUsed, shUsed := 0, 0, 0
	for i, req := range reqs {
		if req.ThreadsPerCTA <= 0 {
			blocked[i] = true
		}
	}
	for progress := true; progress; {
		progress = false
		for i, req := range reqs {
			if blocked[i] {
				continue
			}
			regs := req.RegsPerThread
			if regsAllocated != nil && regsAllocated[i] > 0 {
				regs = regsAllocated[i]
			}
			rfPerCTA := regs * 4 * req.ThreadsPerCTA
			switch {
			case threads+req.ThreadsPerCTA > limit:
				blocked[i] = true
				out[i].Limiter = LimitThreads
			case rfUsed+rfPerCTA > cfg.RFBytes:
				blocked[i] = true
				out[i].Limiter = LimitRegisters
			case shUsed+req.SharedBytesPerCTA > cfg.SharedBytes:
				blocked[i] = true
				out[i].Limiter = LimitShared
			default:
				out[i].CTAs++
				out[i].RFBytesUsed += rfPerCTA
				out[i].SharedBytesUsed += req.SharedBytesPerCTA
				threads += req.ThreadsPerCTA
				rfUsed += rfPerCTA
				shUsed += req.SharedBytesPerCTA
				progress = true
			}
		}
	}
	for i, req := range reqs {
		if out[i].CTAs <= 0 {
			out[i] = Result{Limiter: LimitNone}
			continue
		}
		out[i].Threads = out[i].CTAs * req.ThreadsPerCTA
		out[i].Warps = out[i].Threads / 32
	}
	return out
}
