// Package energy implements the paper's Section 5.2 energy model.
//
// Energy is computed from the event counters of a simulation run and the
// configuration's structure sizes:
//
//   - Bank access energy uses the Table 4 CACTI/synthesis-derived points
//     (2 KB: 3.9/5.1 pJ, 8 KB: 9.8/11.8 pJ, 12 KB: 12.1/14.9 pJ per
//     16-byte access) with piecewise power-law interpolation between them,
//     so the paper's sizes reproduce exactly.
//   - Unified shared-memory and cache accesses pay a 10% wiring/muxing
//     overhead (the 4:1 cluster mux and longer crossbar of Section 5.2).
//   - SM dynamic power other than bank accesses is held constant across
//     configurations (the paper's assumption: "we assume that dynamic
//     power for the SM is constant"), calibrated from the baseline
//     256/64/64 run of each benchmark at 1.9 W total dynamic SM power.
//     Faster configurations therefore spend less non-bank dynamic energy,
//     which is where most of the paper's energy savings come from.
//   - Leakage is 0.7 W per SM core plus 2.37 mW per KB of SRAM, scaled by
//     runtime, so faster configurations leak less.
//   - DRAM transfers cost 40 pJ/bit.
package energy

import (
	"math"

	"repro/internal/config"
	"repro/internal/stats"
)

// Params holds the Table 3/4 energy constants. All energies are in
// picojoules, powers in watts, and the clock in hertz.
type Params struct {
	// Frequency converts cycles to seconds (1 GHz).
	Frequency float64
	// SMDynamicPower is the calibrated dynamic power of one SM running
	// the baseline configuration (1.9 W).
	SMDynamicPower float64
	// SMCoreLeakage is the capacity-independent SM leakage (0.7 W).
	SMCoreLeakage float64
	// SRAMLeakagePerKB is SRAM leakage per KB of local storage
	// (2.37 mW/KB, the paper's adjustment constant).
	SRAMLeakagePerKB float64
	// DRAMEnergyPerBit is DRAM access energy (40 pJ/bit).
	DRAMEnergyPerBit float64
	// UnifiedWiringOverhead is the multiplicative penalty on unified
	// shared/cache bank accesses (1.10).
	UnifiedWiringOverhead float64
	// ORFAccessPJ and LRFAccessPJ are per-warp-operand (128-byte)
	// energies of the small per-thread structures, estimated from the
	// register-hierarchy paper [Gebhart MICRO 2011].
	ORFAccessPJ float64
	LRFAccessPJ float64
	// TagProbePJ is the cache tag lookup energy per probe.
	TagProbePJ float64
}

// DefaultParams returns the paper's constants.
func DefaultParams() Params {
	return Params{
		Frequency:             1e9,
		SMDynamicPower:        1.9,
		SMCoreLeakage:         0.7,
		SRAMLeakagePerKB:      2.37e-3,
		DRAMEnergyPerBit:      40e-12,
		UnifiedWiringOverhead: 1.10,
		ORFAccessPJ:           15,
		LRFAccessPJ:           4,
		TagProbePJ:            1,
	}
}

// bankPoint is one Table 4 calibration point.
type bankPoint struct {
	bytes       float64
	read, write float64 // pJ per 16-byte access
}

// table4 holds the published SRAM bank energies.
var table4 = []bankPoint{
	{2 << 10, 3.9, 5.1},
	{8 << 10, 9.8, 11.8},
	{12 << 10, 12.1, 14.9},
}

// BankEnergy returns the read and write energy in pJ of one 16-byte access
// to an SRAM bank of the given capacity, interpolating Table 4 with a
// piecewise power law (exact at the published sizes).
func BankEnergy(bankBytes int) (readPJ, writePJ float64) {
	b := float64(bankBytes)
	if b <= 0 {
		return 0, 0
	}
	interp := func(x0, y0, x1, y1, x float64) float64 {
		p := math.Log(y1/y0) / math.Log(x1/x0)
		return y0 * math.Pow(x/x0, p)
	}
	lo, hi := table4[0], table4[len(table4)-1]
	switch {
	case b <= lo.bytes:
		next := table4[1]
		return interp(lo.bytes, lo.read, next.bytes, next.read, b),
			interp(lo.bytes, lo.write, next.bytes, next.write, b)
	case b >= hi.bytes:
		prev := table4[len(table4)-2]
		return interp(prev.bytes, prev.read, hi.bytes, hi.read, b),
			interp(prev.bytes, prev.write, hi.bytes, hi.write, b)
	default:
		for i := 0; i+1 < len(table4); i++ {
			a, c := table4[i], table4[i+1]
			if b >= a.bytes && b <= c.bytes {
				return interp(a.bytes, a.read, c.bytes, c.read, b),
					interp(a.bytes, a.write, c.bytes, c.write, b)
			}
		}
	}
	return 0, 0 // unreachable
}

// Breakdown is the per-run energy report in joules.
type Breakdown struct {
	MRF    float64 // main register file bank accesses
	ORF    float64 // operand register file accesses
	LRF    float64 // last result file accesses
	Shared float64 // shared memory bank accesses
	Cache  float64 // cache data bank accesses
	Tags   float64 // cache tag probes
	Other  float64 // remaining (constant) SM dynamic energy
	Leak   float64 // SM core + SRAM leakage over the runtime
	DRAM   float64 // off-chip access energy
}

// AccessTotal returns the local-memory access portion (everything the
// unified design changes).
func (b Breakdown) AccessTotal() float64 {
	return b.MRF + b.ORF + b.LRF + b.Shared + b.Cache + b.Tags
}

// Total returns total energy in joules.
func (b Breakdown) Total() float64 {
	return b.AccessTotal() + b.Other + b.Leak + b.DRAM
}

// Model evaluates runs under one set of parameters.
type Model struct {
	P Params
}

// NewModel returns a model with the default parameters.
func NewModel() Model { return Model{P: DefaultParams()} }

const pJ = 1e-12

// clusterBanksPerWarpOperand is how many MRF banks one warp-wide operand
// access touches: one 16-byte bank in each of the 8 clusters.
const clusterBanksPerWarpOperand = config.NumClusters

// accessEnergy computes the local-memory access energy of a run.
func (m Model) accessEnergy(cfg config.MemConfig, c *stats.Counters) Breakdown {
	rfBank, shBank, chBank := cfg.BankBytes()
	rfR, rfW := BankEnergy(rfBank)
	shR, shW := BankEnergy(shBank)
	chR, chW := BankEnergy(chBank)

	memOverhead := 1.0
	if cfg.Design == config.Unified {
		memOverhead = m.P.UnifiedWiringOverhead
	}

	var b Breakdown
	b.MRF = pJ * clusterBanksPerWarpOperand *
		(float64(c.MRFReads)*rfR + float64(c.MRFWrites)*rfW)
	b.ORF = pJ * m.P.ORFAccessPJ * float64(c.ORFReads+c.ORFWrites)
	b.LRF = pJ * m.P.LRFAccessPJ * float64(c.LRFReads+c.LRFWrites)

	// Shared-memory counters are bank touches. A partitioned touch moves
	// 4 bytes from a 4-byte-wide bank (a quarter of the Table 4 16-byte
	// access); a unified touch moves 16 bytes and pays the wiring adder.
	shFrac := 0.25
	if cfg.Design == config.Unified {
		shFrac = 1.0
	}
	b.Shared = pJ * memOverhead * shFrac *
		(float64(c.SharedReads)*shR + float64(c.SharedWrites)*shW)

	// Cache data counters are line accesses (128 bytes = eight 16-byte
	// bank accesses in either design's aggregate width).
	const banksPerLine = config.CacheLineBytes / 16
	b.Cache = pJ * memOverhead * banksPerLine *
		(float64(c.CacheDataReads)*chR + float64(c.CacheDataWrites)*chW)
	b.Tags = pJ * memOverhead * m.P.TagProbePJ * float64(c.CacheProbes)
	return b
}

// seconds converts a run's cycle count to seconds.
func (m Model) seconds(c *stats.Counters) float64 {
	return float64(c.Cycles) / m.P.Frequency
}

// CalibrateOther returns the constant non-bank SM dynamic POWER (watts)
// of a benchmark, from its baseline-configuration run: 1.9 W minus the
// baseline bank-access power (floored at zero). Per the paper's Section
// 5.2, this power is held constant across configurations, so a faster
// configuration spends proportionally less non-bank dynamic energy.
func (m Model) CalibrateOther(baselineCfg config.MemConfig, baseline *stats.Counters) float64 {
	t := m.seconds(baseline)
	if t == 0 {
		return 0
	}
	other := m.P.SMDynamicPower - m.accessEnergy(baselineCfg, baseline).AccessTotal()/t
	if other < 0 {
		other = 0
	}
	return other
}

// Evaluate produces the full energy breakdown of a run. otherDynamic is
// the CalibrateOther power (watts) from the benchmark's baseline run
// (pass a negative value to calibrate on this run itself).
func (m Model) Evaluate(cfg config.MemConfig, c *stats.Counters, otherDynamic float64) Breakdown {
	b := m.accessEnergy(cfg, c)
	if otherDynamic < 0 {
		otherDynamic = m.CalibrateOther(cfg, c)
	}
	t := m.seconds(c)
	b.Other = otherDynamic * t
	leakW := m.P.SMCoreLeakage + m.P.SRAMLeakagePerKB*float64(cfg.TotalBytes())/1024
	b.Leak = leakW * t
	b.DRAM = m.P.DRAMEnergyPerBit * 8 * float64(c.DRAMBytes())
	return b
}
