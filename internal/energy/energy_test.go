package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/stats"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestBankEnergyTable4Exact verifies the published calibration points
// reproduce exactly (Table 4).
func TestBankEnergyTable4Exact(t *testing.T) {
	cases := []struct {
		bytes       int
		read, write float64
	}{
		{2 << 10, 3.9, 5.1},    // partitioned shared/cache bank
		{8 << 10, 9.8, 11.8},   // partitioned MRF bank
		{12 << 10, 12.1, 14.9}, // 384 KB unified bank
	}
	for _, c := range cases {
		r, w := BankEnergy(c.bytes)
		if !almost(r, c.read, 1e-9) || !almost(w, c.write, 1e-9) {
			t.Errorf("BankEnergy(%d) = %.3f/%.3f, want %.1f/%.1f", c.bytes, r, w, c.read, c.write)
		}
	}
}

func TestBankEnergyMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		s1 := 256 + int(a)%(32<<10)
		s2 := 256 + int(b)%(32<<10)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		r1, w1 := BankEnergy(s1)
		r2, w2 := BankEnergy(s2)
		return r1 <= r2+1e-9 && w1 <= w2+1e-9 && r1 > 0 && w1 > r1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBankEnergyZero(t *testing.T) {
	r, w := BankEnergy(0)
	if r != 0 || w != 0 {
		t.Error("zero bank should cost nothing")
	}
}

func TestUnifiedBankCostsMoreThanPartitioned(t *testing.T) {
	// 384 KB across 32 banks: 12 KB unified banks vs 8 KB MRF banks.
	rUni, _ := BankEnergy(12 << 10)
	rPart, _ := BankEnergy(8 << 10)
	if rUni <= rPart {
		t.Errorf("unified bank read %.2f should exceed partitioned %.2f", rUni, rPart)
	}
}

func baselineCounters() *stats.Counters {
	return &stats.Counters{
		Cycles:    1_000_000,
		WarpInsts: 800_000,
		MRFReads:  500_000, MRFWrites: 300_000,
		ORFReads: 400_000, ORFWrites: 200_000,
		LRFReads: 300_000, LRFWrites: 300_000,
		SharedReads: 100_000, SharedWrites: 50_000,
		CacheDataReads: 60_000, CacheDataWrites: 20_000,
		CacheProbes:   90_000,
		DRAMReadBytes: 50 << 20, DRAMWriteBytes: 10 << 20,
	}
}

func TestEvaluateBreakdownPositive(t *testing.T) {
	m := NewModel()
	b := m.Evaluate(config.Baseline(), baselineCounters(), -1)
	for name, v := range map[string]float64{
		"MRF": b.MRF, "ORF": b.ORF, "LRF": b.LRF, "Shared": b.Shared,
		"Cache": b.Cache, "Tags": b.Tags, "Leak": b.Leak, "DRAM": b.DRAM,
	} {
		if v <= 0 {
			t.Errorf("%s energy = %v, want positive", name, v)
		}
	}
	if b.Total() < b.AccessTotal() {
		t.Error("Total() below access energy")
	}
}

func TestCalibrationMakesBaselineDynamicMatch(t *testing.T) {
	m := NewModel()
	c := baselineCounters()
	cfg := config.Baseline()
	other := m.CalibrateOther(cfg, c)
	b := m.Evaluate(cfg, c, other)
	t_s := float64(c.Cycles) / m.P.Frequency
	wantDyn := m.P.SMDynamicPower * t_s
	if !almost(b.AccessTotal()+b.Other, wantDyn, wantDyn*1e-9) {
		t.Errorf("baseline dynamic = %v, want %v", b.AccessTotal()+b.Other, wantDyn)
	}
}

func TestDRAMEnergyExact(t *testing.T) {
	m := NewModel()
	c := &stats.Counters{Cycles: 1000, DRAMReadBytes: 1000}
	b := m.Evaluate(config.Baseline(), c, 0)
	want := 40e-12 * 8 * 1000
	if !almost(b.DRAM, want, want*1e-12) {
		t.Errorf("DRAM energy = %v, want %v", b.DRAM, want)
	}
}

func TestLeakageScalesWithCapacityAndTime(t *testing.T) {
	m := NewModel()
	c := &stats.Counters{Cycles: 1_000_000}
	small := config.MemConfig{Design: config.Unified, RFBytes: 64 << 10, SharedBytes: 32 << 10, CacheBytes: 32 << 10}
	big := config.MemConfig{Design: config.Unified, RFBytes: 256 << 10, SharedBytes: 64 << 10, CacheBytes: 64 << 10}
	bs := m.Evaluate(small, c, 0)
	bb := m.Evaluate(big, c, 0)
	if bs.Leak >= bb.Leak {
		t.Errorf("leakage should grow with capacity: %v vs %v", bs.Leak, bb.Leak)
	}
	// Twice the runtime, twice the leakage.
	c2 := &stats.Counters{Cycles: 2_000_000}
	bb2 := m.Evaluate(big, c2, 0)
	if !almost(bb2.Leak, 2*bb.Leak, bb.Leak*1e-9) {
		t.Errorf("leakage not linear in time: %v vs %v", bb2.Leak, bb.Leak)
	}
}

// TestUnifiedOverheadVisible replays identical counters under both designs:
// the unified design must charge more for shared/cache accesses (larger
// banks + wiring) — the Section 6.1 overhead.
func TestUnifiedOverheadVisible(t *testing.T) {
	m := NewModel()
	c := baselineCounters()
	part := m.Evaluate(config.Baseline(), c, 0)
	uni := config.Baseline()
	uni.Design = config.Unified
	uniB := m.Evaluate(uni, c, 0)
	if uniB.Cache <= part.Cache {
		t.Errorf("unified cache access energy %v should exceed partitioned %v", uniB.Cache, part.Cache)
	}
	if uniB.MRF <= part.MRF {
		t.Errorf("unified MRF access energy %v should exceed partitioned %v", uniB.MRF, part.MRF)
	}
}

func TestCalibrateOtherNeverNegative(t *testing.T) {
	m := NewModel()
	// Absurdly access-heavy counters against a tiny runtime.
	c := &stats.Counters{Cycles: 1, MRFReads: 1 << 40}
	if got := m.CalibrateOther(config.Baseline(), c); got < 0 {
		t.Errorf("CalibrateOther() = %v, want >= 0", got)
	}
}
