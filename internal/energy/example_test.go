package energy_test

import (
	"fmt"

	"repro/internal/energy"
)

// ExampleBankEnergy reproduces the paper's Table 4: per-16-byte-access
// energies of the partitioned MRF bank (8 KB), the partitioned shared or
// cache bank (2 KB), and the 384 KB unified design's bank (12 KB).
func ExampleBankEnergy() {
	for _, kb := range []int{8, 2, 12} {
		r, w := energy.BankEnergy(kb << 10)
		fmt.Printf("%d KB bank: read %.1f pJ, write %.1f pJ\n", kb, r, w)
	}
	// Output:
	// 8 KB bank: read 9.8 pJ, write 11.8 pJ
	// 2 KB bank: read 3.9 pJ, write 5.1 pJ
	// 12 KB bank: read 12.1 pJ, write 14.9 pJ
}
