// Package cache implements the SM primary data cache: set associative,
// 128-byte lines, write-through, no-write-allocate, LRU replacement, and a
// single tag port (the one-lookup-per-cycle structural constraint is
// enforced by the SM timing model, which serializes distinct-line accesses).
//
// The cache is purely behavioral — it tracks only tags, never data. The
// write-through policy matters to the paper twice: stores always send their
// bytes to DRAM, and repartitioning the unified memory between kernels never
// has dirty lines to evict (Section 4.4). A write-back write-allocate
// variant (AccessAllocate/DirtyLines) exists for the design-choice ablation.
package cache

import (
	"fmt"

	"repro/internal/config"
)

const invalidTag = ^uint32(0)

// Cache is a behavioral set-associative tag store.
type Cache struct {
	sets      int
	ways      int
	lineBytes int

	tags  []uint32 // sets * ways entries holding line addresses
	age   []uint32 // LRU timestamps, parallel to tags
	dirty []bool   // write-back mode only
	tick  uint32

	hits, misses int64
}

// New builds a cache of the given capacity. A zero or negative capacity
// yields a cache on which every access misses (the paper's "0 KB cache"
// characterization point).
func New(capacityBytes int) *Cache {
	c := &Cache{ways: config.CacheWays, lineBytes: config.CacheLineBytes}
	if capacityBytes <= 0 {
		return c
	}
	lines := capacityBytes / c.lineBytes
	c.sets = lines / c.ways
	if c.sets < 1 {
		c.sets = 1
		c.ways = lines
		if c.ways < 1 {
			return &Cache{ways: config.CacheWays, lineBytes: config.CacheLineBytes}
		}
	}
	c.tags = make([]uint32, c.sets*c.ways)
	c.age = make([]uint32, c.sets*c.ways)
	c.dirty = make([]bool, c.sets*c.ways)
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// CapacityBytes returns the cache capacity.
func (c *Cache) CapacityBytes() int { return c.sets * c.ways * c.lineBytes }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Hits returns the cumulative hit count.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the cumulative miss count.
func (c *Cache) Misses() int64 { return c.misses }

// TagBytes returns an estimate of the tag storage this cache requires,
// assuming 4-byte tag+state entries per line (the paper reports 1.125 KB
// for a 64 KB cache and up to 7.125 KB for a fully cache-configured 384 KB
// unified memory; the constant below reproduces those totals: 18 bits of
// tag + state per 128-byte line).
func (c *Cache) TagBytes() int {
	lines := c.sets * c.ways
	return lines * 18 / 8
}

// set returns the slice of tag indices for a line address.
func (c *Cache) set(line uint32) int {
	return int(line) % c.sets
}

// Read probes the cache for the line containing addr and, on a miss,
// fills it (fetch-on-read with LRU eviction; write-through means the
// victim is never dirty). It reports whether the probe hit.
func (c *Cache) Read(line uint32) bool {
	if c.sets == 0 {
		c.misses++
		return false
	}
	base := c.set(line) * c.ways
	c.tick++
	victim, oldest := base, c.tick
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == line {
			c.age[i] = c.tick
			c.hits++
			return true
		}
		if c.age[i] < oldest {
			victim, oldest = i, c.age[i]
		}
	}
	c.misses++
	c.tags[victim] = line
	c.age[victim] = c.tick
	return false
}

// Write performs a write-through, no-write-allocate store touch: if the
// line is present it is refreshed (kept coherent with DRAM), otherwise the
// cache is unchanged. It reports whether the line was present.
func (c *Cache) Write(line uint32) bool {
	if c.sets == 0 {
		return false
	}
	base := c.set(line) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == line {
			c.tick++
			c.age[i] = c.tick
			return true
		}
	}
	return false
}

// Contains reports whether the line is resident, without updating LRU
// state or counters.
func (c *Cache) Contains(line uint32) bool {
	if c.sets == 0 {
		return false
	}
	base := c.set(line) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == line {
			return true
		}
	}
	return false
}

// AccessAllocate probes for a line with allocate-on-miss semantics (the
// write-back design variant): hits refresh LRU; misses install the line,
// possibly evicting a victim. markDirty marks the line modified. It
// returns whether the probe hit and, when a modified victim was evicted,
// its line address (writeback traffic the caller must account).
func (c *Cache) AccessAllocate(line uint32, markDirty bool) (hit bool, victimDirty bool, victim uint32) {
	if c.sets == 0 {
		c.misses++
		return false, false, 0
	}
	base := c.set(line) * c.ways
	c.tick++
	vi, oldest := base, c.tick
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == line {
			c.age[i] = c.tick
			if markDirty {
				c.dirty[i] = true
			}
			c.hits++
			return true, false, 0
		}
		if c.age[i] < oldest {
			vi, oldest = i, c.age[i]
		}
	}
	c.misses++
	victimDirty = c.dirty[vi] && c.tags[vi] != invalidTag
	victim = c.tags[vi]
	c.tags[vi] = line
	c.age[vi] = c.tick
	c.dirty[vi] = markDirty
	return false, victimDirty, victim
}

// DirtyLines returns the number of modified lines resident (the state a
// write-back design must flush when the unified memory is repartitioned;
// always zero for the write-through design).
func (c *Cache) DirtyLines() int {
	n := 0
	for i, d := range c.dirty {
		if d && c.tags[i] != invalidTag {
			n++
		}
	}
	return n
}

// Flush invalidates all lines (used when the unified memory is
// repartitioned between kernels; write-through means no data movement is
// needed, only tag invalidation).
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	for i := range c.dirty {
		c.dirty[i] = false
	}
}

// String describes the geometry.
func (c *Cache) String() string {
	return fmt.Sprintf("cache %dKB %d-way %d sets %dB lines",
		c.CapacityBytes()>>10, c.ways, c.sets, c.lineBytes)
}
