package cache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	c := New(64 << 10)
	if c.CapacityBytes() != 64<<10 {
		t.Errorf("CapacityBytes() = %d", c.CapacityBytes())
	}
	if c.Sets() != 128 { // 512 lines / 4 ways
		t.Errorf("Sets() = %d, want 128", c.Sets())
	}
}

func TestTagBytesMatchesPaper(t *testing.T) {
	// The paper reports 1.125 KB of tag storage for the 64 KB cache.
	c := New(64 << 10)
	if got := c.TagBytes(); got != 1152 {
		t.Errorf("TagBytes() = %d, want 1152 (1.125 KB)", got)
	}
}

func TestReadMissThenHit(t *testing.T) {
	c := New(1 << 10)
	if c.Read(5) {
		t.Error("first access should miss")
	}
	if !c.Read(5) {
		t.Error("second access should hit")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2 KB cache = 16 lines = 4 sets of 4 ways. Lines 0,4,8,12,16 all map
	// to set 0; the fifth fill evicts line 0 (LRU).
	c := New(2 << 10)
	for _, l := range []uint32{0, 4, 8, 12} {
		c.Read(l)
	}
	c.Read(0) // refresh line 0
	c.Read(16)
	if c.Contains(4) {
		t.Error("line 4 should have been the LRU victim")
	}
	if !c.Contains(0) {
		t.Error("refreshed line 0 should survive")
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := New(1 << 10)
	if c.Write(9) {
		t.Error("write to absent line must not report presence")
	}
	if c.Contains(9) {
		t.Error("write must not allocate")
	}
	c.Read(9)
	if !c.Write(9) {
		t.Error("write to present line should report presence")
	}
}

func TestZeroCapacity(t *testing.T) {
	c := New(0)
	for i := uint32(0); i < 10; i++ {
		if c.Read(i%2) || c.Write(i%2) || c.Contains(i%2) {
			t.Fatal("zero-capacity cache must always miss")
		}
	}
	if c.Misses() != 10 {
		t.Errorf("Misses() = %d, want 10", c.Misses())
	}
}

func TestFlush(t *testing.T) {
	c := New(4 << 10)
	c.Read(1)
	c.Read(2)
	c.Flush()
	if c.Contains(1) || c.Contains(2) {
		t.Error("flush should invalidate all lines")
	}
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	// A working set smaller than capacity must be fully resident after
	// one pass regardless of access order.
	f := func(seed uint64) bool {
		c := New(8 << 10) // 64 lines
		rng := rand.New(rand.NewPCG(seed, 0))
		lines := make([]uint32, 48)
		for i := range lines {
			lines[i] = uint32(i)
		}
		for pass := 0; pass < 2; pass++ {
			rng.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
			for _, l := range lines {
				c.Read(l)
			}
		}
		return c.Misses() == 48
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHitRateImprovesWithCapacity(t *testing.T) {
	// Cyclic sweep over 128 lines: 8 KB thrashes, 32 KB holds everything.
	run := func(capacity int) int64 {
		c := New(capacity)
		for pass := 0; pass < 4; pass++ {
			for l := uint32(0); l < 128; l++ {
				c.Read(l)
			}
		}
		return c.Hits()
	}
	small, large := run(8<<10), run(32<<10)
	if small >= large {
		t.Errorf("hits: small=%d large=%d; larger cache should hit more", small, large)
	}
	if large != 3*128 {
		t.Errorf("large cache hits = %d, want all re-references (384)", large)
	}
}

func TestStringDescribesGeometry(t *testing.T) {
	if s := New(64 << 10).String(); s == "" {
		t.Error("String() empty")
	}
}

func TestTinyCapacityBelowOneSet(t *testing.T) {
	c := New(256) // 2 lines < 4 ways: degrade to a 2-way single set
	if c.Read(0) {
		t.Error("miss expected")
	}
	if !c.Read(0) {
		t.Error("hit expected")
	}
}

func TestAccessAllocateBasics(t *testing.T) {
	c := New(2 << 10) // 4 sets x 4 ways
	hit, vd, _ := c.AccessAllocate(0, true)
	if hit || vd {
		t.Errorf("first access: hit=%v victimDirty=%v", hit, vd)
	}
	hit, _, _ = c.AccessAllocate(0, false)
	if !hit {
		t.Error("second access should hit")
	}
	if c.DirtyLines() != 1 {
		t.Errorf("DirtyLines = %d, want 1", c.DirtyLines())
	}
}

func TestAccessAllocateDirtyEviction(t *testing.T) {
	c := New(2 << 10)         // lines 0,4,8,12 map to set 0
	c.AccessAllocate(0, true) // dirty
	for _, l := range []uint32{4, 8, 12} {
		c.AccessAllocate(l, false)
	}
	hit, vd, victim := c.AccessAllocate(16, false) // evicts line 0 (LRU, dirty)
	if hit {
		t.Error("line 16 should miss")
	}
	if !vd || victim != 0 {
		t.Errorf("victim: dirty=%v line=%d, want dirty line 0", vd, victim)
	}
	if c.DirtyLines() != 0 {
		t.Errorf("DirtyLines = %d after eviction", c.DirtyLines())
	}
}

func TestAccessAllocateCleanEvictionIsFree(t *testing.T) {
	c := New(2 << 10)
	for _, l := range []uint32{0, 4, 8, 12} {
		c.AccessAllocate(l, false)
	}
	_, vd, _ := c.AccessAllocate(16, false)
	if vd {
		t.Error("clean victim must not report writeback")
	}
}

func TestFlushClearsDirty(t *testing.T) {
	c := New(2 << 10)
	c.AccessAllocate(3, true)
	c.Flush()
	if c.DirtyLines() != 0 {
		t.Error("flush should clear dirty state")
	}
}

func TestAccessAllocateZeroCapacity(t *testing.T) {
	c := New(0)
	hit, vd, _ := c.AccessAllocate(1, true)
	if hit || vd {
		t.Error("zero-capacity cache should miss with no victim")
	}
}
