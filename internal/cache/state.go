package cache

import "fmt"

// State is a frozen image of the tag store: tags, LRU timestamps, dirty
// bits, the LRU tick, and the hit/miss tallies. Snapshot deep-copies the
// arrays — the live cache overwrites them in place on every access, so a
// shared slice would let a parent run corrupt its forks.
type State struct {
	// Sets and Ways pin the geometry; Restore refuses a mismatch.
	Sets, Ways int
	// Tags, Age, and Dirty are copies of the per-line arrays.
	Tags  []uint32
	Age   []uint32
	Dirty []bool
	// Tick is the LRU timestamp counter.
	Tick uint32
	// Hits and Misses are the cumulative probe tallies.
	Hits, Misses int64
}

// Snapshot captures the cache state as an immutable State.
func (c *Cache) Snapshot() *State {
	return &State{
		Sets:   c.sets,
		Ways:   c.ways,
		Tags:   append([]uint32(nil), c.tags...),
		Age:    append([]uint32(nil), c.age...),
		Dirty:  append([]bool(nil), c.dirty...),
		Tick:   c.tick,
		Hits:   c.hits,
		Misses: c.misses,
	}
}

// Restore overwrites the cache state with a previously captured State.
// It copies out of st (never aliases it), so one State can seed any
// number of forks, concurrently. The geometry must match.
func (c *Cache) Restore(st *State) error {
	if st.Sets != c.sets || st.Ways != c.ways {
		return fmt.Errorf("cache: geometry changed across a snapshot: %dx%d state, %dx%d cache",
			st.Sets, st.Ways, c.sets, c.ways)
	}
	copy(c.tags, st.Tags)
	copy(c.age, st.Age)
	copy(c.dirty, st.Dirty)
	c.tick = st.Tick
	c.hits = st.Hits
	c.misses = st.Misses
	return nil
}
