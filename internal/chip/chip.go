// Package chip simulates the full GPU of the paper's Figure 1a: many
// streaming multiprocessors sharing a channel-interleaved DRAM system.
//
// The paper's methodology (Section 5.1) simulates a single SM with a 1/32
// share of chip DRAM bandwidth, arguing that because applications run many
// CTAs the full chip behaves like 32 copies of one SM. This package exists
// to test that claim: it runs the same kernel across N SMs against a
// shared memory system and reports per-SM results that can be compared
// with the single-SM simulation (see the chip validation test and
// BenchmarkChipValidation).
//
// SMs advance in conservative global-time order: the simulator always
// steps the SM with the smallest local clock, so requests reach the shared
// DRAM system in (nearly) nondecreasing timestamp order.
package chip

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/sm"
	"repro/internal/stats"
)

// Config parameterizes the chip.
type Config struct {
	// NumSMs is the streaming-multiprocessor count (32 in the paper).
	NumSMs int
	// Mem configures the shared DRAM system; the zero value uses
	// dram.DefaultSystemConfig(NumSMs).
	Mem dram.SystemConfig
	// LaunchStagger delays SM i's first CTA launch by i*LaunchStagger
	// cycles, modeling the work distributor's sequential launch; it
	// desynchronizes identical kernels that would otherwise convoy on
	// the shared channels.
	LaunchStagger int64
}

// DefaultConfig returns the paper's 32-SM chip. Most callers scale NumSMs
// down: simulation cost grows linearly with it.
func DefaultConfig() Config {
	return Config{NumSMs: 32}
}

// Result is the outcome of a chip run.
type Result struct {
	// PerSM holds each SM's counters.
	PerSM []*stats.Counters
	// Total aggregates all SMs.
	Total stats.Counters
	// Cycles is the chip runtime: the slowest SM's cycle count.
	Cycles int64
	// DRAMReadBytes/DRAMWriteBytes are the shared system's totals.
	DRAMReadBytes, DRAMWriteBytes int64
	// OutOfOrder is the shared system's timestamp-ordering diagnostic.
	OutOfOrder int64
	// PerSMKernel names each SM's kernel on concurrent-kernel chips
	// (NewMulti); nil for single-kernel chips.
	PerSMKernel []string
}

// TraceSource mirrors sm.TraceSource.
type TraceSource = sm.TraceSource

// shardSource deals a grid's CTAs round-robin across SMs, the way the
// hardware work distributor does.
type shardSource struct {
	src          TraceSource
	smIndex, nSM int
	ctas         int
	warps        int
}

func (s *shardSource) Grid() (int, int) { return s.ctas, s.warps }

func (s *shardSource) WarpTrace(cta, warp int) []isa.WarpInst {
	return s.src.WarpTrace(cta*s.nSM+s.smIndex, warp)
}

// Chip is a configured multi-SM machine.
type Chip struct {
	cfg Config
	sms []*sm.SM
	mem *dram.System
	// names labels each SM's kernel on concurrent-kernel chips
	// (NewMulti); nil for single-kernel chips.
	names []string
}

// New builds a chip running the grid of src under memCfg on every SM.
// The grid is dealt round-robin: SM i executes CTAs i, i+N, i+2N, ...
// residentCTAs is the per-SM CTA residency (from internal/occupancy).
func New(cfg Config, memCfg config.MemConfig, params sm.Params, src TraceSource, residentCTAs int) (*Chip, error) {
	if cfg.NumSMs < 1 {
		return nil, fmt.Errorf("chip: need at least one SM")
	}
	if cfg.Mem.Channels == 0 {
		cfg.Mem = dram.DefaultSystemConfig(cfg.NumSMs)
	}
	totalCTAs, warps := src.Grid()
	if totalCTAs < cfg.NumSMs {
		return nil, fmt.Errorf("chip: grid of %d CTAs cannot feed %d SMs", totalCTAs, cfg.NumSMs)
	}
	c := &Chip{cfg: cfg, mem: dram.NewSystem(cfg.Mem)}
	for i := 0; i < cfg.NumSMs; i++ {
		share := totalCTAs / cfg.NumSMs
		if i < totalCTAs%cfg.NumSMs {
			share++
		}
		shard := &shardSource{src: src, smIndex: i, nSM: cfg.NumSMs, ctas: share, warps: warps}
		m, err := sm.NewSM(sm.Spec{
			Config: memCfg, Params: params, Source: shard,
			ResidentCTAs: residentCTAs, Memory: c.mem,
		})
		if err != nil {
			return nil, fmt.Errorf("chip: SM %d: %w", i, err)
		}
		c.sms = append(c.sms, m)
	}
	return c, nil
}

// MultiKernel is one kernel of a chip-level concurrent-kernel run.
type MultiKernel struct {
	// Name labels the kernel in results.
	Name string
	// Source supplies the kernel's grid.
	Source TraceSource
	// ResidentCTAs is the kernel's per-SM CTA residency.
	ResidentCTAs int
}

// NewMulti builds a chip running several kernels concurrently by
// partitioning the SMs among them — the work distributor's
// concurrent-kernel scheduling on real chips. Kernel j owns SMs j,
// j+K, j+2K, ...; its grid is dealt round-robin across its own SM
// subset exactly the way New deals a single grid across the whole
// chip. All kernels share the channel-interleaved DRAM system, so
// co-tenants contend in memory even though they never share an SM.
func NewMulti(cfg Config, memCfg config.MemConfig, params sm.Params, kernels []MultiKernel) (*Chip, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("chip: need at least one kernel")
	}
	if cfg.NumSMs < len(kernels) {
		return nil, fmt.Errorf("chip: %d SMs cannot host %d concurrent kernels", cfg.NumSMs, len(kernels))
	}
	if cfg.Mem.Channels == 0 {
		cfg.Mem = dram.DefaultSystemConfig(cfg.NumSMs)
	}
	c := &Chip{cfg: cfg, mem: dram.NewSystem(cfg.Mem)}
	k := len(kernels)
	for i := 0; i < cfg.NumSMs; i++ {
		mk := kernels[i%k]
		// This SM is member m of its kernel's subset of size n.
		m, n := i/k, cfg.NumSMs/k
		if i%k < cfg.NumSMs%k {
			n++
		}
		totalCTAs, warps := mk.Source.Grid()
		if totalCTAs < n {
			return nil, fmt.Errorf("chip: %s grid of %d CTAs cannot feed its %d SMs", mk.Name, totalCTAs, n)
		}
		share := totalCTAs / n
		if m < totalCTAs%n {
			share++
		}
		shard := &shardSource{src: mk.Source, smIndex: m, nSM: n, ctas: share, warps: warps}
		machine, err := sm.NewSM(sm.Spec{
			Config: memCfg, Params: params, Source: shard,
			ResidentCTAs: mk.ResidentCTAs, Memory: c.mem,
		})
		if err != nil {
			return nil, fmt.Errorf("chip: SM %d (%s): %w", i, mk.Name, err)
		}
		c.sms = append(c.sms, machine)
		c.names = append(c.names, mk.Name)
	}
	return c, nil
}

// Run executes all SMs to completion in conservative global-time order.
func (c *Chip) Run() (*Result, error) {
	for i, m := range c.sms {
		m.StartAt(int64(i) * c.cfg.LaunchStagger)
	}
	live := len(c.sms)
	for live > 0 {
		// Step the SM with the smallest local clock.
		var next *sm.SM
		for _, m := range c.sms {
			if m.Done() {
				continue
			}
			if next == nil || m.Cycle() < next.Cycle() {
				next = m
			}
		}
		if next == nil {
			break
		}
		if err := next.Step(); err != nil {
			return nil, err
		}
		if next.Done() {
			live--
		}
	}
	res := &Result{
		DRAMReadBytes:  c.mem.ReadBytes(),
		DRAMWriteBytes: c.mem.WriteBytes(),
		OutOfOrder:     c.mem.OutOfOrder(),
		PerSMKernel:    c.names,
	}
	for _, m := range c.sms {
		counters := m.Finish()
		res.PerSM = append(res.PerSM, counters)
		res.Total.Add(counters)
		if counters.Cycles > res.Cycles {
			res.Cycles = counters.Cycles
		}
	}
	return res, nil
}

// NumSMs returns the SM count.
func (c *Chip) NumSMs() int { return c.cfg.NumSMs }
