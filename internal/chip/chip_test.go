package chip

import (
	"testing"

	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/kgen"
	"repro/internal/sm"
)

// funcSource adapts a closure into a TraceSource.
type funcSource struct {
	ctas, warps int
	gen         func(cta, warp int) []isa.WarpInst
}

func (f funcSource) Grid() (int, int)                       { return f.ctas, f.warps }
func (f funcSource) WarpTrace(cta, warp int) []isa.WarpInst { return f.gen(cta, warp) }

// computeKernel emits a latency-tolerant mixed kernel.
func computeKernel(cta, warp int) []isa.WarpInst {
	b := kgen.NewBuilder(kgen.Config{})
	base := uint32(cta)<<16 | uint32(warp)<<12
	b.ALU(0)
	for i := 0; i < 32; i++ {
		b.ALU(1, 0)
		b.LDG(2, 1, kgen.Coalesced(base+uint32(i)*512, 4))
		b.ALU(3, 2)
		b.ALU(0, 3)
	}
	return b.Finish()
}

func TestChipRunsAllCTAs(t *testing.T) {
	src := funcSource{ctas: 16, warps: 2, gen: computeKernel}
	c, err := New(Config{NumSMs: 4}, config.Baseline(), sm.DefaultParams(), src, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.CTAsRetired != 16 {
		t.Errorf("retired %d CTAs, want 16", res.Total.CTAsRetired)
	}
	if len(res.PerSM) != 4 {
		t.Errorf("PerSM has %d entries", len(res.PerSM))
	}
	for i, c := range res.PerSM {
		if c.CTAsRetired != 4 {
			t.Errorf("SM %d retired %d CTAs, want 4 (round-robin deal)", i, c.CTAsRetired)
		}
	}
	if res.Cycles <= 0 {
		t.Error("no cycles recorded")
	}
}

func TestChipUnevenGrid(t *testing.T) {
	src := funcSource{ctas: 10, warps: 1, gen: computeKernel}
	c, err := New(Config{NumSMs: 4}, config.Baseline(), sm.DefaultParams(), src, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.CTAsRetired != 10 {
		t.Errorf("retired %d CTAs, want 10", res.Total.CTAsRetired)
	}
}

func TestChipRejectsBadConfigs(t *testing.T) {
	src := funcSource{ctas: 2, warps: 1, gen: computeKernel}
	if _, err := New(Config{NumSMs: 0}, config.Baseline(), sm.DefaultParams(), src, 1); err == nil {
		t.Error("zero SMs should be rejected")
	}
	if _, err := New(Config{NumSMs: 4}, config.Baseline(), sm.DefaultParams(), src, 1); err == nil {
		t.Error("grid smaller than the SM count should be rejected")
	}
}

// TestConservativeOrdering checks the min-clock interleave: requests reach
// the shared DRAM system nearly in timestamp order.
func TestConservativeOrdering(t *testing.T) {
	src := funcSource{ctas: 32, warps: 2, gen: computeKernel}
	c, err := New(Config{NumSMs: 8}, config.Baseline(), sm.DefaultParams(), src, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	reads := res.DRAMReadBytes / 32 // rough request count
	if reads > 0 && res.OutOfOrder > reads/10 {
		t.Errorf("%d of ~%d requests out of order; conservative interleave broken",
			res.OutOfOrder, reads)
	}
}

// TestSharedBandwidthContention checks that SMs actually share the memory
// system: a chip whose aggregate bandwidth equals one SM's private share
// must be slower per SM than private channels of the same per-SM share.
func TestSharedBandwidthContention(t *testing.T) {
	stream := func(cta, warp int) []isa.WarpInst {
		b := kgen.NewBuilder(kgen.Config{})
		base := uint32(cta)<<18 | uint32(warp)<<14
		b.ALU(0)
		for i := 0; i < 64; i++ {
			b.LDG(1, 0, kgen.Coalesced(base+uint32(i)*128, 4))
			b.ALU(2, 1) // consume: the warp waits for every line
		}
		return b.Finish()
	}
	// Enough warps per SM that DRAM latency is fully hidden and only
	// bandwidth can bind.
	src := funcSource{ctas: 16, warps: 8, gen: stream}
	// Four SMs sharing a single 8 B/cycle channel: one quarter of the
	// usual per-SM share.
	starved, err := New(Config{
		NumSMs: 4,
		Mem:    dram.SystemConfig{Channels: 1, BytesPerCyclePerChannel: 8, LatencyCycles: 400},
	}, config.Baseline(), sm.DefaultParams(), src, 4)
	if err != nil {
		t.Fatal(err)
	}
	starvedRes, err := starved.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Four SMs with the full aggregate share (8 B/cycle each).
	fed, err := New(Config{
		NumSMs: 4,
		Mem:    dram.SystemConfig{Channels: 4, BytesPerCyclePerChannel: 8, LatencyCycles: 400},
	}, config.Baseline(), sm.DefaultParams(), src, 4)
	if err != nil {
		t.Fatal(err)
	}
	fedRes, err := fed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if starvedRes.Cycles < fedRes.Cycles*2 {
		t.Errorf("bandwidth starvation not visible: starved=%d fed=%d cycles",
			starvedRes.Cycles, fedRes.Cycles)
	}
}

func TestSystemChannelRouting(t *testing.T) {
	sys := dram.NewSystem(dram.SystemConfig{Channels: 4, BytesPerCyclePerChannel: 8, LatencyCycles: 100, InterleaveBytes: 256})
	// Addresses 0 and 256 land on different channels: no bus serialization.
	d0 := sys.Read(0, 0, 128)
	d1 := sys.Read(0, 256, 128)
	if d0 != d1 {
		t.Errorf("independent channels should complete together: %d vs %d", d0, d1)
	}
	// Same channel serializes.
	d2 := sys.Read(0, 1024, 128)
	if d2 <= d0 {
		t.Errorf("same-channel read should queue: %d vs %d", d2, d0)
	}
	if sys.Channels() != 4 {
		t.Errorf("Channels() = %d", sys.Channels())
	}
	if sys.ReadBytes() != 384 {
		t.Errorf("ReadBytes() = %d", sys.ReadBytes())
	}
}

// TestL2AbsorbsCrossSMSharing: when every SM reads the same hot region,
// a chip-level L2 serves the re-fetches that otherwise each go to DRAM.
func TestL2AbsorbsCrossSMSharing(t *testing.T) {
	shared := func(cta, warp int) []isa.WarpInst {
		b := kgen.NewBuilder(kgen.Config{})
		b.ALU(0)
		for i := 0; i < 64; i++ {
			// Every warp of every SM sweeps the same 256KB table: far too
			// big for the 64KB L1s, ideal for a chip L2.
			b.LDG(1, 0, kgen.Coalesced(uint32(i)*4096, 4))
			b.ALU(2, 1)
		}
		return b.Finish()
	}
	src := funcSource{ctas: 16, warps: 4, gen: shared}
	base := dram.SystemConfig{Channels: 4, BytesPerCyclePerChannel: 8, LatencyCycles: 400}
	noL2, err := New(Config{NumSMs: 4, Mem: base}, config.Baseline(), sm.DefaultParams(), src, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := noL2.Run()
	if err != nil {
		t.Fatal(err)
	}
	withCfg := base
	withCfg.L2Bytes = 512 << 10
	withL2, err := New(Config{NumSMs: 4, Mem: withCfg}, config.Baseline(), sm.DefaultParams(), src, 2)
	if err != nil {
		t.Fatal(err)
	}
	bRes, err := withL2.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("no L2: %d cycles %d dram bytes; with L2: %d cycles %d dram bytes",
		a.Cycles, a.DRAMReadBytes, bRes.Cycles, bRes.DRAMReadBytes)
	if bRes.DRAMReadBytes >= a.DRAMReadBytes {
		t.Error("L2 should cut DRAM reads for cross-SM shared data")
	}
	if bRes.Cycles >= a.Cycles {
		t.Error("L2 should speed up the shared-table sweep")
	}
}
