// Package autotune searches the unified design's configuration space for
// a kernel's best operating point.
//
// The paper's Section 4.5 notes that "some applications see higher
// performance with fewer than the maximum number of threads" and points
// at autotuning (Whaley & Dongarra's ATLAS) as the remedy. This package
// implements that loop: it sweeps resident thread counts and, where the
// capacity allows, trades registers per thread against spill code, running
// each candidate on the simulator and keeping the best.
package autotune

import (
	"errors"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/occupancy"
	"repro/internal/parallel"
	"repro/internal/workloads"
)

// Objective selects what the tuner optimizes.
type Objective uint8

const (
	// MinCycles optimizes runtime.
	MinCycles Objective = iota
	// MinEnergy optimizes total energy.
	MinEnergy
)

// String names the objective.
func (o Objective) String() string {
	if o == MinEnergy {
		return "energy"
	}
	return "cycles"
}

// Candidate is one evaluated operating point.
type Candidate struct {
	// Threads is the resident thread cap.
	Threads int
	// Regs is the per-thread register allocation.
	Regs int
	// Config is the resolved unified configuration.
	Config config.MemConfig
	// Result is the simulation outcome.
	Result *core.Result
}

// score returns the candidate's objective value (lower is better).
func (c *Candidate) score(obj Objective) float64 {
	if obj == MinEnergy {
		return c.Result.Energy.Total()
	}
	return float64(c.Result.Counters.Cycles)
}

// Report is the tuner's outcome.
type Report struct {
	// Best is the winning candidate.
	Best Candidate
	// Evaluated lists every candidate tried, in evaluation order.
	Evaluated []Candidate
	// Objective echoes the optimization target.
	Objective Objective
	// DemandRegs is the kernel's spill-free register demand (the naive
	// allocation's register count).
	DemandRegs int
}

// Tune searches thread counts (multiples of the CTA size up to the
// architectural limit) and register allocations (the spill-free demand,
// plus the largest allocation that fits each thread count when smaller)
// for the kernel under a unified memory of totalBytes.
//
// Candidates are simulated in parallel; the winner is selected in
// enumeration order with a strict comparison, so ties resolve to the
// earliest candidate exactly as the serial search did.
func Tune(r *core.Runner, k *workloads.Kernel, totalBytes int, obj Objective) (*Report, error) {
	if k == nil {
		return nil, fmt.Errorf("autotune: nil kernel")
	}
	type point struct {
		threads, regs int
		cfg           config.MemConfig
	}
	var points []point
	for threads := k.ThreadsPerCTA; threads <= config.MaxThreadsPerSM; threads += k.ThreadsPerCTA {
		ctas := threads / k.ThreadsPerCTA
		shared := ctas * k.SharedBytesPerCTA
		regOptions := []int{k.RegsNeeded}
		if fit := occupancy.MinRegsForResidency(totalBytes-shared, threads, k.RegsNeeded); fit > 0 && fit < k.RegsNeeded {
			regOptions = append(regOptions, fit)
		}
		for _, regs := range regOptions {
			req := k.Requirements()
			req.RegsPerThread = regs
			cfg, err := config.Allocate(req, totalBytes, threads)
			if errors.Is(err, config.ErrDoesNotFit) {
				continue // this point does not fit; skip it
			}
			if err != nil {
				return nil, fmt.Errorf("autotune: %s at %d threads: %w", k.Name, threads, err)
			}
			points = append(points, point{threads: threads, regs: regs, cfg: cfg})
		}
	}
	cands, err := parallel.Map(len(points), func(i int) (Candidate, error) {
		p := points[i]
		res, err := r.Run(core.RunSpec{Kernel: k, Config: p.cfg, RegsPerThread: p.regs})
		if core.IsInfeasible(err) {
			return Candidate{}, nil // infeasible at runtime; dropped below
		}
		if err != nil {
			return Candidate{}, err
		}
		return Candidate{Threads: res.Occupancy.Threads, Regs: p.regs, Config: p.cfg, Result: res}, nil
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{Objective: obj, DemandRegs: k.RegsNeeded}
	for _, cand := range cands {
		if cand.Result == nil {
			continue
		}
		rep.Evaluated = append(rep.Evaluated, cand)
		if rep.Best.Result == nil || cand.score(obj) < rep.Best.score(obj) {
			rep.Best = cand
		}
	}
	if rep.Best.Result == nil {
		return nil, fmt.Errorf("autotune: no feasible configuration for %s in %d bytes", k.Name, totalBytes)
	}
	return rep, nil
}

// Improvement returns the best candidate's gain over the naive allocation
// (spill-free registers at the highest thread count that fits — the plain
// §4.5 outcome with no tuning), as a ratio >= 1 when tuning helped.
func (rep *Report) Improvement() float64 {
	var naive *Candidate
	for i := range rep.Evaluated {
		c := &rep.Evaluated[i]
		if c.Regs == rep.DemandRegs && (naive == nil || c.Threads > naive.Threads) {
			naive = c
		}
	}
	if naive == nil || naive.Result == nil {
		return 1
	}
	return naive.score(rep.Objective) / rep.Best.score(rep.Objective)
}
