package autotune

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workloads"
)

func kernel(t *testing.T, name string) *workloads.Kernel {
	t.Helper()
	k, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestTuneFindsFeasibleBest(t *testing.T) {
	r := core.NewRunner()
	rep, err := Tune(r, kernel(t, "pcr"), config.BaselineTotalBytes, MinCycles)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best.Result == nil || len(rep.Evaluated) < 4 {
		t.Fatalf("thin search: %d candidates", len(rep.Evaluated))
	}
	// The winner must be no worse than every evaluated candidate.
	for _, c := range rep.Evaluated {
		if c.Result.Counters.Cycles < rep.Best.Result.Counters.Cycles {
			t.Errorf("best (%d cycles) beaten by threads=%d regs=%d (%d)",
				rep.Best.Result.Counters.Cycles, c.Threads, c.Regs, c.Result.Counters.Cycles)
		}
	}
	if imp := rep.Improvement(); imp < 1 {
		t.Errorf("Improvement() = %.3f, cannot be below 1 (naive is in the search space)", imp)
	}
}

func TestTuneEnergyObjective(t *testing.T) {
	r := core.NewRunner()
	rep, err := Tune(r, kernel(t, "sto"), config.BaselineTotalBytes, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Evaluated {
		if c.Result.Energy.Total() < rep.Best.Result.Energy.Total() {
			t.Errorf("energy best beaten by threads=%d regs=%d", c.Threads, c.Regs)
		}
	}
}

// TestTuneDgemmTradesRegisters checks the Figure 2 trade the tuner exists
// for. At 384 KB dgemm fits its full registers at 1024 threads, so the
// demand point is searched; at 256 KB it does not, so reduced-register/
// higher-thread candidates appear.
func TestTuneDgemmTradesRegisters(t *testing.T) {
	r := core.NewRunner()
	full384, err := Tune(r, kernel(t, "dgemm"), config.BaselineTotalBytes, MinCycles)
	if err != nil {
		t.Fatal(err)
	}
	sawFull := false
	for _, c := range full384.Evaluated {
		if c.Regs == full384.DemandRegs && c.Threads == 1024 {
			sawFull = true
		}
	}
	if !sawFull {
		t.Error("384KB search should include the demand-register 1024-thread point")
	}
	tight, err := Tune(r, kernel(t, "dgemm"), 256<<10, MinCycles)
	if err != nil {
		t.Fatal(err)
	}
	sawReduced := false
	for _, c := range tight.Evaluated {
		if c.Regs < tight.DemandRegs {
			sawReduced = true
		}
	}
	if !sawReduced {
		t.Error("256KB search should trade registers for threads")
	}
}

func TestTuneRejectsImpossible(t *testing.T) {
	r := core.NewRunner()
	if _, err := Tune(r, kernel(t, "dgemm"), 16<<10, MinCycles); err == nil {
		t.Error("16KB cannot hold any dgemm CTA; Tune should fail")
	}
	if _, err := Tune(r, nil, config.BaselineTotalBytes, MinCycles); err == nil {
		t.Error("nil kernel should fail")
	}
}

func TestObjectiveString(t *testing.T) {
	if MinCycles.String() != "cycles" || MinEnergy.String() != "energy" {
		t.Error("objective names wrong")
	}
}
