// Package snapshot defines the copy-on-write image of a full SM
// simulation state, captured by sm.(*SM).Snapshot and consumed by
// sm.Fork. A sweep warms one SM to cycle K, snapshots it once, and forks
// the frozen State into N runs that diverge on timing parameters —
// instead of re-simulating N identical warm-up prefixes.
//
// # Shared versus copied
//
// A State is immutable once captured and safe to fork from concurrently,
// because every capture follows one rule: mutable simulator state is
// deep-copied, immutable state is shared.
//
// Deep-copied (the live simulator overwrites these in place):
//
//   - warp slots — PC, scoreboard, wake cycles, lifecycle status
//     (dispatch.State; the scoreboard is an array, so a value copy is
//     already deep);
//   - CTA slots, the grid launch cursor, and the ready bitmask;
//   - the scheduler's active list and policy cursor (sched.State);
//   - the cache tag store: tags, LRU ages, dirty bits (cache.State);
//   - the pending-line (MSHR) table (memsys.State). This one is the
//     cautionary example: put/del/evict mutate its open-addressed arrays
//     with backward-shift deletion, so an aliased table would leak MSHR
//     retirements between parent and forks;
//   - the DRAM channel's bus clock, row tracker, and tallies
//     (dram.State);
//   - the run counters and the probe's accumulated profile.
//
// Shared (immutable by contract, so forks alias them freely):
//
//   - per-warp instruction traces and memoized bank-conflict outcomes —
//     the workloads trace cache owns one copy process-wide;
//   - the kernel, trace source, and configuration values.
//
// # Prefix-defining versus divergable
//
// Forking means "switch parameters at cycle K": the fork replays the
// parent's exact prefix and continues under its own timing. Parameters
// that shaped the prefix — the memory configuration, kernel, seed,
// register budget, resident CTAs, scheduler policy, active-set size,
// greedy flag, and scatter variant — are prefix-defining: sm.Fork
// refuses a fork that disagrees on them, because the captured state
// would be meaningless under different values. Everything else (op
// latencies, the descheduling threshold, the MSHR bound, the DRAM
// configuration, the cache write policy) is divergable, and a fork at K
// with divergent values is bit-identical to a fresh run that switches
// those values in place at K — the equivalence internal/simtest pins.
package snapshot

import (
	"repro/internal/config"
	"repro/internal/dispatch"
	"repro/internal/dram"
	"repro/internal/memsys"
	"repro/internal/probe"
	"repro/internal/sched"
	"repro/internal/stats"
)

// State is one SM's frozen simulation state. Capture it with
// sm.(*SM).Snapshot; resume it with sm.Fork. A State is immutable: forks
// copy out of it, never into it, so any number of forks — including
// concurrent ones — can share one State.
type State struct {
	// Config is the local-memory configuration the state was captured
	// under (prefix-defining: forks must match it exactly).
	Config config.MemConfig
	// Aggressive and Greedy pin the prefix-defining bank-model scatter
	// variant and two-level greedy flag.
	Aggressive bool
	Greedy     bool

	// Cycle, SlotFreeAt, and Started are the timing core's clocks.
	Cycle      int64
	SlotFreeAt int64
	Started    bool

	// Counters are the run's event counters at the capture point.
	Counters stats.Counters

	// Sched, Disp, Mem, and DRAM are the component states.
	Sched sched.State
	Disp  *dispatch.State
	Mem   *memsys.State
	DRAM  dram.State

	// Probe is the observability state, nil for unprobed runs. A probed
	// snapshot must be forked with a probe restored via probe.Restore
	// (and vice versa: an unprobed snapshot forks unprobed).
	Probe *probe.State
}
