package trace_test

import (
	"bytes"
	"fmt"

	"repro/internal/trace"
	"repro/internal/workloads"
)

// Example records a benchmark's trace, round-trips it through the binary
// format, and profiles it — the Ocelot-style interchange workflow.
func Example() {
	k, err := workloads.ByName("vectoradd")
	if err != nil {
		panic(err)
	}
	recorded := trace.Record(&workloads.Source{K: k, Seed: 1})

	var buf bytes.Buffer
	if err := trace.Write(&buf, recorded); err != nil {
		panic(err)
	}
	loaded, err := trace.Read(&buf)
	if err != nil {
		panic(err)
	}

	p := trace.Analyze(loaded)
	fmt.Println("round trip preserved instructions:", loaded.Instructions() == recorded.Instructions())
	fmt.Println("registers used:", p.RegistersUsed)
	fmt.Printf("lines per global access: %.0f (perfectly coalesced)\n", p.AvgLinesPerAccess)
	// Output:
	// round trip preserved instructions: true
	// registers used: 9
	// lines per global access: 1 (perfectly coalesced)
}
