package trace

import (
	"bytes"
	"testing"

	"repro/internal/config"
	"repro/internal/sm"
	"repro/internal/workloads"
)

// TestReplayFidelity checks the interchange guarantee: running a recorded
// (and round-tripped) trace through the simulator produces exactly the
// same timing and traffic as running the live source.
func TestReplayFidelity(t *testing.T) {
	for _, name := range []string{"pcr", "needle", "mummer"} {
		k := mustKernel(name)
		src := &workloads.Source{K: k, Seed: 1}

		live, err := sm.NewSM(sm.Spec{Config: config.Baseline(), Params: sm.DefaultParams(), Source: src, ResidentCTAs: 4})
		if err != nil {
			t.Fatal(err)
		}
		liveCounters, err := live.Run()
		if err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := Write(&buf, Record(src)); err != nil {
			t.Fatal(err)
		}
		loaded, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		replay, err := sm.NewSM(sm.Spec{Config: config.Baseline(), Params: sm.DefaultParams(), Source: loaded, ResidentCTAs: 4})
		if err != nil {
			t.Fatal(err)
		}
		replayCounters, err := replay.Run()
		if err != nil {
			t.Fatal(err)
		}

		if liveCounters.Cycles != replayCounters.Cycles ||
			liveCounters.WarpInsts != replayCounters.WarpInsts ||
			liveCounters.DRAMBytes() != replayCounters.DRAMBytes() ||
			liveCounters.ConflictCycles != replayCounters.ConflictCycles {
			t.Errorf("%s: replay diverged: cycles %d vs %d, insts %d vs %d, dram %d vs %d",
				name, liveCounters.Cycles, replayCounters.Cycles,
				liveCounters.WarpInsts, replayCounters.WarpInsts,
				liveCounters.DRAMBytes(), replayCounters.DRAMBytes())
		}
	}
}
