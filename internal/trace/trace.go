// Package trace serializes warp instruction traces and computes trace
// statistics.
//
// The paper's evaluation flow traced real CUDA binaries with Ocelot and
// fed the traces to its simulator. This package provides the equivalent
// interchange point for this repository: any TraceSource (the synthetic
// workloads, or traces converted from an external tracer) can be recorded
// to a compact binary file, reloaded later, and replayed through the SM
// simulator byte-for-byte. It also computes the static profile of a trace
// (instruction mix, operand placement, memory footprint and reuse), which
// cmd/tracestat renders.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
)

// magic identifies the file format; the trailing digit is the version.
var magic = [8]byte{'G', 'P', 'U', 'T', 'R', 'C', '0', '1'}

// Source is the subset of sm.TraceSource needed here (redeclared to avoid
// an import cycle; sm.TraceSource satisfies it structurally).
type Source interface {
	Grid() (ctas, warpsPerCTA int)
	WarpTrace(cta, warp int) []isa.WarpInst
}

// Trace is a fully materialized kernel grid.
type Trace struct {
	CTAs        int
	WarpsPerCTA int
	// Warps holds the per-warp instruction streams, indexed
	// [cta*WarpsPerCTA + warp].
	Warps [][]isa.WarpInst
}

// Grid implements Source.
func (t *Trace) Grid() (int, int) { return t.CTAs, t.WarpsPerCTA }

// WarpTrace implements Source.
func (t *Trace) WarpTrace(cta, warp int) []isa.WarpInst {
	return t.Warps[cta*t.WarpsPerCTA+warp]
}

// Instructions returns the total dynamic warp-instruction count.
func (t *Trace) Instructions() int64 {
	var n int64
	for _, w := range t.Warps {
		n += int64(len(w))
	}
	return n
}

// Record materializes every warp of a source into a Trace.
func Record(src Source) *Trace {
	ctas, warps := src.Grid()
	t := &Trace{CTAs: ctas, WarpsPerCTA: warps, Warps: make([][]isa.WarpInst, ctas*warps)}
	for c := 0; c < ctas; c++ {
		for w := 0; w < warps; w++ {
			t.Warps[c*warps+w] = src.WarpTrace(c, w)
		}
	}
	return t
}

// Write serializes the trace.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	hdr := [2]uint32{uint32(t.CTAs), uint32(t.WarpsPerCTA)}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	for _, warp := range t.Warps {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(warp))); err != nil {
			return err
		}
		for i := range warp {
			if err := writeInst(bw, &warp[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// instFlags packs the boolean instruction fields.
const (
	flagMRFWrite = 1 << 0
	flagSpill    = 1 << 1
	flagAddrs    = 1 << 2
)

func writeInst(w io.Writer, wi *isa.WarpInst) error {
	flags := byte(0)
	if wi.DstMRFWrite {
		flags |= flagMRFWrite
	}
	if wi.Spill {
		flags |= flagSpill
	}
	if wi.Addrs != nil {
		flags |= flagAddrs
	}
	buf := []byte{
		byte(wi.Op), flags,
		wi.Dst.Reg, byte(wi.Dst.Space),
		wi.Srcs[0].Reg, byte(wi.Srcs[0].Space),
		wi.Srcs[1].Reg, byte(wi.Srcs[1].Space),
		wi.Srcs[2].Reg, byte(wi.Srcs[2].Space),
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, wi.Mask); err != nil {
		return err
	}
	if wi.Addrs != nil {
		if err := binary.Write(w, binary.LittleEndian, wi.Addrs[:]); err != nil {
			return err
		}
	}
	return nil
}

// limits guarding against corrupt files.
const (
	maxWarps        = 1 << 20
	maxInstsPerWarp = 1 << 24
)

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("trace: not a GPUTRC01 trace file")
	}
	var hdr [2]uint32
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	t := &Trace{CTAs: int(hdr[0]), WarpsPerCTA: int(hdr[1])}
	if t.CTAs <= 0 || t.WarpsPerCTA <= 0 ||
		t.CTAs > maxWarps || t.WarpsPerCTA > maxWarps || t.CTAs*t.WarpsPerCTA > maxWarps {
		return nil, fmt.Errorf("trace: implausible grid %dx%d", t.CTAs, t.WarpsPerCTA)
	}
	n := t.CTAs * t.WarpsPerCTA
	t.Warps = make([][]isa.WarpInst, n)
	for i := range t.Warps {
		var count uint32
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("trace: warp %d length: %w", i, err)
		}
		if count > maxInstsPerWarp {
			return nil, fmt.Errorf("trace: warp %d implausibly long (%d)", i, count)
		}
		warp := make([]isa.WarpInst, count)
		for j := range warp {
			if err := readInst(br, &warp[j]); err != nil {
				return nil, fmt.Errorf("trace: warp %d inst %d: %w", i, j, err)
			}
		}
		t.Warps[i] = warp
	}
	return t, nil
}

func readInst(r io.Reader, wi *isa.WarpInst) error {
	var buf [10]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return err
	}
	wi.Op = isa.Op(buf[0])
	flags := buf[1]
	wi.DstMRFWrite = flags&flagMRFWrite != 0
	wi.Spill = flags&flagSpill != 0
	wi.Dst = isa.Operand{Reg: buf[2], Space: isa.RegSpace(buf[3])}
	wi.Srcs[0] = isa.Operand{Reg: buf[4], Space: isa.RegSpace(buf[5])}
	wi.Srcs[1] = isa.Operand{Reg: buf[6], Space: isa.RegSpace(buf[7])}
	wi.Srcs[2] = isa.Operand{Reg: buf[8], Space: isa.RegSpace(buf[9])}
	if err := binary.Read(r, binary.LittleEndian, &wi.Mask); err != nil {
		return err
	}
	if flags&flagAddrs != 0 {
		var av isa.AddrVec
		if err := binary.Read(r, binary.LittleEndian, av[:]); err != nil {
			return err
		}
		wi.Addrs = &av
	}
	return nil
}
