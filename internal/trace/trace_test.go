package trace

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/kgen"
	"repro/internal/workloads"
)

// buildTrace makes a small deterministic trace.
func buildTrace() *Trace {
	src := &workloads.Source{K: mustKernel("vectoradd"), Seed: 3}
	t := Record(limitGrid{src, 3})
	return t
}

func mustKernel(name string) *workloads.Kernel {
	k, err := workloads.ByName(name)
	if err != nil {
		panic(err)
	}
	return k
}

// limitGrid caps the CTA count of a source for fast tests.
type limitGrid struct {
	src  Source
	ctas int
}

func (l limitGrid) Grid() (int, int) {
	_, w := l.src.Grid()
	return l.ctas, w
}
func (l limitGrid) WarpTrace(c, w int) []isa.WarpInst { return l.src.WarpTrace(c, w) }

func TestRoundTrip(t *testing.T) {
	orig := buildTrace()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CTAs != orig.CTAs || got.WarpsPerCTA != orig.WarpsPerCTA {
		t.Fatalf("grid mismatch: %d/%d vs %d/%d", got.CTAs, got.WarpsPerCTA, orig.CTAs, orig.WarpsPerCTA)
	}
	if !reflect.DeepEqual(got.Warps, orig.Warps) {
		t.Fatal("instruction streams differ after round trip")
	}
}

func TestRoundTripRandomInstructions(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		warp := make([]isa.WarpInst, int(n%40)+1)
		for i := range warp {
			wi := &warp[i]
			wi.Op = isa.Op(rng.Uint32N(10))
			wi.Mask = rng.Uint32()
			if wi.Mask == 0 {
				wi.Mask = 1
			}
			wi.Dst = isa.Operand{Reg: uint8(rng.Uint32N(64)), Space: isa.RegSpace(rng.Uint32N(4))}
			for s := range wi.Srcs {
				wi.Srcs[s] = isa.Operand{Reg: uint8(rng.Uint32N(64)), Space: isa.RegSpace(rng.Uint32N(4))}
			}
			wi.DstMRFWrite = rng.Uint32N(2) == 0
			wi.Spill = rng.Uint32N(2) == 0
			if rng.Uint32N(2) == 0 {
				var av isa.AddrVec
				for l := range av {
					av[l] = rng.Uint32()
				}
				wi.Addrs = &av
			}
		}
		orig := &Trace{CTAs: 1, WarpsPerCTA: 1, Warps: [][]isa.WarpInst{warp}}
		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Warps, orig.Warps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(magic[:])); err == nil {
		t.Error("truncated header accepted")
	}
	// Corrupt grid dimensions.
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := Read(&buf); err == nil {
		t.Error("implausible grid accepted")
	}
}

func TestTruncatedFile(t *testing.T) {
	orig := buildTrace()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestRecordMatchesSource(t *testing.T) {
	src := &workloads.Source{K: mustKernel("bfs"), Seed: 3}
	tr := Record(limitGrid{src, 2})
	if got := tr.WarpTrace(1, 3); !reflect.DeepEqual(got, src.WarpTrace(1, 3)) {
		t.Error("recorded warp differs from source")
	}
	if tr.Instructions() == 0 {
		t.Error("empty recording")
	}
}

// TestRoundTripCachedTraces round-trips memoized traces (the workloads
// trace cache shares one backing array across all readers) for several
// kernels and seeds: the serialized form must be lossless, and writing
// must not perturb the shared cached slices other readers hold.
func TestRoundTripCachedTraces(t *testing.T) {
	for _, name := range []string{"needle", "bfs", "dgemm"} {
		for _, seed := range []uint64{0, 3, 12345} {
			src := &workloads.Source{K: mustKernel(name), Seed: seed}
			orig := Record(limitGrid{src, 2})
			var buf bytes.Buffer
			if err := Write(&buf, orig); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if !reflect.DeepEqual(got.Warps, orig.Warps) {
				t.Fatalf("%s seed %d: instruction streams differ after round trip", name, seed)
			}
			// The cache must still hand out the same untouched slices.
			again := src.WarpTrace(1, 0)
			if &again[0] != &orig.Warps[1*orig.WarpsPerCTA][0] {
				t.Fatalf("%s seed %d: cache rebuilt a trace during serialization", name, seed)
			}
			if !reflect.DeepEqual(again, got.Warps[1*got.WarpsPerCTA]) {
				t.Fatalf("%s seed %d: cached trace mutated by serialization", name, seed)
			}
		}
	}
}

func TestAnalyzeCounts(t *testing.T) {
	b := kgen.NewBuilder(kgen.Config{})
	b.ALU(0)
	b.ALU(1, 0)
	b.LDG(2, 1, kgen.Coalesced(0, 4))   // line 0
	b.LDG(3, 1, kgen.Coalesced(128, 4)) // line 1
	b.LDG(4, 1, kgen.Coalesced(0, 4))   // line 0 again: reuse distance 1
	b.STS(4, 0, kgen.Coalesced(64, 4))  // shared footprint 64..191
	warp := b.Finish()
	tr := &Trace{CTAs: 1, WarpsPerCTA: 1, Warps: [][]isa.WarpInst{warp}}
	p := Analyze(tr)
	if p.Instructions != int64(len(warp)) {
		t.Errorf("Instructions = %d, want %d", p.Instructions, len(warp))
	}
	if p.OpCounts[isa.OpLDG] != 3 || p.OpCounts[isa.OpSTS] != 1 {
		t.Errorf("op mix wrong: %v", p.OpCounts)
	}
	if p.GlobalFootprintLines != 2 {
		t.Errorf("footprint = %d lines, want 2", p.GlobalFootprintLines)
	}
	if p.GlobalLineAccesses != 3 {
		t.Errorf("line accesses = %d, want 3", p.GlobalLineAccesses)
	}
	if p.ReuseHistogram[0] != 1 {
		t.Errorf("one short-distance reuse expected: %v", p.ReuseHistogram)
	}
	if p.MaxSharedAddr != 64+31*4+4 {
		t.Errorf("MaxSharedAddr = %d", p.MaxSharedAddr)
	}
	if p.RegistersUsed != 5 {
		t.Errorf("RegistersUsed = %d, want 5", p.RegistersUsed)
	}
	if p.AvgLinesPerAccess != 1 {
		t.Errorf("AvgLinesPerAccess = %v, want 1 (fully coalesced)", p.AvgLinesPerAccess)
	}
}

func TestAnalyzeReuseDistances(t *testing.T) {
	// Touch 600 distinct lines then re-touch line 0: the reuse distance
	// (~600 distinct lines) exceeds the 512-line bucket but fits 2048.
	b := kgen.NewBuilder(kgen.Config{})
	b.ALU(0)
	for i := 0; i < 600; i++ {
		b.LDG(1, 0, kgen.Broadcast(uint32(i)*128))
	}
	b.LDG(1, 0, kgen.Broadcast(0))
	tr := &Trace{CTAs: 1, WarpsPerCTA: 1, Warps: [][]isa.WarpInst{b.Finish()}}
	p := Analyze(tr)
	if p.ReuseHistogram[1] != 1 {
		t.Errorf("reuse histogram = %v, want one entry in the 512..2048 bucket", p.ReuseHistogram)
	}
	if p.GlobalFootprintLines != 600 {
		t.Errorf("footprint = %d, want 600", p.GlobalFootprintLines)
	}
}

func TestProfileDerivedMetrics(t *testing.T) {
	p := &Profile{
		MRFReads: 2, MRFWrites: 2, ORFReads: 2, LRFReads: 2, LRFWrites: 2,
		GlobalFootprintLines: 4, GlobalLineAccesses: 12,
	}
	if got := p.MRFOperandFraction(); got != 0.4 {
		t.Errorf("MRFOperandFraction = %v", got)
	}
	if got := p.ReuseFactor(); got != 3 {
		t.Errorf("ReuseFactor = %v", got)
	}
}

func TestTopOpsSorted(t *testing.T) {
	p := &Profile{OpCounts: map[isa.Op]int64{isa.OpALU: 10, isa.OpLDG: 20, isa.OpSTS: 5}}
	ops := p.TopOps()
	if len(ops) != 3 || ops[0] != isa.OpLDG || ops[2] != isa.OpSTS {
		t.Errorf("TopOps = %v", ops)
	}
}

func TestFenwick(t *testing.T) {
	f := newFenwick(8)
	f.add(3, 5)
	f.add(7, 2)
	if f.sum(2) != 0 || f.sum(3) != 5 || f.sum(8) != 7 {
		t.Errorf("fenwick sums wrong: %d %d %d", f.sum(2), f.sum(3), f.sum(8))
	}
	f.add(3, -5)
	if f.sum(8) != 2 {
		t.Errorf("after removal sum = %d", f.sum(8))
	}
}

// TestCorruptionSafety flips bytes in a valid trace file and checks that
// Read either errors or returns a structurally valid trace — it must
// never panic or hang on corrupt input.
func TestCorruptionSafety(t *testing.T) {
	orig := buildTrace()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 200; trial++ {
		corrupted := append([]byte(nil), clean...)
		for flips := 0; flips < 1+trial%4; flips++ {
			i := rng.IntN(len(corrupted))
			corrupted[i] ^= byte(1 << rng.UintN(8))
		}
		tr, err := Read(bytes.NewReader(corrupted))
		if err != nil {
			continue
		}
		// If it parsed, it must be self-consistent.
		if len(tr.Warps) != tr.CTAs*tr.WarpsPerCTA {
			t.Fatalf("trial %d: inconsistent parsed trace", trial)
		}
	}
}
