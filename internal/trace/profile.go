package trace

import (
	"sort"

	"repro/internal/isa"
)

// Profile is the static characterization of a trace: everything that can
// be known without timing simulation. It quantifies the properties the
// paper's Section 3 characterization is built on.
type Profile struct {
	// Instructions is the dynamic warp-instruction count.
	Instructions int64
	// ThreadInstructions weights by active threads.
	ThreadInstructions int64
	// OpCounts is the instruction mix.
	OpCounts map[isa.Op]int64
	// SpillInstructions counts allocator-inserted spill/fill code.
	SpillInstructions int64

	// Operand placement (reads and writes separately).
	MRFReads, ORFReads, LRFReads    int64
	MRFWrites, ORFWrites, LRFWrites int64

	// RegistersUsed is the number of distinct architectural registers.
	RegistersUsed int
	// MaxSharedAddr is the highest shared-memory byte touched + 4
	// (the trace's scratchpad footprint per CTA).
	MaxSharedAddr uint32

	// GlobalFootprintLines is the number of distinct 128-byte global
	// lines touched (cold working set).
	GlobalFootprintLines int
	// GlobalLineAccesses is the total line touches (for reuse factor).
	GlobalLineAccesses int64
	// ReuseHistogram buckets global line accesses by their reuse
	// distance in distinct lines: <=512 (fits 64KB), <=2048 (256KB),
	// <=4096 (512KB), and beyond.
	ReuseHistogram [4]int64
	// AvgLinesPerAccess is the mean distinct lines per global memory
	// instruction (coalescing quality: 1 = perfectly coalesced).
	AvgLinesPerAccess float64
}

// MRFOperandFraction returns the share of operand accesses served by the
// MRF (the register-hierarchy effectiveness metric).
func (p *Profile) MRFOperandFraction() float64 {
	mrf := p.MRFReads + p.MRFWrites
	all := mrf + p.ORFReads + p.ORFWrites + p.LRFReads + p.LRFWrites
	if all == 0 {
		return 0
	}
	return float64(mrf) / float64(all)
}

// ReuseFactor returns mean touches per distinct global line.
func (p *Profile) ReuseFactor() float64 {
	if p.GlobalFootprintLines == 0 {
		return 0
	}
	return float64(p.GlobalLineAccesses) / float64(p.GlobalFootprintLines)
}

// reuseBuckets are the distinct-line reuse-distance boundaries, chosen to
// correspond to 64 KB, 256 KB, and 512 KB caches of 128-byte lines.
var reuseBuckets = [3]int{512, 2048, 4096}

// Analyze computes the profile of a trace. Reuse distances are computed
// over the interleaved access stream of all warps (round-robin by warp,
// one instruction at a time), approximating the scheduler's interleaving.
func Analyze(t *Trace) *Profile {
	p := &Profile{OpCounts: make(map[isa.Op]int64)}
	regs := make(map[uint8]bool)

	// Interleave the warps round-robin to build the global line stream.
	idx := make([]int, len(t.Warps))
	type lineAccess struct{ line uint32 }
	var stream []lineAccess

	active := len(t.Warps)
	for active > 0 {
		active = 0
		for w, warp := range t.Warps {
			if idx[w] >= len(warp) {
				continue
			}
			active++
			wi := &warp[idx[w]]
			idx[w]++

			p.Instructions++
			p.ThreadInstructions += int64(wi.ActiveThreads())
			p.OpCounts[wi.Op]++
			if wi.Spill {
				p.SpillInstructions++
			}
			for _, s := range wi.Srcs {
				if !s.Valid() {
					continue
				}
				regs[s.Reg] = true
				switch s.Space {
				case isa.SpaceMRF:
					p.MRFReads++
				case isa.SpaceORF:
					p.ORFReads++
				case isa.SpaceLRF:
					p.LRFReads++
				}
			}
			if wi.Dst.Valid() {
				regs[wi.Dst.Reg] = true
				switch wi.Dst.Space {
				case isa.SpaceMRF:
					p.MRFWrites++
				case isa.SpaceORF:
					p.ORFWrites++
				case isa.SpaceLRF:
					p.LRFWrites++
				}
				if wi.DstMRFWrite && wi.Dst.Space != isa.SpaceMRF {
					p.MRFWrites++
				}
			}
			if wi.Addrs == nil {
				continue
			}
			if wi.Op.IsShared() {
				for l := 0; l < isa.WarpSize; l++ {
					if wi.Mask&(1<<uint(l)) == 0 {
						continue
					}
					if a := wi.Addrs[l] + 4; a > p.MaxSharedAddr {
						p.MaxSharedAddr = a
					}
				}
				continue
			}
			// Global access: dedupe lines within the instruction.
			seen := map[uint32]bool{}
			for l := 0; l < isa.WarpSize; l++ {
				if wi.Mask&(1<<uint(l)) == 0 {
					continue
				}
				line := wi.Addrs[l] / 128
				if !seen[line] {
					seen[line] = true
					stream = append(stream, lineAccess{line})
				}
			}
		}
	}

	// Reuse distances over the interleaved line stream, via the classic
	// last-access + distinct-count sweep (O(n log n) with a sorted set
	// approximated by a per-line last-index map and a Fenwick tree).
	p.GlobalLineAccesses = int64(len(stream))
	if len(stream) > 0 {
		last := make(map[uint32]int, 1024)
		ft := newFenwick(len(stream))
		globalOps := int64(0)
		for _, op := range []isa.Op{isa.OpLDG, isa.OpSTG, isa.OpTEX} {
			globalOps += p.OpCounts[op]
		}
		if globalOps > 0 {
			p.AvgLinesPerAccess = float64(len(stream)) / float64(globalOps)
		}
		for i, acc := range stream {
			if j, ok := last[acc.line]; ok {
				// Distinct lines touched in (j, i) = number of stream
				// positions in that window that were a line's most
				// recent access.
				d := ft.sum(i) - ft.sum(j)
				bucket := 3
				for b, lim := range reuseBuckets {
					if d <= lim {
						bucket = b
						break
					}
				}
				p.ReuseHistogram[bucket]++
				ft.add(j+1, -1)
			}
			last[acc.line] = i
			ft.add(i+1, 1)
		}
		p.GlobalFootprintLines = len(last)
	}
	p.RegistersUsed = len(regs)
	return p
}

// TopOps returns the instruction mix sorted by count, descending.
func (p *Profile) TopOps() []isa.Op {
	ops := make([]isa.Op, 0, len(p.OpCounts))
	for op := range p.OpCounts {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool {
		if p.OpCounts[ops[i]] != p.OpCounts[ops[j]] {
			return p.OpCounts[ops[i]] > p.OpCounts[ops[j]]
		}
		return ops[i] < ops[j]
	})
	return ops
}

// fenwick is a Fenwick (binary indexed) tree over positions 1..n.
type fenwick struct{ tree []int }

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the prefix sum over positions 1..i.
func (f *fenwick) sum(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}
