package machine

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/config"
)

func TestDefaultResolvesToBaseline(t *testing.T) {
	cfg, p, e, err := Default().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg != config.Baseline() {
		t.Errorf("default config = %v, want baseline", cfg)
	}
	if p.ALULatency != 8 || p.DRAM.LatencyCycles != 400 || p.ActiveWarps != 8 {
		t.Errorf("timing defaults wrong: %+v", p)
	}
	if e.SMDynamicPower != 1.9 || e.UnifiedWiringOverhead != 1.10 {
		t.Errorf("energy defaults wrong: %+v", e)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := Default()
	d.Design = "unified"
	d.RFKB, d.SharedKB, d.CacheKB = 128, 128, 128
	d.Timing.ALULatency = 12
	d.Energy.SMDynamicW = 2.5
	path := filepath.Join(t.TempDir(), "m.json")
	if err := Save(path, d); err != nil {
		t.Fatal(err)
	}
	cfg, p, e, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Design != config.Unified || cfg.RFBytes != 128<<10 {
		t.Errorf("config = %v", cfg)
	}
	if p.ALULatency != 12 {
		t.Errorf("ALULatency = %d", p.ALULatency)
	}
	if e.SMDynamicPower != 2.5 {
		t.Errorf("SMDynamicPower = %v", e.SMDynamicPower)
	}
}

func TestPartialFileTakesDefaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, []byte(`{"design":"partitioned","rf_kb":64,"shared_kb":32,"cache_kb":32}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, p, e, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RFBytes != 64<<10 {
		t.Errorf("RFBytes = %d", cfg.RFBytes)
	}
	if p.SFULatency != 20 || e.DRAMEnergyPerBit != 40e-12 {
		t.Error("unset fields should take the paper defaults")
	}
	if p.DRAM.RowBytes != 0 {
		t.Error("open-row model must stay off unless requested")
	}
}

func TestOpenRowViaJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "row.json")
	js := `{"design":"partitioned","rf_kb":256,"shared_kb":64,"cache_kb":64,
	        "timing":{"dram_row_bytes":2048,"dram_row_miss_cycles":120}}`
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	_, p, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.DRAM.RowBytes != 2048 || p.DRAM.RowMissPenalty != 120 {
		t.Errorf("row config not plumbed: %+v", p.DRAM)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, _, _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(path, []byte("{not json"), 0o644)
	if _, _, _, err := Load(path); err == nil {
		t.Error("bad JSON accepted")
	}
	path2 := filepath.Join(t.TempDir(), "baddesign.json")
	os.WriteFile(path2, []byte(`{"design":"quantum","rf_kb":1}`), 0o644)
	if _, _, _, err := Load(path2); err == nil {
		t.Error("unknown design accepted")
	}
	path3 := filepath.Join(t.TempDir(), "badcfg.json")
	os.WriteFile(path3, []byte(`{"design":"unified","rf_kb":-1,"shared_kb":0,"cache_kb":0}`), 0o644)
	if _, _, _, err := Load(path3); err == nil {
		t.Error("negative capacity accepted")
	}
}
