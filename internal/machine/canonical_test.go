package machine

import (
	"encoding/json"
	"testing"
)

// key unmarshals a JSON machine description and hashes it, failing the
// test on any error.
func key(t *testing.T, js string) string {
	t.Helper()
	var d Description
	if err := json.Unmarshal([]byte(js), &d); err != nil {
		t.Fatalf("unmarshal %q: %v", js, err)
	}
	k, err := Key(d)
	if err != nil {
		t.Fatalf("Key(%q): %v", js, err)
	}
	return k
}

// TestCanonicalKeyEquivalences pins the cache-key contract: spellings of
// the same machine share a key, and any simulated-parameter change
// breaks it.
func TestCanonicalKeyEquivalences(t *testing.T) {
	base := `{"design":"partitioned","rf_kb":256,"shared_kb":64,"cache_kb":64}`
	tests := []struct {
		name string
		a, b string
		same bool
	}{
		{
			name: "field order does not matter",
			a:    base,
			b:    `{"cache_kb":64,"shared_kb":64,"rf_kb":256,"design":"partitioned"}`,
			same: true,
		},
		{
			name: "empty design means partitioned",
			a:    base,
			b:    `{"design":"","rf_kb":256,"shared_kb":64,"cache_kb":64}`,
			same: true,
		},
		{
			name: "explicit defaults equal omitted defaults",
			a:    base,
			b: `{"design":"partitioned","rf_kb":256,"shared_kb":64,"cache_kb":64,
				"timing":{"alu_latency":8,"sfu_latency":20,"shared_latency":20,
				"cache_latency":20,"tex_latency":400,"scheduler":"twolevel"}}`,
			same: true,
		},
		{
			name: "omitted scheduler equals the default spelling",
			a:    base,
			b:    base[:len(base)-1] + `,"timing":{"scheduler":"twolevel"}}`,
			same: true,
		},
		{
			name: "fermi alias equals fermi-like",
			a:    `{"design":"fermi","rf_kb":256,"shared_kb":48,"cache_kb":16}`,
			b:    `{"design":"fermi-like","rf_kb":256,"shared_kb":48,"cache_kb":16}`,
			same: true,
		},
		{
			name: "zero max_threads equals omitted",
			a:    base,
			b:    base[:len(base)-1] + `,"max_threads":0}`,
			same: true,
		},
		{
			name: "distinct designs differ",
			a:    base,
			b:    `{"design":"unified","rf_kb":256,"shared_kb":64,"cache_kb":64}`,
			same: false,
		},
		{
			name: "scheduler policy differs",
			a:    base,
			b:    base[:len(base)-1] + `,"timing":{"scheduler":"gto"}}`,
			same: false,
		},
		{
			name: "capacity differs",
			a:    base,
			b:    `{"design":"partitioned","rf_kb":128,"shared_kb":64,"cache_kb":64}`,
			same: false,
		},
		{
			name: "thread cap differs",
			a:    base,
			b:    base[:len(base)-1] + `,"max_threads":512}`,
			same: false,
		},
		{
			name: "timing latency differs",
			a:    base,
			b:    base[:len(base)-1] + `,"timing":{"dram_latency":200}}`,
			same: false,
		},
		{
			name: "mshr bound differs",
			a:    base,
			b:    base[:len(base)-1] + `,"timing":{"max_mshrs":8}}`,
			same: false,
		},
		{
			name: "write policy differs",
			a:    base,
			b:    base[:len(base)-1] + `,"timing":{"write_back_cache":true}}`,
			same: false,
		},
		{
			name: "energy constant differs",
			a:    base,
			b:    base[:len(base)-1] + `,"energy":{"dram_pj_per_bit":21}}`,
			same: false,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			ka, kb := key(t, tc.a), key(t, tc.b)
			if (ka == kb) != tc.same {
				t.Errorf("keys for\n  %s\n  %s\nsame=%v, want same=%v", tc.a, tc.b, ka == kb, tc.same)
			}
		})
	}
}

// TestCanonicalKeyDefaultMachine asserts the fully rendered default
// machine and the empty description agree — the "default filling" half
// of the contract — and that hashing is stable across calls.
func TestCanonicalKeyDefaultMachine(t *testing.T) {
	kd, err := Key(Default())
	if err != nil {
		t.Fatal(err)
	}
	ke := key(t, `{}`)
	if kd != ke {
		t.Errorf("Default() key %s != empty-description key %s", kd, ke)
	}
	again, err := Key(Default())
	if err != nil {
		t.Fatal(err)
	}
	if again != kd {
		t.Errorf("Key is not stable: %s then %s", kd, again)
	}
}

// TestCanonicalRejectsInvalid asserts canonicalization surfaces the same
// validation errors Resolve does rather than hashing garbage.
func TestCanonicalRejectsInvalid(t *testing.T) {
	for _, js := range []string{
		`{"design":"hexagonal"}`,
		`{"rf_kb":-1,"shared_kb":64,"cache_kb":64}`,
		`{"timing":{"scheduler":"fifo"}}`,
	} {
		var d Description
		if err := json.Unmarshal([]byte(js), &d); err != nil {
			t.Fatalf("unmarshal %q: %v", js, err)
		}
		if _, err := Key(d); err == nil {
			t.Errorf("Key(%s) succeeded, want error", js)
		}
	}
}

// TestDescribeRoundTrip asserts Describe inverts Resolve on the default
// machine: describe(resolve(d)) == canonical(d).
func TestDescribeRoundTrip(t *testing.T) {
	d := Default()
	cfg, p, e, err := d.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	back := Describe(cfg, p, e)
	c1, err := d.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if back != c1 {
		t.Errorf("Describe(Resolve(Default())) = %+v, want %+v", back, c1)
	}
	// The canonical form is a fixed point.
	c2, err := c1.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("Canonical not idempotent:\n%+v\n%+v", c1, c2)
	}
}
